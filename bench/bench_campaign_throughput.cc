// E8 — Methodology cost. The paper reports "each experiment takes about 2
// minutes" per mutant (real hardware reboot cycle). Our simulated substrate
// turns that into milliseconds; this bench quantifies the full
// mutate->compile->boot->classify cycle and its parts.
#include <benchmark/benchmark.h>

#include <memory>

#include "corpus/drivers.h"
#include "corpus/specs.h"
#include "devil/compiler.h"
#include "hw/ide_disk.h"
#include "hw/io_bus.h"
#include "minic/program.h"
#include "mutation/c_mutator.h"

namespace {

void BM_DevilCompileSpec(benchmark::State& state) {
  for (auto _ : state) {
    auto r = devil::check_spec("ide.dil", corpus::ide_spec());
    benchmark::DoNotOptimize(r.ok());
  }
}
BENCHMARK(BM_DevilCompileSpec);

void BM_DevilGenerateStubs(benchmark::State& state) {
  for (auto _ : state) {
    auto r = devil::compile_spec("ide.dil", corpus::ide_spec(),
                                 devil::CodegenMode::kDebug);
    benchmark::DoNotOptimize(r.stubs.size());
  }
}
BENCHMARK(BM_DevilGenerateStubs);

void BM_MiniCCompileCDriver(benchmark::State& state) {
  const std::string& src = corpus::c_ide_driver();
  for (auto _ : state) {
    auto prog = minic::compile("ide_c.c", src);
    benchmark::DoNotOptimize(prog.ok());
  }
}
BENCHMARK(BM_MiniCCompileCDriver);

void BM_MiniCCompileCDevilUnit(benchmark::State& state) {
  auto spec = devil::compile_spec("ide.dil", corpus::ide_spec(),
                                  devil::CodegenMode::kDebug);
  std::string unit = spec.stubs + "\n" + corpus::cdevil_ide_driver();
  for (auto _ : state) {
    auto prog = minic::compile("ide.dil", unit);
    benchmark::DoNotOptimize(prog.ok());
  }
}
BENCHMARK(BM_MiniCCompileCDevilUnit);

void BM_BootCleanCDriver(benchmark::State& state) {
  auto prog = minic::compile("ide_c.c", corpus::c_ide_driver());
  for (auto _ : state) {
    hw::IoBus bus;
    bus.map(0x1f0, 8, std::make_shared<hw::IdeDisk>());
    minic::Interp interp(*prog.unit, bus, 3'000'000);
    auto out = interp.run("ide_boot");
    benchmark::DoNotOptimize(out.return_value);
  }
}
BENCHMARK(BM_BootCleanCDriver);

void BM_FullMutantCycle(benchmark::State& state) {
  // One complete experiment: splice a mutant, compile, boot, classify.
  const std::string& driver = corpus::c_ide_driver();
  mutation::CScanOptions opt;
  opt.classes = mutation::classes_for_c_driver(driver);
  auto sites = mutation::scan_c_sites(driver, opt);
  auto mutants = mutation::generate_c_mutants(sites, opt.classes);
  size_t ix = 0;
  for (auto _ : state) {
    const auto& m = mutants[ix++ % mutants.size()];
    std::string mutated = mutation::apply_mutant(driver, sites, m);
    auto prog = minic::compile("ide_c.c", mutated);
    if (prog.ok()) {
      hw::IoBus bus;
      bus.map(0x1f0, 8, std::make_shared<hw::IdeDisk>());
      minic::Interp interp(*prog.unit, bus, 3'000'000);
      auto out = interp.run("ide_boot");
      benchmark::DoNotOptimize(out.fault);
    }
  }
  state.counters["paper_seconds_per_experiment"] = 120;  // for comparison
}
BENCHMARK(BM_FullMutantCycle)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
