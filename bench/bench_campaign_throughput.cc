// E8 — Methodology cost. The paper reports "each experiment takes about 2
// minutes" per mutant (real hardware reboot cycle). Our simulated substrate
// turns that into milliseconds; this bench quantifies the full
// mutate->compile->boot->classify cycle and its parts.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <memory>
#include <optional>
#include <vector>

#include "corpus/drivers.h"
#include "corpus/specs.h"
#include "devil/compiler.h"
#include "eval/device_bindings.h"
#include "eval/driver_campaign.h"
#include "eval/fault_campaign.h"
#include "eval/shard.h"
#include "hw/ide_disk.h"
#include "hw/io_bus.h"
#include "minic/bytecode/bytecode.h"
#include "minic/bytecode/patcher.h"
#include "minic/lexer.h"
#include "minic/program.h"
#include "support/source.h"
#include "mutation/c_mutator.h"
#include "support/metrics.h"

namespace {

// ---------------------------------------------------------------------------
// E9 — Execution-engine step rate. A tight port-poll loop (the shape that
// dominates step-limit-bound mutants) runs to budget exhaustion on each
// engine; the counter is walker-equivalent steps per second. The bytecode
// VM must hold >= 2x the tree walker (ctest does not enforce this, the
// recorded BENCH_campaign.json does).
// ---------------------------------------------------------------------------

/// Device stuck busy: the poll loop never exits, burning the whole budget.
class StuckBusyIo : public minic::IoEnvironment {
 public:
  uint32_t io_in(uint32_t, int) override { return 0x80; }
  void io_out(uint32_t, uint32_t, int) override {}
};

const char* poll_loop_src() {
  return R"(
int spin() {
  int n;
  n = 0;
  while (inb(0x1f7) & 0x80) {
    n = n + 1;
  }
  return n;
}
)";
}

void step_rate_bench(benchmark::State& state, minic::ExecEngine engine) {
  auto prog = minic::compile("spin.c", poll_loop_src());
  const uint64_t budget = 5'000'000;
  uint64_t steps = 0;
  for (auto _ : state) {
    StuckBusyIo io;
    auto out = minic::run_unit(*prog.unit, io, "spin", budget, engine);
    steps = out.steps_used;
    benchmark::DoNotOptimize(out.fault);
  }
  state.counters["steps_per_s"] = benchmark::Counter(
      static_cast<double>(steps * state.iterations()),
      benchmark::Counter::kIsRate);
}

void BM_VmStepRate(benchmark::State& state) {
  step_rate_bench(state, minic::ExecEngine::kBytecodeVm);
}
BENCHMARK(BM_VmStepRate)->Unit(benchmark::kMillisecond);

void BM_TreeWalkerStepRate(benchmark::State& state) {
  step_rate_bench(state, minic::ExecEngine::kTreeWalker);
}
BENCHMARK(BM_TreeWalkerStepRate)->Unit(benchmark::kMillisecond);

void BM_BytecodeLowerCDevilUnit(benchmark::State& state) {
  // Per-mutant cost the VM path adds on top of the front end.
  auto spec = devil::compile_spec("ide.dil", corpus::ide_spec(),
                                  devil::CodegenMode::kDebug);
  auto prog = minic::compile("ide.dil",
                             spec.stubs + "\n" + corpus::cdevil_ide_driver());
  for (auto _ : state) {
    auto module = minic::bytecode::compile_unit(*prog.unit);
    benchmark::DoNotOptimize(module.fns.size());
  }
}
BENCHMARK(BM_BytecodeLowerCDevilUnit);

// ---------------------------------------------------------------------------
// E10 — Campaign throughput per engine (CDevil, 1 thread, dedup on): the
// end-to-end effect of swapping the execution engine.
// ---------------------------------------------------------------------------

void campaign_engine_bench(benchmark::State& state,
                           minic::ExecEngine engine) {
  auto spec = devil::compile_spec("ide.dil", corpus::ide_spec(),
                                  devil::CodegenMode::kDebug);
  eval::DriverCampaignConfig cfg;
  cfg.stubs = spec.stubs;
  cfg.driver = corpus::cdevil_ide_driver();
  cfg.device = eval::ide_binding();
  cfg.is_cdevil = true;
  cfg.threads = 1;
  cfg.engine = engine;
  size_t mutants = 0, deduped = 0;
  for (auto _ : state) {
    auto res = eval::run_driver_campaign(cfg);
    mutants = res.sampled_mutants;
    deduped = res.deduped_mutants;
    benchmark::DoNotOptimize(res.tally.total_mutants);
  }
  state.counters["mutants"] = static_cast<double>(mutants);
  state.counters["deduped"] = static_cast<double>(deduped);
  state.counters["mutants_per_s"] = benchmark::Counter(
      static_cast<double>(mutants * state.iterations()),
      benchmark::Counter::kIsRate);
}

void BM_CampaignVm(benchmark::State& state) {
  campaign_engine_bench(state, minic::ExecEngine::kBytecodeVm);
}
BENCHMARK(BM_CampaignVm)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_CampaignTreeWalker(benchmark::State& state) {
  campaign_engine_bench(state, minic::ExecEngine::kTreeWalker);
}
BENCHMARK(BM_CampaignTreeWalker)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_DevilCompileSpec(benchmark::State& state) {
  for (auto _ : state) {
    auto r = devil::check_spec("ide.dil", corpus::ide_spec());
    benchmark::DoNotOptimize(r.ok());
  }
}
BENCHMARK(BM_DevilCompileSpec);

void BM_DevilGenerateStubs(benchmark::State& state) {
  for (auto _ : state) {
    auto r = devil::compile_spec("ide.dil", corpus::ide_spec(),
                                 devil::CodegenMode::kDebug);
    benchmark::DoNotOptimize(r.stubs.size());
  }
}
BENCHMARK(BM_DevilGenerateStubs);

void BM_MiniCCompileCDriver(benchmark::State& state) {
  const std::string& src = corpus::c_ide_driver();
  for (auto _ : state) {
    auto prog = minic::compile("ide_c.c", src);
    benchmark::DoNotOptimize(prog.ok());
  }
}
BENCHMARK(BM_MiniCCompileCDriver);

void BM_MiniCCompileCDevilUnit(benchmark::State& state) {
  auto spec = devil::compile_spec("ide.dil", corpus::ide_spec(),
                                  devil::CodegenMode::kDebug);
  std::string unit = spec.stubs + "\n" + corpus::cdevil_ide_driver();
  for (auto _ : state) {
    auto prog = minic::compile("ide.dil", unit);
    benchmark::DoNotOptimize(prog.ok());
  }
}
BENCHMARK(BM_MiniCCompileCDevilUnit);

void BM_BootCleanCDriver(benchmark::State& state) {
  auto prog = minic::compile("ide_c.c", corpus::c_ide_driver());
  for (auto _ : state) {
    hw::IoBus bus;
    bus.map(0x1f0, 8, std::make_shared<hw::IdeDisk>());
    minic::Interp interp(*prog.unit, bus, 3'000'000);
    auto out = interp.run("ide_boot");
    benchmark::DoNotOptimize(out.return_value);
  }
}
BENCHMARK(BM_BootCleanCDriver);

void BM_FullMutantCycle(benchmark::State& state) {
  // One complete experiment: splice a mutant, compile, boot, classify.
  const std::string& driver = corpus::c_ide_driver();
  mutation::CScanOptions opt;
  opt.classes = mutation::classes_for_c_driver(driver);
  auto sites = mutation::scan_c_sites(driver, opt);
  auto mutants = mutation::generate_c_mutants(sites, opt.classes);
  size_t ix = 0;
  for (auto _ : state) {
    const auto& m = mutants[ix++ % mutants.size()];
    std::string mutated = mutation::apply_mutant(driver, sites, m);
    auto prog = minic::compile("ide_c.c", mutated);
    if (prog.ok()) {
      hw::IoBus bus;
      bus.map(0x1f0, 8, std::make_shared<hw::IdeDisk>());
      minic::Interp interp(*prog.unit, bus, 3'000'000);
      auto out = interp.run("ide_boot");
      benchmark::DoNotOptimize(out.fault);
    }
  }
  state.counters["paper_seconds_per_experiment"] = 120;  // for comparison
}
BENCHMARK(BM_FullMutantCycle)->Unit(benchmark::kMillisecond);

void BM_CDevilMutantCyclePrepared(benchmark::State& state) {
  // The campaign engine's per-mutant cycle for the stub-heavy CDevil unit:
  // the stub prefix is lexed once, only the driver tail is re-lexed.
  auto spec = devil::compile_spec("ide.dil", corpus::ide_spec(),
                                  devil::CodegenMode::kDebug);
  const std::string& driver = corpus::cdevil_ide_driver();
  auto prefix = minic::prepare_prefix("ide.dil", spec.stubs + "\n");
  mutation::CScanOptions opt;
  opt.classes = mutation::classes_for_cdevil_driver(spec.stubs, driver);
  auto sites = mutation::scan_c_sites(driver, opt);
  auto mutants = mutation::generate_c_mutants(sites, opt.classes);
  size_t ix = 0;
  for (auto _ : state) {
    const auto& m = mutants[ix++ % mutants.size()];
    std::string mutated = mutation::apply_mutant(driver, sites, m);
    auto prog = minic::compile_with_prefix(prefix, mutated);
    if (prog.ok()) {
      hw::IoBus bus;
      bus.map(0x1f0, 8, std::make_shared<hw::IdeDisk>());
      minic::Interp interp(*prog.unit, bus, 3'000'000);
      auto out = interp.run("ide_boot");
      benchmark::DoNotOptimize(out.fault);
    }
  }
  state.counters["mutants_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CDevilMutantCyclePrepared)->Unit(benchmark::kMillisecond);

void BM_PatchedMutantCycle(benchmark::State& state) {
  // E16 — Bytecode-patch mutant cycle: the campaign's per-mutant cost when
  // the mutant is token-local and boots from a patched copy of the clean
  // tail module — no lexer, parser, typechecker or lowering at all. Compare
  // BM_CDevilMutantCyclePrepared (whole-unit front end per mutant) and
  // BM_PrefixCompileCached (tail-only front end): the patch path replaces
  // both with an operand rewrite. Patchability is classified once outside
  // the timing loop (the campaign builds its request table the same way);
  // the loop measures patch + boot + classify only, over the patchable
  // subset of the ide CDevil corpus.
  auto spec = devil::compile_spec("ide.dil", corpus::ide_spec(),
                                  devil::CodegenMode::kDebug);
  const std::string& driver = corpus::cdevil_ide_driver();
  auto prefix = minic::prepare_prefix("ide.dil", spec.stubs + "\n");
  mutation::CScanOptions opt;
  opt.classes = mutation::classes_for_cdevil_driver(spec.stubs, driver);
  auto sites = mutation::scan_c_sites(driver, opt);
  auto mutants = mutation::generate_c_mutants(sites, opt.classes);
  std::vector<minic::SiteSpan> spans;
  for (size_t i = 0; i < sites.size(); ++i) {
    spans.push_back({static_cast<uint32_t>(sites[i].offset),
                     static_cast<uint32_t>(sites[i].length),
                     static_cast<uint32_t>(i)});
  }
  auto recorded = minic::compile_tail_recording(prefix, driver, spans);
  minic::bytecode::Patcher patcher(*recorded.spliced.module,
                                   prefix.compiled->unit, *recorded.tail_unit,
                                   recorded.macros, std::move(recorded.patch));
  auto lex_one = [](const std::string& text) -> std::optional<minic::Token> {
    support::DiagnosticEngine diags;
    support::SourceBuffer buf("replacement", text);
    auto lexed = minic::lex_unit(buf, diags, {});
    if (diags.has_errors() || lexed.tokens.size() != 2) return std::nullopt;
    return lexed.tokens.front();
  };
  std::vector<minic::bytecode::PatchRequest> reqs;
  for (const auto& m : mutants) {
    const auto& site = sites[m.site];
    auto tok = lex_one(m.replacement);
    if (!tok) continue;
    minic::bytecode::PatchRequest req;
    req.site = static_cast<uint32_t>(m.site);
    switch (site.kind) {
      case mutation::SiteKind::kOperator:
        req.kind = minic::bytecode::PatchRequest::Kind::kOperator;
        req.new_op = tok->kind;
        break;
      case mutation::SiteKind::kLiteral:
        if (tok->kind != minic::Tok::kIntLit) continue;
        req.kind = minic::bytecode::PatchRequest::Kind::kLiteral;
        req.value = tok->int_value;
        break;
      case mutation::SiteKind::kIdentifier:
        if (tok->kind != minic::Tok::kIdent) continue;
        req.kind = minic::bytecode::PatchRequest::Kind::kIdentifier;
        req.original = site.original;
        req.replacement = m.replacement;
        break;
    }
    if (patcher.apply(req)) reqs.push_back(std::move(req));
  }
  size_t ix = 0;
  for (auto _ : state) {
    const auto& req = reqs[ix++ % reqs.size()];
    auto module = patcher.apply(req);
    hw::IoBus bus;
    bus.map(0x1f0, 8, std::make_shared<hw::IdeDisk>());
    auto out = minic::run_module(*module, bus, "ide_boot", 3'000'000);
    benchmark::DoNotOptimize(out.fault);
  }
  state.counters["patchable"] = static_cast<double>(reqs.size());
  state.counters["mutants_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PatchedMutantCycle)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// E11 — Compiled-prefix pipeline. BM_TailLower isolates the per-mutant
// front-end cost with the stage-1 cache (lex+parse+typecheck+lower of the
// driver tail only, spliced onto the shared segment) — compare against
// BM_MiniCCompileCDevilUnit, the whole-unit front end it replaces.
// BM_PrefixCompileCached is the full cached mutant cycle, the counterpart
// of BM_CDevilMutantCyclePrepared on the token-splice path.
// ---------------------------------------------------------------------------

void BM_TailLower(benchmark::State& state) {
  auto spec = devil::compile_spec("ide.dil", corpus::ide_spec(),
                                  devil::CodegenMode::kDebug);
  auto prefix = minic::prepare_prefix("ide.dil", spec.stubs + "\n");
  const std::string& driver = corpus::cdevil_ide_driver();
  for (auto _ : state) {
    auto spliced = minic::compile_tail(prefix, driver);
    benchmark::DoNotOptimize(spliced.ok());
  }
}
BENCHMARK(BM_TailLower);

void BM_PrefixCompileCached(benchmark::State& state) {
  auto spec = devil::compile_spec("ide.dil", corpus::ide_spec(),
                                  devil::CodegenMode::kDebug);
  const std::string& driver = corpus::cdevil_ide_driver();
  auto prefix = minic::prepare_prefix("ide.dil", spec.stubs + "\n");
  mutation::CScanOptions opt;
  opt.classes = mutation::classes_for_cdevil_driver(spec.stubs, driver);
  auto sites = mutation::scan_c_sites(driver, opt);
  auto mutants = mutation::generate_c_mutants(sites, opt.classes);
  size_t ix = 0;
  for (auto _ : state) {
    const auto& m = mutants[ix++ % mutants.size()];
    std::string mutated = mutation::apply_mutant(driver, sites, m);
    auto spliced = minic::compile_tail(prefix, mutated);
    if (spliced.ok()) {
      hw::IoBus bus;
      bus.map(0x1f0, 8, std::make_shared<hw::IdeDisk>());
      auto out = minic::run_module(*spliced.module, bus, "ide_boot",
                                   3'000'000);
      benchmark::DoNotOptimize(out.fault);
    }
  }
}
BENCHMARK(BM_PrefixCompileCached)->Unit(benchmark::kMillisecond);

// The headline number: full campaign wall-clock at 1/2/4/8 worker threads.
// Results are identical at every thread count (ctest asserts this); only
// the wall-clock changes.
void BM_CampaignParallel(benchmark::State& state) {
  eval::DriverCampaignConfig cfg;
  cfg.driver = corpus::c_ide_driver();
  cfg.device = eval::ide_binding();
  cfg.threads = static_cast<unsigned>(state.range(0));
  size_t mutants = 0;
  for (auto _ : state) {
    auto res = eval::run_driver_campaign(cfg);
    mutants = res.sampled_mutants;
    benchmark::DoNotOptimize(res.tally.total_mutants);
  }
  state.counters["mutants"] = static_cast<double>(mutants);
  state.counters["mutants_per_s"] = benchmark::Counter(
      static_cast<double>(mutants * state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CampaignParallel)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// ---------------------------------------------------------------------------
// E12 — Second device: busmouse campaign throughput on the generic kernel
// (full enumeration, 1 thread; the corpus is small enough to skip the 25%
// sample). Mutants/s is the comparable headline counter.
// ---------------------------------------------------------------------------

void busmouse_campaign_bench(benchmark::State& state, bool cdevil) {
  auto spec = devil::compile_spec("busmouse.dil", corpus::busmouse_spec(),
                                  devil::CodegenMode::kDebug);
  eval::DriverCampaignConfig cfg;
  if (cdevil) {
    cfg.stubs = spec.stubs;
    cfg.driver = corpus::cdevil_busmouse_driver();
    cfg.is_cdevil = true;
  } else {
    cfg.driver = corpus::c_busmouse_driver();
  }
  cfg.device = eval::busmouse_binding();
  cfg.sample_percent = 100;
  cfg.threads = 1;
  size_t mutants = 0, deduped = 0;
  for (auto _ : state) {
    auto res = eval::run_driver_campaign(cfg);
    mutants = res.sampled_mutants;
    deduped = res.deduped_mutants;
    benchmark::DoNotOptimize(res.tally.total_mutants);
  }
  state.counters["mutants"] = static_cast<double>(mutants);
  state.counters["deduped"] = static_cast<double>(deduped);
  state.counters["mutants_per_s"] = benchmark::Counter(
      static_cast<double>(mutants * state.iterations()),
      benchmark::Counter::kIsRate);
}

void BM_CampaignBusmouseC(benchmark::State& state) {
  busmouse_campaign_bench(state, false);
}
BENCHMARK(BM_CampaignBusmouseC)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_CampaignBusmouseCDevil(benchmark::State& state) {
  busmouse_campaign_bench(state, true);
}
BENCHMARK(BM_CampaignBusmouseCDevil)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// ---------------------------------------------------------------------------
// E13 — Sharding overhead. One shard of three of the busmouse C campaign
// (prep + slice run + artifact packaging) against a third of the unsharded
// campaign, plus the pure serialize/parse round-trip cost of the artifact.
// Sharding pays the campaign prep (baseline boot, site scan, sampling) per
// process; the counter shows what that costs at this corpus size.
// ---------------------------------------------------------------------------

void BM_CampaignShardBusmouseC(benchmark::State& state) {
  eval::DriverCampaignConfig cfg;
  cfg.driver = corpus::c_busmouse_driver();
  cfg.device = eval::busmouse_binding();
  cfg.sample_percent = 100;
  cfg.threads = 1;
  size_t records = 0;
  for (auto _ : state) {
    auto artifact =
        eval::run_campaign_shard(cfg, "C", eval::ShardSpec{1, 3});
    records = artifact.records.size();
    benchmark::DoNotOptimize(artifact.tally.total_mutants);
  }
  state.counters["records"] = static_cast<double>(records);
  state.counters["mutants_per_s"] = benchmark::Counter(
      static_cast<double>(records * state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CampaignShardBusmouseC)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_ShardArtifactRoundTrip(benchmark::State& state) {
  eval::DriverCampaignConfig cfg;
  cfg.driver = corpus::c_busmouse_driver();
  cfg.device = eval::busmouse_binding();
  cfg.sample_percent = 100;
  cfg.threads = 1;
  eval::ShardBundle bundle;
  bundle.shard = eval::ShardSpec{1, 3};
  bundle.campaigns.push_back(
      eval::run_campaign_shard(cfg, "C", bundle.shard));
  for (auto _ : state) {
    std::string text = eval::serialize_shard_bundle(bundle);
    auto parsed = eval::parse_shard_bundle(text);
    benchmark::DoNotOptimize(parsed.campaigns.size());
  }
}
BENCHMARK(BM_ShardArtifactRoundTrip)->Unit(benchmark::kMillisecond);

void BM_CampaignParallelCDevil(benchmark::State& state) {
  auto spec = devil::compile_spec("ide.dil", corpus::ide_spec(),
                                  devil::CodegenMode::kDebug);
  eval::DriverCampaignConfig cfg;
  cfg.stubs = spec.stubs;
  cfg.driver = corpus::cdevil_ide_driver();
  cfg.device = eval::ide_binding();
  cfg.is_cdevil = true;
  cfg.threads = static_cast<unsigned>(state.range(0));
  size_t mutants = 0;
  for (auto _ : state) {
    auto res = eval::run_driver_campaign(cfg);
    mutants = res.sampled_mutants;
    benchmark::DoNotOptimize(res.tally.total_mutants);
  }
  state.counters["mutants"] = static_cast<double>(mutants);
  state.counters["mutants_per_s"] = benchmark::Counter(
      static_cast<double>(mutants * state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CampaignParallelCDevil)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// ---------------------------------------------------------------------------
// E14 — Fault-injection campaign throughput: the full scenario matrix of the
// busmouse C driver (enumerate plans, boot each under its injector shim,
// classify). Scenarios/s rides the mutants_per_s counter so the existing
// bench gate covers it.
// ---------------------------------------------------------------------------

void BM_FaultCampaign(benchmark::State& state) {
  eval::FaultCampaignConfig cfg;
  cfg.base.driver = corpus::c_busmouse_driver();
  cfg.base.device = eval::busmouse_binding();
  cfg.base.threads = 1;
  size_t scenarios = 0, triggered = 0;
  for (auto _ : state) {
    auto res = eval::run_fault_campaign(cfg);
    scenarios = res.sampled_scenarios;
    triggered = res.triggered_scenarios;
    benchmark::DoNotOptimize(res.tally.total);
  }
  state.counters["scenarios"] = static_cast<double>(scenarios);
  state.counters["triggered"] = static_cast<double>(triggered);
  state.counters["mutants_per_s"] = benchmark::Counter(
      static_cast<double>(scenarios * state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FaultCampaign)->Unit(benchmark::kMillisecond)->UseRealTime();

// ---------------------------------------------------------------------------
// E15 — Telemetry overhead. The busmouse C campaign with the metrics
// collector off and on, interleaved ABAB inside each iteration so clock
// drift cancels; `overhead_percent` compares the best run of each mode
// (min-of-N is robust to scheduler noise). The gate (compare_bench.py,
// run_bench.sh --check) asserts the counter stays under 2% — the collector
// must be near-free, and the disabled path (one relaxed atomic load per
// instrumentation point) free-er still. No mutants_per_s counter: this row
// is gated on overhead, not throughput, and recorded baselines stay valid.
// ---------------------------------------------------------------------------

void BM_MetricsOverhead(benchmark::State& state) {
  eval::DriverCampaignConfig cfg;
  cfg.driver = corpus::c_busmouse_driver();
  cfg.device = eval::busmouse_binding();
  cfg.sample_percent = 100;
  cfg.threads = 1;
  auto timed_run = [&cfg](bool telemetry) {
    support::Metrics::set_enabled(telemetry);
    uint64_t t0 = support::monotonic_ns();
    auto res = eval::run_driver_campaign(cfg);
    uint64_t elapsed = support::monotonic_ns() - t0;
    benchmark::DoNotOptimize(res.tally.total_mutants);
    return elapsed;
  };
  uint64_t best_off = ~0ull, best_on = ~0ull;
  for (auto _ : state) {
    for (int pair = 0; pair < 2; ++pair) {
      best_off = std::min(best_off, timed_run(false));
      best_on = std::min(best_on, timed_run(true));
    }
  }
  support::Metrics::set_enabled(false);
  support::Metrics::reset();
  state.counters["overhead_percent"] =
      best_off == 0 ? 0.0
                    : 100.0 *
                          (static_cast<double>(best_on) -
                           static_cast<double>(best_off)) /
                          static_cast<double>(best_off);
}
BENCHMARK(BM_MetricsOverhead)->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
