// E4 — Reproduces Table 4: "Mutations on CDevil code" (the Devil
// re-engineered IDE driver: generated debug stubs + CDevil glue; mutations
// applied to the CDevil region only).
//
// `--production` runs the ablation of design decision #1 (DESIGN.md): the
// same campaign against production-mode stubs, which demotes most
// compile-time catches to boot-time behaviour.
#include <cstdio>
#include <cstring>

#include "corpus/drivers.h"
#include "corpus/specs.h"
#include "devil/compiler.h"
#include "eval/device_bindings.h"
#include "eval/driver_campaign.h"
#include "eval/report.h"

int main(int argc, char** argv) {
  auto mode = devil::CodegenMode::kDebug;
  eval::DriverCampaignConfig cfg;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--production") == 0) {
      mode = devil::CodegenMode::kProduction;
    } else if (std::strcmp(argv[i], "--all") == 0) {
      cfg.sample_percent = 100;
    }
  }

  auto spec = devil::compile_spec("ide.dil", corpus::ide_spec(), mode);
  if (!spec.ok()) {
    std::fprintf(stderr, "IDE specification failed to compile:\n%s",
                 spec.diags.render().c_str());
    return 1;
  }
  cfg.stubs = spec.stubs;
  cfg.driver = corpus::cdevil_ide_driver();
  cfg.device = eval::ide_binding();
  cfg.unit_name = "ide.dil";
  cfg.is_cdevil = true;
  auto res = eval::run_driver_campaign(cfg);

  const char* title = mode == devil::CodegenMode::kDebug
                          ? "Table 4: Mutations on CDevil code (debug stubs)"
                          : "Table 4 ablation: CDevil with production stubs";
  std::printf("%s", eval::render_driver_table(title, res).c_str());
  std::printf(
      "\nPaper reference (545 sampled mutants): compile 58.0 %%, run-time "
      "14.1 %%,\ncrash 0.0 %%, infinite loop 0.7 %%, halt 4.9 %%, damaged "
      "0.5 %%, boot 12.3 %%,\ndead code 9.4 %%.\n");

  if (mode == devil::CodegenMode::kDebug) {
    // Headline comparison against the C campaign (paper section 4.2).
    eval::DriverCampaignConfig c_cfg;
    c_cfg.driver = corpus::c_ide_driver();
    c_cfg.device = eval::ide_binding();
    c_cfg.unit_name = "ide_c.c";
    c_cfg.sample_percent = cfg.sample_percent;
    auto c_res = eval::run_driver_campaign(c_cfg);
    std::printf("\n%s", eval::render_comparison(c_res, res).c_str());
  }
  return 0;
}
