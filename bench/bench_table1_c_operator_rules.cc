// E1 — Reproduces Table 1: "Mutation rules for C operators" (paper §3.3).
#include <cstdio>

#include "mutation/c_mutator.h"
#include "support/table.h"

int main() {
  std::printf("Table 1: Mutation rules for C operators (paper section 3.3)\n");
  support::TextTable t({"operator", "mutants"});
  for (const auto& rule : mutation::c_operator_rules()) {
    std::string mutants;
    for (size_t i = 0; i < rule.mutants.size(); ++i) {
      if (i) mutants += "  ";
      mutants += rule.mutants[i];
    }
    t.add_row({rule.op, mutants});
  }
  std::printf("%s", t.render().c_str());
  std::printf(
      "\nNote: the published table is partially garbled in the archived PDF;\n"
      "this is our reconstruction from the paper's prose (bit-mask '&' vs\n"
      "'&&' confusion, reversed shifts, +/- slips), with replacement always\n"
      "inside the equivalent operator class (section 3.1).\n");
  return 0;
}
