// E7 — Performance claim from the paper's §1/§5 ([11]): drivers built from
// generated stubs are "almost as efficient as the original ones".
//
// We measure the three styles of the busmouse read path executing in the
// MiniC interpreter against the simulated device:
//   - raw C (hand-written shifts/masks, the original driver),
//   - Devil production stubs,
//   - Devil debug stubs (adds assertions + struct plumbing).
// The interesting ratio is production/raw (paper: near 1) and debug/raw
// (the price of the run-time checks, acceptable during development).
#include <benchmark/benchmark.h>

#include <memory>

#include "corpus/drivers.h"
#include "corpus/specs.h"
#include "devil/compiler.h"
#include "hw/busmouse.h"
#include "hw/io_bus.h"
#include "minic/program.h"

namespace {

struct World {
  hw::IoBus bus;
  std::shared_ptr<hw::Busmouse> mouse = std::make_shared<hw::Busmouse>();
  World() {
    mouse->set_motion(5, -3, 2);
    bus.map(0x23c, 4, mouse);
  }
};

void run_driver(benchmark::State& state, const std::string& name,
                const std::string& unit) {
  World w;
  minic::Program prog = minic::compile(name, unit);
  if (!prog.ok()) {
    state.SkipWithError(prog.diags.render().c_str());
    return;
  }
  uint64_t steps = 0;
  for (auto _ : state) {
    minic::Interp interp(*prog.unit, w.bus, 10'000'000);
    auto out = interp.run("mouse_boot");
    if (out.fault != minic::FaultKind::kNone) {
      state.SkipWithError(out.fault_message.c_str());
      return;
    }
    benchmark::DoNotOptimize(out.return_value);
    steps = out.steps_used;
  }
  // Interpreter steps ~ executed driver operations: the comparable cost
  // metric across the three styles (wall time also reported).
  state.counters["driver_ops"] = static_cast<double>(steps);
}

void BM_RawC(benchmark::State& state) {
  run_driver(state, "bm_c.c", corpus::c_busmouse_driver());
}

void BM_DevilProduction(benchmark::State& state) {
  auto r = devil::compile_spec("busmouse.dil", corpus::busmouse_spec(),
                               devil::CodegenMode::kProduction);
  run_driver(state, "busmouse.dil",
             r.stubs + "\n" + corpus::cdevil_busmouse_driver());
}

void BM_DevilDebug(benchmark::State& state) {
  auto r = devil::compile_spec("busmouse.dil", corpus::busmouse_spec(),
                               devil::CodegenMode::kDebug);
  run_driver(state, "busmouse.dil",
             r.stubs + "\n" + corpus::cdevil_busmouse_driver());
}

BENCHMARK(BM_RawC);
BENCHMARK(BM_DevilProduction);
BENCHMARK(BM_DevilDebug);

}  // namespace

BENCHMARK_MAIN();
