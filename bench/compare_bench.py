#!/usr/bin/env python3
"""Perf gate: compare campaign-throughput benchmarks against a baseline.

Reads two google-benchmark JSON files and compares every benchmark that
reports a `mutants_per_s` counter (the campaign-throughput rows — step-rate
and compile micro-benches are excluded, they are tracked but not gated).

Policy (the CI perf gate):
  - a regression worse than --tolerance (default 25%) emits a GitHub
    `::warning::` annotation — visible on the PR, but not failing, because
    the committed baseline was recorded on different hardware;
  - a regression worse than 2x emits `::error::` and exits non-zero — that
    magnitude means a real algorithmic slip, not runner noise;
  - a campaign bench present in the baseline but missing from the fresh run
    is an error too (a silently dropped bench would blind the gate).

Usage: compare_bench.py --baseline BENCH_campaign.json --fresh fresh.json
                        [--tolerance 0.25]
"""

import argparse
import json
import sys

HARD_FAIL_RATIO = 0.5  # fresh must hold at least half the baseline rate
OVERHEAD_LIMIT_PERCENT = 2.0  # telemetry must be near-free (BM_MetricsOverhead)


def campaign_rates(path):
    with open(path) as f:
        doc = json.load(f)
    rates = {}
    for bench in doc.get("benchmarks", []):
        if "mutants_per_s" in bench:
            rates[bench["name"]] = float(bench["mutants_per_s"])
    return rates


def overhead_rows(path):
    """Benches reporting an `overhead_percent` counter (BM_MetricsOverhead)."""
    with open(path) as f:
        doc = json.load(f)
    rows = {}
    for bench in doc.get("benchmarks", []):
        if "overhead_percent" in bench:
            rows[bench["name"]] = float(bench["overhead_percent"])
    return rows


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--fresh", required=True)
    parser.add_argument("--tolerance", type=float, default=0.25)
    args = parser.parse_args()

    baseline = campaign_rates(args.baseline)
    fresh = campaign_rates(args.fresh)
    if not baseline:
        print(f"::error::perf gate: no campaign benches (mutants_per_s) "
              f"in baseline {args.baseline}")
        return 1

    failed = False
    for name in sorted(baseline):
        base_rate = baseline[name]
        if name not in fresh:
            print(f"::error::perf gate: campaign bench '{name}' is in the "
                  f"baseline but missing from the fresh run")
            failed = True
            continue
        ratio = fresh[name] / base_rate if base_rate > 0 else float("inf")
        line = (f"{name}: {fresh[name]:,.0f} mutants/s vs baseline "
                f"{base_rate:,.0f} ({ratio:.2f}x)")
        if ratio < HARD_FAIL_RATIO:
            print(f"::error::perf gate: {line} — worse than 2x regression")
            failed = True
        elif ratio < 1.0 - args.tolerance:
            print(f"::warning::perf gate: {line} — exceeds "
                  f"{args.tolerance:.0%} tolerance (warn-only)")
        else:
            print(f"perf gate: {line}")

    new = sorted(set(fresh) - set(baseline))
    if new:
        print(f"perf gate: new campaign benches not yet in the baseline: "
              f"{', '.join(new)}")

    # Telemetry overhead is gated against a fixed ceiling, not the baseline:
    # the metrics collector must cost < OVERHEAD_LIMIT_PERCENT on a campaign
    # run whichever hardware recorded the baseline.
    for name, pct in sorted(overhead_rows(args.fresh).items()):
        if pct >= OVERHEAD_LIMIT_PERCENT:
            print(f"::error::perf gate: {name} telemetry overhead "
                  f"{pct:.2f}% >= {OVERHEAD_LIMIT_PERCENT:.0f}% ceiling")
            failed = True
        else:
            print(f"perf gate: {name} telemetry overhead {pct:.2f}% "
                  f"(< {OVERHEAD_LIMIT_PERCENT:.0f}% ceiling)")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
