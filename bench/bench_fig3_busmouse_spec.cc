// E5 — Reproduces Figure 3: the Devil specification of the Logitech
// busmouse, compiled and summarised by our Devil compiler.
#include <cstdio>

#include "corpus/specs.h"
#include "devil/compiler.h"

int main() {
  std::printf("Figure 3: Specification of the Logitech busmouse\n");
  std::printf("------------------------------------------------\n%s\n",
              corpus::busmouse_spec().c_str());
  auto r = devil::check_spec("busmouse.dil", corpus::busmouse_spec());
  if (!r.ok()) {
    std::fprintf(stderr, "specification rejected:\n%s",
                 r.diags.render().c_str());
    return 1;
  }
  std::printf("Devil compiler verdict: consistent.\n\n%s",
              devil::describe_device(*r.info).c_str());
  return 0;
}
