// E3 — Reproduces Table 3: "Mutations on C code" (original Linux-style IDE
// driver, hardware operating code tagged, 25% seeded mutant sample, each
// survivor booted against the simulated IDE disk).
#include <cstdio>
#include <cstring>

#include "corpus/drivers.h"
#include "eval/device_bindings.h"
#include "eval/driver_campaign.h"
#include "eval/report.h"

int main(int argc, char** argv) {
  eval::DriverCampaignConfig cfg;
  cfg.driver = corpus::c_ide_driver();
  cfg.device = eval::ide_binding();
  cfg.unit_name = "ide_c.c";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--all") == 0) cfg.sample_percent = 100;
  }
  auto res = eval::run_driver_campaign(cfg);
  std::printf("%s",
              eval::render_driver_table("Table 3: Mutations on C code", res)
                  .c_str());
  std::printf(
      "\nPaper reference (516 sampled mutants): compile 26.7 %%, crash 2.9 %%,"
      "\ninfinite loop 11.2 %%, halt 21.5 %%, damaged 2.9 %%, boot 34.7 %%.\n");
  return 0;
}
