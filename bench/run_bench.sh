#!/usr/bin/env bash
# Runs the campaign-throughput benchmark and writes BENCH_campaign.json next
# to the repo root, so the perf trajectory is tracked PR over PR.
#
# Usage: bench/run_bench.sh [build-dir]   (default: ./build)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"

if [[ ! -x "$build_dir/bench_campaign_throughput" ]]; then
  echo "building benchmarks in $build_dir ..." >&2
  cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release >&2
  cmake --build "$build_dir" --target bench_campaign_throughput -j >&2
fi

out="$repo_root/BENCH_campaign.json"
"$build_dir/bench_campaign_throughput" \
  --benchmark_min_time=0.5 \
  --benchmark_format=json > "$out"
echo "wrote $out" >&2
