#!/usr/bin/env bash
# Runs the campaign-throughput benchmark and writes BENCH_campaign.json next
# to the repo root, so the perf trajectory is tracked PR over PR.
#
# Usage: bench/run_bench.sh [build-dir]   (default: ./build)
#   BENCH_FILTER=<regex>  run only matching benchmarks while iterating,
#                         e.g. BENCH_FILTER='BM_TailLower|BM_PrefixCompile'.
#                         Filtered runs write to <build-dir>/BENCH_filtered.json
#                         so they never clobber the canonical PR-over-PR
#                         record at the repo root.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"

if [[ ! -x "$build_dir/bench_campaign_throughput" ]]; then
  echo "building benchmarks in $build_dir ..." >&2
  cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release >&2
  cmake --build "$build_dir" --target bench_campaign_throughput -j >&2
fi

out="$repo_root/BENCH_campaign.json"
if [[ -n "${BENCH_FILTER:-}" ]]; then
  out="$build_dir/BENCH_filtered.json"
fi
"$build_dir/bench_campaign_throughput" \
  --benchmark_min_time=0.5 \
  ${BENCH_FILTER:+--benchmark_filter="$BENCH_FILTER"} \
  --benchmark_format=json > "$out"
echo "wrote $out" >&2
