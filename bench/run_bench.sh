#!/usr/bin/env bash
# Runs the campaign-throughput benchmark and writes BENCH_campaign.json next
# to the repo root, so the perf trajectory is tracked PR over PR.
#
# Usage: bench/run_bench.sh [build-dir] [--check BASELINE.json]
#                           [--tolerance T]
#   (default build-dir: ./build)
#
#   --check BASELINE.json  perf-gate mode: write the fresh results to
#                          <build-dir>/BENCH_fresh.json (the canonical
#                          PR-over-PR record at the repo root is untouched)
#                          and compare the campaign-throughput rows against
#                          BASELINE via bench/compare_bench.py. Regressions
#                          past the tolerance warn; past 2x they fail.
#   --tolerance T          warn threshold for --check as a fraction
#                          (default 0.25 = warn beyond a 25% regression).
#
#   BENCH_FILTER=<regex>  run only matching benchmarks while iterating,
#                         e.g. BENCH_FILTER='BM_TailLower|BM_PrefixCompile'.
#                         Filtered runs write to <build-dir>/BENCH_filtered.json
#                         so they never clobber the canonical PR-over-PR
#                         record at the repo root.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"

build_dir=""
check_file=""
tolerance="0.25"
while [[ $# -gt 0 ]]; do
  case "$1" in
    --check)
      [[ $# -ge 2 ]] || { echo "--check needs a baseline file" >&2; exit 2; }
      check_file="$2"
      shift 2
      ;;
    --tolerance)
      [[ $# -ge 2 ]] || { echo "--tolerance needs a value" >&2; exit 2; }
      tolerance="$2"
      shift 2
      ;;
    --*)
      echo "unknown flag '$1' (usage: run_bench.sh [build-dir]" \
           "[--check BASELINE.json] [--tolerance T])" >&2
      exit 2
      ;;
    *)
      if [[ -n "$build_dir" ]]; then
        echo "unexpected argument '$1'" >&2
        exit 2
      fi
      build_dir="$1"
      shift
      ;;
  esac
done
build_dir="${build_dir:-$repo_root/build}"

if [[ ! -x "$build_dir/bench_campaign_throughput" ]]; then
  echo "building benchmarks in $build_dir ..." >&2
  cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release >&2
  cmake --build "$build_dir" --target bench_campaign_throughput -j >&2
fi

out="$repo_root/BENCH_campaign.json"
if [[ -n "$check_file" ]]; then
  out="$build_dir/BENCH_fresh.json"
  if [[ -n "${BENCH_FILTER:-}" ]]; then
    # A filtered run would be missing baseline rows and always fail the
    # gate; the check compares the full campaign suite.
    echo "ignoring BENCH_FILTER in --check mode" >&2
    BENCH_FILTER=""
  fi
elif [[ -n "${BENCH_FILTER:-}" ]]; then
  out="$build_dir/BENCH_filtered.json"
fi
"$build_dir/bench_campaign_throughput" \
  --benchmark_min_time=0.5 \
  ${BENCH_FILTER:+--benchmark_filter="$BENCH_FILTER"} \
  --benchmark_format=json > "$out"
echo "wrote $out" >&2

if [[ -n "$check_file" ]]; then
  python3 "$repo_root/bench/compare_bench.py" \
    --baseline "$check_file" --fresh "$out" --tolerance "$tolerance"
fi
