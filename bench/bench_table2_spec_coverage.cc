// E2 — Reproduces Table 2: "Mutation coverage of the Devil compiler".
//
// All mutants of all five specifications are checked (no sampling, as in the
// paper). Expected shape: 88-98% of mutants rejected, every spec above ~85%.
#include <cstdio>

#include "eval/report.h"
#include "eval/spec_campaign.h"

int main(int argc, char** argv) {
  bool verbose = argc > 1 && std::string(argv[1]) == "--survivors";
  std::printf("Table 2: Mutation coverage of the Devil compiler\n");
  auto rows = eval::run_all_spec_campaigns();
  std::printf("%s", eval::render_table2(rows).c_str());
  std::printf("\nPaper reference: 95.4 / 88.8 / 91.7 / 92.6 / 90.3 %%.\n");
  if (verbose) {
    std::printf("\nSample undetected mutants (semantically plausible "
                "specifications):\n");
    for (const auto& r : rows) {
      std::printf("  %s:\n", r.name.c_str());
      for (const auto& s : r.undetected_samples) {
        std::printf("    %s\n", s.c_str());
      }
    }
  }
  return 0;
}
