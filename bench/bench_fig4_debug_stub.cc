// E6 — Reproduces Figure 4: the debug stubs generated for the IDE `Drive`
// variable (struct type representation, tagged constants, typed get/set).
#include <cstdio>
#include <sstream>
#include <string>

#include "corpus/specs.h"
#include "devil/compiler.h"

namespace {

/// Extracts the blocks of `stubs` mentioning `needle` (a crude grep so the
/// output matches the figure's focus on one variable).
void print_sections(const std::string& stubs, const std::string& needle) {
  std::istringstream in(stubs);
  std::string line;
  bool printing = false;
  int depth = 0;
  while (std::getline(in, line)) {
    if (!printing && line.find(needle) != std::string::npos) {
      printing = true;
      depth = 0;
    }
    if (printing) {
      std::printf("%s\n", line.c_str());
      for (char c : line) {
        if (c == '{') ++depth;
        if (c == '}') --depth;
      }
      if (line.find(';') != std::string::npos && depth == 0) printing = false;
    }
  }
}

}  // namespace

int main() {
  auto r = devil::compile_spec("ide.dil", corpus::ide_spec(),
                               devil::CodegenMode::kDebug);
  if (!r.ok()) {
    std::fprintf(stderr, "%s", r.diags.render().c_str());
    return 1;
  }
  std::printf("Figure 4: Debug stub for the IDE Drive variable\n");
  std::printf("-----------------------------------------------\n");
  std::printf("/* Type representation */\n");
  print_sections(r.stubs, "struct Drive_t");
  print_sections(r.stubs, "const Drive_t");
  std::printf("\n/* register stubs for ide_select */\n");
  print_sections(r.stubs, "reg_set_select_reg");
  print_sections(r.stubs, "reg_get_select_reg");
  std::printf("\n/* typed stubs for the Drive variable */\n");
  print_sections(r.stubs, "void set_Drive");
  print_sections(r.stubs, "Drive_t get_Drive");
  return 0;
}
