// Property-style sweeps over the whole corpus (parameterised gtest):
//  - every Devil mutant of every spec is still lexable and parseable
//    (§3.1: "mutation rules are always defined such that mutants are
//    syntactically correct");
//  - the Devil compiler never crashes on any mutant, and accepts/rejects
//    deterministically;
//  - every sampled C mutant of both drivers is syntactically valid MiniC;
//  - round-trip: print(parse(spec)) re-parses to an equivalent device.
#include <gtest/gtest.h>

#include "corpus/drivers.h"
#include "corpus/specs.h"
#include "devil/compiler.h"
#include "devil/lexer.h"
#include "devil/parser.h"
#include "devil/printer.h"
#include "minic/lexer.h"
#include "minic/parser.h"
#include "mutation/c_mutator.h"
#include "mutation/devil_mutator.h"
#include "support/rng.h"

namespace {

class SpecSweep : public ::testing::TestWithParam<size_t> {
 protected:
  const corpus::SpecEntry& spec() const {
    return corpus::all_specs()[GetParam()];
  }
};

std::string spec_case_name(const ::testing::TestParamInfo<size_t>& info) {
  static const char* names[] = {"busmouse", "pci", "ide", "ne2000",
                                "permedia2"};
  return names[info.index];
}

INSTANTIATE_TEST_SUITE_P(AllSpecs, SpecSweep, ::testing::Range<size_t>(0, 5),
                         spec_case_name);

mutation::DevilNames names_for(const corpus::SpecEntry& spec) {
  auto baseline = devil::check_spec(spec.file, spec.text);
  EXPECT_TRUE(baseline.ok());
  mutation::DevilNames names;
  for (const auto& p : baseline.spec->device.params) {
    names.ports.push_back(p.name);
  }
  for (const auto& r : baseline.spec->device.registers) {
    names.registers.push_back(r.name);
  }
  for (const auto& v : baseline.spec->device.variables) {
    names.variables.push_back(v.name);
  }
  return names;
}

TEST_P(SpecSweep, EveryDevilMutantIsSyntacticallyValid) {
  auto names = names_for(spec());
  auto sites = mutation::scan_devil_sites(spec().text, names);
  auto mutants = mutation::generate_devil_mutants(sites, names);
  ASSERT_FALSE(mutants.empty());
  size_t parse_failures = 0;
  for (const auto& m : mutants) {
    std::string mutated = mutation::apply_mutant(spec().text, sites, m);
    support::DiagnosticEngine diags;
    support::SourceBuffer buf(spec().file, mutated);
    devil::Lexer lexer(buf, diags);
    auto toks = lexer.lex_all();
    if (diags.has_errors()) {
      ++parse_failures;
      continue;
    }
    devil::Parser parser(std::move(toks), diags);
    if (!parser.parse()) ++parse_failures;
  }
  EXPECT_EQ(parse_failures, 0u)
      << parse_failures << " of " << mutants.size()
      << " mutants broke the grammar (the error model must not)";
}

TEST_P(SpecSweep, CompilerVerdictIsDeterministic) {
  auto names = names_for(spec());
  auto sites = mutation::scan_devil_sites(spec().text, names);
  auto mutants = mutation::generate_devil_mutants(sites, names);
  // Sample a slice; full determinism is covered by the campaign test.
  auto keep = support::sample_indices(mutants.size(), 5, 7);
  for (size_t ix : keep) {
    std::string mutated =
        mutation::apply_mutant(spec().text, sites, mutants[ix]);
    bool first = devil::check_spec(spec().file, mutated).ok();
    bool second = devil::check_spec(spec().file, mutated).ok();
    EXPECT_EQ(first, second);
  }
}

TEST_P(SpecSweep, SitesHaveConsistentBookkeeping) {
  auto names = names_for(spec());
  auto sites = mutation::scan_devil_sites(spec().text, names);
  ASSERT_FALSE(sites.empty());
  for (const auto& s : sites) {
    ASSERT_LE(s.offset + s.length, spec().text.size());
    EXPECT_EQ(spec().text.substr(s.offset, s.length),
              s.kind == mutation::SiteKind::kLiteral && !s.charset.empty()
                  ? "'" + s.original + "'"
                  : s.original);
    EXPECT_GE(s.line, 1u);
  }
  // Sites are in source order and non-overlapping.
  for (size_t i = 1; i < sites.size(); ++i) {
    EXPECT_GE(sites[i].offset, sites[i - 1].offset + sites[i - 1].length);
  }
}

TEST_P(SpecSweep, PrintParseRoundTrip) {
  auto first = devil::check_spec(spec().file, spec().text);
  ASSERT_TRUE(first.ok()) << first.diags.render();
  std::string printed = devil::print_spec(*first.spec);
  auto second = devil::check_spec(spec().file, printed);
  ASSERT_TRUE(second.ok())
      << "pretty-printed spec no longer checks:\n" << printed << "\n"
      << second.diags.render();
  // Same entity counts and a fixed point on the second print.
  EXPECT_EQ(first.spec->device.registers.size(),
            second.spec->device.registers.size());
  EXPECT_EQ(first.spec->device.variables.size(),
            second.spec->device.variables.size());
  EXPECT_EQ(devil::print_spec(*second.spec), printed);
}

TEST_P(SpecSweep, StubsIdenticalForIdenticalInput) {
  auto a = devil::compile_spec(spec().file, spec().text,
                               devil::CodegenMode::kDebug);
  auto b = devil::compile_spec(spec().file, spec().text,
                               devil::CodegenMode::kDebug);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a.stubs, b.stubs);
}

// ---- C-side sweeps -------------------------------------------------------------

class DriverSweep : public ::testing::TestWithParam<bool> {};

INSTANTIATE_TEST_SUITE_P(BothDrivers, DriverSweep, ::testing::Bool(),
                         [](const auto& info) {
                           return info.param ? "cdevil" : "classic_c";
                         });

TEST_P(DriverSweep, SampledMutantsAreSyntacticallyValidMiniC) {
  bool is_cdevil = GetParam();
  std::string stubs;
  if (is_cdevil) {
    auto spec = devil::compile_spec("ide.dil", corpus::ide_spec(),
                                    devil::CodegenMode::kDebug);
    ASSERT_TRUE(spec.ok());
    stubs = spec.stubs + "\n";
  }
  const std::string& driver =
      is_cdevil ? corpus::cdevil_ide_driver() : corpus::c_ide_driver();

  mutation::CScanOptions opt;
  opt.classes = is_cdevil
                    ? mutation::classes_for_cdevil_driver(stubs, driver)
                    : mutation::classes_for_c_driver(driver);
  auto sites = mutation::scan_c_sites(driver, opt);
  auto mutants = mutation::generate_c_mutants(sites, opt.classes);
  ASSERT_GT(mutants.size(), 500u);

  auto keep = support::sample_indices(mutants.size(), 10, 11);
  size_t syntax_failures = 0;
  for (size_t ix : keep) {
    std::string unit =
        stubs + mutation::apply_mutant(driver, sites, mutants[ix]);
    support::DiagnosticEngine diags;
    support::SourceBuffer buf("m.c", unit);
    auto lexed = minic::lex_unit(buf, diags);
    if (diags.has_errors()) {
      ++syntax_failures;  // the error model must never break the lexer
      continue;
    }
    minic::Parser parser(std::move(lexed.tokens), diags);
    if (!parser.parse()) ++syntax_failures;
  }
  EXPECT_EQ(syntax_failures, 0u);
}

TEST_P(DriverSweep, MutantSitesAllInsideTaggedRegion) {
  bool is_cdevil = GetParam();
  const std::string& driver =
      is_cdevil ? corpus::cdevil_ide_driver() : corpus::c_ide_driver();
  mutation::CScanOptions opt;
  opt.classes = mutation::classes_for_c_driver(driver);
  auto sites = mutation::scan_c_sites(driver, opt);
  size_t begin = driver.find("MUT_BEGIN");
  size_t end = driver.find("MUT_END");
  ASSERT_NE(begin, std::string::npos);
  ASSERT_NE(end, std::string::npos);
  for (const auto& s : sites) {
    EXPECT_GT(s.offset, begin);
    EXPECT_LT(s.offset, end);
  }
}

}  // namespace
