// Differential suite for the bytecode VM vs the tree walker: both engines
// must produce byte-identical RunOutcomes (fault kind and message, return
// value, step count, coverage bitmap, printk log) for every corpus driver,
// every Devil-generated stub set, sampled mutants from both Tables 3/4
// campaigns, and across a dense sweep of step budgets (which pins the
// charge-per-node accounting, not just the totals).
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "corpus/drivers.h"
#include "corpus/smoke_drivers.h"
#include "corpus/specs.h"
#include "devil/compiler.h"
#include "eval/device_bindings.h"
#include "eval/driver_campaign.h"
#include "eval/report.h"
#include "hw/ide_disk.h"
#include "hw/io_bus.h"
#include "hw/misc_devices.h"
#include "minic/program.h"
#include "mutation/c_mutator.h"
#include "support/rng.h"

namespace {

/// IoEnvironment with scripted reads; identical streams for both engines.
class FakeIo : public minic::IoEnvironment {
 public:
  uint32_t io_in(uint32_t port, int width) override {
    (void)width;
    auto it = values.find(port);
    return it == values.end() ? 0xffu : it->second;
  }
  void io_out(uint32_t port, uint32_t value, int width) override {
    writes.emplace_back(port, value, width);
  }
  std::map<uint32_t, uint32_t> values;
  std::vector<std::tuple<uint32_t, uint32_t, int>> writes;
};

void expect_same_outcome(const minic::RunOutcome& walker,
                         const minic::RunOutcome& vm,
                         const std::string& label) {
  EXPECT_EQ(walker.fault, vm.fault) << label;
  EXPECT_EQ(walker.fault_message, vm.fault_message) << label;
  EXPECT_EQ(walker.return_value, vm.return_value) << label;
  EXPECT_EQ(walker.steps_used, vm.steps_used) << label;
  EXPECT_EQ(walker.executed_lines, vm.executed_lines) << label;
  EXPECT_EQ(walker.log, vm.log) << label;
}

/// Runs `unit` on both engines against fresh IDE disks and compares
/// everything, including the device's post-run damage state.
void diff_on_ide(const std::string& name, const minic::Unit& unit,
                 const std::string& entry, uint64_t budget,
                 const std::string& label) {
  (void)name;
  hw::IoBus bus_w;
  auto disk_w = std::make_shared<hw::IdeDisk>();
  bus_w.map(0x1f0, 8, disk_w);
  auto walker = minic::run_unit(unit, bus_w, entry, budget,
                                minic::ExecEngine::kTreeWalker);

  hw::IoBus bus_v;
  auto disk_v = std::make_shared<hw::IdeDisk>();
  bus_v.map(0x1f0, 8, disk_v);
  auto vm = minic::run_unit(unit, bus_v, entry, budget,
                            minic::ExecEngine::kBytecodeVm);

  expect_same_outcome(walker, vm, label);
  EXPECT_EQ(disk_w->damaged(), disk_v->damaged()) << label;
  EXPECT_EQ(disk_w->sectors_read(), disk_v->sectors_read()) << label;
  EXPECT_EQ(disk_w->protocol_violations(), disk_v->protocol_violations())
      << label;
}

void diff_source(const std::string& src, const std::string& entry,
                 uint64_t budget, const std::string& label) {
  auto prog = minic::compile("t.c", src);
  ASSERT_TRUE(prog.ok()) << label << "\n" << prog.diags.render();
  FakeIo io_w, io_v;
  io_w.values[0x1f7] = io_v.values[0x1f7] = 0x50;
  auto walker = minic::run_unit(*prog.unit, io_w, entry, budget,
                                minic::ExecEngine::kTreeWalker);
  auto vm = minic::run_unit(*prog.unit, io_v, entry, budget,
                            minic::ExecEngine::kBytecodeVm);
  expect_same_outcome(walker, vm, label);
  EXPECT_EQ(io_w.writes, io_v.writes) << label;
}

// ---------------------------------------------------------------------------
// Corpus drivers, every stub mode.
// ---------------------------------------------------------------------------

TEST(BytecodeVmDiff, CIdeDriver) {
  auto prog = minic::compile("ide_c.c", corpus::c_ide_driver());
  ASSERT_TRUE(prog.ok());
  diff_on_ide("ide_c.c", *prog.unit, "ide_boot", 3'000'000, "c ide");
}

TEST(BytecodeVmDiff, CDevilIdeDriverBothModes) {
  for (auto mode :
       {devil::CodegenMode::kDebug, devil::CodegenMode::kProduction}) {
    auto spec = devil::compile_spec("ide.dil", corpus::ide_spec(), mode);
    ASSERT_TRUE(spec.ok()) << spec.diags.render();
    auto prog = minic::compile(
        "ide.dil", spec.stubs + "\n" + corpus::cdevil_ide_driver());
    ASSERT_TRUE(prog.ok()) << prog.diags.render();
    diff_on_ide("ide.dil", *prog.unit, "ide_boot", 3'000'000,
                mode == devil::CodegenMode::kDebug ? "cdevil debug"
                                                   : "cdevil production");
  }
}

TEST(BytecodeVmDiff, BusmouseDrivers) {
  // The busmouse drivers poll ports the FakeIo answers; both engines must
  // see the identical I/O stream and outcome.
  auto c_prog = minic::compile("mouse_c.c", corpus::c_busmouse_driver());
  ASSERT_TRUE(c_prog.ok()) << c_prog.diags.render();
  FakeIo io_w, io_v;
  auto walker = minic::run_unit(*c_prog.unit, io_w, corpus::kMouseEntry,
                                500'000, minic::ExecEngine::kTreeWalker);
  auto vm = minic::run_unit(*c_prog.unit, io_v, corpus::kMouseEntry, 500'000,
                            minic::ExecEngine::kBytecodeVm);
  expect_same_outcome(walker, vm, "c busmouse");

  auto spec = devil::compile_spec("busmouse.dil", corpus::busmouse_spec(),
                                  devil::CodegenMode::kDebug);
  ASSERT_TRUE(spec.ok());
  auto d_prog = minic::compile(
      "busmouse.dil", spec.stubs + "\n" + corpus::cdevil_busmouse_driver());
  ASSERT_TRUE(d_prog.ok()) << d_prog.diags.render();
  FakeIo io_w2, io_v2;
  walker = minic::run_unit(*d_prog.unit, io_w2, corpus::kMouseEntry, 500'000,
                           minic::ExecEngine::kTreeWalker);
  vm = minic::run_unit(*d_prog.unit, io_v2, corpus::kMouseEntry, 500'000,
                       minic::ExecEngine::kBytecodeVm);
  expect_same_outcome(walker, vm, "cdevil busmouse");
}

TEST(BytecodeVmDiff, SmokeDriversAllSpecsBothModes) {
  struct Case {
    const char* file;
    const std::string* spec;
    const std::string* driver;
    const char* entry;
    uint32_t base;
    uint32_t len;
    int device;  // 0 = ne2000, 1 = pci, 2 = permedia2
  };
  const Case cases[] = {
      {"ne2000.dil", &corpus::ne2000_spec(), &corpus::cdevil_ne2000_driver(),
       "nic_boot", 0x300, 32, 0},
      {"piix_bm.dil", &corpus::pci_busmaster_spec(),
       &corpus::cdevil_pci_driver(), "bm_boot", 0xc000, 16, 1},
      {"permedia2.dil", &corpus::permedia2_spec(),
       &corpus::cdevil_permedia_driver(), "gfx_boot", 0xd000, 16, 2},
  };
  for (const Case& c : cases) {
    for (auto mode :
         {devil::CodegenMode::kDebug, devil::CodegenMode::kProduction}) {
      auto spec = devil::compile_spec(c.file, *c.spec, mode);
      ASSERT_TRUE(spec.ok()) << c.file;
      auto prog = minic::compile(c.file, spec.stubs + "\n" + *c.driver);
      ASSERT_TRUE(prog.ok()) << c.file << "\n" << prog.diags.render();

      minic::RunOutcome results[2];
      for (int e = 0; e < 2; ++e) {
        hw::IoBus bus;
        switch (c.device) {
          case 0: bus.map(c.base, c.len, std::make_shared<hw::Ne2000>()); break;
          case 1:
            bus.map(c.base, c.len, std::make_shared<hw::PciBusMaster>());
            break;
          default:
            bus.map(c.base, c.len, std::make_shared<hw::Permedia2>());
            break;
        }
        results[e] = minic::run_unit(*prog.unit, bus, c.entry, 500'000,
                                     e == 0 ? minic::ExecEngine::kTreeWalker
                                            : minic::ExecEngine::kBytecodeVm);
      }
      expect_same_outcome(results[0], results[1], c.file);
    }
  }
}

// ---------------------------------------------------------------------------
// Budget sweep: running the same unit at every budget in a dense range pins
// the per-node charge accounting — a single misplaced charge shifts every
// subsequent exhaustion line and step total.
// ---------------------------------------------------------------------------

TEST(BytecodeVmDiff, BudgetSweepMixedConstructs) {
  const std::string src = R"(
struct pair { int a; int b; };
int g_arr[4];
int g_count = 2 + 3;
cstring tag = "boot";

int helper(int x, int y) {
  if (x > y) { return x - y; }
  return helper(y, x + 1);
}

int f() {
  int i;
  int acc;
  struct pair p;
  u8 narrow;
  acc = 0;
  p.a = 7;
  p.b = p.a + 1;
  for (i = 0; i < 4; i++) {
    g_arr[i] = i * i;
    acc += g_arr[i];
  }
  i = 0;
  while (i < 3) {
    i = i + 1;
    if (i == 2) { continue; }
    acc = acc + 1;
  }
  do { acc ^= 5; } while (acc % 2 == 0);
  switch (acc & 3) {
    case 0: acc += 10; break;
    case 1: acc += 20;
    case 2: acc += 30; break;
    default: acc += 40;
  }
  narrow = 0x1ff;
  acc += narrow;
  acc += (acc > 100) ? 1 : 2;
  acc += (1 && acc) + (0 || 0);
  acc += helper(1, 3);
  acc += inb(0x1f7) & 0x10;
  outb(0xAB, 0x80);
  udelay(7);
  printk(tag);
  acc += strcmp("aa", "ab") < 0;
  acc += (u16)(acc * 3);
  acc += dil_val(acc);
  acc += dil_eq(3, 3);
  return acc;
}
)";
  // Full run first, to learn the total step count, then sweep every budget
  // below it (each budget exercises a different exhaustion point).
  auto prog = minic::compile("t.c", src);
  ASSERT_TRUE(prog.ok()) << prog.diags.render();
  FakeIo probe;
  probe.values[0x1f7] = 0x50;
  auto full = minic::run_unit(*prog.unit, probe, "f", 100'000,
                              minic::ExecEngine::kTreeWalker);
  ASSERT_EQ(full.fault, minic::FaultKind::kNone) << full.fault_message;
  ASSERT_LT(full.steps_used, 2000u);
  for (uint64_t budget = 0; budget <= full.steps_used + 2; ++budget) {
    diff_source(src, "f", budget, "budget=" + std::to_string(budget));
  }
}

TEST(BytecodeVmDiff, BudgetSweepCleanIdeBoot) {
  auto prog = minic::compile("ide_c.c", corpus::c_ide_driver());
  ASSERT_TRUE(prog.ok());
  hw::IoBus bus;
  bus.map(0x1f0, 8, std::make_shared<hw::IdeDisk>());
  auto full = minic::run_unit(*prog.unit, bus, "ide_boot", 3'000'000,
                              minic::ExecEngine::kTreeWalker);
  ASSERT_EQ(full.fault, minic::FaultKind::kNone);
  // Sparse sweep across the whole boot plus a dense band at the start.
  std::vector<uint64_t> budgets;
  for (uint64_t b = 0; b <= 60; ++b) budgets.push_back(b);
  for (uint64_t b = 61; b < full.steps_used; b += 97) budgets.push_back(b);
  for (uint64_t b : budgets) {
    diff_on_ide("ide_c.c", *prog.unit, "ide_boot", b,
                "ide budget=" + std::to_string(b));
  }
}

// ---------------------------------------------------------------------------
// Fault-path semantics.
// ---------------------------------------------------------------------------

// A parent node's charge may not float past a child that can throw or
// touch the device: the walker charges the assignment before evaluating
// `inb(...)` (so a budget fault at the boundary happens *before* the port
// read) and before a faulting division (so steps_used counts the
// assignment). Dense budget sweeps over both shapes pin the ordering.
TEST(BytecodeVmDiff, ChargeOrderAroundSideEffectsAndFaults) {
  const std::string io_src = R"(
int f() {
  int stat;
  int i;
  for (i = 0; i < 4; i++) {
    stat = inb(0x1f7);
  }
  return stat;
}
)";
  for (uint64_t budget = 0; budget <= 80; ++budget) {
    // FakeIo counts reads; expect_same via diff_source would not see them,
    // so compare the read logs explicitly.
    auto prog = minic::compile("t.c", io_src);
    ASSERT_TRUE(prog.ok());
    struct CountIo : minic::IoEnvironment {
      int reads = 0;
      uint32_t io_in(uint32_t, int) override { ++reads; return 0x50; }
      void io_out(uint32_t, uint32_t, int) override {}
    } io_w, io_v;
    auto walker = minic::run_unit(*prog.unit, io_w, "f", budget,
                                  minic::ExecEngine::kTreeWalker);
    auto vm = minic::run_unit(*prog.unit, io_v, "f", budget,
                              minic::ExecEngine::kBytecodeVm);
    expect_same_outcome(walker, vm, "io budget=" + std::to_string(budget));
    EXPECT_EQ(io_w.reads, io_v.reads) << "io budget=" << budget;
  }
  const std::string div_src = R"(
int f() {
  int z;
  int x;
  z = 0;
  x = 1 / z;
  return x;
}
)";
  for (uint64_t budget = 0; budget <= 16; ++budget) {
    diff_source(div_src, "f", budget, "div budget=" + std::to_string(budget));
  }
  const std::string elem_src = R"(
int a[2];
int f() {
  int x;
  x = a[5] + 1;
  return x;
}
)";
  for (uint64_t budget = 0; budget <= 12; ++budget) {
    diff_source(elem_src, "f", budget,
                "elem budget=" + std::to_string(budget));
  }
}

TEST(BytecodeVmDiff, FaultPaths) {
  diff_source("int f() { int z; z = 0; return 1 / z; }", "f", 100, "div");
  diff_source("int f() { int z; z = 0; return 7 % z; }", "f", 100, "mod");
  diff_source("int a[3]; int f() { return a[5]; }", "f", 100, "oob load");
  diff_source("int a[3]; int f() { a[3] = 1; return 0; }", "f", 100,
              "oob store");
  diff_source("int a[3]; int f() { int i; i = 0 - 1; return a[i]; }", "f",
              100, "negative index");
  diff_source("int f() { return f(); }", "f", 10'000, "stack overflow");
  diff_source("int f() { panic(\"boom\"); return 0; }", "f", 100, "panic");
  diff_source(
      "int f() { panic(\"Devil assertion: reg violates mask\"); return 0; }",
      "f", 100, "devil panic");
  diff_source("int f() { while (1) { } return 0; }", "f", 1000, "loop");
  diff_source("int f() { udelay(20000); return 0; }", "f", 1000,
              "udelay exhaustion");
}

TEST(BytecodeVmDiff, DevilDebugStructSemantics) {
  // Cross-type dil_eq through the generated stubs: the type-tag assertion
  // must fire identically (message includes the call line).
  auto spec = devil::compile_spec("ide.dil", corpus::ide_spec(),
                                  devil::CodegenMode::kDebug);
  ASSERT_TRUE(spec.ok());
  std::string driver = corpus::cdevil_ide_driver();
  size_t pos = driver.find("dil_eq(get_Busy(), BUSY)");
  ASSERT_NE(pos, std::string::npos);
  driver.replace(pos, std::string("dil_eq(get_Busy(), BUSY)").size(),
                 "dil_eq(get_Busy(), MASTER)");
  auto prog = minic::compile("ide.dil", spec.stubs + "\n" + driver);
  ASSERT_TRUE(prog.ok()) << prog.diags.render();
  diff_on_ide("ide.dil", *prog.unit, "ide_boot", 3'000'000,
              "cross-type dil_eq");
}

// ---------------------------------------------------------------------------
// Sampled mutants from both Tables 3/4 campaigns: the per-mutant kernel on
// both engines, against real device state.
// ---------------------------------------------------------------------------

void diff_mutants(const std::string& stubs, const std::string& driver,
                  bool is_cdevil, size_t stride, const std::string& label) {
  const std::string prefix_text = stubs.empty() ? std::string() : stubs + "\n";
  auto prefix = minic::prepare_prefix("unit.c", prefix_text);
  ASSERT_TRUE(prefix.ok());

  mutation::CScanOptions scan;
  scan.classes = is_cdevil
                     ? mutation::classes_for_cdevil_driver(stubs, driver)
                     : mutation::classes_for_c_driver(driver);
  auto sites = mutation::scan_c_sites(driver, scan);
  auto mutants = mutation::generate_c_mutants(sites, scan.classes);
  ASSERT_GT(mutants.size(), 0u);

  size_t compared = 0;
  for (size_t m = 0; m < mutants.size(); m += stride) {
    std::string mutated = mutation::apply_mutant(driver, sites, mutants[m]);
    auto prog = minic::compile_with_prefix(prefix, mutated);
    if (!prog.ok()) continue;  // compile-time outcomes have no engine
    diff_on_ide("unit.c", *prog.unit, "ide_boot", 3'000'000,
                label + " mutant #" + std::to_string(m));
    ++compared;
  }
  EXPECT_GT(compared, 20u) << label;
}

TEST(BytecodeVmDiff, SampledCDriverMutants) {
  diff_mutants("", corpus::c_ide_driver(), false, 53, "c");
}

TEST(BytecodeVmDiff, SampledCDevilMutants) {
  auto spec = devil::compile_spec("ide.dil", corpus::ide_spec(),
                                  devil::CodegenMode::kDebug);
  ASSERT_TRUE(spec.ok());
  diff_mutants(spec.stubs, corpus::cdevil_ide_driver(), true, 37, "cdevil");
}

// ---------------------------------------------------------------------------
// Campaign-level byte identity: records, tallies and the rendered Tables
// 3/4 must be identical between engines, at 1 and 4 worker threads.
// ---------------------------------------------------------------------------

void expect_identical_campaigns(const eval::DriverCampaignResult& a,
                                const eval::DriverCampaignResult& b,
                                const std::string& label) {
  EXPECT_EQ(a.clean_fingerprint, b.clean_fingerprint) << label;
  EXPECT_EQ(a.total_sites, b.total_sites) << label;
  EXPECT_EQ(a.total_mutants, b.total_mutants) << label;
  EXPECT_EQ(a.sampled_mutants, b.sampled_mutants) << label;
  EXPECT_EQ(a.deduped_mutants, b.deduped_mutants) << label;
  EXPECT_EQ(a.tally.mutants, b.tally.mutants) << label;
  EXPECT_EQ(a.tally.sites, b.tally.sites) << label;
  EXPECT_EQ(a.tally.total_mutants, b.tally.total_mutants) << label;
  ASSERT_EQ(a.records.size(), b.records.size()) << label;
  for (size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].mutant_index, b.records[i].mutant_index)
        << label << " #" << i;
    EXPECT_EQ(a.records[i].site, b.records[i].site) << label << " #" << i;
    EXPECT_EQ(a.records[i].outcome, b.records[i].outcome)
        << label << " #" << i;
    EXPECT_EQ(a.records[i].detail, b.records[i].detail) << label << " #" << i;
    EXPECT_EQ(a.records[i].deduped, b.records[i].deduped)
        << label << " #" << i;
  }
  EXPECT_EQ(eval::render_driver_table("T", a), eval::render_driver_table("T", b))
      << label;
}

TEST(CampaignEngines, CDriverByteIdenticalAcrossEnginesAndThreads) {
  eval::DriverCampaignConfig cfg;
  cfg.driver = corpus::c_ide_driver();
  cfg.device = eval::ide_binding();
  cfg.sample_percent = 10;
  for (unsigned threads : {1u, 4u}) {
    cfg.threads = threads;
    cfg.engine = minic::ExecEngine::kBytecodeVm;
    auto vm = eval::run_driver_campaign(cfg);
    cfg.engine = minic::ExecEngine::kTreeWalker;
    auto walker = eval::run_driver_campaign(cfg);
    expect_identical_campaigns(walker, vm,
                               "c threads=" + std::to_string(threads));
  }
}

TEST(CampaignEngines, CDevilByteIdenticalAcrossEnginesAndThreads) {
  auto spec = devil::compile_spec("ide.dil", corpus::ide_spec(),
                                  devil::CodegenMode::kDebug);
  ASSERT_TRUE(spec.ok());
  eval::DriverCampaignConfig cfg;
  cfg.stubs = spec.stubs;
  cfg.driver = corpus::cdevil_ide_driver();
  cfg.device = eval::ide_binding();
  cfg.is_cdevil = true;
  cfg.sample_percent = 10;
  for (unsigned threads : {1u, 4u}) {
    cfg.threads = threads;
    cfg.engine = minic::ExecEngine::kBytecodeVm;
    auto vm = eval::run_driver_campaign(cfg);
    cfg.engine = minic::ExecEngine::kTreeWalker;
    auto walker = eval::run_driver_campaign(cfg);
    expect_identical_campaigns(walker, vm,
                               "cdevil threads=" + std::to_string(threads));
  }
}

// ---------------------------------------------------------------------------
// Mutant dedup: skipping canonical duplicates must not change any reported
// outcome or tally, and duplicates must stay visible in the records.
// ---------------------------------------------------------------------------

TEST(CampaignDedup, OutcomesAndTalliesUnchanged) {
  eval::DriverCampaignConfig cfg;
  cfg.driver = corpus::c_ide_driver();
  cfg.device = eval::ide_binding();
  cfg.sample_percent = 25;
  cfg.threads = 4;
  cfg.dedup = true;
  auto on = eval::run_driver_campaign(cfg);
  cfg.dedup = false;
  auto off = eval::run_driver_campaign(cfg);

  EXPECT_EQ(off.deduped_mutants, 0u);
  ASSERT_EQ(on.records.size(), off.records.size());
  for (size_t i = 0; i < on.records.size(); ++i) {
    EXPECT_EQ(on.records[i].mutant_index, off.records[i].mutant_index) << i;
    EXPECT_EQ(on.records[i].site, off.records[i].site) << i;
    EXPECT_EQ(on.records[i].outcome, off.records[i].outcome) << i;
    EXPECT_EQ(on.records[i].detail, off.records[i].detail) << i;
    if (on.records[i].deduped) {
      // Visible in the records, with the duplicate's own site.
      EXPECT_FALSE(off.records[i].deduped) << i;
    }
  }
  EXPECT_EQ(eval::render_driver_table("T", on),
            eval::render_driver_table("T", off));
  // The C driver's macro set guarantees canonical duplicates (identifier
  // mutants that preserve the expanded value, e.g. IDE_STATUS vs
  // IDE_COMMAND both expanding to 0x1f7).
  EXPECT_GT(on.deduped_mutants, 0u);
}

TEST(CampaignDedup, DedupIsThreadCountInvariant) {
  eval::DriverCampaignConfig cfg;
  cfg.driver = corpus::c_ide_driver();
  cfg.device = eval::ide_binding();
  cfg.sample_percent = 10;
  cfg.threads = 1;
  auto serial = eval::run_driver_campaign(cfg);
  cfg.threads = 4;
  auto parallel = eval::run_driver_campaign(cfg);
  expect_identical_campaigns(serial, parallel, "dedup thread invariance");
}

}  // namespace
