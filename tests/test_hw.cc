// Tests for the hardware simulator: bus routing and the behavioural device
// models (the substitution for the paper's physical testbed).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "hw/busmouse.h"
#include "hw/ide_disk.h"
#include "hw/io_bus.h"
#include "hw/misc_devices.h"

namespace {

using hw::IdeDisk;

// ---- IoBus -------------------------------------------------------------------

TEST(IoBus, RoutesToMappedDevice) {
  hw::IoBus bus;
  auto mouse = std::make_shared<hw::Busmouse>();
  bus.map(0x23c, 4, mouse);
  EXPECT_EQ(bus.io_in(0x23d, 8), 0xa5u);  // signature register
}

TEST(IoBus, UnmappedReadsFloatHigh) {
  hw::IoBus bus;
  EXPECT_EQ(bus.io_in(0x9999, 8), 0xffu);
  EXPECT_EQ(bus.io_in(0x9999, 16), 0xffffu);
  EXPECT_EQ(bus.io_in(0x9999, 32), 0xffffffffu);
  EXPECT_EQ(bus.unmapped_accesses(), 3u);
}

TEST(IoBus, UnmappedWritesIgnored) {
  hw::IoBus bus;
  bus.io_out(0x9999, 0xab, 8);  // must not throw — x86 semantics
  EXPECT_EQ(bus.unmapped_accesses(), 1u);
}

TEST(IoBus, PortSpaceWrapsAt16Bits) {
  hw::IoBus bus;
  auto mouse = std::make_shared<hw::Busmouse>();
  bus.map(0x23c, 4, mouse);
  EXPECT_EQ(bus.io_in(0x1023d, 8), 0xa5u);  // 0x1023d & 0xffff == 0x23d
}

TEST(IoBus, OverlappingMappingRejected) {
  hw::IoBus bus;
  bus.map(0x100, 8, std::make_shared<hw::Busmouse>());
  EXPECT_THROW(bus.map(0x104, 8, std::make_shared<hw::Busmouse>()),
               std::invalid_argument);
}

TEST(IoBus, TraceRecordsAccesses) {
  hw::IoBus bus;
  bus.enable_trace();
  bus.map(0x23c, 4, std::make_shared<hw::Busmouse>());
  bus.io_out(0x23e, 0x80, 8);
  bus.io_in(0x23c, 8);
  ASSERT_EQ(bus.trace().size(), 2u);
  EXPECT_TRUE(bus.trace()[0].is_write);
  EXPECT_FALSE(bus.trace()[1].is_write);
}

TEST(IoBus, ResetClearsDevicesAndTrace) {
  hw::IoBus bus;
  bus.enable_trace();
  auto mouse = std::make_shared<hw::Busmouse>();
  bus.map(0x23c, 4, mouse);
  bus.io_out(0x23e, 0xe0, 8);
  EXPECT_EQ(mouse->index(), 3);
  bus.reset();
  EXPECT_EQ(mouse->index(), 0);
  EXPECT_TRUE(bus.trace().empty());
}

// ---- IdeDisk -----------------------------------------------------------------

class IdeTest : public ::testing::Test {
 protected:
  IdeDisk disk;

  uint32_t status() { return disk.read(7, 8); }
  void wait_ready() {
    for (int i = 0; i < 16 && (status() & IdeDisk::kBusy); ++i) {
    }
  }
  void wait_drq() {
    for (int i = 0; i < 16 && !(status() & IdeDisk::kDrq); ++i) {
    }
  }
};

TEST_F(IdeTest, IdleStatusIsReadySeek) {
  EXPECT_EQ(status(), IdeDisk::kReady | IdeDisk::kSeek);
}

TEST_F(IdeTest, CommandHoldsBusyThenDrq) {
  disk.write(7, 0xec, 8);  // IDENTIFY
  EXPECT_EQ(status(), IdeDisk::kBusy);
  EXPECT_EQ(status(), IdeDisk::kBusy);
  // DRQ comes up only after the setup delay.
  EXPECT_FALSE(status() & IdeDisk::kDrq);
  wait_drq();
  EXPECT_TRUE(status() & IdeDisk::kDrq);
}

TEST_F(IdeTest, IdentifyReturnsGeometryAndCapacity) {
  disk.write(7, 0xec, 8);
  wait_ready();
  wait_drq();
  std::vector<uint16_t> words;
  for (int i = 0; i < 256; ++i) words.push_back(disk.read(0, 16));
  EXPECT_EQ(words[0], 0x0040);
  uint32_t capacity = words[60] | (words[61] << 16);
  EXPECT_EQ(capacity, 1024u);
  // After the last word, DRQ drops.
  EXPECT_FALSE(status() & IdeDisk::kDrq);
}

TEST_F(IdeTest, ReadSector0HasPartitionTable) {
  disk.write(2, 1, 8);   // nsector
  disk.write(3, 0, 8);   // LBA low
  disk.write(4, 0, 8);
  disk.write(5, 0, 8);
  disk.write(6, 0xe0, 8);
  disk.write(7, 0x20, 8);  // READ SECTORS
  wait_ready();
  wait_drq();
  std::vector<uint16_t> sec;
  for (int i = 0; i < 256; ++i) sec.push_back(disk.read(0, 16));
  EXPECT_EQ(sec[255], 0xaa55);  // MBR signature
  uint32_t start = sec[227] | (sec[228] << 16);
  EXPECT_EQ(start, IdeDisk::partition_start());
}

TEST_F(IdeTest, SuperblockAtPartitionStart) {
  uint32_t lba = IdeDisk::partition_start();
  disk.write(2, 1, 8);
  disk.write(3, lba & 0xff, 8);
  disk.write(4, (lba >> 8) & 0xff, 8);
  disk.write(5, (lba >> 16) & 0xff, 8);
  disk.write(6, 0xe0 | ((lba >> 24) & 0xf), 8);
  disk.write(7, 0x20, 8);
  wait_ready();
  wait_drq();
  EXPECT_EQ(disk.read(0, 16), IdeDisk::fs_magic());
}

TEST_F(IdeTest, OutOfRangeLbaAborts) {
  disk.write(2, 1, 8);
  disk.write(3, 0xff, 8);
  disk.write(4, 0xff, 8);
  disk.write(5, 0xff, 8);  // LBA way past 1024 sectors
  disk.write(6, 0xe0, 8);
  disk.write(7, 0x20, 8);
  wait_ready();
  EXPECT_TRUE(status() & IdeDisk::kErr);
  EXPECT_EQ(disk.read(1, 8), IdeDisk::kIdnf);
}

TEST_F(IdeTest, UnknownCommandAborts) {
  disk.write(7, 0x7b, 8);
  wait_ready();
  EXPECT_TRUE(status() & IdeDisk::kErr);
  EXPECT_EQ(disk.read(1, 8), IdeDisk::kAbrt);
}

TEST_F(IdeTest, RecalibrateBandAccepted) {
  disk.write(7, 0x17, 8);  // any 0x1x
  wait_ready();
  EXPECT_FALSE(status() & IdeDisk::kErr);
}

TEST_F(IdeTest, SlaveSelectReadsZero) {
  disk.write(6, 0xf0, 8);  // select slave (bit 4)
  EXPECT_EQ(disk.read(7, 8), 0u);
  disk.write(6, 0xe0, 8);  // back to master
  EXPECT_NE(disk.read(7, 8), 0u);
}

TEST_F(IdeTest, WriteCommandDamagesDisk) {
  disk.write(2, 1, 8);
  disk.write(3, 5, 8);
  disk.write(4, 0, 8);
  disk.write(5, 0, 8);
  disk.write(6, 0xe0, 8);
  disk.write(7, 0x30, 8);  // WRITE SECTORS
  wait_ready();
  wait_drq();
  for (int i = 0; i < 256; ++i) disk.write(0, 0xbeef, 16);
  EXPECT_TRUE(disk.disk_written());
  EXPECT_TRUE(disk.damaged());
  EXPECT_FALSE(disk.partition_table_destroyed());
  EXPECT_EQ(disk.disk_word(5, 0), 0xbeef);
}

TEST_F(IdeTest, WritingSector0DestroysPartitionTable) {
  disk.write(2, 1, 8);
  disk.write(3, 0, 8);
  disk.write(4, 0, 8);
  disk.write(5, 0, 8);
  disk.write(6, 0xe0, 8);
  disk.write(7, 0x30, 8);
  wait_ready();
  wait_drq();
  for (int i = 0; i < 256; ++i) disk.write(0, 0, 16);
  EXPECT_TRUE(disk.partition_table_destroyed());
}

TEST_F(IdeTest, DataReadOutsideTransferIsProtocolViolation) {
  EXPECT_EQ(disk.protocol_violations(), 0u);
  disk.read(0, 16);
  EXPECT_EQ(disk.protocol_violations(), 1u);
}

TEST_F(IdeTest, EightBitDataReadFlagsViolation) {
  disk.write(7, 0xec, 8);
  wait_ready();
  wait_drq();
  disk.read(0, 8);
  EXPECT_GE(disk.protocol_violations(), 1u);
}

TEST_F(IdeTest, ResetRestoresPristineImage) {
  disk.write(2, 1, 8);
  disk.write(3, 0, 8);
  disk.write(4, 0, 8);
  disk.write(5, 0, 8);
  disk.write(6, 0xe0, 8);
  disk.write(7, 0x30, 8);
  wait_ready();
  wait_drq();
  for (int i = 0; i < 256; ++i) disk.write(0, 0, 16);
  ASSERT_TRUE(disk.partition_table_destroyed());
  disk.reset();
  EXPECT_FALSE(disk.damaged());
  EXPECT_EQ(disk.disk_word(0, 255), 0xaa55);
}

// ---- Busmouse ----------------------------------------------------------------

TEST(Busmouse, IndexSelectsNibbles) {
  hw::Busmouse m;
  m.set_motion(0x5a, 0x3c, 0);
  m.write(2, 0x80, 8);  // index 0: dx low
  EXPECT_EQ(m.read(0, 8) & 0x0f, 0x0a);
  m.write(2, 0xa0, 8);  // index 1: dx high
  EXPECT_EQ(m.read(0, 8) & 0x0f, 0x05);
  m.write(2, 0xc0, 8);  // index 2: dy low
  EXPECT_EQ(m.read(0, 8) & 0x0f, 0x0c);
  m.write(2, 0xe0, 8);  // index 3: dy high
  EXPECT_EQ(m.read(0, 8) & 0x0f, 0x03);
}

TEST(Busmouse, ButtonsActiveLowInTopBits) {
  hw::Busmouse m;
  m.set_motion(0, 0, 0x05);  // left + right pressed
  m.write(2, 0xe0, 8);
  uint8_t v = static_cast<uint8_t>(m.read(0, 8));
  EXPECT_EQ((v >> 5) & 7, 0x02);  // ~0b101 & 0b111
}

TEST(Busmouse, IrrelevantDataBitsFloat) {
  hw::Busmouse m;
  m.set_motion(0, 0, 0);
  m.write(2, 0x80, 8);
  // Two consecutive reads must not promise stable garbage in bits 7..4.
  uint8_t a = static_cast<uint8_t>(m.read(0, 8));
  uint8_t b = static_cast<uint8_t>(m.read(0, 8));
  EXPECT_EQ(a & 0x0f, 0);
  EXPECT_NE(a & 0xf0, b & 0xf0);
}

TEST(Busmouse, InterruptBitSeparateFromIndex) {
  hw::Busmouse m;
  m.write(2, 0x10, 8);  // bit7=0: interrupt write, disable
  EXPECT_TRUE(m.irq_disabled());
  m.write(2, 0x00, 8);  // enable
  EXPECT_FALSE(m.irq_disabled());
  m.write(2, 0xe0, 8);  // index write must not change irq state
  EXPECT_FALSE(m.irq_disabled());
  EXPECT_EQ(m.index(), 3);
}

TEST(Busmouse, SignatureReadWrite) {
  hw::Busmouse m;
  EXPECT_EQ(m.read(1, 8), 0xa5u);
  m.write(1, 0x5a, 8);
  EXPECT_EQ(m.read(1, 8), 0x5au);
}

TEST(Busmouse, ConfigStored) {
  hw::Busmouse m;
  m.write(3, 0x91, 8);
  EXPECT_EQ(m.config(), 0x91);
}

TEST(Busmouse, WritesToDataPortAreViolations) {
  hw::Busmouse m;
  m.write(0, 1, 8);
  EXPECT_EQ(m.protocol_violations(), 1u);
}

namespace {
/// Drives the full observable surface of a busmouse: the C driver's init +
/// read-state sequence, protocol abuse, and every inspection getter. Two
/// devices in the same state produce the same trace (the garbage rotation
/// is part of the state, so stale garbage shows up here).
std::vector<uint64_t> busmouse_trace(hw::Busmouse& m) {
  std::vector<uint64_t> out;
  m.write(3, 0x91, 8);  // MSE_CONFIG_BYTE
  m.write(2, 0x10, 8);  // interrupt disable
  out.push_back(m.read(1, 8));
  for (uint32_t idx = 0; idx < 4; ++idx) {
    m.write(2, 0x80 | (idx << 5), 8);
    out.push_back(m.read(0, 8));
  }
  out.push_back(m.read(2, 8));  // write-only register: violation
  m.write(0, 0xaa, 8);          // read-only register: violation
  out.push_back(m.protocol_violations());
  out.push_back(m.index());
  out.push_back(m.config());
  out.push_back(m.signature());
  out.push_back(m.irq_disabled() ? 1 : 0);
  return out;
}
}  // namespace

TEST(Busmouse, RecycledAfterFaultingBootIsBitIdenticalToFresh) {
  // The campaign pool recycles devices between mutant boots via reset();
  // a boot that faulted mid-protocol leaves arbitrary state behind, and
  // the recycle must erase every trace of it.
  hw::Busmouse recycled;
  recycled.set_motion(-5, 9, 0x03);
  (void)busmouse_trace(recycled);  // a partial, protocol-abusing boot
  recycled.write(1, 0x77, 8);      // clobber the signature byte
  recycled.write(2, 0x00, 8);      // re-enable interrupts
  ASSERT_TRUE(recycled.touched());
  recycled.reset();
  EXPECT_FALSE(recycled.touched());

  hw::Busmouse fresh;
  EXPECT_EQ(busmouse_trace(recycled), busmouse_trace(fresh));
}

TEST(Busmouse, CleanRecycleTakesTheDirtyTrackingFastPath) {
  // Parity with IdeDisk::reset(): an untouched device is already in
  // power-on state, so reset() is a no-op branch, and even reads dirty
  // the device (they rotate the garbage bits).
  hw::Busmouse m;
  EXPECT_FALSE(m.touched());
  m.reset();
  EXPECT_FALSE(m.touched());
  (void)m.read(0, 8);
  EXPECT_TRUE(m.touched());
  m.reset();
  EXPECT_FALSE(m.touched());
  hw::Busmouse fresh;
  EXPECT_EQ(busmouse_trace(m), busmouse_trace(fresh));
}

// ---- shallow models ---------------------------------------------------------------

TEST(Ne2000, ResetPortRaisesIsrRst) {
  hw::Ne2000 nic;
  nic.read(hw::Ne2000::kReset, 8);
  EXPECT_EQ(nic.read(hw::Ne2000::kIsr, 8) & 0x80, 0x80u);
}

TEST(Ne2000, StartClearsRstAndSetsRunning) {
  hw::Ne2000 nic;
  nic.read(hw::Ne2000::kReset, 8);
  nic.write(hw::Ne2000::kCmd, 0x02, 8);  // start
  EXPECT_TRUE(nic.started());
  EXPECT_EQ(nic.read(hw::Ne2000::kIsr, 8) & 0x80, 0u);
}

TEST(Ne2000, PagedRegisterFile) {
  hw::Ne2000 nic;
  nic.write(0, 0x21, 8);          // page 0
  nic.write(1, 0x40, 8);          // PSTART
  nic.write(0, 0x61, 8);          // page 1
  nic.write(1, 0xaa, 8);          // PAR0
  EXPECT_EQ(nic.read(1, 8), 0xaau);
  nic.write(0, 0x21, 8);          // back to page 0
  EXPECT_EQ(nic.read(1, 8), 0x40u);
}

TEST(Ne2000, IsrWriteOneToClear) {
  hw::Ne2000 nic;
  nic.read(hw::Ne2000::kReset, 8);
  nic.write(hw::Ne2000::kCmd, 0x21, 8);
  nic.write(hw::Ne2000::kIsr, 0x80, 8);
  EXPECT_EQ(nic.read(hw::Ne2000::kIsr, 8) & 0x80, 0u);
}

TEST(PciBusMaster, StartStopTogglesActive) {
  hw::PciBusMaster bm;
  bm.write(0, 0x01, 8);
  EXPECT_TRUE(bm.active(0));
  bm.write(0, 0x00, 8);
  EXPECT_FALSE(bm.active(0));
}

TEST(PciBusMaster, PrdPointerDwordAligned) {
  hw::PciBusMaster bm;
  bm.write(4, 0x12345677, 32);
  EXPECT_EQ(bm.prd(0), 0x12345674u);
}

TEST(PciBusMaster, StatusBitsWriteOneToClear) {
  hw::PciBusMaster bm;
  bm.write(0, 0x01, 8);           // active
  bm.write(2, 0x06, 8);           // clear err+irq — active must survive
  EXPECT_TRUE(bm.active(0));
}

TEST(Permedia2, FifoSpaceCountsDown) {
  hw::Permedia2 gfx;
  uint32_t before = gfx.read(1, 32);
  gfx.write(5, 0x1234, 32);
  EXPECT_EQ(gfx.read(1, 32), before - 1);
}

TEST(Permedia2, SoftResetClearsRegisters) {
  hw::Permedia2 gfx;
  gfx.write(6, 0xabcd, 32);
  EXPECT_EQ(gfx.read(6, 32), 0xabcdu);
  gfx.write(0, 1, 32);  // soft reset
  EXPECT_EQ(gfx.read(6, 32), 0u);
}

}  // namespace
