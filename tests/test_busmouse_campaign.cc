// Differential + determinism suite for the busmouse mutation campaigns —
// the second device on the generic campaign kernel, mirroring the IDE
// guarantees of test_prefix_pipeline.cc / test_campaign_parallel.cc:
//
//  - walker vs whole-unit VM vs spliced-prefix VM byte-identity for the
//    clean drivers (both codegen modes) and for sampled mutants;
//  - campaign records/tallies identical across engines, thread counts,
//    dedup on/off and prefix-cache on/off (hit counters prove which
//    pipeline ran);
//  - campaign preconditions fail with diagnostics naming the busmouse
//    device and its entry point, and the entry defaults come from the
//    device binding.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "corpus/drivers.h"
#include "corpus/specs.h"
#include "devil/compiler.h"
#include "eval/device_bindings.h"
#include "eval/driver_campaign.h"
#include "hw/busmouse.h"
#include "hw/io_bus.h"
#include "minic/program.h"
#include "mutation/c_mutator.h"

namespace {

void expect_same_outcome(const minic::RunOutcome& a,
                         const minic::RunOutcome& b,
                         const std::string& label) {
  EXPECT_EQ(a.fault, b.fault) << label;
  EXPECT_EQ(a.fault_message, b.fault_message) << label;
  EXPECT_EQ(a.return_value, b.return_value) << label;
  EXPECT_EQ(a.steps_used, b.steps_used) << label;
  EXPECT_EQ(a.executed_lines, b.executed_lines) << label;
  EXPECT_EQ(a.log, b.log) << label;
}

std::shared_ptr<hw::IoBus> mouse_bus() {
  auto bus = std::make_shared<hw::IoBus>();
  bus->map(0x23c, 4, std::make_shared<hw::Busmouse>());
  return bus;
}

/// Compiles `prefix_text + tail` whole and through the compiled-prefix
/// cache and runs walker, whole-unit VM and spliced VM on fresh busmice;
/// everything observable must match three ways.
void diff_three_ways(const std::string& name, const std::string& prefix_text,
                     const std::string& tail, const std::string& label) {
  auto whole = minic::compile(name, prefix_text + tail);
  ASSERT_TRUE(whole.ok()) << label << "\n" << whole.diags.render();

  auto prefix = minic::prepare_prefix(name, prefix_text);
  ASSERT_TRUE(prefix.ok()) << label;
  ASSERT_TRUE(prefix.compiled != nullptr) << label;
  auto spliced = minic::compile_tail(prefix, tail);
  ASSERT_TRUE(spliced.ok()) << label << "\n" << spliced.diags.render();
  EXPECT_EQ(whole.unit->macro_use_lines, spliced.macro_use_lines) << label;

  auto bus_w = mouse_bus();
  auto walker = minic::run_unit(*whole.unit, *bus_w, corpus::kMouseEntry,
                                3'000'000, minic::ExecEngine::kTreeWalker);
  auto bus_v = mouse_bus();
  auto vm = minic::run_unit(*whole.unit, *bus_v, corpus::kMouseEntry,
                            3'000'000, minic::ExecEngine::kBytecodeVm);
  auto bus_s = mouse_bus();
  auto fast = minic::run_module(*spliced.module, *bus_s, corpus::kMouseEntry,
                                3'000'000);

  expect_same_outcome(walker, vm, label + " [walker vs whole-unit vm]");
  expect_same_outcome(vm, fast, label + " [whole-unit vm vs spliced]");
}

TEST(BusmouseCampaign, CDriverThreeWayByteIdentity) {
  diff_three_ways("mouse_c.c", "", corpus::c_busmouse_driver(), "c busmouse");
}

TEST(BusmouseCampaign, CDevilDriverThreeWayByteIdentityBothModes) {
  for (auto mode :
       {devil::CodegenMode::kDebug, devil::CodegenMode::kProduction}) {
    auto spec = devil::compile_spec("busmouse.dil", corpus::busmouse_spec(),
                                    mode);
    ASSERT_TRUE(spec.ok()) << spec.diags.render();
    diff_three_ways("busmouse.dil", spec.stubs + "\n",
                    corpus::cdevil_busmouse_driver(),
                    mode == devil::CodegenMode::kDebug
                        ? "cdevil busmouse debug"
                        : "cdevil busmouse production");
  }
}

// ---------------------------------------------------------------------------
// Sampled mutants: walker, whole-unit VM and spliced VM must agree mutant
// by mutant — acceptance, first diagnostic and boot outcome.
// ---------------------------------------------------------------------------

void diff_mutants(const std::string& stubs, const std::string& driver,
                  bool is_cdevil, size_t stride, const std::string& label) {
  const std::string prefix_text = stubs.empty() ? std::string() : stubs + "\n";
  auto prefix = minic::prepare_prefix("mouse.c", prefix_text);
  ASSERT_TRUE(prefix.ok());
  ASSERT_TRUE(prefix.compiled != nullptr);

  mutation::CScanOptions scan;
  scan.classes = is_cdevil
                     ? mutation::classes_for_cdevil_driver(stubs, driver)
                     : mutation::classes_for_c_driver(driver);
  auto sites = mutation::scan_c_sites(driver, scan);
  auto mutants = mutation::generate_c_mutants(sites, scan.classes);
  ASSERT_GT(mutants.size(), 0u);

  size_t booted = 0, rejected = 0;
  for (size_t m = 0; m < mutants.size(); m += stride) {
    std::string mutated = mutation::apply_mutant(driver, sites, mutants[m]);
    std::string label_m = label + " mutant #" + std::to_string(m);
    auto whole = minic::compile("mouse.c", prefix_text + mutated);
    auto fast = minic::compile_tail(prefix, mutated);
    ASSERT_EQ(whole.ok(), fast.ok()) << label_m;
    if (!whole.ok()) {
      ASSERT_FALSE(whole.diags.all().empty()) << label_m;
      ASSERT_FALSE(fast.diags.all().empty()) << label_m;
      EXPECT_EQ(whole.diags.all().front().to_string(),
                fast.diags.all().front().to_string())
          << label_m;
      ++rejected;
      continue;
    }
    auto bus_w = mouse_bus();
    auto walker = minic::run_unit(*whole.unit, *bus_w, corpus::kMouseEntry,
                                  3'000'000, minic::ExecEngine::kTreeWalker);
    auto bus_v = mouse_bus();
    auto vm = minic::run_unit(*whole.unit, *bus_v, corpus::kMouseEntry,
                              3'000'000, minic::ExecEngine::kBytecodeVm);
    auto bus_f = mouse_bus();
    auto fast_run = minic::run_module(*fast.module, *bus_f,
                                      corpus::kMouseEntry, 3'000'000);
    expect_same_outcome(walker, vm, label_m + " [walker vs vm]");
    expect_same_outcome(vm, fast_run, label_m + " [vm vs spliced]");
    ++booted;
  }
  EXPECT_GT(booted, 15u) << label;
  EXPECT_GT(rejected, 2u) << label;
}

TEST(BusmouseCampaign, SampledCMutantsThreeWay) {
  diff_mutants("", corpus::c_busmouse_driver(), false, 41, "c busmouse");
}

TEST(BusmouseCampaign, SampledCDevilMutantsThreeWay) {
  auto spec = devil::compile_spec("busmouse.dil", corpus::busmouse_spec(),
                                  devil::CodegenMode::kDebug);
  ASSERT_TRUE(spec.ok());
  diff_mutants(spec.stubs, corpus::cdevil_busmouse_driver(), true, 4,
               "cdevil busmouse");
}

// ---------------------------------------------------------------------------
// Campaign-level determinism: engines, thread counts, dedup and prefix
// cache must all leave records and tallies byte-identical.
// ---------------------------------------------------------------------------

void expect_identical(const eval::DriverCampaignResult& a,
                      const eval::DriverCampaignResult& b,
                      const std::string& label) {
  EXPECT_EQ(a.device, b.device) << label;
  EXPECT_EQ(a.entry, b.entry) << label;
  EXPECT_EQ(a.clean_fingerprint, b.clean_fingerprint) << label;
  EXPECT_EQ(a.total_sites, b.total_sites) << label;
  EXPECT_EQ(a.total_mutants, b.total_mutants) << label;
  EXPECT_EQ(a.sampled_mutants, b.sampled_mutants) << label;
  EXPECT_EQ(a.deduped_mutants, b.deduped_mutants) << label;
  EXPECT_EQ(a.tally.mutants, b.tally.mutants) << label;
  EXPECT_EQ(a.tally.sites, b.tally.sites) << label;
  EXPECT_EQ(a.tally.total_mutants, b.tally.total_mutants) << label;
  ASSERT_EQ(a.records.size(), b.records.size()) << label;
  for (size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].mutant_index, b.records[i].mutant_index)
        << label << " #" << i;
    EXPECT_EQ(a.records[i].site, b.records[i].site) << label << " #" << i;
    EXPECT_EQ(a.records[i].outcome, b.records[i].outcome)
        << label << " #" << i;
    EXPECT_EQ(a.records[i].detail, b.records[i].detail) << label << " #" << i;
    EXPECT_EQ(a.records[i].deduped, b.records[i].deduped)
        << label << " #" << i;
  }
}

eval::DriverCampaignConfig c_mouse_config() {
  eval::DriverCampaignConfig cfg;
  cfg.driver = corpus::c_busmouse_driver();
  cfg.device = eval::busmouse_binding();
  cfg.sample_percent = 25;
  return cfg;
}

eval::DriverCampaignConfig cdevil_mouse_config() {
  auto spec = devil::compile_spec("busmouse.dil", corpus::busmouse_spec(),
                                  devil::CodegenMode::kDebug);
  EXPECT_TRUE(spec.ok()) << spec.diags.render();
  eval::DriverCampaignConfig cfg;
  cfg.stubs = spec.stubs;
  cfg.driver = corpus::cdevil_busmouse_driver();
  cfg.device = eval::busmouse_binding();
  cfg.is_cdevil = true;
  cfg.sample_percent = 100;  // small corpus: enumerate fully
  return cfg;
}

void campaign_matrix(eval::DriverCampaignConfig cfg, const std::string& label) {
  cfg.threads = 1;
  cfg.engine = minic::ExecEngine::kBytecodeVm;
  auto base = eval::run_driver_campaign(cfg);
  EXPECT_EQ(base.device, "busmouse") << label;
  EXPECT_EQ(base.entry, "mouse_boot") << label;
  EXPECT_GT(base.sampled_mutants, 0u) << label;

  cfg.threads = 4;
  auto threaded = eval::run_driver_campaign(cfg);
  expect_identical(base, threaded, label + " threads 1 vs 4");

  cfg.engine = minic::ExecEngine::kTreeWalker;
  auto walker = eval::run_driver_campaign(cfg);
  expect_identical(base, walker, label + " vm vs walker");
  EXPECT_EQ(walker.prefix_cache_hits, 0u) << label;  // walker compiles whole

  cfg.engine = minic::ExecEngine::kBytecodeVm;
  cfg.prefix_cache = false;
  auto plain = eval::run_driver_campaign(cfg);
  expect_identical(base, plain, label + " cache on vs off");
  EXPECT_EQ(plain.prefix_cache_hits, 0u) << label;
  // The counters prove the fast path served every unique compile.
  EXPECT_GT(base.prefix_cache_hits, 0u) << label;
  EXPECT_EQ(base.prefix_cache_hits,
            base.sampled_mutants - base.deduped_mutants)
      << label;
}

TEST(BusmouseCampaign, CCampaignDeterministicAcrossEnginesThreadsAndCache) {
  campaign_matrix(c_mouse_config(), "c busmouse");
}

TEST(BusmouseCampaign, CDevilCampaignDeterministicAcrossEnginesThreadsAndCache) {
  campaign_matrix(cdevil_mouse_config(), "cdevil busmouse");
}

TEST(BusmouseCampaign, DedupSkipsBootsButLeavesTalliesUnchanged) {
  auto cfg = cdevil_mouse_config();
  cfg.dedup = true;
  auto on = eval::run_driver_campaign(cfg);
  cfg.dedup = false;
  auto off = eval::run_driver_campaign(cfg);
  EXPECT_GT(on.deduped_mutants, 0u);
  EXPECT_EQ(off.deduped_mutants, 0u);
  EXPECT_EQ(on.tally.mutants, off.tally.mutants);
  EXPECT_EQ(on.tally.sites, off.tally.sites);
  ASSERT_EQ(on.records.size(), off.records.size());
  for (size_t i = 0; i < on.records.size(); ++i) {
    EXPECT_EQ(on.records[i].outcome, off.records[i].outcome) << i;
  }
}

TEST(BusmouseCampaign, PaperShapeHolds) {
  // The paper's §4.2 narrative on the second device: CDevil detects more
  // mutants at compile/run time and leaves far fewer silent "Boot" cases.
  auto c = eval::run_driver_campaign(c_mouse_config());
  auto d = eval::run_driver_campaign(cdevil_mouse_config());
  double c_detected = static_cast<double>(c.tally.detected()) /
                      static_cast<double>(c.sampled_mutants);
  double d_detected = static_cast<double>(d.tally.detected()) /
                      static_cast<double>(d.sampled_mutants);
  double c_boot = static_cast<double>(c.tally.mutants_of(
                      eval::Outcome::kBoot)) /
                  static_cast<double>(c.sampled_mutants);
  double d_boot = static_cast<double>(d.tally.mutants_of(
                      eval::Outcome::kBoot)) /
                  static_cast<double>(d.sampled_mutants);
  EXPECT_GT(d_detected, c_detected);
  EXPECT_LT(d_boot, c_boot / 4.0);
}

// ---------------------------------------------------------------------------
// Binding-derived defaults and diagnostics (the entry/"ide" bugfix).
// ---------------------------------------------------------------------------

TEST(BusmouseCampaign, DiagnosticsNameTheDeviceAndEntry) {
  eval::DriverCampaignConfig cfg;
  cfg.driver = "int mouse_boot() { return undefined_thing; }";
  cfg.device = eval::busmouse_binding();
  try {
    (void)eval::run_driver_campaign(cfg);
    FAIL() << "expected logic_error";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("busmouse"), std::string::npos)
        << e.what();
  }

  cfg.driver = "int mouse_boot() { panic(\"boom\"); return 1; }";
  try {
    (void)eval::run_driver_campaign(cfg);
    FAIL() << "expected logic_error";
  } catch (const std::logic_error& e) {
    std::string msg = e.what();
    EXPECT_NE(msg.find("busmouse"), std::string::npos) << msg;
    EXPECT_NE(msg.find("mouse_boot"), std::string::npos) << msg;
  }
}

TEST(BusmouseCampaign, MissingBindingIsRejectedUpFront) {
  eval::DriverCampaignConfig cfg;
  cfg.driver = "int mouse_boot() { return 1; }";
  try {
    (void)eval::run_driver_campaign(cfg);
    FAIL() << "expected logic_error";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("no device binding"),
              std::string::npos)
        << e.what();
  }
}

TEST(BusmouseCampaign, EntryOverrideBeatsBindingDefault) {
  // The binding supplies `mouse_boot`; an explicit entry wins over it.
  eval::DriverCampaignConfig cfg;
  cfg.driver = R"(
int other_boot() { return 77; }
int mouse_boot() { panic("wrong entry used"); return 1; }
)";
  cfg.device = eval::busmouse_binding();
  cfg.entry = "other_boot";
  auto res = eval::run_driver_campaign(cfg);
  EXPECT_EQ(res.clean_fingerprint, 77);
  EXPECT_EQ(res.entry, "other_boot");
}

TEST(BusmouseCampaign, BindingForMatchesExplicitBinding) {
  // The name-based lookup every campaign entry point now uses (via
  // eval::CampaignSpec) must select the exact same campaign as wiring the
  // binding factory by hand.
  auto cfg = cdevil_mouse_config();
  auto direct = eval::run_driver_campaign(cfg);
  cfg.device = eval::binding_for("busmouse");
  auto looked_up = eval::run_driver_campaign(cfg);
  expect_identical(looked_up, direct, "binding_for vs explicit");
  EXPECT_EQ(looked_up.device, "busmouse");
}

TEST(BusmouseCampaign, StandardBindingLookup) {
  EXPECT_EQ(eval::binding_for("busmouse").entry, "mouse_boot");
  EXPECT_EQ(eval::binding_for("ide").port_span, 8u);
  EXPECT_THROW((void)eval::binding_for("sound"), std::logic_error);
  EXPECT_EQ(eval::standard_bindings().size(), 4u);
  // Every corpus campaign device — polled and interrupt-driven — has a
  // standard binding with the same entry point.
  for (const auto& drivers : corpus::campaign_drivers()) {
    auto binding = eval::binding_for(drivers.device);
    EXPECT_EQ(binding.entry, drivers.entry) << drivers.device;
    EXPECT_LT(binding.irq_line, 0) << drivers.device;
  }
  for (const auto& drivers : corpus::irq_campaign_drivers()) {
    auto binding = eval::binding_for(drivers.device);
    EXPECT_EQ(binding.entry, drivers.entry) << drivers.device;
    EXPECT_GE(binding.irq_line, 0) << drivers.device;
  }
}

}  // namespace
