// Campaign metrics artifacts (eval/metrics.h) and the underlying telemetry
// primitives (support/metrics.h): log2-bucket histogram semantics and
// merge algebra, byte-stable artifact round trips, corrupt-input rejection,
// the atomic write contract, and the deterministic-section guarantees —
// byte-identical across thread counts and across a 3-shard merge vs the
// single-process campaign.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "corpus/drivers.h"
#include "corpus/specs.h"
#include "devil/compiler.h"
#include "eval/device_bindings.h"
#include "eval/driver_campaign.h"
#include "eval/fault_campaign.h"
#include "eval/merge.h"
#include "eval/metrics.h"
#include "eval/shard.h"
#include "support/metrics.h"

namespace {

using eval::CampaignMetricsRow;
using eval::DriverCampaignConfig;
using eval::MetricsArtifact;
using eval::ProcessMetrics;
using support::Histogram;

TEST(Histogram, BucketBoundariesAreLog2) {
  Histogram h;
  h.add(0);  // bucket 0
  h.add(1);  // bucket 1: [1, 2)
  h.add(2);  // bucket 2: [2, 4)
  h.add(3);
  h.add(4);  // bucket 3: [4, 8)
  h.add(7);
  h.add(8);  // bucket 4
  h.add((1ull << 40));  // bucket 41
  EXPECT_EQ(h.count(), 8u);
  EXPECT_EQ(h.total(), 0u + 1 + 2 + 3 + 4 + 7 + 8 + (1ull << 40));
  EXPECT_EQ(h.buckets()[0], 1u);
  EXPECT_EQ(h.buckets()[1], 1u);
  EXPECT_EQ(h.buckets()[2], 2u);
  EXPECT_EQ(h.buckets()[3], 2u);
  EXPECT_EQ(h.buckets()[4], 1u);
  EXPECT_EQ(h.buckets()[41], 1u);
}

TEST(Histogram, MergeEqualsAddingAllValuesAndIsOrderIndependent) {
  std::vector<std::vector<uint64_t>> shards = {
      {0, 3, 9, 1 << 20}, {5, 5, 5}, {1, 1ull << 33, 700}};
  Histogram all;
  std::vector<Histogram> parts(shards.size());
  for (size_t i = 0; i < shards.size(); ++i) {
    for (uint64_t v : shards[i]) {
      all.add(v);
      parts[i].add(v);
    }
  }
  // Merge in sorted order and in a shuffled order; associativity and
  // commutativity of bucket-wise sums mean both equal the direct histogram.
  Histogram fwd;
  for (const Histogram& p : parts) fwd.merge(p);
  Histogram shuffled;
  shuffled.merge(parts[2]);
  shuffled.merge(parts[0]);
  shuffled.merge(parts[1]);
  EXPECT_EQ(fwd, all);
  EXPECT_EQ(shuffled, all);
}

ProcessMetrics sample_process_metrics(uint64_t salt) {
  ProcessMetrics pm;
  pm.threads = 2 + salt;
  pm.wall_ns = 1'000'000 + salt * 37;
  for (size_t s = 0; s < support::kStageCount; ++s) {
    pm.stages[s].add(100 * (s + 1) + salt);
    pm.stages[s].add(salt);
  }
  pm.pool_fresh = 4 + salt;
  pm.pool_recycled = 900 + salt;
  pm.worker_records.add(50 + salt);
  pm.worker_records.add(60 + salt);
  return pm;
}

TEST(ProcessMetricsTest, MergeSumsCountersAndMergesHistograms) {
  ProcessMetrics a = sample_process_metrics(1);
  ProcessMetrics b = sample_process_metrics(2);
  ProcessMetrics merged = a;
  eval::merge_process_metrics(merged, b);
  EXPECT_EQ(merged.threads, a.threads + b.threads);
  EXPECT_EQ(merged.wall_ns, a.wall_ns + b.wall_ns);
  EXPECT_EQ(merged.pool_fresh, a.pool_fresh + b.pool_fresh);
  EXPECT_EQ(merged.pool_recycled, a.pool_recycled + b.pool_recycled);
  EXPECT_EQ(merged.stages[0].count(),
            a.stages[0].count() + b.stages[0].count());
  EXPECT_EQ(merged.worker_records.total(),
            a.worker_records.total() + b.worker_records.total());
}

TEST(ProcessMetricsTest, MergeIsShardOrderIndependent) {
  std::vector<ProcessMetrics> shards = {sample_process_metrics(1),
                                        sample_process_metrics(2),
                                        sample_process_metrics(3)};
  ProcessMetrics fwd = shards[0];
  eval::merge_process_metrics(fwd, shards[1]);
  eval::merge_process_metrics(fwd, shards[2]);
  ProcessMetrics shuffled = shards[2];
  eval::merge_process_metrics(shuffled, shards[0]);
  eval::merge_process_metrics(shuffled, shards[1]);
  EXPECT_EQ(fwd, shuffled);
}

/// The busmouse C campaign config, as the CLI builds it.
DriverCampaignConfig busmouse_config(unsigned threads = 1) {
  const corpus::CampaignDrivers* busmouse = nullptr;
  for (const auto& drivers : corpus::campaign_drivers()) {
    if (std::string(drivers.device) == "busmouse") busmouse = &drivers;
  }
  EXPECT_NE(busmouse, nullptr);
  DriverCampaignConfig c;
  c.driver = busmouse->c_driver();
  c.device = eval::binding_for(busmouse->device);
  c.sample_percent = busmouse->sample_percent;
  c.threads = threads;
  return c;
}

MetricsArtifact busmouse_artifact(unsigned threads = 1) {
  auto result = eval::run_driver_campaign(busmouse_config(threads));
  MetricsArtifact artifact;
  artifact.campaigns.push_back(
      eval::campaign_metrics_row(result, "C", "bytecode-vm"));
  artifact.process = sample_process_metrics(7);
  return artifact;
}

TEST(MetricsArtifactTest, RowReflectsTheCampaignResult) {
  auto result = eval::run_driver_campaign(busmouse_config());
  CampaignMetricsRow row =
      eval::campaign_metrics_row(result, "C", "bytecode-vm");
  EXPECT_EQ(row.device, "busmouse");
  EXPECT_EQ(row.label, "C");
  EXPECT_EQ(row.engine, "bytecode-vm");
  EXPECT_FALSE(row.fault_campaign);
  EXPECT_EQ(row.records, result.records.size());
  EXPECT_EQ(row.deduped, result.deduped_mutants);
  EXPECT_EQ(row.prefix_cache_hits, result.prefix_cache_hits);
  EXPECT_EQ(row.baseline_steps, result.baseline_steps);
  EXPECT_GT(row.baseline_steps, 0u);
  EXPECT_FALSE(row.baseline_opcodes.empty());
  uint64_t steps = 0;
  for (const auto& rec : result.records) steps += rec.steps;
  EXPECT_EQ(row.boot_steps, steps);
  uint64_t tallied = 0;
  for (const auto& [name, n] : row.tally) tallied += n;
  EXPECT_EQ(tallied, row.records);
}

TEST(MetricsArtifactTest, RoundTripIsByteStable) {
  MetricsArtifact artifact = busmouse_artifact();
  std::string text = eval::serialize_metrics(artifact);
  MetricsArtifact parsed = eval::parse_metrics(text);
  EXPECT_TRUE(parsed == artifact);
  EXPECT_EQ(eval::serialize_metrics(parsed), text)
      << "re-serializing a parsed artifact must reproduce the exact bytes";
}

TEST(MetricsArtifactTest, DeterministicSectionIgnoresTimings) {
  MetricsArtifact a = busmouse_artifact();
  MetricsArtifact b = a;
  b.process = sample_process_metrics(99);
  EXPECT_NE(eval::serialize_metrics(a), eval::serialize_metrics(b));
  EXPECT_EQ(eval::deterministic_metrics_json(a),
            eval::deterministic_metrics_json(b));
}

TEST(MetricsArtifactTest, ParseRejectsCorruptInput) {
  MetricsArtifact artifact = busmouse_artifact();
  std::string text = eval::serialize_metrics(artifact);

  EXPECT_THROW((void)eval::parse_metrics("not json"), std::runtime_error);
  EXPECT_THROW((void)eval::parse_metrics("{}"), std::runtime_error);
  EXPECT_THROW((void)eval::parse_metrics(text.substr(0, text.size() / 2)),
               std::runtime_error);

  std::string bad_tag = text;
  bad_tag.replace(bad_tag.find("devil-repro-metrics"),
                  std::string("devil-repro-metrics").size(), "bogus-format");
  EXPECT_THROW((void)eval::parse_metrics(bad_tag), std::runtime_error);

  // Tampering with a record count breaks the tally-sum invariant.
  const std::string records_field =
      "\"records\":" + std::to_string(artifact.campaigns[0].records);
  std::string bad_count = text;
  ASSERT_NE(bad_count.find(records_field), std::string::npos);
  bad_count.replace(
      bad_count.find(records_field), records_field.size(),
      "\"records\":" + std::to_string(artifact.campaigns[0].records + 1));
  EXPECT_THROW((void)eval::parse_metrics(bad_count), std::runtime_error);
}

TEST(MetricsArtifactTest, SaveIsAtomicAndUnwritablePathsThrow) {
  MetricsArtifact artifact;
  artifact.process = sample_process_metrics(0);
  const std::string dir = "/nonexistent-metrics-dir-for-test";
  ASSERT_FALSE(std::filesystem::exists(dir));
  EXPECT_THROW(eval::save_metrics_artifact(dir + "/m.json", artifact),
               eval::ArtifactWriteError);

  const std::string path = "test_metrics_roundtrip.json";
  eval::save_metrics_artifact(path, artifact);
  MetricsArtifact loaded = eval::load_metrics_artifact(path);
  EXPECT_TRUE(loaded == artifact);
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"))
      << "the temporary must be renamed away on success";
  std::remove(path.c_str());
}

TEST(MetricsDeterminism, RowsAreThreadCountInvariant) {
  auto t1 = eval::run_driver_campaign(busmouse_config(1));
  auto t3 = eval::run_driver_campaign(busmouse_config(3));
  EXPECT_TRUE(eval::campaign_metrics_row(t1, "C", "bytecode-vm") ==
              eval::campaign_metrics_row(t3, "C", "bytecode-vm"));
}

TEST(MetricsDeterminism, MergedShardsReproduceTheSingleProcessSection) {
  DriverCampaignConfig config = busmouse_config();

  MetricsArtifact single;
  single.campaigns.push_back(eval::campaign_metrics_row(
      eval::run_driver_campaign(config), "C", "bytecode-vm"));

  std::vector<eval::ShardBundle> bundles;
  for (unsigned i = 1; i <= 3; ++i) {
    eval::ShardBundle bundle;
    bundle.shard = {i, 3};
    bundle.campaigns.push_back(
        eval::run_campaign_shard(config, "C", {i, 3}));
    bundle.has_metrics = true;
    bundle.metrics = sample_process_metrics(i);
    bundles.push_back(std::move(bundle));
  }
  auto merged = eval::merge_shard_bundles(bundles);
  ASSERT_EQ(merged.size(), 1u);

  MetricsArtifact combined;
  combined.campaigns.push_back(eval::campaign_metrics_row(
      merged[0].result, merged[0].label, merged[0].engine));
  ASSERT_TRUE(eval::merge_bundle_metrics(bundles, &combined.process));

  EXPECT_EQ(eval::deterministic_metrics_json(combined),
            eval::deterministic_metrics_json(single))
      << "the deterministic section must be byte-identical merged vs single";

  // The aggregated timings are the order-independent merge of the bundles'.
  ProcessMetrics expect = sample_process_metrics(1);
  eval::merge_process_metrics(expect, sample_process_metrics(2));
  eval::merge_process_metrics(expect, sample_process_metrics(3));
  EXPECT_TRUE(combined.process == expect);

  // A 1/1 shard's local metrics row equals the full-run row: the shard row
  // builder and the campaign row builder cannot drift.
  eval::ShardArtifact whole = eval::run_campaign_shard(config, "C", {1, 1});
  EXPECT_TRUE(eval::shard_metrics_row(whole) == single.campaigns[0]);
}

TEST(MetricsDeterminism, BundlesWithoutMetricsMergeToNothing) {
  eval::ShardBundle bundle;  // has_metrics stays false
  ProcessMetrics out = sample_process_metrics(5);
  ProcessMetrics untouched = out;
  EXPECT_FALSE(eval::merge_bundle_metrics({bundle}, &out));
  EXPECT_TRUE(out == untouched);
}

}  // namespace
