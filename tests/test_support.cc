// Unit tests for the support library.
#include <gtest/gtest.h>

#include "support/diagnostics.h"
#include "support/rng.h"
#include "support/source.h"
#include "support/strings.h"
#include "support/table.h"

namespace {

using support::SourceBuffer;
using support::SourceLoc;

TEST(SourceBuffer, SliceExtractsRange) {
  SourceBuffer buf("t", "hello world");
  support::SourceRange r{{0, 1, 1}, {5, 1, 6}};
  EXPECT_EQ(buf.slice(r), "hello");
}

TEST(SourceBuffer, LineContainingMiddle) {
  SourceBuffer buf("t", "one\ntwo\nthree\n");
  SourceLoc loc;
  loc.offset = 5;  // inside "two"
  EXPECT_EQ(buf.line_containing(loc), "two");
}

TEST(SourceBuffer, LineContainingFirstAndLast) {
  SourceBuffer buf("t", "one\ntwo");
  SourceLoc first;
  first.offset = 0;
  EXPECT_EQ(buf.line_containing(first), "one");
  SourceLoc last;
  last.offset = 6;
  EXPECT_EQ(buf.line_containing(last), "two");
}

TEST(SourceBuffer, LineCountCountsTrailingPartialLine) {
  EXPECT_EQ(SourceBuffer("t", "a\nb\nc").line_count(), 3);
  EXPECT_EQ(SourceBuffer("t", "a\nb\n").line_count(), 2);
  EXPECT_EQ(SourceBuffer("t", "").line_count(), 0);
}

TEST(Diagnostics, CountsErrorsOnly) {
  support::DiagnosticEngine diags;
  diags.warning("W1", {}, "warn");
  EXPECT_FALSE(diags.has_errors());
  diags.error("E1", {}, "err");
  EXPECT_TRUE(diags.has_errors());
  EXPECT_EQ(diags.error_count(), 1);
  EXPECT_EQ(diags.all().size(), 2u);
}

TEST(Diagnostics, HasCodeFindsRule) {
  support::DiagnosticEngine diags;
  diags.error("DVL113", {}, "offset out of range");
  EXPECT_TRUE(diags.has_code("DVL113"));
  EXPECT_FALSE(diags.has_code("DVL999"));
}

TEST(Diagnostics, RenderContainsLocationAndMessage) {
  support::DiagnosticEngine diags;
  SourceLoc loc{10, 3, 7};
  diags.error("E2", loc, "bad thing");
  std::string text = diags.render();
  EXPECT_NE(text.find("3:7"), std::string::npos);
  EXPECT_NE(text.find("bad thing"), std::string::npos);
  EXPECT_NE(text.find("E2"), std::string::npos);
}

TEST(Diagnostics, ClearResets) {
  support::DiagnosticEngine diags;
  diags.error("E", {}, "x");
  diags.clear();
  EXPECT_FALSE(diags.has_errors());
  EXPECT_TRUE(diags.all().empty());
}

TEST(Rng, Deterministic) {
  support::SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  support::SplitMix64 a(1), b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Rng, NextBelowInRange) {
  support::SplitMix64 rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(10), 10u);
  }
}

TEST(Rng, SampleIndicesApproximatesPercent) {
  auto kept = support::sample_indices(10000, 25, 99);
  EXPECT_GT(kept.size(), 2200u);
  EXPECT_LT(kept.size(), 2800u);
  // Deterministic for a fixed seed.
  EXPECT_EQ(kept, support::sample_indices(10000, 25, 99));
}

TEST(Rng, SampleIndicesSorted) {
  auto kept = support::sample_indices(1000, 50, 3);
  EXPECT_TRUE(std::is_sorted(kept.begin(), kept.end()));
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(support::starts_with("Devil assertion: x", "Devil assertion"));
  EXPECT_FALSE(support::starts_with("devil", "Devil"));
}

TEST(Strings, SplitLines) {
  auto lines = support::split_lines("a\nb\n\nc");
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(lines[0], "a");
  EXPECT_EQ(lines[2], "");
  EXPECT_EQ(lines[3], "c");
}

TEST(Strings, CountCodeLinesSkipsBlanksAndComments) {
  EXPECT_EQ(support::count_code_lines("a = 1;\n\n// comment\n  b;\n"), 2);
  EXPECT_EQ(support::count_code_lines(""), 0);
  EXPECT_EQ(support::count_code_lines("// only\n// comments\n"), 0);
}

TEST(Strings, SpliceReplacesRange) {
  EXPECT_EQ(support::splice("0x1f0 + 6", 0, 5, "0x3f6"), "0x3f6 + 6");
  EXPECT_EQ(support::splice("abc", 1, 1, "xyz"), "axyzc");
  EXPECT_EQ(support::splice("abc", 3, 0, "!"), "abc!");
}

TEST(Table, RendersHeaderAndRows) {
  support::TextTable t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "222"});
  std::string s = t.render();
  EXPECT_NE(s.find("| name"), std::string::npos);
  EXPECT_NE(s.find("longer-name"), std::string::npos);
  EXPECT_NE(s.find("222"), std::string::npos);
}

TEST(Table, PercentFormatsOneDecimal) {
  EXPECT_EQ(support::percent(138, 516), "26.7 %");
  EXPECT_EQ(support::percent(0, 10), "0.0 %");
  EXPECT_EQ(support::percent(1, 0), "n/a");
}

}  // namespace
