// Determinism guarantees of the parallel campaign engine: any thread count
// must produce byte-identical results, the prefix token cache must be
// indistinguishable from whole-unit compilation, and the sampling RNG must
// be stable across platforms (it defines which mutants a campaign boots).
#include <gtest/gtest.h>

#include "corpus/drivers.h"
#include "corpus/specs.h"
#include "devil/compiler.h"
#include "eval/device_bindings.h"
#include "eval/driver_campaign.h"
#include "eval/spec_campaign.h"
#include "minic/program.h"
#include "support/parallel.h"
#include "support/rng.h"

namespace {

void expect_identical(const eval::DriverCampaignResult& a,
                      const eval::DriverCampaignResult& b) {
  EXPECT_EQ(a.clean_fingerprint, b.clean_fingerprint);
  EXPECT_EQ(a.total_sites, b.total_sites);
  EXPECT_EQ(a.total_mutants, b.total_mutants);
  EXPECT_EQ(a.sampled_mutants, b.sampled_mutants);
  EXPECT_EQ(a.deduped_mutants, b.deduped_mutants);
  EXPECT_EQ(a.tally.mutants, b.tally.mutants);
  EXPECT_EQ(a.tally.sites, b.tally.sites);
  EXPECT_EQ(a.tally.total_mutants, b.tally.total_mutants);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].mutant_index, b.records[i].mutant_index) << i;
    EXPECT_EQ(a.records[i].site, b.records[i].site) << i;
    EXPECT_EQ(a.records[i].outcome, b.records[i].outcome) << i;
    EXPECT_EQ(a.records[i].detail, b.records[i].detail) << i;
    EXPECT_EQ(a.records[i].deduped, b.records[i].deduped) << i;
  }
}

TEST(ParallelCampaign, CDriverIdenticalAtAnyThreadCount) {
  eval::DriverCampaignConfig cfg;
  cfg.driver = corpus::c_ide_driver();
  cfg.device = eval::ide_binding();
  cfg.sample_percent = 10;  // keep the test quick; coverage spans outcomes
  cfg.threads = 1;
  auto serial = eval::run_driver_campaign(cfg);
  cfg.threads = 4;
  auto parallel = eval::run_driver_campaign(cfg);
  expect_identical(serial, parallel);
}

TEST(ParallelCampaign, CDevilDriverIdenticalAtAnyThreadCount) {
  auto spec = devil::compile_spec("ide.dil", corpus::ide_spec(),
                                  devil::CodegenMode::kDebug);
  ASSERT_TRUE(spec.ok()) << spec.diags.render();
  eval::DriverCampaignConfig cfg;
  cfg.stubs = spec.stubs;
  cfg.driver = corpus::cdevil_ide_driver();
  cfg.device = eval::ide_binding();
  cfg.is_cdevil = true;
  cfg.sample_percent = 10;
  cfg.threads = 1;
  auto serial = eval::run_driver_campaign(cfg);
  cfg.threads = 4;
  auto parallel = eval::run_driver_campaign(cfg);
  expect_identical(serial, parallel);
}

TEST(ParallelCampaign, SpecCampaignIdenticalAtAnyThreadCount) {
  const auto& spec = corpus::all_specs()[0];
  auto serial = eval::run_spec_campaign(spec);
  eval::SpecCampaignConfig config;
  config.threads = 4;
  auto parallel = eval::run_spec_campaign(spec, config);
  EXPECT_EQ(serial.mutants, parallel.mutants);
  EXPECT_EQ(serial.detected, parallel.detected);
  EXPECT_EQ(serial.undetected_samples, parallel.undetected_samples);
}

TEST(ParallelCampaign, ZeroMeansHardwareConcurrency) {
  EXPECT_GE(support::resolve_threads(0, 1000), 1u);
  EXPECT_EQ(support::resolve_threads(8, 3), 3u);   // never more than jobs
  EXPECT_EQ(support::resolve_threads(2, 0), 1u);   // never zero
}

TEST(ParallelCampaign, ParallelForRethrowsSmallestFailingIndex) {
  EXPECT_NO_THROW(support::parallel_for(100, 4, [](size_t) {}));
  try {
    support::parallel_for(100, 4, [](size_t i) {
      if (i == 97 || i == 13) throw std::runtime_error(std::to_string(i));
    });
    FAIL() << "expected rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "13");
  }
}

// The prefix token cache must be indistinguishable from full compilation:
// same acceptance, same diagnostics, same line numbers, same coverage
// bookkeeping (macro use lines live in the unit).
TEST(PreparedPrefix, SpliceMatchesWholeUnitCompile) {
  auto spec = devil::compile_spec("ide.dil", corpus::ide_spec(),
                                  devil::CodegenMode::kDebug);
  ASSERT_TRUE(spec.ok());
  const std::string prefix_text = spec.stubs + "\n";
  const std::string& driver = corpus::cdevil_ide_driver();

  auto whole = minic::compile("ide.dil", prefix_text + driver);
  ASSERT_TRUE(whole.ok()) << whole.diags.render();

  auto prefix = minic::prepare_prefix("ide.dil", prefix_text);
  ASSERT_TRUE(prefix.ok()) << prefix.diags.render();
  auto spliced = minic::compile_with_prefix(prefix, driver);
  ASSERT_TRUE(spliced.ok()) << spliced.diags.render();

  EXPECT_EQ(whole.unit->structs.size(), spliced.unit->structs.size());
  EXPECT_EQ(whole.unit->globals.size(), spliced.unit->globals.size());
  EXPECT_EQ(whole.unit->functions.size(), spliced.unit->functions.size());
  EXPECT_EQ(whole.unit->macro_use_lines, spliced.unit->macro_use_lines);
}

TEST(PreparedPrefix, SpliceReportsTailErrorsAtUnitLines) {
  auto prefix = minic::prepare_prefix("u.c", "#define A 1\n\n");
  ASSERT_TRUE(prefix.ok());
  // Error on tail line 2 -> unit line 4 (prefix occupies lines 1-2).
  auto broken = minic::compile_with_prefix(prefix,
                                           "int f() {\n  return A + x;\n}\n");
  ASSERT_FALSE(broken.ok());
  auto direct = minic::compile("u.c",
                               "#define A 1\n\nint f() {\n  return A + x;\n}\n");
  ASSERT_FALSE(direct.ok());
  ASSERT_FALSE(broken.diags.all().empty());
  ASSERT_FALSE(direct.diags.all().empty());
  EXPECT_EQ(broken.diags.all().front().to_string(),
            direct.diags.all().front().to_string());
}

TEST(PreparedPrefix, TailMayRedefineNothingButDefineFreely) {
  auto prefix = minic::prepare_prefix("u.c", "#define A 1\n");
  ASSERT_TRUE(prefix.ok());
  // Redefining a prefix macro is an error, exactly as in one buffer.
  EXPECT_FALSE(minic::compile_with_prefix(prefix,
                                          "#define A 2\nint f() { return A; }")
                   .ok());
  // A fresh macro in the tail expands fine.
  EXPECT_TRUE(minic::compile_with_prefix(
                  prefix, "#define B 2\nint f() { return A + B; }")
                  .ok());
}

// The sampling RNG defines the experiment set; golden values pin it across
// platforms and refactors (SplitMix64 with the default campaign seed).
TEST(SampleIndices, StableAcrossPlatforms) {
  auto picks = support::sample_indices(40, 25, 20010325);
  EXPECT_EQ(picks, (std::vector<size_t>{2, 22, 24, 31}));
  auto none = support::sample_indices(100, 0, 20010325);
  EXPECT_TRUE(none.empty());
  auto all = support::sample_indices(5, 100, 20010325);
  EXPECT_EQ(all.size(), 5u);
  EXPECT_EQ(support::SplitMix64(20010325).next(), 5647700371745929731ULL);
}

}  // namespace
