// eval/fault_campaign: the fault-injection dual of the mutation campaigns.
// The scenario matrix must be deterministic, results byte-identical across
// thread counts, execution engines and shard/merge round trips, and the
// paper-shape claim must hold: on every corpus device the CDevil driver
// detects strictly more injected hardware faults than its classic-C twin.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "corpus/drivers.h"
#include "corpus/specs.h"
#include "devil/compiler.h"
#include "eval/device_bindings.h"
#include "eval/fault_campaign.h"
#include "eval/merge.h"
#include "eval/report.h"
#include "eval/shard.h"

namespace {

using eval::FaultCampaignConfig;
using eval::FaultCampaignResult;
using eval::FaultOutcome;
using eval::ShardBundle;
using eval::ShardSpec;

/// The C and CDevil fault configs for one corpus device, as the CLI builds
/// them (default trigger offsets, full scenario matrix).
std::pair<FaultCampaignConfig, FaultCampaignConfig> device_fault_configs(
    const corpus::CampaignDrivers& drivers, unsigned threads) {
  eval::DeviceBinding binding = eval::binding_for(drivers.device);

  FaultCampaignConfig c;
  c.base.driver = drivers.c_driver();
  c.base.device = binding;
  c.base.threads = threads;

  auto spec = devil::compile_spec(drivers.spec_file, drivers.spec(),
                                  devil::CodegenMode::kDebug);
  EXPECT_TRUE(spec.ok()) << spec.diags.render();
  FaultCampaignConfig d;
  d.base.stubs = spec.stubs;
  d.base.driver = drivers.cdevil_driver();
  d.base.device = binding;
  d.base.is_cdevil = true;
  d.base.threads = threads;
  return {std::move(c), std::move(d)};
}

FaultCampaignConfig busmouse_c_fault_config(unsigned threads = 1) {
  FaultCampaignConfig cfg;
  cfg.base.driver = corpus::c_busmouse_driver();
  cfg.base.device = eval::busmouse_binding();
  cfg.base.threads = threads;
  return cfg;
}

void expect_same_result(const FaultCampaignResult& a,
                        const FaultCampaignResult& b,
                        const std::string& label) {
  EXPECT_EQ(a.device, b.device) << label;
  EXPECT_EQ(a.entry, b.entry) << label;
  EXPECT_EQ(a.total_scenarios, b.total_scenarios) << label;
  EXPECT_EQ(a.sampled_scenarios, b.sampled_scenarios) << label;
  EXPECT_EQ(a.triggered_scenarios, b.triggered_scenarios) << label;
  EXPECT_EQ(a.clean_fingerprint, b.clean_fingerprint) << label;
  EXPECT_EQ(a.tally.scenarios, b.tally.scenarios) << label;
  EXPECT_EQ(a.tally.ports, b.tally.ports) << label;
  EXPECT_EQ(a.tally.total, b.tally.total) << label;
  ASSERT_EQ(a.records.size(), b.records.size()) << label;
  for (size_t i = 0; i < a.records.size(); ++i) {
    const std::string at = label + " record #" + std::to_string(i);
    EXPECT_EQ(a.records[i].scenario_index, b.records[i].scenario_index) << at;
    EXPECT_EQ(a.records[i].plan.port, b.records[i].plan.port) << at;
    EXPECT_EQ(a.records[i].plan.kind, b.records[i].plan.kind) << at;
    EXPECT_EQ(a.records[i].plan.after, b.records[i].plan.after) << at;
    EXPECT_EQ(a.records[i].plan.mask, b.records[i].plan.mask) << at;
    EXPECT_EQ(a.records[i].outcome, b.records[i].outcome) << at;
    EXPECT_EQ(a.records[i].detail, b.records[i].detail) << at;
    EXPECT_EQ(a.records[i].triggered, b.records[i].triggered) << at;
  }
}

// ---------------------------------------------------------------------------
// Scenario matrix and sampling.
// ---------------------------------------------------------------------------

TEST(FaultMatrix, EnumeratesEveryPortKindMaskAndTrigger) {
  eval::DeviceBinding binding = eval::busmouse_binding();
  std::vector<uint32_t> triggers = {0, 1, 2, 7};
  auto plans = eval::fault_scenario_matrix(binding, triggers);
  // Per port: 3 bit-kinds x 8 masks x |T| + 3 whole-port kinds x |T|.
  EXPECT_EQ(plans.size(), binding.port_span * (3 * 8 + 3) * triggers.size());
  // Every plan targets a port inside the device window.
  std::set<uint32_t> ports;
  for (const auto& p : plans) {
    EXPECT_GE(p.port, binding.port_base);
    EXPECT_LT(p.port, binding.port_base + binding.port_span);
    ports.insert(p.port);
  }
  EXPECT_EQ(ports.size(), binding.port_span);
  // The enumeration is deterministic (the artifact contract).
  auto again = eval::fault_scenario_matrix(binding, triggers);
  ASSERT_EQ(again.size(), plans.size());
  for (size_t i = 0; i < plans.size(); ++i) {
    EXPECT_EQ(again[i].port, plans[i].port) << i;
    EXPECT_EQ(again[i].kind, plans[i].kind) << i;
    EXPECT_EQ(again[i].after, plans[i].after) << i;
    EXPECT_EQ(again[i].mask, plans[i].mask) << i;
  }
}

TEST(FaultMatrix, ScenarioSeedIgnoresDriverText) {
  // The C and CDevil campaigns of one device must sample identical
  // scenario subsets — the seed folds device shape only, never the driver.
  auto [c, d] = device_fault_configs(corpus::campaign_drivers().front(), 1);
  EXPECT_EQ(eval::fault_scenario_seed(c), eval::fault_scenario_seed(d));
  // But it does react to the device shape and the fault knobs.
  FaultCampaignConfig other = c;
  other.triggers.push_back(31);
  EXPECT_NE(eval::fault_scenario_seed(c), eval::fault_scenario_seed(other));
}

// ---------------------------------------------------------------------------
// Determinism: threads, engines, shards.
// ---------------------------------------------------------------------------

TEST(FaultCampaign, ThreadCountDoesNotChangeResults) {
  auto res1 = eval::run_fault_campaign(busmouse_c_fault_config(1));
  auto res4 = eval::run_fault_campaign(busmouse_c_fault_config(4));
  expect_same_result(res1, res4, "threads 1 vs 4");
  EXPECT_GT(res1.sampled_scenarios, 0u);
  EXPECT_GT(res1.triggered_scenarios, 0u);
}

TEST(FaultCampaign, EnginesAgreeExactly) {
  auto vm_cfg = busmouse_c_fault_config();
  auto walker_cfg = busmouse_c_fault_config();
  walker_cfg.base.engine = minic::ExecEngine::kTreeWalker;
  auto vm = eval::run_fault_campaign(vm_cfg);
  auto walker = eval::run_fault_campaign(walker_cfg);
  expect_same_result(vm, walker, "vm vs walker");
}

TEST(FaultCampaign, ShardsMergeToTheSingleProcessResult) {
  auto cfg = busmouse_c_fault_config();
  auto single = eval::run_fault_campaign(cfg);
  // 3-way shard, JSON round-tripping every artifact, shards at different
  // thread counts (results are thread-invariant by contract).
  std::vector<ShardBundle> bundles;
  for (unsigned i = 1; i <= 3; ++i) {
    auto shard_cfg = cfg;
    shard_cfg.base.threads = i;
    ShardBundle bundle;
    bundle.shard = ShardSpec{i, 3};
    bundle.fault_campaigns.push_back(
        eval::run_fault_campaign_shard(shard_cfg, "C", bundle.shard));
    bundles.push_back(
        eval::parse_shard_bundle(eval::serialize_shard_bundle(bundle)));
  }
  auto merged = eval::merge_fault_bundles(bundles);
  ASSERT_EQ(merged.size(), 1u);
  expect_same_result(merged.front().result, single, "3-shard merge");
  // Rendered tables are byte-identical too.
  EXPECT_EQ(eval::render_fault_table("T", merged.front().result),
            eval::render_fault_table("T", single));
}

TEST(FaultCampaign, SerializationIsByteStable) {
  auto cfg = busmouse_c_fault_config();
  ShardBundle bundle;
  bundle.shard = ShardSpec{1, 2};
  bundle.fault_campaigns.push_back(
      eval::run_fault_campaign_shard(cfg, "C", bundle.shard));
  std::string text = eval::serialize_shard_bundle(bundle);
  // Round trip: parse and re-serialize yields identical bytes.
  EXPECT_EQ(eval::serialize_shard_bundle(eval::parse_shard_bundle(text)),
            text);
}

TEST(FaultCampaign, MergeRejectsMismatchedFingerprints) {
  auto cfg = busmouse_c_fault_config();
  auto other = cfg;
  other.triggers = {0, 3};
  ShardBundle b1;
  b1.shard = ShardSpec{1, 2};
  b1.fault_campaigns.push_back(
      eval::run_fault_campaign_shard(cfg, "C", b1.shard));
  ShardBundle b2;
  b2.shard = ShardSpec{2, 2};
  b2.fault_campaigns.push_back(
      eval::run_fault_campaign_shard(other, "C", b2.shard));
  try {
    (void)eval::merge_fault_bundles({b1, b2});
    FAIL() << "expected fingerprint mismatch rejection";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("fingerprint mismatch"),
              std::string::npos)
        << e.what();
  }
}

TEST(FaultCampaign, FingerprintPinsFaultKnobs) {
  auto cfg = busmouse_c_fault_config();
  auto fp = eval::fault_campaign_fingerprint(cfg);
  auto other = cfg;
  other.sample_percent = 50;
  EXPECT_NE(eval::fault_campaign_fingerprint(other), fp);
  other = cfg;
  other.triggers = {0};
  EXPECT_NE(eval::fault_campaign_fingerprint(other), fp);
  other = cfg;
  other.base.step_budget = 12345;
  EXPECT_NE(eval::fault_campaign_fingerprint(other), fp);
  other = cfg;
  other.base.threads = 8;  // thread count never changes results
  EXPECT_EQ(eval::fault_campaign_fingerprint(other), fp);
}

// ---------------------------------------------------------------------------
// Outcome semantics and the paper shape.
// ---------------------------------------------------------------------------

TEST(FaultCampaign, UntriggeredScenariosBootClean) {
  auto res = eval::run_fault_campaign(busmouse_c_fault_config());
  size_t untriggered = 0;
  for (const auto& rec : res.records) {
    if (!rec.triggered) {
      ++untriggered;
      EXPECT_EQ(rec.outcome, FaultOutcome::kCleanBoot)
          << rec.plan.describe();
    }
  }
  // The busmouse boot touches only a few accesses per port, so the late
  // trigger offsets must produce genuinely untriggered scenarios.
  EXPECT_GT(untriggered, 0u);
  EXPECT_EQ(res.triggered_scenarios + untriggered, res.sampled_scenarios);
}

TEST(FaultCampaign, CDevilDetectsStrictlyMoreFaultsThanC) {
  // The paper-shape acceptance check, per corpus device: Devil's generated
  // checks (plus the driver's own panics) catch strictly more injected
  // hardware faults than the classic C driver notices.
  for (const auto& drivers : corpus::campaign_drivers()) {
    SCOPED_TRACE(drivers.device);
    auto [c_cfg, d_cfg] = device_fault_configs(drivers, 4);
    auto c_res = eval::run_fault_campaign(c_cfg);
    auto d_res = eval::run_fault_campaign(d_cfg);
    EXPECT_GT(c_res.triggered_scenarios, 0u);
    EXPECT_GT(d_res.triggered_scenarios, 0u);
    EXPECT_GT(d_res.tally.detected(), c_res.tally.detected())
        << "CDevil detected " << d_res.tally.detected() << " vs C "
        << c_res.tally.detected();
  }
}

}  // namespace
