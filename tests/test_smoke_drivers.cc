// End-to-end smoke tests for the three non-IDE specifications: spec ->
// stubs -> CDevil driver -> shallow device model, in both codegen modes.
#include <gtest/gtest.h>

#include <memory>

#include "corpus/smoke_drivers.h"
#include "corpus/specs.h"
#include "devil/compiler.h"
#include "hw/io_bus.h"
#include "hw/misc_devices.h"
#include "minic/program.h"

namespace {

struct Case {
  const char* label;
  const std::string* spec;
  const char* spec_file;
  const std::string* driver;
  const char* entry;
};

class SmokeDriverTest
    : public ::testing::TestWithParam<std::tuple<int, devil::CodegenMode>> {
 protected:
  static Case get_case(int ix) {
    switch (ix) {
      case 0:
        return {"ne2000", &corpus::ne2000_spec(), "ne2000.dil",
                &corpus::cdevil_ne2000_driver(), "nic_boot"};
      case 1:
        return {"pci", &corpus::pci_busmaster_spec(), "piix_bm.dil",
                &corpus::cdevil_pci_driver(), "bm_boot"};
      default:
        return {"permedia2", &corpus::permedia2_spec(), "permedia2.dil",
                &corpus::cdevil_permedia_driver(), "gfx_boot"};
    }
  }

  static void map_devices(int ix, hw::IoBus& bus) {
    switch (ix) {
      case 0:
        bus.map(0x300, 32, std::make_shared<hw::Ne2000>());
        break;
      case 1:
        bus.map(0xc000, 16, std::make_shared<hw::PciBusMaster>());
        break;
      default:
        bus.map(0xd000, 16, std::make_shared<hw::Permedia2>());
        break;
    }
  }
};

TEST_P(SmokeDriverTest, BootsCleanly) {
  auto [ix, mode] = GetParam();
  Case c = get_case(ix);
  auto spec = devil::compile_spec(c.spec_file, *c.spec, mode);
  ASSERT_TRUE(spec.ok()) << c.label << "\n" << spec.diags.render();

  hw::IoBus bus;
  map_devices(ix, bus);
  std::string unit = spec.stubs + "\n" + *c.driver;
  auto out = minic::compile_and_run(c.spec_file, unit, c.entry, bus, 500'000);
  EXPECT_EQ(out.fault, minic::FaultKind::kNone)
      << c.label << ": " << out.fault_message;
  EXPECT_GT(out.return_value, 0) << c.label;
}

TEST_P(SmokeDriverTest, FingerprintIdenticalAcrossModes) {
  auto [ix, mode] = GetParam();
  (void)mode;  // compare debug vs production regardless of param
  Case c = get_case(ix);
  int64_t values[2];
  int slot = 0;
  for (auto m :
       {devil::CodegenMode::kDebug, devil::CodegenMode::kProduction}) {
    auto spec = devil::compile_spec(c.spec_file, *c.spec, m);
    ASSERT_TRUE(spec.ok());
    hw::IoBus bus;
    map_devices(ix, bus);
    auto out = minic::compile_and_run(c.spec_file, spec.stubs + "\n" + *c.driver,
                                      c.entry, bus, 500'000);
    ASSERT_EQ(out.fault, minic::FaultKind::kNone) << out.fault_message;
    values[slot++] = out.return_value;
  }
  EXPECT_EQ(values[0], values[1])
      << c.label << ": debug and production stubs must observe the same "
                    "device state";
}

std::string smoke_case_name(
    const ::testing::TestParamInfo<std::tuple<int, devil::CodegenMode>>&
        info) {
  static const char* names[] = {"ne2000", "pci", "permedia2"};
  return std::string(names[std::get<0>(info.param)]) +
         (std::get<1>(info.param) == devil::CodegenMode::kDebug
              ? "_debug"
              : "_production");
}

INSTANTIATE_TEST_SUITE_P(
    AllDevices, SmokeDriverTest,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values(devil::CodegenMode::kDebug,
                                         devil::CodegenMode::kProduction)),
    smoke_case_name);

TEST(SmokeDrivers, WrongBaseAddressFailsVisibly) {
  // Initialising the NIC driver at the wrong base leaves it talking to the
  // open bus; the reset handshake must catch that (stuck-high ISR would
  // actually pass bit 7, so the station-address readback is the tripwire).
  auto spec = devil::compile_spec("ne2000.dil", corpus::ne2000_spec(),
                                  devil::CodegenMode::kDebug);
  ASSERT_TRUE(spec.ok());
  std::string driver = corpus::cdevil_ne2000_driver();
  size_t pos = driver.find("devil_init(0x300, 0x310, 0x31f)");
  ASSERT_NE(pos, std::string::npos);
  driver.replace(pos, 31, "devil_init(0x500, 0x510, 0x51f)");
  hw::IoBus bus;
  bus.map(0x300, 32, std::make_shared<hw::Ne2000>());
  auto out = minic::compile_and_run("ne2000.dil", spec.stubs + "\n" + driver,
                                    "nic_boot", bus, 500'000);
  EXPECT_NE(out.fault, minic::FaultKind::kNone);
}

}  // namespace
