// Bytecode-patch mutation: classification goldens for the Table 1 typo
// rules, patched-vs-recompiled byte identity on every corpus device, and the
// corrupted-patch-table guard. The differential suites double as coverage of
// the fast canonical dedup-key path: dedup grouping (the records' `deduped`
// flags and `deduped_mutants`) must not depend on the patch flag, and the
// fast key only runs when patch context was built.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "corpus/drivers.h"
#include "corpus/specs.h"
#include "devil/compiler.h"
#include "eval/device_bindings.h"
#include "eval/driver_campaign.h"
#include "minic/bytecode/patcher.h"
#include "minic/program.h"

namespace {

// ---------------------------------------------------------------------------
// Patchability goldens: a synthetic tail with one lowering per Table 1
// operator rule, sites threaded by hand exactly as the campaign threads
// mutation::scan_c_sites spans.
// ---------------------------------------------------------------------------

const char kGoldenDriver[] =
    "int bin_and(int a, int b) { return a & b; }\n"
    "int bin_or(int a, int b) { return a | b; }\n"
    "int bin_xor(int a, int b) { return a ^ b; }\n"
    "int log_and(int a, int b) { return a && b; }\n"
    "int log_or(int a, int b) { return a || b; }\n"
    "int shift(int a, int b) { return a << b; }\n"
    "int flip(int a) { return ~a; }\n"
    "int sum(int a, int b) { return a + b; }\n"
    "int same(int a, int b) { if (a == b) { return 1; } return 0; }\n"
    "int acc_and(int a) { a &= 5; return a; }\n"
    "int acc_shl(int a) { a <<= 2; return a; }\n"
    "int boot() { return 1; }\n";

/// Finds `token` after `context` in the driver text and appends its span.
/// Sites are added in text order, so the span vector stays sorted.
uint32_t add_site(std::vector<minic::SiteSpan>& spans, const std::string& text,
                  const char* context, const char* token) {
  size_t ctx = text.find(context);
  EXPECT_NE(ctx, std::string::npos) << context;
  size_t off = text.find(token, ctx);
  EXPECT_NE(off, std::string::npos) << token;
  uint32_t id = static_cast<uint32_t>(spans.size());
  spans.push_back({static_cast<uint32_t>(off),
                   static_cast<uint32_t>(std::strlen(token)), id});
  return id;
}

struct GoldenContext {
  minic::PreparedPrefix prefix;
  minic::RecordedTail recorded;
  // Site ids in the order add_site assigned them.
  uint32_t amp, pipe, caret, ampamp, pipepipe, shl, tilde, plus, eq, amp_assign,
      lit5, shl_eq;
};

GoldenContext build_golden() {
  GoldenContext g;
  const std::string text = kGoldenDriver;
  std::vector<minic::SiteSpan> spans;
  g.amp = add_site(spans, text, "bin_and", "&");
  g.pipe = add_site(spans, text, "bin_or", "|");
  g.caret = add_site(spans, text, "bin_xor", "^");
  g.ampamp = add_site(spans, text, "log_and", "&&");
  g.pipepipe = add_site(spans, text, "log_or", "||");
  g.shl = add_site(spans, text, "shift", "<<");
  g.tilde = add_site(spans, text, "flip", "~");
  g.plus = add_site(spans, text, "sum(", "+");
  g.eq = add_site(spans, text, "same", "==");
  g.amp_assign = add_site(spans, text, "acc_and", "&=");
  g.lit5 = add_site(spans, text, "acc_and", "5");
  g.shl_eq = add_site(spans, text, "acc_shl", "<<=");

  g.prefix = minic::prepare_prefix("golden.c", "");
  EXPECT_TRUE(g.prefix.ok()) << g.prefix.diags.render();
  EXPECT_NE(g.prefix.compiled, nullptr);
  g.recorded = minic::compile_tail_recording(g.prefix, text, spans);
  EXPECT_TRUE(g.recorded.spliced.ok()) << g.recorded.spliced.diags.render();
  EXPECT_FALSE(g.recorded.spliced.whole_unit_fallback);
  EXPECT_NE(g.recorded.tail_unit, nullptr);
  EXPECT_FALSE(g.recorded.patch.points.empty());
  return g;
}

minic::bytecode::Patcher make_patcher(const GoldenContext& g,
                                      minic::bytecode::PatchTable table) {
  return minic::bytecode::Patcher(*g.recorded.spliced.module,
                                  g.prefix.compiled->unit,
                                  *g.recorded.tail_unit, g.recorded.macros,
                                  std::move(table));
}

std::optional<minic::bytecode::Module> try_op(
    const minic::bytecode::Patcher& p, uint32_t site, minic::Tok new_op) {
  minic::bytecode::PatchRequest req;
  req.kind = minic::bytecode::PatchRequest::Kind::kOperator;
  req.site = site;
  req.new_op = new_op;
  return p.apply(req);
}

// Every Table 1 operator rule, classified: pure operand rewrites patch,
// structure changes (a bitwise op becoming short-circuit control flow, or
// the reverse) fall back to recompilation.
TEST(BytecodePatch, OperatorRulesClassifyPerTable1) {
  auto g = build_golden();
  auto patcher = make_patcher(g, g.recorded.patch);
  using minic::Tok;

  // & -> | rewrites the binop opcode; & -> && needs short-circuit control
  // flow that the lowering does not have.
  EXPECT_TRUE(try_op(patcher, g.amp, Tok::kPipe).has_value());
  EXPECT_FALSE(try_op(patcher, g.amp, Tok::kAmpAmp).has_value());
  // | -> & patches; | -> || falls back.
  EXPECT_TRUE(try_op(patcher, g.pipe, Tok::kAmp).has_value());
  EXPECT_FALSE(try_op(patcher, g.pipe, Tok::kPipePipe).has_value());
  // ^ -> & and ^ -> | are plain opcode swaps.
  EXPECT_TRUE(try_op(patcher, g.caret, Tok::kAmp).has_value());
  EXPECT_TRUE(try_op(patcher, g.caret, Tok::kPipe).has_value());
  // && <-> || swaps the short-circuit jump pair; && -> & would have to
  // un-branch the lowering.
  EXPECT_TRUE(try_op(patcher, g.ampamp, Tok::kPipePipe).has_value());
  EXPECT_FALSE(try_op(patcher, g.ampamp, Tok::kAmp).has_value());
  EXPECT_TRUE(try_op(patcher, g.pipepipe, Tok::kAmpAmp).has_value());
  EXPECT_FALSE(try_op(patcher, g.pipepipe, Tok::kPipe).has_value());
  // << <-> >>, ~ <-> !, + <-> -, == <-> != are all operand rewrites.
  EXPECT_TRUE(try_op(patcher, g.shl, Tok::kShr).has_value());
  EXPECT_TRUE(try_op(patcher, g.tilde, Tok::kBang).has_value());
  EXPECT_TRUE(try_op(patcher, g.plus, Tok::kMinus).has_value());
  EXPECT_TRUE(try_op(patcher, g.eq, Tok::kNe).has_value());
  // Compound assignments patch their base operator in place.
  EXPECT_TRUE(try_op(patcher, g.amp_assign, Tok::kOrAssign).has_value());
  EXPECT_TRUE(try_op(patcher, g.shl_eq, Tok::kShrAssign).has_value());
  // Default-deny: an operator kind the site's lowering cannot express.
  EXPECT_FALSE(try_op(patcher, g.amp, Tok::kAssign).has_value());
}

TEST(BytecodePatch, LiteralRewriteAndUnknownSiteFallBackCorrectly) {
  auto g = build_golden();
  auto patcher = make_patcher(g, g.recorded.patch);

  minic::bytecode::PatchRequest lit;
  lit.kind = minic::bytecode::PatchRequest::Kind::kLiteral;
  lit.site = g.lit5;
  lit.value = 7;
  EXPECT_TRUE(patcher.apply(lit).has_value());

  // A site that lowered to no points (here: an id the table never saw)
  // classifies as fallback, never as a silent no-op patch.
  minic::bytecode::PatchRequest unknown;
  unknown.kind = minic::bytecode::PatchRequest::Kind::kOperator;
  unknown.site = 4096;
  unknown.new_op = minic::Tok::kPipe;
  EXPECT_FALSE(patcher.apply(unknown).has_value());
}

// A corrupted patch table must be rejected loudly at splice time — booting
// the wrong driver would silently poison a whole campaign.
TEST(BytecodePatch, CorruptTableRejectedAtSpliceTime) {
  auto g = build_golden();
  auto table = g.recorded.patch;
  ASSERT_FALSE(table.points.empty());
  const uint32_t site = table.points[0].site;
  table.points[0].insn = 0x00ffffffu;  // past the end of any tail function
  auto corrupt = make_patcher(g, std::move(table));
  EXPECT_THROW((void)try_op(corrupt, site, minic::Tok::kPipe),
               std::runtime_error);

  auto bad_fn = g.recorded.patch;
  const uint32_t fn_site = bad_fn.points[0].site;
  bad_fn.points[0].fn = 0x00ffffffu;  // function index not in the tail
  auto corrupt_fn = make_patcher(g, std::move(bad_fn));
  EXPECT_THROW((void)try_op(corrupt_fn, fn_site, minic::Tok::kPipe),
               std::runtime_error);
}

// Inverse guard, run by the `bytecode_patch_corrupt_table_guard` ctest with
// WILL_FAIL TRUE: splicing through a corrupted table must throw (making
// this test — and the process — fail, which the WILL_FAIL inverts into a
// pass). If the patcher ever starts accepting the corrupt table silently,
// this test passes, the ctest's expected failure disappears, and the suite
// goes red.
TEST(BytecodePatch, DISABLED_CorruptTableSplicesSilently) {
  auto g = build_golden();
  auto table = g.recorded.patch;
  ASSERT_FALSE(table.points.empty());
  const uint32_t site = table.points[0].site;
  table.points[0].insn = 0x00ffffffu;
  auto corrupt = make_patcher(g, std::move(table));
  (void)try_op(corrupt, site, minic::Tok::kPipe);  // must throw
}

// ---------------------------------------------------------------------------
// Campaign differentials: patching on/off, thread counts, pool recycling.
// ---------------------------------------------------------------------------

const corpus::CampaignDrivers& drivers_for(const char* device) {
  for (const auto& d : corpus::campaign_drivers()) {
    if (std::strcmp(d.device, device) == 0) return d;
  }
  throw std::runtime_error(std::string("no corpus for ") + device);
}

eval::DriverCampaignConfig patch_config(const corpus::CampaignDrivers& d,
                                        bool cdevil) {
  eval::DriverCampaignConfig cfg;
  if (cdevil) {
    auto spec =
        devil::compile_spec(d.spec_file, d.spec(), devil::CodegenMode::kDebug);
    if (!spec.ok()) throw std::runtime_error(spec.diags.render());
    cfg.stubs = spec.stubs;
    cfg.driver = d.cdevil_driver();
    cfg.is_cdevil = true;
  } else {
    cfg.driver = d.c_driver();
  }
  cfg.entry = d.entry;
  cfg.device = eval::binding_for(d.device);
  cfg.sample_percent = std::min(d.sample_percent, 10u);  // keep the test quick
  cfg.flight_recorder = true;  // traces must be patch-invariant too
  return cfg;
}

/// Everything a campaign result reports except the patch telemetry bits:
/// outcomes, details, steps, traces, dedup grouping, cache hits, baseline.
void expect_identical(const eval::DriverCampaignResult& a,
                      const eval::DriverCampaignResult& b) {
  EXPECT_EQ(a.clean_fingerprint, b.clean_fingerprint);
  EXPECT_EQ(a.total_sites, b.total_sites);
  EXPECT_EQ(a.total_mutants, b.total_mutants);
  EXPECT_EQ(a.sampled_mutants, b.sampled_mutants);
  EXPECT_EQ(a.deduped_mutants, b.deduped_mutants);
  EXPECT_EQ(a.prefix_cache_hits, b.prefix_cache_hits);
  EXPECT_EQ(a.baseline_steps, b.baseline_steps);
  EXPECT_TRUE(a.baseline_opcodes == b.baseline_opcodes);
  EXPECT_EQ(a.tally.mutants, b.tally.mutants);
  EXPECT_EQ(a.tally.sites, b.tally.sites);
  EXPECT_EQ(a.tally.total_mutants, b.tally.total_mutants);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].mutant_index, b.records[i].mutant_index) << i;
    EXPECT_EQ(a.records[i].site, b.records[i].site) << i;
    EXPECT_EQ(a.records[i].outcome, b.records[i].outcome) << i;
    EXPECT_EQ(a.records[i].detail, b.records[i].detail) << i;
    EXPECT_EQ(a.records[i].deduped, b.records[i].deduped) << i;
    EXPECT_EQ(a.records[i].steps, b.records[i].steps) << i;
    EXPECT_EQ(a.records[i].trace, b.records[i].trace) << i;
  }
}

/// The patched/fallback split is a pure function of each mutant, so it must
/// agree record-for-record across thread counts and reruns.
void expect_same_patch_bits(const eval::DriverCampaignResult& a,
                            const eval::DriverCampaignResult& b) {
  ASSERT_EQ(a.records.size(), b.records.size());
  for (size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].patched, b.records[i].patched) << i;
    EXPECT_EQ(a.records[i].patch_fallback, b.records[i].patch_fallback) << i;
  }
  EXPECT_EQ(a.patch_hits, b.patch_hits);
  EXPECT_EQ(a.patch_fallbacks, b.patch_fallbacks);
}

/// When the campaign built a patcher, every unique (non-deduped) record
/// carries exactly one of the two bits; duplicates never carry either.
void expect_bit_partition(const eval::DriverCampaignResult& r) {
  size_t hits = 0, fallbacks = 0;
  for (const auto& rec : r.records) {
    EXPECT_FALSE(rec.patched && rec.patch_fallback);
    if (rec.deduped) {
      EXPECT_FALSE(rec.patched);
      EXPECT_FALSE(rec.patch_fallback);
    }
    hits += rec.patched ? 1 : 0;
    fallbacks += rec.patch_fallback ? 1 : 0;
  }
  EXPECT_EQ(hits, r.patch_hits);
  EXPECT_EQ(fallbacks, r.patch_fallbacks);
  if (r.patch_hits + r.patch_fallbacks > 0) {
    EXPECT_EQ(r.patch_hits + r.patch_fallbacks,
              r.records.size() - r.deduped_mutants);
  }
}

// Patched boots must be byte-identical to recompiled boots — outcome,
// detail, steps, flight-recorder trace, dedup grouping, cache hits — on
// every corpus device (polled and interrupt-driven), both driver flavors,
// at one and at four threads.
TEST(BytecodePatch, PatchedMatchesRecompiledOnEveryCorpusDevice) {
  std::vector<corpus::CampaignDrivers> all = corpus::campaign_drivers();
  for (const auto& d : corpus::irq_campaign_drivers()) all.push_back(d);
  size_t total_hits = 0, total_fallbacks = 0;
  for (const auto& d : all) {
    for (bool cdevil : {false, true}) {
      SCOPED_TRACE(std::string(d.device) + (cdevil ? "/CDevil" : "/C"));
      auto cfg = patch_config(d, cdevil);
      cfg.threads = 1;
      auto on1 = eval::run_driver_campaign(cfg);
      cfg.bytecode_patch = false;
      auto off = eval::run_driver_campaign(cfg);
      cfg.bytecode_patch = true;
      cfg.threads = 4;
      auto on4 = eval::run_driver_campaign(cfg);

      expect_identical(on1, off);
      expect_identical(on1, on4);
      expect_same_patch_bits(on1, on4);
      expect_bit_partition(on1);
      EXPECT_EQ(off.patch_hits, 0u);
      EXPECT_EQ(off.patch_fallbacks, 0u);
      total_hits += on1.patch_hits;
      total_fallbacks += on1.patch_fallbacks;
    }
  }
  // The patched path must actually engage, or the identity above is vacuous.
  EXPECT_GT(total_hits, 0u);
  EXPECT_GT(total_fallbacks, 0u);
}

// Full-corpus regression for the precedence guard: the busmouse driver's
// `(buttons << 16) | (dy << 8) | dx` is exactly the shape where an in-place
// `|` -> `&` opcode rewrite keeps the clean parse tree while a recompile
// re-associates (`&` binds tighter), so the classifier must recompile it.
// Only the full sample reaches every such mutant.
TEST(BytecodePatch, FullBusmouseSampleIdenticalPatchOnOrOff) {
  const auto& d = drivers_for("busmouse");
  auto cfg = patch_config(d, false);
  cfg.sample_percent = d.sample_percent;  // the full corpus
  cfg.threads = 4;
  auto on = eval::run_driver_campaign(cfg);
  cfg.bytecode_patch = false;
  auto off = eval::run_driver_campaign(cfg);
  expect_identical(on, off);
  expect_bit_partition(on);
  EXPECT_GT(on.patch_hits, 0u);
  EXPECT_GT(on.patch_fallbacks, 0u);
}

// Device-pool recycling across patched boots: running the same campaign
// twice (same pool discipline, fresh pools) is bit-identical, patch
// telemetry included.
TEST(BytecodePatch, PatchedBootsOnRecycledDevicesAreBitIdentical) {
  auto cfg = patch_config(drivers_for("ide"), false);
  cfg.threads = 4;
  auto first = eval::run_driver_campaign(cfg);
  auto second = eval::run_driver_campaign(cfg);
  expect_identical(first, second);
  expect_same_patch_bits(first, second);
  EXPECT_GT(first.patch_hits, 0u);
}

// The tree-walker oracle layered over the prepared prefix must match the
// whole-unit walker exactly; walker campaigns never build a patcher, so the
// patch counters stay zero either way.
TEST(BytecodePatch, WalkerPrefixReuseMatchesWholeUnitWalker) {
  for (bool cdevil : {false, true}) {
    SCOPED_TRACE(cdevil ? "CDevil" : "C");
    auto cfg = patch_config(drivers_for("busmouse"), cdevil);
    cfg.engine = minic::ExecEngine::kTreeWalker;
    cfg.threads = 2;
    auto layered = eval::run_driver_campaign(cfg);
    cfg.prefix_cache = false;
    auto whole = eval::run_driver_campaign(cfg);
    expect_identical(layered, whole);
    EXPECT_EQ(layered.patch_hits, 0u);
    EXPECT_EQ(layered.patch_fallbacks, 0u);
  }
}

}  // namespace
