// The deterministic interrupt/event model and the event-driven fault
// campaigns: IrqController queue/in-service semantics, IoBus delivery and
// observer taps, device raise points (busmouse motion, IDE command
// completion), the FaultInjector's event-fault kinds and their composition
// with port-fault shims, MiniC request_irq binding and the wall-clock
// watchdog, flight-recorder IRQ interleaving (byte-identical across
// engines), pool-recycle bit-identity after event-faulted boots, and the
// event-scenario campaign's determinism/merge/paper-shape guarantees.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "corpus/drivers.h"
#include "devil/compiler.h"
#include "eval/device_bindings.h"
#include "eval/fault_campaign.h"
#include "eval/merge.h"
#include "eval/metrics.h"
#include "eval/shard.h"
#include "hw/busmouse.h"
#include "hw/device_pool.h"
#include "hw/fault_injection.h"
#include "hw/flight_recorder.h"
#include "hw/ide_disk.h"
#include "hw/io_bus.h"
#include "minic/program.h"
#include "support/metrics.h"

namespace {

using hw::FaultInjector;
using hw::FaultKind;
using hw::FaultPlan;
using hw::IrqEventKind;

FaultPlan event_plan(int line, FaultKind kind, uint32_t after,
                     uint32_t value = 0) {
  FaultPlan p;
  p.port = static_cast<uint32_t>(line);
  p.kind = kind;
  p.after = after;
  p.value = value;
  return p;
}

/// Device with an externally pulsable interrupt output, for driving the
/// raise chain without a behavioural model.
class PulseDevice final : public hw::Device {
 public:
  std::string name() const override { return "pulse"; }
  uint32_t read(uint32_t offset, int width) override {
    (void)offset;
    (void)width;
    return 0x5a;
  }
  void write(uint32_t offset, uint32_t value, int width) override {
    (void)offset;
    (void)value;
    (void)width;
  }
  void reset() override {}
  void pulse() { raise_irq(); }
};

/// Terminal sink recording every raise that reaches it.
struct RecordingSink final : hw::IrqSink {
  struct Raise {
    int line;
    uint64_t delay;
    bool genuine;
  };
  std::vector<Raise> raises;
  void raise_irq(int line, uint64_t delay_steps, bool genuine) override {
    raises.push_back({line, delay_steps, genuine});
  }
};

// ---------------------------------------------------------------------------
// IrqController and IoBus delivery semantics.
// ---------------------------------------------------------------------------

TEST(IrqController, FifoDueStepsAndInServiceLatching) {
  hw::IrqController c;
  c.raise(5, 10, true);
  c.raise(3, 0, true);
  EXPECT_EQ(c.raised(), 2u);
  // Line 5 was queued first but is not due yet; FIFO applies among due.
  ASSERT_EQ(c.pending(0), 3);
  c.begin(true);
  EXPECT_EQ(c.in_service(), 1u << 3);
  c.end();
  EXPECT_EQ(c.in_service(), 0u);
  EXPECT_EQ(c.pending(9), -1) << "line 5 still pends until step 10";
  ASSERT_EQ(c.pending(10), 5);
  c.begin(true);
  c.end();
  EXPECT_EQ(c.delivered(), 2u);
  // Spurious delivery: dispatched like any other, but never in-service.
  c.raise(4, 0, false);
  ASSERT_EQ(c.pending(0), 4);
  c.begin(true);
  EXPECT_EQ(c.in_service(), 0u);
  c.end();
  // Acknowledge-and-drop (no handler registered).
  c.raise(2, 0, true);
  ASSERT_EQ(c.pending(0), 2);
  c.begin(false);
  EXPECT_EQ(c.dropped(), 1u);
  EXPECT_EQ(c.in_service(), 0u);
  EXPECT_FALSE(c.has_queued());
  // clear() is full power-on: queue, in-service and counters.
  c.raise(1, 0, true);
  c.clear();
  EXPECT_FALSE(c.has_queued());
  EXPECT_EQ(c.raised(), 0u);
  EXPECT_EQ(c.pending(1000), -1);
}

TEST(IoBusIrq, QueuesObservesExposesStatusAndClearsOnReset) {
  struct Observer final : hw::IrqObserver {
    std::vector<std::pair<IrqEventKind, int>> events;
    void irq_event(IrqEventKind kind, int line) override {
      events.push_back({kind, line});
    }
  } obs;
  hw::IoBus bus;
  bus.set_irq_observer(&obs);
  bus.map(hw::kIrqStatusPortBase, 1,
          std::make_shared<hw::IrqStatusPort>(&bus.irq_controller()));

  bus.raise_irq(6, 0, true);
  ASSERT_EQ(bus.irq_pending(), 6);
  bus.irq_begin(true);
  // The 8259 idiom: a genuine delivery is visible at the status port...
  EXPECT_EQ(bus.io_in(hw::kIrqStatusPortBase, 8), 1u << 6);
  bus.irq_end();
  EXPECT_EQ(bus.io_in(hw::kIrqStatusPortBase, 8), 0u);
  // ...a spurious one never is.
  bus.raise_irq(6, 0, false);
  ASSERT_EQ(bus.irq_pending(), 6);
  bus.irq_begin(true);
  EXPECT_EQ(bus.io_in(hw::kIrqStatusPortBase, 8), 0u);
  bus.irq_end();
  // No handler: acknowledged and dropped.
  bus.raise_irq(3, 0, true);
  bus.irq_begin(false);
  // Out-of-range lines are ignored, not queued.
  bus.raise_irq(99, 0, true);
  bus.raise_irq(-1, 0, true);
  EXPECT_EQ(bus.irq_pending(), -1);

  const std::vector<std::pair<IrqEventKind, int>> want = {
      {IrqEventKind::kRaised, 6},    {IrqEventKind::kDelivered, 6},
      {IrqEventKind::kRaised, 6},    {IrqEventKind::kDelivered, 6},
      {IrqEventKind::kRaised, 3},    {IrqEventKind::kDropped, 3},
  };
  EXPECT_EQ(obs.events, want);

  // reset() must not leak pending events into the next boot.
  bus.raise_irq(5, 0, true);
  bus.reset();
  EXPECT_EQ(bus.irq_pending(), -1);
  EXPECT_EQ(bus.irq_controller().raised(), 0u);
}

TEST(IoBusIrq, BusmouseRaisesOnMotionHonoringTheInterruptDisableBit) {
  auto mouse = std::make_shared<hw::Busmouse>();
  mouse->preload_motion(9, -3, 0x01);
  hw::IoBus bus;
  bus.map(0x23c, 4, mouse, 5);
  // Power-on default: interrupts disabled, the preloaded report pends.
  EXPECT_EQ(bus.irq_pending(), -1);
  // The disabled->enabled CONTROL transition raises the pended report.
  bus.io_out(0x23e, 0x00, 8);
  ASSERT_EQ(bus.irq_pending(), 5);
  bus.irq_begin(true);
  bus.irq_end();
  // Motion while enabled raises immediately...
  mouse->set_motion(1, 1, 0);
  ASSERT_EQ(bus.irq_pending(), 5);
  bus.irq_begin(true);
  bus.irq_end();
  // ...motion while disabled does not.
  bus.io_out(0x23e, 0x10, 8);
  mouse->set_motion(2, 2, 0);
  EXPECT_EQ(bus.irq_pending(), -1);
}

TEST(IoBusIrq, IdeDiskAssertsIntrqOnCommandCompletion) {
  auto disk = std::make_shared<hw::IdeDisk>();
  hw::IoBus bus;
  bus.map(0x1f0, 8, disk, 6);
  EXPECT_EQ(bus.irq_pending(), -1);
  bus.io_out(0x1f6, 0xe0, 8);  // select master, LBA mode
  bus.io_out(0x1f7, 0xec, 8);  // IDENTIFY — completion asserts INTRQ
  EXPECT_EQ(bus.irq_pending(), 6);
}

// ---------------------------------------------------------------------------
// FaultInjector event-fault kinds.
// ---------------------------------------------------------------------------

TEST(FaultInjectorEvents, LostSwallowsExactlyTheTriggeredRaise) {
  auto dev = std::make_shared<PulseDevice>();
  FaultInjector shim(dev, 0x100, event_plan(5, FaultKind::kLostIrq, 1));
  RecordingSink sink;
  shim.attach_irq(&sink, 5);
  dev->pulse();  // raise 0 forwards
  dev->pulse();  // raise 1 is lost on the wire
  dev->pulse();  // raise 2 forwards
  ASSERT_EQ(sink.raises.size(), 2u);
  EXPECT_TRUE(sink.raises[0].genuine);
  EXPECT_TRUE(sink.raises[1].genuine);
  EXPECT_EQ(shim.fired(), 1u);
}

TEST(FaultInjectorEvents, StormRepeatsAndDelayPostpones) {
  auto dev = std::make_shared<PulseDevice>();
  FaultInjector storm(dev, 0x100, event_plan(5, FaultKind::kIrqStorm, 0, 3));
  RecordingSink sink;
  storm.attach_irq(&sink, 5);
  dev->pulse();  // the trigger-th raise repeats 3 times
  dev->pulse();  // later raises are healthy
  ASSERT_EQ(sink.raises.size(), 4u);
  for (const auto& r : sink.raises) {
    EXPECT_EQ(r.line, 5);
    EXPECT_TRUE(r.genuine);
  }
  EXPECT_EQ(storm.fired(), 1u);

  FaultInjector delay(dev, 0x100,
                      event_plan(5, FaultKind::kDelayIrq, 0, 1000));
  RecordingSink dsink;
  delay.attach_irq(&dsink, 5);
  dev->pulse();
  dev->pulse();
  ASSERT_EQ(dsink.raises.size(), 2u);
  EXPECT_EQ(dsink.raises[0].delay, 1000u);
  EXPECT_EQ(dsink.raises[1].delay, 0u);
  EXPECT_EQ(delay.fired(), 1u);
}

TEST(FaultInjectorEvents, SpuriousInjectsOnTheTriggeredDeviceAccess) {
  auto dev = std::make_shared<PulseDevice>();
  FaultInjector shim(dev, 0x100, event_plan(5, FaultKind::kSpuriousIrq, 2));
  RecordingSink sink;
  shim.attach_irq(&sink, 5);
  // The spurious counter covers device accesses of either direction.
  (void)shim.read(0, 8);    // access 0
  shim.write(1, 0xaa, 8);   // access 1
  EXPECT_TRUE(sink.raises.empty());
  (void)shim.read(3, 8);    // access 2 — the spurious edge
  ASSERT_EQ(sink.raises.size(), 1u);
  EXPECT_EQ(sink.raises[0].line, 5);
  EXPECT_FALSE(sink.raises[0].genuine) << "spurious raises are non-genuine";
  EXPECT_EQ(shim.fired(), 1u);
  (void)shim.read(0, 8);    // later accesses are quiet
  EXPECT_EQ(sink.raises.size(), 1u);
  // reset() re-arms the event counters exactly like the port counters.
  shim.reset();
  (void)shim.read(0, 8);
  shim.write(0, 0, 8);
  (void)shim.read(0, 8);
  EXPECT_EQ(sink.raises.size(), 2u);
}

TEST(FaultInjectorEvents, OtherLinesAndNonGenuineRaisesPassThrough) {
  auto dev = std::make_shared<PulseDevice>();
  FaultInjector shim(dev, 0x100, event_plan(5, FaultKind::kLostIrq, 0));
  RecordingSink sink;
  shim.attach_irq(&sink, 5);
  // A raise on a different line is not this plan's business.
  static_cast<hw::IrqSink&>(shim).raise_irq(3, 0, true);
  // A non-genuine raise (an upstream shim's spurious injection) must never
  // be eaten by a lost-IRQ plan — only genuine edges count.
  static_cast<hw::IrqSink&>(shim).raise_irq(5, 0, false);
  ASSERT_EQ(sink.raises.size(), 2u);
  EXPECT_EQ(sink.raises[0].line, 3);
  EXPECT_FALSE(sink.raises[1].genuine);
  EXPECT_EQ(shim.fired(), 0u);
}

TEST(FaultInjectorEvents, CompositionOrderWithPortShimsIsImmaterial) {
  // An event-fault shim and a port-fault shim chained in either order must
  // present identical driver-visible behaviour: same faulted reads, same
  // post-fault raise stream.
  auto run_chain = [](bool event_outer) {
    auto dev = std::make_shared<PulseDevice>();
    FaultPlan port_plan;
    port_plan.port = 0x100;
    port_plan.kind = FaultKind::kStuckOne;
    port_plan.after = 0;
    port_plan.mask = 0x80;
    FaultPlan spurious = event_plan(5, FaultKind::kSpuriousIrq, 1);
    auto inner = std::make_shared<FaultInjector>(
        dev, 0x100, event_outer ? port_plan : spurious);
    auto outer = std::make_shared<FaultInjector>(
        inner, 0x100, event_outer ? spurious : port_plan);
    auto sink = std::make_shared<RecordingSink>();
    outer->attach_irq(sink.get(), 5);
    std::vector<uint32_t> values;
    values.push_back(outer->read(0, 8));   // access 0: stuck bit
    outer->write(1, 0x11, 8);              // access 1: spurious edge
    values.push_back(outer->read(0, 8));
    dev->pulse();                          // genuine raise passes both shims
    return std::make_pair(values, sink->raises.size());
  };
  auto [values_a, raises_a] = run_chain(/*event_outer=*/true);
  auto [values_b, raises_b] = run_chain(/*event_outer=*/false);
  EXPECT_EQ(values_a, values_b);
  EXPECT_EQ(values_a, (std::vector<uint32_t>{0xda, 0xda}));
  EXPECT_EQ(raises_a, raises_b);
  EXPECT_EQ(raises_a, 2u);  // one spurious injection + one genuine raise
}

// ---------------------------------------------------------------------------
// Flight recorder: IRQ events interleaved with port accesses.
// ---------------------------------------------------------------------------

TEST(FlightRecorderIrq, RenderInterleavesIrqEventsWithPortAccesses) {
  hw::FlightRecorder rec(std::make_shared<PulseDevice>(), 0x1f0, nullptr, 4);
  (void)rec.read(0, 8);
  rec.irq_event(IrqEventKind::kRaised, 6);
  rec.irq_event(IrqEventKind::kDelivered, 6);
  rec.irq_event(IrqEventKind::kDropped, 3);
  EXPECT_EQ(rec.render_tail(),
            "last 4 of 4 bus events:\n"
            "  [event 0, step 0] in  0x1f0 -> 0x5a (8-bit)\n"
            "  [event 1, step 0] irq 6 raised\n"
            "  [event 2, step 0] irq 6 delivered\n"
            "  [event 3, step 0] irq 3 dropped");
}

TEST(FlightRecorderIrq, ObserverTapSeesPostFaultReality) {
  // Recorder outside a lost-IRQ injector: the swallowed raise must be
  // invisible (it never reached the bus), the surviving one recorded.
  hw::IoBus bus;
  auto dev = std::make_shared<PulseDevice>();
  auto shim = std::make_shared<FaultInjector>(
      dev, 0x100, event_plan(5, FaultKind::kLostIrq, 0));
  auto rec = std::make_shared<hw::FlightRecorder>(shim, 0x100, &bus);
  bus.set_irq_observer(rec.get());
  bus.map(0x100, 4, rec, 5);
  dev->pulse();  // swallowed on the wire
  EXPECT_EQ(rec->total_accesses(), 0u);
  EXPECT_EQ(bus.irq_pending(), -1);
  dev->pulse();  // survives
  ASSERT_EQ(bus.irq_pending(), 5);
  bus.irq_begin(true);
  bus.irq_end();
  auto tail = rec->tail();
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0].kind, hw::RecordKind::kIrqRaised);
  EXPECT_EQ(tail[0].line, 5);
  EXPECT_EQ(tail[1].kind, hw::RecordKind::kIrqDelivered);
  EXPECT_EQ(tail[1].line, 5);
}

TEST(FlightRecorderIrq, InterruptBootTraceIsByteIdenticalAcrossEngines) {
  minic::Program prog =
      minic::compile("driver.c", corpus::c_busmouse_irq_driver());
  ASSERT_TRUE(prog.ok()) << prog.diags.render();
  eval::DeviceBinding binding = eval::busmouse_irq_binding();
  auto boot_trace = [&](minic::ExecEngine engine) {
    hw::IoBus bus;
    auto rec = std::make_shared<hw::FlightRecorder>(
        binding.make_device(), binding.port_base, &bus, /*capacity=*/64);
    bus.set_irq_observer(rec.get());
    bus.map(binding.port_base, binding.port_span, rec, binding.irq_line);
    auto run = minic::run_unit(*prog.unit, bus, binding.entry, 3'000'000,
                               engine);
    EXPECT_EQ(run.fault, minic::FaultKind::kNone) << run.fault_message;
    EXPECT_GT(run.return_value, 1'000'000);
    return std::make_pair(rec->render_tail(), run.steps_used);
  };
  auto [vm_trace, vm_steps] = boot_trace(minic::ExecEngine::kBytecodeVm);
  auto [walker_trace, walker_steps] =
      boot_trace(minic::ExecEngine::kTreeWalker);
  EXPECT_EQ(vm_trace, walker_trace)
      << "step-stamped IRQ interleaving must be engine-invariant";
  EXPECT_EQ(vm_steps, walker_steps);
  // The interrupt actually showed up in the trace.
  EXPECT_NE(vm_trace.find("irq 5 raised"), std::string::npos) << vm_trace;
  EXPECT_NE(vm_trace.find("irq 5 delivered"), std::string::npos) << vm_trace;
}

// ---------------------------------------------------------------------------
// MiniC: request_irq binding and the wall-clock watchdog.
// ---------------------------------------------------------------------------

TEST(MinicIrq, RequestIrqValidatesLineAndHandlerAtRuntime) {
  struct Case {
    const char* src;
    const char* needle;
  };
  const std::vector<Case> cases = {
      {"void h() {}\nint boot() { request_irq(99, \"h\"); return 1; }",
       "invalid irq line"},
      {"void h() {}\nint boot() { request_irq(3, \"nope\"); return 1; }",
       "unknown handler"},
      {"void h(int x) { x = x; }\n"
       "int boot() { request_irq(3, \"h\"); return 1; }",
       "takes arguments"},
  };
  for (const Case& c : cases) {
    minic::Program prog = minic::compile("t.c", c.src);
    ASSERT_TRUE(prog.ok()) << prog.diags.render();
    for (auto engine :
         {minic::ExecEngine::kBytecodeVm, minic::ExecEngine::kTreeWalker}) {
      hw::IoBus bus;
      auto run = minic::run_unit(*prog.unit, bus, "boot", 100'000, engine);
      EXPECT_EQ(run.fault, minic::FaultKind::kPanic)
          << minic::exec_engine_name(engine) << ": " << c.src;
      EXPECT_NE(run.fault_message.find(c.needle), std::string::npos)
          << run.fault_message;
    }
  }
}

TEST(MinicWatchdog, ContainsWallClockHangsOnBothEngines) {
  minic::Program prog = minic::compile(
      "t.c", "int spin() { while (1) { } return 0; }");
  ASSERT_TRUE(prog.ok()) << prog.diags.render();
  for (auto engine :
       {minic::ExecEngine::kBytecodeVm, minic::ExecEngine::kTreeWalker}) {
    hw::IoBus bus;
    // Step budget effectively unbounded: only the watchdog can end this.
    auto run = minic::run_unit(*prog.unit, bus, "spin",
                               /*step_budget=*/~0ull, engine,
                               /*profile=*/nullptr, /*watchdog_ms=*/5);
    EXPECT_EQ(run.fault, minic::FaultKind::kWatchdog)
        << minic::exec_engine_name(engine) << ": " << run.fault_message;
  }
}

TEST(MinicWatchdog, TripCounterIsCollectedAsTimingTelemetry) {
  support::Metrics::set_enabled(true);
  const uint64_t before = support::Metrics::snapshot().watchdog_trips;
  support::Metrics::add_watchdog_trip();
  EXPECT_EQ(support::Metrics::snapshot().watchdog_trips, before + 1);
  support::Metrics::set_enabled(false);
  support::Metrics::add_watchdog_trip();  // disabled collector: not counted
  EXPECT_EQ(support::Metrics::snapshot().watchdog_trips, before + 1);

  // The counter rides the timings section: JSON round trip and merge.
  eval::ProcessMetrics pm;
  pm.watchdog_trips = 7;
  auto round =
      eval::process_metrics_from_json(eval::process_metrics_to_json(pm), "t");
  EXPECT_EQ(round, pm);
  eval::ProcessMetrics other;
  other.watchdog_trips = 5;
  eval::merge_process_metrics(pm, other);
  EXPECT_EQ(pm.watchdog_trips, 12u);
}

// ---------------------------------------------------------------------------
// Pool-recycle bit-identity after event-faulted boots.
// ---------------------------------------------------------------------------

TEST(EventFaults, PooledDeviceRecyclesCleanlyAfterEventFaultedBoots) {
  minic::Program prog =
      minic::compile("driver.c", corpus::c_busmouse_irq_driver());
  ASSERT_TRUE(prog.ok()) << prog.diags.render();
  eval::DeviceBinding binding = eval::busmouse_irq_binding();
  auto clean_boot_trace = [&](const std::shared_ptr<hw::Device>& dev) {
    hw::IoBus bus;
    bus.enable_trace();
    bus.map(binding.port_base, binding.port_span, dev, binding.irq_line);
    auto run = minic::run_unit(*prog.unit, bus, binding.entry, 3'000'000,
                               minic::ExecEngine::kBytecodeVm);
    EXPECT_EQ(run.fault, minic::FaultKind::kNone) << run.fault_message;
    return bus.trace();
  };
  const std::vector<FaultPlan> plans = {
      event_plan(binding.irq_line, FaultKind::kIrqStorm, 0, 8),
      event_plan(binding.irq_line, FaultKind::kLostIrq, 0),
      event_plan(binding.irq_line, FaultKind::kSpuriousIrq, 0),
      event_plan(binding.irq_line, FaultKind::kDelayIrq, 0, 1000),
  };
  for (const FaultPlan& plan : plans) {
    SCOPED_TRACE(plan.describe());
    hw::DevicePool pool(binding.make_device);
    auto dev = pool.acquire();
    {
      // Event-faulted boot: outcome irrelevant, device state is the point.
      hw::IoBus bus;
      auto shim =
          std::make_shared<FaultInjector>(dev, binding.port_base, plan);
      bus.map(binding.port_base, binding.port_span, shim, binding.irq_line);
      auto run = minic::run_unit(*prog.unit, bus, binding.entry, 3'000'000,
                                 minic::ExecEngine::kBytecodeVm);
      ASSERT_NE(run.fault, minic::FaultKind::kInternal) << run.fault_message;
      bus = hw::IoBus();
      shim.reset();
      pool.release(std::move(dev));
    }
    auto recycled = pool.acquire();
    auto fresh = binding.make_device();
    auto recycled_trace = clean_boot_trace(recycled);
    auto fresh_trace = clean_boot_trace(fresh);
    ASSERT_EQ(recycled_trace.size(), fresh_trace.size());
    for (size_t i = 0; i < fresh_trace.size(); ++i) {
      EXPECT_EQ(recycled_trace[i].is_write, fresh_trace[i].is_write) << i;
      EXPECT_EQ(recycled_trace[i].port, fresh_trace[i].port) << i;
      EXPECT_EQ(recycled_trace[i].value, fresh_trace[i].value) << i;
      EXPECT_EQ(recycled_trace[i].width, fresh_trace[i].width) << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Event-scenario campaigns: matrix, determinism, outcomes, paper shape.
// ---------------------------------------------------------------------------

eval::FaultCampaignConfig busmouse_irq_c_config(unsigned threads = 1) {
  eval::FaultCampaignConfig cfg;
  cfg.base.driver = corpus::c_busmouse_irq_driver();
  cfg.base.device = eval::busmouse_irq_binding();
  cfg.base.threads = threads;
  return cfg;
}

void expect_same_result(const eval::FaultCampaignResult& a,
                        const eval::FaultCampaignResult& b,
                        const std::string& label) {
  EXPECT_EQ(a.total_scenarios, b.total_scenarios) << label;
  EXPECT_EQ(a.sampled_scenarios, b.sampled_scenarios) << label;
  EXPECT_EQ(a.triggered_scenarios, b.triggered_scenarios) << label;
  EXPECT_EQ(a.clean_fingerprint, b.clean_fingerprint) << label;
  EXPECT_EQ(a.tally.scenarios, b.tally.scenarios) << label;
  EXPECT_EQ(a.tally.ports, b.tally.ports) << label;
  ASSERT_EQ(a.records.size(), b.records.size()) << label;
  for (size_t i = 0; i < a.records.size(); ++i) {
    const std::string at = label + " record #" + std::to_string(i);
    EXPECT_EQ(a.records[i].scenario_index, b.records[i].scenario_index) << at;
    EXPECT_EQ(a.records[i].plan.kind, b.records[i].plan.kind) << at;
    EXPECT_EQ(a.records[i].outcome, b.records[i].outcome) << at;
    EXPECT_EQ(a.records[i].detail, b.records[i].detail) << at;
    EXPECT_EQ(a.records[i].triggered, b.records[i].triggered) << at;
    EXPECT_EQ(a.records[i].steps, b.records[i].steps) << at;
  }
}

TEST(EventMatrix, AppendsEventRowsAfterPortRowsForIrqBindingsOnly) {
  const std::vector<uint32_t> triggers = {0, 1, 2, 7};
  auto polled = eval::fault_scenario_matrix(eval::busmouse_binding(), triggers);
  auto irq =
      eval::fault_scenario_matrix(eval::busmouse_irq_binding(), triggers);
  for (const auto& p : polled) EXPECT_FALSE(p.is_event_fault());
  // Event rows append after the port rows, so scenario_index keeps meaning
  // the same port scenario it always did.
  ASSERT_EQ(irq.size(), polled.size() + 4 * triggers.size());
  for (size_t i = 0; i < polled.size(); ++i) {
    EXPECT_EQ(irq[i].port, polled[i].port) << i;
    EXPECT_EQ(irq[i].kind, polled[i].kind) << i;
    EXPECT_EQ(irq[i].after, polled[i].after) << i;
    EXPECT_EQ(irq[i].mask, polled[i].mask) << i;
  }
  for (size_t i = polled.size(); i < irq.size(); ++i) {
    EXPECT_TRUE(irq[i].is_event_fault()) << i;
    EXPECT_EQ(irq[i].port, 5u) << "event rows name the IRQ line";
    if (irq[i].kind == FaultKind::kIrqStorm) {
      EXPECT_EQ(irq[i].value, 8u);
    }
    if (irq[i].kind == FaultKind::kDelayIrq) {
      EXPECT_EQ(irq[i].value, 1000u);
    }
  }
}

TEST(EventCampaign, SeedAndFingerprintFoldTheIrqLine) {
  auto cfg = busmouse_irq_c_config();
  auto other = cfg;
  other.base.device.irq_line = 4;
  EXPECT_NE(eval::fault_scenario_seed(cfg), eval::fault_scenario_seed(other));
  EXPECT_NE(eval::fault_campaign_fingerprint(cfg),
            eval::fault_campaign_fingerprint(other));
}

TEST(EventCampaign, ThreadsEnginesAndShardMergeAgreeByteForByte) {
  auto single = eval::run_fault_campaign(busmouse_irq_c_config(1));
  // The matrix really contains event scenarios and some fired.
  size_t event_rows = 0, event_triggered = 0;
  for (const auto& rec : single.records) {
    if (!rec.plan.is_event_fault()) continue;
    ++event_rows;
    if (rec.triggered) ++event_triggered;
  }
  EXPECT_GT(event_rows, 0u);
  EXPECT_GT(event_triggered, 0u);

  auto threaded = eval::run_fault_campaign(busmouse_irq_c_config(4));
  expect_same_result(single, threaded, "threads 1 vs 4");

  auto walker_cfg = busmouse_irq_c_config(1);
  walker_cfg.base.engine = minic::ExecEngine::kTreeWalker;
  auto walker = eval::run_fault_campaign(walker_cfg);
  expect_same_result(single, walker, "vm vs walker");

  std::vector<eval::ShardBundle> bundles;
  for (unsigned i = 1; i <= 3; ++i) {
    auto shard_cfg = busmouse_irq_c_config(i);
    eval::ShardBundle bundle;
    bundle.shard = eval::ShardSpec{i, 3};
    bundle.fault_campaigns.push_back(
        eval::run_fault_campaign_shard(shard_cfg, "C", bundle.shard));
    bundles.push_back(
        eval::parse_shard_bundle(eval::serialize_shard_bundle(bundle)));
  }
  auto merged = eval::merge_fault_bundles(bundles);
  ASSERT_EQ(merged.size(), 1u);
  expect_same_result(merged.front().result, single, "3-shard merge");
}

TEST(EventCampaign, ShardArtifactsRoundTripEventKinds) {
  eval::ShardBundle bundle;
  bundle.shard = eval::ShardSpec{1, 1};
  bundle.fault_campaigns.push_back(eval::run_fault_campaign_shard(
      busmouse_irq_c_config(), "C", bundle.shard));
  std::string text = eval::serialize_shard_bundle(bundle);
  eval::ShardBundle parsed = eval::parse_shard_bundle(text);
  EXPECT_EQ(eval::serialize_shard_bundle(parsed), text);
  // The parsed records preserve the event plans field-for-field.
  ASSERT_EQ(parsed.fault_campaigns.size(), 1u);
  size_t storms = 0;
  for (const auto& rec : parsed.fault_campaigns[0].records) {
    if (rec.plan.kind != FaultKind::kIrqStorm) continue;
    ++storms;
    EXPECT_TRUE(rec.plan.is_event_fault());
    EXPECT_EQ(rec.plan.port, 5u);
    EXPECT_EQ(rec.plan.value, 8u);
  }
  EXPECT_GT(storms, 0u);
}

TEST(EventCampaign, UntriggeredEventScenariosBootClean) {
  auto res = eval::run_fault_campaign(busmouse_irq_c_config());
  size_t untriggered_events = 0;
  for (const auto& rec : res.records) {
    if (!rec.plan.is_event_fault() || rec.triggered) continue;
    ++untriggered_events;
    EXPECT_EQ(rec.outcome, eval::FaultOutcome::kCleanBoot)
        << rec.plan.describe();
  }
  // The busmouse boot delivers exactly one genuine raise, so the late
  // trigger offsets must leave genuinely untriggered event scenarios.
  EXPECT_GT(untriggered_events, 0u);
}

TEST(EventCampaign, CDevilDetectsStrictlyMoreEventFaultsThanC) {
  // The paper-shape acceptance check on the event rows alone: the CDevil
  // handler's in-service guard turns spurious interrupts into named Devil
  // assertions the classic C handler silently absorbs.
  auto event_detected = [](const eval::FaultCampaignResult& res) {
    size_t n = 0;
    for (const auto& rec : res.records) {
      if (!rec.plan.is_event_fault()) continue;
      if (rec.outcome == eval::FaultOutcome::kDevilCheck ||
          rec.outcome == eval::FaultOutcome::kDriverPanic) {
        ++n;
      }
    }
    return n;
  };
  for (const auto& drivers : corpus::irq_campaign_drivers()) {
    SCOPED_TRACE(drivers.device);
    eval::DeviceBinding binding = eval::binding_for(drivers.device);

    eval::FaultCampaignConfig c;
    c.base.driver = drivers.c_driver();
    c.base.device = binding;
    c.base.threads = 4;

    auto spec = devil::compile_spec(drivers.spec_file, drivers.spec(),
                                    devil::CodegenMode::kDebug);
    ASSERT_TRUE(spec.ok()) << spec.diags.render();
    eval::FaultCampaignConfig d;
    d.base.stubs = spec.stubs;
    d.base.driver = drivers.cdevil_driver();
    d.base.device = binding;
    d.base.is_cdevil = true;
    d.base.threads = 4;

    auto c_res = eval::run_fault_campaign(c);
    auto d_res = eval::run_fault_campaign(d);
    EXPECT_GT(event_detected(d_res), event_detected(c_res))
        << "CDevil event-detected " << event_detected(d_res) << " vs C "
        << event_detected(c_res);
    EXPECT_GT(d_res.tally.detected(), c_res.tally.detected())
        << "CDevil detected " << d_res.tally.detected() << " vs C "
        << c_res.tally.detected();
    // A Devil assertion really is what separates the two on event rows.
    bool saw_spurious_assert = false;
    for (const auto& rec : d_res.records) {
      if (rec.plan.kind == FaultKind::kSpuriousIrq &&
          rec.outcome == eval::FaultOutcome::kDevilCheck) {
        saw_spurious_assert = true;
      }
    }
    EXPECT_TRUE(saw_spurious_assert)
        << "expected at least one spurious-interrupt Devil assertion";
  }
}

}  // namespace
