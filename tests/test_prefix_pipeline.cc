// Differential suite for the compiled-prefix mutant pipeline (prepare ->
// tail-compile -> splice) and the widened superinstruction set.
//
// The cached path must be indistinguishable from whole-unit compilation:
// same acceptance and first diagnostic, and byte-identical RunOutcome
// (fault kind and message, return value, step count, coverage bitmap,
// printk log) — across every corpus driver, sampled mutants of both
// campaigns, and any thread count. Campaign records with the cache on and
// off must match exactly; `prefix_cache_hits` proves the fast path ran.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "corpus/drivers.h"
#include "corpus/smoke_drivers.h"
#include "corpus/specs.h"
#include "devil/compiler.h"
#include "eval/device_bindings.h"
#include "eval/driver_campaign.h"
#include "eval/spec_campaign.h"
#include "hw/ide_disk.h"
#include "hw/io_bus.h"
#include "hw/misc_devices.h"
#include "minic/program.h"
#include "mutation/c_mutator.h"

namespace {

void expect_same_outcome(const minic::RunOutcome& whole,
                         const minic::RunOutcome& spliced,
                         const std::string& label) {
  EXPECT_EQ(whole.fault, spliced.fault) << label;
  EXPECT_EQ(whole.fault_message, spliced.fault_message) << label;
  EXPECT_EQ(whole.return_value, spliced.return_value) << label;
  EXPECT_EQ(whole.steps_used, spliced.steps_used) << label;
  EXPECT_EQ(whole.executed_lines, spliced.executed_lines) << label;
  EXPECT_EQ(whole.log, spliced.log) << label;
}

/// Compiles `prefix_text + tail` both ways and runs both on fresh devices
/// of the given factory; everything observable must match, including the
/// walker oracle (three-way: walker, whole-unit VM, spliced VM).
template <typename MakeBus>
void diff_three_ways(const std::string& name, const std::string& prefix_text,
                     const std::string& tail, const std::string& entry,
                     uint64_t budget, MakeBus make_bus,
                     const std::string& label) {
  auto whole = minic::compile(name, prefix_text + tail);
  ASSERT_TRUE(whole.ok()) << label << "\n" << whole.diags.render();

  auto prefix = minic::prepare_prefix(name, prefix_text);
  ASSERT_TRUE(prefix.ok()) << label;
  ASSERT_TRUE(prefix.compiled != nullptr) << label;
  auto spliced = minic::compile_tail(prefix, tail);
  ASSERT_TRUE(spliced.ok()) << label << "\n" << spliced.diags.render();
  EXPECT_EQ(whole.unit->macro_use_lines, spliced.macro_use_lines) << label;

  auto bus_w = make_bus();
  auto walker = minic::run_unit(*whole.unit, *bus_w, entry, budget,
                                minic::ExecEngine::kTreeWalker);
  auto bus_v = make_bus();
  auto vm = minic::run_unit(*whole.unit, *bus_v, entry, budget,
                            minic::ExecEngine::kBytecodeVm);
  auto bus_s = make_bus();
  auto fast = minic::run_module(*spliced.module, *bus_s, entry, budget);

  expect_same_outcome(walker, vm, label + " [walker vs whole-unit vm]");
  expect_same_outcome(vm, fast, label + " [whole-unit vm vs spliced]");
}

std::shared_ptr<hw::IoBus> ide_bus() {
  auto bus = std::make_shared<hw::IoBus>();
  bus->map(0x1f0, 8, std::make_shared<hw::IdeDisk>());
  return bus;
}

// ---------------------------------------------------------------------------
// Corpus drivers: every stub set, both codegen modes.
// ---------------------------------------------------------------------------

TEST(PrefixPipeline, CIdeDriverEmptyPrefix) {
  diff_three_ways("ide_c.c", "", corpus::c_ide_driver(), "ide_boot",
                  3'000'000, ide_bus, "c ide");
}

TEST(PrefixPipeline, CDevilIdeDriverBothModes) {
  for (auto mode :
       {devil::CodegenMode::kDebug, devil::CodegenMode::kProduction}) {
    auto spec = devil::compile_spec("ide.dil", corpus::ide_spec(), mode);
    ASSERT_TRUE(spec.ok()) << spec.diags.render();
    diff_three_ways("ide.dil", spec.stubs + "\n", corpus::cdevil_ide_driver(),
                    "ide_boot", 3'000'000, ide_bus,
                    mode == devil::CodegenMode::kDebug ? "cdevil debug"
                                                       : "cdevil production");
  }
}

TEST(PrefixPipeline, SmokeDriversAllSpecsBothModes) {
  struct Case {
    const char* file;
    const std::string* spec;
    const std::string* driver;
    const char* entry;
    uint32_t base;
    uint32_t len;
    int device;  // 0 = ne2000, 1 = pci, 2 = permedia2
  };
  const Case cases[] = {
      {"ne2000.dil", &corpus::ne2000_spec(), &corpus::cdevil_ne2000_driver(),
       "nic_boot", 0x300, 32, 0},
      {"piix_bm.dil", &corpus::pci_busmaster_spec(),
       &corpus::cdevil_pci_driver(), "bm_boot", 0xc000, 16, 1},
      {"permedia2.dil", &corpus::permedia2_spec(),
       &corpus::cdevil_permedia_driver(), "gfx_boot", 0xd000, 16, 2},
  };
  for (const Case& c : cases) {
    for (auto mode :
         {devil::CodegenMode::kDebug, devil::CodegenMode::kProduction}) {
      auto spec = devil::compile_spec(c.file, *c.spec, mode);
      ASSERT_TRUE(spec.ok()) << c.file;
      auto make_bus = [&c]() {
        auto bus = std::make_shared<hw::IoBus>();
        switch (c.device) {
          case 0: bus->map(c.base, c.len, std::make_shared<hw::Ne2000>()); break;
          case 1:
            bus->map(c.base, c.len, std::make_shared<hw::PciBusMaster>());
            break;
          default:
            bus->map(c.base, c.len, std::make_shared<hw::Permedia2>());
            break;
        }
        return bus;
      };
      diff_three_ways(c.file, spec.stubs + "\n", *c.driver, c.entry, 500'000,
                      make_bus, std::string(c.file) + " mode " +
                                    std::to_string(static_cast<int>(mode)));
    }
  }
}

// ---------------------------------------------------------------------------
// Sampled mutants of both campaigns: acceptance, first diagnostic and boot
// outcome must match whole-unit compilation mutant by mutant.
// ---------------------------------------------------------------------------

void diff_mutants_cached(const std::string& stubs, const std::string& driver,
                         bool is_cdevil, size_t stride,
                         const std::string& label) {
  const std::string prefix_text = stubs.empty() ? std::string() : stubs + "\n";
  auto prefix = minic::prepare_prefix("unit.c", prefix_text);
  ASSERT_TRUE(prefix.ok());
  ASSERT_TRUE(prefix.compiled != nullptr);

  mutation::CScanOptions scan;
  scan.classes = is_cdevil
                     ? mutation::classes_for_cdevil_driver(stubs, driver)
                     : mutation::classes_for_c_driver(driver);
  auto sites = mutation::scan_c_sites(driver, scan);
  auto mutants = mutation::generate_c_mutants(sites, scan.classes);
  ASSERT_GT(mutants.size(), 0u);

  size_t booted = 0, rejected = 0;
  for (size_t m = 0; m < mutants.size(); m += stride) {
    std::string mutated = mutation::apply_mutant(driver, sites, mutants[m]);
    std::string label_m = label + " mutant #" + std::to_string(m);
    auto whole = minic::compile("unit.c", prefix_text + mutated);
    auto fast = minic::compile_tail(prefix, mutated);
    ASSERT_EQ(whole.ok(), fast.ok()) << label_m;
    if (!whole.ok()) {
      // Identical rejection: the campaign records carry the first line.
      ASSERT_FALSE(whole.diags.all().empty()) << label_m;
      ASSERT_FALSE(fast.diags.all().empty()) << label_m;
      EXPECT_EQ(whole.diags.all().front().to_string(),
                fast.diags.all().front().to_string())
          << label_m;
      ++rejected;
      continue;
    }
    auto bus_w = ide_bus();
    auto vm = minic::run_unit(*whole.unit, *bus_w, "ide_boot", 3'000'000,
                              minic::ExecEngine::kBytecodeVm);
    auto bus_f = ide_bus();
    auto fast_run =
        minic::run_module(*fast.module, *bus_f, "ide_boot", 3'000'000);
    expect_same_outcome(vm, fast_run, label_m);
    ++booted;
  }
  EXPECT_GT(booted, 15u) << label;
  EXPECT_GT(rejected, 5u) << label;
}

TEST(PrefixPipeline, SampledCDriverMutants) {
  diff_mutants_cached("", corpus::c_ide_driver(), false, 53, "c");
}

TEST(PrefixPipeline, SampledCDevilMutants) {
  auto spec = devil::compile_spec("ide.dil", corpus::ide_spec(),
                                  devil::CodegenMode::kDebug);
  ASSERT_TRUE(spec.ok());
  diff_mutants_cached(spec.stubs, corpus::cdevil_ide_driver(), true, 37,
                      "cdevil");
}

// ---------------------------------------------------------------------------
// Campaign-level byte identity: prefix cache on vs off, threads 1 vs 4.
// ---------------------------------------------------------------------------

void expect_identical_records(const eval::DriverCampaignResult& a,
                              const eval::DriverCampaignResult& b,
                              const std::string& label) {
  EXPECT_EQ(a.clean_fingerprint, b.clean_fingerprint) << label;
  EXPECT_EQ(a.total_sites, b.total_sites) << label;
  EXPECT_EQ(a.total_mutants, b.total_mutants) << label;
  EXPECT_EQ(a.sampled_mutants, b.sampled_mutants) << label;
  EXPECT_EQ(a.deduped_mutants, b.deduped_mutants) << label;
  EXPECT_EQ(a.tally.mutants, b.tally.mutants) << label;
  EXPECT_EQ(a.tally.sites, b.tally.sites) << label;
  ASSERT_EQ(a.records.size(), b.records.size()) << label;
  for (size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].mutant_index, b.records[i].mutant_index)
        << label << " #" << i;
    EXPECT_EQ(a.records[i].site, b.records[i].site) << label << " #" << i;
    EXPECT_EQ(a.records[i].outcome, b.records[i].outcome)
        << label << " #" << i;
    EXPECT_EQ(a.records[i].detail, b.records[i].detail) << label << " #" << i;
    EXPECT_EQ(a.records[i].deduped, b.records[i].deduped)
        << label << " #" << i;
  }
}

void campaign_cache_on_off(eval::DriverCampaignConfig cfg,
                           const std::string& label) {
  for (unsigned threads : {1u, 4u}) {
    cfg.threads = threads;
    cfg.prefix_cache = true;
    auto cached = eval::run_driver_campaign(cfg);
    cfg.prefix_cache = false;
    auto plain = eval::run_driver_campaign(cfg);
    std::string l = label + " threads=" + std::to_string(threads);
    expect_identical_records(plain, cached, l);
    // The counters prove which pipeline ran.
    EXPECT_GT(cached.prefix_cache_hits, 0u) << l;
    EXPECT_EQ(cached.prefix_cache_hits,
              cached.sampled_mutants - cached.deduped_mutants)
        << l;
    EXPECT_EQ(plain.prefix_cache_hits, 0u) << l;
  }
}

TEST(PrefixPipeline, CCampaignByteIdenticalCacheOnOff) {
  eval::DriverCampaignConfig cfg;
  cfg.driver = corpus::c_ide_driver();
  cfg.device = eval::ide_binding();
  cfg.sample_percent = 10;
  campaign_cache_on_off(cfg, "c");
}

TEST(PrefixPipeline, CDevilCampaignByteIdenticalCacheOnOff) {
  auto spec = devil::compile_spec("ide.dil", corpus::ide_spec(),
                                  devil::CodegenMode::kDebug);
  ASSERT_TRUE(spec.ok());
  eval::DriverCampaignConfig cfg;
  cfg.stubs = spec.stubs;
  cfg.driver = corpus::cdevil_ide_driver();
  cfg.device = eval::ide_binding();
  cfg.is_cdevil = true;
  cfg.sample_percent = 10;
  campaign_cache_on_off(cfg, "cdevil");
}

// ---------------------------------------------------------------------------
// Tail/prefix symbol collisions: the cached path must reproduce whole-unit
// diagnostics (falling back to whole-unit compilation where needed).
// ---------------------------------------------------------------------------

void expect_same_rejection(const std::string& prefix_text,
                           const std::string& tail, const std::string& label) {
  auto whole = minic::compile("u.c", prefix_text + tail);
  auto prefix = minic::prepare_prefix("u.c", prefix_text);
  ASSERT_TRUE(prefix.ok()) << label;
  ASSERT_TRUE(prefix.compiled != nullptr) << label;
  auto fast = minic::compile_tail(prefix, tail);
  ASSERT_FALSE(whole.ok()) << label;
  ASSERT_FALSE(fast.ok()) << label;
  ASSERT_FALSE(whole.diags.all().empty()) << label;
  ASSERT_FALSE(fast.diags.all().empty()) << label;
  EXPECT_EQ(whole.diags.render(), fast.diags.render()) << label;
}

TEST(PrefixPipeline, TailCollisionsMatchWholeUnitDiagnostics) {
  const std::string prefix =
      "int counter;\n"
      "struct pair { int a; int b; };\n"
      "int bump() { counter = counter + 1; return counter; }\n";
  expect_same_rejection(prefix, "int bump() { return 1; }\n",
                        "function redefined");
  expect_same_rejection(prefix, "int counter;\n int f() { return 0; }\n",
                        "global redefined");
  expect_same_rejection(prefix, "struct pair { int x; };\n",
                        "struct redefined");
  // A tail *function* named like a prefix *global* is the fallback case:
  // whole-unit checking reports it at the prefix declaration and cascades
  // into the prefix body; the cached path must recompile the whole unit to
  // reproduce that.
  expect_same_rejection(prefix, "int counter() { return 1; }\n",
                        "function shadows prefix global");
}

TEST(PrefixPipeline, TailMayDefineFreshSymbols) {
  const std::string prefix = "int base() { return 40; }\n#define TWO 2\n";
  auto prefix_p = minic::prepare_prefix("u.c", prefix);
  ASSERT_TRUE(prefix_p.compiled != nullptr);
  auto fast = minic::compile_tail(
      prefix_p,
      "struct v { int x; };\nint g;\n"
      "int f() { struct v t; t.x = base() + TWO; g = t.x; return g; }\n");
  ASSERT_TRUE(fast.ok()) << fast.diags.render();
  hw::IoBus bus;
  auto out = minic::run_module(*fast.module, bus, "f", 1000);
  EXPECT_EQ(out.return_value, 42);
}

TEST(PrefixPipeline, NonSelfContainedPrefixHasNoCache) {
  // A prefix calling a function only the tail defines cannot be checked
  // standalone; the stage-1 cache stays empty and the token-splice path
  // still accepts the unit.
  auto prefix = minic::prepare_prefix("u.c", "int f() { return g(); }\n");
  ASSERT_TRUE(prefix.ok());
  EXPECT_EQ(prefix.compiled, nullptr);
  auto whole =
      minic::compile_with_prefix(prefix, "int g() { return 7; }\n");
  EXPECT_TRUE(whole.ok()) << whole.diags.render();
}

// ---------------------------------------------------------------------------
// Widened superinstructions: dense budget sweeps pin the charge model of
// the fused compare+branch and call+ret forms against the walker.
// ---------------------------------------------------------------------------

class FakeIo : public minic::IoEnvironment {
 public:
  uint32_t io_in(uint32_t port, int width) override {
    (void)width;
    auto it = values.find(port);
    return it == values.end() ? 0xffu : it->second;
  }
  void io_out(uint32_t port, uint32_t value, int width) override {
    writes.emplace_back(port, value, width);
  }
  std::map<uint32_t, uint32_t> values;
  std::vector<std::tuple<uint32_t, uint32_t, int>> writes;
};

void sweep_source(const std::string& src, const std::string& entry,
                  const std::string& label) {
  auto prog = minic::compile("t.c", src);
  ASSERT_TRUE(prog.ok()) << label << "\n" << prog.diags.render();
  FakeIo probe;
  probe.values[0x1f7] = 0x50;
  auto full = minic::run_unit(*prog.unit, probe, entry, 200'000,
                              minic::ExecEngine::kTreeWalker);
  ASSERT_LT(full.steps_used, 5000u) << label;
  for (uint64_t budget = 0; budget <= full.steps_used + 2; ++budget) {
    FakeIo io_w, io_v;
    io_w.values[0x1f7] = io_v.values[0x1f7] = 0x50;
    auto walker = minic::run_unit(*prog.unit, io_w, entry, budget,
                                  minic::ExecEngine::kTreeWalker);
    auto vm = minic::run_unit(*prog.unit, io_v, entry, budget,
                              minic::ExecEngine::kBytecodeVm);
    expect_same_outcome(walker, vm,
                        label + " budget=" + std::to_string(budget));
    EXPECT_EQ(io_w.writes, io_v.writes) << label << " budget=" << budget;
  }
}

TEST(Superinstructions, CompareBranchShapes) {
  sweep_source(R"(
int f() {
  int stat;
  int n;
  int big;
  n = 0;
  stat = 0;
  big = 100000;
  while ((stat & 0x08) == 0) {      /* kBinImmJump (== 0) */
    if (stat & 0x21) { n = n + 1; } /* kBinImmJump (& mask) */
    stat = stat + 3;
  }
  if (n == stat) { n = n + 7; }     /* kBinJump via kBinImm? reg==reg */
  if (n < stat) { n = n + 9; }      /* relational */
  if (n == big) { n = 0; }          /* literal too big? still kBinImm path */
  if (dil_eq(n, 3)) { n = n + 1; }  /* kDilEqIntJump */
  for (stat = 0; stat != 4; stat = stat + 1) { n = n + stat; }
  return n;
}
)",
               "f", "compare+branch");
}

TEST(Superinstructions, CompareBranchDivFault) {
  // The fused producer can fault (div by zero) — kind, message and step
  // count must match the walker at every budget.
  sweep_source(R"(
int f() {
  int z;
  int n;
  z = 0;
  n = 3;
  if (n / z) { n = 1; }
  return n;
}
)",
               "f", "fused div fault");
}

TEST(Superinstructions, DilEqStructBranch) {
  auto spec = devil::compile_spec("ide.dil", corpus::ide_spec(),
                                  devil::CodegenMode::kDebug);
  ASSERT_TRUE(spec.ok());
  // The CDevil poll loops (`while (dil_eq(get_X(), CONST))`) lower to the
  // fused struct compare+branch; run the whole driver on both engines.
  auto prog = minic::compile("ide.dil",
                             spec.stubs + "\n" + corpus::cdevil_ide_driver());
  ASSERT_TRUE(prog.ok()) << prog.diags.render();
  auto bus_w = ide_bus();
  auto walker = minic::run_unit(*prog.unit, *bus_w, "ide_boot", 3'000'000,
                                minic::ExecEngine::kTreeWalker);
  auto bus_v = ide_bus();
  auto vm = minic::run_unit(*prog.unit, *bus_v, "ide_boot", 3'000'000,
                            minic::ExecEngine::kBytecodeVm);
  expect_same_outcome(walker, vm, "cdevil dil_eq struct branch");
}

TEST(Superinstructions, LeafCallShapes) {
  sweep_source(R"(
int mk_ident(int v) { return v; }
u8 mk_narrow(u8 v) { return v; }
int magic() { return 1234; }
void poke() { outb(0xAB, 0x80); }
int f() {
  int acc;
  int i;
  acc = 0;
  for (i = 0; i < 5; i++) {
    acc = acc + mk_ident(i * 3);
    acc = acc + mk_narrow(acc);     /* coercion preserved through fusion */
  }
  acc = acc + magic();
  poke();
  return acc;
}
)",
               "f", "leaf calls");
}

TEST(Superinstructions, LeafCallDepthOverflow) {
  // The fused call skips the frame but must still report stack overflow
  // with the callee's name at exactly the walker's depth.
  for (int depth = 120; depth <= 135; ++depth) {
    std::string src = R"(
int leaf(int v) { return v; }
int f(int n) {
  if (n > 0) { return f(n - 1); }
  return leaf(5);
}
int main_entry() { return f()" +
                      std::to_string(depth) + R"(); }
)";
    auto prog = minic::compile("t.c", src);
    ASSERT_TRUE(prog.ok()) << prog.diags.render();
    FakeIo io_w, io_v;
    auto walker = minic::run_unit(*prog.unit, io_w, "main_entry", 100'000,
                                  minic::ExecEngine::kTreeWalker);
    auto vm = minic::run_unit(*prog.unit, io_v, "main_entry", 100'000,
                              minic::ExecEngine::kBytecodeVm);
    expect_same_outcome(walker, vm, "depth=" + std::to_string(depth));
  }
}

// ---------------------------------------------------------------------------
// Spec-campaign dedup: skipping canonical duplicates must not change any
// row, and duplicates must be counted.
// ---------------------------------------------------------------------------

TEST(SpecCampaignDedup, RowsUnchangedAndNonzero) {
  for (const auto& spec : corpus::all_specs()) {
    eval::SpecCampaignConfig cfg;
    cfg.threads = 2;
    cfg.dedup = true;
    auto on = eval::run_spec_campaign(spec, cfg);
    cfg.dedup = false;
    auto off = eval::run_spec_campaign(spec, cfg);
    EXPECT_EQ(off.deduped, 0u) << spec.name;
    EXPECT_GT(on.deduped, 0u) << spec.name;
    EXPECT_EQ(on.mutants, off.mutants) << spec.name;
    EXPECT_EQ(on.sites, off.sites) << spec.name;
    EXPECT_EQ(on.detected, off.detected) << spec.name;
    EXPECT_EQ(on.undetected_samples, off.undetected_samples) << spec.name;
  }
}

TEST(SpecCampaignDedup, ThreadCountInvariant) {
  const auto& spec = corpus::all_specs()[0];
  eval::SpecCampaignConfig cfg;
  cfg.threads = 1;
  auto serial = eval::run_spec_campaign(spec, cfg);
  cfg.threads = 4;
  auto parallel = eval::run_spec_campaign(spec, cfg);
  EXPECT_EQ(serial.detected, parallel.detected);
  EXPECT_EQ(serial.deduped, parallel.deduped);
  EXPECT_EQ(serial.undetected_samples, parallel.undetected_samples);
}

}  // namespace
