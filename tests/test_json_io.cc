// support/json_io: the writer must be byte-stable (shard artifacts are
// compared byte-for-byte across processes), the reader strict (truncated or
// corrupt artifacts must fail with a line/column diagnostic, never parse to
// garbage), and the two must round-trip every value shape the shard format
// uses.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>

#include "support/json_io.h"

namespace {

using support::JsonError;
using support::JsonValue;
using support::parse_json;
using support::to_json;

TEST(JsonIo, WriterIsByteStable) {
  JsonValue obj = JsonValue::object();
  obj.set("name", "shard");
  obj.set("index", 3);
  obj.set("ok", true);
  obj.set("nothing", JsonValue());
  JsonValue arr = JsonValue::array();
  arr.push_back(1);
  arr.push_back(-2);
  arr.push_back("x");
  obj.set("items", std::move(arr));
  EXPECT_EQ(to_json(obj),
            R"({"name":"shard","index":3,"ok":true,"nothing":null,)"
            R"("items":[1,-2,"x"]})");
  // Equal trees, built twice, serialize to equal bytes.
  JsonValue again = parse_json(to_json(obj));
  EXPECT_EQ(to_json(again), to_json(obj));
}

TEST(JsonIo, StringEscapesRoundTrip) {
  std::string nasty = "quote \" backslash \\ newline \n tab \t bell \x07";
  JsonValue v(nasty);
  std::string encoded = to_json(v);
  EXPECT_NE(encoded.find("\\u0007"), std::string::npos);
  EXPECT_EQ(parse_json(encoded).as_string(), nasty);
}

TEST(JsonIo, UnicodeEscapesDecodeToUtf8) {
  EXPECT_EQ(parse_json(R"("Aé€")").as_string(),
            "A\xc3\xa9\xe2\x82\xac");
  EXPECT_THROW((void)parse_json(R"("\ud800")"), JsonError);  // surrogate
}

TEST(JsonIo, IntegerLimitsRoundTrip) {
  int64_t big = std::numeric_limits<int64_t>::max();
  int64_t small = std::numeric_limits<int64_t>::min();
  EXPECT_EQ(parse_json(to_json(JsonValue(big))).as_int(), big);
  EXPECT_EQ(parse_json(to_json(JsonValue(small))).as_int(), small);
  // uint64 beyond int64 cannot be represented and must throw, not wrap.
  EXPECT_THROW(JsonValue(std::numeric_limits<uint64_t>::max()), JsonError);
  EXPECT_THROW((void)parse_json("99999999999999999999"), JsonError);
}

TEST(JsonIo, DoublesParse) {
  EXPECT_DOUBLE_EQ(parse_json("1.5").as_double(), 1.5);
  EXPECT_DOUBLE_EQ(parse_json("-2e3").as_double(), -2000.0);
  EXPECT_DOUBLE_EQ(parse_json("7").as_double(), 7.0);  // int promotes
}

TEST(JsonIo, KindMismatchesThrow) {
  JsonValue v = parse_json(R"({"a":1})");
  EXPECT_THROW((void)v.as_string(), JsonError);
  EXPECT_THROW((void)v.as_int(), JsonError);
  EXPECT_THROW((void)v.items(), JsonError);
  EXPECT_EQ(v.find("a")->as_int(), 1);
  EXPECT_EQ(v.find("b"), nullptr);
}

TEST(JsonIo, WhitespaceAndNestingParse) {
  JsonValue v = parse_json(" {\n \"a\" : [ 1 , { \"b\" : null } ] }\n");
  ASSERT_EQ(v.kind(), JsonValue::Kind::kObject);
  const JsonValue* a = v.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->items().size(), 2u);
  EXPECT_TRUE(a->items()[1].find("b")->is_null());
}

void expect_error_mentions(const std::string& text, const std::string& needle) {
  try {
    (void)parse_json(text);
    FAIL() << "expected JsonError for: " << text;
  } catch (const JsonError& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "error for '" << text << "' was: " << e.what();
  }
}

TEST(JsonIo, MalformedInputNamesLineAndColumn) {
  // Truncated document: the diagnostic points at the end of input.
  expect_error_mentions(R"({"a":1)", "line 1");
  expect_error_mentions("{\n\"a\": 1,\n", "line 3");
  expect_error_mentions("", "unexpected end of input");
  expect_error_mentions(R"({"a":1} trailing)", "trailing garbage");
  expect_error_mentions(R"({"a" 1})", "expected ':'");
  expect_error_mentions(R"([1,,2])", "unexpected character");
  expect_error_mentions(R"("unterminated)", "unterminated string");
  expect_error_mentions(R"("bad \q escape")", "invalid escape");
  expect_error_mentions("tru", "invalid literal");
  expect_error_mentions("[1 2]", "expected ',' or ']'");
  expect_error_mentions("\"raw\ncontrol\"", "control character");
  expect_error_mentions("01", "leading zero");
  expect_error_mentions("-012", "leading zero");
  expect_error_mentions("1.e3", "missing fraction digits");
}

TEST(JsonIo, DeepNestingFailsCleanlyInsteadOfOverflowing) {
  // A corrupt/hostile document of brackets must throw, not SIGSEGV.
  expect_error_mentions(std::string(100'000, '['), "nesting too deep");
  std::string object_bomb;
  for (int i = 0; i < 100'000; ++i) object_bomb += R"({"a":)";
  expect_error_mentions(object_bomb, "nesting too deep");
  // Sane nesting well under the cap still parses.
  std::string ok = std::string(50, '[') + "1" + std::string(50, ']');
  EXPECT_EQ(parse_json(ok).items().size(), 1u);
}

TEST(JsonIo, DeepNestingDiagnosticNamesLineAndColumn) {
  // The depth diagnostic goes through the same line/column machinery as
  // every other parse error: brackets on separate lines point past the
  // last one the parser descended into.
  std::string bomb;
  for (int i = 0; i < 100'000; ++i) bomb += "[\n";
  try {
    (void)parse_json(bomb);
    FAIL() << "expected JsonError";
  } catch (const JsonError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("nesting too deep"), std::string::npos) << what;
    // The parser descends through kMaxDepth (200) brackets, each on its own
    // line, and refuses the next value — at the start of line 201.
    EXPECT_NE(what.find("line 201, column 1"), std::string::npos) << what;
  }
}

TEST(JsonIo, TruncatedMidEscapeFailsCleanly) {
  // An artifact cut off inside a string escape (half-written file, torn
  // download) must fail with a diagnostic, never read past the buffer or
  // decode a partial escape.
  expect_error_mentions("\"abc\\", "unterminated escape");
  expect_error_mentions(R"("abc\u)", "unexpected end of \\u escape");
  expect_error_mentions(R"("abc\u0)", "unexpected end of \\u escape");
  expect_error_mentions(R"("abc\u00a)", "unexpected end of \\u escape");
}

}  // namespace
