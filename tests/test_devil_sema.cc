// Unit tests for the Devil semantic checker — one test per consistency rule
// (paper §2.2). Each negative test asserts the *specific* rule code fires,
// so a mutant killed by the wrong check would show up here.
#include <gtest/gtest.h>

#include "devil/compiler.h"

namespace {

devil::CompileResult check(const std::string& body_or_spec) {
  return devil::check_spec("test.dil", body_or_spec);
}

/// Wraps register/variable declarations in a single-port device.
std::string dev(const std::string& body, const std::string& params =
                                              "p : bit[8] port @ {0..0}") {
  return "device d (" + params + ") {\n" + body + "\n}";
}

TEST(DevilSema, AcceptsMinimalConsistentSpec) {
  auto r = check(dev("register r = p @ 0 : bit[8]; variable v = r : int(8);"));
  EXPECT_TRUE(r.ok()) << r.diags.render();
}

// ---- intra-layer: ports ---------------------------------------------------

TEST(DevilSema, DVL100_DuplicatePortParam) {
  auto r = check(
      "device d (p : bit[8] port @ {0..0}, p : bit[8] port @ {0..0}) {"
      " register r = p @ 0 : bit[8]; variable v = r : int(8); }");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.diags.has_code("DVL100"));
}

TEST(DevilSema, DVL101_InvalidPortWidth) {
  auto r = check(dev("register r = p @ 0 : bit[12]; variable v = r : int(12);",
                     "p : bit[12] port @ {0..0}"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.diags.has_code("DVL101"));
}

TEST(DevilSema, DVL102_EmptyPortRange) {
  auto r = check(dev("register r = p @ 3 : bit[8]; variable v = r : int(8);",
                     "p : bit[8] port @ {3..1}"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.diags.has_code("DVL102"));
}

TEST(DevilSema, PortOffsetSetsSupported) {
  // Non-contiguous offset sets: `@ {0, 2}` claims exactly those offsets.
  auto r = check(dev("register a = p @ 0 : bit[8]; register b = p @ 2 : bit[8];"
                     "variable va = a : int(8); variable vb = b : int(8);",
                     "p : bit[8] port @ {0, 2}"));
  EXPECT_TRUE(r.ok()) << r.diags.render();
}

TEST(DevilSema, DVL113_OffsetOutsideOffsetSet) {
  auto r = check(dev("register a = p @ 1 : bit[8]; variable v = a : int(8);",
                     "p : bit[8] port @ {0, 2}"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.diags.has_code("DVL113"));
}

TEST(DevilSema, DVL103_DuplicateOffsetInSet) {
  auto r = check(dev("register a = p @ 0 : bit[8]; variable v = a : int(8);",
                     "p : bit[8] port @ {0, 0}"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.diags.has_code("DVL103"));
}

// ---- intra-layer: registers --------------------------------------------------

TEST(DevilSema, DVL110_DuplicateRegister) {
  auto r = check(dev("register r = p @ 0 : bit[8];"
                     "register r = p @ 0 : bit[8];"
                     "variable v = r : int(8);"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.diags.has_code("DVL110"));
}

TEST(DevilSema, DVL112_UnknownPort) {
  auto r = check(dev("register r = q @ 0 : bit[8]; variable v = r : int(8);"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.diags.has_code("DVL112"));
}

TEST(DevilSema, DVL113_OffsetOutsideRange) {
  auto r = check(dev("register r = p @ 7 : bit[8]; variable v = r : int(8);"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.diags.has_code("DVL113"));
}

TEST(DevilSema, DVL114_MaskSizeMismatch) {
  auto r = check(dev("register r = p @ 0, mask '....' : bit[8];"
                     "variable v = r : int(8);"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.diags.has_code("DVL114"));
}

TEST(DevilSema, DVL115_RegisterWiderThanPort) {
  auto r = check(dev("register r = p @ 0 : bit[16]; variable v = r : int(16);"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.diags.has_code("DVL115"));
}

TEST(DevilSema, DVL116_TwoReadBindings) {
  auto r = check(dev("register r = read p @ 0, read p @ 1 : bit[8];"
                     "variable v = r : int(8);",
                     "p : bit[8] port @ {0..1}"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.diags.has_code("DVL116"));
}

// ---- intra-layer: variables -----------------------------------------------------

TEST(DevilSema, DVL120_DuplicateVariable) {
  auto r = check(dev("register r = p @ 0 : bit[8];"
                     "variable v = r[7..4] : int(4);"
                     "variable v = r[3..0] : int(4);"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.diags.has_code("DVL120"));
}

TEST(DevilSema, DVL121_UnknownRegisterInFragment) {
  auto r = check(dev("register r = p @ 0 : bit[8]; variable v = s : int(8);"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.diags.has_code("DVL121"));
}

TEST(DevilSema, DVL122_BitRangeOutOfBounds) {
  auto r = check(dev("register r = p @ 0 : bit[8]; variable v = r[9..0] : int(10);"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.diags.has_code("DVL122"));
}

TEST(DevilSema, DVL123_VariableOnIrrelevantBit) {
  auto r = check(dev("register r = p @ 0, mask '0.......' : bit[8];"
                     "variable v = r[7] : int(1);"
                     "variable w = r[6..0] : int(7);"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.diags.has_code("DVL123"));
}

TEST(DevilSema, DVL130_WidthMismatchWithType) {
  auto r = check(dev("register r = p @ 0 : bit[8]; variable v = r : int(4);"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.diags.has_code("DVL130"));
}

TEST(DevilSema, DVL131_EnumPatternLengthMismatch) {
  auto r = check(dev("register r = p @ 0, mask '******..' : bit[8];"
                     "variable v = r[1..0] : { A <=> '00', B <=> '1' };"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.diags.has_code("DVL131"));
}

TEST(DevilSema, DVL132_EnumPatternBadChar) {
  auto r = check(dev("register r = p @ 0, mask '*******.' : bit[8];"
                     "variable v = r[0] : { A <=> '*', B <=> '0' };"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.diags.has_code("DVL132"));
}

TEST(DevilSema, DVL133_DuplicateSymbolicName) {
  auto r = check(dev("register r = p @ 0, mask '******..' : bit[8];"
                     "variable v = r[0] : { A <=> '1', A <=> '0' };"
                     "variable w = r[1] : int(1);"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.diags.has_code("DVL133"));
}

TEST(DevilSema, DVL133_SymbolicNamesUniqueAcrossVariables) {
  auto r = check(dev("register r = p @ 0, mask '******..' : bit[8];"
                     "variable v = r[0] : { ON <=> '1', OFF <=> '0' };"
                     "variable w = r[1] : { ON <=> '1', ALSO <=> '0' };"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.diags.has_code("DVL133"));
}

TEST(DevilSema, DVL134_DuplicateReadPattern) {
  auto r = check(dev("register r = p @ 0, mask '*******.' : bit[8];"
                     "variable v = r[0] : { A <=> '1', B <= '1' };"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.diags.has_code("DVL134"));
}

TEST(DevilSema, DVL135_DuplicateSetElement) {
  auto r = check(dev("register r = p @ 0, mask '******..' : bit[8];"
                     "variable v = r[1..0] : int{1,1,2};"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.diags.has_code("DVL135"));
}

TEST(DevilSema, DVL138_SetElementTooWide) {
  auto r = check(dev("register r = p @ 0, mask '******..' : bit[8];"
                     "variable v = r[1..0] : int{0,2,3,5};"));
  EXPECT_FALSE(r.ok());
  // 5 needs 3 bits; the widths also mismatch — the targeted code must fire.
  EXPECT_TRUE(r.diags.has_code("DVL138") || r.diags.has_code("DVL130"));
}

// ---- inter-layer: access consistency -----------------------------------------------

TEST(DevilSema, DVL200_ReadMappingOnWriteOnlyVariable) {
  auto r = check(dev("register r = write p @ 0, mask '*******.' : bit[8];"
                     "variable v = r[0] : { A <= '1', B <= '0' };"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.diags.has_code("DVL200"));
}

TEST(DevilSema, DVL201_WriteMappingOnReadOnlyVariable) {
  auto r = check(dev("register r = read p @ 0, mask '*******.' : bit[8];"
                     "variable v = r[0] : { A => '1', B => '0' };"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.diags.has_code("DVL201"));
}

TEST(DevilSema, DVL210_ReadMappingNotExhaustive) {
  auto r = check(dev("register r = p @ 0, mask '******..' : bit[8];"
                     "variable v = r[1..0] : { A <=> '00', B <=> '01' };"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.diags.has_code("DVL210"));
}

TEST(DevilSema, DVL202_WriteOnlyEnumNeedsWriteMapping) {
  // A write-only variable whose type has read mappings errs twice over;
  // the dedicated code for "no write mapping" must be among the errors.
  auto r = check(dev("register r = write p @ 0, mask '*******.' : bit[8];"
                     "variable v = r[0] : { A <= '1' };"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.diags.has_code("DVL202"));
}

// ---- pre-actions ---------------------------------------------------------------------

TEST(DevilSema, DVL150_PreActionUnknownVariable) {
  auto r = check(dev("register r = p @ 0, pre {sel = 1} : bit[8];"
                     "variable v = r : int(8);"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.diags.has_code("DVL150"));
}

TEST(DevilSema, DVL151_PreActionReadOnlyVariable) {
  auto r = check(dev("register s = read p @ 1 : bit[8];"
                     "variable sel = s : int(8);"
                     "register r = p @ 0, pre {sel = 1} : bit[8];"
                     "variable v = r : int(8);",
                     "p : bit[8] port @ {0..1}"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.diags.has_code("DVL151"));
}

TEST(DevilSema, DVL152_PreActionValueOutOfRange) {
  auto r = check(dev("register s = write p @ 1, mask '......**' : bit[8];"
                     "private variable sel = s[7..2] : int(6);"
                     "register r = p @ 0, pre {sel = 64} : bit[8];"
                     "variable v = r : int(8);",
                     "p : bit[8] port @ {0..1}"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.diags.has_code("DVL152"));
}

// ---- overlap ---------------------------------------------------------------------------

TEST(DevilSema, DVL220_PortReusedWithoutDisjointness) {
  auto r = check(dev("register a = p @ 0 : bit[8];"
                     "register b = p @ 0 : bit[8];"
                     "variable va = a : int(8);"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.diags.has_code("DVL220"));
}

TEST(DevilSema, PortReuseAllowedWithDisjointPreActions) {
  auto r = check(dev("register s = write p @ 1, mask '*******.' : bit[8];"
                     "private variable sel = s[0] : int(1);"
                     "register a = read p @ 0, pre {sel = 0} : bit[8];"
                     "register b = read p @ 0, pre {sel = 1} : bit[8];"
                     "variable va = a : int(8); variable vb = b : int(8);",
                     "p : bit[8] port @ {0..1}"));
  EXPECT_TRUE(r.ok()) << r.diags.render();
}

TEST(DevilSema, PortReuseAllowedWithDisjointMasks) {
  auto r = check(dev("register a = write p @ 0, mask '....0000' : bit[8];"
                     "register b = write p @ 0, mask '0000....' : bit[8];"
                     "variable va = a[7..4] : int(4);"
                     "variable vb = b[3..0] : int(4);"));
  EXPECT_TRUE(r.ok()) << r.diags.render();
}

TEST(DevilSema, PortReadAndWriteByDifferentRegistersAllowed) {
  auto r = check(dev("register a = read p @ 0 : bit[8];"
                     "register b = write p @ 0 : bit[8];"
                     "variable va = a : int(8); variable vb = b : int(8);"));
  EXPECT_TRUE(r.ok()) << r.diags.render();
}

TEST(DevilSema, DVL221_RegisterBitInTwoVariables) {
  auto r = check(dev("register r = p @ 0 : bit[8];"
                     "variable v = r[3..0] : int(4);"
                     "variable w = r[7..3] : int(5);"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.diags.has_code("DVL221"));
}

// ---- no omission -------------------------------------------------------------------------

TEST(DevilSema, DVL230_UnusedRegister) {
  auto r = check(dev("register r = p @ 0 : bit[8];"
                     "register s = p @ 1 : bit[8];"
                     "variable v = r : int(8);",
                     "p : bit[8] port @ {0..1}"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.diags.has_code("DVL230"));
}

TEST(DevilSema, DVL231_UncoveredRelevantBit) {
  auto r = check(dev("register r = p @ 0 : bit[8];"
                     "variable v = r[6..0] : int(7);"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.diags.has_code("DVL231"));
}

TEST(DevilSema, DVL232_UnusedPortParam) {
  auto r = check(dev("register r = p @ 0 : bit[8]; variable v = r : int(8);",
                     "p : bit[8] port @ {0..0}, q : bit[8] port @ {0..0}"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.diags.has_code("DVL232"));
}

TEST(DevilSema, DVL233_UnusedDeclaredOffset) {
  auto r = check(dev("register r = p @ 0 : bit[8]; variable v = r : int(8);",
                     "p : bit[8] port @ {0..1}"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.diags.has_code("DVL233"));
}

// ---- resolved model ------------------------------------------------------------------------

TEST(DevilSema, TypeIdsAreSpecUnique) {
  auto r = check(dev("register r = p @ 0 : bit[8];"
                     "variable v = r[7..4] : int(4);"
                     "variable w = r[3..0] : int(4);"));
  ASSERT_TRUE(r.ok()) << r.diags.render();
  EXPECT_NE(r.info->variables.at("v").type_id,
            r.info->variables.at("w").type_id);
}

TEST(DevilSema, VariableAccessDerivedFromRegisters) {
  auto r = check(dev("register a = read p @ 0 : bit[8];"
                     "register b = write p @ 1 : bit[8];"
                     "variable va = a : int(8); variable vb = b : int(8);",
                     "p : bit[8] port @ {0..1}"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.info->variables.at("va").access, devil::Access::kRead);
  EXPECT_EQ(r.info->variables.at("vb").access, devil::Access::kWrite);
}

TEST(DevilSema, DescribeDeviceListsEntities) {
  auto r = check(dev("register r = p @ 0 : bit[8]; variable v = r : int(8);"));
  ASSERT_TRUE(r.ok());
  std::string text = devil::describe_device(*r.info);
  EXPECT_NE(text.find("register r"), std::string::npos);
  EXPECT_NE(text.find("variable v"), std::string::npos);
}

}  // namespace
