// Port-I/O flight recorder: ring semantics, composition with the fault
// injector, and the differential guarantee the observability layer gets for
// free — because the step-charge discipline is engine-invariant, the
// bytecode VM and the tree walker must produce byte-identical post-mortem
// traces for clean boots, mutant boots and faulted boots on every corpus
// device.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "corpus/drivers.h"
#include "corpus/specs.h"
#include "devil/compiler.h"
#include "eval/device_bindings.h"
#include "eval/driver_campaign.h"
#include "eval/fault_campaign.h"
#include "hw/fault_injection.h"
#include "hw/flight_recorder.h"
#include "hw/io_bus.h"
#include "minic/program.h"

namespace {

using eval::DriverCampaignConfig;
using eval::FaultCampaignConfig;

/// Deterministic scratch device: reads echo 0x40 + offset, writes count.
class ScratchDevice final : public hw::Device {
 public:
  [[nodiscard]] std::string name() const override { return "scratch"; }
  uint32_t read(uint32_t offset, int) override { return 0x40u + offset; }
  void write(uint32_t, uint32_t, int) override { ++writes_; }
  void reset() override { writes_ = 0; }
  [[nodiscard]] uint64_t writes() const { return writes_; }

 private:
  uint64_t writes_ = 0;
};

TEST(FlightRecorder, RetainsEverythingBelowCapacity) {
  hw::FlightRecorder rec(std::make_shared<ScratchDevice>(), 0x100, nullptr,
                         /*capacity=*/4);
  rec.write(0, 0x11, 8);
  EXPECT_EQ(rec.read(2, 8), 0x42u);
  auto tail = rec.tail();
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(rec.total_accesses(), 2u);
  EXPECT_EQ(tail[0].seq, 0u);
  EXPECT_TRUE(tail[0].is_write);
  EXPECT_EQ(tail[0].port, 0x100u);
  EXPECT_EQ(tail[0].value, 0x11u);
  EXPECT_EQ(tail[1].seq, 1u);
  EXPECT_FALSE(tail[1].is_write);
  EXPECT_EQ(tail[1].port, 0x102u);
  EXPECT_EQ(tail[1].value, 0x42u);
}

TEST(FlightRecorder, RingWrapsKeepingTheNewestAccessesOldestFirst) {
  hw::FlightRecorder rec(std::make_shared<ScratchDevice>(), 0x100, nullptr,
                         /*capacity=*/4);
  for (uint32_t i = 0; i < 11; ++i) rec.write(i % 8, i, 8);
  EXPECT_EQ(rec.total_accesses(), 11u);
  auto tail = rec.tail();
  ASSERT_EQ(tail.size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(tail[i].seq, 7u + i) << "tail must be the newest 4, in order";
    EXPECT_EQ(tail[i].value, 7u + i);
  }
}

TEST(FlightRecorder, ResetForwardsAndClearsTheRing) {
  auto scratch = std::make_shared<ScratchDevice>();
  hw::FlightRecorder rec(scratch, 0, nullptr, 4);
  rec.write(0, 1, 8);
  rec.reset();
  EXPECT_EQ(rec.total_accesses(), 0u);
  EXPECT_TRUE(rec.tail().empty());
  EXPECT_EQ(scratch->writes(), 0u) << "reset must forward to the inner device";
}

TEST(FlightRecorder, RenderTailFormatIsStable) {
  hw::FlightRecorder rec(std::make_shared<ScratchDevice>(), 0x1f0, nullptr, 2);
  rec.write(7, 0xef, 8);
  (void)rec.read(1, 16);
  (void)rec.read(0, 8);
  EXPECT_EQ(rec.render_tail(),
            "last 2 of 3 bus events:\n"
            "  [event 1, step 0] in  0x1f1 -> 0x41 (16-bit)\n"
            "  [event 2, step 0] in  0x1f0 -> 0x40 (8-bit)");
}

TEST(FlightRecorder, ComposesOutsideTheFaultInjector) {
  // Recorder wraps the injector, so the trace shows the value the driver
  // actually saw — the faulted one — not the healthy device's answer.
  hw::FaultPlan plan;
  plan.port = 0x100;
  plan.kind = hw::FaultKind::kStuckOne;
  plan.after = 0;
  plan.mask = 0x80;
  auto injector = std::make_shared<hw::FaultInjector>(
      std::make_shared<ScratchDevice>(), 0x100, plan);
  hw::FlightRecorder rec(injector, 0x100, nullptr, 4);
  EXPECT_EQ(rec.read(0, 8), 0xc0u);  // 0x40 | stuck-at-1 0x80
  auto tail = rec.tail();
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail[0].value, 0xc0u);
  EXPECT_EQ(injector->fired(), 1u);
}

/// The C and CDevil campaign configs for one corpus device, recorder on.
std::pair<DriverCampaignConfig, DriverCampaignConfig> recorder_configs(
    const corpus::CampaignDrivers& drivers, minic::ExecEngine engine) {
  eval::DeviceBinding binding = eval::binding_for(drivers.device);

  DriverCampaignConfig c;
  c.driver = drivers.c_driver();
  c.device = binding;
  c.sample_percent = drivers.sample_percent;
  c.engine = engine;
  c.flight_recorder = true;

  auto spec = devil::compile_spec(drivers.spec_file, drivers.spec(),
                                  devil::CodegenMode::kDebug);
  EXPECT_TRUE(spec.ok()) << spec.diags.render();
  DriverCampaignConfig d;
  d.stubs = spec.stubs;
  d.driver = drivers.cdevil_driver();
  d.device = binding;
  d.is_cdevil = true;
  d.sample_percent = drivers.sample_percent;
  d.engine = engine;
  d.flight_recorder = true;
  return {std::move(c), std::move(d)};
}

void expect_identical_traces(const eval::DriverCampaignResult& vm,
                             const eval::DriverCampaignResult& walker,
                             const std::string& what) {
  ASSERT_EQ(vm.records.size(), walker.records.size()) << what;
  size_t traced = 0;
  for (size_t i = 0; i < vm.records.size(); ++i) {
    EXPECT_EQ(vm.records[i].outcome, walker.records[i].outcome)
        << what << " record " << i;
    EXPECT_EQ(vm.records[i].steps, walker.records[i].steps)
        << what << " record " << i;
    ASSERT_EQ(vm.records[i].trace, walker.records[i].trace)
        << what << " record " << i;
    if (!vm.records[i].trace.empty()) ++traced;
  }
  EXPECT_GT(traced, 0u) << what << ": campaign produced no traces at all";
}

TEST(FlightRecorderDifferential, CleanBootTracesMatchAcrossEngines) {
  // The unmutated driver booted by hand on each engine, recorder outermost:
  // the full access stream's tail must render byte-identically.
  for (const auto& drivers : corpus::campaign_drivers()) {
    eval::DeviceBinding binding = eval::binding_for(drivers.device);
    minic::Program prog = minic::compile("driver.c", drivers.c_driver());
    ASSERT_TRUE(prog.ok()) << drivers.device;

    std::string rendered[2];
    int slot = 0;
    for (auto engine :
         {minic::ExecEngine::kBytecodeVm, minic::ExecEngine::kTreeWalker}) {
      hw::IoBus bus;
      auto rec = std::make_shared<hw::FlightRecorder>(
          binding.make_device(), binding.port_base, &bus);
      bus.map(binding.port_base, binding.port_span, rec);
      auto out = minic::run_unit(*prog.unit, bus, binding.entry, 3'000'000,
                                 engine);
      EXPECT_EQ(out.fault, minic::FaultKind::kNone) << drivers.device;
      EXPECT_GT(rec->total_accesses(), 0u) << drivers.device;
      rendered[slot++] = rec->render_tail();
    }
    EXPECT_EQ(rendered[0], rendered[1]) << drivers.device;
  }
}

TEST(FlightRecorderDifferential, MutantTracesMatchAcrossEngines) {
  for (const auto& drivers : corpus::campaign_drivers()) {
    auto [c_vm, d_vm] =
        recorder_configs(drivers, minic::ExecEngine::kBytecodeVm);
    auto [c_wk, d_wk] =
        recorder_configs(drivers, minic::ExecEngine::kTreeWalker);
    expect_identical_traces(eval::run_driver_campaign(c_vm),
                            eval::run_driver_campaign(c_wk),
                            std::string(drivers.device) + " C");
    expect_identical_traces(eval::run_driver_campaign(d_vm),
                            eval::run_driver_campaign(d_wk),
                            std::string(drivers.device) + " CDevil");
  }
}

TEST(FlightRecorderDifferential, FaultedBootTracesMatchAcrossEngines) {
  for (const auto& drivers : corpus::campaign_drivers()) {
    auto [c_vm, d_vm] =
        recorder_configs(drivers, minic::ExecEngine::kBytecodeVm);
    auto [c_wk, d_wk] =
        recorder_configs(drivers, minic::ExecEngine::kTreeWalker);
    for (auto [vm_base, wk_base] :
         {std::pair{&c_vm, &c_wk}, std::pair{&d_vm, &d_wk}}) {
      FaultCampaignConfig vm_cfg;
      vm_cfg.base = *vm_base;
      vm_cfg.sample_percent = 25;
      FaultCampaignConfig wk_cfg;
      wk_cfg.base = *wk_base;
      wk_cfg.sample_percent = 25;
      auto vm_res = eval::run_fault_campaign(vm_cfg);
      auto wk_res = eval::run_fault_campaign(wk_cfg);
      ASSERT_EQ(vm_res.records.size(), wk_res.records.size());
      size_t traced = 0;
      for (size_t i = 0; i < vm_res.records.size(); ++i) {
        EXPECT_EQ(vm_res.records[i].outcome, wk_res.records[i].outcome)
            << drivers.device << " scenario record " << i;
        EXPECT_EQ(vm_res.records[i].steps, wk_res.records[i].steps)
            << drivers.device << " scenario record " << i;
        ASSERT_EQ(vm_res.records[i].trace, wk_res.records[i].trace)
            << drivers.device << " scenario record " << i;
        if (!vm_res.records[i].trace.empty()) ++traced;
      }
      EXPECT_GT(traced, 0u) << drivers.device;
    }
  }
}

TEST(FlightRecorderCampaign, TracesOnlyOnNonCleanRecordsAndOnlyWhenEnabled) {
  const auto& drivers = corpus::campaign_drivers().front();
  auto [c_on, d_on] =
      recorder_configs(drivers, minic::ExecEngine::kBytecodeVm);
  (void)d_on;
  auto res_on = eval::run_driver_campaign(c_on);
  for (const auto& rec : res_on.records) {
    if (rec.outcome == eval::Outcome::kBoot ||
        rec.outcome == eval::Outcome::kCompileTime) {
      EXPECT_TRUE(rec.trace.empty())
          << "clean boots and compile-time failures carry no post-mortem";
    }
  }

  auto c_off = c_on;
  c_off.flight_recorder = false;
  auto res_off = eval::run_driver_campaign(c_off);
  for (const auto& rec : res_off.records) {
    EXPECT_TRUE(rec.trace.empty()) << "recorder off must mean no traces";
  }
  // Beyond the traces, the recorder shim must not perturb the campaign.
  ASSERT_EQ(res_on.records.size(), res_off.records.size());
  for (size_t i = 0; i < res_on.records.size(); ++i) {
    EXPECT_EQ(res_on.records[i].outcome, res_off.records[i].outcome);
    EXPECT_EQ(res_on.records[i].steps, res_off.records[i].steps);
  }
  EXPECT_EQ(res_on.clean_fingerprint, res_off.clean_fingerprint);
}

}  // namespace
