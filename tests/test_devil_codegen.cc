// Tests for the Devil stub generator: the generated MiniC must compile, and
// debug stubs must have the paper's Fig. 4 structure.
#include <gtest/gtest.h>

#include "corpus/specs.h"
#include "devil/compiler.h"
#include "minic/program.h"

namespace {

std::string stubs_for(const std::string& spec, devil::CodegenMode mode) {
  auto r = devil::compile_spec("test.dil", spec, mode);
  EXPECT_TRUE(r.ok()) << r.diags.render();
  return r.stubs;
}

class CodegenModeTest : public ::testing::TestWithParam<devil::CodegenMode> {};

INSTANTIATE_TEST_SUITE_P(BothModes, CodegenModeTest,
                         ::testing::Values(devil::CodegenMode::kProduction,
                                           devil::CodegenMode::kDebug),
                         [](const auto& info) {
                           return info.param == devil::CodegenMode::kDebug
                                      ? "debug"
                                      : "production";
                         });

TEST_P(CodegenModeTest, EveryCorpusSpecGeneratesCompilableStubs) {
  for (const auto& spec : corpus::all_specs()) {
    auto r = devil::compile_spec(spec.file, spec.text, GetParam());
    ASSERT_TRUE(r.ok()) << spec.name << "\n" << r.diags.render();
    minic::Program prog = minic::compile(spec.file, r.stubs);
    EXPECT_TRUE(prog.ok()) << spec.name << "\n" << prog.diags.render();
  }
}

TEST_P(CodegenModeTest, GeneratesInitAndRegisterStubs) {
  std::string stubs = stubs_for(corpus::busmouse_spec(), GetParam());
  EXPECT_NE(stubs.find("void devil_init(u32 base)"), std::string::npos);
  EXPECT_NE(stubs.find("reg_get_sig_reg"), std::string::npos);
  EXPECT_NE(stubs.find("reg_set_cr"), std::string::npos);
}

TEST_P(CodegenModeTest, PreActionsAppearBeforePortRead) {
  std::string stubs = stubs_for(corpus::busmouse_spec(), GetParam());
  size_t stub = stubs.find("reg_get_x_high");
  ASSERT_NE(stub, std::string::npos);
  size_t pre = stubs.find("devil_raw_set_index(0x1)", stub);
  size_t io = stubs.find("inb(devil_port_base", stub);
  ASSERT_NE(pre, std::string::npos);
  ASSERT_NE(io, std::string::npos);
  EXPECT_LT(pre, io);  // index must be selected before the port access
}

TEST_P(CodegenModeTest, PrivateVariablesGetNoPublicApi) {
  std::string stubs = stubs_for(corpus::busmouse_spec(), GetParam());
  EXPECT_EQ(stubs.find("get_index("), std::string::npos);
  EXPECT_EQ(stubs.find(" set_index("), std::string::npos);
  EXPECT_NE(stubs.find("devil_raw_set_index"), std::string::npos);
}

TEST(DevilCodegen, ProductionEnumValuesAreMacros) {
  std::string stubs =
      stubs_for(corpus::ide_spec(), devil::CodegenMode::kProduction);
  EXPECT_NE(stubs.find("#define MASTER 0x0"), std::string::npos);
  EXPECT_NE(stubs.find("#define SLAVE 0x1"), std::string::npos);
  EXPECT_NE(stubs.find("#define Drive_t u8"), std::string::npos);
}

TEST(DevilCodegen, DebugEnumValuesAreTaggedStructs) {
  // The Fig. 4 shape: a distinct struct per Devil type, constants carrying
  // (filename, type-id, value).
  std::string stubs = stubs_for(corpus::ide_spec(), devil::CodegenMode::kDebug);
  EXPECT_NE(stubs.find("struct Drive_t { cstring filename; int type; u32 val; };"),
            std::string::npos);
  EXPECT_NE(stubs.find("const Drive_t MASTER = { __FILE__,"), std::string::npos);
  EXPECT_NE(stubs.find("const Drive_t SLAVE = { __FILE__,"), std::string::npos);
}

TEST(DevilCodegen, DebugStructTypesAreDistinctPerVariable) {
  std::string stubs = stubs_for(corpus::ide_spec(), devil::CodegenMode::kDebug);
  EXPECT_NE(stubs.find("struct Busy_t"), std::string::npos);
  EXPECT_NE(stubs.find("struct Command_t"), std::string::npos);
  // Distinct type ids: the constants of different types carry different tags.
  size_t master = stubs.find("const Drive_t MASTER = { __FILE__, ");
  size_t busy = stubs.find("const Busy_t BUSY = { __FILE__, ");
  ASSERT_NE(master, std::string::npos);
  ASSERT_NE(busy, std::string::npos);
  std::string master_id = stubs.substr(master + 34, 3);
  std::string busy_id = stubs.substr(busy + 32, 3);
  EXPECT_NE(master_id, busy_id);
}

TEST(DevilCodegen, DebugIntSetGetterAsserts) {
  auto r = devil::compile_spec(
      "t.dil",
      "device d (p : bit[8] port @ {0..0}) {"
      " register r = p @ 0, mask '******..' : bit[8];"
      " variable v = r[1..0] : int{0,2,3}; }",
      devil::CodegenMode::kDebug);
  ASSERT_TRUE(r.ok()) << r.diags.render();
  // Paper §2.3: "the stub for reading a variable of type int{0,2,3} contains
  // an assertion that verifies..."
  EXPECT_NE(r.stubs.find("acc == 0x0 || acc == 0x2 || acc == 0x3"),
            std::string::npos);
  EXPECT_NE(r.stubs.find("Devil assertion"), std::string::npos);
}

TEST(DevilCodegen, ProductionIntSetGetterDoesNotAssert) {
  auto r = devil::compile_spec(
      "t.dil",
      "device d (p : bit[8] port @ {0..0}) {"
      " register r = p @ 0, mask '******..' : bit[8];"
      " variable v = r[1..0] : int{0,2,3}; }",
      devil::CodegenMode::kProduction);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.stubs.find("Devil assertion"), std::string::npos);
}

TEST(DevilCodegen, DebugMaskConformanceCheckOnRead) {
  std::string stubs = stubs_for(corpus::ide_spec(), devil::CodegenMode::kDebug);
  // select_reg has mask '1.1.....': fixed bits 7 and 5 -> 0xa0.
  EXPECT_NE(stubs.find("violates its mask specification"), std::string::npos);
  EXPECT_NE(stubs.find("(v & 0xa0) != 0xa0"), std::string::npos);
}

TEST(DevilCodegen, WriteStubForcesFixedMaskBits) {
  std::string stubs =
      stubs_for(corpus::ide_spec(), devil::CodegenMode::kProduction);
  size_t stub = stubs.find("reg_set_select_reg");
  ASSERT_NE(stub, std::string::npos);
  // keep = relevant-or-star bits (0x5f), forced ones = 0xa0.
  EXPECT_NE(stubs.find("v = (v & 0x5f) | 0xa0;", stub), std::string::npos);
}

TEST(DevilCodegen, ConcatenatedVariableReadsAllRegisters) {
  std::string stubs =
      stubs_for(corpus::busmouse_spec(), devil::CodegenMode::kProduction);
  size_t raw = stubs.find("devil_raw_get_dx");
  ASSERT_NE(raw, std::string::npos);
  size_t end = stubs.find("}", raw);
  std::string body = stubs.substr(raw, end - raw);
  EXPECT_NE(body.find("reg_get_x_high"), std::string::npos);
  EXPECT_NE(body.find("reg_get_x_low"), std::string::npos);
}

TEST(DevilCodegen, SignedGetterSignExtends) {
  std::string stubs =
      stubs_for(corpus::busmouse_spec(), devil::CodegenMode::kProduction);
  size_t getter = stubs.find("get_dx()");
  ASSERT_NE(getter, std::string::npos);
  EXPECT_NE(stubs.find("if (acc & 0x80) acc = acc | 0xffffff00;", getter),
            std::string::npos);
}

TEST(DevilCodegen, SixteenBitPortUsesInw) {
  std::string stubs =
      stubs_for(corpus::ide_spec(), devil::CodegenMode::kProduction);
  size_t stub = stubs.find("reg_get_data_reg");
  ASSERT_NE(stub, std::string::npos);
  EXPECT_NE(stubs.find("inw(devil_port_data", stub), std::string::npos);
}

TEST(DevilCodegen, MkConstructorAssertsRangeInDebug) {
  std::string stubs = stubs_for(corpus::ide_spec(), devil::CodegenMode::kDebug);
  size_t mk = stubs.find("mk_SectorCount");
  ASSERT_NE(mk, std::string::npos);
  EXPECT_NE(stubs.find("raw < 0 || raw > 0xff", mk), std::string::npos);
}

TEST(DevilCodegen, MkConstructorIsPassThroughInProduction) {
  std::string stubs =
      stubs_for(corpus::ide_spec(), devil::CodegenMode::kProduction);
  size_t mk = stubs.find("mk_SectorCount");
  ASSERT_NE(mk, std::string::npos);
  size_t end = stubs.find("}", mk);
  EXPECT_NE(stubs.substr(mk, end - mk).find("return v;"), std::string::npos);
}

TEST(DevilCodegen, WriteOnlyVariableHasNoGetter) {
  std::string stubs =
      stubs_for(corpus::busmouse_spec(), devil::CodegenMode::kProduction);
  EXPECT_EQ(stubs.find("get_config"), std::string::npos);
  EXPECT_NE(stubs.find("set_config"), std::string::npos);
}

TEST(DevilCodegen, ReadOnlyVariableHasNoSetter) {
  std::string stubs =
      stubs_for(corpus::busmouse_spec(), devil::CodegenMode::kProduction);
  EXPECT_NE(stubs.find("get_buttons"), std::string::npos);
  EXPECT_EQ(stubs.find("set_buttons"), std::string::npos);
}

TEST(DevilCodegen, CachesOnlyForWritableRegisters) {
  std::string stubs =
      stubs_for(corpus::busmouse_spec(), devil::CodegenMode::kProduction);
  EXPECT_NE(stubs.find("devil_cache_cr"), std::string::npos);
  EXPECT_EQ(stubs.find("devil_cache_x_low"), std::string::npos);
}

}  // namespace
