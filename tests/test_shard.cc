// Process-level campaign sharding: shard artifacts must merge into results
// byte-identical to the single-process campaign — records, tallies,
// dedup/prefix-cache counters and the rendered report tables — for every
// device in campaign_drivers(), across a JSON serialize/parse round trip.
// The merge must reject anything that does not tile exactly one campaign
// (mismatched config fingerprints, duplicate/missing/overlapping slices,
// corrupt or truncated artifacts), and shard artifacts must be invariant
// under the worker thread count inside each shard.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "corpus/drivers.h"
#include "corpus/specs.h"
#include "devil/compiler.h"
#include "eval/device_bindings.h"
#include "eval/driver_campaign.h"
#include "eval/merge.h"
#include "eval/report.h"
#include "eval/shard.h"

namespace {

using eval::DriverCampaignConfig;
using eval::DriverCampaignResult;
using eval::ShardArtifact;
using eval::ShardBundle;
using eval::ShardSpec;

/// The C and CDevil configs for one corpus device, as the CLI builds them.
std::pair<DriverCampaignConfig, DriverCampaignConfig> device_configs(
    const corpus::CampaignDrivers& drivers, unsigned threads) {
  eval::DeviceBinding binding = eval::binding_for(drivers.device);

  DriverCampaignConfig c;
  c.driver = drivers.c_driver();
  c.device = binding;
  c.sample_percent = drivers.sample_percent;
  c.threads = threads;

  auto spec = devil::compile_spec(drivers.spec_file, drivers.spec(),
                                  devil::CodegenMode::kDebug);
  EXPECT_TRUE(spec.ok()) << spec.diags.render();
  DriverCampaignConfig d;
  d.stubs = spec.stubs;
  d.driver = drivers.cdevil_driver();
  d.device = binding;
  d.is_cdevil = true;
  d.sample_percent = drivers.sample_percent;
  d.threads = threads;
  return {std::move(c), std::move(d)};
}

DriverCampaignConfig busmouse_c_config(unsigned sample_percent = 100,
                                       unsigned threads = 1) {
  DriverCampaignConfig cfg;
  cfg.driver = corpus::c_busmouse_driver();
  cfg.device = eval::busmouse_binding();
  cfg.sample_percent = sample_percent;
  cfg.threads = threads;
  return cfg;
}

void expect_same_result(const DriverCampaignResult& a,
                        const DriverCampaignResult& b,
                        const std::string& label) {
  EXPECT_EQ(a.device, b.device) << label;
  EXPECT_EQ(a.entry, b.entry) << label;
  EXPECT_EQ(a.total_sites, b.total_sites) << label;
  EXPECT_EQ(a.total_mutants, b.total_mutants) << label;
  EXPECT_EQ(a.sampled_mutants, b.sampled_mutants) << label;
  EXPECT_EQ(a.deduped_mutants, b.deduped_mutants) << label;
  EXPECT_EQ(a.prefix_cache_hits, b.prefix_cache_hits) << label;
  EXPECT_EQ(a.clean_fingerprint, b.clean_fingerprint) << label;
  EXPECT_EQ(a.tally.mutants, b.tally.mutants) << label;
  EXPECT_EQ(a.tally.sites, b.tally.sites) << label;
  EXPECT_EQ(a.tally.total_mutants, b.tally.total_mutants) << label;
  ASSERT_EQ(a.records.size(), b.records.size()) << label;
  for (size_t i = 0; i < a.records.size(); ++i) {
    const std::string at = label + " record #" + std::to_string(i);
    EXPECT_EQ(a.records[i].mutant_index, b.records[i].mutant_index) << at;
    EXPECT_EQ(a.records[i].site, b.records[i].site) << at;
    EXPECT_EQ(a.records[i].outcome, b.records[i].outcome) << at;
    EXPECT_EQ(a.records[i].detail, b.records[i].detail) << at;
    EXPECT_EQ(a.records[i].deduped, b.records[i].deduped) << at;
  }
}

/// Shards `config` N ways (JSON round-tripping every artifact), merges, and
/// returns the merged result.
DriverCampaignResult shard_and_merge(const DriverCampaignConfig& config,
                                     unsigned count) {
  std::vector<ShardBundle> bundles;
  for (unsigned i = 1; i <= count; ++i) {
    ShardBundle bundle;
    bundle.shard = ShardSpec{i, count};
    bundle.campaigns.push_back(
        eval::run_campaign_shard(config, "C", bundle.shard));
    bundles.push_back(
        eval::parse_shard_bundle(eval::serialize_shard_bundle(bundle)));
  }
  auto merged = eval::merge_shard_bundles(bundles);
  EXPECT_EQ(merged.size(), 1u);
  return std::move(merged.front().result);
}

// ---------------------------------------------------------------------------
// Shard spec and slice arithmetic.
// ---------------------------------------------------------------------------

TEST(ShardSpecTest, ParsesValidSpecs) {
  EXPECT_EQ(eval::parse_shard_spec("1/3").index, 1u);
  EXPECT_EQ(eval::parse_shard_spec("1/3").count, 3u);
  EXPECT_EQ(eval::parse_shard_spec("3/3").index, 3u);
  EXPECT_EQ(eval::parse_shard_spec("1/1").count, 1u);
  EXPECT_EQ(eval::parse_shard_spec("12/400").count, 400u);
}

TEST(ShardSpecTest, RejectsInvalidSpecs) {
  for (const char* bad : {"0/3", "4/3", "3", "", "/", "1/", "/3", "a/b",
                          "1/0", "0/0", "1/3x", "x1/3", "-1/3", "1//3",
                          "1.5/3", " 1/3"}) {
    EXPECT_THROW((void)eval::parse_shard_spec(bad), std::invalid_argument)
        << "spec '" << bad << "' should be rejected";
  }
  try {
    (void)eval::parse_shard_spec("4/3");
    FAIL();
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("4/3"), std::string::npos);
  }
}

TEST(ShardSpecTest, SliceBoundsTileTheSample) {
  for (size_t sample : {0u, 1u, 7u, 100u, 2012u}) {
    for (size_t count : {1u, 2u, 3u, 7u, 64u}) {
      size_t expected_begin = 0;
      for (size_t ix = 0; ix < count; ++ix) {
        auto [lo, hi] =
            eval::sample_slice_bounds(sample, eval::SampleSlice{ix, count});
        EXPECT_EQ(lo, expected_begin) << sample << " " << count << " " << ix;
        EXPECT_LE(hi - lo, sample / count + 1);
        expected_begin = hi;
      }
      EXPECT_EQ(expected_begin, sample);
    }
  }
}

TEST(ShardSpecTest, RunCampaignShardRejectsBadSpecs) {
  auto cfg = busmouse_c_config();
  EXPECT_THROW((void)eval::run_campaign_shard(cfg, "C", ShardSpec{0, 3}),
               std::invalid_argument);
  EXPECT_THROW((void)eval::run_campaign_shard(cfg, "C", ShardSpec{4, 3}),
               std::invalid_argument);
  EXPECT_THROW((void)eval::run_campaign_shard(cfg, "C", ShardSpec{1, 0}),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// The flagship guarantee: a merged 3-shard campaign is byte-identical to
// the single-process run — records, tallies, counters and the rendered
// tables — for every device with a campaign corpus.
// ---------------------------------------------------------------------------

TEST(ShardMergeTest, ThreeShardsMergeByteIdenticalForAllDevices) {
  for (const auto& drivers : corpus::campaign_drivers()) {
    auto [c_cfg, d_cfg] = device_configs(drivers, /*threads=*/2);
    auto c_single = eval::run_driver_campaign(c_cfg);
    auto d_single = eval::run_driver_campaign(d_cfg);

    // Three shard "processes", each bundling both campaigns, round-tripped
    // through the JSON artifact format as real processes would.
    std::vector<ShardBundle> bundles;
    for (unsigned i = 1; i <= 3; ++i) {
      ShardBundle bundle;
      bundle.shard = ShardSpec{i, 3};
      bundle.campaigns.push_back(
          eval::run_campaign_shard(c_cfg, "C", bundle.shard));
      bundle.campaigns.push_back(
          eval::run_campaign_shard(d_cfg, "CDevil", bundle.shard));
      bundles.push_back(
          eval::parse_shard_bundle(eval::serialize_shard_bundle(bundle)));
    }
    // Merge order must not matter: hand the bundles over shuffled.
    std::swap(bundles[0], bundles[2]);
    auto merged = eval::merge_shard_bundles(bundles);
    ASSERT_EQ(merged.size(), 2u) << drivers.device;
    EXPECT_EQ(merged[0].label, "C");
    EXPECT_EQ(merged[1].label, "CDevil");

    const std::string tag(drivers.device);
    expect_same_result(merged[0].result, c_single, tag + "/C");
    expect_same_result(merged[1].result, d_single, tag + "/CDevil");
    EXPECT_EQ(eval::render_campaign_tables(merged[0].result,
                                           merged[1].result),
              eval::render_campaign_tables(c_single, d_single))
        << tag;
  }
}

TEST(ShardMergeTest, OneOfOneEqualsUnsharded) {
  auto cfg = busmouse_c_config();
  auto single = eval::run_driver_campaign(cfg);
  expect_same_result(shard_and_merge(cfg, 1), single, "busmouse 1/1");
}

TEST(ShardMergeTest, MoreShardsThanMutantsYieldsEmptyShards) {
  // A 3% sample of the busmouse corpus is a few dozen mutants; shard it
  // far wider than the sample so many slices are empty, and the merge must
  // still reassemble the exact unsharded result.
  auto cfg = busmouse_c_config(/*sample_percent=*/3);
  auto single = eval::run_driver_campaign(cfg);
  ASSERT_GT(single.sampled_mutants, 0u);
  const unsigned count = static_cast<unsigned>(single.sampled_mutants) + 5;

  std::vector<ShardBundle> bundles;
  size_t empty_shards = 0;
  for (unsigned i = 1; i <= count; ++i) {
    ShardBundle bundle;
    bundle.shard = ShardSpec{i, count};
    bundle.campaigns.push_back(
        eval::run_campaign_shard(cfg, "C", bundle.shard));
    if (bundle.campaigns.front().records.empty()) ++empty_shards;
    bundles.push_back(
        eval::parse_shard_bundle(eval::serialize_shard_bundle(bundle)));
  }
  EXPECT_GE(empty_shards, 5u);
  auto merged = eval::merge_shard_bundles(bundles);
  ASSERT_EQ(merged.size(), 1u);
  expect_same_result(merged.front().result, single, "busmouse oversharded");
}

TEST(ShardMergeTest, ShardArtifactsInvariantUnderThreadCount) {
  // 1 vs 4 worker threads inside the shard: the serialized artifact must
  // not change by a byte.
  for (unsigned shard_ix : {1u, 2u, 3u}) {
    ShardBundle one, four;
    one.shard = four.shard = ShardSpec{shard_ix, 3};
    one.campaigns.push_back(eval::run_campaign_shard(
        busmouse_c_config(100, /*threads=*/1), "C", one.shard));
    four.campaigns.push_back(eval::run_campaign_shard(
        busmouse_c_config(100, /*threads=*/4), "C", four.shard));
    EXPECT_EQ(eval::serialize_shard_bundle(one),
              eval::serialize_shard_bundle(four))
        << "shard " << shard_ix << "/3";
  }
}

TEST(ShardMergeTest, CrossShardDuplicatesAreReDeduped) {
  // Shard-local dedup cannot see across slices, so the shard-local dedup
  // counts must never exceed the global count the merge reconstructs —
  // and the merged count must equal the unsharded campaign's.
  auto cfg = busmouse_c_config();
  auto single = eval::run_driver_campaign(cfg);
  std::vector<ShardBundle> bundles;
  size_t local_deduped = 0;
  for (unsigned i = 1; i <= 3; ++i) {
    ShardBundle bundle;
    bundle.shard = ShardSpec{i, 3};
    bundle.campaigns.push_back(
        eval::run_campaign_shard(cfg, "C", bundle.shard));
    local_deduped += bundle.campaigns.front().deduped_mutants;
    bundles.push_back(std::move(bundle));
  }
  auto merged = eval::merge_shard_bundles(bundles);
  EXPECT_EQ(merged.front().result.deduped_mutants, single.deduped_mutants);
  EXPECT_LE(local_deduped, single.deduped_mutants);
}

// ---------------------------------------------------------------------------
// Merge rejections: anything that does not tile exactly one campaign.
// ---------------------------------------------------------------------------

void expect_merge_error(std::vector<ShardBundle> bundles,
                        const std::string& needle) {
  try {
    (void)eval::merge_shard_bundles(bundles);
    FAIL() << "merge should have rejected: " << needle;
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "actual error: " << e.what();
  }
}

/// Two-way sharding of the small busmouse C campaign, reused by the
/// rejection tests.
std::vector<ShardBundle> two_shards(const DriverCampaignConfig& cfg) {
  std::vector<ShardBundle> bundles;
  for (unsigned i = 1; i <= 2; ++i) {
    ShardBundle bundle;
    bundle.shard = ShardSpec{i, 2};
    bundle.campaigns.push_back(
        eval::run_campaign_shard(cfg, "C", bundle.shard));
    bundles.push_back(std::move(bundle));
  }
  return bundles;
}

TEST(ShardMergeTest, RejectsFingerprintMismatch) {
  auto cfg = busmouse_c_config();
  auto bundles = two_shards(cfg);
  // Same device, same shard shape — but a different campaign seed. The
  // fingerprint must catch it.
  auto other = cfg;
  other.seed += 1;
  ShardBundle rogue;
  rogue.shard = ShardSpec{2, 2};
  rogue.campaigns.push_back(eval::run_campaign_shard(other, "C", rogue.shard));
  bundles[1] = std::move(rogue);
  expect_merge_error(std::move(bundles), "fingerprint mismatch");
}

TEST(ShardMergeTest, RejectsDuplicateShard) {
  auto bundles = two_shards(busmouse_c_config());
  bundles.push_back(bundles[1]);  // 1/2, 2/2, 2/2
  expect_merge_error(std::move(bundles), "duplicate shard 2/2");
}

TEST(ShardMergeTest, RejectsMissingShard) {
  auto bundles = two_shards(busmouse_c_config());
  bundles.pop_back();  // only 1/2
  expect_merge_error(std::move(bundles), "missing shard 2/2");
}

TEST(ShardMergeTest, RejectsShardCountMismatch) {
  auto bundles = two_shards(busmouse_c_config());
  ShardBundle third;
  third.shard = ShardSpec{3, 3};
  third.campaigns.push_back(eval::run_campaign_shard(
      busmouse_c_config(), "C", third.shard));
  bundles.push_back(std::move(third));
  expect_merge_error(std::move(bundles), "shard count mismatch");
}

TEST(ShardMergeTest, RejectsDisagreeingCampaignLists) {
  auto cfg = busmouse_c_config();
  auto bundles = two_shards(cfg);
  // Shard 2 "forgot" one campaign.
  bundles[1].campaigns.clear();
  expect_merge_error(std::move(bundles), "carries 0 campaigns");

  bundles = two_shards(cfg);
  bundles[1].campaigns.front().label = "CDevil";
  expect_merge_error(std::move(bundles), "in that position");
}

TEST(ShardMergeTest, RejectsEmptyInput) {
  expect_merge_error({}, "no shard artifacts");
}

// ---------------------------------------------------------------------------
// Corrupt and truncated artifacts must be rejected at parse time with a
// diagnostic, never half-read.
// ---------------------------------------------------------------------------

void expect_parse_error(const std::string& text, const std::string& needle) {
  try {
    (void)eval::parse_shard_bundle(text);
    FAIL() << "parse should have rejected: " << needle;
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "actual error: " << e.what();
  }
}

TEST(ShardArtifactTest, SerializeParseRoundTripIsByteStable) {
  ShardBundle bundle;
  bundle.shard = ShardSpec{2, 3};
  bundle.campaigns.push_back(eval::run_campaign_shard(
      busmouse_c_config(), "C", bundle.shard));
  std::string text = eval::serialize_shard_bundle(bundle);
  EXPECT_EQ(eval::serialize_shard_bundle(eval::parse_shard_bundle(text)),
            text);
}

TEST(ShardArtifactTest, RejectsTruncatedAndCorruptArtifacts) {
  ShardBundle bundle;
  bundle.shard = ShardSpec{1, 2};
  bundle.campaigns.push_back(eval::run_campaign_shard(
      busmouse_c_config(), "C", bundle.shard));
  const std::string text = eval::serialize_shard_bundle(bundle);

  // Truncation at any of a few depths: always a parse diagnostic.
  expect_parse_error(text.substr(0, text.size() / 2), "JSON parse error");
  expect_parse_error(text.substr(0, 10), "JSON parse error");
  expect_parse_error("", "JSON parse error");
  expect_parse_error("hello", "not a shard artifact");
  expect_parse_error(R"({"format":"something-else","version":1})",
                     "format tag");
  expect_parse_error(R"({"format":"devil-repro-shard","version":99})",
                     "version 99");

  // A flipped outcome makes the stored tally disagree with the records.
  std::string tampered = text;
  size_t at = tampered.find("\"outcome\":\"boot\"");
  ASSERT_NE(at, std::string::npos);
  tampered.replace(at, 16, "\"outcome\":\"halt\"");
  expect_parse_error(tampered, "corrupt artifact?");

  // A missing required field is named.
  std::string renamed = text;
  at = renamed.find("\"entry\":");
  ASSERT_NE(at, std::string::npos);
  renamed.replace(at, 8, "\"entrX\":");
  expect_parse_error(renamed, "missing field 'entry'");

  // Dropping a record breaks the slice coverage.
  std::string shorter = text;
  at = shorter.find("{\"mutant\":");
  size_t end = shorter.find("},{\"mutant\":");
  ASSERT_NE(at, std::string::npos);
  ASSERT_NE(end, std::string::npos);
  shorter.erase(at, end + 2 - at);
  expect_parse_error(shorter, "truncated artifact?");
}

TEST(ShardArtifactTest, LoadReportsMissingFile) {
  try {
    (void)eval::load_shard_bundle("/nonexistent/shard.json");
    FAIL();
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("/nonexistent/shard.json"),
              std::string::npos);
  }
}

// --- atomic artifact writes ---------------------------------------------------
//
// save_shard_bundle writes FILE.tmp and renames it into place: a failed or
// interrupted save must never leave a partial FILE, and must never destroy
// a good artifact that was already there.

ShardBundle tiny_bundle() {
  ShardBundle bundle;
  bundle.shard = ShardSpec{1, 1};
  bundle.campaigns.push_back(eval::run_campaign_shard(
      busmouse_c_config(), "C", bundle.shard));
  return bundle;
}

TEST(ShardArtifactTest, SaveToUnwritablePathThrowsAndLeavesNothing) {
  const std::string path = "/devil-repro-no-such-dir/shard.json";
  try {
    eval::save_shard_bundle(path, tiny_bundle());
    FAIL() << "expected ArtifactWriteError";
  } catch (const eval::ArtifactWriteError& e) {
    EXPECT_NE(std::string(e.what()).find("cannot open for writing"),
              std::string::npos)
        << e.what();
  }
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST(ShardArtifactTest, SaveIsAtomicAndLeavesNoTemporary) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "devil_repro_atomic_save.json")
          .string();
  // A stale artifact at the target is replaced, not appended to.
  { std::ofstream(path) << "stale garbage\n"; }
  ShardBundle bundle = tiny_bundle();
  eval::save_shard_bundle(path, bundle);
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  ShardBundle back = eval::load_shard_bundle(path);
  EXPECT_EQ(eval::serialize_shard_bundle(back),
            eval::serialize_shard_bundle(bundle));
  std::remove(path.c_str());
}

}  // namespace
