// Tests for the MiniC lexer/preprocessor and parser.
#include <gtest/gtest.h>

#include "minic/lexer.h"
#include "minic/parser.h"

namespace {

using minic::Tok;

minic::LexOutput lex(const std::string& src,
                     support::DiagnosticEngine& diags,
                     const std::string& name = "t.c") {
  support::SourceBuffer buf(name, src);
  return minic::lex_unit(buf, diags);
}

minic::LexOutput lex_ok(const std::string& src) {
  support::DiagnosticEngine diags;
  auto out = lex(src, diags);
  EXPECT_FALSE(diags.has_errors()) << diags.render();
  return out;
}

std::optional<minic::Unit> parse(const std::string& src,
                                 support::DiagnosticEngine& diags) {
  auto out = lex(src, diags);
  if (diags.has_errors()) return std::nullopt;
  minic::Parser parser(std::move(out.tokens), diags);
  return parser.parse();
}

// ---------------------------------------------------------------------------
// Lexer / preprocessor
// ---------------------------------------------------------------------------

TEST(MiniCLexer, IntegerBases) {
  auto out = lex_ok("10 010 0x10");
  EXPECT_EQ(out.tokens[0].int_value, 10u);
  EXPECT_EQ(out.tokens[0].int_base, 10);
  EXPECT_EQ(out.tokens[1].int_value, 8u);  // octal!
  EXPECT_EQ(out.tokens[1].int_base, 8);
  EXPECT_EQ(out.tokens[2].int_value, 16u);
  EXPECT_EQ(out.tokens[2].int_base, 16);
}

TEST(MiniCLexer, IntegerSuffixesIgnored) {
  auto out = lex_ok("0x10u 5UL");
  EXPECT_EQ(out.tokens[0].int_value, 16u);
  EXPECT_EQ(out.tokens[1].int_value, 5u);
}

TEST(MiniCLexer, ObjectMacroExpansion) {
  auto out = lex_ok("#define PORT 0x1f0\noutb(v, PORT + 6);");
  bool found = false;
  for (const auto& t : out.tokens) {
    if (t.kind == Tok::kIntLit && t.int_value == 0x1f0) found = true;
    EXPECT_NE(t.text, "PORT");  // fully substituted
  }
  EXPECT_TRUE(found);
}

TEST(MiniCLexer, NestedMacros) {
  auto out = lex_ok("#define A 1\n#define B A + A\nint x = B;");
  int ones = 0;
  for (const auto& t : out.tokens) {
    if (t.kind == Tok::kIntLit && t.int_value == 1) ++ones;
  }
  EXPECT_EQ(ones, 2);
}

TEST(MiniCLexer, RecursiveMacroDiagnosed) {
  support::DiagnosticEngine diags;
  lex("#define A B\n#define B A\nint x = A;", diags);
  EXPECT_TRUE(diags.has_code("MC013"));
}

TEST(MiniCLexer, MacroUseLinesRecorded) {
  auto out = lex_ok("#define P 7\nint a = P;\nint b = P;\n");
  ASSERT_TRUE(out.macro_use_lines.count("P"));
  EXPECT_EQ(out.macro_use_lines.at("P"),
            (std::set<uint32_t>{2, 3}));
}

TEST(MiniCLexer, FileMacroExpandsToBufferName) {
  support::DiagnosticEngine diags;
  auto out = lex("cstring f = __FILE__;", diags, "busmouse.dil");
  bool found = false;
  for (const auto& t : out.tokens) {
    if (t.kind == Tok::kStringLit && t.text == "busmouse.dil") found = true;
  }
  EXPECT_TRUE(found);
}

TEST(MiniCLexer, MacroRedefinitionDiagnosed) {
  support::DiagnosticEngine diags;
  lex("#define A 1\n#define A 2\n", diags);
  EXPECT_TRUE(diags.has_code("MC016"));
}

TEST(MiniCLexer, OperatorsLexGreedily) {
  auto out = lex_ok("a <<= b >> c <= d < e");
  EXPECT_EQ(out.tokens[1].kind, Tok::kShlAssign);
  EXPECT_EQ(out.tokens[3].kind, Tok::kShr);
  EXPECT_EQ(out.tokens[5].kind, Tok::kLe);
  EXPECT_EQ(out.tokens[7].kind, Tok::kLt);
}

TEST(MiniCLexer, StringEscapes) {
  auto out = lex_ok(R"("a\nb\"c")");
  EXPECT_EQ(out.tokens[0].text, "a\nb\"c");
}

TEST(MiniCLexer, UseSiteLocationForMacroTokens) {
  auto out = lex_ok("#define P 0x10\n\n\nint x = P;");
  for (const auto& t : out.tokens) {
    if (t.kind == Tok::kIntLit && t.int_value == 0x10) {
      EXPECT_EQ(t.loc.line, 4u);  // reported at the use, like a C compiler
    }
  }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

TEST(MiniCParser, GlobalsAndArrays) {
  support::DiagnosticEngine diags;
  auto unit = parse("int x; u16 buf[256]; const int k = 3;", diags);
  ASSERT_TRUE(unit) << diags.render();
  ASSERT_EQ(unit->globals.size(), 3u);
  EXPECT_EQ(unit->globals[1].array_size, 256u);
  EXPECT_TRUE(unit->globals[2].is_const);
}

TEST(MiniCParser, StructDefinitionAndInit) {
  support::DiagnosticEngine diags;
  auto unit = parse(
      "struct S { cstring f; int t; u32 v; };"
      "const S x = { \"a\", 1, 2 };",
      diags);
  ASSERT_TRUE(unit) << diags.render();
  ASSERT_EQ(unit->structs.size(), 1u);
  EXPECT_EQ(unit->structs[0].fields.size(), 3u);
  EXPECT_EQ(unit->globals[0].init_list.size(), 3u);
}

TEST(MiniCParser, FunctionWithParams) {
  support::DiagnosticEngine diags;
  auto unit = parse("static inline u8 f(u32 port, int w) { return 0; }", diags);
  ASSERT_TRUE(unit) << diags.render();
  ASSERT_EQ(unit->functions.size(), 1u);
  EXPECT_EQ(unit->functions[0].params.size(), 2u);
}

TEST(MiniCParser, ControlFlowStatements) {
  support::DiagnosticEngine diags;
  auto unit = parse(
      "void f() {"
      "  int i;"
      "  for (i = 0; i < 10; i++) { continue; }"
      "  while (i > 0) { i = i - 1; break; }"
      "  do { i = i + 1; } while (i < 3);"
      "  if (i) { return; } else { return; }"
      "}",
      diags);
  ASSERT_TRUE(unit) << diags.render();
}

TEST(MiniCParser, SwitchWithFallthroughAndDefault) {
  support::DiagnosticEngine diags;
  auto unit = parse(
      "int f(int x) {"
      "  switch (x) {"
      "    case 1:"
      "    case 2: return 10;"
      "    default: break;"
      "  }"
      "  return 0;"
      "}",
      diags);
  ASSERT_TRUE(unit) << diags.render();
  // Find the switch statement and check its case structure.
  const auto& body = unit->functions[0].body->body;
  ASSERT_FALSE(body.empty());
  const auto& sw = *body[0];
  ASSERT_EQ(sw.kind, minic::StmtKind::kSwitch);
  ASSERT_EQ(sw.cases.size(), 3u);
  EXPECT_TRUE(sw.cases[0].body.empty());  // fallthrough
  EXPECT_TRUE(sw.cases[2].is_default);
}

TEST(MiniCParser, ExpressionPrecedence) {
  support::DiagnosticEngine diags;
  auto unit = parse("int g() { return 1 | 2 & 3 ^ 4 << 1; }", diags);
  ASSERT_TRUE(unit) << diags.render();
  // 1 | ((2 & 3) ^ (4 << 1)) — check the root is '|'.
  const auto& ret = *unit->functions[0].body->body[0];
  EXPECT_EQ(ret.expr[0]->op, minic::Tok::kPipe);
}

TEST(MiniCParser, TernaryAndCasts) {
  support::DiagnosticEngine diags;
  auto unit = parse("int g(int x) { return x ? (u8)x : (int)0; }", diags);
  ASSERT_TRUE(unit) << diags.render();
}

TEST(MiniCParser, CompoundAssignmentsAndUnary) {
  support::DiagnosticEngine diags;
  auto unit = parse(
      "void f() { int x; x = 0; x |= 1; x &= 2; x <<= 1; x >>= 1;"
      " x += 1; x -= 1; x ^= 3; x = -x; x = ~x; x = !x; }",
      diags);
  ASSERT_TRUE(unit) << diags.render();
}

TEST(MiniCParser, MemberAccessChains) {
  support::DiagnosticEngine diags;
  auto unit = parse(
      "struct S { int v; }; S g; int f() { return g.v; }", diags);
  ASSERT_TRUE(unit) << diags.render();
}

TEST(MiniCParser, IndexingParses) {
  support::DiagnosticEngine diags;
  auto unit = parse("u16 b[4]; int f(int i) { b[i] = b[i + 1]; return b[0]; }",
                    diags);
  ASSERT_TRUE(unit) << diags.render();
}

TEST(MiniCParser, BareStructNameAsType) {
  support::DiagnosticEngine diags;
  auto unit = parse(
      "struct Drive_t { int val; };"
      "Drive_t f(Drive_t v) { Drive_t w; w = v; return w; }",
      diags);
  ASSERT_TRUE(unit) << diags.render();
}

TEST(MiniCParser, SyntaxErrorReported) {
  support::DiagnosticEngine diags;
  auto unit = parse("int f() { return ; }", diags);
  EXPECT_TRUE(unit.has_value());  // `return ;` is fine
  diags.clear();
  unit = parse("int f() { +++ }", diags);
  EXPECT_FALSE(unit.has_value());
  EXPECT_TRUE(diags.has_errors());
}

}  // namespace
