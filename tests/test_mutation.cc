// Tests for the mutation engine (paper §3): literal/operator/identifier
// rules for both languages, region tagging, and site bookkeeping.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "mutation/c_mutator.h"
#include "mutation/devil_mutator.h"
#include "mutation/site.h"

namespace {

using mutation::Mutant;
using mutation::Site;
using mutation::SiteKind;

bool contains(const std::vector<std::string>& v, const std::string& s) {
  return std::find(v.begin(), v.end(), s) != v.end();
}

// ---- literal rules (§3.1) ----------------------------------------------------

TEST(LiteralMutation, TwoDigitDecimalMatchesPaperArithmetic) {
  // Paper: "given a 2-digit base-10 number, 50 mutants can be generated:
  // 2 for removing a digit, 30 for inserting a new digit, and 18 for
  // replacing a digit." We de-duplicate identical spellings and drop
  // value-equivalent results, so the count is bounded by 50 but close.
  auto muts = mutation::mutate_digit_string("", "50", "0123456789");
  EXPECT_LE(muts.size(), 50u);
  EXPECT_GE(muts.size(), 40u);
  EXPECT_TRUE(std::set<std::string>(muts.begin(), muts.end()).size() ==
              muts.size());  // unique
}

TEST(LiteralMutation, RemovalInsertionReplacement) {
  auto muts = mutation::mutate_digit_string("", "50", "0123456789");
  EXPECT_TRUE(contains(muts, "5"));    // removal
  EXPECT_TRUE(contains(muts, "0"));    // removal
  EXPECT_TRUE(contains(muts, "550"));  // insertion
  EXPECT_TRUE(contains(muts, "501"));  // insertion
  EXPECT_TRUE(contains(muts, "90"));   // replacement
  EXPECT_FALSE(contains(muts, "50"));  // never the original
}

TEST(LiteralMutation, HexKeepsPrefixAndClass) {
  auto muts = mutation::mutate_int_literal("0x1f0");
  for (const auto& m : muts) {
    if (m[0] == 'O') continue;  // the O-typo variant
    EXPECT_EQ(m.substr(0, 2), "0x") << m;
  }
  EXPECT_TRUE(contains(muts, "0x1f"));
  EXPECT_TRUE(contains(muts, "0x1f00"));
  EXPECT_TRUE(contains(muts, "0x1f7"));
}

TEST(LiteralMutation, CapitalOTypoVariant) {
  // The paper's own example: 0xfffff vs Oxffffff.
  auto muts = mutation::mutate_int_literal("0xfffff");
  EXPECT_TRUE(contains(muts, "Oxfffff"));
}

TEST(LiteralMutation, ValueEquivalentMutantsDropped) {
  // "0" -> "00" parses to the same value and is not a semantic mutant.
  auto muts = mutation::mutate_int_literal("0");
  EXPECT_FALSE(contains(muts, "00"));
  for (const auto& m : muts) EXPECT_NE(m, "0");
}

TEST(LiteralMutation, OctalStaysValid) {
  auto muts = mutation::mutate_int_literal("010");
  for (const auto& m : muts) {
    if (m[0] == 'O') continue;
    EXPECT_EQ(m.find('8'), std::string::npos) << m;
    EXPECT_EQ(m.find('9'), std::string::npos) << m;
  }
}

TEST(LiteralMutation, SuffixPreserved) {
  auto muts = mutation::mutate_int_literal("0x10u");
  for (const auto& m : muts) EXPECT_EQ(m.back(), 'u') << m;
}

TEST(LiteralMutation, BitStringClassRestricted) {
  auto mask = mutation::mutate_bit_string("1.0", "01*.");
  EXPECT_TRUE(contains(mask, "'1.*'"));   // replacement within mask class
  EXPECT_TRUE(contains(mask, "'10'"));    // removal (wrong length -> caught)
  auto pattern = mutation::mutate_bit_string("10", "01");
  for (const auto& m : pattern) {
    EXPECT_EQ(m.find('*'), std::string::npos) << m;
    EXPECT_EQ(m.find("._"), std::string::npos) << m;
  }
}

// ---- operator rules (Table 1) ---------------------------------------------------

TEST(OperatorRules, TableCoversBitManipulationConfusions) {
  const auto& rules = mutation::c_operator_rules();
  auto find = [&](const std::string& op) -> const mutation::OperatorRule* {
    for (const auto& r : rules) {
      if (r.op == op) return &r;
    }
    return nullptr;
  };
  ASSERT_NE(find("&"), nullptr);
  EXPECT_TRUE(contains(find("&")->mutants, "&&"));
  EXPECT_TRUE(contains(find("&")->mutants, "|"));
  EXPECT_TRUE(contains(find("<<")->mutants, ">>"));
  EXPECT_TRUE(contains(find("~")->mutants, "!"));
  EXPECT_TRUE(contains(find("+")->mutants, "-"));
}

TEST(OperatorRules, MutantsStayInEquivalentClass) {
  for (const auto& r : mutation::c_operator_rules()) {
    for (const auto& m : r.mutants) EXPECT_NE(m, r.op);
  }
}

// ---- C site scanning ----------------------------------------------------------------

TEST(CScan, OnlyTaggedRegionsScanned) {
  mutation::CScanOptions opt;
  std::string src =
      "int outside = 0x99;\n"
      "/* MUT_BEGIN */\n"
      "int inside = 0x42;\n"
      "/* MUT_END */\n"
      "int after = 0x77;\n";
  auto sites = mutation::scan_c_sites(src, opt);
  ASSERT_EQ(sites.size(), 1u);
  EXPECT_EQ(sites[0].original, "0x42");
  EXPECT_EQ(sites[0].line, 3u);
}

TEST(CScan, WholeFileOption) {
  mutation::CScanOptions opt;
  opt.whole_file = true;
  auto sites = mutation::scan_c_sites("int a = 1; int b = 2;", opt);
  EXPECT_EQ(sites.size(), 2u);
}

TEST(CScan, DefineBodySitesCarryMacroName) {
  mutation::CScanOptions opt;
  opt.whole_file = true;
  auto sites = mutation::scan_c_sites("#define PORT 0x1f0\nint x = 3;", opt);
  ASSERT_EQ(sites.size(), 2u);
  EXPECT_EQ(sites[0].define_name, "PORT");
  EXPECT_EQ(sites[1].define_name, "");
}

TEST(CScan, OperatorsDetectedWithoutSplittingLongerOnes) {
  mutation::CScanOptions opt;
  opt.whole_file = true;
  auto sites = mutation::scan_c_sites("void f() { int a; a <<= 1; a = a << 2; }",
                                      opt);
  std::vector<std::string> ops;
  for (const auto& s : sites) {
    if (s.kind == SiteKind::kOperator) ops.push_back(s.original);
  }
  EXPECT_TRUE(contains(ops, "<<="));
  EXPECT_TRUE(contains(ops, "<<"));
  for (const auto& o : ops) EXPECT_NE(o, "<");  // never half of <<
}

TEST(CScan, PlusPlusNotMutated) {
  mutation::CScanOptions opt;
  opt.whole_file = true;
  auto sites = mutation::scan_c_sites("void f() { int i; i++; }", opt);
  for (const auto& s : sites) EXPECT_NE(s.original, "+");
}

TEST(CScan, StringContentsNotMutated) {
  mutation::CScanOptions opt;
  opt.whole_file = true;
  auto sites = mutation::scan_c_sites("cstring s = \"panic 0x10 + 5\";", opt);
  EXPECT_TRUE(sites.empty());
}

TEST(CScan, DeclarationIdentifiersSkipped) {
  mutation::CScanOptions opt;
  opt.whole_file = true;
  opt.classes.add("stat", "identifier");
  opt.classes.add("timeout", "identifier");
  auto sites = mutation::scan_c_sites("void f() { u8 stat; stat = 1; }", opt);
  std::vector<std::string> idents;
  for (const auto& s : sites) {
    if (s.kind == SiteKind::kIdentifier) idents.push_back(s.original);
  }
  // Only the use, not the declaration.
  EXPECT_EQ(idents.size(), 1u);
}

TEST(CScan, SiteOffsetsSpliceCleanly) {
  mutation::CScanOptions opt;
  opt.whole_file = true;
  std::string src = "int x = 0x1f0;";
  auto sites = mutation::scan_c_sites(src, opt);
  ASSERT_EQ(sites.size(), 1u);
  Mutant m{0, "0x3f6"};
  EXPECT_EQ(mutation::apply_mutant(src, sites, m), "int x = 0x3f6;");
}

// ---- identifier classes ----------------------------------------------------------------

TEST(Classes, CDriverClassIsAnyDefinedIdentifier) {
  // §3.3 for plain C: macros, objects AND functions are one confusion
  // class; only builtins/keywords stay out.
  std::string src =
      "#define PORT 0x10\n"
      "int count;\n"
      "void helper() { outb(1, PORT); }\n"
      "void f() { count = 2; helper(); }\n";
  auto classes = mutation::classes_for_c_driver(src);
  EXPECT_FALSE(classes.candidates("PORT").empty());
  EXPECT_FALSE(classes.candidates("count").empty());
  EXPECT_FALSE(classes.candidates("helper").empty());  // functions included
  EXPECT_TRUE(classes.candidates("outb").empty());     // builtin: excluded
  // Numeric literals never leak pseudo-identifiers like "x10".
  EXPECT_TRUE(classes.candidates("x10").empty());
}

TEST(Classes, CandidatesExcludeSelf) {
  mutation::IdentifierClasses classes;
  classes.add("A", "x");
  classes.add("B", "x");
  classes.add("C", "y");
  auto cands = classes.candidates("A");
  EXPECT_TRUE(contains(cands, "B"));
  EXPECT_FALSE(contains(cands, "A"));
  EXPECT_FALSE(contains(cands, "C"));  // other class
}

TEST(Classes, CDevilClassesSeparateSemanticRoles) {
  std::string stubs =
      "struct Drive_t { cstring filename; int type; u32 val; };\n"
      "const Drive_t MASTER = { __FILE__, 1, 0x0 };\n"
      "const Drive_t SLAVE = { __FILE__, 1, 0x1 };\n"
      "static inline Drive_t get_Drive() { Drive_t v; return v; }\n"
      "static inline void set_Drive(Drive_t v) { }\n"
      "static inline u8 mk_Count(u8 v) { return v; }\n"
      "static inline u8 get_Status() { return 0; }\n"
      "static inline void set_Command(u8 v) { }\n";
  std::string driver = "#define LIMIT 3\nint f() { return LIMIT; }\n";
  auto classes = mutation::classes_for_cdevil_driver(stubs, driver);
  // get functions only swap with get functions.
  auto get_cands = classes.candidates("get_Drive");
  EXPECT_TRUE(contains(get_cands, "get_Status"));
  EXPECT_FALSE(contains(get_cands, "set_Drive"));
  // values swap with values.
  auto val_cands = classes.candidates("MASTER");
  EXPECT_TRUE(contains(val_cands, "SLAVE"));
  EXPECT_FALSE(contains(val_cands, "get_Drive"));
  // driver macros are in the general class.
  EXPECT_TRUE(classes.class_of.count("LIMIT"));
}

// ---- C mutant generation ------------------------------------------------------------------

TEST(CMutants, GeneratedPerSiteKind) {
  mutation::CScanOptions opt;
  opt.whole_file = true;
  opt.classes.add("A", "identifier");
  opt.classes.add("B", "identifier");
  std::string src = "int f() { int A; int B; A = B & 0x3; return A; }";
  auto sites = mutation::scan_c_sites(src, opt);
  auto muts = mutation::generate_c_mutants(sites, opt.classes);
  bool has_ident = false, has_op = false, has_lit = false;
  for (const auto& m : muts) {
    switch (sites[m.site].kind) {
      case SiteKind::kIdentifier: has_ident = true; break;
      case SiteKind::kOperator: has_op = true; break;
      case SiteKind::kLiteral: has_lit = true; break;
    }
  }
  EXPECT_TRUE(has_ident);
  EXPECT_TRUE(has_op);
  EXPECT_TRUE(has_lit);
}

// ---- Devil mutation (§3.2) -------------------------------------------------------------------

mutation::DevilNames busmouse_names() {
  mutation::DevilNames names;
  names.ports = {"base"};
  names.registers = {"sig_reg", "cr", "interrupt_reg", "index_reg",
                     "x_low", "x_high", "y_low", "y_high"};
  names.variables = {"signature", "config", "interrupt", "index",
                     "dx", "dy", "buttons"};
  return names;
}

TEST(DevilScan, FindsLiteralOperatorIdentifierSites) {
  std::string spec =
      "device d (base : bit[8] port @ {0..3}) {\n"
      "  register x_low = read base @ 0, pre {index = 0},"
      " mask '****....' : bit[8];\n"
      "  variable dx = x_high[3..0] # x_low[3..0] : signed int(8);\n"
      "}\n";
  auto sites = mutation::scan_devil_sites(spec, busmouse_names());
  bool lit = false, op = false, ident = false;
  for (const auto& s : sites) {
    if (s.kind == SiteKind::kLiteral) lit = true;
    if (s.kind == SiteKind::kOperator) op = true;
    if (s.kind == SiteKind::kIdentifier) ident = true;
  }
  EXPECT_TRUE(lit);
  EXPECT_TRUE(op);    // the '..' in {0..3}
  EXPECT_TRUE(ident); // x_high / x_low / index uses
}

TEST(DevilScan, DeclarationSitesExcluded) {
  std::string spec =
      "device d (base : bit[8] port @ {0..0}) {\n"
      "  register sig_reg = base @ 0 : bit[8];\n"
      "  variable signature = sig_reg : int(8);\n"
      "}\n";
  auto sites = mutation::scan_devil_sites(spec, busmouse_names());
  for (const auto& s : sites) {
    if (s.kind != SiteKind::kIdentifier) continue;
    // The only identifier *uses* are `base` (after =) and `sig_reg` (in the
    // variable definition); declaration occurrences must not appear.
    EXPECT_TRUE(s.original == "base" || s.original == "sig_reg") << s.original;
  }
}

TEST(DevilScan, MaskAndPatternHaveDifferentCharsets) {
  std::string spec =
      "device d (base : bit[8] port @ {0..0}) {\n"
      "  register cr = write base @ 0, mask '1001000.' : bit[8];\n"
      "  variable config = cr[0] : { CONFIGURATION => '1',"
      " DEFAULT_MODE => '0' };\n"
      "}\n";
  auto sites = mutation::scan_devil_sites(spec, busmouse_names());
  bool saw_mask = false, saw_pattern = false;
  for (const auto& s : sites) {
    if (s.original == "1001000.") {
      EXPECT_EQ(s.charset, "01*.");
      saw_mask = true;
    }
    if (s.original == "1" && s.kind == SiteKind::kLiteral &&
        !s.charset.empty()) {
      EXPECT_EQ(s.charset, "01");
      saw_pattern = true;
    }
  }
  EXPECT_TRUE(saw_mask);
  EXPECT_TRUE(saw_pattern);
}

TEST(DevilMutants, ArrowOperatorsSwapAmongThemselves) {
  std::string spec =
      "device d (base : bit[8] port @ {0..0}) {\n"
      "  register r = base @ 0, mask '*******.' : bit[8];\n"
      "  variable v = r[0] : { A <=> '1', B <=> '0' };\n"
      "}\n";
  auto names = busmouse_names();
  auto sites = mutation::scan_devil_sites(spec, names);
  auto muts = mutation::generate_devil_mutants(sites, names);
  std::set<std::string> arrow_repls;
  for (const auto& m : muts) {
    if (sites[m.site].original == "<=>") arrow_repls.insert(m.replacement);
  }
  EXPECT_EQ(arrow_repls, (std::set<std::string>{"<=", "=>"}));
}

TEST(DevilMutants, RangeCommaSwapOnlyInRangeContexts) {
  std::string spec =
      "device d (base : bit[8] port @ {0..1}) {\n"
      "  register r = base @ 0, mask '******..' : bit[8];\n"
      "  register s = base @ 1 : bit[8];\n"
      "  variable v = r[1..0] : int{0,2..3};\n"
      "  variable w = s : int(8);\n"
      "}\n";
  auto names = busmouse_names();
  auto sites = mutation::scan_devil_sites(spec, names);
  int range_ops = 0;
  for (const auto& s : sites) {
    if (s.kind != SiteKind::kOperator) continue;
    if (s.original == "," || s.original == "..") ++range_ops;
  }
  // {0..1} port range, int-set "0,2..3" (one comma + one dotdot).
  // The '..' in r[1..0] and attribute commas are NOT sites.
  EXPECT_EQ(range_ops, 3);
}

TEST(DevilMutants, IdentifierReplacementsStayInClass) {
  std::string spec =
      "device d (base : bit[8] port @ {0..0}) {\n"
      "  register x_low = read base @ 0 : bit[8];\n"
      "  variable dx = x_low : int(8);\n"
      "}\n";
  auto names = busmouse_names();
  auto sites = mutation::scan_devil_sites(spec, names);
  auto muts = mutation::generate_devil_mutants(sites, names);
  for (const auto& m : muts) {
    if (sites[m.site].original == "x_low") {
      // Replacement must be another *register*, never a variable or port.
      EXPECT_TRUE(std::find(names.registers.begin(), names.registers.end(),
                            m.replacement) != names.registers.end())
          << m.replacement;
    }
  }
}

TEST(DevilMutants, ApplySpliceRoundTrip) {
  std::string spec = "device d (base : bit[8] port @ {0..3}) {\n}";
  auto names = busmouse_names();
  auto sites = mutation::scan_devil_sites(spec, names);
  ASSERT_FALSE(sites.empty());
  // Mutate the '3' in the range.
  for (size_t i = 0; i < sites.size(); ++i) {
    if (sites[i].original == "3") {
      Mutant m{i, "7"};
      std::string out = mutation::apply_mutant(spec, sites, m);
      EXPECT_NE(out.find("{0..7}"), std::string::npos);
      return;
    }
  }
  FAIL() << "no literal site for '3'";
}

}  // namespace
