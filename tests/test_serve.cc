// Campaign-service suite (src/serve): wire frames and envelopes, the
// CampaignSpec JSON round trip and fingerprint guarantees behind the result
// cache, the dispatcher's timeout/retry path, and a live CampaignService on
// a unix socket exercised the way CI does —
//
//  - served report byte-identical to the single-process `mutation_hunt`
//    run (minus its two header lines), including after a worker kill forces
//    the retry path;
//  - an identical re-request answered from the fingerprint cache without
//    spawning a single worker (asserted via the service Metrics counters:
//    zero mutant boots happen in this process or any child);
//  - concurrent clients each getting their own correct answer;
//  - malformed and oversized requests answered with an error response while
//    the daemon keeps serving.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "eval/campaign_spec.h"
#include "serve/campaign_service.h"
#include "serve/dispatcher.h"
#include "serve/wire.h"
#include "support/json_io.h"
#include "support/metrics.h"

#ifndef MUTATION_HUNT_BIN
#error "MUTATION_HUNT_BIN must point at the mutation_hunt binary"
#endif

namespace {

// --- wire frame helpers ------------------------------------------------------

struct SocketPair {
  int a = -1;
  int b = -1;
  SocketPair() {
    int fds[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a = fds[0];
    b = fds[1];
  }
  ~SocketPair() {
    if (a >= 0) ::close(a);
    if (b >= 0) ::close(b);
  }
};

TEST(WireFrame, RoundTripsPayloadBytes) {
  SocketPair sp;
  const std::string payload = "{\"x\":1}\n\0binary\xff ok";
  serve::write_frame(sp.a, payload);
  std::string got;
  ASSERT_TRUE(serve::read_frame(sp.b, 1 << 20, &got));
  EXPECT_EQ(got, payload);
}

TEST(WireFrame, CleanEofBeforeLengthReturnsFalse) {
  SocketPair sp;
  ::close(sp.a);
  sp.a = -1;
  std::string got;
  EXPECT_FALSE(serve::read_frame(sp.b, 1 << 20, &got));
}

TEST(WireFrame, MidFrameEofThrows) {
  SocketPair sp;
  // Length prefix promising 100 bytes, then only 3 arrive before EOF.
  const unsigned char prefix[4] = {0, 0, 0, 100};
  ASSERT_EQ(::send(sp.a, prefix, 4, 0), 4);
  ASSERT_EQ(::send(sp.a, "abc", 3, 0), 3);
  ::close(sp.a);
  sp.a = -1;
  std::string got;
  EXPECT_THROW((void)serve::read_frame(sp.b, 1 << 20, &got),
               serve::WireError);
}

TEST(WireFrame, OversizedLengthRejectedBeforeAllocation) {
  SocketPair sp;
  const unsigned char prefix[4] = {0xff, 0xff, 0xff, 0xff};
  ASSERT_EQ(::send(sp.a, prefix, 4, 0), 4);
  std::string got;
  EXPECT_THROW((void)serve::read_frame(sp.b, 1 << 20, &got),
               serve::WireError);
}

TEST(WireListener, RejectsHostFormForListening) {
  EXPECT_THROW((void)serve::Listener::bind_and_listen("example.org:9000"),
               serve::WireError);
}

// --- envelopes ---------------------------------------------------------------

serve::CampaignRequest sample_request() {
  serve::CampaignRequest req;
  req.spec.kind = eval::CampaignKind::kFault;
  req.spec.device = "busmouse-irq";
  req.spec.seed = 42;
  req.spec.fault_triggers = {0, 2, 7};
  req.workers = 5;
  req.use_cache = false;
  req.kill_shard = 2;
  return req;
}

TEST(WireEnvelope, RequestRoundTripPreservesEveryField) {
  serve::CampaignRequest req = sample_request();
  serve::CampaignRequest back =
      serve::parse_campaign_request(serve::serialize_campaign_request(req));
  EXPECT_EQ(back, req);
  // Byte-stable: the codec is the strict json_io writer, so serializing
  // twice is the identical string (the cache key contract depends on it).
  EXPECT_EQ(serve::serialize_campaign_request(req),
            serve::serialize_campaign_request(back));
}

TEST(WireEnvelope, ResponseRoundTripPreservesEveryField) {
  serve::CampaignResponse resp;
  resp.ok = true;
  resp.fingerprint = "deadbeef";
  resp.cache_hit = true;
  resp.workers_spawned = 7;
  resp.worker_retries = 3;
  resp.report = "line one\nline two\n";
  serve::CampaignResponse back =
      serve::parse_campaign_response(serve::serialize_campaign_response(resp));
  EXPECT_EQ(back, resp);
}

TEST(WireEnvelope, GarbageJsonRejected) {
  EXPECT_THROW((void)serve::parse_campaign_request("not json at all"),
               serve::WireError);
  EXPECT_THROW((void)serve::parse_campaign_response("{\"trailing\""),
               serve::WireError);
}

TEST(WireEnvelope, MissingAndUnknownFieldsRejected) {
  EXPECT_THROW((void)serve::parse_campaign_request("{}"), serve::WireError);
  // Add a field the schema does not know: strict parsing must refuse it
  // rather than silently ignore a typo'd knob.
  support::JsonValue v = support::parse_json(
      serve::serialize_campaign_request(sample_request()));
  v.set("surprise", true);
  EXPECT_THROW((void)serve::parse_campaign_request(support::to_json(v)),
               serve::WireError);
}

TEST(WireEnvelope, WrongFormatTagAndVersionRejected) {
  support::JsonValue v = support::parse_json(
      serve::serialize_campaign_request(sample_request()));
  support::JsonValue wrong = support::JsonValue::object();
  for (const auto& [key, value] : v.members()) {
    if (key == "format") {
      wrong.set(key, support::JsonValue("not-a-campaign"));
    } else if (key == "version") {
      wrong.set(key, support::JsonValue(int64_t{99}));
    } else {
      wrong.set(key, value);
    }
  }
  EXPECT_THROW((void)serve::parse_campaign_request(support::to_json(wrong)),
               serve::WireError);
}

// --- CampaignSpec round trip + fingerprint -----------------------------------

TEST(CampaignSpecJson, RoundTripReproducesNonDefaultSpec) {
  eval::CampaignSpec spec;
  spec.kind = eval::CampaignKind::kFault;
  spec.device = "busmouse";
  spec.engine = minic::ExecEngine::kTreeWalker;
  spec.seed = 7;
  spec.sample_percent = 33;
  spec.step_budget = 123456;
  spec.dedup = false;
  spec.prefix_cache = false;
  spec.bytecode_patch = false;
  spec.flight_recorder = true;
  spec.watchdog_ms = 250;
  spec.threads = 4;
  spec.fault_triggers = {1, 5};
  spec.fault_sample_percent = 50;
  spec.survivor_samples = 3;

  support::JsonValue v = eval::campaign_spec_to_json(spec);
  eval::CampaignSpec back = eval::campaign_spec_from_json(v, "round trip");
  EXPECT_EQ(back, spec);
  EXPECT_EQ(support::to_json(eval::campaign_spec_to_json(back)),
            support::to_json(v));
}

TEST(CampaignSpecJson, UnknownFieldRejected) {
  support::JsonValue v = eval::campaign_spec_to_json(eval::CampaignSpec{});
  v.set("surprise", int64_t{1});
  EXPECT_THROW((void)eval::campaign_spec_from_json(v, "strict"),
               std::runtime_error);
}

TEST(CampaignSpecFingerprint, StableAcrossCallsAndThreadCounts) {
  eval::CampaignSpec spec;
  spec.device = "busmouse";
  const std::string fp = eval::campaign_spec_fingerprint(spec);
  EXPECT_EQ(fp.size(), 32u) << "128-bit hex digest";
  EXPECT_EQ(eval::campaign_spec_fingerprint(spec), fp);

  // Thread count is explicitly not fingerprinted: reports are thread-count
  // invariant, so a cache hit across different --threads is correct.
  eval::CampaignSpec threaded = spec;
  threaded.threads = 8;
  EXPECT_EQ(eval::campaign_spec_fingerprint(threaded), fp);
}

TEST(CampaignSpecFingerprint, MovesWithReportChangingKnobs) {
  eval::CampaignSpec spec;
  spec.device = "busmouse";
  const std::string fp = eval::campaign_spec_fingerprint(spec);

  eval::CampaignSpec reseeded = spec;
  reseeded.seed = 999;
  EXPECT_NE(eval::campaign_spec_fingerprint(reseeded), fp);

  eval::CampaignSpec other_device = spec;
  other_device.device = "busmouse-irq";
  EXPECT_NE(eval::campaign_spec_fingerprint(other_device), fp);

  eval::CampaignSpec faults = spec;
  faults.kind = eval::CampaignKind::kFault;
  EXPECT_NE(eval::campaign_spec_fingerprint(faults), fp);
}

// --- dispatcher fault tolerance ----------------------------------------------

TEST(Dispatcher, TimeoutKillsWorkerAndFailsWithShardDiagnostic) {
  // A worker that sleeps forever must be killed at its deadline and, with a
  // zero retry budget, surface a diagnostic naming the shard and the log.
  const std::string dir = ::testing::TempDir() + "serve-timeout";
  std::string script = dir + "/sleepy-worker.sh";
  ASSERT_EQ(std::system(("mkdir -p " + dir).c_str()), 0);
  {
    std::FILE* f = std::fopen(script.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("#!/bin/sh\nsleep 600\n", f);
    std::fclose(f);
  }
  ASSERT_EQ(std::system(("chmod +x " + script).c_str()), 0);

  serve::DispatcherConfig cfg;
  cfg.worker_binary = script;
  cfg.scratch_dir = dir;
  cfg.workers = 1;
  cfg.worker_retries = 0;
  cfg.worker_timeout_ms = 200;
  cfg.job_tag = "sleepy";
  eval::CampaignSpec spec;
  spec.device = "busmouse";
  try {
    (void)serve::dispatch_campaign(spec, cfg);
    FAIL() << "a wedged worker must not dispatch successfully";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("dispatch [sleepy]"), std::string::npos) << what;
    EXPECT_NE(what.find("shard 1/1"), std::string::npos) << what;
    EXPECT_NE(what.find("timed out"), std::string::npos) << what;
    EXPECT_NE(what.find("worker log"), std::string::npos) << what;
  }
}

// --- live service ------------------------------------------------------------

/// Connects, sends one request, reads back the answer.
serve::CampaignResponse dispatch_to(const std::string& endpoint,
                                    const serve::CampaignRequest& req) {
  int fd = serve::connect_endpoint(endpoint);
  serve::write_frame(fd, serve::serialize_campaign_request(req));
  std::string payload;
  bool got = serve::read_frame(fd, 256u << 20, &payload);
  ::close(fd);
  if (!got) throw serve::WireError("daemon closed without a response");
  return serve::parse_campaign_response(payload);
}

/// One running daemon on a unix socket under TempDir, with the real
/// mutation_hunt binary as shard worker. `tag` keeps socket paths unique
/// across tests in the suite.
struct LiveService {
  serve::CampaignService service;

  explicit LiveService(const std::string& tag, unsigned workers = 2)
      : service(config_for(tag, workers)) {
    service.start();
  }

  static serve::ServiceConfig config_for(const std::string& tag,
                                         unsigned workers) {
    const std::string dir = ::testing::TempDir() + "serve-" + tag;
    if (std::system(("mkdir -p " + dir).c_str()) != 0) {
      throw std::runtime_error("cannot create scratch dir " + dir);
    }
    serve::ServiceConfig cfg;
    cfg.listen_target = dir + "/sock";
    cfg.dispatch.worker_binary = MUTATION_HUNT_BIN;
    cfg.dispatch.scratch_dir = dir;
    cfg.dispatch.workers = workers;
    return cfg;
  }
};

serve::CampaignRequest busmouse_request() {
  serve::CampaignRequest req;
  req.spec.device = "busmouse";
  return req;
}

/// stdout of the single-process run minus its two header lines — the exact
/// `mutation_hunt ... | tail -n +3` convention the CI smoke job cmp's.
std::string single_process_report(const std::string& flags) {
  std::string cmd =
      std::string(MUTATION_HUNT_BIN) + " " + flags + " 2>/dev/null";
  std::FILE* pipe = ::popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << cmd;
  std::string out;
  char buf[4096];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, pipe)) > 0) out.append(buf, n);
  EXPECT_EQ(::pclose(pipe), 0) << cmd;
  size_t first = out.find('\n');
  EXPECT_NE(first, std::string::npos) << "missing header: " << out;
  size_t second = out.find('\n', first + 1);
  EXPECT_NE(second, std::string::npos) << "missing blank line: " << out;
  return out.substr(second + 1);
}

TEST(CampaignService, ServedReportByteIdenticalToSingleProcessRun) {
  LiveService live("byteident");
  serve::CampaignResponse resp =
      dispatch_to(live.service.endpoint(), busmouse_request());
  ASSERT_TRUE(resp.ok) << resp.error;
  EXPECT_FALSE(resp.cache_hit);
  EXPECT_EQ(resp.workers_spawned, 2u);
  EXPECT_EQ(resp.worker_retries, 0u);
  EXPECT_EQ(resp.report, single_process_report("--device busmouse"));
}

TEST(CampaignService, CacheHitReplaysByteIdenticalWithZeroWorkers) {
  support::Metrics::reset();
  support::Metrics::set_enabled(true);
  {
    LiveService live("cachehit");
    serve::CampaignResponse first =
        dispatch_to(live.service.endpoint(), busmouse_request());
    ASSERT_TRUE(first.ok) << first.error;
    ASSERT_FALSE(first.cache_hit);
    const support::MetricsSnapshot after_first = support::Metrics::snapshot();

    serve::CampaignResponse replay =
        dispatch_to(live.service.endpoint(), busmouse_request());
    ASSERT_TRUE(replay.ok) << replay.error;
    EXPECT_TRUE(replay.cache_hit);
    EXPECT_EQ(replay.report, first.report);
    EXPECT_EQ(replay.fingerprint, first.fingerprint);
    EXPECT_EQ(replay.workers_spawned, 0u);

    // The counters prove the replay ran nothing: no worker spawned, no job
    // dispatched, not one mutant booted in this process — only the cache
    // hit ticked.
    const support::MetricsSnapshot after_replay = support::Metrics::snapshot();
    EXPECT_EQ(after_replay.service_cache_hits,
              after_first.service_cache_hits + 1);
    EXPECT_EQ(after_replay.service_jobs_dispatched,
              after_first.service_jobs_dispatched);
    EXPECT_EQ(after_replay.service_workers_spawned,
              after_first.service_workers_spawned);
    const auto& boots =
        after_replay.stages[static_cast<size_t>(support::Stage::kBoot)];
    const auto& boots_before =
        after_first.stages[static_cast<size_t>(support::Stage::kBoot)];
    EXPECT_EQ(boots.count(), boots_before.count());
  }
  support::Metrics::set_enabled(false);
  support::Metrics::reset();
}

TEST(CampaignService, WorkerKillForcesRetryAndReportStaysByteIdentical) {
  LiveService live("killshard");
  serve::CampaignResponse clean =
      dispatch_to(live.service.endpoint(), busmouse_request());
  ASSERT_TRUE(clean.ok) << clean.error;

  serve::CampaignRequest killer = busmouse_request();
  killer.use_cache = false;  // force a real re-run against the cached result
  killer.kill_shard = 1;
  serve::CampaignResponse retried =
      dispatch_to(live.service.endpoint(), killer);
  ASSERT_TRUE(retried.ok) << retried.error;
  EXPECT_FALSE(retried.cache_hit);
  EXPECT_GE(retried.worker_retries, 1u);
  EXPECT_GT(retried.workers_spawned, 2u);
  EXPECT_EQ(retried.report, clean.report);
}

TEST(CampaignService, ConcurrentClientsEachGetTheirOwnAnswer) {
  LiveService live("concurrent");
  serve::CampaignRequest a = busmouse_request();
  serve::CampaignRequest b = busmouse_request();
  b.spec.seed = 31337;  // distinct fingerprint: two genuinely queued jobs

  serve::CampaignResponse resp_a, resp_b;
  std::thread ta([&] { resp_a = dispatch_to(live.service.endpoint(), a); });
  std::thread tb([&] { resp_b = dispatch_to(live.service.endpoint(), b); });
  ta.join();
  tb.join();

  ASSERT_TRUE(resp_a.ok) << resp_a.error;
  ASSERT_TRUE(resp_b.ok) << resp_b.error;
  EXPECT_NE(resp_a.fingerprint, resp_b.fingerprint);
  // Same full-enumeration busmouse corpus, different seed: the sampler
  // never engages, so the reports agree while the fingerprints do not.
  EXPECT_EQ(resp_a.report, resp_b.report);

  // Both answers must match what a fresh request sees (and at least one of
  // the two is now a cache hit).
  serve::CampaignResponse again = dispatch_to(live.service.endpoint(), a);
  ASSERT_TRUE(again.ok) << again.error;
  EXPECT_TRUE(again.cache_hit);
  EXPECT_EQ(again.report, resp_a.report);
}

TEST(CampaignService, MalformedAndOversizedRequestsAnsweredNotFatal) {
  LiveService live("malformed");

  // Valid frame, junk payload: strict envelope parsing answers with an
  // error response instead of killing the daemon.
  {
    int fd = serve::connect_endpoint(live.service.endpoint());
    serve::write_frame(fd, "{\"junk\":true}");
    std::string payload;
    ASSERT_TRUE(serve::read_frame(fd, 1 << 20, &payload));
    ::close(fd);
    serve::CampaignResponse resp = serve::parse_campaign_response(payload);
    EXPECT_FALSE(resp.ok);
    EXPECT_NE(resp.error.find("format"), std::string::npos) << resp.error;
  }

  // Garbage length prefix far past max_request_bytes: rejected before any
  // allocation, still answered with an error response.
  {
    int fd = serve::connect_endpoint(live.service.endpoint());
    const unsigned char prefix[4] = {0xff, 0xff, 0xff, 0xff};
    ASSERT_EQ(::send(fd, prefix, 4, 0), 4);
    std::string payload;
    ASSERT_TRUE(serve::read_frame(fd, 1 << 20, &payload));
    ::close(fd);
    serve::CampaignResponse resp = serve::parse_campaign_response(payload);
    EXPECT_FALSE(resp.ok);
    EXPECT_FALSE(resp.error.empty());
  }

  // A client that connects and hangs up without a request is a no-op.
  {
    int fd = serve::connect_endpoint(live.service.endpoint());
    ::close(fd);
  }

  // The daemon survived all three and still serves real campaigns.
  serve::CampaignResponse resp =
      dispatch_to(live.service.endpoint(), busmouse_request());
  ASSERT_TRUE(resp.ok) << resp.error;
  EXPECT_EQ(resp.report, single_process_report("--device busmouse"));
}

TEST(CampaignService, InvalidSpecAnsweredWithValidationDiagnostic) {
  LiveService live("invalidspec");
  serve::CampaignRequest req = busmouse_request();
  req.spec.device = "floppy";  // not in any corpus
  serve::CampaignResponse resp = dispatch_to(live.service.endpoint(), req);
  EXPECT_FALSE(resp.ok);
  EXPECT_NE(resp.error.find("unknown device 'floppy'"), std::string::npos)
      << resp.error;
}

}  // namespace
