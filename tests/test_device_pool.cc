// Handout audit of the generic hw::DevicePool, the reset-based recycling
// behind every driver campaign's per-mutant device state.
//
// The campaign kernel shares one pool across all worker threads
// (PreparedCampaign's mutable device_pool), so the contract under test is:
//  - a device is held by exactly one owner at a time (no double handouts);
//  - an acquired device is always in power-on state (the releasing
//    thread's writes are ordered before the acquiring thread's reset);
//  - a device the caller still shares (e.g. a forgotten IoBus mapping)
//    never re-enters the pool.
// The concurrency test is the ASan/TSan-style repro for the cross-thread
// audit: it runs under the sanitizer CI job, where any unsynchronized
// acquire/release or reset-vs-write race is a hard failure.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "hw/busmouse.h"
#include "hw/device_pool.h"
#include "hw/ide_disk.h"

namespace {

/// Minimal device whose one register makes dirty handouts visible.
class ProbeDevice final : public hw::Device {
 public:
  [[nodiscard]] std::string name() const override { return "probe"; }
  uint32_t read(uint32_t, int) override { return value_; }
  void write(uint32_t, uint32_t value, int) override { value_ = value; }
  void reset() override {
    ++resets;
    value_ = 0;
  }
  int resets = 0;

 private:
  uint32_t value_ = 0;
};

TEST(DevicePool, ThrowsWithoutFactory) {
  hw::DevicePool pool;
  EXPECT_THROW((void)pool.acquire(), std::logic_error);
  pool.set_factory([] { return std::make_shared<ProbeDevice>(); });
  EXPECT_NE(pool.acquire(), nullptr);
}

TEST(DevicePool, RecyclesThroughResetNotReconstruction) {
  hw::DevicePool pool([] { return std::make_shared<ProbeDevice>(); });
  auto a = pool.acquire();
  a->write(0, 42, 8);
  hw::Device* raw = a.get();
  pool.release(std::move(a));
  EXPECT_EQ(pool.idle(), 1u);
  auto b = pool.acquire();
  EXPECT_EQ(b.get(), raw);        // same instance came back
  EXPECT_EQ(b->read(0, 8), 0u);   // reset() restored power-on state
  EXPECT_EQ(static_cast<ProbeDevice*>(b.get())->resets, 1);
}

TEST(DevicePool, SetFactoryDropsDevicesOfThePreviousType) {
  hw::DevicePool pool([] { return std::make_shared<ProbeDevice>(); });
  pool.release(pool.acquire());
  ASSERT_EQ(pool.idle(), 1u);
  pool.set_factory([] { return std::make_shared<hw::Busmouse>(); });
  EXPECT_EQ(pool.idle(), 0u);
  EXPECT_EQ(pool.acquire()->name(), "busmouse");
}

#ifdef NDEBUG
TEST(DevicePool, StillMappedDevicesNeverReenterThePool) {
  // A device the bus still references must not be recycled: a later
  // acquire() would hand the same device to a concurrent boot. Debug
  // builds assert on this misuse; release builds drop the device.
  hw::DevicePool pool([] { return std::make_shared<ProbeDevice>(); });
  auto a = pool.acquire();
  auto mapped = a;  // simulates an IoBus mapping that was not dropped
  pool.release(std::move(a));
  EXPECT_EQ(pool.idle(), 0u);
}
#endif

TEST(DevicePool, ConcurrentHandoutIsExclusiveAndClean) {
  hw::DevicePool pool([] { return std::make_shared<ProbeDevice>(); });
  std::mutex mu;
  std::set<hw::Device*> in_use;
  std::atomic<int> double_handouts{0};
  std::atomic<int> dirty_handouts{0};
  constexpr int kThreads = 8;
  constexpr int kIters = 1000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        auto dev = pool.acquire();
        {
          std::lock_guard<std::mutex> lock(mu);
          if (!in_use.insert(dev.get()).second) ++double_handouts;
        }
        if (dev->read(0, 8) != 0) ++dirty_handouts;
        dev->write(0, static_cast<uint32_t>(t * kIters + i + 1), 8);
        {
          std::lock_guard<std::mutex> lock(mu);
          in_use.erase(dev.get());
        }
        pool.release(std::move(dev));
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(double_handouts.load(), 0);
  EXPECT_EQ(dirty_handouts.load(), 0);
  // Never more devices parked than could ever be out at once.
  EXPECT_LE(pool.idle(), static_cast<size_t>(kThreads));
}

TEST(DevicePool, TypedIdeDiskWrapperKeepsDirtyTrackingSemantics) {
  hw::IdeDiskPool pool;
  auto disk = pool.acquire();
  disk->write(6, 0x10, 8);  // select the (absent) slave drive
  EXPECT_EQ(disk->read(6, 8), 0xb0u);
  pool.release(std::move(disk));
  auto recycled = pool.acquire();
  EXPECT_EQ(recycled->read(6, 8), 0xa0u);  // register wipe restored SELECT
  EXPECT_FALSE(recycled->damaged());
  pool.release(std::move(recycled));
  EXPECT_EQ(pool.idle(), 1u);
}

}  // namespace
