// Unit tests for the Devil lexer and parser.
#include <gtest/gtest.h>

#include "devil/lexer.h"
#include "devil/parser.h"
#include "support/diagnostics.h"

namespace {

using devil::TokKind;

std::vector<devil::Token> lex(const std::string& text,
                              support::DiagnosticEngine& diags) {
  support::SourceBuffer buf("test.dil", text);
  devil::Lexer lexer(buf, diags);
  return lexer.lex_all();
}

std::vector<devil::Token> lex_ok(const std::string& text) {
  support::DiagnosticEngine diags;
  auto toks = lex(text, diags);
  EXPECT_FALSE(diags.has_errors()) << diags.render();
  return toks;
}

std::optional<devil::Specification> parse(const std::string& text,
                                          support::DiagnosticEngine& diags) {
  auto toks = lex(text, diags);
  if (diags.has_errors()) return std::nullopt;
  devil::Parser parser(std::move(toks), diags);
  return parser.parse();
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

TEST(DevilLexer, KeywordsAndIdentifiers) {
  auto toks = lex_ok("device register variable foo_bar");
  ASSERT_EQ(toks.size(), 5u);  // + EOF
  EXPECT_EQ(toks[0].kind, TokKind::kKwDevice);
  EXPECT_EQ(toks[1].kind, TokKind::kKwRegister);
  EXPECT_EQ(toks[2].kind, TokKind::kKwVariable);
  EXPECT_EQ(toks[3].kind, TokKind::kIdent);
  EXPECT_EQ(toks[3].text, "foo_bar");
}

TEST(DevilLexer, DecimalAndHexLiterals) {
  auto toks = lex_ok("42 0x1f0");
  EXPECT_EQ(toks[0].int_value, 42u);
  EXPECT_EQ(toks[1].int_value, 0x1f0u);
}

TEST(DevilLexer, BitStrings) {
  auto toks = lex_ok("'1001000.' '01*.'");
  EXPECT_EQ(toks[0].kind, TokKind::kBitString);
  EXPECT_EQ(toks[0].text, "1001000.");
  EXPECT_EQ(toks[1].text, "01*.");
}

TEST(DevilLexer, RejectsBadBitStringChar) {
  support::DiagnosticEngine diags;
  lex("'10x1'", diags);
  EXPECT_TRUE(diags.has_code("DVL012"));
}

TEST(DevilLexer, RejectsUnterminatedBitString) {
  support::DiagnosticEngine diags;
  lex("'101", diags);
  EXPECT_TRUE(diags.has_code("DVL011"));
}

TEST(DevilLexer, ArrowOperators) {
  auto toks = lex_ok("<= => <=>");
  EXPECT_EQ(toks[0].kind, TokKind::kArrowRead);
  EXPECT_EQ(toks[1].kind, TokKind::kArrowWrite);
  EXPECT_EQ(toks[2].kind, TokKind::kArrowBoth);
}

TEST(DevilLexer, RangeAndPunctuation) {
  auto toks = lex_ok("{0..3} @ # [7..0] ;");
  EXPECT_EQ(toks[0].kind, TokKind::kLBrace);
  EXPECT_EQ(toks[2].kind, TokKind::kDotDot);
  EXPECT_EQ(toks[5].kind, TokKind::kAt);
  EXPECT_EQ(toks[6].kind, TokKind::kHash);
}

TEST(DevilLexer, CommentsAreSkipped) {
  auto toks = lex_ok("// line comment\n/* block */ device");
  EXPECT_EQ(toks[0].kind, TokKind::kKwDevice);
}

TEST(DevilLexer, TracksLineNumbers) {
  auto toks = lex_ok("a\nb\n  c");
  EXPECT_EQ(toks[0].range.begin.line, 1u);
  EXPECT_EQ(toks[1].range.begin.line, 2u);
  EXPECT_EQ(toks[2].range.begin.line, 3u);
  EXPECT_EQ(toks[2].range.begin.column, 3u);
}

TEST(DevilLexer, TokenRangesCoverSpelling) {
  auto toks = lex_ok("  0x1f0");
  EXPECT_EQ(toks[0].range.begin.offset, 2u);
  EXPECT_EQ(toks[0].range.size(), 5u);
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

const char* kMinimal = R"(
device d (base : bit[8] port @ {0..0}) {
  register r = base @ 0 : bit[8];
  variable v = r : int(8);
}
)";

TEST(DevilParser, ParsesMinimalDevice) {
  support::DiagnosticEngine diags;
  auto spec = parse(kMinimal, diags);
  ASSERT_TRUE(spec.has_value()) << diags.render();
  EXPECT_EQ(spec->device.name, "d");
  ASSERT_EQ(spec->device.params.size(), 1u);
  EXPECT_EQ(spec->device.params[0].name, "base");
  EXPECT_EQ(spec->device.params[0].width_bits, 8);
  ASSERT_EQ(spec->device.registers.size(), 1u);
  ASSERT_EQ(spec->device.variables.size(), 1u);
}

TEST(DevilParser, PortParamRange) {
  support::DiagnosticEngine diags;
  auto spec = parse(
      "device d (p : bit[16] port @ {2..5}) {"
      " register r = p @ 2 : bit[16]; variable v = r : int(16); }",
      diags);
  ASSERT_TRUE(spec);
  EXPECT_EQ(spec->device.params[0].offsets,
            (std::vector<uint64_t>{2, 3, 4, 5}));
}

TEST(DevilParser, RegisterAccessKeywords) {
  support::DiagnosticEngine diags;
  auto spec = parse(
      "device d (p : bit[8] port @ {0..1}) {"
      " register a = read p @ 0 : bit[8];"
      " register b = write p @ 1 : bit[8];"
      " variable va = a : int(8); variable vb = b : int(8); }",
      diags);
  ASSERT_TRUE(spec);
  EXPECT_EQ(spec->device.registers[0].access(), devil::Access::kRead);
  EXPECT_EQ(spec->device.registers[1].access(), devil::Access::kWrite);
}

TEST(DevilParser, SplitReadWriteBindings) {
  support::DiagnosticEngine diags;
  auto spec = parse(
      "device d (p : bit[8] port @ {0..1}) {"
      " register r = read p @ 0, write p @ 1 : bit[8];"
      " variable v = r : int(8); }",
      diags);
  ASSERT_TRUE(spec) << diags.render();
  EXPECT_EQ(spec->device.registers[0].bindings.size(), 2u);
  EXPECT_EQ(spec->device.registers[0].access(), devil::Access::kReadWrite);
}

TEST(DevilParser, MaskAttribute) {
  support::DiagnosticEngine diags;
  auto spec = parse(
      "device d (p : bit[8] port @ {0..0}) {"
      " register r = p @ 0, mask '1.0.....' : bit[8];"
      " variable v = r[6] : int(1); variable w = r[4..0] : int(5); }",
      diags);
  ASSERT_TRUE(spec);
  EXPECT_EQ(spec->device.registers[0].mask.pattern, "1.0.....");
}

TEST(DevilParser, PreActions) {
  support::DiagnosticEngine diags;
  auto spec = parse(
      "device d (p : bit[8] port @ {0..1}) {"
      " register ix = write p @ 1 : bit[8];"
      " private variable sel = ix : int(8);"
      " register r = read p @ 0, pre {sel = 3} : bit[8];"
      " variable v = r : int(8); }",
      diags);
  ASSERT_TRUE(spec) << diags.render();
  const auto& r = spec->device.registers[1];
  ASSERT_EQ(r.pre_actions.size(), 1u);
  EXPECT_EQ(r.pre_actions[0].var, "sel");
  EXPECT_EQ(r.pre_actions[0].value, 3u);
}

TEST(DevilParser, ConcatenationAndRanges) {
  support::DiagnosticEngine diags;
  auto spec = parse(
      "device d (p : bit[8] port @ {0..1}) {"
      " register hi = p @ 0 : bit[8]; register lo = p @ 1 : bit[8];"
      " variable v = hi[3..0] # lo[7..4], volatile : int(8);"
      " variable rest_hi = hi[7..4] : int(4);"
      " variable rest_lo = lo[3..0] : int(4); }",
      diags);
  ASSERT_TRUE(spec) << diags.render();
  const auto& v = spec->device.variables[0];
  ASSERT_EQ(v.fragments.size(), 2u);
  EXPECT_EQ(v.fragments[0].msb, 3);
  EXPECT_EQ(v.fragments[1].lsb, 4);
  EXPECT_TRUE(v.is_volatile);
}

TEST(DevilParser, EnumTypesAllArrowKinds) {
  support::DiagnosticEngine diags;
  auto spec = parse(
      "device d (p : bit[8] port @ {0..0}) {"
      " register r = p @ 0, mask '******..' : bit[8];"
      " variable v = r[1..0] : { A <=> '00', B <=> '01', C <=> '10',"
      " D <=> '11' }; }",
      diags);
  ASSERT_TRUE(spec) << diags.render();
  const auto& ty = spec->device.variables[0].type;
  EXPECT_EQ(ty.kind, devil::TypeKind::kEnum);
  ASSERT_EQ(ty.items.size(), 4u);
  EXPECT_EQ(ty.items[0].dir, devil::MappingDir::kBoth);
}

TEST(DevilParser, IntSetTypesWithRanges) {
  support::DiagnosticEngine diags;
  auto spec = parse(
      "device d (p : bit[8] port @ {0..0}) {"
      " register r = p @ 0, mask '******..' : bit[8];"
      " variable v = r[1..0] : int{0,2..3}; }",
      diags);
  ASSERT_TRUE(spec) << diags.render();
  const auto& ty = spec->device.variables[0].type;
  EXPECT_EQ(ty.kind, devil::TypeKind::kIntSet);
  EXPECT_EQ(ty.set_values, (std::vector<uint64_t>{0, 2, 3}));
}

TEST(DevilParser, SignedIntAndBoolAndWriteTrigger) {
  support::DiagnosticEngine diags;
  auto spec = parse(
      "device d (p : bit[8] port @ {0..0}) {"
      " register r = p @ 0 : bit[8];"
      " variable v = r[7..1], write trigger : signed int(7);"
      " variable b = r[0] : bool; }",
      diags);
  ASSERT_TRUE(spec) << diags.render();
  EXPECT_EQ(spec->device.variables[0].type.kind, devil::TypeKind::kSignedInt);
  EXPECT_TRUE(spec->device.variables[0].write_trigger);
  EXPECT_EQ(spec->device.variables[1].type.kind, devil::TypeKind::kBool);
}

TEST(DevilParser, ReportsMissingSemicolon) {
  support::DiagnosticEngine diags;
  auto spec = parse(
      "device d (p : bit[8] port @ {0..0}) {"
      " register r = p @ 0 : bit[8] }",
      diags);
  EXPECT_FALSE(spec);
  EXPECT_TRUE(diags.has_errors());
}

TEST(DevilParser, ReportsTrailingTokens) {
  support::DiagnosticEngine diags;
  auto spec = parse(
      "device d (p : bit[8] port @ {0..0}) {"
      " register r = p @ 0 : bit[8]; variable v = r : int(8); } stray",
      diags);
  EXPECT_FALSE(spec);
  EXPECT_TRUE(diags.has_code("DVL021"));
}

TEST(DevilParser, ReportsBadAttribute) {
  support::DiagnosticEngine diags;
  auto spec = parse(
      "device d (p : bit[8] port @ {0..0}) {"
      " variable v = r, bogus : int(8); }",
      diags);
  EXPECT_FALSE(spec);
}

}  // namespace
