// Tests for the MiniC type checker: it must be exactly as permissive as C.
// Each rejection rule is exercised by code a mutation can produce.
#include <gtest/gtest.h>

#include "minic/program.h"

namespace {

minic::Program compile(const std::string& src) {
  return minic::compile("t.c", src);
}

void expect_ok(const std::string& src) {
  auto p = compile(src);
  EXPECT_TRUE(p.ok()) << p.diags.render();
}

void expect_code(const std::string& src, const std::string& code) {
  auto p = compile(src);
  EXPECT_FALSE(p.ok()) << "expected rejection with " << code;
  EXPECT_TRUE(p.diags.has_code(code)) << p.diags.render();
}

// ---- C permissiveness (must NOT be rejected) --------------------------------

TEST(MiniCTypes, AllIntegerTypesInterconvert) {
  expect_ok(
      "void f() { u8 a; u16 b; u32 c; s8 d; int e;"
      " a = b; b = c; c = d; d = e; e = a; }");
}

TEST(MiniCTypes, MacrosEraseTypeDistinctions) {
  // The crux of the paper's argument: a port macro and a command macro are
  // indistinguishable integers after preprocessing.
  expect_ok(
      "#define PORT 0x1f0\n#define CMD 0xec\n"
      "void f() { outb(PORT, CMD); outb(CMD, PORT); }");
}

TEST(MiniCTypes, IntLiteralPassedToNarrowParam) {
  expect_ok("void g(u8 v) {} void f() { g(0x1234); }");  // C truncates quietly
}

TEST(MiniCTypes, FunctionsUsableBeforeDefinition) {
  expect_ok("int f() { return g(); } int g() { return 1; }");
}

TEST(MiniCTypes, SameStructTypeAssignable) {
  expect_ok(
      "struct S { int v; };"
      "void f() { S a; S b; a = b; }");
}

// ---- rejections -----------------------------------------------------------------

TEST(MiniCTypes, MC100_UndeclaredIdentifier) {
  expect_code("void f() { x = 1; }", "MC100");
}

TEST(MiniCTypes, MC100_LocalOfOtherFunctionNotVisible) {
  // The classic identifier-mutation kill: a name from another function.
  expect_code("void g() { int stat; stat = 0; } void f() { stat = 1; }",
              "MC100");
}

TEST(MiniCTypes, MC101_UndefinedFunctionCall) {
  expect_code("void f() { frobnicate(1); }", "MC101");
}

TEST(MiniCTypes, MC102_WrongArity) {
  expect_code("void g(int a) {} void f() { g(1, 2); }", "MC102");
}

TEST(MiniCTypes, MC103_StructArgumentForIntParam) {
  expect_code(
      "struct S { int v; };"
      "void g(int a) {} void f() { S s; g(s); }",
      "MC103");
}

TEST(MiniCTypes, MC103_WrongStructTypeArgument) {
  // set_Drive(WIN_IDENTIFY)-style mutant: another Devil struct type.
  expect_code(
      "struct A { int v; }; struct B { int v; };"
      "void g(A a) {} void f() { B b; g(b); }",
      "MC103");
}

TEST(MiniCTypes, MC104_MemberOfNonStruct) {
  expect_code("void f() { int x; x.val = 1; }", "MC104");
}

TEST(MiniCTypes, MC105_UnknownMember) {
  expect_code(
      "struct S { int v; }; void f() { S s; s.w = 1; }", "MC105");
}

TEST(MiniCTypes, MC106_AssignStructToInt) {
  expect_code(
      "struct S { int v; }; void f() { S s; int x; x = s; }", "MC106");
}

TEST(MiniCTypes, MC106_AssignIntToStruct) {
  expect_code(
      "struct S { int v; }; void f() { S s; s = 3; }", "MC106");
}

TEST(MiniCTypes, MC106_AssignAcrossStructTypes) {
  expect_code(
      "struct A { int v; }; struct B { int v; };"
      "void f() { A a; B b; a = b; }",
      "MC106");
}

TEST(MiniCTypes, MC107_ArithmeticOnStruct) {
  expect_code(
      "struct S { int v; }; void f() { S s; int x; x = s + 1; }", "MC107");
}

TEST(MiniCTypes, MC108_StructCondition) {
  expect_code(
      "struct S { int v; }; void f() { S s; if (s) { return; } }", "MC108");
}

TEST(MiniCTypes, MC109_ReturnTypeMismatch) {
  expect_code(
      "struct S { int v; }; int f() { S s; return s; }", "MC106");
  expect_code("int f() { return; }", "MC109");
  expect_code("void f() { return 3; }", "MC109");
}

TEST(MiniCTypes, MC110_SubscriptOnScalar) {
  expect_code("void f() { int x; x[0] = 1; }", "MC110");
}

TEST(MiniCTypes, MC111_Redefinitions) {
  expect_code("int f() { return 0; } int f() { return 1; }", "MC111");
  expect_code("int x; int x;", "MC111");
  expect_code("struct S { int v; }; struct S { int v; };", "MC111");
  expect_code("void f() { int a; int a; }", "MC111");
}

TEST(MiniCTypes, MC112_UnknownType) {
  expect_code("void f() { Bogus_t v; }", "MC112");
}

TEST(MiniCTypes, MC114_AssignToNonLvalue) {
  expect_code("void f() { 3 = 4; }", "MC114");
}

TEST(MiniCTypes, MC114_AssignToConst) {
  expect_code("const int k = 1; void f() { k = 2; }", "MC114");
}

TEST(MiniCTypes, MC115_SwitchOnStruct) {
  expect_code(
      "struct S { int v; };"
      "void f() { S s; switch (s) { default: break; } }",
      "MC115");
}

TEST(MiniCTypes, MC106_CastStructToInt) {
  expect_code(
      "struct S { int v; }; void f() { S s; int x; x = (int)s; }", "MC106");
}

// ---- dil_eq / dil_val (the paper's §2.3 comparison macro) -----------------------

TEST(MiniCTypes, DilEqIntIntOk) {
  expect_ok("void f() { int a; int b; a = 0; b = 0; if (dil_eq(a, b)) {} }");
}

TEST(MiniCTypes, DilEqSameStructOk) {
  expect_ok(
      "struct S { cstring filename; int type; u32 val; };"
      "void f() { S a; S b; if (dil_eq(a, b)) {} }");
}

TEST(MiniCTypes, DilEqCrossStructCompiles) {
  // Different Devil types: compiles; only the run-time tag check catches it.
  expect_ok(
      "struct A { cstring filename; int type; u32 val; };"
      "struct B { cstring filename; int type; u32 val; };"
      "void f() { A a; B b; if (dil_eq(a, b)) {} }");
}

TEST(MiniCTypes, MC104_DilEqStructIntMixRejected) {
  // The macro would expand to a member access on an int: compile error.
  expect_code(
      "struct S { cstring filename; int type; u32 val; };"
      "void f() { S a; if (dil_eq(a, 3)) {} }",
      "MC104");
}

TEST(MiniCTypes, DilValIntAndStructOk) {
  expect_ok(
      "struct S { cstring filename; int type; u32 val; };"
      "void f() { S a; int x; x = dil_val(a); x = dil_val(x); }");
}

// ---- builtins -------------------------------------------------------------------

TEST(MiniCTypes, BuiltinSignatures) {
  expect_ok("void f() { u8 v; v = inb(0x1f0); outb(v, 0x1f0);"
            " u16 w; w = inw(0x1f0); outw(w, 0x1f0); udelay(10); }");
  expect_code("void f() { inb(); }", "MC102");
  expect_code("void f() { panic(3); }", "MC103");
  expect_code(
      "struct S { int v; }; void f() { S s; outb(s, 0x10); }", "MC103");
}

TEST(MiniCTypes, ShadowingBuiltinRejected) {
  expect_code("int inb(u32 p) { return 0; }", "MC111");
}

TEST(MiniCTypes, MC117_CallOnNonFunction) {
  // A macro callee that expanded to a literal: grammar accepts, semantics
  // reject — the fate of function-name/macro confusion mutants.
  expect_code("#define F 0x1f0\nvoid f() { F(); }", "MC117");
  expect_code("void f() { (1 + 2)(3); }", "MC117");
}

}  // namespace
