// End-to-end tests: specs through codegen through the interpreter against
// the simulated devices, plus targeted single-mutant scenarios that pin the
// paper's qualitative claims.
#include <gtest/gtest.h>

#include <memory>

#include "corpus/drivers.h"
#include "corpus/specs.h"
#include "devil/compiler.h"
#include "hw/busmouse.h"
#include "hw/ide_disk.h"
#include "hw/io_bus.h"
#include "minic/program.h"

namespace {

struct IdeWorld {
  hw::IoBus bus;
  std::shared_ptr<hw::IdeDisk> disk = std::make_shared<hw::IdeDisk>();
  IdeWorld() { bus.map(0x1f0, 8, disk); }
};

std::string cdevil_unit(devil::CodegenMode mode) {
  auto r = devil::compile_spec("ide.dil", corpus::ide_spec(), mode);
  EXPECT_TRUE(r.ok()) << r.diags.render();
  return r.stubs + "\n" + corpus::cdevil_ide_driver();
}

TEST(Integration, AllFiveSpecsPassTheDevilCompiler) {
  for (const auto& spec : corpus::all_specs()) {
    auto r = devil::check_spec(spec.file, spec.text);
    EXPECT_TRUE(r.ok()) << spec.name << "\n" << r.diags.render();
  }
}

TEST(Integration, CDriverBootsAndFingerprints) {
  IdeWorld w;
  auto out = minic::compile_and_run("ide_c.c", corpus::c_ide_driver(),
                                    "ide_boot", w.bus, 3'000'000);
  EXPECT_EQ(out.fault, minic::FaultKind::kNone) << out.fault_message;
  EXPECT_GT(out.return_value, 0);
  EXPECT_FALSE(w.disk->damaged());
}

TEST(Integration, CDevilDriverMatchesCInBothModes) {
  IdeWorld wc;
  auto c = minic::compile_and_run("ide_c.c", corpus::c_ide_driver(),
                                  "ide_boot", wc.bus, 3'000'000);
  for (auto mode :
       {devil::CodegenMode::kDebug, devil::CodegenMode::kProduction}) {
    IdeWorld w;
    auto out = minic::compile_and_run("ide.dil", cdevil_unit(mode), "ide_boot",
                                      w.bus, 3'000'000);
    EXPECT_EQ(out.fault, minic::FaultKind::kNone) << out.fault_message;
    EXPECT_EQ(out.return_value, c.return_value)
        << "CDevil and C drivers must observe the same world";
  }
}

TEST(Integration, BusmouseDriversAgreeOnState) {
  auto run_mouse = [](const std::string& name, const std::string& src) {
    hw::IoBus bus;
    auto mouse = std::make_shared<hw::Busmouse>();
    mouse->set_motion(-5, 17, 4);
    bus.map(0x23c, 4, mouse);
    auto out = minic::compile_and_run(name, src, "mouse_boot", bus, 1'000'000);
    EXPECT_EQ(out.fault, minic::FaultKind::kNone) << out.fault_message;
    return out.return_value;
  };
  auto r = devil::compile_spec("busmouse.dil", corpus::busmouse_spec(),
                               devil::CodegenMode::kDebug);
  ASSERT_TRUE(r.ok());
  int64_t c_state = run_mouse("bm_c.c", corpus::c_busmouse_driver());
  int64_t d_state = run_mouse(
      "busmouse.dil", r.stubs + "\n" + corpus::cdevil_busmouse_driver());
  EXPECT_EQ(c_state, d_state);
}

TEST(Integration, DebugStubsMaskIrrelevantBits) {
  // The busmouse data port floats garbage in its top nibble; the generated
  // stubs must mask it out (dx == 5 exactly, not 5 | junk).
  auto r = devil::compile_spec("busmouse.dil", corpus::busmouse_spec(),
                               devil::CodegenMode::kDebug);
  ASSERT_TRUE(r.ok());
  std::string unit = r.stubs + "\nint probe() { return dil_val(get_dx()); }";
  hw::IoBus bus;
  auto mouse = std::make_shared<hw::Busmouse>();
  mouse->set_motion(5, 0, 0);
  bus.map(0x23c, 4, mouse);
  std::string init_unit = unit +
      "\nint main_entry() { devil_init(0x23c); return probe(); }";
  auto out = minic::compile_and_run("busmouse.dil", init_unit, "main_entry",
                                    bus, 100'000);
  EXPECT_EQ(out.fault, minic::FaultKind::kNone) << out.fault_message;
  EXPECT_EQ(out.return_value, 5);
}

TEST(Integration, SignedVariablesSignExtend) {
  auto r = devil::compile_spec("busmouse.dil", corpus::busmouse_spec(),
                               devil::CodegenMode::kProduction);
  ASSERT_TRUE(r.ok());
  std::string unit = r.stubs +
      "\nint main_entry() { devil_init(0x23c); return get_dy(); }";
  hw::IoBus bus;
  auto mouse = std::make_shared<hw::Busmouse>();
  mouse->set_motion(0, -3, 0);
  bus.map(0x23c, 4, mouse);
  auto out =
      minic::compile_and_run("busmouse.dil", unit, "main_entry", bus, 100'000);
  EXPECT_EQ(out.fault, minic::FaultKind::kNone) << out.fault_message;
  EXPECT_EQ(out.return_value, -3);
}

// ---- targeted mutants: the paper's qualitative claims -------------------------

/// Applies a textual replacement to the CDevil driver and reports what
/// happens (compile error => "compile"; fault kind otherwise).
std::string run_cdevil_with(const std::string& from, const std::string& to,
                            devil::CodegenMode mode) {
  std::string driver = corpus::cdevil_ide_driver();
  size_t pos = driver.find(from);
  EXPECT_NE(pos, std::string::npos) << from;
  driver.replace(pos, from.size(), to);
  auto r = devil::compile_spec("ide.dil", corpus::ide_spec(), mode);
  EXPECT_TRUE(r.ok());
  std::string unit = r.stubs + "\n" + driver;
  minic::Program prog = minic::compile("ide.dil", unit);
  if (!prog.ok()) return "compile";
  IdeWorld w;
  minic::Interp interp(*prog.unit, w.bus, 3'000'000);
  auto out = interp.run("ide_boot");
  return minic::fault_kind_name(out.fault);
}

TEST(Integration, WrongValueOfSameTypeUndetectedAtCompileTime) {
  // MASTER -> SLAVE compiles in both modes; the absent slave then fails the
  // probe, so the kernel halts (a detected-late behaviour, not a type error).
  EXPECT_EQ(run_cdevil_with("set_Drive(MASTER)", "set_Drive(SLAVE)",
                            devil::CodegenMode::kDebug),
            "panic");
}

TEST(Integration, CrossTypeValueCaughtAtCompileTimeInDebugOnly) {
  // set_Drive(WIN_READ): another Devil type. Debug mode: C type error.
  EXPECT_EQ(run_cdevil_with("set_Drive(MASTER)", "set_Drive(WIN_READ)",
                            devil::CodegenMode::kDebug),
            "compile");
  // Production mode: everything is an integer; the bogus select value is
  // written to the device and the boot fails only behaviourally.
  EXPECT_NE(run_cdevil_with("set_Drive(MASTER)", "set_Drive(WIN_READ)",
                            devil::CodegenMode::kProduction),
            "compile");
}

TEST(Integration, WrongGetterInsideDilEqCaughtAtRunTime) {
  // get_Busy -> get_Seek compiles (both structs), but the dil_eq type tag
  // differs: the Devil assertion fires — the paper's run-time check.
  EXPECT_EQ(run_cdevil_with("dil_eq(get_Busy(), BUSY)",
                            "dil_eq(get_Seek(), BUSY)",
                            devil::CodegenMode::kDebug),
            "devil-assertion");
}

TEST(Integration, WrongStubNameCaughtAtCompileTime) {
  EXPECT_EQ(run_cdevil_with("set_Command(WIN_IDENTIFY)",
                            "set_Drive(WIN_IDENTIFY)",
                            devil::CodegenMode::kDebug),
            "compile");
}

TEST(Integration, OutOfRangeMkValueCaughtByDebugAssertion) {
  EXPECT_EQ(run_cdevil_with("mk_SectorCount(1)", "mk_SectorCount(300)",
                            devil::CodegenMode::kDebug),
            "devil-assertion");
  EXPECT_NE(run_cdevil_with("mk_SectorCount(1)", "mk_SectorCount(300)",
                            devil::CodegenMode::kProduction),
            "devil-assertion");
}

TEST(Integration, CDriverPortTypoLoopsForever) {
  // In the C driver, polling a wrong (unmapped) status port hangs the boot:
  // the open bus floats 0xff, so BUSY never clears.
  std::string driver = corpus::c_ide_driver();
  size_t pos = driver.find("#define IDE_STATUS   0x1f7");
  ASSERT_NE(pos, std::string::npos);
  driver.replace(pos, std::string("#define IDE_STATUS   0x1f7").size(),
                 "#define IDE_STATUS   0x1e7");
  IdeWorld w;
  auto out =
      minic::compile_and_run("ide_c.c", driver, "ide_boot", w.bus, 500'000);
  EXPECT_EQ(out.fault, minic::FaultKind::kStepLimit);
}

TEST(Integration, CDriverWriteCommandTypoDamagesDisk) {
  // WIN_READ (0x20) typed as WIN_WRITE-style 0x30: the C compiler accepts
  // it, the device commits garbage, and the disk is damaged.
  std::string driver = corpus::c_ide_driver();
  size_t pos = driver.find("#define WIN_READ     0x20");
  ASSERT_NE(pos, std::string::npos);
  driver.replace(pos, std::string("#define WIN_READ     0x20").size(),
                 "#define WIN_READ     0x30");
  IdeWorld w;
  auto out =
      minic::compile_and_run("ide_c.c", driver, "ide_boot", w.bus, 3'000'000);
  // The boot fails one way or another, and the disk shows damage.
  EXPECT_TRUE(w.disk->damaged() || out.fault != minic::FaultKind::kNone);
}

TEST(Integration, SpecMutantCaughtByCompiler) {
  // Mutating a port offset moves a register onto another one: the Devil
  // compiler rejects the specification (overlap / no-omission).
  std::string spec = corpus::busmouse_spec();
  size_t pos = spec.find("base @ 1 : bit[8]");
  ASSERT_NE(pos, std::string::npos);
  std::string mutated = spec;
  mutated.replace(pos, 8, "base @ 3");
  auto r = devil::check_spec("busmouse.dil", mutated);
  EXPECT_FALSE(r.ok());
}

}  // namespace
