// Tests for the evaluation harness: outcome classification and the two
// campaign drivers.
#include <gtest/gtest.h>

#include "corpus/drivers.h"
#include "corpus/specs.h"
#include "devil/compiler.h"
#include "eval/device_bindings.h"
#include "eval/driver_campaign.h"
#include "eval/report.h"
#include "eval/spec_campaign.h"

namespace {

using eval::Outcome;

// A tiny driver + a campaign configured to mutate all of it, for targeted
// outcome checks via hand-written "mutants" (we inject the bug directly).
eval::DriverCampaignConfig tiny(const std::string& driver) {
  eval::DriverCampaignConfig cfg;
  cfg.driver = driver;
  cfg.device = eval::ide_binding();
  cfg.sample_percent = 100;
  return cfg;
}

TEST(Tally, AccumulatesMutantsAndSites) {
  eval::Tally t;
  t.add(Outcome::kBoot, 1);
  t.add(Outcome::kBoot, 1);
  t.add(Outcome::kBoot, 2);
  t.add(Outcome::kHalt, 3);
  EXPECT_EQ(t.mutants_of(Outcome::kBoot), 3u);
  EXPECT_EQ(t.sites_of(Outcome::kBoot), 2u);
  EXPECT_EQ(t.total_mutants, 4u);
  EXPECT_EQ(t.detected(), 0u);
  t.add(Outcome::kCompileTime, 4);
  t.add(Outcome::kRunTime, 5);
  EXPECT_EQ(t.detected(), 2u);
}

TEST(SpecCampaign, BusmouseRowMatchesPaperShape) {
  auto row = eval::run_spec_campaign(corpus::all_specs()[0]);
  EXPECT_EQ(row.name, "Logitech Busmouse");
  EXPECT_GT(row.sites, 30u);
  EXPECT_GT(row.mutants, 500u);
  // Paper Table 2: 88.8%..95.4% detected across specs.
  double pct = 100.0 * static_cast<double>(row.detected) /
               static_cast<double>(row.mutants);
  EXPECT_GT(pct, 85.0);
  EXPECT_LT(pct, 100.0);  // some mutants survive (e.g. '*' <-> fixed bits)
}

TEST(SpecCampaign, SurvivorSamplesReported) {
  auto row = eval::run_spec_campaign(corpus::all_specs()[0], 4);
  EXPECT_LE(row.undetected_samples.size(), 4u);
  EXPECT_FALSE(row.undetected_samples.empty());
}

TEST(SpecCampaign, RejectsBrokenBaselineSpec) {
  corpus::SpecEntry bad{"broken", "broken.dil",
                        "device d (p : bit[8] port @ {0..0}) { }"};
  EXPECT_THROW(eval::run_spec_campaign(bad), std::logic_error);
}

TEST(SpecCampaign, DeterministicAcrossRuns) {
  auto a = eval::run_spec_campaign(corpus::all_specs()[1]);
  auto b = eval::run_spec_campaign(corpus::all_specs()[1]);
  EXPECT_EQ(a.mutants, b.mutants);
  EXPECT_EQ(a.detected, b.detected);
}

// ---- driver campaign preconditions -----------------------------------------

TEST(DriverCampaign, RejectsNonCompilingBaseline) {
  auto cfg = tiny("int ide_boot() { return undefined_thing; }");
  EXPECT_THROW((void)eval::run_driver_campaign(cfg), std::logic_error);
}

TEST(DriverCampaign, RejectsFaultingBaseline) {
  auto cfg = tiny("int ide_boot() { panic(\"boom\"); return 1; }");
  EXPECT_THROW((void)eval::run_driver_campaign(cfg), std::logic_error);
}

TEST(DriverCampaign, RejectsNonPositiveFingerprint) {
  auto cfg = tiny("int ide_boot() { return 0; }");
  EXPECT_THROW((void)eval::run_driver_campaign(cfg), std::logic_error);
}

// ---- classification through real mini-campaigns ------------------------------

TEST(DriverCampaign, LiteralMutantsClassified) {
  // A driver whose only mutable region is one literal: port 0x1f7 (status).
  // Its mutants hit mapped registers, unmapped ports (stuck 0xff -> the
  // status poll loops forever), and the O-typo (compile error).
  auto cfg = tiny(R"(
int ide_boot() {
  int s;
  /* MUT_BEGIN */
  s = inb(0x1f7);
  /* MUT_END */
  while (s & 0x80) { s = inb(0x1f7); }
  return s + 1;
}
)");
  auto res = eval::run_driver_campaign(cfg);
  // Sites: the 0x1f7 literal, plus the `s` identifier (confusable with the
  // file's other defined identifier, the function name).
  EXPECT_EQ(res.total_sites, 2u);
  EXPECT_GT(res.sampled_mutants, 30u);
  // The O-typo mutant is a compile error.
  EXPECT_GE(res.tally.mutants_of(Outcome::kCompileTime), 1u);
  // Reading a different mapped register boots with a wrong fingerprint.
  EXPECT_GE(res.tally.mutants_of(Outcome::kDamagedBoot), 1u);
}

TEST(DriverCampaign, DeadCodeRequiresUnexecutedSite) {
  auto cfg = tiny(R"(
int helper(int x) {
  if (x == 12345) {
    /* MUT_BEGIN */
    return 0x42;
    /* MUT_END */
  }
  return 7;
}
int ide_boot() { return helper(1); }
)");
  auto res = eval::run_driver_campaign(cfg);
  EXPECT_GT(res.sampled_mutants, 0u);
  // Everything that compiles is dead (the O-typo variant is caught at
  // compile time before executability matters).
  EXPECT_EQ(res.tally.mutants_of(Outcome::kDeadCode) +
                res.tally.mutants_of(Outcome::kCompileTime),
            res.sampled_mutants);
  EXPECT_GT(res.tally.mutants_of(Outcome::kDeadCode), 0u);
}

TEST(DriverCampaign, MacroSiteDeadOnlyIfUsesUnexecuted) {
  // The macro is used on an executed line, so its body mutants are live.
  auto cfg = tiny(R"(
/* MUT_BEGIN */
#define MAGIC 0x2a
/* MUT_END */
int ide_boot() { return MAGIC + 1; }
)");
  auto res = eval::run_driver_campaign(cfg);
  EXPECT_GT(res.sampled_mutants, 0u);
  EXPECT_EQ(res.tally.mutants_of(Outcome::kDeadCode), 0u);
  // Changing the value changes the fingerprint: damaged boot.
  EXPECT_GT(res.tally.mutants_of(Outcome::kDamagedBoot), 0u);
}

TEST(DriverCampaign, SamplingIsDeterministicAndScales) {
  eval::DriverCampaignConfig cfg;
  cfg.driver = corpus::c_ide_driver();
  cfg.device = eval::ide_binding();
  cfg.sample_percent = 10;
  auto a = eval::run_driver_campaign(cfg);
  auto b = eval::run_driver_campaign(cfg);
  EXPECT_EQ(a.sampled_mutants, b.sampled_mutants);
  EXPECT_EQ(a.tally.mutants, b.tally.mutants);
  EXPECT_LT(a.sampled_mutants, a.total_mutants / 5);
}

// ---- report rendering -----------------------------------------------------------

TEST(Report, Table2ContainsAllSpecs) {
  std::vector<eval::SpecCampaignRow> rows;
  for (const auto& spec : corpus::all_specs()) {
    eval::SpecCampaignRow r;
    r.name = spec.name;
    r.code_lines = 10;
    r.sites = 5;
    r.mutants = 100;
    r.detected = 90;
    rows.push_back(r);
  }
  std::string t = eval::render_table2(rows);
  EXPECT_NE(t.find("Logitech Busmouse"), std::string::npos);
  EXPECT_NE(t.find("90.0 %"), std::string::npos);
}

TEST(Report, DriverTableShowsRuntimeRowOnlyWhenPresent) {
  eval::DriverCampaignResult r;
  r.total_sites = 3;
  r.sampled_mutants = 10;
  r.tally.add(Outcome::kBoot, 0);
  std::string without = eval::render_driver_table("T", r);
  EXPECT_EQ(without.find("Run-time check"), std::string::npos);
  r.tally.add(Outcome::kRunTime, 1);
  r.sampled_mutants = 11;
  std::string with = eval::render_driver_table("T", r);
  EXPECT_NE(with.find("Run-time check"), std::string::npos);
}

TEST(Report, ComparisonComputesRatios) {
  eval::DriverCampaignResult c, d;
  c.sampled_mutants = 100;
  for (int i = 0; i < 20; ++i) c.tally.add(Outcome::kCompileTime, 0);
  for (int i = 0; i < 40; ++i) c.tally.add(Outcome::kBoot, 1);
  d.sampled_mutants = 100;
  for (int i = 0; i < 60; ++i) d.tally.add(Outcome::kCompileTime, 0);
  for (int i = 0; i < 10; ++i) d.tally.add(Outcome::kBoot, 1);
  std::string s = eval::render_comparison(c, d);
  EXPECT_NE(s.find("3.0x more errors detected"), std::string::npos);
  EXPECT_NE(s.find("4.0x fewer undetected errors"), std::string::npos);
}

}  // namespace
