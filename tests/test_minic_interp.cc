// Tests for the MiniC interpreter: arithmetic, control flow, the fault model
// and the line-coverage tracking the dead-code classification relies on.
#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <vector>

#include "minic/program.h"

namespace {

/// IoEnvironment that answers reads from a scripted map and records writes.
class FakeIo : public minic::IoEnvironment {
 public:
  uint32_t io_in(uint32_t port, int width) override {
    (void)width;
    reads.push_back(port);
    auto it = values.find(port);
    return it == values.end() ? 0xffu : it->second;
  }
  void io_out(uint32_t port, uint32_t value, int width) override {
    (void)width;
    writes.emplace_back(port, value);
  }
  std::map<uint32_t, uint32_t> values;
  std::vector<uint32_t> reads;
  std::vector<std::pair<uint32_t, uint32_t>> writes;
};

minic::RunOutcome run(const std::string& src, const std::string& entry = "f",
                      FakeIo* io = nullptr, uint64_t budget = 200000) {
  FakeIo local;
  return minic::compile_and_run("t.c", src, entry, io ? *io : local, budget);
}

TEST(MiniCInterp, ReturnsValue) {
  auto out = run("int f() { return 6 * 7; }");
  EXPECT_EQ(out.fault, minic::FaultKind::kNone);
  EXPECT_EQ(out.return_value, 42);
}

TEST(MiniCInterp, ArithmeticAndPrecedence) {
  EXPECT_EQ(run("int f() { return 2 + 3 * 4; }").return_value, 14);
  EXPECT_EQ(run("int f() { return (2 + 3) * 4; }").return_value, 20);
  EXPECT_EQ(run("int f() { return 7 / 2; }").return_value, 3);
  EXPECT_EQ(run("int f() { return 7 % 3; }").return_value, 1);
}

TEST(MiniCInterp, BitOperations) {
  EXPECT_EQ(run("int f() { return 0xf0 | 0x0f; }").return_value, 0xff);
  EXPECT_EQ(run("int f() { return 0xff & 0x3c; }").return_value, 0x3c);
  EXPECT_EQ(run("int f() { return 0xff ^ 0x0f; }").return_value, 0xf0);
  EXPECT_EQ(run("int f() { return 1 << 4; }").return_value, 16);
  EXPECT_EQ(run("int f() { return 0x80 >> 3; }").return_value, 0x10);
  EXPECT_EQ(run("int f() { return ~0 & 0xff; }").return_value, 0xff);
}

TEST(MiniCInterp, LogicalOperatorsShortCircuit) {
  // The right operand would fault (division by zero) if evaluated.
  auto out = run("int f() { int z; z = 0; return 0 && (1 / z); }");
  EXPECT_EQ(out.fault, minic::FaultKind::kNone);
  EXPECT_EQ(out.return_value, 0);
  out = run("int f() { int z; z = 0; return 1 || (1 / z); }");
  EXPECT_EQ(out.fault, minic::FaultKind::kNone);
  EXPECT_EQ(out.return_value, 1);
}

TEST(MiniCInterp, IntegerNarrowingOnTypedAssignment) {
  EXPECT_EQ(run("int f() { u8 v; v = 0x1ff; return v; }").return_value, 0xff);
  EXPECT_EQ(run("int f() { s8 v; v = 0xff; return v; }").return_value, -1);
  EXPECT_EQ(run("int f() { u16 v; v = 0x12345; return v; }").return_value,
            0x2345);
}

TEST(MiniCInterp, CastNarrowsAndSignExtends) {
  EXPECT_EQ(run("int f() { return (u8)0x1ff; }").return_value, 0xff);
  EXPECT_EQ(run("int f() { return (s8)0x80; }").return_value, -128);
}

TEST(MiniCInterp, WhileAndForLoops) {
  EXPECT_EQ(run("int f() { int s; int i; s = 0;"
                " for (i = 1; i <= 10; i++) { s += i; } return s; }")
                .return_value,
            55);
  EXPECT_EQ(run("int f() { int n; n = 0; while (n < 5) { n++; } return n; }")
                .return_value,
            5);
  EXPECT_EQ(run("int f() { int n; n = 9; do { n++; } while (0); return n; }")
                .return_value,
            10);
}

TEST(MiniCInterp, BreakAndContinue) {
  EXPECT_EQ(run("int f() { int i; int s; s = 0;"
                " for (i = 0; i < 10; i++) {"
                "   if (i == 3) { continue; }"
                "   if (i == 6) { break; }"
                "   s += i;"
                " } return s; }")
                .return_value,
            0 + 1 + 2 + 4 + 5);
}

TEST(MiniCInterp, SwitchMatchFallthroughDefault) {
  const char* tmpl =
      "int f() { int r; r = 0; switch (%d) {"
      "  case 1: r += 1;"
      "  case 2: r += 10; break;"
      "  case 3: r += 100; break;"
      "  default: r += 1000;"
      " } return r; }";
  char buf[256];
  std::snprintf(buf, sizeof(buf), tmpl, 1);
  EXPECT_EQ(run(buf).return_value, 11);  // fallthrough 1 -> 2
  std::snprintf(buf, sizeof(buf), tmpl, 3);
  EXPECT_EQ(run(buf).return_value, 100);
  std::snprintf(buf, sizeof(buf), tmpl, 9);
  EXPECT_EQ(run(buf).return_value, 1000);
}

TEST(MiniCInterp, GlobalsPersistAcrossCalls) {
  EXPECT_EQ(run("int g; void inc() { g = g + 1; }"
                "int f() { inc(); inc(); inc(); return g; }")
                .return_value,
            3);
}

TEST(MiniCInterp, ArraysReadWrite) {
  EXPECT_EQ(run("u16 b[8]; int f() { int i;"
                " for (i = 0; i < 8; i++) { b[i] = i * i; }"
                " return b[5]; }")
                .return_value,
            25);
}

TEST(MiniCInterp, StructValuesAndMembers) {
  EXPECT_EQ(run("struct S { cstring f; int t; u32 v; };"
                "int f() { S s; s.t = 7; s.v = 9; return s.t + s.v; }")
                .return_value,
            16);
}

TEST(MiniCInterp, StructGlobalInitialiser) {
  EXPECT_EQ(run("struct S { cstring f; int t; u32 v; };"
                "const S k = { \"x\", 4, 0x10 };"
                "int f() { return k.t + k.v; }")
                .return_value,
            20);
}

TEST(MiniCInterp, StructCopySemantics) {
  EXPECT_EQ(run("struct S { int v; };"
                "int f() { S a; S b; a.v = 1; b = a; b.v = 2; return a.v; }")
                .return_value,
            1);
}

// ---- fault model ------------------------------------------------------------

TEST(MiniCInterp, PanicIsHaltFault) {
  auto out = run("int f() { panic(\"VFS: unable to mount root\"); return 0; }");
  EXPECT_EQ(out.fault, minic::FaultKind::kPanic);
  EXPECT_NE(out.fault_message.find("VFS"), std::string::npos);
}

TEST(MiniCInterp, DevilAssertionIsSeparateFault) {
  auto out = run("int f() { panic(\"Devil assertion: bad value\"); return 0; }");
  EXPECT_EQ(out.fault, minic::FaultKind::kDevilAssertion);
}

TEST(MiniCInterp, InfiniteLoopHitsStepLimit) {
  auto out = run("int f() { while (1) { } return 0; }", "f", nullptr, 5000);
  EXPECT_EQ(out.fault, minic::FaultKind::kStepLimit);
}

TEST(MiniCInterp, OutOfBoundsIndexIsCrash) {
  auto out = run("u16 b[4]; int f() { b[9] = 1; return 0; }");
  EXPECT_EQ(out.fault, minic::FaultKind::kBadIndex);
  out = run("u16 b[4]; int f() { int i; i = 0 - 1; return b[i]; }");
  EXPECT_EQ(out.fault, minic::FaultKind::kBadIndex);
}

TEST(MiniCInterp, DivisionByZeroIsCrash) {
  auto out = run("int f() { int z; z = 0; return 1 / z; }");
  EXPECT_EQ(out.fault, minic::FaultKind::kDivByZero);
}

TEST(MiniCInterp, RunawayRecursionIsStackOverflow) {
  auto out = run("int f() { return f(); }");
  EXPECT_EQ(out.fault, minic::FaultKind::kStackOverflow);
}

TEST(MiniCInterp, DilEqTagMismatchIsDevilAssertion) {
  auto out = run(
      "struct A { cstring filename; int type; u32 val; };"
      "struct B { cstring filename; int type; u32 val; };"
      "int f() { A a; B b;"
      " a.filename = \"t\"; a.type = 1; a.val = 0;"
      " b.filename = \"t\"; b.type = 2; b.val = 0;"
      " return dil_eq(a, b); }");
  EXPECT_EQ(out.fault, minic::FaultKind::kDevilAssertion);
}

TEST(MiniCInterp, DilEqMatchingTagsCompareValues) {
  auto out = run(
      "struct A { cstring filename; int type; u32 val; };"
      "int f() { A a; A b;"
      " a.filename = \"t\"; a.type = 1; a.val = 5;"
      " b.filename = \"t\"; b.type = 1; b.val = 5;"
      " return dil_eq(a, b); }");
  EXPECT_EQ(out.fault, minic::FaultKind::kNone);
  EXPECT_EQ(out.return_value, 1);
}

// ---- I/O builtins ----------------------------------------------------------------

TEST(MiniCInterp, InbOutbRouteThroughEnvironment) {
  FakeIo io;
  io.values[0x1f7] = 0x50;
  auto out = run("int f() { outb(0xec, 0x1f7); return inb(0x1f7); }", "f", &io);
  EXPECT_EQ(out.return_value, 0x50);
  ASSERT_EQ(io.writes.size(), 1u);
  EXPECT_EQ(io.writes[0], (std::pair<uint32_t, uint32_t>{0x1f7, 0xec}));
}

TEST(MiniCInterp, PrintkCollectsLog) {
  auto out = run("int f() { printk(\"one\"); printk(\"two\"); return 0; }");
  ASSERT_EQ(out.log.size(), 2u);
  EXPECT_EQ(out.log[0], "one");
}

TEST(MiniCInterp, UdelayBurnsSteps) {
  auto a = run("int f() { return 0; }");
  auto b = run("int f() { udelay(1000); return 0; }");
  EXPECT_GT(b.steps_used, a.steps_used + 500);
}

// ---- coverage tracking -----------------------------------------------------------

TEST(MiniCInterp, ExecutedLinesTracked) {
  auto out = run(
      "int f() {\n"       // line 1
      "  int x;\n"        // 2
      "  x = 1;\n"        // 3
      "  if (x == 0) {\n" // 4
      "    x = 99;\n"     // 5 — not executed
      "  }\n"
      "  return x;\n"     // 7
      "}\n");
  EXPECT_TRUE(out.executed_lines.count(3));
  EXPECT_TRUE(out.executed_lines.count(4));
  EXPECT_FALSE(out.executed_lines.count(5));
  EXPECT_TRUE(out.executed_lines.count(7));
}

TEST(MiniCInterp, CaseLabelComparisonCountsAsExecution) {
  auto out = run(
      "int f() {\n"             // 1
      "  switch (2) {\n"        // 2
      "    case 1:\n"           // 3 — compared
      "      return 10;\n"      // 4 — not executed
      "    case 2:\n"           // 5 — compared, matches
      "      return 20;\n"      // 6 — executed
      "  }\n"
      "  return 0;\n"
      "}\n");
  EXPECT_EQ(out.return_value, 20);
  EXPECT_TRUE(out.executed_lines.count(3));
  EXPECT_FALSE(out.executed_lines.count(4));
  EXPECT_TRUE(out.executed_lines.count(6));
}

TEST(MiniCInterp, LabelsAfterMatchNotCompared) {
  auto out = run(
      "int f() {\n"            // 1
      "  switch (1) {\n"       // 2
      "    case 1: break;\n"   // 3
      "    case 2: break;\n"   // 4 — never compared
      "  }\n"
      "  return 0;\n"
      "}\n");
  EXPECT_TRUE(out.executed_lines.count(3));
  EXPECT_FALSE(out.executed_lines.count(4));
}

}  // namespace
