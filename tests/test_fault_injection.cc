// hw/fault_injection: the injection shim's counter-triggered semantics per
// fault kind, and the device-reset-under-fault regression — a pooled device
// recycled after a fault-injected boot must be indistinguishable from a
// fresh one (bit-identical I/O trace on the next clean boot).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "corpus/drivers.h"
#include "eval/device_bindings.h"
#include "hw/device_pool.h"
#include "hw/fault_injection.h"
#include "hw/io_bus.h"
#include "minic/program.h"

namespace {

using hw::FaultInjector;
using hw::FaultKind;
using hw::FaultPlan;

/// Scripted device: fixed read value per offset, records every access, so
/// injector semantics are observable without a behavioural model.
class ScriptedDevice final : public hw::Device {
 public:
  std::string name() const override { return "scripted"; }
  uint32_t read(uint32_t offset, int width) override {
    (void)width;
    accesses.push_back({false, offset});
    return read_value;
  }
  void write(uint32_t offset, uint32_t value, int width) override {
    (void)width;
    accesses.push_back({true, offset});
    writes.push_back(value);
  }
  void reset() override { reset_count++; }

  uint32_t read_value = 0x5a;
  std::vector<std::pair<bool, uint32_t>> accesses;  // (is_write, offset)
  std::vector<uint32_t> writes;
  int reset_count = 0;
};

FaultPlan plan_for(uint32_t port, FaultKind kind, uint32_t after,
                   uint32_t mask = 0, uint32_t value = 0) {
  FaultPlan p;
  p.port = port;
  p.kind = kind;
  p.after = after;
  p.mask = mask;
  p.value = value;
  return p;
}

TEST(FaultInjector, StuckBitsPersistFromTriggerOnward) {
  auto dev = std::make_shared<ScriptedDevice>();
  FaultInjector shim(dev, 0x100,
                     plan_for(0x102, FaultKind::kStuckOne, 2, 0x80));
  // Reads 0 and 1 pass through; reads 2, 3, ... are stuck.
  EXPECT_EQ(shim.read(2, 8), 0x5au);
  EXPECT_EQ(shim.read(2, 8), 0x5au);
  EXPECT_EQ(shim.read(2, 8), 0xdau);
  EXPECT_EQ(shim.read(2, 8), 0xdau);
  EXPECT_EQ(shim.matched(), 4u);
  EXPECT_EQ(shim.fired(), 2u);

  FaultInjector zero(dev, 0x100,
                     plan_for(0x102, FaultKind::kStuckZero, 0, 0x1a));
  EXPECT_EQ(zero.read(2, 8), 0x40u);  // 0x5a & ~0x1a
  EXPECT_EQ(zero.fired(), 1u);
}

TEST(FaultInjector, FlipFiresExactlyOnce) {
  auto dev = std::make_shared<ScriptedDevice>();
  FaultInjector shim(dev, 0x100,
                     plan_for(0x100, FaultKind::kFlipOnce, 1, 0x01));
  EXPECT_EQ(shim.read(0, 8), 0x5au);  // before the trigger
  EXPECT_EQ(shim.read(0, 8), 0x5bu);  // exactly the trigger-th read flips
  EXPECT_EQ(shim.read(0, 8), 0x5au);  // later reads are healthy again
  EXPECT_EQ(shim.fired(), 1u);
}

TEST(FaultInjector, DropWriteLosesExactlyTheTriggeredWrite) {
  auto dev = std::make_shared<ScriptedDevice>();
  FaultInjector shim(dev, 0x100,
                     plan_for(0x101, FaultKind::kDropWrite, 1));
  shim.write(1, 0xaa, 8);  // write 0 forwards
  shim.write(1, 0xbb, 8);  // write 1 is lost on the bus
  shim.write(1, 0xcc, 8);  // write 2 forwards
  EXPECT_EQ(dev->writes, (std::vector<uint32_t>{0xaa, 0xcc}));
  EXPECT_EQ(shim.fired(), 1u);
  // Reads are unaffected by a write-side fault.
  EXPECT_EQ(shim.read(1, 8), 0x5au);
  EXPECT_EQ(shim.fired(), 1u);
}

TEST(FaultInjector, FloatingBusAndNeverReadyBypassTheDevice) {
  auto dev = std::make_shared<ScriptedDevice>();
  FaultInjector floating(dev, 0x100,
                         plan_for(0x100, FaultKind::kFloatingBus, 0));
  EXPECT_EQ(floating.read(0, 8), 0xffu);
  EXPECT_EQ(floating.read(0, 32), 0xffffffffu);
  FaultInjector wedged(dev, 0x100,
                       plan_for(0x100, FaultKind::kNeverReady, 0, 0, 0x180));
  EXPECT_EQ(wedged.read(0, 8), 0x80u);  // frozen value, width-masked
  // The unplugged/wedged device never saw any of those reads — no side
  // effects (index rotation, status countdowns) may leak through.
  EXPECT_TRUE(dev->accesses.empty());
}

TEST(FaultInjector, OtherPortsAndDirectionsPassThrough) {
  auto dev = std::make_shared<ScriptedDevice>();
  FaultInjector shim(dev, 0x100,
                     plan_for(0x101, FaultKind::kStuckOne, 0, 0xff));
  EXPECT_EQ(shim.read(0, 8), 0x5au);   // different port
  EXPECT_EQ(shim.read(2, 8), 0x5au);
  shim.write(1, 0x11, 8);              // write to a read-fault port
  EXPECT_EQ(dev->writes, (std::vector<uint32_t>{0x11}));
  EXPECT_EQ(shim.matched(), 0u);
  EXPECT_EQ(shim.fired(), 0u);
  EXPECT_EQ(shim.read(1, 8), 0xffu);   // the target port does fault
}

TEST(FaultInjector, ResetForwardsAndRearmsTheCounters) {
  auto dev = std::make_shared<ScriptedDevice>();
  FaultInjector shim(dev, 0x100,
                     plan_for(0x100, FaultKind::kFlipOnce, 0, 0x01));
  EXPECT_EQ(shim.read(0, 8), 0x5bu);
  EXPECT_EQ(shim.fired(), 1u);
  shim.reset();
  EXPECT_EQ(dev->reset_count, 1);
  EXPECT_EQ(shim.matched(), 0u);
  EXPECT_EQ(shim.fired(), 0u);
  EXPECT_EQ(shim.read(0, 8), 0x5bu);  // the re-armed fault fires again
}

TEST(FaultInjector, ForwardsIdentityAndDamage) {
  auto inner = std::make_shared<ScriptedDevice>();
  FaultInjector shim(inner, 0, plan_for(0, FaultKind::kStuckZero, 0, 1));
  EXPECT_EQ(shim.name(), "scripted");
  EXPECT_FALSE(shim.damaged());
  EXPECT_EQ(shim.inner().get(), inner.get());
}

// --- device reset under fault -------------------------------------------------
//
// The campaign recycles devices through hw::DevicePool between scenario
// boots. A fault-injected boot drives the device through abnormal paths
// (lost writes, stuck status bits, half-finished protocols); reset() must
// still restore exact power-on state — verified by comparing the full I/O
// trace of a clean boot on the recycled device against a fresh one.

struct TraceCase {
  const char* device;
  FaultPlan plan;
  uint64_t faulted_budget;
};

std::vector<hw::IoAccess> clean_boot_trace(
    const eval::DeviceBinding& binding, const minic::Program& prog,
    const std::shared_ptr<hw::Device>& dev) {
  hw::IoBus bus;
  bus.enable_trace();
  bus.map(binding.port_base, binding.port_span, dev);
  auto run = minic::run_unit(*prog.unit, bus, binding.entry, 3'000'000,
                             minic::ExecEngine::kBytecodeVm);
  EXPECT_EQ(run.fault, minic::FaultKind::kNone) << run.fault_message;
  return bus.trace();
}

TEST(FaultInjector, PooledDeviceRecyclesCleanlyAfterFaultedBoots) {
  const std::vector<TraceCase> cases = {
      // Dropped control write: the busmouse C driver's setup write is lost.
      {"busmouse", plan_for(0x23e, FaultKind::kDropWrite, 0), 3'000'000},
      // Stuck signature bit: the driver panics mid-protocol.
      {"busmouse", plan_for(0x23d, FaultKind::kStuckOne, 0, 0x02), 3'000'000},
      // Dropped IDE command write: the boot wedges polling for data.
      {"ide", plan_for(0x1f7, FaultKind::kDropWrite, 0), 200'000},
      // BSY stuck high: the wait loop burns its budget (hang path).
      {"ide", plan_for(0x1f7, FaultKind::kStuckOne, 0, 0x80), 200'000},
  };
  for (const TraceCase& tc : cases) {
    SCOPED_TRACE(std::string(tc.device) + " under " + tc.plan.describe());
    eval::DeviceBinding binding = eval::binding_for(tc.device);
    const corpus::CampaignDrivers* drivers = nullptr;
    for (const auto& d : corpus::campaign_drivers()) {
      if (binding.device == d.device) drivers = &d;
    }
    ASSERT_NE(drivers, nullptr);
    minic::Program prog = minic::compile("driver.c", drivers->c_driver());
    ASSERT_TRUE(prog.ok()) << prog.diags.render();

    hw::DevicePool pool(binding.make_device);
    auto dev = pool.acquire();
    {
      // Fault-injected boot: outcome irrelevant, device state is the point.
      hw::IoBus bus;
      auto shim = std::make_shared<FaultInjector>(dev, binding.port_base,
                                                  tc.plan);
      bus.map(binding.port_base, binding.port_span, shim);
      auto run = minic::run_unit(*prog.unit, bus, binding.entry,
                                 tc.faulted_budget,
                                 minic::ExecEngine::kBytecodeVm);
      ASSERT_NE(run.fault, minic::FaultKind::kInternal) << run.fault_message;
      EXPECT_GT(shim->fired(), 0u) << "scenario never triggered";
      bus = hw::IoBus();
      shim.reset();
      pool.release(std::move(dev));
    }

    auto recycled = pool.acquire();  // the pool's single idle device, reset
    auto fresh = binding.make_device();
    auto recycled_trace = clean_boot_trace(binding, prog, recycled);
    auto fresh_trace = clean_boot_trace(binding, prog, fresh);
    ASSERT_EQ(recycled_trace.size(), fresh_trace.size());
    for (size_t i = 0; i < fresh_trace.size(); ++i) {
      EXPECT_EQ(recycled_trace[i].is_write, fresh_trace[i].is_write) << i;
      EXPECT_EQ(recycled_trace[i].port, fresh_trace[i].port) << i;
      EXPECT_EQ(recycled_trace[i].value, fresh_trace[i].value) << i;
      EXPECT_EQ(recycled_trace[i].width, fresh_trace[i].width) << i;
    }
  }
}

}  // namespace
