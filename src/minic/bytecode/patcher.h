// Bytecode patcher: boots token-local mutants without recompiling.
//
// The campaign's clean tail compile records, per mutation site, the patch
// points the site's token lowered to (PatchTable, bytecode.h). A Patcher
// built from that table classifies each mutant as *patchable* — its effect
// on the lowered code is a pure operand rewrite (binop opcode swap, new
// immediate, new global slot, new callee index) — or *structure-changing*,
// in which case the caller falls back to the regular tail recompile.
//
// Why operand rewrites are sound: every lowering the compiler emits mirrors
// the walker's pre-order charge placement exactly, fused or not, so a
// patched module and a recompiled module of the same mutant are
// observationally identical even when the recompile would have picked a
// different fusion. The only hard constraints are encoding limits (the u16
// literal of a fused kBinImmJump, the 32-bit halves of a packed port/mask),
// and those force a fallback, never a wrong answer. Classification is
// default-deny: any opcode/role pair the patcher does not recognise falls
// back to recompilation.
//
// Precondition the caller owes: the request must describe a mutant whose
// RE-PARSE keeps the clean tree shape. The patcher rewrites instructions of
// the clean lowering in place, so an operator swap across precedence levels
// (`a | b | c` -> `a | b & c` re-associates) or any replacement that merges
// with adjacent tokens is outside its model — the campaign's request
// derivation (eval/driver_campaign.cc) proves tree preservation token-wise
// before building a request and recompiles otherwise.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "minic/bytecode/bytecode.h"
#include "minic/lexer.h"

namespace minic::bytecode {

/// One token-local rewrite against the clean tail module. The caller (the
/// campaign engine) derives this from a mutation::Mutant: operator sites
/// carry the replacement operator token, literal sites the replacement
/// value, identifier sites both spellings (the patcher resolves them
/// against its global/function/macro tables).
struct PatchRequest {
  enum class Kind : uint8_t { kOperator, kLiteral, kIdentifier };
  Kind kind = Kind::kLiteral;
  uint32_t site = kNoSite;  // mutation::SiteId
  Tok new_op = Tok::kEof;   // kOperator
  uint64_t value = 0;       // kLiteral
  std::string original;     // kIdentifier: the clean token's spelling
  std::string replacement;  // kIdentifier: the mutant's spelling
};

/// Classifies and applies patch requests. Built once per campaign from the
/// clean tail compile; `apply` is const and safe to call from the parallel
/// boot phase (classification is a pure function of the request, so the
/// patched/fallback split is identical at any thread count).
class Patcher {
 public:
  /// `clean_tail` is the module the recording compile produced (cloned
  /// internally, so the caller's copy need not outlive the patcher);
  /// `prefix_unit`/`tail_unit` are the units it was compiled from; `macros`
  /// the final macro table (prefix seeds + tail definitions); `table` the
  /// recorded patch points.
  Patcher(const Module& clean_tail, const Unit& prefix_unit,
          const Unit& tail_unit, const MacroTable& macros, PatchTable table);

  /// Returns the patched module, or nullopt when the mutant is
  /// structure-changing and must be recompiled. Throws std::runtime_error
  /// when the patch table references code that does not exist (a corrupted
  /// table must fail loudly, not boot the wrong driver).
  [[nodiscard]] std::optional<Module> apply(const PatchRequest& req) const;

  /// True when `name` is an object macro whose body is one integer literal
  /// (the shape whose site tag survives expansion). Exposed so the campaign
  /// engine can classify identifier mutants without re-deriving macro shape.
  [[nodiscard]] bool single_int_macro(const std::string& name) const {
    return macro_values_.count(name) != 0;
  }
  [[nodiscard]] bool is_macro(const std::string& name) const {
    return macro_names_.count(name) != 0;
  }

 private:
  struct GlobalInfo {
    uint16_t slot = 0;
    Type type;
    bool is_const = false;
    bool is_array = false;
  };
  struct FnInfo {
    uint32_t index = 0;
    LeafShape shape = LeafShape::kNone;
    std::vector<Type> params;
    Type ret;
  };
  /// Planned single-field rewrite of one instruction.
  struct Rewrite {
    uint32_t fn = 0;
    uint32_t insn = 0;
    Insn value;  // the fully rewritten instruction
  };

  [[nodiscard]] const Insn& insn_at(const PatchPoint& p) const;
  [[nodiscard]] Module clone_clean() const;
  [[nodiscard]] bool plan_operator(const PatchPoint& p, Tok new_op,
                                   std::vector<Rewrite>& plan) const;
  [[nodiscard]] bool plan_literal(const PatchPoint& p, uint64_t value,
                                  std::vector<Rewrite>& plan) const;
  [[nodiscard]] bool plan_identifier(const PatchRequest& req,
                                     const std::vector<PatchPoint>& points,
                                     std::vector<Rewrite>& plan) const;

  Module clean_;
  uint32_t fn_base_ = 0;
  std::unordered_map<uint32_t, std::vector<PatchPoint>> points_by_site_;
  std::map<std::string, GlobalInfo> globals_;
  std::set<std::string> ambiguous_globals_;
  std::map<std::string, FnInfo> fns_;
  std::vector<LeafShape> shapes_;  // per absolute fn index
  std::vector<std::set<std::string>> tail_fn_locals_;  // per tail fn
  std::map<std::string, uint64_t> macro_values_;  // single-int-literal bodies
  std::set<std::string> macro_names_;
};

}  // namespace minic::bytecode
