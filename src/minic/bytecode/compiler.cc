// AST -> register bytecode lowering. See bytecode.h for the step-accounting
// contract with the tree walker; every emit() call below is annotated with
// the walker behaviour it mirrors.
#include "minic/bytecode/bytecode.h"

#include <map>

#include "minic/builtins.h"
#include "minic/interp.h"

namespace minic::bytecode {

namespace {

[[noreturn]] void internal(const std::string& msg) {
  throw Fault{FaultKind::kInternal, msg};
}

/// Value category of an expression / storage location, decided statically
/// from the type checker's annotations.
enum class VK { kInt, kStr, kStruct };

VK vk_of(const Type& t) {
  if (t.kind == TypeKind::kCString) return VK::kStr;
  if (t.is_struct()) return VK::kStruct;
  return VK::kInt;  // integers and void results behave as integer 0
}

/// Shared per-module state: string pool, struct default templates, global
/// storage classification. In tail mode (`seg` non-null) the builder lowers
/// only the tail unit: intern lookups fall through to the segment's pools
/// and fresh entries get indices rebased past them, so emitted code indexes
/// directly into the spliced prefix+tail tables.
struct ModuleBuilder {
  const Unit& unit;               // the unit being lowered (tail or whole)
  const Unit* prefix_unit = nullptr;  // prefix decls when lowering a tail
  const ModuleSegment* seg = nullptr;
  PatchTable* patch_out = nullptr;    // clean recording compile only
  Module mod;
  std::map<std::string, uint32_t> string_ix;  // local additions, absolute ix
  std::map<std::string, uint32_t> struct_ix;  // local additions, absolute ix
  size_t global_base = 0;
  size_t string_base = 0;
  size_t struct_base = 0;

  explicit ModuleBuilder(const Unit& u) : unit(u) {
    mod.global_count = u.globals.size();
    build_struct_defaults();
  }

  ModuleBuilder(const Unit& tail, const Unit& prefix, const ModuleSegment& s)
      : unit(tail),
        prefix_unit(&prefix),
        seg(&s),
        global_base(s.global_count),
        string_base(s.strings.size()),
        struct_base(s.struct_defaults.size()) {
    mod.global_count = global_base + tail.globals.size();
    build_struct_defaults();
  }

  uint32_t intern(const std::string& s) {
    if (seg) {
      auto hit = seg->string_ix.find(s);
      if (hit != seg->string_ix.end()) return hit->second;
    }
    auto [it, inserted] = string_ix.emplace(
        s, static_cast<uint32_t>(string_base + mod.strings.size()));
    if (inserted) mod.strings.push_back(s);
    return it->second;
  }

  /// Absolute struct-defaults index for `name`, or null when unknown.
  const uint32_t* struct_index(const std::string& name) const {
    if (seg) {
      auto hit = seg->struct_ix.find(name);
      if (hit != seg->struct_ix.end()) return &hit->second;
    }
    auto it = struct_ix.find(name);
    return it == struct_ix.end() ? nullptr : &it->second;
  }

  void build_struct_defaults() {
    for (const auto& sd : unit.structs) {
      // First definition wins, as in the walker's structs_ map — and the
      // prefix's definitions precede the tail's.
      if (seg && seg->struct_ix.count(sd.name)) continue;
      struct_ix.emplace(
          sd.name, static_cast<uint32_t>(struct_base + struct_ix.size()));
    }
    mod.struct_defaults.resize(struct_ix.size());
    for (const auto& sd : unit.structs) {
      auto it = struct_ix.find(sd.name);
      if (it == struct_ix.end()) continue;  // defined by the prefix
      auto& slot = mod.struct_defaults[it->second - struct_base];
      if (!slot.empty()) continue;
      slot = default_fields(sd, 0);
    }
  }

  std::vector<VmValue> default_fields(const StructDecl& sd, int depth) {
    if (depth > 16) internal("struct nesting too deep in " + sd.name);
    std::vector<VmValue> out;
    for (const auto& f : sd.fields) {
      VmValue v;
      if (f.type.is_struct()) {
        if (const StructDecl* inner = find_struct(f.type.struct_name)) {
          v.fields = default_fields(*inner, depth + 1);
        }
      }
      out.push_back(std::move(v));
    }
    return out;
  }

  const StructDecl* find_struct(const std::string& name) const {
    if (prefix_unit) {
      for (const auto& sd : prefix_unit->structs) {
        if (sd.name == name) return &sd;
      }
    }
    for (const auto& sd : unit.structs) {
      if (sd.name == name) return &sd;
    }
    return nullptr;
  }

  /// Global declaration behind an absolute (prefix-continuing) slot.
  const GlobalDecl& global(int32_t slot) const {
    size_t ix = static_cast<size_t>(slot);
    if (ix < global_base) return prefix_unit->globals[ix];
    return unit.globals[ix - global_base];
  }
};

/// Lowers one function (or the synthetic globals initialiser).
class FunctionCompiler {
 public:
  FunctionCompiler(ModuleBuilder& mb, const FunctionDecl* decl,
                   uint32_t fn_id)
      : mb_(mb), decl_(decl), fn_id_(fn_id) {
    if (decl_) {
      out_.name = decl_->name;
      out_.nslots = decl_->frame_slots;
      slot_types_.resize(decl_->frame_slots);
      slot_is_array_.assign(decl_->frame_slots, false);
      for (const auto& p : decl_->params) {
        ParamSpec ps;
        ps.kind = static_cast<ParamSpec::Kind>(vk_of(p.type));
        ps.coerce = pack_coerce(p.type);
        out_.params.push_back(ps);
      }
      size_t slot = 0;
      for (const auto& p : decl_->params) {
        if (slot < slot_types_.size()) slot_types_[slot++] = p.type;
      }
      collect_decls(*decl_->body);
    } else {
      out_.name = "<globals>";
    }
    temp_base_ = out_.nslots;
    temp_cur_ = temp_base_;
    temp_max_ = temp_base_;
  }

  CompiledFunction compile_body() {
    compile_stmt(*decl_->body);
    emit_free(Op::kRetZero, 0, decl_->loc.line);
    return finish();
  }

  CompiledFunction compile_globals_init() {
    for (size_t g = 0; g < mb_.unit.globals.size(); ++g) {
      const GlobalDecl& gd = mb_.unit.globals[g];
      uint16_t greg = static_cast<uint16_t>(mb_.global_base + g);
      uint16_t save = temp_cur_;
      if (gd.array_size) {
        // Walker: slot.arr.assign(size, 0) — no step, no mark.
        Insn in = base(Op::kInitGlobalArr, gd.loc.line);
        in.a = greg;
        in.imm = static_cast<int64_t>(*gd.array_size);
        push(in);
      } else if (!gd.init_list.empty()) {
        emit_mark(gd.loc.line);
        const StructDecl* sd = mb_.find_struct(gd.type.struct_name);
        size_t nfields = sd ? sd->fields.size() : 0;
        for (size_t f = 0; f < gd.init_list.size() && f < nfields; ++f) {
          uint16_t rv = compile_expr(*gd.init_list[f]);
          const Type& ft = sd->fields[f].type;
          Op op = vk_of(ft) == VK::kInt     ? Op::kStoreGFieldIntF
                  : vk_of(ft) == VK::kStr   ? Op::kStoreGFieldStrF
                                            : Op::kStoreGFieldStructF;
          Insn in = base(op, gd.loc.line);
          in.a = greg;
          in.b = static_cast<uint16_t>(f);
          in.c = rv;
          in.w = pack_coerce(ft);
          push(in);
        }
      } else if (gd.init) {
        emit_mark(gd.loc.line);
        uint16_t rv = compile_expr(*gd.init);
        Op op = vk_of(gd.type) == VK::kInt   ? Op::kStoreGlobalIntF
                : vk_of(gd.type) == VK::kStr ? Op::kStoreGlobalStrF
                                             : Op::kStoreGlobalStructF;
        Insn in = base(op, gd.loc.line);
        in.a = greg;
        in.b = rv;
        in.w = pack_coerce(gd.type);
        push(in);
      }
      // No initialiser: a freshly constructed global register already
      // matches the walker's default value observably (integer 0, empty
      // string, absent fields read back as 0 via the kGetField fallback).
      temp_cur_ = save;
    }
    emit_free(Op::kRetZero, 0, 0);
    return finish();
  }

 private:
  CompiledFunction finish() {
    out_.nregs = temp_max_;
    if (out_.nregs > 0xffff) internal("function too large: " + out_.name);
    return std::move(out_);
  }

  // ---- slot bookkeeping ----------------------------------------------------
  void collect_decls(const Stmt& s) {
    if (s.kind == StmtKind::kDecl && s.frame_slot >= 0 &&
        static_cast<size_t>(s.frame_slot) < slot_types_.size()) {
      slot_types_[static_cast<size_t>(s.frame_slot)] = s.decl_type;
      slot_is_array_[static_cast<size_t>(s.frame_slot)] =
          s.array_size.has_value();
    }
    for (const auto& child : s.body) {
      if (child) collect_decls(*child);
    }
    for (const auto& c : s.cases) {
      for (const auto& child : c.body) collect_decls(*child);
    }
  }

  /// Coercion applied by a scalar store to this slot. The walker coerces to
  /// the slot's *value* type, which for an array slot is the untouched
  /// default (s32), not the element type.
  uint8_t local_store_coerce(int32_t slot) const {
    size_t ix = static_cast<size_t>(slot);
    if (ix >= slot_types_.size()) return 0;
    if (slot_is_array_[ix]) return pack_coerce(Type::int_type());
    return pack_coerce(slot_types_[ix]);
  }
  uint8_t global_store_coerce(int32_t gslot) const {
    const GlobalDecl& g = mb_.global(gslot);
    if (g.array_size) return pack_coerce(Type::int_type());
    return pack_coerce(g.type);
  }

  // ---- registers -----------------------------------------------------------
  uint16_t alloc_temp() {
    if (temp_cur_ >= 0xfffe) internal("expression too deep: " + out_.name);
    uint16_t r = static_cast<uint16_t>(temp_cur_++);
    if (temp_cur_ > temp_max_) temp_max_ = temp_cur_;
    return r;
  }
  uint16_t dst_or_temp(int dst) {
    return dst >= 0 ? static_cast<uint16_t>(dst) : alloc_temp();
  }

  // ---- pre-order charge placement ------------------------------------------
  /// True when a parent node's charge may be delayed past this subtree
  /// without any observable difference from the walker's pre-order
  /// charging. That requires every charge the subtree emits to sit
  /// statically on `line` (same exhaustion message), and the subtree to be
  /// free of faults and side effects — a throwing child (div/mod by zero,
  /// array bounds, Devil assertion) would leave a steps_used one short of
  /// the walker's, and an I/O or log side effect would land one charge
  /// early, mutating device state the walker never touched at the same
  /// budget. User-function calls fail both conditions (their bodies charge
  /// on their own lines).
  bool confined(const Expr& e, uint32_t line) const {
    if (e.loc.line != line) return false;
    switch (e.kind) {
      case ExprKind::kIntLit:
      case ExprKind::kStringLit:
      case ExprKind::kIdent:
        return true;
      case ExprKind::kUnary:
      case ExprKind::kCast:
      case ExprKind::kMember:
      case ExprKind::kCond:
        break;  // pure when the children are
      case ExprKind::kBinary:
        if (e.op == Tok::kSlash || e.op == Tok::kPercent) return false;
        break;  // no other operator can fault
      case ExprKind::kAssign:
        // Scalar and single-level member stores cannot fault; element
        // stores can (bounds), deeper member chains lower to kUnreachable.
        // (No compound assignment maps to / or %, so the operation itself
        // is fault-free.)
        if (e.sub[0]->kind == ExprKind::kIdent) break;
        if (e.sub[0]->kind == ExprKind::kMember &&
            e.sub[0]->sub[0]->kind == ExprKind::kIdent) {
          break;
        }
        return false;
      case ExprKind::kIndex:
        return false;  // bad-index fault
      case ExprKind::kCall: {
        if (e.builtin_index < 0) return false;
        switch (static_cast<Builtin>(e.builtin_index)) {
          case Builtin::kStrcmp:
          case Builtin::kDilVal:
            break;  // pure
          case Builtin::kDilEq:
            // Integer mode is pure; struct mode can throw the type-tag
            // assertion.
            if (!e.sub.empty() && e.sub[0]->type.is_struct()) return false;
            break;
          default:
            return false;  // port I/O, udelay burn, panic, printk log
        }
        break;
      }
    }
    for (const auto& sub : e.sub) {
      if (sub && !confined(*sub, line)) return false;
    }
    return true;
  }

  /// Emits the node's pre-order charge when any of `children` is not
  /// confined to its line. Returns true when the action instruction must be
  /// marked free.
  bool maybe_precharge(std::initializer_list<const Expr*> children,
                       uint32_t line) {
    for (const Expr* c : children) {
      if (c && !confined(*c, line)) {
        emit_step(line);
        return true;
      }
    }
    return false;
  }

  // ---- emission ------------------------------------------------------------
  Insn base(Op op, uint32_t line) {
    Insn in;
    in.op = op;
    in.line = line;
    return in;
  }
  size_t push(const Insn& in) {
    out_.code.push_back(in);
    return out_.code.size() - 1;
  }
  /// Records a mutation-site patch point at `insn` (see PatchTable). No-op
  /// outside the campaign's clean recording compile or for untagged tokens.
  /// Points are recorded after the insn is pushed, so emit-time fusions that
  /// rewrite it in place (kBinJump & co) leave the index valid; the patcher
  /// dispatches on the final opcode.
  void record(uint32_t site, size_t insn, PatchRole role) {
    if (site == kNoSite || mb_.patch_out == nullptr) return;
    mb_.patch_out->points.push_back(
        {site, fn_id_, static_cast<uint32_t>(insn), role});
  }
  size_t here() const { return out_.code.size(); }
  /// Marks the current position as a jump target: emit-time fusion must not
  /// merge across it.
  void bind_label() { barrier_ = here(); }
  void patch(size_t ins, size_t target) {
    out_.code[ins].imm = static_cast<int64_t>(target);
  }
  void patch_all(const std::vector<size_t>& list, size_t target) {
    for (size_t ins : list) patch(ins, target);
  }

  bool can_fuse_last(Op op) const {
    return !out_.code.empty() && out_.code.size() > barrier_ &&
           out_.code.back().op == op;
  }

  void emit_step(uint32_t line) {
    push(base(Op::kStep, line));
  }
  void emit_step_mark(uint32_t line) {
    // Fuse a preceding statement-entry kStep (block entry followed by its
    // first statement): charge order and lines match the walker exactly
    // because the fused insn keeps both lines.
    if (can_fuse_last(Op::kStep)) {
      Insn& prev = out_.code.back();
      prev.op = Op::kStepStepMark;
      prev.imm = static_cast<int64_t>(line);
      return;
    }
    push(base(Op::kStepMark, line));
  }
  void emit_mark(uint32_t line) { push(base(Op::kMark, line)); }
  void emit_free(Op op, uint16_t a, uint32_t line) {
    Insn in = base(op, line);
    in.a = a;
    push(in);
  }
  /// Emits an unconditional jump, fusing into a preceding kStep (the empty
  /// loop-body pattern `while (...) {}`). Returns the insn to patch.
  size_t emit_jump() {
    if (can_fuse_last(Op::kStep)) {
      out_.code.back().op = Op::kStepJump;
      return out_.code.size() - 1;
    }
    return push(base(Op::kJump, 0));
  }
  size_t emit_branch(Op op, uint16_t a, uint16_t b = 0) {
    Insn in = base(op, 0);
    in.a = a;
    in.b = b;
    return push(in);
  }

  /// Maps a 3-register binop opcode back to its operator token (compare+
  /// branch fusion); kEof when the opcode is not a plain binop.
  static Tok binop_tok(Op op) {
    switch (op) {
      case Op::kAdd: return Tok::kPlus;
      case Op::kSub: return Tok::kMinus;
      case Op::kMul: return Tok::kStar;
      case Op::kDiv: return Tok::kSlash;
      case Op::kMod: return Tok::kPercent;
      case Op::kBitAnd: return Tok::kAmp;
      case Op::kBitOr: return Tok::kPipe;
      case Op::kBitXor: return Tok::kCaret;
      case Op::kShl: return Tok::kShl;
      case Op::kShr: return Tok::kShr;
      case Op::kCmpEq: return Tok::kEq;
      case Op::kCmpNe: return Tok::kNe;
      case Op::kCmpLt: return Tok::kLt;
      case Op::kCmpGt: return Tok::kGt;
      case Op::kCmpLe: return Tok::kLe;
      case Op::kCmpGe: return Tok::kGe;
      default: return Tok::kEof;
    }
  }

  /// Emits the jump-if-zero consuming condition register `c`. When the
  /// preceding instruction produced `c` into a dead temporary (the branch
  /// is its only consumer: the condition was compiled immediately before,
  /// into a register at or above the frame slots) and is a fusable
  /// compare/binop/dil_eq, the branch fuses into it — one dispatch per
  /// `if (x == y)` / `while (stat & MASK)` header, with the producer's
  /// charge count, line and free flag preserved and the dead result write
  /// dropped. Returns the instruction whose `imm` takes the jump target.
  size_t emit_jump_if_zero(uint16_t c) {
    if (!out_.code.empty() && out_.code.size() > barrier_) {
      Insn& prev = out_.code.back();
      if (prev.a == c && c >= temp_base_) {
        if (Tok t = binop_tok(prev.op); t != Tok::kEof) {
          prev.op = Op::kBinJump;
          prev.w = static_cast<uint8_t>(t);
          prev.a = 0;
          return out_.code.size() - 1;
        }
        if (prev.op == Op::kBinImm && prev.imm >= 0 && prev.imm <= 0xffff) {
          prev.op = Op::kBinImmJump;
          prev.c = static_cast<uint16_t>(prev.imm);
          prev.a = 0;
          prev.imm = 0;
          return out_.code.size() - 1;
        }
        if (prev.op == Op::kDilEqInt || prev.op == Op::kDilEqStruct) {
          prev.op = prev.op == Op::kDilEqInt ? Op::kDilEqIntJump
                                             : Op::kDilEqStructJump;
          prev.a = 0;
          return out_.code.size() - 1;
        }
      }
    }
    return emit_branch(Op::kJumpIfZero, c);
  }

  // ---- statements ----------------------------------------------------------
  struct LoopCtx {
    std::vector<size_t> breaks;
    std::vector<size_t> continues;
  };

  void compile_stmt(const Stmt& s) {
    uint16_t save = temp_cur_;
    compile_stmt_inner(s);
    temp_cur_ = save;
  }

  void compile_stmt_inner(const Stmt& s) {
    switch (s.kind) {
      case StmtKind::kEmpty:
        emit_step(s.loc.line);
        return;
      case StmtKind::kExpr:
        emit_step_mark(s.loc.line);
        compile_expr(*s.expr[0], -1, /*used=*/false);
        return;
      case StmtKind::kDecl:
        compile_decl(s);
        return;
      case StmtKind::kBlock:
        emit_step(s.loc.line);
        for (const auto& child : s.body) compile_stmt(*child);
        return;
      case StmtKind::kIf: {
        emit_step_mark(s.loc.line);
        uint16_t c = compile_expr(*s.expr[0]);
        size_t jfalse = emit_jump_if_zero(c);
        compile_stmt(*s.body[0]);
        if (s.body.size() > 1) {
          size_t jend = emit_jump();
          bind_label();
          patch(jfalse, here());
          compile_stmt(*s.body[1]);
          bind_label();
          patch(jend, here());
        } else {
          bind_label();
          patch(jfalse, here());
        }
        return;
      }
      case StmtKind::kWhile: {
        emit_step(s.loc.line);  // exec() entry, before the first iteration
        bind_label();
        size_t loop = here();
        emit_step_mark(s.loc.line);  // per-iteration charge + mark
        uint16_t c = compile_expr(*s.expr[0]);
        size_t jend = emit_jump_if_zero(c);
        loops_.emplace_back();
        compile_stmt(*s.body[0]);
        patch(emit_jump(), loop);
        bind_label();
        LoopCtx ctx = std::move(loops_.back());
        loops_.pop_back();
        patch(jend, here());
        patch_all(ctx.breaks, here());
        patch_all(ctx.continues, loop);
        return;
      }
      case StmtKind::kDoWhile: {
        emit_step(s.loc.line);
        bind_label();
        size_t loop = here();
        emit_step_mark(s.loc.line);
        loops_.emplace_back();
        compile_stmt(*s.body[0]);
        bind_label();
        size_t cont = here();
        uint16_t c = compile_expr(*s.expr[0]);
        Insn in = base(Op::kJumpIfNotZero, 0);
        in.a = c;
        in.imm = static_cast<int64_t>(loop);
        push(in);
        bind_label();
        LoopCtx ctx = std::move(loops_.back());
        loops_.pop_back();
        patch_all(ctx.breaks, here());
        patch_all(ctx.continues, cont);
        return;
      }
      case StmtKind::kFor: {
        emit_step(s.loc.line);
        if (s.body.size() > 1 && s.body[1]) compile_stmt(*s.body[1]);
        bind_label();
        size_t loop = here();
        emit_step_mark(s.loc.line);
        size_t jend = static_cast<size_t>(-1);
        if (!s.expr.empty()) {
          uint16_t c = compile_expr(*s.expr[0]);
          jend = emit_jump_if_zero(c);
        }
        loops_.emplace_back();
        compile_stmt(*s.body[0]);
        bind_label();
        size_t cont = here();
        if (s.expr.size() > 1) {
          uint16_t save = temp_cur_;
          compile_expr(*s.expr[1], -1, /*used=*/false);
          temp_cur_ = save;
        }
        patch(emit_jump(), loop);
        bind_label();
        LoopCtx ctx = std::move(loops_.back());
        loops_.pop_back();
        if (jend != static_cast<size_t>(-1)) patch(jend, here());
        patch_all(ctx.breaks, here());
        patch_all(ctx.continues, cont);
        return;
      }
      case StmtKind::kReturn: {
        emit_step_mark(s.loc.line);
        if (s.expr.empty()) {
          emit_free(Op::kRetZero, 0, s.loc.line);
        } else {
          uint16_t r = compile_expr(*s.expr[0]);
          emit_free(Op::kRet, r, s.loc.line);
        }
        return;
      }
      case StmtKind::kBreak: {
        emit_step_mark(s.loc.line);
        size_t j = emit_jump();
        if (loops_.empty()) internal("break outside loop in " + out_.name);
        loops_.back().breaks.push_back(j);
        return;
      }
      case StmtKind::kContinue: {
        emit_step_mark(s.loc.line);
        size_t j = emit_jump();
        if (loops_.empty()) internal("continue outside loop in " + out_.name);
        loops_.back().continues.push_back(j);
        return;
      }
      case StmtKind::kSwitch:
        compile_switch(s);
        return;
    }
  }

  void compile_decl(const Stmt& s) {
    if (s.frame_slot < 0) internal("unresolved local " + s.decl_name);
    uint16_t slot = static_cast<uint16_t>(s.frame_slot);
    if (s.array_size) {
      Insn in = base(Op::kDeclArr, s.loc.line);
      in.a = slot;
      in.imm = static_cast<int64_t>(*s.array_size);
      push(in);
      return;
    }
    if (!s.expr.empty()) {
      // Walker: step+mark, default the slot, then eval+store (the default
      // is unobservable under the immediate store).
      emit_step_mark(s.loc.line);
      uint16_t rv = compile_expr(*s.expr[0]);
      Op op = vk_of(s.decl_type) == VK::kInt   ? Op::kStoreLocalIntF
              : vk_of(s.decl_type) == VK::kStr ? Op::kStoreLocalStrF
                                               : Op::kStoreLocalStructF;
      Insn in = base(op, s.loc.line);
      in.a = slot;
      in.b = rv;
      in.w = pack_coerce(s.decl_type);
      push(in);
      return;
    }
    switch (vk_of(s.decl_type)) {
      case VK::kInt: {
        Insn in = base(Op::kDeclIntZ, s.loc.line);
        in.a = slot;
        push(in);
        return;
      }
      case VK::kStr: {
        Insn in = base(Op::kDeclStrZ, s.loc.line);
        in.a = slot;
        push(in);
        return;
      }
      case VK::kStruct: {
        Insn in = base(Op::kDeclStructZ, s.loc.line);
        in.a = slot;
        const uint32_t* ix = mb_.struct_index(s.decl_type.struct_name);
        if (!ix) internal("unknown struct " + s.decl_type.struct_name);
        in.imm = static_cast<int64_t>(*ix);
        push(in);
        return;
      }
    }
  }

  void compile_switch(const Stmt& s) {
    emit_step_mark(s.loc.line);
    uint16_t operand = compile_expr(*s.expr[0]);
    // Walker scan order: every non-default case in declaration order is
    // marked and its value evaluated until the first match; default is the
    // fallback position.
    std::vector<size_t> arm_jumps(s.cases.size(), static_cast<size_t>(-1));
    size_t default_ix = s.cases.size();
    for (size_t i = 0; i < s.cases.size(); ++i) {
      const SwitchCase& c = s.cases[i];
      if (c.is_default) {
        default_ix = i;
        continue;
      }
      if (c.value->kind == ExprKind::kIntLit) {
        uint16_t t = alloc_temp();
        Insn in = base(Op::kCaseTest, c.loc.line);
        in.a = operand;
        in.b = t;
        in.imm = static_cast<int64_t>(c.value->int_value);
        record(c.value->site, push(in), PatchRole::kLiteral);
        arm_jumps[i] = emit_branch(Op::kJumpIfNotZero, t);
      } else {
        emit_mark(c.loc.line);
        uint16_t v = compile_expr(*c.value);
        arm_jumps[i] = emit_branch(Op::kJumpIfEqual, operand, v);
      }
    }
    size_t jdefault = emit_jump();  // to default arm, or past the switch
    loops_.emplace_back();          // break binds to the switch end
    std::vector<size_t> arm_pos(s.cases.size(), 0);
    for (size_t i = 0; i < s.cases.size(); ++i) {
      bind_label();
      arm_pos[i] = here();
      for (const auto& child : s.cases[i].body) compile_stmt(*child);
    }
    bind_label();
    size_t end = here();
    LoopCtx ctx = std::move(loops_.back());
    loops_.pop_back();
    // Walker: a `continue` inside a switch propagates out of the switch to
    // the enclosing loop (Flow::kContinue is "not kBreak / not kNormal").
    if (!ctx.continues.empty()) {
      if (loops_.empty()) internal("continue outside loop in " + out_.name);
      for (size_t j : ctx.continues) loops_.back().continues.push_back(j);
    }
    patch_all(ctx.breaks, end);
    for (size_t i = 0; i < s.cases.size(); ++i) {
      if (arm_jumps[i] != static_cast<size_t>(-1)) {
        patch(arm_jumps[i], arm_pos[i]);
      }
    }
    patch(jdefault, default_ix < s.cases.size() ? arm_pos[default_ix] : end);
  }

  // ---- expressions ---------------------------------------------------------
  /// Compiles `e`, returning the register holding its value. `dst` >= 0
  /// forces the result register (used for ?: arms and call arguments).
  /// `used` == false lets assignments skip materialising their value.
  uint16_t compile_expr(const Expr& e, int dst = -1, bool used = true) {
    switch (e.kind) {
      case ExprKind::kIntLit: {
        uint16_t r = dst_or_temp(dst);
        Insn in = base(Op::kLoadConst, e.loc.line);
        in.a = r;
        in.imm = static_cast<int64_t>(e.int_value);
        record(e.site, push(in), PatchRole::kLiteral);
        return r;
      }
      case ExprKind::kStringLit: {
        uint16_t r = dst_or_temp(dst);
        Insn in = base(Op::kLoadStr, e.loc.line);
        in.a = r;
        in.imm = static_cast<int64_t>(mb_.intern(e.text));
        push(in);
        return r;
      }
      case ExprKind::kIdent: {
        uint16_t r = dst_or_temp(dst);
        Insn in;
        if (e.frame_slot >= 0) {
          Op op = vk_of(e.type) == VK::kInt   ? Op::kMoveInt
                  : vk_of(e.type) == VK::kStr ? Op::kMoveStr
                                              : Op::kMoveStruct;
          in = base(op, e.loc.line);
          in.b = static_cast<uint16_t>(e.frame_slot);
        } else if (e.global_slot >= 0) {
          Op op = vk_of(e.type) == VK::kInt   ? Op::kLoadGlobalInt
                  : vk_of(e.type) == VK::kStr ? Op::kLoadGlobalStr
                                              : Op::kLoadGlobalStruct;
          in = base(op, e.loc.line);
          in.b = static_cast<uint16_t>(e.global_slot);
        } else {
          return emit_unreachable("unbound name " + e.text, e.loc.line, dst);
        }
        in.a = r;
        size_t ix = push(in);
        if (e.frame_slot < 0) record(e.site, ix, PatchRole::kGlobalLoad);
        return r;
      }
      case ExprKind::kUnary: {
        bool pre = maybe_precharge({e.sub[0].get()}, e.loc.line);
        uint16_t rs = compile_expr(*e.sub[0]);
        uint16_t r = dst_or_temp(dst);
        Op op;
        switch (e.op) {
          case Tok::kMinus: op = Op::kNeg; break;
          case Tok::kPlus: op = Op::kMoveInt; break;
          case Tok::kTilde: op = Op::kBitNot; break;
          case Tok::kBang: op = Op::kLogNot; break;
          default:
            return emit_unreachable("bad unary op", e.loc.line, dst);
        }
        Insn in = base(op, e.loc.line);
        if (pre) in.flags = kInsnFree;
        in.a = r;
        in.b = rs;
        record(e.op_site, push(in), PatchRole::kOperator);
        return r;
      }
      case ExprKind::kBinary:
        return compile_binary(e, dst);
      case ExprKind::kAssign:
        return compile_assign(e, dst, used);
      case ExprKind::kCond: {
        bool pre = maybe_precharge({e.sub[0].get()}, e.loc.line);
        uint16_t c = compile_expr(*e.sub[0]);
        uint16_t r = dst_or_temp(dst);
        Insn in = base(Op::kCondJumpZero, e.loc.line);
        if (pre) in.flags = kInsnFree;
        in.a = c;
        size_t jelse = push(in);
        compile_expr(*e.sub[1], r);
        size_t jend = emit_jump();
        bind_label();
        patch(jelse, here());
        compile_expr(*e.sub[2], r);
        bind_label();
        patch(jend, here());
        return r;
      }
      case ExprKind::kMember: {
        bool pre = maybe_precharge({e.sub[0].get()}, e.loc.line);
        uint16_t rb = compile_expr(*e.sub[0]);
        if (e.member_index < 0) {
          return emit_unreachable("unresolved member " + e.text, e.loc.line,
                                  dst);
        }
        uint16_t r = dst_or_temp(dst);
        Op op = vk_of(e.type) == VK::kInt   ? Op::kGetFieldInt
                : vk_of(e.type) == VK::kStr ? Op::kGetFieldStr
                                            : Op::kGetFieldStruct;
        Insn in = base(op, e.loc.line);
        if (pre) in.flags = kInsnFree;
        in.a = r;
        in.b = rb;
        in.c = static_cast<uint16_t>(e.member_index);
        push(in);
        return r;
      }
      case ExprKind::kIndex:
        return compile_index_load(e, dst);
      case ExprKind::kCast: {
        bool pre = maybe_precharge({e.sub[0].get()}, e.loc.line);
        uint16_t rs = compile_expr(*e.sub[0]);
        uint16_t r = dst_or_temp(dst);
        Insn in;
        if (e.cast_type.is_integer()) {
          uint8_t co = pack_coerce(e.cast_type);
          in = base(co ? Op::kCoerce : Op::kMoveInt, e.loc.line);
          in.w = co;
        } else {
          // struct -> same struct or cstring: identity (one charge).
          in = base(vk_of(e.cast_type) == VK::kStr ? Op::kMoveStr
                                                   : Op::kMoveStruct,
                    e.loc.line);
        }
        if (pre) in.flags = kInsnFree;
        in.a = r;
        in.b = rs;
        push(in);
        return r;
      }
      case ExprKind::kCall:
        return compile_call(e, dst);
    }
    return emit_unreachable("bad expression kind", e.loc.line, dst);
  }

  uint16_t compile_binary(const Expr& e, int dst) {
    if (e.op == Tok::kAmpAmp || e.op == Tok::kPipePipe) {
      // The short-circuit charge is delayed past the left operand only.
      bool pre = maybe_precharge({e.sub[0].get()}, e.loc.line);
      uint16_t r = dst_or_temp(dst);
      uint16_t ls = compile_expr(*e.sub[0]);
      Insn in = base(e.op == Tok::kAmpAmp ? Op::kAndJump : Op::kOrJump,
                     e.loc.line);
      if (pre) in.flags = kInsnFree;
      in.a = r;
      in.b = ls;
      size_t jshort = push(in);
      record(e.op_site, jshort, PatchRole::kOperator);
      uint16_t rs = compile_expr(*e.sub[1]);
      Insn norm = base(Op::kBoolNorm, e.loc.line);
      norm.a = r;
      norm.b = rs;
      push(norm);
      bind_label();
      patch(jshort, here());
      return r;
    }
    // Poll-loop superinstruction: `inb(PORT) & MASK` with every node on one
    // line collapses to a single dispatch charging all four walker steps
    // (&, the call, the port literal, the mask literal). When it directly
    // follows the loop iteration's kStepMark on the same line, that fuses
    // in too — one instruction per `while (inb(P) & M)` header.
    if (e.op == Tok::kAmp && e.sub[1]->kind == ExprKind::kIntLit &&
        is_const_port_in(*e.sub[0]) &&
        e.sub[0]->loc.line == e.loc.line &&
        e.sub[0]->sub[0]->loc.line == e.loc.line &&
        e.sub[1]->loc.line == e.loc.line) {
      uint16_t r = dst_or_temp(dst);
      uint64_t port = e.sub[0]->sub[0]->int_value & 0xffffffffULL;
      uint64_t mask = e.sub[1]->int_value & 0xffffffffULL;
      Builtin b = static_cast<Builtin>(e.sub[0]->builtin_index);
      Insn in = base(Op::kInConstAnd, e.loc.line);
      if (can_fuse_last(Op::kStepMark) &&
          out_.code.back().line == e.loc.line) {
        out_.code.pop_back();
        in.op = Op::kPollInAnd;
      }
      in.a = r;
      in.w = b == Builtin::kInb ? 8 : b == Builtin::kInw ? 16 : 32;
      in.imm = static_cast<int64_t>(port | (mask << 32));
      size_t ix = push(in);
      // The `&` site itself is not recorded: no other operator can express
      // this fusion, so its mutants fall back to recompilation.
      record(e.sub[0]->sub[0]->site, ix, PatchRole::kPackedPort);
      record(e.sub[1]->site, ix, PatchRole::kPackedMask);
      return r;
    }
    bool pre =
        maybe_precharge({e.sub[0].get(), e.sub[1].get()}, e.loc.line);
    uint16_t ls = compile_expr(*e.sub[0]);
    // Fused constant right operand: charges twice (operand, operator) on
    // one line, matching the walker's two per-node charges.
    if (!pre && e.sub[1]->kind == ExprKind::kIntLit &&
        e.sub[1]->loc.line == e.loc.line) {
      uint16_t r = dst_or_temp(dst);
      Insn in = base(Op::kBinImm, e.loc.line);
      in.a = r;
      in.b = ls;
      in.w = static_cast<uint8_t>(e.op);
      in.imm = static_cast<int64_t>(e.sub[1]->int_value);
      size_t ix = push(in);
      record(e.op_site, ix, PatchRole::kOperator);
      record(e.sub[1]->site, ix, PatchRole::kLiteral);
      return r;
    }
    uint16_t rs = compile_expr(*e.sub[1]);
    uint16_t r = dst_or_temp(dst);
    Op op;
    switch (e.op) {
      case Tok::kPlus: op = Op::kAdd; break;
      case Tok::kMinus: op = Op::kSub; break;
      case Tok::kStar: op = Op::kMul; break;
      case Tok::kSlash: op = Op::kDiv; break;
      case Tok::kPercent: op = Op::kMod; break;
      case Tok::kAmp: op = Op::kBitAnd; break;
      case Tok::kPipe: op = Op::kBitOr; break;
      case Tok::kCaret: op = Op::kBitXor; break;
      case Tok::kShl: op = Op::kShl; break;
      case Tok::kShr: op = Op::kShr; break;
      case Tok::kEq: op = Op::kCmpEq; break;
      case Tok::kNe: op = Op::kCmpNe; break;
      case Tok::kLt: op = Op::kCmpLt; break;
      case Tok::kGt: op = Op::kCmpGt; break;
      case Tok::kLe: op = Op::kCmpLe; break;
      case Tok::kGe: op = Op::kCmpGe; break;
      default:
        return emit_unreachable("bad binary op", e.loc.line, dst);
    }
    Insn in = base(op, e.loc.line);
    if (pre) in.flags = kInsnFree;
    in.a = r;
    in.b = ls;
    in.c = rs;
    record(e.op_site, push(in), PatchRole::kOperator);
    return r;
  }

  uint16_t compile_index_load(const Expr& e, int dst) {
    const Expr& b = *e.sub[0];
    if (b.kind != ExprKind::kIdent || !is_array_slot(b)) {
      return emit_unreachable("index on non-array", e.loc.line, dst);
    }
    bool pre = maybe_precharge({e.sub[1].get()}, e.loc.line);
    uint16_t ri = compile_expr(*e.sub[1]);
    uint16_t r = dst_or_temp(dst);
    Insn in = base(b.frame_slot >= 0 ? Op::kLoadElemLocal : Op::kLoadElemGlobal,
                   e.loc.line);
    if (pre) in.flags = kInsnFree;
    in.a = r;
    in.b = static_cast<uint16_t>(b.frame_slot >= 0 ? b.frame_slot
                                                   : b.global_slot);
    in.c = ri;
    in.imm = static_cast<int64_t>(mb_.intern(b.text));
    push(in);
    return r;
  }

  /// Operators apply_binop accepts (everything but the short-circuit pair).
  static bool is_plain_binop(Tok t) {
    switch (t) {
      case Tok::kPlus: case Tok::kMinus: case Tok::kStar: case Tok::kSlash:
      case Tok::kPercent: case Tok::kAmp: case Tok::kPipe: case Tok::kCaret:
      case Tok::kShl: case Tok::kShr: case Tok::kEq: case Tok::kNe:
      case Tok::kLt: case Tok::kGt: case Tok::kLe: case Tok::kGe:
        return true;
      default:
        return false;
    }
  }

  /// True for `inb/inw/inl(<int literal>)` — the fusable constant-port read.
  static bool is_const_port_in(const Expr& e) {
    if (e.kind != ExprKind::kCall || e.builtin_index < 0) return false;
    Builtin b = static_cast<Builtin>(e.builtin_index);
    if (b != Builtin::kInb && b != Builtin::kInw && b != Builtin::kInl) {
      return false;
    }
    return e.sub.size() == 1 && e.sub[0]->kind == ExprKind::kIntLit;
  }

  bool is_array_slot(const Expr& ident) const {
    if (ident.frame_slot >= 0) {
      size_t ix = static_cast<size_t>(ident.frame_slot);
      return ix < slot_is_array_.size() && slot_is_array_[ix];
    }
    if (ident.global_slot >= 0) {
      return mb_.global(ident.global_slot).array_size.has_value();
    }
    return false;
  }

  static Tok compound_base(Tok t) {
    switch (t) {
      case Tok::kPlusAssign: return Tok::kPlus;
      case Tok::kMinusAssign: return Tok::kMinus;
      case Tok::kAndAssign: return Tok::kAmp;
      case Tok::kOrAssign: return Tok::kPipe;
      case Tok::kXorAssign: return Tok::kCaret;
      case Tok::kShlAssign: return Tok::kShl;
      case Tok::kShrAssign: return Tok::kShr;
      default: return Tok::kEof;
    }
  }

  uint16_t compile_assign(const Expr& e, int dst, bool used) {
    const Expr& lhs = *e.sub[0];
    const Expr& rhs = *e.sub[1];
    bool compound = e.op != Tok::kAssign;
    VK lvk = vk_of(lhs.type);
    // The walker charges the assignment node before evaluating the rhs (and
    // the subscript, for element stores); pre-charge when either can charge
    // off this line.
    const Expr* idx_child =
        lhs.kind == ExprKind::kIndex ? lhs.sub[1].get() : nullptr;
    bool pre = maybe_precharge({&rhs, idx_child}, e.loc.line);

    // --- scalar identifier target ---------------------------------------
    // An array-typed identifier is also stored through its (default s32)
    // scalar value, exactly as the walker's store_into does.
    if (lhs.kind == ExprKind::kIdent &&
        (lhs.frame_slot >= 0 || lhs.global_slot >= 0)) {
      bool local = lhs.frame_slot >= 0;
      uint16_t slot = static_cast<uint16_t>(local ? lhs.frame_slot
                                                  : lhs.global_slot);
      uint8_t co = local ? local_store_coerce(lhs.frame_slot)
                         : global_store_coerce(lhs.global_slot);
      if (is_array_slot(lhs)) lvk = VK::kInt;  // default value is integer
      if (compound) {
        Tok op = compound_base(e.op);
        if (op == Tok::kEof) {
          return emit_unreachable("bad compound op", e.loc.line, dst);
        }
        // Fused constant rhs (the `i++` desugaring): two charges, one line.
        if (!pre && rhs.kind == ExprKind::kIntLit &&
            rhs.loc.line == e.loc.line) {
          Insn in = base(local ? Op::kOpStoreLocalImm : Op::kOpStoreGlobalImm,
                         e.loc.line);
          in.a = slot;
          in.c = static_cast<uint16_t>(op);
          in.w = co;
          in.imm = static_cast<int64_t>(rhs.int_value);
          size_t ix = push(in);
          record(e.op_site, ix, PatchRole::kOperator);
          record(rhs.site, ix, PatchRole::kLiteral);
          if (!local) record(lhs.site, ix, PatchRole::kGlobalStore);
        } else {
          uint16_t rv = compile_expr(rhs);
          Insn in = base(local ? Op::kOpStoreLocal : Op::kOpStoreGlobal,
                         e.loc.line);
          if (pre) in.flags = kInsnFree;
          in.a = slot;
          in.b = rv;
          in.c = static_cast<uint16_t>(op);
          in.w = co;
          size_t ix = push(in);
          record(e.op_site, ix, PatchRole::kOperator);
          if (!local) record(lhs.site, ix, PatchRole::kGlobalStore);
        }
        return used ? take_stored(dst) : 0;
      }
      // Poll-loop superinstruction: `n = m <op> LIT` with every node on one
      // line is one dispatch charging all four walker steps (assignment,
      // operator, identifier, literal).
      if (!pre && lvk == VK::kInt && local && rhs.kind == ExprKind::kBinary &&
          is_plain_binop(rhs.op) && rhs.sub[0]->kind == ExprKind::kIdent &&
          rhs.sub[0]->frame_slot >= 0 &&
          rhs.sub[1]->kind == ExprKind::kIntLit &&
          rhs.loc.line == e.loc.line &&
          rhs.sub[0]->loc.line == e.loc.line &&
          rhs.sub[1]->loc.line == e.loc.line) {
        Insn in = base(Op::kStoreSlotBinImm, e.loc.line);
        in.a = slot;
        in.b = static_cast<uint16_t>(rhs.sub[0]->frame_slot);
        in.c = co;
        in.w = static_cast<uint8_t>(rhs.op);
        in.imm = static_cast<int64_t>(rhs.sub[1]->int_value);
        size_t ix = push(in);
        record(rhs.op_site, ix, PatchRole::kOperator);
        record(rhs.sub[1]->site, ix, PatchRole::kLiteral);
        return used ? take_stored(dst) : 0;
      }
      uint16_t rv = compile_expr(rhs);
      Op op = lvk == VK::kInt   ? (local ? Op::kStoreLocalInt
                                         : Op::kStoreGlobalInt)
              : lvk == VK::kStr ? (local ? Op::kStoreLocalStr
                                         : Op::kStoreGlobalStr)
                                : (local ? Op::kStoreLocalStruct
                                         : Op::kStoreGlobalStruct);
      Insn in = base(op, e.loc.line);
      if (pre) in.flags = kInsnFree;
      in.a = slot;
      in.b = rv;
      in.w = co;
      size_t ix = push(in);
      if (!local) record(lhs.site, ix, PatchRole::kGlobalStore);
      if (!used) return 0;
      return lvk == VK::kInt ? take_stored(dst) : place(rv, lvk, dst);
    }

    // --- array element target -------------------------------------------
    if (lhs.kind == ExprKind::kIndex && lhs.sub[0]->kind == ExprKind::kIdent &&
        is_array_slot(*lhs.sub[0])) {
      const Expr& arr = *lhs.sub[0];
      bool local = arr.frame_slot >= 0;
      uint16_t slot = static_cast<uint16_t>(local ? arr.frame_slot
                                                  : arr.global_slot);
      uint8_t co = elem_coerce(arr);
      uint32_t name_ix = mb_.intern(arr.text);
      // Walker order: rhs first, then the index (inside resolve_lvalue).
      uint16_t rv = compile_expr(rhs);
      uint16_t ri = compile_expr(*lhs.sub[1]);
      if (compound) {
        Tok op = compound_base(e.op);
        if (op == Tok::kEof) {
          return emit_unreachable("bad compound op", e.loc.line, dst);
        }
        Insn in = base(local ? Op::kOpStoreElemLocal : Op::kOpStoreElemGlobal,
                       e.loc.line);
        if (pre) in.flags = kInsnFree;
        in.a = slot;
        in.b = ri;
        in.c = rv;
        in.imm = PackedElemOp::pack(name_ix, static_cast<uint8_t>(op), co);
        record(e.op_site, push(in), PatchRole::kOperator);
      } else {
        Insn in = base(local ? Op::kStoreElemLocal : Op::kStoreElemGlobal,
                       e.loc.line);
        if (pre) in.flags = kInsnFree;
        in.a = slot;
        in.b = ri;
        in.c = rv;
        in.w = co;
        in.imm = static_cast<int64_t>(name_ix);
        push(in);
      }
      return used ? take_stored(dst) : 0;
    }

    // --- single-level member of an identifier ---------------------------
    if (lhs.kind == ExprKind::kMember &&
        lhs.sub[0]->kind == ExprKind::kIdent && lhs.member_index >= 0 &&
        (lhs.sub[0]->frame_slot >= 0 || lhs.sub[0]->global_slot >= 0)) {
      const Expr& b = *lhs.sub[0];
      bool local = b.frame_slot >= 0;
      uint16_t slot = static_cast<uint16_t>(local ? b.frame_slot
                                                  : b.global_slot);
      uint16_t field = static_cast<uint16_t>(lhs.member_index);
      uint8_t co = pack_coerce(lhs.type);
      uint16_t rv = compile_expr(rhs);
      if (compound) {
        Tok op = compound_base(e.op);
        if (op == Tok::kEof) {
          return emit_unreachable("bad compound op", e.loc.line, dst);
        }
        Insn in = base(local ? Op::kOpStoreFieldLocal : Op::kOpStoreFieldGlobal,
                       e.loc.line);
        if (pre) in.flags = kInsnFree;
        in.a = slot;
        in.b = field;
        in.c = rv;
        in.w = co;
        in.imm = static_cast<int64_t>(static_cast<uint8_t>(op));
        size_t ix = push(in);
        record(e.op_site, ix, PatchRole::kOperator);
        if (!local) record(b.site, ix, PatchRole::kGlobalStore);
        return used ? take_stored(dst) : 0;
      }
      Op op = lvk == VK::kInt   ? (local ? Op::kStoreFieldLocalInt
                                         : Op::kStoreFieldGlobalInt)
              : lvk == VK::kStr ? (local ? Op::kStoreFieldLocalStr
                                         : Op::kStoreFieldGlobalStr)
                                : (local ? Op::kStoreFieldLocalStruct
                                         : Op::kStoreFieldGlobalStruct);
      Insn in = base(op, e.loc.line);
      if (pre) in.flags = kInsnFree;
      in.a = slot;
      in.b = field;
      in.c = rv;
      in.w = co;
      size_t ix = push(in);
      if (!local) record(b.site, ix, PatchRole::kGlobalStore);
      if (!used) return 0;
      return lvk == VK::kInt ? take_stored(dst) : place(rv, lvk, dst);
    }

    // Anything else faults in the walker too (kInternal: member chains
    // through array elements, assignment to non-lvalues that slipped past a
    // bypassed checker). Nested member chains (a.b.c = x) would be valid in
    // the walker, but no post-typecheck unit in this corpus produces one —
    // the loud kInternal here keeps that assumption honest. The rhs is
    // evaluated first, as the walker's eval_assign does before
    // resolve_lvalue throws.
    compile_expr(rhs);
    const char* msg = lhs.kind == ExprKind::kIndex  ? "index on non-array"
                      : lhs.kind == ExprKind::kMember ? "bad member lvalue"
                                                      : "assignment to non-lvalue";
    return emit_unreachable(msg, e.loc.line, dst);
  }

  /// Moves a string/struct assignment value into the caller-forced result
  /// register. The stored value equals the rhs register's content (the
  /// store copies), so a free move suffices.
  uint16_t place(uint16_t rv, VK vk, int dst) {
    if (dst < 0 || static_cast<uint16_t>(dst) == rv) return rv;
    Insn in = base(vk == VK::kStr ? Op::kCopyStr : Op::kCopyStruct, 0);
    in.a = static_cast<uint16_t>(dst);
    in.b = rv;
    push(in);
    return static_cast<uint16_t>(dst);
  }

  uint8_t elem_coerce(const Expr& arr_ident) const {
    if (arr_ident.frame_slot >= 0) {
      size_t ix = static_cast<size_t>(arr_ident.frame_slot);
      if (ix < slot_types_.size()) return pack_coerce(slot_types_[ix]);
      return 0;
    }
    return pack_coerce(mb_.global(arr_ident.global_slot).type);
  }

  uint16_t take_stored(int dst) {
    uint16_t r = dst_or_temp(dst);
    emit_free(Op::kTakeStored, r, 0);
    return r;
  }

  uint16_t compile_call(const Expr& e, int dst) {
    if (e.builtin_index >= 0) return compile_builtin(e, dst);
    if (e.callee_index >= 0) {
      // The walker charges the call node before evaluating any argument.
      std::vector<const Expr*> args;
      for (const auto& a : e.sub) args.push_back(a.get());
      bool pre = false;
      for (const Expr* a : args) {
        if (!confined(*a, e.loc.line)) { pre = true; break; }
      }
      if (pre) emit_step(e.loc.line);
      size_t argc = e.sub.size();
      uint16_t argbase = temp_cur_;
      for (size_t i = 0; i < argc; ++i) alloc_temp();
      for (size_t i = 0; i < argc; ++i) {
        compile_expr(*e.sub[i], static_cast<int>(argbase + i));
      }
      uint16_t r = dst_or_temp(dst);
      Insn in = base(Op::kCall, e.loc.line);
      if (pre) in.flags = kInsnFree;
      in.a = r;
      in.b = static_cast<uint16_t>(e.callee_index);
      in.c = argbase;
      in.imm = static_cast<int64_t>(argc);
      record(e.site, push(in), PatchRole::kCallee);
      return r;
    }
    return emit_unreachable("unresolved call to " + e.text, e.loc.line, dst);
  }

  uint16_t compile_builtin(const Expr& e, int dst) {
    Builtin b = static_cast<Builtin>(e.builtin_index);
    switch (b) {
      case Builtin::kInb:
      case Builtin::kInw:
      case Builtin::kInl: {
        uint8_t width = b == Builtin::kInb ? 8 : b == Builtin::kInw ? 16 : 32;
        bool pre = maybe_precharge({e.sub[0].get()}, e.loc.line);
        // Fused constant port (the poll-loop shape `inb(IDE_STATUS)`):
        // two charges — call node, then the port literal — one line.
        if (!pre && e.sub[0]->kind == ExprKind::kIntLit &&
            e.sub[0]->loc.line == e.loc.line) {
          uint16_t r = dst_or_temp(dst);
          Insn in = base(Op::kInConst, e.loc.line);
          in.a = r;
          in.w = width;
          in.imm = static_cast<int64_t>(e.sub[0]->int_value);
          record(e.sub[0]->site, push(in), PatchRole::kLiteral);
          return r;
        }
        uint16_t rp = compile_expr(*e.sub[0]);
        uint16_t r = dst_or_temp(dst);
        Insn in = base(Op::kIn, e.loc.line);
        if (pre) in.flags = kInsnFree;
        in.a = r;
        in.b = rp;
        in.w = width;
        push(in);
        return r;
      }
      case Builtin::kOutb:
      case Builtin::kOutw:
      case Builtin::kOutl: {
        uint8_t width = b == Builtin::kOutb ? 8
                        : b == Builtin::kOutw ? 16
                                              : 32;
        bool pre = maybe_precharge({e.sub[0].get(), e.sub[1].get()},
                                   e.loc.line);
        uint16_t rv = compile_expr(*e.sub[0]);
        uint16_t rp = compile_expr(*e.sub[1]);
        Insn in = base(Op::kOut, e.loc.line);
        if (pre) in.flags = kInsnFree;
        in.a = rv;
        in.b = rp;
        in.w = width;
        push(in);
        return rv;  // void result; reading .i of the value register is
                    // never done (void expressions are statement-level)
      }
      case Builtin::kPanic: {
        bool pre = maybe_precharge({e.sub[0].get()}, e.loc.line);
        uint16_t rs = compile_expr(*e.sub[0]);
        Insn in = base(Op::kPanic, e.loc.line);
        if (pre) in.flags = kInsnFree;
        in.a = rs;
        push(in);
        return rs;
      }
      case Builtin::kPrintk: {
        bool pre = maybe_precharge({e.sub[0].get()}, e.loc.line);
        uint16_t rs = compile_expr(*e.sub[0]);
        Insn in = base(Op::kPrintk, e.loc.line);
        if (pre) in.flags = kInsnFree;
        in.a = rs;
        push(in);
        return rs;
      }
      case Builtin::kStrcmp: {
        bool pre = maybe_precharge({e.sub[0].get(), e.sub[1].get()},
                                   e.loc.line);
        uint16_t r1 = compile_expr(*e.sub[0]);
        uint16_t r2 = compile_expr(*e.sub[1]);
        uint16_t r = dst_or_temp(dst);
        Insn in = base(Op::kStrcmp, e.loc.line);
        if (pre) in.flags = kInsnFree;
        in.a = r;
        in.b = r1;
        in.c = r2;
        push(in);
        return r;
      }
      case Builtin::kUdelay: {
        bool pre = maybe_precharge({e.sub[0].get()}, e.loc.line);
        uint16_t ra = compile_expr(*e.sub[0]);
        Insn in = base(Op::kUdelay, e.loc.line);
        if (pre) in.flags = kInsnFree;
        in.a = ra;
        push(in);
        return ra;
      }
      case Builtin::kDilEq: {
        bool structs = e.sub[0]->type.is_struct();
        bool pre = maybe_precharge({e.sub[0].get(), e.sub[1].get()},
                                   e.loc.line);
        uint16_t r1 = compile_expr(*e.sub[0]);
        uint16_t r2 = compile_expr(*e.sub[1]);
        uint16_t r = dst_or_temp(dst);
        Insn in = base(structs ? Op::kDilEqStruct : Op::kDilEqInt, e.loc.line);
        if (pre) in.flags = kInsnFree;
        in.a = r;
        in.b = r1;
        in.c = r2;
        push(in);
        return r;
      }
      case Builtin::kDilVal: {
        bool structs = e.sub[0]->type.is_struct();
        bool pre = maybe_precharge({e.sub[0].get()}, e.loc.line);
        uint16_t rs = compile_expr(*e.sub[0]);
        uint16_t r = dst_or_temp(dst);
        Insn in = base(structs ? Op::kDilValStruct : Op::kDilValInt,
                       e.loc.line);
        if (pre) in.flags = kInsnFree;
        in.a = r;
        in.b = rs;
        push(in);
        return r;
      }
      case Builtin::kRequestIrq: {
        bool pre = maybe_precharge({e.sub[0].get(), e.sub[1].get()},
                                   e.loc.line);
        uint16_t rl = compile_expr(*e.sub[0]);
        uint16_t rs = compile_expr(*e.sub[1]);
        Insn in = base(Op::kRequestIrq, e.loc.line);
        if (pre) in.flags = kInsnFree;
        in.a = rl;
        in.b = rs;
        push(in);
        return rl;  // void result, like kOut
      }
    }
    return emit_unreachable("bad builtin", e.loc.line, dst);
  }

  uint16_t emit_unreachable(const std::string& msg, uint32_t line, int dst) {
    uint16_t r = dst_or_temp(dst);
    Insn in = base(Op::kUnreachable, line);
    in.a = r;
    in.imm = static_cast<int64_t>(mb_.intern(msg));
    push(in);
    return r;
  }

  ModuleBuilder& mb_;
  const FunctionDecl* decl_;
  uint32_t fn_id_ = kGlobalsInitFn;  // absolute index for patch points
  CompiledFunction out_;
  std::vector<Type> slot_types_;
  std::vector<bool> slot_is_array_;
  uint16_t temp_base_ = 0;
  uint16_t temp_cur_ = 0;
  uint16_t temp_max_ = 0;
  size_t barrier_ = 0;
  std::vector<LoopCtx> loops_;
};

/// Classifies one-line leaf shapes a kCall can fuse into (LeafShape lives
/// in bytecode.h). The whole callee body must match the template *exactly*,
/// charges included, so the fused dispatch can replay its charges/marks
/// from the callee's code.
LeafShape classify_leaf(const CompiledFunction& fn) {
  const auto& c = fn.code;
  // `{ return p; }` / `{ return K; }` — block+statement charge, one loading
  // instruction, the return. The production-mode Devil value constructors
  // (`mk_X`) and constant getters have exactly this shape.
  if (c.size() == 4 && c[0].op == Op::kStepStepMark && c[0].flags == 0 &&
      c[1].flags == 0 && c[2].op == Op::kRet && c[2].a == c[1].a &&
      c[3].op == Op::kRetZero) {
    if (c[1].op == Op::kLoadConst) return LeafShape::kRetConst;
    if (c[1].op == Op::kMoveInt && c[1].b < fn.params.size()) {
      for (const auto& p : fn.params) {
        if (p.kind != ParamSpec::Kind::kInt) return LeafShape::kNone;
      }
      return LeafShape::kRetParam;
    }
    return LeafShape::kNone;
  }
  // `{ out*(K_value, K_port); }` — the constant register pokes of
  // hand-written C drivers (e.g. drive-select helpers).
  if (c.size() == 5 && c[0].op == Op::kStepStepMark && c[0].flags == 0 &&
      c[1].op == Op::kLoadConst && c[2].op == Op::kLoadConst &&
      c[3].op == Op::kOut && c[3].flags == 0 && c[3].a == c[1].a &&
      c[3].b == c[2].a && c[4].op == Op::kRetZero && fn.params.empty()) {
    return LeafShape::kOutConst;
  }
  return LeafShape::kNone;
}

/// Builds the flat prefix+tail dispatch views. Must run after the owned
/// vectors reach their final sizes (pointers go into their heap buffers).
void finalize_tables(Module& mod) {
  const ModuleSegment* seg = mod.prefix.get();
  mod.fn_table.clear();
  mod.string_table.clear();
  mod.struct_default_table.clear();
  mod.fn_table.reserve((seg ? seg->fns.size() : 0) + mod.fns.size());
  mod.string_table.reserve((seg ? seg->strings.size() : 0) +
                           mod.strings.size());
  mod.struct_default_table.reserve(
      (seg ? seg->struct_defaults.size() : 0) + mod.struct_defaults.size());
  if (seg) {
    for (const auto& f : seg->fns) mod.fn_table.push_back(&f);
    for (const auto& s : seg->strings) mod.string_table.push_back(&s);
    for (const auto& d : seg->struct_defaults) {
      mod.struct_default_table.push_back(&d);
    }
  }
  for (const auto& f : mod.fns) mod.fn_table.push_back(&f);
  for (const auto& s : mod.strings) mod.string_table.push_back(&s);
  for (const auto& d : mod.struct_defaults) {
    mod.struct_default_table.push_back(&d);
  }
}

/// Rewrites kCall sites whose callee matches a leaf template into the fused
/// call opcodes. Only the module's own code is rewritten — a shared prefix
/// segment was fused once when it was compiled (and is immutable here); its
/// callees all live inside the segment, so its rewrites stay valid in every
/// splice.
void apply_call_fusion(Module& mod) {
  std::vector<LeafShape> shapes(mod.fn_table.size());
  size_t first = 0;
  if (mod.prefix) {
    // The segment's shapes were classified once at compile_prefix time.
    first = mod.prefix->leaf_shapes.size();
    for (size_t i = 0; i < first; ++i) {
      shapes[i] = static_cast<LeafShape>(mod.prefix->leaf_shapes[i]);
    }
  }
  for (size_t i = first; i < shapes.size(); ++i) {
    shapes[i] = classify_leaf(*mod.fn_table[i]);
  }
  auto rewrite = [&shapes](std::vector<Insn>& code) {
    for (Insn& in : code) {
      if (in.op != Op::kCall) continue;
      switch (shapes[in.b]) {
        case LeafShape::kNone: break;
        case LeafShape::kRetParam: in.op = Op::kCallRetParam; break;
        case LeafShape::kRetConst: in.op = Op::kCallRetConst; break;
        case LeafShape::kOutConst: in.op = Op::kCallOutConst; break;
      }
    }
  };
  for (auto& fn : mod.fns) rewrite(fn.code);
  rewrite(mod.globals_init.code);
}

/// Lowers `mb.unit`'s functions and globals initialiser into `mb.mod`,
/// assigning function ids that continue the prefix's (fn_base).
void lower_into(ModuleBuilder& mb, uint32_t fn_base) {
  const Unit& unit = mb.unit;
  mb.mod.fns.reserve(unit.functions.size());
  for (size_t i = 0; i < unit.functions.size(); ++i) {
    FunctionCompiler fc(mb, &unit.functions[i],
                        fn_base + static_cast<uint32_t>(i));
    mb.mod.fns.push_back(fc.compile_body());
    // First definition wins for name lookup, matching the walker's linear
    // call_function scan (duplicates are checker errors anyway).
    mb.mod.fn_index.emplace(unit.functions[i].name,
                            fn_base + static_cast<uint32_t>(i));
  }
  FunctionCompiler gc(mb, nullptr, kGlobalsInitFn);
  mb.mod.globals_init = gc.compile_globals_init();
}

}  // namespace

LeafShape classify_leaf_shape(const CompiledFunction& fn) {
  return classify_leaf(fn);
}

void finalize_module_tables(Module& mod) { finalize_tables(mod); }

Module compile_unit(const Unit& unit) {
  ModuleBuilder mb(unit);
  lower_into(mb, 0);
  finalize_tables(mb.mod);
  apply_call_fusion(mb.mod);
  return std::move(mb.mod);
}

std::shared_ptr<const ModuleSegment> compile_prefix(const Unit& prefix_unit) {
  ModuleBuilder mb(prefix_unit);
  lower_into(mb, 0);
  finalize_tables(mb.mod);
  apply_call_fusion(mb.mod);
  auto seg = std::make_shared<ModuleSegment>();
  seg->fns = std::move(mb.mod.fns);
  seg->globals_init = std::move(mb.mod.globals_init);
  seg->global_count = mb.mod.global_count;
  seg->fn_index = std::move(mb.mod.fn_index);
  seg->strings = std::move(mb.mod.strings);
  seg->struct_defaults = std::move(mb.mod.struct_defaults);
  seg->string_ix = std::move(mb.string_ix);
  seg->struct_ix = std::move(mb.struct_ix);
  seg->leaf_shapes.reserve(seg->fns.size());
  for (const auto& fn : seg->fns) {
    seg->leaf_shapes.push_back(static_cast<uint8_t>(classify_leaf(fn)));
  }
  return seg;
}

Module compile_tail_unit(std::shared_ptr<const ModuleSegment> segment,
                         const Unit& prefix_unit, const Unit& tail_unit,
                         PatchTable* patch) {
  ModuleBuilder mb(tail_unit, prefix_unit, *segment);
  uint32_t fn_base = static_cast<uint32_t>(segment->fns.size());
  mb.patch_out = patch;
  if (patch) patch->fn_base = fn_base;
  mb.mod.prefix = std::move(segment);
  lower_into(mb, fn_base);
  finalize_tables(mb.mod);
  apply_call_fusion(mb.mod);
  return std::move(mb.mod);
}

}  // namespace minic::bytecode
