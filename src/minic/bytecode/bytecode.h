// Register bytecode for MiniC: the campaign execution engine.
//
// `compile_unit` lowers a typechecked `minic::Unit` into flat per-function
// instruction vectors; `Vm` (vm.h) executes them with a dense dispatch loop.
// The contract with the tree walker (interp.cc) is exact observational
// equivalence: identical RunOutcome — fault kind *and* message, return
// value, step count, executed-line bitmap, printk log — for any typechecked
// unit. The campaign engine runs the VM by default and keeps the tree
// walker as a differential oracle (tests/test_bytecode_vm.cc).
//
// Step-accounting model. The tree walker charges one step per AST node
// visit (statements at exec() entry, expressions at eval()/eval_int()
// entry, loop statements once more per iteration). The bytecode preserves
// the charge count on every control path by construction:
//   - every *charging* opcode corresponds to exactly one walker node visit
//     and carries that node's source line (reported on budget exhaustion);
//   - pure control-flow helpers (jumps, result moves) are *free* — they
//     never touch the budget;
//   - fused superinstructions (kInConst, kBinImm, kOpStoreLocalImm,
//     kStepStepMark) charge once per fused node and are only emitted when
//     all fused nodes sit on the same source line, so the exhaustion
//     message cannot differ from the walker's.
// Line-coverage marks (kStepMark, kMark, kCaseTest, kDecl*) mirror the
// walker's mark_line calls one for one.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "minic/ast.h"

namespace minic::bytecode {

// Charging discipline per opcode is given in the comment: C = charges one
// step, CC = charges two (fused, same line), C+n = charges 1 plus a dynamic
// burn, M = marks the line executed, F = free (no charge, no mark).
enum class Op : uint8_t {
  // --- statement accounting -----------------------------------------------
  kStep,          // C    : statement entry without coverage (block, loops)
  kStepMark,      // C M  : statement entry with coverage
  kStepStepMark,  // CC M : fused kStep(line) + kStepMark(imm line)
  kStepJump,      // C    : fused kStep + unconditional jump (empty loop body)
  kMark,          // F M  : coverage only (global initialisers, case labels)
  // --- control flow --------------------------------------------------------
  kJump,          // F    : pc = imm
  kJumpIfZero,    // F    : if R[a].i == 0 jump imm
  kJumpIfNotZero, // F    : if R[a].i != 0 jump imm
  kJumpIfEqual,   // F    : if R[a].i == R[b].i jump imm (generic case label)
  kCaseTest,      // C M  : R[b].i = (R[a].i == imm); constant case label
  kCondJumpZero,  // C    : ?: node charge; if R[a].i == 0 jump imm
  kAndJump,       // C    : && node; if R[b].i == 0 { R[a].i = 0; jump imm }
  kOrJump,        // C    : || node; if R[b].i != 0 { R[a].i = 1; jump imm }
  kBoolNorm,      // F    : R[a].i = R[b].i != 0
  // --- loads / moves -------------------------------------------------------
  kLoadConst,       // C : R[a].i = imm
  kLoadStr,         // C : R[a].s = strings[imm]
  kMoveInt,         // C : R[a].i = R[b].i  (ident rvalue, unary +, wide cast)
  kMoveStr,         // C : R[a].s = R[b].s
  kMoveStruct,      // C : R[a].fields = R[b].fields
  kCopyInt,         // F : R[a].i = R[b].i  (assignment-expression result)
  kCopyStr,         // F
  kCopyStruct,      // F
  kLoadGlobalInt,   // C : R[a].i = G[b].i
  kLoadGlobalStr,   // C
  kLoadGlobalStruct,// C
  kLoadElemLocal,   // C : R[a].i = R[b].arr[R[c].i]; imm = site name (faults)
  kLoadElemGlobal,  // C : R[a].i = G[b].arr[R[c].i]
  kGetFieldInt,     // C : R[a].i = R[b].fields[c].i (0 when absent)
  kGetFieldStr,     // C
  kGetFieldStruct,  // C
  kTakeStored,      // F : R[a].i = last value committed by a store opcode
  // --- arithmetic (a = dst, b/c = operands; all C) -------------------------
  kNeg, kBitNot, kLogNot,
  kAdd, kSub, kMul, kDiv, kMod,
  kBitAnd, kBitOr, kBitXor, kShl, kShr,
  kCmpEq, kCmpNe, kCmpLt, kCmpGt, kCmpLe, kCmpGe,
  kBinImm,          // CC : R[a].i = R[b].i <w-op> imm (fused const operand)
  kCoerce,          // C  : R[a].i = coerce(R[b].i, w)  (integer cast)
  // Compare+branch superinstructions: a condition's top binary node fused
  // with the statement's jump-if-zero. The node's charge (and its free
  // flag) is preserved; the result register is dead — the branch was its
  // only consumer — so it is not written.
  kBinJump,         // C  : if (R[b].i <w-op> R[c].i == 0) pc = imm
  kBinImmJump,      // CC : if (R[b].i <w-op> c == 0) pc = imm (c: u16 lit)
  kDilEqIntJump,    // C  : if (R[b].i != R[c].i) pc = imm
  kDilEqStructJump, // C  : struct dil_eq (type-tag assertion applies);
                    //      if values differ pc = imm
  // Poll-loop superinstructions (all operand nodes on one line):
  kInConstAnd,      // CCCC : R[a].i = io_in(port, w) & mask; imm packs
                    //        port | mask<<32; the I/O happens after the
                    //        third charge, exactly as the walker interleaves
  kPollInAnd,       // C M + CCCC : kStepMark fused with kInConstAnd — one
                    //        dispatch for a `while (inb(P) & M)` iteration
  kStoreSlotBinImm, // CCCC : R[a].i = coerce(R[b].i <w-op> imm, c) — the
                    //        `n = n + 1` statement body in one dispatch
  // --- stores (the kAssign node's charge lives on the store) ---------------
  kStoreLocalInt,   // C : R[a].i = coerce(R[b].i, w)
  kStoreLocalStr,   // C
  kStoreLocalStruct,// C
  kStoreGlobalInt,  // C : G[a].i = coerce(R[b].i, w)
  kStoreGlobalStr,  // C
  kStoreGlobalStruct,// C
  kOpStoreLocal,    // C  : R[a].i = coerce(R[a].i <c-op> R[b].i, w)
  kOpStoreGlobal,   // C
  kOpStoreLocalImm, // CC : R[a].i = coerce(R[a].i <c-op> imm, w) (fused)
  kOpStoreGlobalImm,// CC
  kStoreElemLocal,  // C : R[a].arr[R[b].i] = coerce(R[c].i, w); imm = name
  kStoreElemGlobal, // C
  kOpStoreElemLocal, // C : compound form; imm packs name/op (see PackedElemOp)
  kOpStoreElemGlobal,// C
  kStoreFieldLocalInt,   // C : R[a].fields[b] = coerce(R[c].i, w)
  kStoreFieldGlobalInt,  // C
  kStoreFieldLocalStr,   // C
  kStoreFieldGlobalStr,  // C
  kStoreFieldLocalStruct,// C
  kStoreFieldGlobalStruct,// C
  kOpStoreFieldLocal,    // C : field compound; c-op, w coercion
  kOpStoreFieldGlobal,   // C
  // free store variants (declaration / global initialisers: the charge was
  // already taken by the kStepMark / the initialiser expression)
  kStoreLocalIntF, kStoreLocalStrF, kStoreLocalStructF,
  kStoreGlobalIntF, kStoreGlobalStrF, kStoreGlobalStructF,
  kStoreGFieldIntF,  // F : G[a].fields[b] = coerce(R[c].i, w) (brace inits)
  kStoreGFieldStrF,
  kStoreGFieldStructF,
  // --- declarations --------------------------------------------------------
  kDeclIntZ,        // C M : R[a].i = 0
  kDeclStrZ,        // C M : R[a].s.clear()
  kDeclStructZ,     // C M : R[a].fields = struct_defaults[imm]
  kDeclArr,         // C M : R[a].arr.assign(imm, 0)
  kInitGlobalArr,   // F   : G[a].arr.assign(imm, 0)
  // --- calls ---------------------------------------------------------------
  kCall,            // C : R[a] = fns[b](R[c..c+imm-1])
  kRet,             // F : return R[a] to the caller's dst register
  kRetZero,         // F : return integer 0 (fall-off-the-end / `return;`)
  // Call+ret superinstructions: a kCall whose callee's whole body matches a
  // one-line leaf template executes without pushing a frame. Field layout is
  // identical to kCall (b = callee index); the dispatch replays the callee's
  // charges/marks from its code, so exhaustion lines and step totals cannot
  // differ from a real call. See `classify_leaf` in compiler.cc.
  kCallRetParam,    // call to `{ return p; }`  : CCC M, result = coerce(arg)
  kCallRetConst,    // call to `{ return K; }`  : CCC M, result = K
  kCallOutConst,    // call to `{ out*(K1,K2); }`: CCCCC M, one io_out
  // --- builtins (each C = the call node's charge) --------------------------
  kIn,              // C  : R[a].i = io_in(R[b].i, w)
  kInConst,         // CC : R[a].i = io_in(imm, w) (fused constant port)
  kOut,             // C  : io_out(R[b].i, R[a].i & width_mask, w)
  kPanic,           // C  : throw panic/Devil assertion with R[a].s
  kPrintk,          // C  : log R[a].s
  kStrcmp,          // C  : R[a].i = R[b].s.compare(R[c].s)
  kUdelay,          // C+n: burn clamp(R[a].i, 0, 10000) extra steps
  kDilEqInt,        // C  : R[a].i = R[b].i == R[c].i
  kDilEqStruct,     // C  : debug-mode dil_eq with type-tag assertion
  kDilValInt,       // C  : R[a].i = R[b].i
  kDilValStruct,    // C  : R[a].i = R[b].fields[2].i (0 when absent)
  kRequestIrq,      // C  : bind handler fn named R[b].s to line R[a].i
  kUnreachable,     // C  : throw Fault{kInternal, strings[imm]}
};

/// Number of opcodes; the per-opcode execution profile is indexed by
/// `static_cast<size_t>(Op)`.
inline constexpr size_t kOpCount = static_cast<size_t>(Op::kUnreachable) + 1;

/// Stable mnemonic for an opcode (the enumerator name without the `k`),
/// used as the key in exported opcode profiles.
[[nodiscard]] const char* op_name(Op op);

/// Per-opcode dispatch counts of one VM run. Deterministic for a given
/// module + entry + budget (the dispatch sequence is), so a baseline boot's
/// profile is campaign telemetry that survives shard merges byte-for-byte.
struct OpcodeProfile {
  std::array<uint64_t, kOpCount> counts{};

  [[nodiscard]] uint64_t total() const {
    uint64_t n = 0;
    for (uint64_t c : counts) n += c;
    return n;
  }
  friend bool operator==(const OpcodeProfile& a, const OpcodeProfile& b) {
    return a.counts == b.counts;
  }
};

/// One instruction. `w` packs an integer coercion (bits | 0x80 when signed)
/// or a binary-operator code (`Tok`), depending on the opcode; `line` is the
/// source line charged/marked/reported; jump targets live in `imm`.
///
/// `flags` bit 0 marks the instruction *free*: its node's charge was
/// emitted earlier as an explicit kStep. The walker charges a parent node
/// before its children (pre-order); when a child subtree can charge on a
/// different line (a user-call body, a multi-line operand), delaying the
/// parent's charge to the action instruction would shift the observable
/// exhaustion point, so the compiler pre-charges and frees the action.
struct Insn {
  Op op = Op::kRetZero;
  uint8_t w = 0;
  uint8_t flags = 0;
  uint16_t a = 0;
  uint16_t b = 0;
  uint16_t c = 0;
  uint32_t line = 0;
  int64_t imm = 0;
};

inline constexpr uint8_t kInsnFree = 1;

/// Integer coercion descriptor: low 7 bits = width, bit 7 = signed.
/// Width 0 means "no narrowing" (>= 64-bit or non-integer destination).
[[nodiscard]] inline uint8_t pack_coerce(const Type& t) {
  if (!t.is_integer() || t.bits >= 64) return 0;
  return static_cast<uint8_t>((t.bits & 0x7f) | (t.is_signed ? 0x80 : 0));
}

/// kOpStoreElem* can't fit name-index, operator and coercion in the fixed
/// fields, so they share `imm`.
struct PackedElemOp {
  static int64_t pack(uint32_t name_ix, uint8_t op, uint8_t coerce) {
    return static_cast<int64_t>((static_cast<uint64_t>(name_ix) << 16) |
                                (static_cast<uint64_t>(op) << 8) | coerce);
  }
  static uint32_t name_ix(int64_t v) {
    return static_cast<uint32_t>(static_cast<uint64_t>(v) >> 16);
  }
  static uint8_t op(int64_t v) { return static_cast<uint8_t>(v >> 8); }
  static uint8_t coerce(int64_t v) { return static_cast<uint8_t>(v); }
};

/// Runtime value: one register / global / struct field. The integer hot
/// path touches only `i`; the string / struct / array payloads exist for
/// the Devil debug stubs and driver buffers. Registers are persistent
/// storage (pooled frames), so writing an int never constructs or frees
/// anything.
struct VmValue {
  int64_t i = 0;
  std::string s;
  std::vector<VmValue> fields;
  std::vector<int64_t> arr;
};

struct ParamSpec {
  enum class Kind : uint8_t { kInt, kStr, kStruct };
  Kind kind = Kind::kInt;
  uint8_t coerce = 0;  // pack_coerce of the declared parameter type
};

struct CompiledFunction {
  std::string name;
  uint32_t nslots = 0;  // frame slots assigned by the type checker
  uint32_t nregs = 0;   // nslots + expression temporaries
  std::vector<ParamSpec> params;
  std::vector<Insn> code;
};

/// The lowered invariant front of a unit: functions, string pool, struct
/// defaults and the prefix globals' initialiser, compiled once per campaign
/// and shared read-only (it is immutable after `compile_prefix`) by every
/// per-mutant spliced module. The intern maps let tail lowering reuse
/// segment pool entries instead of duplicating them.
struct ModuleSegment {
  std::vector<CompiledFunction> fns;
  CompiledFunction globals_init;  // inits globals [0, global_count)
  size_t global_count = 0;
  std::unordered_map<std::string, uint32_t> fn_index;
  std::vector<std::string> strings;
  std::vector<std::vector<VmValue>> struct_defaults;
  std::map<std::string, uint32_t> string_ix;  // string -> segment pool index
  std::map<std::string, uint32_t> struct_ix;  // struct name -> defaults index
  /// Compiler-internal LeafShape per `fns` entry, classified once here so
  /// per-mutant splices skip re-classifying the invariant functions.
  std::vector<uint8_t> leaf_shapes;
};

/// A runnable module. Function order matches the (spliced) unit's function
/// order, so the type checker's `callee_index` annotations double as
/// bytecode function ids. A spliced module *aliases* its prefix segment's
/// code, constants and struct defaults through the flat dispatch tables —
/// `fns`/`strings`/`struct_defaults` hold only the tail's additions, and
/// `fn_table[i]` spans prefix then tail. Move-only: the dispatch tables
/// point into the owned vectors' heap buffers (stable under move).
struct Module {
  Module() = default;
  Module(Module&&) = default;
  Module& operator=(Module&&) = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  std::shared_ptr<const ModuleSegment> prefix;  // null for whole-unit builds
  std::vector<CompiledFunction> fns;            // tail functions
  CompiledFunction globals_init;                // inits the *tail* globals
  size_t global_count = 0;                      // prefix + tail
  std::unordered_map<std::string, uint32_t> fn_index;  // tail names only
  std::vector<std::string> strings;
  std::vector<std::vector<VmValue>> struct_defaults;

  // Flat views spanning prefix + tail, built by `finalize_tables`.
  std::vector<const CompiledFunction*> fn_table;
  std::vector<const std::string*> string_table;
  std::vector<const std::vector<VmValue>*> struct_default_table;

  [[nodiscard]] const std::string& str(size_t ix) const {
    return *string_table[ix];
  }
  /// Entry-point lookup across both halves (first definition wins, and the
  /// prefix's functions come first).
  [[nodiscard]] const uint32_t* find_fn(const std::string& name) const {
    if (prefix) {
      auto it = prefix->fn_index.find(name);
      if (it != prefix->fn_index.end()) return &it->second;
    }
    auto it = fn_index.find(name);
    return it == fn_index.end() ? nullptr : &it->second;
  }
};

/// One-line leaf shapes a kCall can fuse into (kCallRetParam & co). Public
/// so the patcher can re-derive the fused opcode when it rewrites a callee
/// index; classification itself lives in compiler.cc.
enum class LeafShape : uint8_t { kNone, kRetParam, kRetConst, kOutConst };

/// Classifies `fn` against the one-line leaf templates.
[[nodiscard]] LeafShape classify_leaf_shape(const CompiledFunction& fn);

/// (Re)builds `mod`'s flat prefix+tail dispatch views. Must run after the
/// owned vectors reach their final sizes; the patcher calls it on clones.
void finalize_module_tables(Module& mod);

// ---------------------------------------------------------------------------
// Mutation-site patch points
// ---------------------------------------------------------------------------

/// Which operand of an instruction encodes a mutation site's token. The
/// patcher dispatches on the *final* opcode at the point (emit-time fusion
/// rewrites instructions in place, so recorded indices stay valid) and falls
/// back to recompilation for any opcode/role pair it does not recognise.
enum class PatchRole : uint8_t {
  kLiteral,      // literal value (imm — or c once kBinImm fused to a jump)
  kPackedPort,   // low 32 bits of a kInConstAnd/kPollInAnd packed imm
  kPackedMask,   // high 32 bits of the same
  kOperator,     // unary/binary/compound operator (field depends on opcode)
  kGlobalLoad,   // global slot in `b` of a kLoadGlobal*
  kGlobalStore,  // global slot in `a` of a store-to-global opcode
  kCallee,       // callee index in `b` of a kCall-family opcode
};

/// Sentinel PatchPoint::fn for points inside the tail globals initialiser.
inline constexpr uint32_t kGlobalsInitFn = 0xffffffffu;

/// One place a mutation site's token lowered to.
struct PatchPoint {
  uint32_t site = 0;  // mutation::SiteId carried as token provenance
  uint32_t fn = 0;    // absolute function index, or kGlobalsInitFn
  uint32_t insn = 0;  // index into that function's code
  PatchRole role = PatchRole::kLiteral;
};

/// Every patch point of one clean tail compile, in emission order. A site
/// with no points (lowered away, parser-folded, local-only) cannot be
/// patched and its mutants recompile the tail instead.
struct PatchTable {
  uint32_t fn_base = 0;  // absolute index of the first tail function
  std::vector<PatchPoint> points;
};

/// Lowers a typechecked unit. Throws minic::Fault{kInternal} on malformed
/// input (e.g. a unit that bypassed the type checker), mirroring the tree
/// walker's runtime kInternal faults.
[[nodiscard]] Module compile_unit(const Unit& unit);

/// Lowers the invariant prefix half of a campaign unit once. The returned
/// segment is immutable and safe to share across threads.
[[nodiscard]] std::shared_ptr<const ModuleSegment> compile_prefix(
    const Unit& prefix_unit);

/// Lowers only `tail_unit` (typechecked with `typecheck_tail`, so its
/// callee/global indices continue the prefix's numbering) and splices it
/// after `segment`. `prefix_unit` must be the unit `segment` was compiled
/// from. The result aliases the segment's code — nothing is recompiled or
/// copied but the tail. When `patch` is non-null (the campaign's clean
/// recording compile), every mutation-site patch point is appended to it.
[[nodiscard]] Module compile_tail_unit(
    std::shared_ptr<const ModuleSegment> segment, const Unit& prefix_unit,
    const Unit& tail_unit, PatchTable* patch = nullptr);

}  // namespace minic::bytecode
