// Dense dispatch loop for the MiniC bytecode. Every arithmetic, fault and
// coercion rule here is a transliteration of the tree walker's (interp.cc);
// messages must stay byte-identical — the campaign records carry them.
#include "minic/bytecode/vm.h"

#include "support/strings.h"

namespace minic::bytecode {

namespace {

/// minic::coerce_int, for the packed descriptor (bits | signed<<7).
int64_t coerce(int64_t v, uint8_t pack) {
  int bits = pack & 0x7f;
  if (bits == 0) return v;
  uint64_t mask = (uint64_t{1} << bits) - 1;
  uint64_t u = static_cast<uint64_t>(v) & mask;
  if ((pack & 0x80) != 0 && ((u >> (bits - 1)) & 1)) u |= ~mask;
  return static_cast<int64_t>(u);
}

/// The walker's apply_binop, including its fault messages and the logical
/// 32-bit right shift for hardware register values.
int64_t apply_binop(Tok op, int64_t a, int64_t b) {
  switch (op) {
    case Tok::kPlus: return a + b;
    case Tok::kMinus: return a - b;
    case Tok::kStar: return a * b;
    case Tok::kSlash:
      if (b == 0) throw Fault{FaultKind::kDivByZero, "division by zero"};
      return a / b;
    case Tok::kPercent:
      if (b == 0) throw Fault{FaultKind::kDivByZero, "modulo by zero"};
      return a % b;
    case Tok::kAmp: return a & b;
    case Tok::kPipe: return a | b;
    case Tok::kCaret: return a ^ b;
    case Tok::kShl:
      if (b < 0 || b > 63) return 0;
      return static_cast<int64_t>(static_cast<uint64_t>(a) << b);
    case Tok::kShr:
      if (b < 0 || b > 63) return 0;
      return static_cast<int64_t>((static_cast<uint64_t>(a) & 0xffffffffULL) >>
                                  static_cast<uint64_t>(b));
    case Tok::kEq: return a == b;
    case Tok::kNe: return a != b;
    case Tok::kLt: return a < b;
    case Tok::kGt: return a > b;
    case Tok::kLe: return a <= b;
    case Tok::kGe: return a >= b;
    default:
      throw Fault{FaultKind::kInternal, "bad binary op"};
  }
}

[[noreturn]] void throw_step_limit(uint32_t line) {
  throw Fault{FaultKind::kStepLimit,
              "step budget exhausted at line " + std::to_string(line)};
}

constexpr int kMaxCallDepth = 128;  // == the walker's limit

const std::string& empty_string() {
  static const std::string empty;
  return empty;
}

}  // namespace

Vm::Vm(const Module& module, IoEnvironment& io, uint64_t step_budget)
    : mod_(module), io_(io), budget_(step_budget) {}

void Vm::push_frame(const CompiledFunction& fn, const VmValue* caller_regs,
                    uint32_t argbase) {
  std::vector<VmValue> frame;
  if (!frame_pool_.empty()) {
    frame = std::move(frame_pool_.back());
    frame_pool_.pop_back();
  }
  if (frame.size() < fn.nregs) frame.resize(fn.nregs);
  // The walker's fresh frame defaults every slot to integer 0; temporaries
  // are always written before they are read, so only slots need zeroing.
  for (uint32_t i = 0; i < fn.nslots; ++i) frame[i].i = 0;
  for (size_t i = 0; i < fn.params.size() && i < fn.nslots; ++i) {
    const ParamSpec& ps = fn.params[i];
    if (caller_regs) {
      const VmValue& arg = caller_regs[argbase + i];
      switch (ps.kind) {
        case ParamSpec::Kind::kInt:
          frame[i].i = coerce(arg.i, ps.coerce);
          break;
        case ParamSpec::Kind::kStr:
          frame[i].s = arg.s;
          break;
        case ParamSpec::Kind::kStruct:
          frame[i].fields = arg.fields;
          break;
      }
    } else if (ps.kind != ParamSpec::Kind::kInt) {
      // Entry called without arguments: non-integer params default clean
      // (a pooled frame may hold stale payloads).
      frame[i].s.clear();
      frame[i].fields.clear();
    }
  }
  frames_.push_back(std::move(frame));
}

void Vm::pop_frame() {
  frame_pool_.push_back(std::move(frames_.back()));
  frames_.pop_back();
}

void Vm::check_watchdog() {
  if (std::chrono::steady_clock::now() >= watchdog_deadline_) {
    throw Fault{FaultKind::kWatchdog,
                "watchdog: boot exceeded " + std::to_string(watchdog_ms_) +
                    " ms wall-clock cap"};
  }
}

template <bool kProfile>
void Vm::poll_irqs(RunOutcome& out) {
  if (in_irq_) return;
  for (;;) {
    int line = io_.irq_pending();
    if (line < 0) return;
    const CompiledFunction* h =
        line < kIrqLines ? irq_handlers_[static_cast<size_t>(line)] : nullptr;
    if (h == nullptr) {
      io_.irq_begin(false);  // no handler registered: acknowledge and drop
      continue;
    }
    io_.irq_begin(true);
    in_irq_ = true;
    // Recursive exec is safe mid-dispatch: the caller's register pointer
    // aims into its frame's heap buffer, which stays put when frames_
    // itself reallocates (vectors move by buffer ownership).
    exec<kProfile>(*h, /*counts_depth=*/true, out);
    in_irq_ = false;
    io_.irq_end();
  }
}

template <bool kProfile>
VmValue Vm::exec(const CompiledFunction& entry_fn, bool counts_depth,
                 RunOutcome& out) {
  if (counts_depth && ++depth_ > kMaxCallDepth) {
    throw Fault{FaultKind::kStackOverflow,
                "call depth exceeded in " + entry_fn.name};
  }
  const size_t base_calls = calls_.size();
  push_frame(entry_fn, nullptr, 0);
  const CompiledFunction* fn = &entry_fn;
  const Insn* code = fn->code.data();
  size_t pc = 0;
  VmValue* R = frames_.back().data();
  VmValue* G = globals_.data();

// The trailing mask check mirrors the walker's step(): an out-of-line
// wall-clock watchdog probe every 2^20 retired charges (never on the
// fast path when the watchdog is off).
#define CHARGE(ln)                          \
  do {                                      \
    if (steps_left_ == 0) {                 \
      throw_step_limit(ln);                 \
    }                                       \
    --steps_left_;                          \
    if ((steps_left_ & 0xfffff) == 0 && watchdog_ms_ != 0) {                \
      check_watchdog();                     \
    }                                       \
  } while (0)
// Charge unless the instruction was marked free (its node's charge was
// already emitted as an explicit pre-order kStep).
#define CHG(insn)                           \
  do {                                      \
    if ((insn).flags == 0) CHARGE((insn).line); \
  } while (0)

  for (;;) {
    const Insn& in = code[pc++];
    if constexpr (kProfile) ++profile_->counts[static_cast<size_t>(in.op)];
    switch (in.op) {
      // --- statement accounting ------------------------------------------
      case Op::kStep:
        CHG(in);
        break;
      case Op::kStepMark:
        CHG(in);
        out.executed.set(in.line);
        break;
      case Op::kStepStepMark:
        CHG(in);
        CHARGE(static_cast<uint32_t>(in.imm));
        out.executed.set(static_cast<uint32_t>(in.imm));
        break;
      case Op::kStepJump:
        CHG(in);
        pc = static_cast<size_t>(in.imm);
        break;
      case Op::kMark:
        out.executed.set(in.line);
        break;
      // --- control flow ---------------------------------------------------
      case Op::kJump:
        pc = static_cast<size_t>(in.imm);
        break;
      case Op::kJumpIfZero:
        if (R[in.a].i == 0) pc = static_cast<size_t>(in.imm);
        break;
      case Op::kJumpIfNotZero:
        if (R[in.a].i != 0) pc = static_cast<size_t>(in.imm);
        break;
      case Op::kJumpIfEqual:
        if (R[in.a].i == R[in.b].i) pc = static_cast<size_t>(in.imm);
        break;
      case Op::kCaseTest:
        // Walker order: the case label is marked, then the (constant) value
        // evaluation charges — a budget fault still leaves the mark.
        out.executed.set(in.line);
        CHG(in);
        R[in.b].i = R[in.a].i == in.imm ? 1 : 0;
        break;
      case Op::kCondJumpZero:
        CHG(in);
        if (R[in.a].i == 0) pc = static_cast<size_t>(in.imm);
        break;
      case Op::kAndJump:
        CHG(in);
        if (R[in.b].i == 0) {
          R[in.a].i = 0;
          pc = static_cast<size_t>(in.imm);
        }
        break;
      case Op::kOrJump:
        CHG(in);
        if (R[in.b].i != 0) {
          R[in.a].i = 1;
          pc = static_cast<size_t>(in.imm);
        }
        break;
      case Op::kBoolNorm:
        R[in.a].i = R[in.b].i != 0 ? 1 : 0;
        break;
      // --- loads / moves --------------------------------------------------
      case Op::kLoadConst:
        CHG(in);
        R[in.a].i = in.imm;
        break;
      case Op::kLoadStr:
        CHG(in);
        R[in.a].i = 0;
        R[in.a].s = mod_.str(static_cast<size_t>(in.imm));
        break;
      case Op::kMoveInt:
        CHG(in);
        R[in.a].i = R[in.b].i;
        break;
      case Op::kMoveStr:
        CHG(in);
        R[in.a].i = 0;
        R[in.a].s = R[in.b].s;
        break;
      case Op::kMoveStruct:
        CHG(in);
        R[in.a].i = 0;
        R[in.a].fields = R[in.b].fields;
        break;
      case Op::kCopyInt:
        R[in.a].i = R[in.b].i;
        break;
      case Op::kCopyStr:
        R[in.a].s = R[in.b].s;
        break;
      case Op::kCopyStruct:
        R[in.a].fields = R[in.b].fields;
        break;
      case Op::kLoadGlobalInt:
        CHG(in);
        R[in.a].i = G[in.b].i;
        break;
      case Op::kLoadGlobalStr:
        CHG(in);
        R[in.a].i = 0;
        R[in.a].s = G[in.b].s;
        break;
      case Op::kLoadGlobalStruct:
        CHG(in);
        R[in.a].i = 0;
        R[in.a].fields = G[in.b].fields;
        break;
      case Op::kLoadElemLocal:
      case Op::kLoadElemGlobal: {
        CHG(in);
        const VmValue& slot = in.op == Op::kLoadElemLocal ? R[in.b] : G[in.b];
        int64_t ix = R[in.c].i;
        if (ix < 0 || static_cast<size_t>(ix) >= slot.arr.size()) {
          throw Fault{FaultKind::kBadIndex,
                      "out-of-bounds access to " +
                          mod_.str(static_cast<size_t>(in.imm))};
        }
        R[in.a].i = slot.arr[static_cast<size_t>(ix)];
        break;
      }
      case Op::kGetFieldInt: {
        CHG(in);
        const auto& f = R[in.b].fields;
        R[in.a].i = in.c < f.size() ? f[in.c].i : 0;
        break;
      }
      case Op::kGetFieldStr: {
        CHG(in);
        const auto& f = R[in.b].fields;
        R[in.a].i = 0;
        if (in.c < f.size()) {
          R[in.a].s = f[in.c].s;
        } else {
          R[in.a].s.clear();
        }
        break;
      }
      case Op::kGetFieldStruct: {
        CHG(in);
        R[in.a].i = 0;
        if (in.c < R[in.b].fields.size()) {
          // Self-aliasing is impossible: the destination temporary is
          // always distinct from the base register (compiler invariant).
          R[in.a].fields = R[in.b].fields[in.c].fields;
        } else {
          R[in.a].fields.clear();
        }
        break;
      }
      case Op::kTakeStored:
        R[in.a].i = stored_;
        break;
      // --- arithmetic -----------------------------------------------------
      case Op::kNeg:
        CHG(in);
        R[in.a].i = -R[in.b].i;
        break;
      case Op::kBitNot:
        CHG(in);
        R[in.a].i = ~R[in.b].i;
        break;
      case Op::kLogNot:
        CHG(in);
        R[in.a].i = R[in.b].i == 0 ? 1 : 0;
        break;
      case Op::kAdd:
        CHG(in);
        R[in.a].i = R[in.b].i + R[in.c].i;
        break;
      case Op::kSub:
        CHG(in);
        R[in.a].i = R[in.b].i - R[in.c].i;
        break;
      case Op::kMul:
        CHG(in);
        R[in.a].i = R[in.b].i * R[in.c].i;
        break;
      case Op::kDiv:
        CHG(in);
        if (R[in.c].i == 0) {
          throw Fault{FaultKind::kDivByZero, "division by zero"};
        }
        R[in.a].i = R[in.b].i / R[in.c].i;
        break;
      case Op::kMod:
        CHG(in);
        if (R[in.c].i == 0) {
          throw Fault{FaultKind::kDivByZero, "modulo by zero"};
        }
        R[in.a].i = R[in.b].i % R[in.c].i;
        break;
      case Op::kBitAnd:
        CHG(in);
        R[in.a].i = R[in.b].i & R[in.c].i;
        break;
      case Op::kBitOr:
        CHG(in);
        R[in.a].i = R[in.b].i | R[in.c].i;
        break;
      case Op::kBitXor:
        CHG(in);
        R[in.a].i = R[in.b].i ^ R[in.c].i;
        break;
      case Op::kShl:
        CHG(in);
        R[in.a].i = apply_binop(Tok::kShl, R[in.b].i, R[in.c].i);
        break;
      case Op::kShr:
        CHG(in);
        R[in.a].i = apply_binop(Tok::kShr, R[in.b].i, R[in.c].i);
        break;
      case Op::kCmpEq:
        CHG(in);
        R[in.a].i = R[in.b].i == R[in.c].i;
        break;
      case Op::kCmpNe:
        CHG(in);
        R[in.a].i = R[in.b].i != R[in.c].i;
        break;
      case Op::kCmpLt:
        CHG(in);
        R[in.a].i = R[in.b].i < R[in.c].i;
        break;
      case Op::kCmpGt:
        CHG(in);
        R[in.a].i = R[in.b].i > R[in.c].i;
        break;
      case Op::kCmpLe:
        CHG(in);
        R[in.a].i = R[in.b].i <= R[in.c].i;
        break;
      case Op::kCmpGe:
        CHG(in);
        R[in.a].i = R[in.b].i >= R[in.c].i;
        break;
      case Op::kBinImm:
        CHG(in);
        CHG(in);
        R[in.a].i = apply_binop(static_cast<Tok>(in.w), R[in.b].i, in.imm);
        break;
      // Compare+branch superinstructions: the producer's charges, then the
      // jump-if-zero, with the dead result register never written.
      case Op::kBinJump:
        CHG(in);
        if (apply_binop(static_cast<Tok>(in.w), R[in.b].i, R[in.c].i) == 0) {
          pc = static_cast<size_t>(in.imm);
        }
        break;
      case Op::kBinImmJump:
        CHG(in);
        CHG(in);
        if (apply_binop(static_cast<Tok>(in.w), R[in.b].i,
                        static_cast<int64_t>(in.c)) == 0) {
          pc = static_cast<size_t>(in.imm);
        }
        break;
      case Op::kDilEqIntJump:
        CHG(in);
        if (R[in.b].i != R[in.c].i) pc = static_cast<size_t>(in.imm);
        break;
      case Op::kInConstAnd:
      case Op::kPollInAnd: {
        // Fused `inb(PORT) & MASK` (optionally with the statement's
        // step+mark). Charge order mirrors the walker exactly: the I/O
        // lands after the port literal's charge and before the mask
        // literal's, so a budget fault between them leaves identical
        // device state.
        if (in.op == Op::kPollInAnd) {
          CHARGE(in.line);
          out.executed.set(in.line);
        }
        CHARGE(in.line);
        CHARGE(in.line);
        CHARGE(in.line);
        uint64_t packed = static_cast<uint64_t>(in.imm);
        uint32_t value =
            io_.io_in(static_cast<uint32_t>(packed & 0xffffffffu), in.w);
        poll_irqs<kProfile>(out);  // walker polls on io_in return, pre-mask
        CHARGE(in.line);
        R[in.a].i = static_cast<int64_t>(value & (packed >> 32));
        break;
      }
      case Op::kStoreSlotBinImm:
        // Fused `n = m <op> LIT`: assignment, operator, identifier and
        // literal charges, then the coerced store.
        CHARGE(in.line);
        CHARGE(in.line);
        CHARGE(in.line);
        CHARGE(in.line);
        stored_ = R[in.a].i = coerce(
            apply_binop(static_cast<Tok>(in.w), R[in.b].i, in.imm),
            static_cast<uint8_t>(in.c));
        break;
      case Op::kCoerce:
        CHG(in);
        R[in.a].i = coerce(R[in.b].i, in.w);
        break;
      // --- stores ---------------------------------------------------------
      case Op::kStoreLocalInt:
        CHG(in);
        stored_ = R[in.a].i = coerce(R[in.b].i, in.w);
        break;
      case Op::kStoreGlobalInt:
        CHG(in);
        stored_ = G[in.a].i = coerce(R[in.b].i, in.w);
        break;
      case Op::kStoreLocalStr:
        CHG(in);
        R[in.a].s = R[in.b].s;
        break;
      case Op::kStoreGlobalStr:
        CHG(in);
        G[in.a].s = R[in.b].s;
        break;
      case Op::kStoreLocalStruct:
        CHG(in);
        R[in.a].fields = R[in.b].fields;
        break;
      case Op::kStoreGlobalStruct:
        CHG(in);
        G[in.a].fields = R[in.b].fields;
        break;
      case Op::kOpStoreLocal:
        CHG(in);
        stored_ = R[in.a].i = coerce(
            apply_binop(static_cast<Tok>(in.c), R[in.a].i, R[in.b].i), in.w);
        break;
      case Op::kOpStoreGlobal:
        CHG(in);
        stored_ = G[in.a].i = coerce(
            apply_binop(static_cast<Tok>(in.c), G[in.a].i, R[in.b].i), in.w);
        break;
      case Op::kOpStoreLocalImm:
        CHG(in);
        CHG(in);
        stored_ = R[in.a].i = coerce(
            apply_binop(static_cast<Tok>(in.c), R[in.a].i, in.imm), in.w);
        break;
      case Op::kOpStoreGlobalImm:
        CHG(in);
        CHG(in);
        stored_ = G[in.a].i = coerce(
            apply_binop(static_cast<Tok>(in.c), G[in.a].i, in.imm), in.w);
        break;
      case Op::kStoreElemLocal:
      case Op::kStoreElemGlobal: {
        CHG(in);
        VmValue& slot = in.op == Op::kStoreElemLocal ? R[in.a] : G[in.a];
        int64_t ix = R[in.b].i;
        if (ix < 0 || static_cast<size_t>(ix) >= slot.arr.size()) {
          throw Fault{FaultKind::kBadIndex,
                      "out-of-bounds store to " +
                          mod_.str(static_cast<size_t>(in.imm))};
        }
        stored_ = slot.arr[static_cast<size_t>(ix)] =
            coerce(R[in.c].i, in.w);
        break;
      }
      case Op::kOpStoreElemLocal:
      case Op::kOpStoreElemGlobal: {
        CHG(in);
        VmValue& slot = in.op == Op::kOpStoreElemLocal ? R[in.a] : G[in.a];
        int64_t ix = R[in.b].i;
        if (ix < 0 || static_cast<size_t>(ix) >= slot.arr.size()) {
          throw Fault{
              FaultKind::kBadIndex,
              "out-of-bounds store to " +
                  mod_.str(PackedElemOp::name_ix(in.imm))};
        }
        int64_t& elem = slot.arr[static_cast<size_t>(ix)];
        stored_ = elem =
            coerce(apply_binop(static_cast<Tok>(PackedElemOp::op(in.imm)),
                               elem, R[in.c].i),
                   PackedElemOp::coerce(in.imm));
        break;
      }
      case Op::kStoreFieldLocalInt:
      case Op::kStoreFieldGlobalInt: {
        CHG(in);
        VmValue& base = in.op == Op::kStoreFieldLocalInt ? R[in.a] : G[in.a];
        if (base.fields.size() <= in.b) base.fields.resize(in.b + 1);
        stored_ = base.fields[in.b].i = coerce(R[in.c].i, in.w);
        break;
      }
      case Op::kStoreFieldLocalStr:
      case Op::kStoreFieldGlobalStr: {
        CHG(in);
        VmValue& base = in.op == Op::kStoreFieldLocalStr ? R[in.a] : G[in.a];
        if (base.fields.size() <= in.b) base.fields.resize(in.b + 1);
        base.fields[in.b].s = R[in.c].s;
        break;
      }
      case Op::kStoreFieldLocalStruct:
      case Op::kStoreFieldGlobalStruct: {
        CHG(in);
        VmValue& base =
            in.op == Op::kStoreFieldLocalStruct ? R[in.a] : G[in.a];
        if (base.fields.size() <= in.b) base.fields.resize(in.b + 1);
        base.fields[in.b].fields = R[in.c].fields;
        break;
      }
      case Op::kOpStoreFieldLocal:
      case Op::kOpStoreFieldGlobal: {
        CHG(in);
        VmValue& base = in.op == Op::kOpStoreFieldLocal ? R[in.a] : G[in.a];
        if (base.fields.size() <= in.b) base.fields.resize(in.b + 1);
        int64_t& dst = base.fields[in.b].i;
        stored_ = dst = coerce(
            apply_binop(static_cast<Tok>(static_cast<uint8_t>(in.imm)), dst,
                        R[in.c].i),
            in.w);
        break;
      }
      // --- free stores (declaration / global initialisers) ----------------
      case Op::kStoreLocalIntF:
        R[in.a].i = coerce(R[in.b].i, in.w);
        break;
      case Op::kStoreLocalStrF:
        R[in.a].s = R[in.b].s;
        break;
      case Op::kStoreLocalStructF:
        R[in.a].fields = R[in.b].fields;
        break;
      case Op::kStoreGlobalIntF:
        G[in.a].i = coerce(R[in.b].i, in.w);
        break;
      case Op::kStoreGlobalStrF:
        G[in.a].s = R[in.b].s;
        break;
      case Op::kStoreGlobalStructF:
        G[in.a].fields = R[in.b].fields;
        break;
      case Op::kStoreGFieldIntF: {
        VmValue& base = G[in.a];
        if (base.fields.size() <= in.b) base.fields.resize(in.b + 1);
        base.fields[in.b].i = coerce(R[in.c].i, in.w);
        break;
      }
      case Op::kStoreGFieldStrF: {
        VmValue& base = G[in.a];
        if (base.fields.size() <= in.b) base.fields.resize(in.b + 1);
        base.fields[in.b].s = R[in.c].s;
        break;
      }
      case Op::kStoreGFieldStructF: {
        VmValue& base = G[in.a];
        if (base.fields.size() <= in.b) base.fields.resize(in.b + 1);
        base.fields[in.b].fields = R[in.c].fields;
        break;
      }
      // --- declarations ---------------------------------------------------
      case Op::kDeclIntZ:
        CHG(in);
        out.executed.set(in.line);
        R[in.a].i = 0;
        break;
      case Op::kDeclStrZ:
        CHG(in);
        out.executed.set(in.line);
        R[in.a].i = 0;
        R[in.a].s.clear();
        break;
      case Op::kDeclStructZ:
        CHG(in);
        out.executed.set(in.line);
        R[in.a].i = 0;
        R[in.a].fields =
            *mod_.struct_default_table[static_cast<size_t>(in.imm)];
        break;
      case Op::kDeclArr:
        CHG(in);
        out.executed.set(in.line);
        R[in.a].arr.assign(static_cast<size_t>(in.imm), 0);
        break;
      case Op::kInitGlobalArr:
        G[in.a].arr.assign(static_cast<size_t>(in.imm), 0);
        break;
      // --- calls ----------------------------------------------------------
      case Op::kCall: {
        CHG(in);
        const CompiledFunction& callee = *mod_.fn_table[in.b];
        if (++depth_ > kMaxCallDepth) {
          throw Fault{FaultKind::kStackOverflow,
                      "call depth exceeded in " + callee.name};
        }
        push_frame(callee, R, in.c);
        calls_.push_back(Activation{fn, pc, in.a});
        fn = &callee;
        code = fn->code.data();
        pc = 0;
        R = frames_.back().data();
        break;
      }
      // Fused one-line leaf calls: no frame is pushed; the callee's charges
      // and coverage mark are replayed from its code, so exhaustion lines,
      // step totals and the bitmap match a real call exactly.
      case Op::kCallRetParam:
      case Op::kCallRetConst: {
        CHG(in);
        const CompiledFunction& callee = *mod_.fn_table[in.b];
        if (depth_ >= kMaxCallDepth) {
          throw Fault{FaultKind::kStackOverflow,
                      "call depth exceeded in " + callee.name};
        }
        const Insn* cc = callee.code.data();
        CHARGE(cc[0].line);  // block entry
        CHARGE(static_cast<uint32_t>(cc[0].imm));  // the one statement
        out.executed.set(static_cast<uint32_t>(cc[0].imm));
        CHARGE(cc[1].line);  // its operand load
        if (in.op == Op::kCallRetParam) {
          const ParamSpec& ps = callee.params[cc[1].b];
          R[in.a].i = coerce(R[in.c + cc[1].b].i, ps.coerce);
        } else {
          R[in.a].i = cc[1].imm;
        }
        break;
      }
      case Op::kCallOutConst: {
        CHG(in);
        const CompiledFunction& callee = *mod_.fn_table[in.b];
        if (depth_ >= kMaxCallDepth) {
          throw Fault{FaultKind::kStackOverflow,
                      "call depth exceeded in " + callee.name};
        }
        const Insn* cc = callee.code.data();
        CHARGE(cc[0].line);
        CHARGE(static_cast<uint32_t>(cc[0].imm));
        out.executed.set(static_cast<uint32_t>(cc[0].imm));
        CHARGE(cc[1].line);  // value literal
        CHARGE(cc[2].line);  // port literal
        CHARGE(cc[3].line);  // the out* call node
        uint32_t w = cc[3].w;
        uint32_t mask = w >= 32 ? 0xffffffffu : ((1u << w) - 1);
        io_.io_out(static_cast<uint32_t>(cc[2].imm),
                   static_cast<uint32_t>(cc[1].imm) & mask,
                   static_cast<int>(w));
        poll_irqs<kProfile>(out);
        R[in.a].i = 0;  // void result, as a real call's kRetZero returns
        break;
      }
      case Op::kRet:
      case Op::kRetZero: {
        VmValue result;
        if (in.op == Op::kRet) result = std::move(R[in.a]);
        pop_frame();
        if (calls_.size() == base_calls) {
          if (counts_depth) --depth_;
          return result;
        }
        --depth_;
        Activation act = calls_.back();
        calls_.pop_back();
        fn = act.fn;
        code = fn->code.data();
        pc = act.pc;
        R = frames_.back().data();
        R[act.dst] = std::move(result);
        break;
      }
      // --- builtins -------------------------------------------------------
      case Op::kIn:
        CHG(in);
        R[in.a].i =
            io_.io_in(static_cast<uint32_t>(R[in.b].i), in.w);
        poll_irqs<kProfile>(out);
        break;
      case Op::kInConst:
        CHG(in);
        CHG(in);
        R[in.a].i = io_.io_in(static_cast<uint32_t>(in.imm), in.w);
        poll_irqs<kProfile>(out);
        break;
      case Op::kOut: {
        CHG(in);
        uint32_t mask = in.w >= 32 ? 0xffffffffu : ((1u << in.w) - 1);
        uint32_t value = static_cast<uint32_t>(R[in.a].i);
        uint32_t port = static_cast<uint32_t>(R[in.b].i);
        io_.io_out(port, value & mask, in.w);
        poll_irqs<kProfile>(out);
        break;
      }
      case Op::kPanic: {
        CHG(in);
        bool devil = support::starts_with(R[in.a].s, "Devil assertion");
        std::string msg =
            R[in.a].s + " (line " + std::to_string(in.line) + ")";
        throw Fault{devil ? FaultKind::kDevilAssertion : FaultKind::kPanic,
                    std::move(msg)};
      }
      case Op::kPrintk:
        CHG(in);
        out.log.push_back(R[in.a].s);
        break;
      case Op::kStrcmp:
        CHG(in);
        R[in.a].i = R[in.b].s.compare(R[in.c].s);
        break;
      case Op::kUdelay: {
        CHG(in);
        int64_t n = R[in.a].i;
        uint64_t burn =
            static_cast<uint64_t>(n < 0 ? 0 : (n > 10000 ? 10000 : n));
        if (burn > steps_left_) {
          steps_left_ = 0;
          throw_step_limit(in.line);
        }
        steps_left_ -= burn;
        poll_irqs<kProfile>(out);  // a delay is where pending edges land
        break;
      }
      case Op::kDilEqInt:
        CHG(in);
        R[in.a].i = R[in.b].i == R[in.c].i ? 1 : 0;
        break;
      case Op::kDilEqStruct:
      case Op::kDilEqStructJump: {
        CHG(in);
        const auto& x = R[in.b].fields;
        const auto& y = R[in.c].fields;
        const std::string& xf = !x.empty() ? x[0].s : empty_string();
        const std::string& yf = !y.empty() ? y[0].s : empty_string();
        int64_t xt = x.size() > 1 ? x[1].i : -1;
        int64_t yt = y.size() > 1 ? y[1].i : -2;
        if (xf != yf || xt != yt) {
          throw Fault{FaultKind::kDevilAssertion,
                      "Devil assertion failed: dil_eq type mismatch (line " +
                          std::to_string(in.line) + ")"};
        }
        int64_t xv = x.size() > 2 ? x[2].i : 0;
        int64_t yv = y.size() > 2 ? y[2].i : 0;
        if (in.op == Op::kDilEqStruct) {
          R[in.a].i = xv == yv ? 1 : 0;
        } else if (xv != yv) {
          pc = static_cast<size_t>(in.imm);
        }
        break;
      }
      case Op::kDilValInt:
        CHG(in);
        R[in.a].i = R[in.b].i;
        break;
      case Op::kDilValStruct:
        CHG(in);
        R[in.a].i = R[in.b].fields.size() > 2 ? R[in.b].fields[2].i : 0;
        break;
      case Op::kRequestIrq: {
        CHG(in);
        int64_t line_no = R[in.a].i;
        if (line_no < 0 || line_no >= kIrqLines) {
          throw Fault{FaultKind::kPanic,
                      "request_irq: invalid irq line " +
                          std::to_string(line_no) + " (line " +
                          std::to_string(in.line) + ")"};
        }
        const uint32_t* ix = mod_.find_fn(R[in.b].s);
        if (ix == nullptr) {
          throw Fault{FaultKind::kPanic,
                      "request_irq: unknown handler '" + R[in.b].s +
                          "' (line " + std::to_string(in.line) + ")"};
        }
        const CompiledFunction* h = mod_.fn_table[*ix];
        if (!h->params.empty()) {
          throw Fault{FaultKind::kPanic,
                      "request_irq: handler '" + R[in.b].s +
                          "' takes arguments (line " +
                          std::to_string(in.line) + ")"};
        }
        irq_handlers_[static_cast<size_t>(line_no)] = h;
        break;
      }
      case Op::kUnreachable:
        CHG(in);
        throw Fault{FaultKind::kInternal,
                    mod_.str(static_cast<size_t>(in.imm))};
    }
  }
}

template <bool kProfile>
void Vm::run_body(const std::string& entry, RunOutcome& out) {
  // A spliced module initialises the prefix's globals from the shared
  // segment's code, then its own tail globals — the same order (and the
  // same charges) as one concatenated initialiser.
  if (mod_.prefix) {
    exec<kProfile>(mod_.prefix->globals_init, /*counts_depth=*/false, out);
  }
  exec<kProfile>(mod_.globals_init, /*counts_depth=*/false, out);
  const uint32_t* entry_ix = mod_.find_fn(entry);
  if (!entry_ix) {
    throw Fault{FaultKind::kInternal, "missing function " + entry};
  }
  VmValue result =
      exec<kProfile>(*mod_.fn_table[*entry_ix], /*counts_depth=*/true, out);
  out.return_value = result.i;
}

RunOutcome Vm::run(const std::string& entry) {
  RunOutcome out;
  steps_left_ = budget_;
  depth_ = 0;
  calls_.clear();
  while (!frames_.empty()) pop_frame();
  globals_.clear();
  globals_.resize(mod_.global_count);
  irq_handlers_.fill(nullptr);
  in_irq_ = false;
  if (watchdog_ms_ != 0) {
    watchdog_deadline_ = std::chrono::steady_clock::now() +
                         std::chrono::milliseconds(watchdog_ms_);
  }
  io_.bind_step_probe(&steps_left_, budget_);
  try {
    if (profile_ != nullptr) {
      run_body<true>(entry, out);
    } else {
      run_body<false>(entry, out);
    }
  } catch (const Fault& f) {
    out.fault = f.kind;
    out.fault_message = f.message;
  }
  out.steps_used = budget_ - steps_left_;
  out.executed_lines = out.executed.to_set();
  return out;
}

}  // namespace minic::bytecode
