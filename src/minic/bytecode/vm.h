// Bytecode virtual machine for MiniC. Drop-in replacement for the tree
// walker (`minic::Interp`): identical RunOutcome for any typechecked unit —
// same fault kind and message, return value, step count, coverage bitmap
// and printk log. The differential suite (tests/test_bytecode_vm.cc)
// enforces the equivalence over the corpus drivers, the Devil-generated
// stubs and sampled mutants.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "minic/bytecode/bytecode.h"
#include "minic/interp.h"

namespace minic::bytecode {

class Vm {
 public:
  /// `module` and `io` must outlive the Vm.
  Vm(const Module& module, IoEnvironment& io, uint64_t step_budget = 2'000'000);

  /// (Re)initialises globals, then calls `entry` (no arguments). Returns
  /// the outcome; never throws.
  [[nodiscard]] RunOutcome run(const std::string& entry);

  /// Optional per-opcode dispatch profile: when set before run(), every
  /// dispatched instruction bumps `profile->counts[op]`. The counting and
  /// non-counting dispatch loops are separate template instantiations, so
  /// runs with the profile unset (every campaign mutant boot) pay nothing.
  void set_opcode_profile(OpcodeProfile* profile) { profile_ = profile; }

  /// Wall-clock cap per run (kWatchdog fault when exceeded; checked every
  /// 2^20 retired charges). 0 (the default) disables it. Mirrors
  /// Interp::set_watchdog_ms.
  void set_watchdog_ms(uint64_t ms) { watchdog_ms_ = ms; }

 private:
  /// Interrupt lines modelled; mirrors the walker's kIrqLines and
  /// hw::IrqController::kLines.
  static constexpr int kIrqLines = 8;

  template <bool kProfile>
  VmValue exec(const CompiledFunction& fn, bool counts_depth,
               RunOutcome& out);
  template <bool kProfile>
  void run_body(const std::string& entry, RunOutcome& out);
  /// Drains deliverable IRQ events at an I/O charge boundary; dispatches
  /// registered handlers as recursive exec calls (handlers run to
  /// completion — no nesting).
  template <bool kProfile>
  void poll_irqs(RunOutcome& out);
  void check_watchdog();
  void push_frame(const CompiledFunction& fn, const VmValue* caller_regs,
                  uint32_t argbase);
  void pop_frame();

  const Module& mod_;
  IoEnvironment& io_;
  uint64_t budget_;
  uint64_t steps_left_ = 0;
  int depth_ = 0;
  /// The value committed by the most recent store opcode; kTakeStored
  /// materialises it when an assignment is consumed as an expression.
  int64_t stored_ = 0;
  /// One flat register vector per activation; retired vectors are pooled so
  /// a warm call allocates nothing (mirrors the walker's frame pool).
  std::vector<std::vector<VmValue>> frames_;
  std::vector<std::vector<VmValue>> frame_pool_;
  struct Activation {
    const CompiledFunction* fn;
    size_t pc;
    uint16_t dst;
  };
  std::vector<Activation> calls_;
  std::vector<VmValue> globals_;
  OpcodeProfile* profile_ = nullptr;
  /// Interrupt handlers by line (request_irq); null = acknowledge-and-drop.
  std::array<const CompiledFunction*, kIrqLines> irq_handlers_{};
  /// True while a handler runs: handlers complete before the next delivery.
  bool in_irq_ = false;
  /// Wall-clock boot containment; 0 disables (the default).
  uint64_t watchdog_ms_ = 0;
  std::chrono::steady_clock::time_point watchdog_deadline_{};
};

}  // namespace minic::bytecode
