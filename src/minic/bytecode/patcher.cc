// Mutant classification + operand rewriting over the clean tail module.
// See patcher.h for the soundness argument and the default-deny policy.
#include "minic/bytecode/patcher.h"

#include <stdexcept>

#include "minic/builtins.h"

namespace minic::bytecode {

namespace {

/// Tok -> plain 3-register binop opcode (inverse of the compiler's
/// binop_tok). `/` and `%` are intentionally absent: they can fault, which
/// would invalidate the clean compile's confined() decisions — and no
/// Table 1 rule produces them anyway.
std::optional<Op> plain_binop_op(Tok t) {
  switch (t) {
    case Tok::kPlus: return Op::kAdd;
    case Tok::kMinus: return Op::kSub;
    case Tok::kStar: return Op::kMul;
    case Tok::kAmp: return Op::kBitAnd;
    case Tok::kPipe: return Op::kBitOr;
    case Tok::kCaret: return Op::kBitXor;
    case Tok::kShl: return Op::kShl;
    case Tok::kShr: return Op::kShr;
    case Tok::kEq: return Op::kCmpEq;
    case Tok::kNe: return Op::kCmpNe;
    case Tok::kLt: return Op::kCmpLt;
    case Tok::kGt: return Op::kCmpGt;
    case Tok::kLe: return Op::kCmpLe;
    case Tok::kGe: return Op::kCmpGe;
    default: return std::nullopt;
  }
}

/// Compound assignment -> base operator, mirroring the compiler's
/// compound_base (no `/=` or `%=` in MiniC).
Tok compound_base(Tok t) {
  switch (t) {
    case Tok::kPlusAssign: return Tok::kPlus;
    case Tok::kMinusAssign: return Tok::kMinus;
    case Tok::kAndAssign: return Tok::kAmp;
    case Tok::kOrAssign: return Tok::kPipe;
    case Tok::kXorAssign: return Tok::kCaret;
    case Tok::kShlAssign: return Tok::kShl;
    case Tok::kShrAssign: return Tok::kShr;
    default: return Tok::kEof;
  }
}

std::optional<Op> unary_op(Tok t) {
  switch (t) {
    case Tok::kMinus: return Op::kNeg;
    case Tok::kPlus: return Op::kMoveInt;
    case Tok::kTilde: return Op::kBitNot;
    case Tok::kBang: return Op::kLogNot;
    default: return std::nullopt;
  }
}

Op fused_call_op(LeafShape shape) {
  switch (shape) {
    case LeafShape::kRetParam: return Op::kCallRetParam;
    case LeafShape::kRetConst: return Op::kCallRetConst;
    case LeafShape::kOutConst: return Op::kCallOutConst;
    case LeafShape::kNone: break;
  }
  return Op::kCall;
}

void collect_locals(const Stmt& s, std::set<std::string>& out) {
  if (s.kind == StmtKind::kDecl) out.insert(s.decl_name);
  for (const auto& child : s.body) {
    if (child) collect_locals(*child, out);
  }
  for (const auto& c : s.cases) {
    for (const auto& child : c.body) collect_locals(*child, out);
  }
}

}  // namespace

Patcher::Patcher(const Module& clean_tail, const Unit& prefix_unit,
                 const Unit& tail_unit, const MacroTable& macros,
                 PatchTable table)
    : fn_base_(table.fn_base) {
  clean_.prefix = clean_tail.prefix;
  clean_.fns = clean_tail.fns;
  clean_.globals_init = clean_tail.globals_init;
  clean_.global_count = clean_tail.global_count;
  clean_.fn_index = clean_tail.fn_index;
  clean_.strings = clean_tail.strings;
  clean_.struct_defaults = clean_tail.struct_defaults;
  finalize_module_tables(clean_);

  for (const auto& p : table.points) points_by_site_[p.site].push_back(p);

  // Global symbol table: prefix slots first, tail slots continue. A name
  // bound twice is ambiguous (which half a recompile binds depends on the
  // checker) and never patched.
  size_t slot = 0;
  auto add_global = [&](const GlobalDecl& g) {
    GlobalInfo gi;
    gi.slot = static_cast<uint16_t>(slot++);
    gi.type = g.type;
    gi.is_const = g.is_const;
    gi.is_array = g.array_size.has_value();
    if (!globals_.emplace(g.name, gi).second) ambiguous_globals_.insert(g.name);
  };
  for (const auto& g : prefix_unit.globals) add_global(g);
  for (const auto& g : tail_unit.globals) add_global(g);

  // Function table: first definition wins, matching the walker's linear
  // call_function scan and Module::find_fn.
  auto add_fn = [&](const FunctionDecl& f, uint32_t index) {
    FnInfo fi;
    fi.index = index;
    for (const auto& p : f.params) fi.params.push_back(p.type);
    fi.ret = f.return_type;
    fns_.emplace(f.name, std::move(fi));
  };
  for (size_t i = 0; i < prefix_unit.functions.size(); ++i) {
    add_fn(prefix_unit.functions[i], static_cast<uint32_t>(i));
  }
  for (size_t i = 0; i < tail_unit.functions.size(); ++i) {
    add_fn(tail_unit.functions[i], fn_base_ + static_cast<uint32_t>(i));
  }

  // Leaf shapes per absolute index: the prefix's were classified at
  // compile_prefix time; tail functions are classified here, once per
  // campaign, so per-mutant callee rewrites are pure lookups.
  shapes_.assign(fn_base_ + clean_.fns.size(), LeafShape::kNone);
  if (clean_.prefix) {
    for (size_t i = 0;
         i < clean_.prefix->leaf_shapes.size() && i < shapes_.size(); ++i) {
      shapes_[i] = static_cast<LeafShape>(clean_.prefix->leaf_shapes[i]);
    }
  }
  for (size_t i = 0; i < clean_.fns.size(); ++i) {
    shapes_[fn_base_ + i] = classify_leaf_shape(clean_.fns[i]);
  }
  for (auto& [name, fi] : fns_) {
    if (fi.index < shapes_.size()) fi.shape = shapes_[fi.index];
  }

  // Per tail function: every local/param name. A replacement global that
  // collides with one would rebind to the local on recompile (lookup()
  // checks the frame first), so such renames fall back.
  tail_fn_locals_.resize(tail_unit.functions.size());
  for (size_t i = 0; i < tail_unit.functions.size(); ++i) {
    const FunctionDecl& f = tail_unit.functions[i];
    auto& names = tail_fn_locals_[i];
    for (const auto& p : f.params) names.insert(p.name);
    if (f.body) collect_locals(*f.body, names);
  }

  for (const auto& [name, body] : macros) {
    macro_names_.insert(name);
    if (body.size() == 1 && body[0].kind == Tok::kIntLit) {
      macro_values_[name] = body[0].int_value;
    }
  }
}

const Insn& Patcher::insn_at(const PatchPoint& p) const {
  const CompiledFunction* fn = nullptr;
  if (p.fn == kGlobalsInitFn) {
    fn = &clean_.globals_init;
  } else {
    if (p.fn < fn_base_ || p.fn - fn_base_ >= clean_.fns.size()) {
      throw std::runtime_error("corrupt patch table: function " +
                               std::to_string(p.fn) + " not in tail");
    }
    fn = &clean_.fns[p.fn - fn_base_];
  }
  if (p.insn >= fn->code.size()) {
    throw std::runtime_error("corrupt patch table: insn " +
                             std::to_string(p.insn) + " out of range in " +
                             fn->name);
  }
  return fn->code[p.insn];
}

Module Patcher::clone_clean() const {
  Module out;
  out.prefix = clean_.prefix;
  out.fns = clean_.fns;
  out.globals_init = clean_.globals_init;
  out.global_count = clean_.global_count;
  out.fn_index = clean_.fn_index;
  out.strings = clean_.strings;
  out.struct_defaults = clean_.struct_defaults;
  finalize_module_tables(out);
  return out;
}

bool Patcher::plan_operator(const PatchPoint& p, Tok new_op,
                            std::vector<Rewrite>& plan) const {
  const Insn& in = insn_at(p);
  Insn nv = in;
  switch (in.op) {
    // Plain 3-register binop: opcode swap.
    case Op::kAdd: case Op::kSub: case Op::kMul: case Op::kDiv:
    case Op::kMod: case Op::kBitAnd: case Op::kBitOr: case Op::kBitXor:
    case Op::kShl: case Op::kShr: case Op::kCmpEq: case Op::kCmpNe:
    case Op::kCmpLt: case Op::kCmpGt: case Op::kCmpLe: case Op::kCmpGe: {
      auto op = plain_binop_op(new_op);
      if (!op) return false;
      nv.op = *op;
      break;
    }
    // Operator lives in `w` as a Tok.
    case Op::kBinImm:
    case Op::kBinJump:
    case Op::kBinImmJump:
    case Op::kStoreSlotBinImm:
      if (!plain_binop_op(new_op)) return false;
      nv.w = static_cast<uint8_t>(new_op);
      break;
    // Compound store: base operator in `c`.
    case Op::kOpStoreLocal:
    case Op::kOpStoreGlobal:
    case Op::kOpStoreLocalImm:
    case Op::kOpStoreGlobalImm: {
      Tok b = compound_base(new_op);
      if (b == Tok::kEof) return false;
      nv.c = static_cast<uint16_t>(b);
      break;
    }
    // Compound element store: base operator packed into imm.
    case Op::kOpStoreElemLocal:
    case Op::kOpStoreElemGlobal: {
      Tok b = compound_base(new_op);
      if (b == Tok::kEof) return false;
      nv.imm = PackedElemOp::pack(PackedElemOp::name_ix(in.imm),
                                  static_cast<uint8_t>(b),
                                  PackedElemOp::coerce(in.imm));
      break;
    }
    // Compound field store: base operator in imm's low byte.
    case Op::kOpStoreFieldLocal:
    case Op::kOpStoreFieldGlobal: {
      Tok b = compound_base(new_op);
      if (b == Tok::kEof) return false;
      nv.imm = static_cast<int64_t>(static_cast<uint8_t>(b));
      break;
    }
    // Unary operator: opcode swap among the four unary lowerings.
    case Op::kNeg: case Op::kMoveInt: case Op::kBitNot: case Op::kLogNot: {
      auto op = unary_op(new_op);
      if (!op) return false;
      nv.op = *op;
      break;
    }
    // Short-circuit pair: && <-> || swap (both charge the node once and
    // branch on the left value — mirrored control flow).
    case Op::kAndJump:
    case Op::kOrJump:
      if (new_op == Tok::kAmpAmp) {
        nv.op = Op::kAndJump;
      } else if (new_op == Tok::kPipePipe) {
        nv.op = Op::kOrJump;
      } else {
        return false;
      }
      break;
    // Anything else (kInConstAnd / kPollInAnd: no other operator can
    // express the fusion) is structure-changing.
    default:
      return false;
  }
  plan.push_back({p.fn, p.insn, nv});
  return true;
}

bool Patcher::plan_literal(const PatchPoint& p, uint64_t value,
                           std::vector<Rewrite>& plan) const {
  const Insn& in = insn_at(p);
  Insn nv = in;
  switch (p.role) {
    case PatchRole::kLiteral:
      switch (in.op) {
        case Op::kLoadConst:
        case Op::kBinImm:
        case Op::kInConst:
        case Op::kOpStoreLocalImm:
        case Op::kOpStoreGlobalImm:
        case Op::kStoreSlotBinImm:
        case Op::kCaseTest:
          nv.imm = static_cast<int64_t>(value);
          break;
        case Op::kBinImmJump:
          // The fused literal lives in the u16 `c` field (imm is the jump
          // target); a wider replacement cannot be encoded.
          if (value > 0xffff) return false;
          nv.c = static_cast<uint16_t>(value);
          break;
        default:
          return false;
      }
      break;
    case PatchRole::kPackedPort: {
      if (in.op != Op::kInConstAnd && in.op != Op::kPollInAnd) return false;
      if (value > 0xffffffffULL) return false;
      uint64_t u = static_cast<uint64_t>(in.imm);
      nv.imm = static_cast<int64_t>((u & 0xffffffff00000000ULL) | value);
      break;
    }
    case PatchRole::kPackedMask: {
      if (in.op != Op::kInConstAnd && in.op != Op::kPollInAnd) return false;
      if (value > 0xffffffffULL) return false;
      uint64_t u = static_cast<uint64_t>(in.imm);
      nv.imm = static_cast<int64_t>((u & 0xffffffffULL) | (value << 32));
      break;
    }
    default:
      return false;
  }
  plan.push_back({p.fn, p.insn, nv});
  return true;
}

bool Patcher::plan_identifier(const PatchRequest& req,
                              const std::vector<PatchPoint>& points,
                              std::vector<Rewrite>& plan) const {
  // Macro-value rename: the clean token expanded to a literal whose site
  // tag survived (single-int body), so the points are literal-shaped. The
  // replacement must be the same shape; its value patches every point.
  if (auto mo = macro_values_.find(req.original); mo != macro_values_.end()) {
    auto mr = macro_values_.find(req.replacement);
    if (mr == macro_values_.end()) return false;
    for (const auto& p : points) {
      if (!plan_literal(p, mr->second, plan)) return false;
    }
    return true;
  }
  // Any other macro involvement changes the token stream structurally.
  if (macro_names_.count(req.original) != 0) return false;
  if (macro_names_.count(req.replacement) != 0) return false;

  bool all_callee = true;
  bool all_global = true;
  bool any_store = false;
  for (const auto& p : points) {
    if (p.role != PatchRole::kCallee) all_callee = false;
    if (p.role != PatchRole::kGlobalLoad && p.role != PatchRole::kGlobalStore) {
      all_global = false;
    }
    if (p.role == PatchRole::kGlobalStore) any_store = true;
  }

  if (all_callee) {
    // Callee rename. The recompiled call site must typecheck against the
    // replacement (arity, pairwise argument types, return type), and the
    // fused opcode is re-derived from the replacement's leaf shape.
    if (find_builtin(req.replacement)) return false;  // rebinds to builtin
    auto orig = fns_.find(req.original);
    auto repl = fns_.find(req.replacement);
    if (orig == fns_.end() || repl == fns_.end()) return false;
    const FnInfo& of = orig->second;
    const FnInfo& rf = repl->second;
    if (of.params.size() != rf.params.size()) return false;
    for (size_t i = 0; i < of.params.size(); ++i) {
      if (!of.params[i].same_as(rf.params[i])) return false;
    }
    if (!of.ret.same_as(rf.ret)) return false;
    if (rf.index > 0xffff) return false;
    for (const auto& p : points) {
      const Insn& in = insn_at(p);
      switch (in.op) {
        case Op::kCall:
        case Op::kCallRetParam:
        case Op::kCallRetConst:
        case Op::kCallOutConst:
          break;
        default:
          return false;
      }
      if (in.b != of.index) return false;  // ambiguity guard
      Insn nv = in;
      nv.b = static_cast<uint16_t>(rf.index);
      nv.op = fused_call_op(rf.shape);
      plan.push_back({p.fn, p.insn, nv});
    }
    return true;
  }

  if (all_global) {
    // Global scalar rename. The replacement must exist, bind as the same
    // kind of storage (non-array, same type *and* store coercion — C's
    // checker calls all integers the same, but a different width would
    // change the recompiled store's narrowing), be writable if any point
    // stores (a const target is a compile error on recompile), and not be
    // shadowed by a local in any enclosing function.
    if (ambiguous_globals_.count(req.original) != 0) return false;
    if (ambiguous_globals_.count(req.replacement) != 0) return false;
    auto og = globals_.find(req.original);
    auto rg = globals_.find(req.replacement);
    if (og == globals_.end() || rg == globals_.end()) return false;
    const GlobalInfo& o = og->second;
    const GlobalInfo& r = rg->second;
    if (o.is_array || r.is_array) return false;
    if (!o.type.same_as(r.type)) return false;
    if (pack_coerce(o.type) != pack_coerce(r.type)) return false;
    if (any_store && r.is_const) return false;
    for (const auto& p : points) {
      if (p.fn != kGlobalsInitFn) {
        size_t local = p.fn - fn_base_;
        if (local < tail_fn_locals_.size() &&
            tail_fn_locals_[local].count(req.replacement) != 0) {
          return false;
        }
      }
      const Insn& in = insn_at(p);
      Insn nv = in;
      if (p.role == PatchRole::kGlobalLoad) {
        switch (in.op) {
          case Op::kLoadGlobalInt:
          case Op::kLoadGlobalStr:
          case Op::kLoadGlobalStruct:
            break;
          default:
            return false;
        }
        if (in.b != o.slot) return false;
        nv.b = r.slot;
      } else {
        switch (in.op) {
          case Op::kStoreGlobalInt:
          case Op::kStoreGlobalStr:
          case Op::kStoreGlobalStruct:
          case Op::kOpStoreGlobal:
          case Op::kOpStoreGlobalImm:
          case Op::kStoreFieldGlobalInt:
          case Op::kStoreFieldGlobalStr:
          case Op::kStoreFieldGlobalStruct:
          case Op::kOpStoreFieldGlobal:
            break;
          default:
            return false;
        }
        if (in.a != o.slot) return false;
        nv.a = r.slot;
      }
      plan.push_back({p.fn, p.insn, nv});
    }
    return true;
  }

  return false;
}

std::optional<Module> Patcher::apply(const PatchRequest& req) const {
  auto it = points_by_site_.find(req.site);
  if (it == points_by_site_.end() || it->second.empty()) return std::nullopt;
  const std::vector<PatchPoint>& points = it->second;

  std::vector<Rewrite> plan;
  plan.reserve(points.size());
  switch (req.kind) {
    case PatchRequest::Kind::kOperator:
      for (const auto& p : points) {
        if (p.role != PatchRole::kOperator) return std::nullopt;
        if (!plan_operator(p, req.new_op, plan)) return std::nullopt;
      }
      break;
    case PatchRequest::Kind::kLiteral:
      for (const auto& p : points) {
        if (!plan_literal(p, req.value, plan)) return std::nullopt;
      }
      break;
    case PatchRequest::Kind::kIdentifier:
      if (!plan_identifier(req, points, plan)) return std::nullopt;
      break;
  }

  Module out = clone_clean();
  for (const Rewrite& rw : plan) {
    Insn& dst = rw.fn == kGlobalsInitFn
                    ? out.globals_init.code[rw.insn]
                    : out.fns[rw.fn - fn_base_].code[rw.insn];
    dst = rw.value;
  }
  return out;
}

}  // namespace minic::bytecode
