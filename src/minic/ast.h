// Abstract syntax for MiniC.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "minic/token.h"
#include "support/source.h"

namespace minic {

// ---------------------------------------------------------------------------
// Types
// ---------------------------------------------------------------------------

enum class TypeKind { kVoid, kInt, kCString, kStruct };

/// A MiniC type. Integer types carry width and signedness; all integer types
/// are mutually convertible (C's permissiveness, which the paper's Table 3
/// exploits). Struct types are nominal: the only thing a C compiler rejects,
/// and the hook Devil's debug stubs rely on (paper §2.3).
struct Type {
  TypeKind kind = TypeKind::kInt;
  int bits = 32;
  bool is_signed = true;
  std::string struct_name;

  [[nodiscard]] bool is_integer() const { return kind == TypeKind::kInt; }
  [[nodiscard]] bool is_struct() const { return kind == TypeKind::kStruct; }
  [[nodiscard]] bool same_as(const Type& o) const {
    if (kind != o.kind) return false;
    if (kind == TypeKind::kStruct) return struct_name == o.struct_name;
    return true;  // all integer types are "the same" to C's checker
  }

  static Type void_type() { return {TypeKind::kVoid, 0, false, {}}; }
  static Type int_type(int bits = 32, bool is_signed = true) {
    return {TypeKind::kInt, bits, is_signed, {}};
  }
  static Type cstring() { return {TypeKind::kCString, 0, false, {}}; }
  static Type struct_type(std::string name) {
    return {TypeKind::kStruct, 0, false, std::move(name)};
  }

  [[nodiscard]] std::string to_string() const;
};

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class ExprKind {
  kIntLit,
  kStringLit,
  kIdent,
  kUnary,      // op applied to sub[0]
  kBinary,     // sub[0] op sub[1]
  kAssign,     // sub[0] op= sub[1] (op == kAssign for plain '=')
  kCond,       // sub[0] ? sub[1] : sub[2]
  kCall,       // callee name + args in sub
  kMember,     // sub[0] . member
  kIndex,      // sub[0] [ sub[1] ]
  kCast,       // (type) sub[0]
};

struct Expr {
  /// AST nodes dominate the per-mutant parse's allocation churn, so they
  /// come from a thread-cached slab pool (ast_pool.cc) instead of the
  /// global heap. Passthrough under sanitizer builds.
  static void* operator new(std::size_t size);
  static void operator delete(void* p, std::size_t size) noexcept;

  ExprKind kind;
  support::SourceLoc loc;
  Tok op = Tok::kEof;          // kUnary / kBinary / kAssign operator
  uint64_t int_value = 0;      // kIntLit
  std::string text;            // kIdent name, kStringLit value, kMember name,
                               // kCall callee
  Type cast_type;              // kCast
  std::vector<ExprPtr> sub;

  // Mutation-site provenance, copied from the tokens that produced the node
  // (kNoSite when untracked). `site` is the value token's tag (kIntLit /
  // kIdent name / kCall callee); `op_site` the operator token's tag on
  // kUnary / kBinary / kAssign. Synthesized nodes (for-loop `true`, the `1`
  // of a postfix ++ desugar) stay untagged.
  uint32_t site = kNoSite;
  uint32_t op_site = kNoSite;

  // Filled by the type checker; consumed by the interpreter.
  Type type;
  // Static resolution (also filled by the type checker) so the interpreter
  // never resolves names on the hot path. Exactly one of frame_slot /
  // global_slot is >= 0 for a resolved kIdent; callee_index or builtin_index
  // is >= 0 for a resolved kCall; member_index is >= 0 for a resolved
  // kMember.
  int32_t frame_slot = -1;     // kIdent: slot within the function frame
  int32_t global_slot = -1;    // kIdent: index into Unit::globals
  int32_t member_index = -1;   // kMember: field position in the struct decl
  int32_t callee_index = -1;   // kCall: index into Unit::functions
  int32_t builtin_index = -1;  // kCall: static_cast<int>(Builtin)
};

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

enum class StmtKind {
  kExpr,      // expr[0] ;
  kDecl,      // local declaration (possibly array), init in expr[0]
  kBlock,
  kIf,        // cond expr[0]; body[0] then, body[1] else (optional)
  kWhile,     // cond expr[0]; body[0]
  kDoWhile,   // body[0]; cond expr[0]
  kFor,       // init stmt in body[1] (optional), cond expr[0] (optional),
              // step expr[1] (optional), body[0]
  kReturn,    // expr[0] optional
  kBreak,
  kContinue,
  kSwitch,    // operand expr[0]; cases[]
  kEmpty,
};

struct SwitchCase {
  bool is_default = false;
  ExprPtr value;               // constant expression (typically a macro)
  std::vector<StmtPtr> body;   // statements until next label
  support::SourceLoc loc;
};

struct Stmt {
  static void* operator new(std::size_t size);   // pooled, see Expr
  static void operator delete(void* p, std::size_t size) noexcept;

  StmtKind kind;
  support::SourceLoc loc;
  std::vector<ExprPtr> expr;
  std::vector<StmtPtr> body;
  std::vector<SwitchCase> cases;

  // kDecl fields.
  Type decl_type;
  std::string decl_name;
  std::optional<uint64_t> array_size;
  /// Frame slot of the declared local (filled by the type checker).
  int32_t frame_slot = -1;
};

// ---------------------------------------------------------------------------
// Declarations
// ---------------------------------------------------------------------------

struct StructField {
  Type type;
  std::string name;
  support::SourceLoc loc;
};

struct StructDecl {
  std::string name;
  std::vector<StructField> fields;
  support::SourceLoc loc;
};

struct GlobalDecl {
  Type type;
  std::string name;
  bool is_const = false;
  std::optional<uint64_t> array_size;
  ExprPtr init;                   // scalar initialiser (optional)
  std::vector<ExprPtr> init_list; // brace initialiser for structs
  support::SourceLoc loc;
};

struct Param {
  Type type;
  std::string name;
  support::SourceLoc loc;
};

struct FunctionDecl {
  Type return_type;
  std::string name;
  std::vector<Param> params;
  StmtPtr body;
  support::SourceLoc loc;
  /// Total frame slots (params + every local declaration, shadowing
  /// included). Filled by the type checker; sizes the interpreter frame.
  uint32_t frame_slots = 0;
};

/// A parsed translation unit (concatenation of generated stubs + driver).
struct Unit {
  std::vector<StructDecl> structs;
  std::vector<GlobalDecl> globals;
  std::vector<FunctionDecl> functions;
  std::map<std::string, std::set<uint32_t>> macro_use_lines;
};

}  // namespace minic
