// Builtin functions shared by the MiniC type checker and interpreter.
//
// `dil_eq` and `dil_val` model the variadic comparison macro of the paper
// (§2.3): in C they expand to member accesses, so mixing a struct with an
// integer is a compile-time error, while mixing two *different* Devil struct
// types compiles and is only caught by the run-time type-tag assertion.
#pragma once

#include <optional>
#include <string>

namespace minic {

enum class Builtin {
  kInb,    // u8  inb(u32 port)
  kInw,    // u16 inw(u32 port)
  kInl,    // u32 inl(u32 port)
  kOutb,   // void outb(u8 v, u32 port)
  kOutw,   // void outw(u16 v, u32 port)
  kOutl,   // void outl(u32 v, u32 port)
  kPanic,  // void panic(cstring msg) — kernel panic / Devil assertion
  kPrintk, // void printk(cstring msg)
  kStrcmp, // int strcmp(cstring, cstring)
  kUdelay, // void udelay(int usec) — burns interpreter steps
  kDilEq,  // int dil_eq(x, y) — generic comparison (see header comment)
  kDilVal, // int dil_val(x)   — raw value of a Devil-typed datum
  kRequestIrq, // void request_irq(int line, cstring handler) — registers a
               // zero-argument function as the line's interrupt handler
};

[[nodiscard]] std::optional<Builtin> find_builtin(const std::string& name);

}  // namespace minic
