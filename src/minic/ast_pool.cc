// Thread-cached slab pool backing Expr/Stmt allocation.
//
// The campaign's per-mutant tail parse allocates and frees thousands of AST
// nodes; under a parallel campaign that churn serialises on the global
// allocator. Nodes instead come from per-thread free lists carved out of
// slabs owned by a process-lifetime registry:
//   - allocate/free on the hot path touch only the thread-local list;
//   - slabs are never returned to the heap while the process runs, so a
//     node may be allocated on one thread (a campaign worker parsing a
//     mutant) and freed on another (the main thread destroying a Program)
//     without any lifetime coupling to either thread;
//   - a dying thread donates its free list back to the registry, and fresh
//     threads adopt donated lists before carving new slabs, so repeated
//     campaigns (each spawns fresh workers) reuse the same memory.
// The registry is reachable from a leaked function-local static, which
// keeps LeakSanitizer quiet (still-reachable memory is not a leak) and
// makes it safe for thread-local cache destructors to run at any point of
// shutdown.
//
// Under DEVIL_REPRO_SANITIZE the pool is bypassed entirely: recycling slots
// would hide use-after-free and leak diagnostics on AST nodes from
// ASan/LSan, which is exactly what the sanitize CI job exists to catch.
#include "minic/ast.h"

#include <cstddef>
#include <mutex>
#include <new>
#include <vector>

namespace minic {

namespace {

struct FreeNode {
  FreeNode* next;
};

/// Owns every slab ever carved (never freed) plus the free lists donated by
/// exited threads. All methods are cold paths guarded by one mutex.
class SlabRegistry {
 public:
  /// Carves one slab into a ready-made free list of `count` slots.
  FreeNode* carve(size_t slot_size, size_t count) {
    char* slab = static_cast<char*>(::operator new(slot_size * count));
    {
      std::lock_guard<std::mutex> lock(mu_);
      slabs_.push_back(slab);
    }
    FreeNode* head = nullptr;
    for (size_t i = count; i > 0; --i) {
      auto* n = reinterpret_cast<FreeNode*>(slab + (i - 1) * slot_size);
      n->next = head;
      head = n;
    }
    return head;
  }

  void donate(FreeNode* head) {
    if (!head) return;
    FreeNode* tail = head;
    while (tail->next) tail = tail->next;
    std::lock_guard<std::mutex> lock(mu_);
    tail->next = donated_;
    donated_ = head;
  }

  FreeNode* adopt() {
    std::lock_guard<std::mutex> lock(mu_);
    FreeNode* head = donated_;
    donated_ = nullptr;
    return head;
  }

 private:
  std::mutex mu_;
  std::vector<char*> slabs_;
  FreeNode* donated_ = nullptr;
};

template <size_t kSlotSize>
class NodePool {
 public:
  static void* allocate() {
    Cache& c = cache();
    if (!c.head) refill(c);
    FreeNode* n = c.head;
    c.head = n->next;
    return n;
  }

  static void deallocate(void* p) {
    auto* n = static_cast<FreeNode*>(p);
    Cache& c = cache();
    n->next = c.head;
    c.head = n;
  }

 private:
  struct Cache {
    FreeNode* head = nullptr;
    ~Cache() { registry().donate(head); }
  };

  static Cache& cache() {
    thread_local Cache c;
    return c;
  }

  static SlabRegistry& registry() {
    // Intentionally leaked: must outlive every thread-local Cache.
    static SlabRegistry* r = new SlabRegistry;
    return *r;
  }

  static void refill(Cache& c) {
    c.head = registry().adopt();
    if (!c.head) c.head = registry().carve(kSlotSize, kSlabNodes);
  }

  static constexpr size_t kSlabNodes = 512;
};

#if !defined(DEVIL_REPRO_SANITIZE)
constexpr bool kUsePool = true;
#else
constexpr bool kUsePool = false;
#endif

template <typename Node>
void* pool_new(size_t size) {
  if (kUsePool && size == sizeof(Node)) {
    return NodePool<sizeof(Node)>::allocate();
  }
  return ::operator new(size);
}

template <typename Node>
void pool_delete(void* p, size_t size) noexcept {
  if (!p) return;
  if (kUsePool && size == sizeof(Node)) {
    NodePool<sizeof(Node)>::deallocate(p);
    return;
  }
  ::operator delete(p);
}

}  // namespace

void* Expr::operator new(std::size_t size) { return pool_new<Expr>(size); }
void Expr::operator delete(void* p, std::size_t size) noexcept {
  pool_delete<Expr>(p, size);
}

void* Stmt::operator new(std::size_t size) { return pool_new<Stmt>(size); }
void Stmt::operator delete(void* p, std::size_t size) noexcept {
  pool_delete<Stmt>(p, size);
}

}  // namespace minic
