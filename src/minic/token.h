// Token model for MiniC, the C-subset substrate language.
//
// MiniC exists so the mutation campaigns can answer "would a C compiler
// accept this mutant, and what happens when the kernel boots it?" without a
// real compiler and kernel in the loop. Its lexer includes a tiny
// preprocessor (object macros + __FILE__) because macro expansion is central
// to the paper's argument: macros erase type distinctions in C drivers.
#pragma once

#include <cstdint>
#include <string>

#include "support/source.h"

namespace minic {

enum class Tok {
  kEof,
  kIdent,
  kIntLit,     // decimal / octal / hexadecimal
  kStringLit,

  // Keywords.
  kKwVoid, kKwInt, kKwU8, kKwU16, kKwU32, kKwS8, kKwS16, kKwS32, kKwCString,
  kKwStruct, kKwConst, kKwStatic, kKwInline,
  kKwIf, kKwElse, kKwWhile, kKwFor, kKwDo, kKwReturn, kKwBreak, kKwContinue,
  kKwSwitch, kKwCase, kKwDefault,

  // Punctuation.
  kLParen, kRParen, kLBrace, kRBrace, kLBracket, kRBracket,
  kSemi, kComma, kDot, kColon, kQuestion,

  // Operators.
  kAssign,                       // =
  kPlusAssign, kMinusAssign,     // += -=
  kAndAssign, kOrAssign, kXorAssign,   // &= |= ^=
  kShlAssign, kShrAssign,        // <<= >>=
  kPlus, kMinus, kStar, kSlash, kPercent,
  kAmp, kPipe, kCaret, kTilde,
  kShl, kShr,
  kAmpAmp, kPipePipe, kBang,
  kEq, kNe, kLt, kGt, kLe, kGe,
  kPlusPlus, kMinusMinus,
};

[[nodiscard]] const char* tok_name(Tok t);

/// "No provenance" site tag. Tokens the mutation model cannot touch (and all
/// tokens of buffers lexed without site spans) carry this.
inline constexpr uint32_t kNoSite = 0xffffffffu;

/// One mutation site's byte span in the buffer being lexed, plus its stable
/// id (mutation::SiteId — the site's index in the scanner's vector). The
/// lexer tags a token with `id` when the token's byte span matches exactly;
/// minic knows nothing else about the mutation layer.
struct SiteSpan {
  uint32_t offset = 0;
  uint32_t length = 0;
  uint32_t id = kNoSite;
};

struct Token {
  Tok kind = Tok::kEof;
  support::SourceLoc loc;       // use-site location (post macro expansion)
  std::string text;
  uint64_t int_value = 0;       // kIntLit
  int int_base = 10;            // 8, 10 or 16 — drives literal mutation class
  /// Mutation-site provenance (kNoSite when untracked). A single-int-literal
  /// macro body inherits the *use* token's tag on expansion, so a mutation of
  /// a macro-use identifier can still be located in the lowered bytecode.
  uint32_t site = kNoSite;
  /// True for tokens produced by macro (or __FILE__) expansion rather than
  /// scanned directly from the buffer.
  bool from_expansion = false;

  [[nodiscard]] bool is(Tok t) const { return kind == t; }
};

}  // namespace minic
