// Facade over the MiniC pipeline: preprocess+lex -> parse -> typecheck.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "minic/ast.h"
#include "minic/bytecode/bytecode.h"
#include "minic/interp.h"
#include "minic/lexer.h"
#include "minic/typecheck.h"
#include "support/diagnostics.h"

namespace minic {

/// A compiled translation unit ready for interpretation.
struct Program {
  support::DiagnosticEngine diags;
  std::unique_ptr<Unit> unit;  // null when compilation failed

  [[nodiscard]] bool ok() const { return unit != nullptr; }
};

/// Compiles one translation unit. `name` doubles as the __FILE__ expansion,
/// so for Devil drivers pass the generated header's name.
[[nodiscard]] Program compile(const std::string& name,
                              const std::string& source);

/// Execution engine for a compiled unit. Both engines produce identical
/// RunOutcomes (fault kind/message, return value, step count, coverage,
/// log); the bytecode VM is the default because it is the faster one, the
/// tree walker stays on as the differential oracle.
enum class ExecEngine {
  kBytecodeVm,
  kTreeWalker,
};

[[nodiscard]] const char* exec_engine_name(ExecEngine e);

/// Runs `entry` in a typechecked unit on the chosen engine. The bytecode
/// path lowers the unit first; lowering problems surface as kInternal
/// outcomes, exactly like the walker's runtime invariant faults. A non-null
/// `profile` accumulates per-opcode dispatch counts (VM engine only; the
/// walker has no opcodes and leaves it untouched).
/// A non-zero `watchdog_ms` arms the engines' wall-clock boot watchdog
/// (FaultKind::kWatchdog when it trips).
[[nodiscard]] RunOutcome run_unit(const Unit& unit, IoEnvironment& io,
                                  const std::string& entry,
                                  uint64_t step_budget = 2'000'000,
                                  ExecEngine engine = ExecEngine::kBytecodeVm,
                                  bytecode::OpcodeProfile* profile = nullptr,
                                  uint64_t watchdog_ms = 0);

/// Compiles and runs `entry` against `io` in one call (tests, examples).
[[nodiscard]] RunOutcome compile_and_run(
    const std::string& name, const std::string& source,
    const std::string& entry, IoEnvironment& io,
    uint64_t step_budget = 2'000'000,
    ExecEngine engine = ExecEngine::kBytecodeVm);

// ---------------------------------------------------------------------------
// Compiled-prefix cache: the three-stage per-mutant pipeline.
//
// The mutation campaigns compile `stubs + driver` once per mutant while the
// stubs never change, so the pipeline is split into
//   1. prepare  — `prepare_prefix` runs ONCE per campaign: it lexes the
//      invariant prefix, and (when the prefix is a self-contained unit)
//      parses, typechecks and lowers it into an immutable, shareable
//      `CompiledPrefix` (symbol tables + bytecode `ModuleSegment`);
//   2. tail-compile — `compile_tail` runs per mutant: it lexes, parses and
//      typechecks ONLY the mutated driver tail against the cached symbol
//      tables (`typecheck_tail`), then lowers just the tail's functions
//      with indices rebased past the segment's;
//   3. splice — the per-mutant `bytecode::Module` aliases (does not copy)
//      the segment's code, constants and struct defaults, and `run_module`
//      executes it on the VM.
// The result is byte-identical — diagnostics, fault kind/message, return
// value, step count, coverage, log — to `compile(name, prefix_text + tail)`
// followed by `run_unit`; a differential ctest suite enforces this. When the
// tail collides with prefix symbols in ways only whole-unit checking
// reports, `compile_tail` internally falls back to the token-splice
// `compile_with_prefix` path.
//
// The token-level splice (`compile_with_prefix`) remains the whole-unit
// path: it produces a full `Program` for the tree-walker oracle and for the
// fallback, re-lexing only the tail but re-parsing/re-checking everything.
// ---------------------------------------------------------------------------

/// The fully compiled invariant prefix: parsed decls, their symbol snapshot
/// and the lowered bytecode segment. Immutable after construction —
/// thread-safe to share by const reference / shared_ptr.
struct CompiledPrefix {
  Unit unit;                 // parsed + typechecked prefix declarations
  PrefixSymbols symbols;     // seed tables pointing into `unit`
  std::shared_ptr<const bytecode::ModuleSegment> segment;  // lowered code
};

/// The invariant head of a translation unit, prepared once. Thread-safe to
/// share across concurrent `compile_with_prefix` / `compile_tail` calls
/// (const access only).
struct PreparedPrefix {
  std::string name;               // unit name, doubles as __FILE__
  uint32_t lines = 0;             // newline count of the prefix text
  std::vector<Token> tokens;      // expanded prefix tokens, no kEof
  MacroTable macros;              // #defines the prefix leaves in scope
  std::map<std::string, std::set<uint32_t>> macro_use_lines;
  support::DiagnosticEngine diags;
  /// Stage-1 compile cache. Null when the prefix is not a self-contained
  /// clean unit (then only the token-level splice is available).
  std::shared_ptr<const CompiledPrefix> compiled;

  [[nodiscard]] bool ok() const { return !diags.has_errors(); }
};

/// Lexes `prefix_text` (possibly empty) under `name` and, when it forms a
/// self-contained unit, compiles it into the stage-1 cache.
[[nodiscard]] PreparedPrefix prepare_prefix(const std::string& name,
                                            const std::string& prefix_text);

/// Whole-unit path: compiles `prefix + tail` reusing the prefix token
/// stream. `prefix` must be ok(); `tail` is lexed with the prefix's macros
/// in scope and with line numbers continuing after the prefix. Produces a
/// full Program (usable by either engine); re-parses and re-typechecks the
/// prefix declarations every call.
[[nodiscard]] Program compile_with_prefix(const PreparedPrefix& prefix,
                                          const std::string& tail);

/// Result of the incremental tail pipeline: a spliced, VM-runnable module
/// plus what outcome classification needs.
struct SplicedProgram {
  support::DiagnosticEngine diags;
  std::shared_ptr<bytecode::Module> module;  // null when compilation failed
  std::map<std::string, std::set<uint32_t>> macro_use_lines;
  /// Non-empty when the tail type-checked but lowering rejected it
  /// (minic::Fault{kInternal}); the caller must surface a kInternal
  /// outcome, exactly as `run_unit` does for whole-unit lowering faults.
  std::string internal_error;
  /// True when the tail collided with prefix symbols and this result came
  /// from the whole-unit fallback instead of the cached segment (the
  /// campaigns count real cache hits from this).
  bool whole_unit_fallback = false;

  [[nodiscard]] bool ok() const { return module != nullptr; }
};

/// Stages 2+3: compiles only `tail` against `prefix.compiled` (which must be
/// non-null) and splices the cached segment. See the pipeline comment above
/// for the equivalence guarantee.
[[nodiscard]] SplicedProgram compile_tail(const PreparedPrefix& prefix,
                                          const std::string& tail);

/// Clean-compile artifact for the bytecode patcher: `compile_tail` with the
/// driver's mutation-site spans threaded into the lexer, returning — next to
/// the spliced module — everything a `bytecode::Patcher` needs: the recorded
/// patch table, the parsed+typechecked tail unit, the final macro table, and
/// the clean site-tagged token stream (the campaign's fast dedup-key path
/// serializes per-token key spans from it). On a whole-unit fallback the
/// patch table stays empty and `tail_unit` null: every mutant of such a
/// campaign recompiles, exactly as before.
struct RecordedTail {
  SplicedProgram spliced;
  bytecode::PatchTable patch;
  std::unique_ptr<Unit> tail_unit;  // null on errors or whole-unit fallback
  MacroTable macros;                // prefix seeds + tail definitions
  std::vector<Token> tokens;        // expanded clean tail tokens, incl. kEof
  /// Macro uses from the tail buffer ONLY (pre-merge) — the campaign's
  /// canonical dedup key serializes exactly this map, never the merged one.
  std::map<std::string, std::set<uint32_t>> tail_macro_use_lines;
};

/// Runs the stage-2+3 pipeline once on the CLEAN driver tail, recording
/// patch points. `site_spans` must be sorted, disjoint byte spans of `tail`
/// (mutation::scan_c_sites order satisfies this).
[[nodiscard]] RecordedTail compile_tail_recording(
    const PreparedPrefix& prefix, const std::string& tail,
    const std::vector<SiteSpan>& site_spans);

/// Tail-only front end for the tree-walker oracle: lexes, parses and
/// typechecks ONLY `tail` against the cached prefix symbols, yielding a unit
/// the layered walker (`run_tail_unit`) executes on top of the prefix's
/// already-typechecked declarations. Symbol collisions that only whole-unit
/// checking reproduces set `whole_unit_fallback`; callers then compile via
/// `compile_with_prefix` + `run_unit`, mirroring the VM path's fallback.
struct CheckedTail {
  support::DiagnosticEngine diags;
  std::unique_ptr<Unit> unit;  // typechecked tail; null when checking failed
  std::map<std::string, std::set<uint32_t>> macro_use_lines;
  bool whole_unit_fallback = false;

  [[nodiscard]] bool ok() const { return unit != nullptr; }
};

[[nodiscard]] CheckedTail check_tail(const PreparedPrefix& prefix,
                                     const std::string& tail);

/// Runs `entry` on the tree walker layered over the prefix cache: the
/// interpreter resolves functions, globals and structs against the prefix's
/// typechecked unit first, then the tail — observationally identical to
/// whole-unit walking of `prefix + tail` (ctest-enforced). `prefix.compiled`
/// must be non-null and must outlive the call.
[[nodiscard]] RunOutcome run_tail_unit(const PreparedPrefix& prefix,
                                       const Unit& tail_unit,
                                       IoEnvironment& io,
                                       const std::string& entry,
                                       uint64_t step_budget = 2'000'000,
                                       uint64_t watchdog_ms = 0);

/// Runs `entry` in a spliced module on the bytecode VM. The walker has no
/// module form — use `run_unit` with a whole-unit Program for the oracle.
/// A non-null `profile` accumulates per-opcode dispatch counts.
[[nodiscard]] RunOutcome run_module(
    const bytecode::Module& module, IoEnvironment& io,
    const std::string& entry, uint64_t step_budget = 2'000'000,
    bytecode::OpcodeProfile* profile = nullptr, uint64_t watchdog_ms = 0);

}  // namespace minic
