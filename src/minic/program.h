// Facade over the MiniC pipeline: preprocess+lex -> parse -> typecheck.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "minic/ast.h"
#include "minic/interp.h"
#include "minic/lexer.h"
#include "support/diagnostics.h"

namespace minic {

/// A compiled translation unit ready for interpretation.
struct Program {
  support::DiagnosticEngine diags;
  std::unique_ptr<Unit> unit;  // null when compilation failed

  [[nodiscard]] bool ok() const { return unit != nullptr; }
};

/// Compiles one translation unit. `name` doubles as the __FILE__ expansion,
/// so for Devil drivers pass the generated header's name.
[[nodiscard]] Program compile(const std::string& name,
                              const std::string& source);

/// Execution engine for a compiled unit. Both engines produce identical
/// RunOutcomes (fault kind/message, return value, step count, coverage,
/// log); the bytecode VM is the default because it is the faster one, the
/// tree walker stays on as the differential oracle.
enum class ExecEngine {
  kBytecodeVm,
  kTreeWalker,
};

[[nodiscard]] const char* exec_engine_name(ExecEngine e);

/// Runs `entry` in a typechecked unit on the chosen engine. The bytecode
/// path lowers the unit first; lowering problems surface as kInternal
/// outcomes, exactly like the walker's runtime invariant faults.
[[nodiscard]] RunOutcome run_unit(const Unit& unit, IoEnvironment& io,
                                  const std::string& entry,
                                  uint64_t step_budget = 2'000'000,
                                  ExecEngine engine = ExecEngine::kBytecodeVm);

/// Compiles and runs `entry` against `io` in one call (tests, examples).
[[nodiscard]] RunOutcome compile_and_run(
    const std::string& name, const std::string& source,
    const std::string& entry, IoEnvironment& io,
    uint64_t step_budget = 2'000'000,
    ExecEngine engine = ExecEngine::kBytecodeVm);

// ---------------------------------------------------------------------------
// Token-level prefix cache.
//
// The mutation campaigns compile `stubs + driver` once per mutant while the
// stubs never change. `prepare_prefix` lexes the invariant prefix once;
// `compile_with_prefix` then re-lexes only the (mutated) driver tail and
// splices the two token streams, producing a Program byte-identical to
// `compile(name, prefix_text + tail)`.
// ---------------------------------------------------------------------------

/// The invariant head of a translation unit, lexed once. Thread-safe to
/// share across concurrent `compile_with_prefix` calls (const access only).
struct PreparedPrefix {
  std::string name;               // unit name, doubles as __FILE__
  uint32_t lines = 0;             // newline count of the prefix text
  std::vector<Token> tokens;      // expanded prefix tokens, no kEof
  MacroTable macros;              // #defines the prefix leaves in scope
  std::map<std::string, std::set<uint32_t>> macro_use_lines;
  support::DiagnosticEngine diags;

  [[nodiscard]] bool ok() const { return !diags.has_errors(); }
};

/// Lexes `prefix_text` (possibly empty) under `name`.
[[nodiscard]] PreparedPrefix prepare_prefix(const std::string& name,
                                            const std::string& prefix_text);

/// Compiles `prefix + tail` reusing the prefix token stream. `prefix` must
/// be ok(); `tail` is lexed with the prefix's macros in scope and with line
/// numbers continuing after the prefix.
[[nodiscard]] Program compile_with_prefix(const PreparedPrefix& prefix,
                                          const std::string& tail);

}  // namespace minic
