// Facade over the MiniC pipeline: preprocess+lex -> parse -> typecheck.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "minic/ast.h"
#include "minic/interp.h"
#include "support/diagnostics.h"

namespace minic {

/// A compiled translation unit ready for interpretation.
struct Program {
  support::DiagnosticEngine diags;
  std::unique_ptr<Unit> unit;  // null when compilation failed

  [[nodiscard]] bool ok() const { return unit != nullptr; }
};

/// Compiles one translation unit. `name` doubles as the __FILE__ expansion,
/// so for Devil drivers pass the generated header's name.
[[nodiscard]] Program compile(const std::string& name,
                              const std::string& source);

/// Compiles and runs `entry` against `io` in one call (tests, examples).
[[nodiscard]] RunOutcome compile_and_run(const std::string& name,
                                         const std::string& source,
                                         const std::string& entry,
                                         IoEnvironment& io,
                                         uint64_t step_budget = 2'000'000);

}  // namespace minic
