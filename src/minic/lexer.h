// MiniC lexer + object-macro preprocessor.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "minic/token.h"
#include "support/diagnostics.h"
#include "support/source.h"

namespace minic {

/// Result of preprocessing+lexing a translation unit.
struct LexOutput {
  std::vector<Token> tokens;  // macro-expanded, ends with kEof
  /// For each object macro: the source lines (1-based) where it is used.
  /// The evaluation harness needs this to decide whether a mutation inside a
  /// macro *definition* sits on an executed path (paper case 2, "dead code").
  std::map<std::string, std::set<uint32_t>> macro_use_lines;
};

/// Lexes and preprocesses a MiniC translation unit.
///
/// Supported directives: `#define NAME <tokens to end of line>` (object
/// macros only, possibly nested, recursion diagnosed). `__FILE__` expands to
/// the buffer name as a string literal, which is how Devil debug stubs tag
/// values with their origin (paper §2.3).
[[nodiscard]] LexOutput lex_unit(const support::SourceBuffer& buf,
                                 support::DiagnosticEngine& diags);

}  // namespace minic
