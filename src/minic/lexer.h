// MiniC lexer + object-macro preprocessor.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "minic/token.h"
#include "support/diagnostics.h"
#include "support/source.h"

namespace minic {

/// Object-macro definitions, name -> body token stream.
using MacroTable = std::map<std::string, std::vector<Token>>;

/// Result of preprocessing+lexing a translation unit.
struct LexOutput {
  std::vector<Token> tokens;  // macro-expanded, ends with kEof
  /// For each object macro: the source lines (1-based) where it is used.
  /// The evaluation harness needs this to decide whether a mutation inside a
  /// macro *definition* sits on an executed path (paper case 2, "dead code").
  std::map<std::string, std::set<uint32_t>> macro_use_lines;
  /// Macros *defined by this buffer* (seed macros are not repeated). Feeding
  /// these back through LexOptions::seed_macros lets a later buffer continue
  /// lexing as if both were one concatenated unit.
  MacroTable macros;
};

/// Options for lexing a buffer that is really the tail of a larger unit
/// (the campaign engine lexes the invariant stub prefix once and re-lexes
/// only the mutated driver tail per mutant).
struct LexOptions {
  /// Macros already defined by the preceding buffer(s). Not owned; must
  /// outlive the call. May be null.
  const MacroTable* seed_macros = nullptr;
  /// Number of source lines preceding this buffer in the concatenated unit;
  /// added to every token line so diagnostics and coverage agree with
  /// whole-unit lexing.
  uint32_t line_offset = 0;
  /// Mutation-site byte spans of THIS buffer, sorted by offset (disjoint).
  /// A token whose span matches exactly is tagged with the span's id; see
  /// SiteSpan. Not owned; may be null. Only the campaign's clean recording
  /// compile passes spans — mutated sources would shift the offsets.
  const std::vector<SiteSpan>* site_spans = nullptr;
};

/// Lexes and preprocesses a MiniC translation unit.
///
/// Supported directives: `#define NAME <tokens to end of line>` (object
/// macros only, possibly nested, recursion diagnosed). `__FILE__` expands to
/// the buffer name as a string literal, which is how Devil debug stubs tag
/// values with their origin (paper §2.3).
[[nodiscard]] LexOutput lex_unit(const support::SourceBuffer& buf,
                                 support::DiagnosticEngine& diags,
                                 const LexOptions& options = {});

}  // namespace minic
