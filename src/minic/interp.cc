#include "minic/interp.h"

#include <array>
#include <cassert>
#include <chrono>
#include <memory>
#include <unordered_map>

#include "minic/builtins.h"
#include "support/strings.h"

namespace minic {

const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kNone: return "none";
    case FaultKind::kPanic: return "panic";
    case FaultKind::kDevilAssertion: return "devil-assertion";
    case FaultKind::kBusFault: return "bus-fault";
    case FaultKind::kStepLimit: return "step-limit";
    case FaultKind::kStackOverflow: return "stack-overflow";
    case FaultKind::kDivByZero: return "div-by-zero";
    case FaultKind::kBadIndex: return "bad-index";
    case FaultKind::kWatchdog: return "watchdog";
    case FaultKind::kInternal: return "internal";
  }
  return "?";
}

namespace {

constexpr int kMaxCallDepth = 128;

/// Interrupt lines the engines model; mirrors hw::IrqController::kLines
/// (minic must not depend on hw, so the constant is duplicated — the
/// differential suites would catch a drift immediately).
constexpr int kIrqLines = 8;

/// Runtime value. Struct values are flat field vectors (field order from the
/// struct declaration).
struct Value {
  Type type = Type::int_type();
  int64_t i = 0;
  std::string s;
  std::vector<Value> fields;

  static Value integer(int64_t v, Type t = Type::int_type()) {
    Value out;
    out.type = t;
    out.i = v;
    return out;
  }
  static Value str(std::string v) {
    Value out;
    out.type = Type::cstring();
    out.s = std::move(v);
    return out;
  }
};

/// Narrows an int64 to the width/signedness of `t` (what a C assignment to a
/// typed slot does).
int64_t coerce_int(int64_t v, const Type& t) {
  if (!t.is_integer() || t.bits >= 64) return v;
  uint64_t mask = (uint64_t{1} << t.bits) - 1;
  uint64_t u = static_cast<uint64_t>(v) & mask;
  if (t.is_signed && ((u >> (t.bits - 1)) & 1)) u |= ~mask;
  return static_cast<int64_t>(u);
}

struct Slot {
  Value v;
  bool is_array = false;
  Type elem_type = Type::int_type();
  std::vector<int64_t> arr;
};

/// Statement completion status. Return/break/continue used to be thrown as
/// C++ exceptions; a CDevil boot makes thousands of tiny stub calls, and an
/// exception per `return` dominated the whole campaign. Plain status
/// propagation is ~two orders of magnitude cheaper.
enum class Flow { kNormal, kBreak, kContinue, kReturn };

class Machine {
 public:
  /// `prefix` layers a second, already-typechecked unit under `unit`: name
  /// and index spaces behave exactly as if the two units were one
  /// concatenated unit with the prefix's declarations first (function
  /// indices and global slots continue the prefix's numbering, which is what
  /// `typecheck_tail` assigns). Null runs the classic single-unit machine.
  Machine(const Unit* prefix, const Unit& unit, IoEnvironment& io,
          uint64_t budget, RunOutcome& out, uint64_t watchdog_ms = 0)
      : prefix_(prefix), unit_(unit), io_(io), budget_(budget),
        steps_left_(budget), out_(out), watchdog_ms_(watchdog_ms) {
    if (prefix_ != nullptr) {
      prefix_fn_count_ = prefix_->functions.size();
      prefix_global_count_ = prefix_->globals.size();
    }
    io_.bind_step_probe(&steps_left_, budget_);
    if (watchdog_ms_ != 0) {
      watchdog_deadline_ = std::chrono::steady_clock::now() +
                           std::chrono::milliseconds(watchdog_ms_);
    }
    structs_.reserve((prefix_ != nullptr ? prefix_->structs.size() : 0) +
                     unit_.structs.size());
    // Prefix structs first, tail second: a later (tail) definition shadows,
    // matching whole-unit declaration order.
    if (prefix_ != nullptr) {
      for (const auto& sd : prefix_->structs) structs_[sd.name] = &sd;
    }
    for (const auto& sd : unit_.structs) structs_[sd.name] = &sd;
  }

  /// Steps consumed so far (exact: step() decrements steps_left_ only).
  [[nodiscard]] uint64_t steps_used() const { return budget_ - steps_left_; }

  void init_globals() {
    globals_.clear();
    globals_.resize(prefix_global_count_ + unit_.globals.size());
    // Prefix globals occupy the first slots, tail globals continue — the
    // slot numbering typecheck_tail assigned. Initialisation order is the
    // whole-unit declaration order, so init expressions that read earlier
    // globals see the same values either way.
    if (prefix_ != nullptr) {
      for (size_t i = 0; i < prefix_->globals.size(); ++i) {
        init_global(prefix_->globals[i], globals_[i]);
      }
    }
    for (size_t i = 0; i < unit_.globals.size(); ++i) {
      init_global(unit_.globals[i], globals_[prefix_global_count_ + i]);
    }
  }

  void init_global(const GlobalDecl& g, Slot& slot) {
    if (g.array_size) {
      slot.is_array = true;
      slot.elem_type = g.type;
      slot.arr.assign(static_cast<size_t>(*g.array_size), 0);
    } else if (!g.init_list.empty()) {
      mark_line(g.loc);
      Value v = default_value(g.type);
      for (size_t f = 0; f < g.init_list.size() && f < v.fields.size(); ++f) {
        Value fv = eval(*g.init_list[f]);
        store_into(v.fields[f], std::move(fv));
      }
      slot.v = std::move(v);
    } else if (g.init) {
      mark_line(g.loc);
      Value v = eval(*g.init);
      slot.v = default_value(g.type);
      store_into(slot.v, std::move(v));
    } else {
      slot.v = default_value(g.type);
    }
  }

  Value call_function(const std::string& name, std::vector<Value> args) {
    const FunctionDecl* fn = find_function(name);
    if (fn != nullptr) return call_decl(*fn, std::move(args));
    throw Fault{FaultKind::kInternal, "missing function " + name};
  }

  /// Name lookup across the layer stack, prefix declarations first — the
  /// scan order whole-unit interpretation of `prefix + tail` would use.
  [[nodiscard]] const FunctionDecl* find_function(
      const std::string& name) const {
    if (prefix_ != nullptr) {
      for (const auto& fn : prefix_->functions) {
        if (fn.name == name) return &fn;
      }
    }
    for (const auto& fn : unit_.functions) {
      if (fn.name == name) return &fn;
    }
    return nullptr;
  }

  /// Function by whole-unit index: prefix functions occupy [0,
  /// prefix_fn_count_), tail functions continue (typecheck_tail's
  /// callee_index numbering).
  [[nodiscard]] const FunctionDecl& function_at(size_t index) const {
    return index < prefix_fn_count_
               ? prefix_->functions[index]
               : unit_.functions[index - prefix_fn_count_];
  }

  Value call_decl(const FunctionDecl& fn, std::vector<Value> args) {
    if (++depth_ > kMaxCallDepth) {
      throw Fault{FaultKind::kStackOverflow,
                  "call depth exceeded in " + fn.name};
    }
    // Params occupy the first frame slots, in declaration order (the type
    // checker assigns them before any local). Frame vectors are pooled so a
    // call does not malloc once the pool is warm.
    std::vector<Slot> frame;
    if (!frame_pool_.empty()) {
      frame = std::move(frame_pool_.back());
      frame_pool_.pop_back();
      frame.clear();
    }
    frame.resize(fn.frame_slots);
    frames_.push_back(std::move(frame));
    std::vector<Slot>& slots = frames_.back();
    for (size_t i = 0; i < fn.params.size() && i < slots.size(); ++i) {
      Slot& slot = slots[i];
      slot.v = default_value(fn.params[i].type);
      if (i < args.size()) store_into(slot.v, std::move(args[i]));
    }
    Value result = exec(*fn.body) == Flow::kReturn ? std::move(return_value_)
                                                   : Value::integer(0);
    frame_pool_.push_back(std::move(frames_.back()));
    frames_.pop_back();
    --depth_;
    return result;
  }

 private:
  // ---- bookkeeping ---------------------------------------------------------
  void step(support::SourceLoc loc) {
    if (steps_left_ == 0) {
      throw Fault{FaultKind::kStepLimit,
                  "step budget exhausted at line " + std::to_string(loc.line)};
    }
    --steps_left_;
    // Wall-clock watchdog: a steady_clock read per charge would dominate the
    // campaigns, so check once per 2^20 retired charges. The message names
    // only the cap (never a line or elapsed time) — wall-clock trips are
    // inherently nondeterministic and must not perturb trace comparisons.
    if ((steps_left_ & 0xfffff) == 0 && watchdog_ms_ != 0) check_watchdog();
  }

  void check_watchdog() {
    if (std::chrono::steady_clock::now() >= watchdog_deadline_) {
      throw Fault{FaultKind::kWatchdog,
                  "watchdog: boot exceeded " + std::to_string(watchdog_ms_) +
                      " ms wall-clock cap"};
    }
  }

  /// Drains deliverable interrupt events. Called at the I/O charge-step
  /// boundaries (after every port access and udelay burn) — the points where
  /// both engines have retired identical charge counts, which makes delivery
  /// timing engine-invariant. Handlers run to completion (no nesting): a
  /// raise from inside a handler is queued and delivered at the handler's
  /// own next I/O boundary or after it returns.
  void poll_irqs() {
    if (in_irq_) return;
    for (;;) {
      int line = io_.irq_pending();
      if (line < 0) return;
      const FunctionDecl* h =
          line < kIrqLines ? irq_handlers_[static_cast<size_t>(line)]
                           : nullptr;
      if (h == nullptr) {
        io_.irq_begin(false);  // no handler registered: acknowledge and drop
        continue;
      }
      io_.irq_begin(true);
      in_irq_ = true;
      call_decl(*h, {});
      in_irq_ = false;
      io_.irq_end();
    }
  }
  void mark_line(support::SourceLoc loc) { out_.executed.set(loc.line); }

  Value default_value(const Type& t) {
    Value v;
    v.type = t;
    if (t.is_struct()) {
      auto it = structs_.find(t.struct_name);
      if (it != structs_.end()) {
        for (const auto& f : it->second->fields) {
          v.fields.push_back(default_value(f.type));
        }
      }
    }
    return v;
  }

  /// Assigns `from` into the typed destination `dst` (narrowing integers).
  void store_into(Value& dst, Value from) {
    if (dst.type.is_integer()) {
      dst.i = coerce_int(from.i, dst.type);
      return;
    }
    if (dst.type.kind == TypeKind::kCString) {
      dst.s = std::move(from.s);
      return;
    }
    if (dst.type.is_struct()) {
      dst.fields = std::move(from.fields);
      return;
    }
  }

  // ---- name resolution -------------------------------------------------------
  // Identifiers were resolved to slot indices by the type checker; the
  // runtime only indexes.
  Slot& slot_of(const Expr& e) {
    if (e.frame_slot >= 0) {
      return frames_.back()[static_cast<size_t>(e.frame_slot)];
    }
    if (e.global_slot >= 0) {
      return globals_[static_cast<size_t>(e.global_slot)];
    }
    throw Fault{FaultKind::kInternal, "unbound name " + e.text};
  }

  // ---- statements -------------------------------------------------------------
  [[nodiscard]] Flow exec(const Stmt& s) {
    step(s.loc);
    switch (s.kind) {
      case StmtKind::kEmpty:
        return Flow::kNormal;
      case StmtKind::kExpr:
        mark_line(s.loc);
        eval_int(*s.expr[0]);  // result discarded; int path skips the Value
        return Flow::kNormal;
      case StmtKind::kDecl: {
        mark_line(s.loc);
        if (s.frame_slot < 0) {
          throw Fault{FaultKind::kInternal, "unresolved local " + s.decl_name};
        }
        // Re-executing a declaration (loop bodies) re-initialises its slot.
        Slot& slot = frames_.back()[static_cast<size_t>(s.frame_slot)];
        if (s.array_size) {
          slot.is_array = true;
          slot.elem_type = s.decl_type;
          slot.arr.assign(static_cast<size_t>(*s.array_size), 0);
        } else {
          slot.is_array = false;
          slot.v = default_value(s.decl_type);
          if (!s.expr.empty()) store_into(slot.v, eval(*s.expr[0]));
        }
        return Flow::kNormal;
      }
      case StmtKind::kBlock: {
        // Scoping is fully static (slots assigned at typecheck time); a
        // block is just its statements.
        for (const auto& child : s.body) {
          Flow f = exec(*child);
          if (f != Flow::kNormal) return f;
        }
        return Flow::kNormal;
      }
      case StmtKind::kIf: {
        mark_line(s.loc);
        if (eval_int(*s.expr[0]) != 0) {
          return exec(*s.body[0]);
        }
        if (s.body.size() > 1) return exec(*s.body[1]);
        return Flow::kNormal;
      }
      case StmtKind::kWhile: {
        while (true) {
          step(s.loc);
          mark_line(s.loc);
          if (eval_int(*s.expr[0]) == 0) break;
          Flow f = exec(*s.body[0]);
          if (f == Flow::kBreak) break;
          if (f == Flow::kReturn) return f;
        }
        return Flow::kNormal;
      }
      case StmtKind::kDoWhile: {
        while (true) {
          step(s.loc);
          mark_line(s.loc);
          Flow f = exec(*s.body[0]);
          if (f == Flow::kBreak) break;
          if (f == Flow::kReturn) return f;
          if (eval_int(*s.expr[0]) == 0) break;
        }
        return Flow::kNormal;
      }
      case StmtKind::kFor: {
        // body[0] = loop body, body[1] = optional init statement.
        if (s.body.size() > 1 && s.body[1]) {
          Flow f = exec(*s.body[1]);
          if (f != Flow::kNormal) return f;
        }
        while (true) {
          step(s.loc);
          mark_line(s.loc);
          if (!s.expr.empty() && eval_int(*s.expr[0]) == 0) break;
          Flow f = exec(*s.body[0]);
          if (f == Flow::kBreak) break;
          if (f == Flow::kReturn) return f;
          if (s.expr.size() > 1) eval(*s.expr[1]);
        }
        return Flow::kNormal;
      }
      case StmtKind::kReturn: {
        mark_line(s.loc);
        return_value_ = s.expr.empty() ? Value::integer(0) : eval(*s.expr[0]);
        return Flow::kReturn;
      }
      case StmtKind::kBreak:
        mark_line(s.loc);
        return Flow::kBreak;
      case StmtKind::kContinue:
        mark_line(s.loc);
        return Flow::kContinue;
      case StmtKind::kSwitch: {
        mark_line(s.loc);
        int64_t operand = eval_int(*s.expr[0]);
        // Find the matching case. Case-label comparisons count as executed
        // lines: the comparison itself runs even when the arm does not.
        size_t match = s.cases.size();
        size_t default_ix = s.cases.size();
        for (size_t i = 0; i < s.cases.size(); ++i) {
          const SwitchCase& c = s.cases[i];
          if (c.is_default) {
            default_ix = i;
            continue;
          }
          mark_line(c.loc);
          if (eval_int(*c.value) == operand) {
            match = i;
            break;
          }
        }
        if (match == s.cases.size()) match = default_ix;
        // Fall through successive cases until a break.
        for (size_t i = match; i < s.cases.size(); ++i) {
          for (const auto& child : s.cases[i].body) {
            Flow f = exec(*child);
            if (f == Flow::kBreak) return Flow::kNormal;
            if (f != Flow::kNormal) return f;
          }
        }
        return Flow::kNormal;
      }
    }
    return Flow::kNormal;
  }

  static bool truthy(const Value& v) { return v.i != 0; }

  // ---- expressions --------------------------------------------------------------
  /// Integer fast path: evaluates expressions the type checker proved
  /// integral without materialising a Value per node (a Value carries two
  /// std::strings and a vector; constructing one per visited node dominated
  /// the step-limit mutants that burn the full 3M-step budget). Step
  /// accounting is identical to eval(): one step per visited node, parents
  /// before children, so budgets and fault lines are unchanged.
  int64_t eval_int(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kIntLit:
        step(e.loc);
        return static_cast<int64_t>(e.int_value);
      case ExprKind::kIdent:
        step(e.loc);
        return slot_of(e).v.i;
      case ExprKind::kUnary: {
        step(e.loc);
        int64_t v = eval_int(*e.sub[0]);
        switch (e.op) {
          case Tok::kMinus: return -v;
          case Tok::kPlus: return v;
          case Tok::kTilde: return ~v;
          case Tok::kBang: return v == 0 ? 1 : 0;
          default:
            throw Fault{FaultKind::kInternal, "bad unary op"};
        }
      }
      case ExprKind::kBinary: {
        step(e.loc);
        if (e.op == Tok::kAmpAmp) {
          if (eval_int(*e.sub[0]) == 0) return 0;
          return eval_int(*e.sub[1]) != 0 ? 1 : 0;
        }
        if (e.op == Tok::kPipePipe) {
          if (eval_int(*e.sub[0]) != 0) return 1;
          return eval_int(*e.sub[1]) != 0 ? 1 : 0;
        }
        int64_t a = eval_int(*e.sub[0]);
        int64_t b = eval_int(*e.sub[1]);
        return apply_binop(e.op, a, b);
      }
      case ExprKind::kCond:
        if (e.type.is_integer()) {
          // Integer result implies both arms are integers (checker rule).
          step(e.loc);
          return eval_int(*e.sub[0]) != 0 ? eval_int(*e.sub[1])
                                          : eval_int(*e.sub[2]);
        }
        break;
      case ExprKind::kCast:
        if (e.cast_type.is_integer()) {
          // C rejects struct<->scalar casts, so the operand is integral.
          step(e.loc);
          return coerce_int(eval_int(*e.sub[0]), e.cast_type);
        }
        break;
      case ExprKind::kCall: {
        int64_t io_result;
        if (try_io_builtin(e, io_result)) return io_result;
        break;
      }
      case ExprKind::kAssign:
        if (e.type.is_integer()) {
          // Integer target implies an integer right-hand side (assignments
          // between integer and non-integer types are rejected).
          step(e.loc);
          int64_t rhs = eval_int(*e.sub[1]);
          int64_t* arr_elem = nullptr;
          Value* target = resolve_lvalue(*e.sub[0], &arr_elem);
          if (arr_elem) {
            int64_t next = e.op == Tok::kAssign
                               ? rhs
                               : apply_binop(compound_op(e.op), *arr_elem,
                                             rhs);
            *arr_elem = coerce_int(next, elem_type_);
            return *arr_elem;
          }
          assert(target != nullptr);
          int64_t next = e.op == Tok::kAssign
                             ? rhs
                             : apply_binop(compound_op(e.op), target->i, rhs);
          target->i = coerce_int(next, target->type);
          return target->i;
        }
        break;
      default:
        break;
    }
    return eval(e).i;  // slow path owns the step for this node
  }

  Value eval(const Expr& e) {
    step(e.loc);
    switch (e.kind) {
      case ExprKind::kIntLit:
        return Value::integer(static_cast<int64_t>(e.int_value));
      case ExprKind::kStringLit:
        return Value::str(e.text);
      case ExprKind::kIdent:
        return slot_of(e).v;  // arrays are only valid under kIndex
      case ExprKind::kUnary: {
        int64_t v = eval_int(*e.sub[0]);
        switch (e.op) {
          case Tok::kMinus: return Value::integer(-v);
          case Tok::kPlus: return Value::integer(v);
          case Tok::kTilde: return Value::integer(~v);
          case Tok::kBang: return Value::integer(v == 0 ? 1 : 0);
          default:
            throw Fault{FaultKind::kInternal, "bad unary op"};
        }
      }
      case ExprKind::kBinary:
        return eval_binary(e);
      case ExprKind::kAssign:
        return eval_assign(e);
      case ExprKind::kCond:
        return eval_int(*e.sub[0]) != 0 ? eval(*e.sub[1]) : eval(*e.sub[2]);
      case ExprKind::kMember: {
        Value base = eval(*e.sub[0]);
        return member_of(base, e);
      }
      case ExprKind::kIndex: {
        Slot& slot = slot_of(*e.sub[0]);
        if (!slot.is_array) {
          throw Fault{FaultKind::kInternal, "index on non-array"};
        }
        int64_t ix = eval_int(*e.sub[1]);
        if (ix < 0 || static_cast<size_t>(ix) >= slot.arr.size()) {
          // Out-of-bounds access in kernel code: memory corruption -> crash.
          throw Fault{FaultKind::kBadIndex,
                      "out-of-bounds access to " + e.sub[0]->text};
        }
        return Value::integer(slot.arr[static_cast<size_t>(ix)],
                              slot.elem_type);
      }
      case ExprKind::kCast: {
        Value v = eval(*e.sub[0]);
        if (e.cast_type.is_integer()) {
          return Value::integer(coerce_int(v.i, e.cast_type), e.cast_type);
        }
        return v;  // struct->same struct or cstring: identity
      }
      case ExprKind::kCall:
        return eval_call(e);
    }
    throw Fault{FaultKind::kInternal, "bad expression kind"};
  }

  Value member_of(const Value& base, const Expr& e) {
    if (e.member_index < 0) {
      throw Fault{FaultKind::kInternal, "unresolved member " + e.text};
    }
    size_t ix = static_cast<size_t>(e.member_index);
    if (ix < base.fields.size()) return base.fields[ix];
    Value v;
    v.type = e.type;  // the checker recorded the field's type here
    return v;
  }

  Value eval_binary(const Expr& e) {
    // Short-circuit forms first.
    if (e.op == Tok::kAmpAmp) {
      if (eval_int(*e.sub[0]) == 0) return Value::integer(0);
      return Value::integer(eval_int(*e.sub[1]) != 0 ? 1 : 0);
    }
    if (e.op == Tok::kPipePipe) {
      if (eval_int(*e.sub[0]) != 0) return Value::integer(1);
      return Value::integer(eval_int(*e.sub[1]) != 0 ? 1 : 0);
    }
    int64_t a = eval_int(*e.sub[0]);
    int64_t b = eval_int(*e.sub[1]);
    return Value::integer(apply_binop(e.op, a, b));
  }

  int64_t apply_binop(Tok op, int64_t a, int64_t b) {
    switch (op) {
      case Tok::kPlus: return a + b;
      case Tok::kMinus: return a - b;
      case Tok::kStar: return a * b;
      case Tok::kSlash:
        if (b == 0) throw Fault{FaultKind::kDivByZero, "division by zero"};
        return a / b;
      case Tok::kPercent:
        if (b == 0) throw Fault{FaultKind::kDivByZero, "modulo by zero"};
        return a % b;
      case Tok::kAmp: return a & b;
      case Tok::kPipe: return a | b;
      case Tok::kCaret: return a ^ b;
      case Tok::kShl:
        if (b < 0 || b > 63) return 0;
        return static_cast<int64_t>(static_cast<uint64_t>(a) << b);
      case Tok::kShr:
        if (b < 0 || b > 63) return 0;
        // Hardware-operating C code shifts unsigned register values; use
        // logical shift on the low 32 bits, as u32 arithmetic would.
        return static_cast<int64_t>(
            (static_cast<uint64_t>(a) & 0xffffffffULL) >>
            static_cast<uint64_t>(b));
      case Tok::kEq: return a == b;
      case Tok::kNe: return a != b;
      case Tok::kLt: return a < b;
      case Tok::kGt: return a > b;
      case Tok::kLe: return a <= b;
      case Tok::kGe: return a >= b;
      default:
        throw Fault{FaultKind::kInternal, "bad binary op"};
    }
  }

  /// Resolves an lvalue expression to a mutable Value reference, or to an
  /// array element.
  Value* resolve_lvalue(const Expr& e, int64_t** arr_elem) {
    *arr_elem = nullptr;
    switch (e.kind) {
      case ExprKind::kIdent:
        return &slot_of(e).v;
      case ExprKind::kMember: {
        int64_t* dummy = nullptr;
        Value* base = resolve_lvalue(*e.sub[0], &dummy);
        if (!base) throw Fault{FaultKind::kInternal, "bad member lvalue"};
        if (e.member_index < 0) {
          throw Fault{FaultKind::kInternal, "unresolved member " + e.text};
        }
        size_t ix = static_cast<size_t>(e.member_index);
        while (base->fields.size() <= ix) {
          base->fields.push_back(Value{});
        }
        base->fields[ix].type = e.type;
        return &base->fields[ix];
      }
      case ExprKind::kIndex: {
        Slot& slot = slot_of(*e.sub[0]);
        if (!slot.is_array) {
          throw Fault{FaultKind::kInternal, "index on non-array"};
        }
        int64_t ix = eval_int(*e.sub[1]);
        if (ix < 0 || static_cast<size_t>(ix) >= slot.arr.size()) {
          throw Fault{FaultKind::kBadIndex,
                      "out-of-bounds store to " + e.sub[0]->text};
        }
        *arr_elem = &slot.arr[static_cast<size_t>(ix)];
        elem_type_ = slot.elem_type;
        return nullptr;
      }
      default:
        throw Fault{FaultKind::kInternal, "assignment to non-lvalue"};
    }
  }

  Value eval_assign(const Expr& e) {
    Value rhs = eval(*e.sub[1]);
    int64_t* arr_elem = nullptr;
    Value* target = resolve_lvalue(*e.sub[0], &arr_elem);

    if (arr_elem) {
      int64_t cur = *arr_elem;
      int64_t next =
          e.op == Tok::kAssign ? rhs.i : apply_binop(compound_op(e.op), cur,
                                                     rhs.i);
      *arr_elem = coerce_int(next, elem_type_);
      return Value::integer(*arr_elem, elem_type_);
    }

    assert(target != nullptr);
    if (e.op == Tok::kAssign) {
      store_into(*target, std::move(rhs));
    } else {
      int64_t next = apply_binop(compound_op(e.op), target->i, rhs.i);
      target->i = coerce_int(next, target->type);
    }
    return *target;
  }

  static Tok compound_op(Tok t) {
    switch (t) {
      case Tok::kPlusAssign: return Tok::kPlus;
      case Tok::kMinusAssign: return Tok::kMinus;
      case Tok::kAndAssign: return Tok::kAmp;
      case Tok::kOrAssign: return Tok::kPipe;
      case Tok::kXorAssign: return Tok::kCaret;
      case Tok::kShlAssign: return Tok::kShl;
      case Tok::kShrAssign: return Tok::kShr;
      default:
        throw Fault{FaultKind::kInternal, "bad compound op"};
    }
  }

  // ---- calls ------------------------------------------------------------------
  /// The port-I/O builtins the boot loops hammer, evaluated without the
  /// argument vector or a boxed result. One definition serves both the
  /// integer and the generic expression path; operand order, masking and
  /// step counts match eval_builtin exactly. Callers that have not yet
  /// stepped this node pass stepped=false. Returns false for every other
  /// callee.
  bool try_io_builtin(const Expr& e, int64_t& out, bool stepped = false) {
    if (e.builtin_index < 0) return false;
    auto in = [&](int width) {
      if (!stepped) step(e.loc);
      out = io_.io_in(static_cast<uint32_t>(eval_int(*e.sub[0])), width);
      poll_irqs();
    };
    auto write = [&](uint32_t mask, int width) {
      if (!stepped) step(e.loc);
      uint32_t value = static_cast<uint32_t>(eval_int(*e.sub[0]));
      uint32_t port = static_cast<uint32_t>(eval_int(*e.sub[1]));
      io_.io_out(port, value & mask, width);
      poll_irqs();
      out = 0;
    };
    switch (static_cast<Builtin>(e.builtin_index)) {
      case Builtin::kInb: in(8); return true;
      case Builtin::kInw: in(16); return true;
      case Builtin::kInl: in(32); return true;
      case Builtin::kOutb: write(0xff, 8); return true;
      case Builtin::kOutw: write(0xffff, 16); return true;
      case Builtin::kOutl: write(0xffffffffu, 32); return true;
      default:
        return false;  // string/struct builtins take the generic path
    }
  }

  Value eval_call(const Expr& e) {
    int64_t io_result;
    if (try_io_builtin(e, io_result, /*stepped=*/true)) {
      switch (static_cast<Builtin>(e.builtin_index)) {
        case Builtin::kInb: return Value::integer(io_result,
                                                  Type::int_type(8, false));
        case Builtin::kInw: return Value::integer(io_result,
                                                  Type::int_type(16, false));
        case Builtin::kInl: return Value::integer(io_result,
                                                  Type::int_type(32, false));
        default: return Value::integer(io_result);
      }
    }

    std::vector<Value> args;
    args.reserve(e.sub.size());
    for (const auto& a : e.sub) args.push_back(eval(*a));

    if (e.builtin_index >= 0) {
      return eval_builtin(static_cast<Builtin>(e.builtin_index), e, args);
    }
    if (e.callee_index >= 0) {
      return call_decl(function_at(static_cast<size_t>(e.callee_index)),
                       std::move(args));
    }
    // Unannotated call: only reachable when the unit bypassed the type
    // checker, which Interp's contract forbids — resolve by name anyway.
    if (auto b = find_builtin(e.text)) return eval_builtin(*b, e, args);
    return call_function(e.text, std::move(args));
  }

  Value eval_builtin(Builtin b, const Expr& e, std::vector<Value>& args) {
    switch (b) {
      case Builtin::kInb: {
        uint32_t v = io_.io_in(static_cast<uint32_t>(args[0].i), 8);
        poll_irqs();
        return Value::integer(v, Type::int_type(8, false));
      }
      case Builtin::kInw: {
        uint32_t v = io_.io_in(static_cast<uint32_t>(args[0].i), 16);
        poll_irqs();
        return Value::integer(v, Type::int_type(16, false));
      }
      case Builtin::kInl: {
        uint32_t v = io_.io_in(static_cast<uint32_t>(args[0].i), 32);
        poll_irqs();
        return Value::integer(v, Type::int_type(32, false));
      }
      case Builtin::kOutb:
        io_.io_out(static_cast<uint32_t>(args[1].i),
                   static_cast<uint32_t>(args[0].i) & 0xff, 8);
        poll_irqs();
        return Value::integer(0);
      case Builtin::kOutw:
        io_.io_out(static_cast<uint32_t>(args[1].i),
                   static_cast<uint32_t>(args[0].i) & 0xffff, 16);
        poll_irqs();
        return Value::integer(0);
      case Builtin::kOutl:
        io_.io_out(static_cast<uint32_t>(args[1].i),
                   static_cast<uint32_t>(args[0].i), 32);
        poll_irqs();
        return Value::integer(0);
      case Builtin::kPanic: {
        bool devil = support::starts_with(args[0].s, "Devil assertion");
        std::string msg = args[0].s + " (line " + std::to_string(e.loc.line) +
                          ")";
        throw Fault{devil ? FaultKind::kDevilAssertion : FaultKind::kPanic,
                    std::move(msg)};
      }
      case Builtin::kPrintk:
        out_.log.push_back(args[0].s);
        return Value::integer(0);
      case Builtin::kStrcmp:
        return Value::integer(args[0].s.compare(args[1].s));
      case Builtin::kUdelay: {
        // Burn steps proportionally so delay loops cannot dodge the budget.
        uint64_t burn = static_cast<uint64_t>(
            args[0].i < 0 ? 0 : (args[0].i > 10000 ? 10000 : args[0].i));
        for (uint64_t i = 0; i < burn; ++i) step(e.loc);
        poll_irqs();  // a delay is where pending edges land in real drivers
        return Value::integer(0);
      }
      case Builtin::kDilEq: {
        const Value& x = args[0];
        const Value& y = args[1];
        if (!x.type.is_struct()) {
          return Value::integer(x.i == y.i ? 1 : 0);  // production mode
        }
        // Debug mode: (filename, type) tag check, then value comparison
        // (the dil_eq macro of paper §2.3).
        const std::string& xf = x.fields.size() > 0 ? x.fields[0].s : "";
        const std::string& yf = y.fields.size() > 0 ? y.fields[0].s : "";
        int64_t xt = x.fields.size() > 1 ? x.fields[1].i : -1;
        int64_t yt = y.fields.size() > 1 ? y.fields[1].i : -2;
        if (xf != yf || xt != yt) {
          throw Fault{FaultKind::kDevilAssertion,
                      "Devil assertion failed: dil_eq type mismatch (line " +
                          std::to_string(e.loc.line) + ")"};
        }
        int64_t xv = x.fields.size() > 2 ? x.fields[2].i : 0;
        int64_t yv = y.fields.size() > 2 ? y.fields[2].i : 0;
        return Value::integer(xv == yv ? 1 : 0);
      }
      case Builtin::kDilVal: {
        const Value& x = args[0];
        if (!x.type.is_struct()) return Value::integer(x.i);
        return Value::integer(x.fields.size() > 2 ? x.fields[2].i : 0);
      }
      case Builtin::kRequestIrq: {
        // Run-time binding, like the kernel's request_irq: a bad line or a
        // handler the linker would not find panics the boot.
        int64_t line = args[0].i;
        if (line < 0 || line >= kIrqLines) {
          throw Fault{FaultKind::kPanic,
                      "request_irq: invalid irq line " + std::to_string(line) +
                          " (line " + std::to_string(e.loc.line) + ")"};
        }
        const std::string& name = args[1].s;
        const FunctionDecl* h = find_function(name);
        if (h == nullptr) {
          throw Fault{FaultKind::kPanic,
                      "request_irq: unknown handler '" + name + "' (line " +
                          std::to_string(e.loc.line) + ")"};
        }
        if (!h->params.empty()) {
          throw Fault{FaultKind::kPanic,
                      "request_irq: handler '" + name +
                          "' takes arguments (line " +
                          std::to_string(e.loc.line) + ")"};
        }
        irq_handlers_[static_cast<size_t>(line)] = h;
        return Value::integer(0);
      }
    }
    throw Fault{FaultKind::kInternal, "bad builtin"};
  }

  const Unit* prefix_;  // layered under unit_; null = single-unit machine
  const Unit& unit_;
  IoEnvironment& io_;
  size_t prefix_fn_count_ = 0;
  size_t prefix_global_count_ = 0;
  uint64_t budget_;
  uint64_t steps_left_;
  RunOutcome& out_;
  /// Struct declarations by name (default_value only; member access is
  /// index-resolved).
  std::unordered_map<std::string, const StructDecl*> structs_;
  /// Globals indexed by their position in Unit::globals (== the type
  /// checker's global_slot).
  std::vector<Slot> globals_;
  /// Call frames; one flat slot vector per frame, sized by
  /// FunctionDecl::frame_slots. Slot addresses stay stable across nested
  /// calls because moving an inner vector keeps its heap buffer.
  std::vector<std::vector<Slot>> frames_;
  /// Retired frame vectors, kept to recycle their buffers.
  std::vector<std::vector<Slot>> frame_pool_;
  /// Value carried by an in-flight Flow::kReturn.
  Value return_value_;
  int depth_ = 0;
  Type elem_type_ = Type::int_type();
  /// Interrupt handlers by line (request_irq); null = acknowledge-and-drop.
  std::array<const FunctionDecl*, kIrqLines> irq_handlers_{};
  /// True while a handler runs: handlers complete before the next delivery.
  bool in_irq_ = false;
  /// Wall-clock boot containment; 0 disables (the default).
  uint64_t watchdog_ms_ = 0;
  std::chrono::steady_clock::time_point watchdog_deadline_{};
};

}  // namespace

Interp::Interp(const Unit& unit, IoEnvironment& io, uint64_t step_budget)
    : unit_(unit), io_(io), step_budget_(step_budget) {}

Interp::Interp(const Unit& prefix, const Unit& tail, IoEnvironment& io,
               uint64_t step_budget)
    : prefix_unit_(&prefix), unit_(tail), io_(io),
      step_budget_(step_budget) {}

RunOutcome Interp::run(const std::string& entry) {
  RunOutcome out;
  Machine m(prefix_unit_, unit_, io_, step_budget_, out, watchdog_ms_);
  try {
    m.init_globals();
    Value result = m.call_function(entry, {});
    out.return_value = result.i;
  } catch (const Fault& f) {
    out.fault = f.kind;
    out.fault_message = f.message;
  }
  out.steps_used = m.steps_used();
  out.executed_lines = out.executed.to_set();
  return out;
}

}  // namespace minic
