#include "minic/interp.h"

#include <cassert>
#include <map>
#include <memory>

#include "minic/builtins.h"
#include "support/strings.h"

namespace minic {

const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kNone: return "none";
    case FaultKind::kPanic: return "panic";
    case FaultKind::kDevilAssertion: return "devil-assertion";
    case FaultKind::kBusFault: return "bus-fault";
    case FaultKind::kStepLimit: return "step-limit";
    case FaultKind::kStackOverflow: return "stack-overflow";
    case FaultKind::kDivByZero: return "div-by-zero";
    case FaultKind::kBadIndex: return "bad-index";
    case FaultKind::kInternal: return "internal";
  }
  return "?";
}

namespace {

constexpr int kMaxCallDepth = 128;

/// Runtime value. Struct values are flat field vectors (field order from the
/// struct declaration).
struct Value {
  Type type = Type::int_type();
  int64_t i = 0;
  std::string s;
  std::vector<Value> fields;

  static Value integer(int64_t v, Type t = Type::int_type()) {
    Value out;
    out.type = t;
    out.i = v;
    return out;
  }
  static Value str(std::string v) {
    Value out;
    out.type = Type::cstring();
    out.s = std::move(v);
    return out;
  }
};

/// Narrows an int64 to the width/signedness of `t` (what a C assignment to a
/// typed slot does).
int64_t coerce_int(int64_t v, const Type& t) {
  if (!t.is_integer() || t.bits >= 64) return v;
  uint64_t mask = (uint64_t{1} << t.bits) - 1;
  uint64_t u = static_cast<uint64_t>(v) & mask;
  if (t.is_signed && ((u >> (t.bits - 1)) & 1)) u |= ~mask;
  return static_cast<int64_t>(u);
}

struct Slot {
  Value v;
  bool is_array = false;
  Type elem_type = Type::int_type();
  std::vector<int64_t> arr;
};

struct BreakSignal {};
struct ContinueSignal {};
struct ReturnSignal {
  Value v;
};

class Machine {
 public:
  Machine(const Unit& unit, IoEnvironment& io, uint64_t budget,
          RunOutcome& out)
      : unit_(unit), io_(io), steps_left_(budget), out_(out) {
    for (const auto& sd : unit_.structs) structs_[sd.name] = &sd;
    for (const auto& fn : unit_.functions) functions_[fn.name] = &fn;
  }

  void init_globals() {
    for (const auto& g : unit_.globals) {
      Slot slot;
      if (g.array_size) {
        slot.is_array = true;
        slot.elem_type = g.type;
        slot.arr.assign(static_cast<size_t>(*g.array_size), 0);
      } else if (!g.init_list.empty()) {
        mark_line(g.loc);
        Value v = default_value(g.type);
        for (size_t i = 0; i < g.init_list.size() && i < v.fields.size();
             ++i) {
          Value f = eval(*g.init_list[i]);
          store_into(v.fields[i], std::move(f));
        }
        slot.v = std::move(v);
      } else if (g.init) {
        mark_line(g.loc);
        Value v = eval(*g.init);
        slot.v = default_value(g.type);
        store_into(slot.v, std::move(v));
      } else {
        slot.v = default_value(g.type);
      }
      globals_[g.name] = std::move(slot);
    }
  }

  Value call_function(const std::string& name, std::vector<Value> args) {
    auto it = functions_.find(name);
    if (it == functions_.end()) {
      throw Fault{FaultKind::kInternal, "missing function " + name};
    }
    const FunctionDecl& fn = *it->second;
    if (++depth_ > kMaxCallDepth) {
      throw Fault{FaultKind::kStackOverflow,
                  "call depth exceeded in " + name};
    }
    frames_.emplace_back();
    frames_.back().emplace_back();
    for (size_t i = 0; i < fn.params.size(); ++i) {
      Slot slot;
      slot.v = default_value(fn.params[i].type);
      if (i < args.size()) store_into(slot.v, std::move(args[i]));
      frames_.back().back()[fn.params[i].name] = std::move(slot);
    }
    Value result = Value::integer(0);
    try {
      exec(*fn.body);
    } catch (ReturnSignal& r) {
      result = std::move(r.v);
    }
    frames_.pop_back();
    --depth_;
    return result;
  }

 private:
  // ---- bookkeeping ---------------------------------------------------------
  void step(support::SourceLoc loc) {
    if (steps_left_ == 0) {
      throw Fault{FaultKind::kStepLimit,
                  "step budget exhausted at line " + std::to_string(loc.line)};
    }
    --steps_left_;
    ++out_.steps_used;
  }
  void mark_line(support::SourceLoc loc) { out_.executed_lines.insert(loc.line); }

  Value default_value(const Type& t) {
    Value v;
    v.type = t;
    if (t.is_struct()) {
      auto it = structs_.find(t.struct_name);
      if (it != structs_.end()) {
        for (const auto& f : it->second->fields) {
          v.fields.push_back(default_value(f.type));
        }
      }
    }
    return v;
  }

  /// Assigns `from` into the typed destination `dst` (narrowing integers).
  void store_into(Value& dst, Value from) {
    if (dst.type.is_integer()) {
      dst.i = coerce_int(from.i, dst.type);
      return;
    }
    if (dst.type.kind == TypeKind::kCString) {
      dst.s = std::move(from.s);
      return;
    }
    if (dst.type.is_struct()) {
      dst.fields = std::move(from.fields);
      return;
    }
  }

  // ---- name resolution -------------------------------------------------------
  Slot* lookup(const std::string& name) {
    if (!frames_.empty()) {
      auto& scopes = frames_.back();
      for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
        auto f = it->find(name);
        if (f != it->end()) return &f->second;
      }
    }
    auto g = globals_.find(name);
    return g == globals_.end() ? nullptr : &g->second;
  }

  // ---- statements -------------------------------------------------------------
  void exec(const Stmt& s) {
    step(s.loc);
    switch (s.kind) {
      case StmtKind::kEmpty:
        return;
      case StmtKind::kExpr:
        mark_line(s.loc);
        eval(*s.expr[0]);
        return;
      case StmtKind::kDecl: {
        mark_line(s.loc);
        Slot slot;
        if (s.array_size) {
          slot.is_array = true;
          slot.elem_type = s.decl_type;
          slot.arr.assign(static_cast<size_t>(*s.array_size), 0);
        } else {
          slot.v = default_value(s.decl_type);
          if (!s.expr.empty()) store_into(slot.v, eval(*s.expr[0]));
        }
        frames_.back().back()[s.decl_name] = std::move(slot);
        return;
      }
      case StmtKind::kBlock: {
        frames_.back().emplace_back();
        for (const auto& child : s.body) exec(*child);
        frames_.back().pop_back();
        return;
      }
      case StmtKind::kIf: {
        mark_line(s.loc);
        if (truthy(eval(*s.expr[0]))) {
          exec(*s.body[0]);
        } else if (s.body.size() > 1) {
          exec(*s.body[1]);
        }
        return;
      }
      case StmtKind::kWhile: {
        while (true) {
          step(s.loc);
          mark_line(s.loc);
          if (!truthy(eval(*s.expr[0]))) break;
          try {
            exec(*s.body[0]);
          } catch (BreakSignal&) {
            break;
          } catch (ContinueSignal&) {
          }
        }
        return;
      }
      case StmtKind::kDoWhile: {
        while (true) {
          step(s.loc);
          mark_line(s.loc);
          try {
            exec(*s.body[0]);
          } catch (BreakSignal&) {
            break;
          } catch (ContinueSignal&) {
          }
          if (!truthy(eval(*s.expr[0]))) break;
        }
        return;
      }
      case StmtKind::kFor: {
        frames_.back().emplace_back();
        // body[0] = loop body, body[1] = optional init statement.
        if (s.body.size() > 1 && s.body[1]) exec(*s.body[1]);
        while (true) {
          step(s.loc);
          mark_line(s.loc);
          if (!s.expr.empty() && !truthy(eval(*s.expr[0]))) break;
          try {
            exec(*s.body[0]);
          } catch (BreakSignal&) {
            break;
          } catch (ContinueSignal&) {
          }
          if (s.expr.size() > 1) eval(*s.expr[1]);
        }
        frames_.back().pop_back();
        return;
      }
      case StmtKind::kReturn: {
        mark_line(s.loc);
        ReturnSignal r;
        r.v = s.expr.empty() ? Value::integer(0) : eval(*s.expr[0]);
        throw r;
      }
      case StmtKind::kBreak:
        mark_line(s.loc);
        throw BreakSignal{};
      case StmtKind::kContinue:
        mark_line(s.loc);
        throw ContinueSignal{};
      case StmtKind::kSwitch: {
        mark_line(s.loc);
        int64_t operand = eval(*s.expr[0]).i;
        // Find the matching case. Case-label comparisons count as executed
        // lines: the comparison itself runs even when the arm does not.
        size_t match = s.cases.size();
        size_t default_ix = s.cases.size();
        for (size_t i = 0; i < s.cases.size(); ++i) {
          const SwitchCase& c = s.cases[i];
          if (c.is_default) {
            default_ix = i;
            continue;
          }
          mark_line(c.loc);
          if (eval(*c.value).i == operand) {
            match = i;
            break;
          }
        }
        if (match == s.cases.size()) match = default_ix;
        // Fall through successive cases until a break.
        try {
          for (size_t i = match; i < s.cases.size(); ++i) {
            for (const auto& child : s.cases[i].body) exec(*child);
          }
        } catch (BreakSignal&) {
        }
        return;
      }
    }
  }

  static bool truthy(const Value& v) { return v.i != 0; }

  // ---- expressions --------------------------------------------------------------
  Value eval(const Expr& e) {
    step(e.loc);
    switch (e.kind) {
      case ExprKind::kIntLit:
        return Value::integer(static_cast<int64_t>(e.int_value));
      case ExprKind::kStringLit:
        return Value::str(e.text);
      case ExprKind::kIdent: {
        Slot* slot = lookup(e.text);
        if (!slot) {
          throw Fault{FaultKind::kInternal, "unbound name " + e.text};
        }
        return slot->v;  // arrays are only valid under kIndex (typechecked)
      }
      case ExprKind::kUnary: {
        int64_t v = eval(*e.sub[0]).i;
        switch (e.op) {
          case Tok::kMinus: return Value::integer(-v);
          case Tok::kPlus: return Value::integer(v);
          case Tok::kTilde: return Value::integer(~v);
          case Tok::kBang: return Value::integer(v == 0 ? 1 : 0);
          default:
            throw Fault{FaultKind::kInternal, "bad unary op"};
        }
      }
      case ExprKind::kBinary:
        return eval_binary(e);
      case ExprKind::kAssign:
        return eval_assign(e);
      case ExprKind::kCond:
        return truthy(eval(*e.sub[0])) ? eval(*e.sub[1]) : eval(*e.sub[2]);
      case ExprKind::kMember: {
        Value base = eval(*e.sub[0]);
        return member_of(base, e);
      }
      case ExprKind::kIndex: {
        Slot* slot = lookup(e.sub[0]->text);
        if (!slot || !slot->is_array) {
          throw Fault{FaultKind::kInternal, "index on non-array"};
        }
        int64_t ix = eval(*e.sub[1]).i;
        if (ix < 0 || static_cast<size_t>(ix) >= slot->arr.size()) {
          // Out-of-bounds access in kernel code: memory corruption -> crash.
          throw Fault{FaultKind::kBadIndex,
                      "out-of-bounds access to " + e.sub[0]->text};
        }
        return Value::integer(slot->arr[static_cast<size_t>(ix)],
                              slot->elem_type);
      }
      case ExprKind::kCast: {
        Value v = eval(*e.sub[0]);
        if (e.cast_type.is_integer()) {
          return Value::integer(coerce_int(v.i, e.cast_type), e.cast_type);
        }
        return v;  // struct->same struct or cstring: identity
      }
      case ExprKind::kCall:
        return eval_call(e);
    }
    throw Fault{FaultKind::kInternal, "bad expression kind"};
  }

  Value member_of(const Value& base, const Expr& e) {
    auto it = structs_.find(base.type.struct_name);
    if (it == structs_.end()) {
      throw Fault{FaultKind::kInternal, "member of unknown struct"};
    }
    const auto& fields = it->second->fields;
    for (size_t i = 0; i < fields.size(); ++i) {
      if (fields[i].name == e.text) {
        if (i < base.fields.size()) return base.fields[i];
        Value v;
        v.type = fields[i].type;
        return v;
      }
    }
    throw Fault{FaultKind::kInternal, "missing member " + e.text};
  }

  Value eval_binary(const Expr& e) {
    // Short-circuit forms first.
    if (e.op == Tok::kAmpAmp) {
      if (!truthy(eval(*e.sub[0]))) return Value::integer(0);
      return Value::integer(truthy(eval(*e.sub[1])) ? 1 : 0);
    }
    if (e.op == Tok::kPipePipe) {
      if (truthy(eval(*e.sub[0]))) return Value::integer(1);
      return Value::integer(truthy(eval(*e.sub[1])) ? 1 : 0);
    }
    int64_t a = eval(*e.sub[0]).i;
    int64_t b = eval(*e.sub[1]).i;
    return Value::integer(apply_binop(e.op, a, b));
  }

  int64_t apply_binop(Tok op, int64_t a, int64_t b) {
    switch (op) {
      case Tok::kPlus: return a + b;
      case Tok::kMinus: return a - b;
      case Tok::kStar: return a * b;
      case Tok::kSlash:
        if (b == 0) throw Fault{FaultKind::kDivByZero, "division by zero"};
        return a / b;
      case Tok::kPercent:
        if (b == 0) throw Fault{FaultKind::kDivByZero, "modulo by zero"};
        return a % b;
      case Tok::kAmp: return a & b;
      case Tok::kPipe: return a | b;
      case Tok::kCaret: return a ^ b;
      case Tok::kShl:
        if (b < 0 || b > 63) return 0;
        return static_cast<int64_t>(static_cast<uint64_t>(a) << b);
      case Tok::kShr:
        if (b < 0 || b > 63) return 0;
        // Hardware-operating C code shifts unsigned register values; use
        // logical shift on the low 32 bits, as u32 arithmetic would.
        return static_cast<int64_t>(
            (static_cast<uint64_t>(a) & 0xffffffffULL) >>
            static_cast<uint64_t>(b));
      case Tok::kEq: return a == b;
      case Tok::kNe: return a != b;
      case Tok::kLt: return a < b;
      case Tok::kGt: return a > b;
      case Tok::kLe: return a <= b;
      case Tok::kGe: return a >= b;
      default:
        throw Fault{FaultKind::kInternal, "bad binary op"};
    }
  }

  /// Resolves an lvalue expression to a mutable Value reference, or to an
  /// array element.
  Value* resolve_lvalue(const Expr& e, int64_t** arr_elem) {
    *arr_elem = nullptr;
    switch (e.kind) {
      case ExprKind::kIdent: {
        Slot* slot = lookup(e.text);
        if (!slot) throw Fault{FaultKind::kInternal, "unbound " + e.text};
        return &slot->v;
      }
      case ExprKind::kMember: {
        int64_t* dummy = nullptr;
        Value* base = resolve_lvalue(*e.sub[0], &dummy);
        if (!base) throw Fault{FaultKind::kInternal, "bad member lvalue"};
        auto it = structs_.find(base->type.struct_name);
        if (it == structs_.end()) {
          throw Fault{FaultKind::kInternal, "member of unknown struct"};
        }
        const auto& fields = it->second->fields;
        for (size_t i = 0; i < fields.size(); ++i) {
          if (fields[i].name == e.text) {
            while (base->fields.size() <= i) {
              base->fields.push_back(Value{});
            }
            base->fields[i].type = fields[i].type;
            return &base->fields[i];
          }
        }
        throw Fault{FaultKind::kInternal, "missing member " + e.text};
      }
      case ExprKind::kIndex: {
        Slot* slot = lookup(e.sub[0]->text);
        if (!slot || !slot->is_array) {
          throw Fault{FaultKind::kInternal, "index on non-array"};
        }
        int64_t ix = eval(*e.sub[1]).i;
        if (ix < 0 || static_cast<size_t>(ix) >= slot->arr.size()) {
          throw Fault{FaultKind::kBadIndex,
                      "out-of-bounds store to " + e.sub[0]->text};
        }
        *arr_elem = &slot->arr[static_cast<size_t>(ix)];
        elem_type_ = slot->elem_type;
        return nullptr;
      }
      default:
        throw Fault{FaultKind::kInternal, "assignment to non-lvalue"};
    }
  }

  Value eval_assign(const Expr& e) {
    Value rhs = eval(*e.sub[1]);
    int64_t* arr_elem = nullptr;
    Value* target = resolve_lvalue(*e.sub[0], &arr_elem);

    if (arr_elem) {
      int64_t cur = *arr_elem;
      int64_t next =
          e.op == Tok::kAssign ? rhs.i : apply_binop(compound_op(e.op), cur,
                                                     rhs.i);
      *arr_elem = coerce_int(next, elem_type_);
      return Value::integer(*arr_elem, elem_type_);
    }

    assert(target != nullptr);
    if (e.op == Tok::kAssign) {
      store_into(*target, std::move(rhs));
    } else {
      int64_t next = apply_binop(compound_op(e.op), target->i, rhs.i);
      target->i = coerce_int(next, target->type);
    }
    return *target;
  }

  static Tok compound_op(Tok t) {
    switch (t) {
      case Tok::kPlusAssign: return Tok::kPlus;
      case Tok::kMinusAssign: return Tok::kMinus;
      case Tok::kAndAssign: return Tok::kAmp;
      case Tok::kOrAssign: return Tok::kPipe;
      case Tok::kXorAssign: return Tok::kCaret;
      case Tok::kShlAssign: return Tok::kShl;
      case Tok::kShrAssign: return Tok::kShr;
      default:
        throw Fault{FaultKind::kInternal, "bad compound op"};
    }
  }

  // ---- calls ------------------------------------------------------------------
  Value eval_call(const Expr& e) {
    std::vector<Value> args;
    args.reserve(e.sub.size());
    for (const auto& a : e.sub) args.push_back(eval(*a));

    if (auto b = find_builtin(e.text)) return eval_builtin(*b, e, args);
    return call_function(e.text, std::move(args));
  }

  Value eval_builtin(Builtin b, const Expr& e, std::vector<Value>& args) {
    switch (b) {
      case Builtin::kInb:
        return Value::integer(io_.io_in(static_cast<uint32_t>(args[0].i), 8),
                              Type::int_type(8, false));
      case Builtin::kInw:
        return Value::integer(io_.io_in(static_cast<uint32_t>(args[0].i), 16),
                              Type::int_type(16, false));
      case Builtin::kInl:
        return Value::integer(io_.io_in(static_cast<uint32_t>(args[0].i), 32),
                              Type::int_type(32, false));
      case Builtin::kOutb:
        io_.io_out(static_cast<uint32_t>(args[1].i),
                   static_cast<uint32_t>(args[0].i) & 0xff, 8);
        return Value::integer(0);
      case Builtin::kOutw:
        io_.io_out(static_cast<uint32_t>(args[1].i),
                   static_cast<uint32_t>(args[0].i) & 0xffff, 16);
        return Value::integer(0);
      case Builtin::kOutl:
        io_.io_out(static_cast<uint32_t>(args[1].i),
                   static_cast<uint32_t>(args[0].i), 32);
        return Value::integer(0);
      case Builtin::kPanic: {
        bool devil = support::starts_with(args[0].s, "Devil assertion");
        std::string msg = args[0].s + " (line " + std::to_string(e.loc.line) +
                          ")";
        throw Fault{devil ? FaultKind::kDevilAssertion : FaultKind::kPanic,
                    std::move(msg)};
      }
      case Builtin::kPrintk:
        out_.log.push_back(args[0].s);
        return Value::integer(0);
      case Builtin::kStrcmp:
        return Value::integer(args[0].s.compare(args[1].s));
      case Builtin::kUdelay: {
        // Burn steps proportionally so delay loops cannot dodge the budget.
        uint64_t burn = static_cast<uint64_t>(
            args[0].i < 0 ? 0 : (args[0].i > 10000 ? 10000 : args[0].i));
        for (uint64_t i = 0; i < burn; ++i) step(e.loc);
        return Value::integer(0);
      }
      case Builtin::kDilEq: {
        const Value& x = args[0];
        const Value& y = args[1];
        if (!x.type.is_struct()) {
          return Value::integer(x.i == y.i ? 1 : 0);  // production mode
        }
        // Debug mode: (filename, type) tag check, then value comparison
        // (the dil_eq macro of paper §2.3).
        const std::string& xf = x.fields.size() > 0 ? x.fields[0].s : "";
        const std::string& yf = y.fields.size() > 0 ? y.fields[0].s : "";
        int64_t xt = x.fields.size() > 1 ? x.fields[1].i : -1;
        int64_t yt = y.fields.size() > 1 ? y.fields[1].i : -2;
        if (xf != yf || xt != yt) {
          throw Fault{FaultKind::kDevilAssertion,
                      "Devil assertion failed: dil_eq type mismatch (line " +
                          std::to_string(e.loc.line) + ")"};
        }
        int64_t xv = x.fields.size() > 2 ? x.fields[2].i : 0;
        int64_t yv = y.fields.size() > 2 ? y.fields[2].i : 0;
        return Value::integer(xv == yv ? 1 : 0);
      }
      case Builtin::kDilVal: {
        const Value& x = args[0];
        if (!x.type.is_struct()) return Value::integer(x.i);
        return Value::integer(x.fields.size() > 2 ? x.fields[2].i : 0);
      }
    }
    throw Fault{FaultKind::kInternal, "bad builtin"};
  }

  const Unit& unit_;
  IoEnvironment& io_;
  uint64_t steps_left_;
  RunOutcome& out_;
  std::map<std::string, const StructDecl*> structs_;
  std::map<std::string, const FunctionDecl*> functions_;
  std::map<std::string, Slot> globals_;
  /// Call frames; each frame is a stack of block scopes.
  std::vector<std::vector<std::map<std::string, Slot>>> frames_;
  int depth_ = 0;
  Type elem_type_ = Type::int_type();
};

}  // namespace

Interp::Interp(const Unit& unit, IoEnvironment& io, uint64_t step_budget)
    : unit_(unit), io_(io), step_budget_(step_budget) {}

RunOutcome Interp::run(const std::string& entry) {
  RunOutcome out;
  Machine m(unit_, io_, step_budget_, out);
  try {
    m.init_globals();
    Value result = m.call_function(entry, {});
    out.return_value = result.i;
  } catch (const Fault& f) {
    out.fault = f.kind;
    out.fault_message = f.message;
  }
  return out;
}

}  // namespace minic
