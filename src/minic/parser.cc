#include "minic/parser.h"

#include <string>

namespace minic {

namespace {

ExprPtr make_expr(ExprKind kind, support::SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  e->loc = loc;
  return e;
}

StmtPtr make_stmt(StmtKind kind, support::SourceLoc loc) {
  auto s = std::make_unique<Stmt>();
  s->kind = kind;
  s->loc = loc;
  return s;
}

/// C binary operator precedence (higher binds tighter). Assignment and ?:
/// are handled separately.
int precedence(Tok t) {
  switch (t) {
    case Tok::kStar:
    case Tok::kSlash:
    case Tok::kPercent:
      return 10;
    case Tok::kPlus:
    case Tok::kMinus:
      return 9;
    case Tok::kShl:
    case Tok::kShr:
      return 8;
    case Tok::kLt:
    case Tok::kGt:
    case Tok::kLe:
    case Tok::kGe:
      return 7;
    case Tok::kEq:
    case Tok::kNe:
      return 6;
    case Tok::kAmp:
      return 5;
    case Tok::kCaret:
      return 4;
    case Tok::kPipe:
      return 3;
    case Tok::kAmpAmp:
      return 2;
    case Tok::kPipePipe:
      return 1;
    default:
      return -1;
  }
}

bool is_assign_op(Tok t) {
  switch (t) {
    case Tok::kAssign:
    case Tok::kPlusAssign:
    case Tok::kMinusAssign:
    case Tok::kAndAssign:
    case Tok::kOrAssign:
    case Tok::kXorAssign:
    case Tok::kShlAssign:
    case Tok::kShrAssign:
      return true;
    default:
      return false;
  }
}

}  // namespace

const Token& Parser::peek(int ahead) const {
  size_t i = pos_ + static_cast<size_t>(ahead);
  if (i >= toks_.size()) i = toks_.size() - 1;
  return toks_[i];
}

const Token& Parser::advance() {
  const Token& t = toks_[pos_];
  if (pos_ + 1 < toks_.size()) ++pos_;
  return t;
}

bool Parser::accept(Tok k) {
  if (!check(k)) return false;
  advance();
  return true;
}

void Parser::expect(Tok k, const char* ctx) {
  if (accept(k)) return;
  diags_.error("MC020", peek().loc,
               std::string("expected ") + tok_name(k) + " " + ctx +
                   ", found " + tok_name(peek().kind) +
                   (peek().text.empty() ? "" : " '" + peek().text + "'"));
  throw Bail{};
}

void Parser::fail(const char* msg) {
  diags_.error("MC021", peek().loc, msg);
  throw Bail{};
}

bool Parser::at_type() const {
  switch (peek().kind) {
    case Tok::kKwVoid:
    case Tok::kKwInt:
    case Tok::kKwU8:
    case Tok::kKwU16:
    case Tok::kKwU32:
    case Tok::kKwS8:
    case Tok::kKwS16:
    case Tok::kKwS32:
    case Tok::kKwCString:
      return true;
    case Tok::kKwStruct:
      // `struct Name ident` is a declaration; `struct Name {` is a
      // definition handled at top level.
      return true;
    default:
      return false;
  }
}

Type Parser::parse_type() {
  switch (peek().kind) {
    case Tok::kKwVoid: advance(); return Type::void_type();
    case Tok::kKwInt: advance(); return Type::int_type(32, true);
    case Tok::kKwU8: advance(); return Type::int_type(8, false);
    case Tok::kKwU16: advance(); return Type::int_type(16, false);
    case Tok::kKwU32: advance(); return Type::int_type(32, false);
    case Tok::kKwS8: advance(); return Type::int_type(8, true);
    case Tok::kKwS16: advance(); return Type::int_type(16, true);
    case Tok::kKwS32: advance(); return Type::int_type(32, true);
    case Tok::kKwCString: advance(); return Type::cstring();
    case Tok::kKwStruct: {
      advance();
      if (!check(Tok::kIdent)) fail("expected struct name");
      return Type::struct_type(advance().text);
    }
    case Tok::kIdent: {
      // A struct type may be referred to by bare name (C++-style
      // convenience; the Devil debug header relies on it).
      return Type::struct_type(advance().text);
    }
    default:
      fail("expected a type");
  }
}

std::optional<Unit> Parser::parse() {
  try {
    Unit unit;
    while (!check(Tok::kEof)) {
      if (check(Tok::kKwStruct) && peek(1).is(Tok::kIdent) &&
          peek(2).is(Tok::kLBrace)) {
        parse_struct(unit);
      } else {
        parse_global_or_function(unit);
      }
    }
    return unit;
  } catch (const Bail&) {
    return std::nullopt;
  }
}

void Parser::parse_struct(Unit& unit) {
  StructDecl sd;
  sd.loc = peek().loc;
  expect(Tok::kKwStruct, "");
  sd.name = advance().text;
  expect(Tok::kLBrace, "to open the struct body");
  while (!check(Tok::kRBrace)) {
    StructField f;
    f.loc = peek().loc;
    f.type = parse_type();
    if (!check(Tok::kIdent)) fail("expected field name");
    f.name = advance().text;
    expect(Tok::kSemi, "after struct field");
    sd.fields.push_back(std::move(f));
  }
  expect(Tok::kRBrace, "to close the struct body");
  expect(Tok::kSemi, "after struct definition");
  unit.structs.push_back(std::move(sd));
}

void Parser::parse_global_or_function(Unit& unit) {
  bool is_const = false;
  while (check(Tok::kKwStatic) || check(Tok::kKwInline) ||
         check(Tok::kKwConst)) {
    if (advance().kind == Tok::kKwConst) is_const = true;
  }
  support::SourceLoc loc = peek().loc;
  Type type = parse_type();
  if (!check(Tok::kIdent)) fail("expected declaration name");
  std::string name = advance().text;

  if (check(Tok::kLParen)) {
    FunctionDecl fn;
    fn.loc = loc;
    fn.return_type = type;
    fn.name = std::move(name);
    expect(Tok::kLParen, "");
    if (!check(Tok::kRParen)) {
      do {
        Param p;
        p.loc = peek().loc;
        p.type = parse_type();
        if (!check(Tok::kIdent)) fail("expected parameter name");
        p.name = advance().text;
        fn.params.push_back(std::move(p));
      } while (accept(Tok::kComma));
    }
    expect(Tok::kRParen, "after parameter list");
    fn.body = parse_block();
    unit.functions.push_back(std::move(fn));
    return;
  }

  GlobalDecl g;
  g.loc = loc;
  g.type = type;
  g.name = std::move(name);
  g.is_const = is_const;
  if (accept(Tok::kLBracket)) {
    if (!check(Tok::kIntLit)) fail("expected constant array size");
    g.array_size = advance().int_value;
    expect(Tok::kRBracket, "after array size");
  }
  if (accept(Tok::kAssign)) {
    if (accept(Tok::kLBrace)) {
      do {
        g.init_list.push_back(parse_expr());
      } while (accept(Tok::kComma));
      expect(Tok::kRBrace, "to close the initialiser list");
    } else {
      g.init = parse_expr();
    }
  }
  expect(Tok::kSemi, "after global declaration");
  unit.globals.push_back(std::move(g));
}

StmtPtr Parser::parse_block() {
  auto s = make_stmt(StmtKind::kBlock, peek().loc);
  expect(Tok::kLBrace, "to open a block");
  while (!check(Tok::kRBrace) && !check(Tok::kEof)) {
    s->body.push_back(parse_statement());
  }
  expect(Tok::kRBrace, "to close a block");
  return s;
}

StmtPtr Parser::parse_local_decl() {
  auto s = make_stmt(StmtKind::kDecl, peek().loc);
  while (check(Tok::kKwConst) || check(Tok::kKwStatic)) advance();
  s->decl_type = parse_type();
  if (!check(Tok::kIdent)) fail("expected variable name");
  s->decl_name = advance().text;
  if (accept(Tok::kLBracket)) {
    if (!check(Tok::kIntLit)) fail("expected constant array size");
    s->array_size = advance().int_value;
    expect(Tok::kRBracket, "after array size");
  }
  if (accept(Tok::kAssign)) s->expr.push_back(parse_expr());
  expect(Tok::kSemi, "after declaration");
  return s;
}

StmtPtr Parser::parse_statement() {
  support::SourceLoc loc = peek().loc;
  switch (peek().kind) {
    case Tok::kLBrace:
      return parse_block();
    case Tok::kSemi:
      advance();
      return make_stmt(StmtKind::kEmpty, loc);
    case Tok::kKwIf: {
      advance();
      auto s = make_stmt(StmtKind::kIf, loc);
      expect(Tok::kLParen, "after 'if'");
      s->expr.push_back(parse_expr());
      expect(Tok::kRParen, "after condition");
      s->body.push_back(parse_statement());
      if (accept(Tok::kKwElse)) s->body.push_back(parse_statement());
      return s;
    }
    case Tok::kKwWhile: {
      advance();
      auto s = make_stmt(StmtKind::kWhile, loc);
      expect(Tok::kLParen, "after 'while'");
      s->expr.push_back(parse_expr());
      expect(Tok::kRParen, "after condition");
      s->body.push_back(parse_statement());
      return s;
    }
    case Tok::kKwDo: {
      advance();
      auto s = make_stmt(StmtKind::kDoWhile, loc);
      s->body.push_back(parse_statement());
      expect(Tok::kKwWhile, "after do-body");
      expect(Tok::kLParen, "after 'while'");
      s->expr.push_back(parse_expr());
      expect(Tok::kRParen, "after condition");
      expect(Tok::kSemi, "after do-while");
      return s;
    }
    case Tok::kKwFor: {
      advance();
      auto s = make_stmt(StmtKind::kFor, loc);
      expect(Tok::kLParen, "after 'for'");
      // init
      if (check(Tok::kSemi)) {
        advance();
        s->body.push_back(nullptr);  // placeholder: body[1] is init
      } else if (at_type() && !check(Tok::kIdent)) {
        // Declaration init clause (type keywords only; a bare identifier in
        // the init clause is an expression).
        s->body.push_back(nullptr);
        auto decl = parse_local_decl();  // consumes the ';'
        s->body.back() = std::move(decl);
      } else {
        auto init = make_stmt(StmtKind::kExpr, peek().loc);
        init->expr.push_back(parse_expr());
        expect(Tok::kSemi, "after for-init");
        s->body.push_back(std::move(init));
      }
      // cond
      if (!check(Tok::kSemi)) s->expr.push_back(parse_expr());
      expect(Tok::kSemi, "after for-condition");
      // step
      if (!check(Tok::kRParen)) {
        if (s->expr.empty()) {
          // Keep positions stable: expr[0] = cond, expr[1] = step.
          auto true_lit = make_expr(ExprKind::kIntLit, peek().loc);
          true_lit->int_value = 1;
          s->expr.push_back(std::move(true_lit));
        }
        s->expr.push_back(parse_expr());
      }
      expect(Tok::kRParen, "after for-clauses");
      // body becomes body[last]
      s->body.insert(s->body.begin(), parse_statement());
      return s;
    }
    case Tok::kKwReturn: {
      advance();
      auto s = make_stmt(StmtKind::kReturn, loc);
      if (!check(Tok::kSemi)) s->expr.push_back(parse_expr());
      expect(Tok::kSemi, "after return");
      return s;
    }
    case Tok::kKwBreak:
      advance();
      expect(Tok::kSemi, "after 'break'");
      return make_stmt(StmtKind::kBreak, loc);
    case Tok::kKwContinue:
      advance();
      expect(Tok::kSemi, "after 'continue'");
      return make_stmt(StmtKind::kContinue, loc);
    case Tok::kKwSwitch: {
      advance();
      auto s = make_stmt(StmtKind::kSwitch, loc);
      expect(Tok::kLParen, "after 'switch'");
      s->expr.push_back(parse_expr());
      expect(Tok::kRParen, "after switch operand");
      expect(Tok::kLBrace, "to open the switch body");
      while (!check(Tok::kRBrace) && !check(Tok::kEof)) {
        SwitchCase sc;
        sc.loc = peek().loc;
        if (accept(Tok::kKwCase)) {
          sc.value = parse_conditional();
          expect(Tok::kColon, "after case value");
        } else if (accept(Tok::kKwDefault)) {
          sc.is_default = true;
          expect(Tok::kColon, "after 'default'");
        } else {
          fail("expected 'case' or 'default' in switch body");
        }
        while (!check(Tok::kKwCase) && !check(Tok::kKwDefault) &&
               !check(Tok::kRBrace) && !check(Tok::kEof)) {
          sc.body.push_back(parse_statement());
        }
        s->cases.push_back(std::move(sc));
      }
      expect(Tok::kRBrace, "to close the switch body");
      return s;
    }
    default:
      break;
  }

  // Declaration or expression statement. A statement starting with a type
  // keyword (or `struct`) is a declaration; `Ident Ident` is a declaration
  // using a bare struct-type name.
  if ((at_type() && !check(Tok::kIdent)) ||
      (check(Tok::kIdent) && peek(1).is(Tok::kIdent))) {
    return parse_local_decl();
  }
  auto s = make_stmt(StmtKind::kExpr, loc);
  s->expr.push_back(parse_expr());
  expect(Tok::kSemi, "after expression");
  return s;
}

ExprPtr Parser::parse_assignment() {
  ExprPtr lhs = parse_conditional();
  if (is_assign_op(peek().kind)) {
    const Token& op_tok = advance();
    Tok op = op_tok.kind;
    auto e = make_expr(ExprKind::kAssign, lhs->loc);
    e->op = op;
    e->op_site = op_tok.site;
    e->sub.push_back(std::move(lhs));
    e->sub.push_back(parse_assignment());
    return e;
  }
  return lhs;
}

ExprPtr Parser::parse_conditional() {
  ExprPtr cond = parse_binary(0);
  if (accept(Tok::kQuestion)) {
    auto e = make_expr(ExprKind::kCond, cond->loc);
    e->sub.push_back(std::move(cond));
    e->sub.push_back(parse_expr());
    expect(Tok::kColon, "in conditional expression");
    e->sub.push_back(parse_conditional());
    return e;
  }
  return cond;
}

ExprPtr Parser::parse_binary(int min_prec) {
  ExprPtr lhs = parse_unary();
  for (;;) {
    int prec = precedence(peek().kind);
    if (prec < 0 || prec < min_prec) return lhs;
    const Token& op_tok = advance();
    Tok op = op_tok.kind;
    ExprPtr rhs = parse_binary(prec + 1);
    auto e = make_expr(ExprKind::kBinary, lhs->loc);
    e->op = op;
    e->op_site = op_tok.site;
    e->sub.push_back(std::move(lhs));
    e->sub.push_back(std::move(rhs));
    lhs = std::move(e);
  }
}

ExprPtr Parser::parse_unary() {
  support::SourceLoc loc = peek().loc;
  switch (peek().kind) {
    case Tok::kMinus:
    case Tok::kTilde:
    case Tok::kBang:
    case Tok::kPlus: {
      const Token& op_tok = advance();
      Tok op = op_tok.kind;
      auto e = make_expr(ExprKind::kUnary, loc);
      e->op = op;
      e->op_site = op_tok.site;
      e->sub.push_back(parse_unary());
      return e;
    }
    case Tok::kLParen: {
      // Cast or parenthesised expression.
      bool is_cast = false;
      switch (peek(1).kind) {
        case Tok::kKwVoid: case Tok::kKwInt: case Tok::kKwU8:
        case Tok::kKwU16: case Tok::kKwU32: case Tok::kKwS8:
        case Tok::kKwS16: case Tok::kKwS32: case Tok::kKwCString:
        case Tok::kKwStruct:
          is_cast = peek(2).is(Tok::kRParen) ||
                    (peek(1).is(Tok::kKwStruct) && peek(3).is(Tok::kRParen));
          break;
        default:
          break;
      }
      if (is_cast) {
        advance();  // (
        auto e = make_expr(ExprKind::kCast, loc);
        e->cast_type = parse_type();
        expect(Tok::kRParen, "after cast type");
        e->sub.push_back(parse_unary());
        return e;
      }
      advance();  // (
      ExprPtr inner = parse_expr();
      expect(Tok::kRParen, "after parenthesised expression");
      return parse_postfix_suffixes(std::move(inner));
    }
    default:
      return parse_postfix();
  }
}

ExprPtr Parser::parse_postfix() {
  return parse_postfix_suffixes(parse_primary());
}

ExprPtr Parser::parse_postfix_suffixes(ExprPtr e) {
  for (;;) {
    if (accept(Tok::kDot)) {
      auto m = make_expr(ExprKind::kMember, e->loc);
      if (!check(Tok::kIdent)) fail("expected member name after '.'");
      m->text = advance().text;
      m->sub.push_back(std::move(e));
      e = std::move(m);
    } else if (check(Tok::kLBracket)) {
      advance();
      auto ix = make_expr(ExprKind::kIndex, e->loc);
      ix->sub.push_back(std::move(e));
      ix->sub.push_back(parse_expr());
      expect(Tok::kRBracket, "after index expression");
      e = std::move(ix);
    } else if (check(Tok::kLParen)) {
      // Call applied to a non-identifier postfix expression, e.g. a macro
      // that expanded to a literal: `0x1f0(...)`. C's grammar accepts this;
      // the type checker then rejects it ("called object is not a
      // function"), which is precisely how gcc kills such mutants.
      advance();
      auto call = make_expr(ExprKind::kCall, e->loc);
      call->text.clear();  // marks a non-identifier callee in sub[0]
      call->sub.push_back(std::move(e));
      if (!check(Tok::kRParen)) {
        do {
          call->sub.push_back(parse_expr());
        } while (accept(Tok::kComma));
      }
      expect(Tok::kRParen, "after call arguments");
      e = std::move(call);
    } else if (check(Tok::kPlusPlus) || check(Tok::kMinusMinus)) {
      // Postfix ++/-- desugars to a compound assignment; the (unused in
      // driver code) result is the post-increment value, which is harmless
      // in the for-step positions where drivers use it.
      Tok op = advance().kind == Tok::kPlusPlus ? Tok::kPlusAssign
                                                : Tok::kMinusAssign;
      auto a = make_expr(ExprKind::kAssign, e->loc);
      a->op = op;
      a->sub.push_back(std::move(e));
      auto one = make_expr(ExprKind::kIntLit, a->loc);
      one->int_value = 1;
      a->sub.push_back(std::move(one));
      e = std::move(a);
    } else {
      return e;
    }
  }
}

ExprPtr Parser::parse_primary() {
  support::SourceLoc loc = peek().loc;
  switch (peek().kind) {
    case Tok::kIntLit: {
      const Token& t = advance();
      auto e = make_expr(ExprKind::kIntLit, loc);
      e->int_value = t.int_value;
      e->text = t.text;
      e->site = t.site;
      return e;
    }
    case Tok::kStringLit: {
      const Token& t = advance();
      auto e = make_expr(ExprKind::kStringLit, loc);
      e->text = t.text;
      return e;
    }
    case Tok::kIdent: {
      const Token& t = advance();
      if (check(Tok::kLParen)) {
        auto e = make_expr(ExprKind::kCall, loc);
        e->text = t.text;
        e->site = t.site;
        advance();  // (
        if (!check(Tok::kRParen)) {
          do {
            e->sub.push_back(parse_expr());
          } while (accept(Tok::kComma));
        }
        expect(Tok::kRParen, "after call arguments");
        return e;
      }
      auto e = make_expr(ExprKind::kIdent, loc);
      e->text = t.text;
      e->site = t.site;
      return e;
    }
    default:
      fail("expected an expression");
  }
}

}  // namespace minic
