#include "minic/typecheck.h"

#include <map>
#include <sstream>

#include "minic/builtins.h"

namespace minic {

std::optional<Builtin> find_builtin(const std::string& name) {
  static const std::map<std::string, Builtin> table = {
      {"inb", Builtin::kInb},       {"inw", Builtin::kInw},
      {"inl", Builtin::kInl},       {"outb", Builtin::kOutb},
      {"outw", Builtin::kOutw},     {"outl", Builtin::kOutl},
      {"panic", Builtin::kPanic},   {"printk", Builtin::kPrintk},
      {"strcmp", Builtin::kStrcmp}, {"udelay", Builtin::kUdelay},
      {"dil_eq", Builtin::kDilEq},  {"dil_val", Builtin::kDilVal},
      {"request_irq", Builtin::kRequestIrq},
  };
  auto it = table.find(name);
  if (it == table.end()) return std::nullopt;
  return it->second;
}

std::string Type::to_string() const {
  switch (kind) {
    case TypeKind::kVoid: return "void";
    case TypeKind::kCString: return "cstring";
    case TypeKind::kStruct: return "struct " + struct_name;
    case TypeKind::kInt: {
      std::ostringstream os;
      os << (is_signed ? "s" : "u") << bits;
      return os.str();
    }
  }
  return "?";
}

namespace {

struct VarEntry {
  Type type;
  bool is_array = false;
  bool is_const = false;
  bool is_global = false;
  /// Frame slot (locals) or Unit::globals index (globals); -1 when the
  /// declaration itself was erroneous.
  int32_t slot = -1;
};

class Checker {
 public:
  Checker(Unit& unit, support::DiagnosticEngine& diags)
      : unit_(unit), diags_(diags) {}

  /// Tail mode: `unit` is the continuation of an already-checked prefix.
  /// Struct/function/global tables are seeded from the prefix and tail
  /// declarations extend its index spaces.
  Checker(Unit& unit, const PrefixSymbols& prefix,
          support::DiagnosticEngine& diags)
      : unit_(unit), diags_(diags), prefix_(&prefix) {
    structs_ = prefix.structs;
    function_index_ = prefix.functions;
    for (const auto& [name, g] : prefix.globals) {
      globals_[name] = VarEntry{g.type, g.is_array, g.is_const,
                                /*is_global=*/true, g.slot};
    }
    function_base_ = static_cast<int32_t>(prefix.unit->functions.size());
    global_base_ = static_cast<int32_t>(prefix.unit->globals.size());
  }

  bool run() {
    int before = diags_.error_count();
    collect_structs();
    collect_functions();
    check_globals();
    for (auto& fn : unit_.functions) check_function(fn);
    return diags_.error_count() == before;
  }

  [[nodiscard]] bool needs_whole_unit() const { return needs_whole_unit_; }

 private:
  // ---- symbol collection ----------------------------------------------------
  void collect_structs() {
    for (const auto& sd : unit_.structs) {
      if (structs_.count(sd.name)) {
        diags_.error("MC111", sd.loc, "struct '" + sd.name + "' redefined");
        continue;
      }
      structs_[sd.name] = &sd;
      for (const auto& f : sd.fields) validate_type(f.type, f.loc);
    }
  }

  void collect_functions() {
    for (size_t i = 0; i < unit_.functions.size(); ++i) {
      const FunctionDecl& fn = unit_.functions[i];
      if (find_builtin(fn.name)) {
        diags_.error("MC111", fn.loc,
                     "function '" + fn.name + "' shadows a builtin");
        continue;
      }
      if (function_index_.count(fn.name)) {
        diags_.error("MC111", fn.loc, "function '" + fn.name + "' redefined");
        continue;
      }
      if (prefix_ && globals_.count(fn.name)) {
        // Whole-unit checking reports this collision at the *prefix* global
        // declaration and then fails every prefix use of the name; only a
        // whole-unit pass reproduces those diagnostics.
        needs_whole_unit_ = true;
      }
      function_index_[fn.name] = function_base_ + static_cast<int32_t>(i);
      validate_type(fn.return_type, fn.loc);
      for (const auto& p : fn.params) validate_type(p.type, p.loc);
    }
  }

  /// Function declaration behind a (possibly prefix-based) index.
  const FunctionDecl& function_at(int32_t index) const {
    if (index < function_base_) {
      return prefix_->unit->functions[static_cast<size_t>(index)];
    }
    return unit_.functions[static_cast<size_t>(index - function_base_)];
  }

  void validate_type(const Type& t, support::SourceLoc loc) {
    if (t.kind == TypeKind::kStruct && !structs_.count(t.struct_name)) {
      diags_.error("MC112", loc, "unknown type '" + t.struct_name + "'");
    }
  }

  void check_globals() {
    for (size_t i = 0; i < unit_.globals.size(); ++i) {
      GlobalDecl& g = unit_.globals[i];
      const int32_t global_index = global_base_ + static_cast<int32_t>(i);
      validate_type(g.type, g.loc);
      if (globals_.count(g.name) || function_index_.count(g.name)) {
        diags_.error("MC111", g.loc, "'" + g.name + "' redefined");
        continue;
      }
      if (g.init) {
        Type t = check_expr(*g.init);
        require_assignable(g.type, t, g.loc, "global initialiser");
      }
      if (!g.init_list.empty()) {
        if (!g.type.is_struct()) {
          diags_.error("MC106", g.loc,
                       "brace initialiser on a non-struct global");
        } else if (auto it = structs_.find(g.type.struct_name);
                   it != structs_.end()) {
          const StructDecl& sd = *it->second;
          if (g.init_list.size() != sd.fields.size()) {
            diags_.error("MC106", g.loc,
                         "initialiser count does not match struct fields");
          } else {
            for (size_t i = 0; i < g.init_list.size(); ++i) {
              Type t = check_expr(*g.init_list[i]);
              require_assignable(sd.fields[i].type, t, g.loc,
                                 "struct initialiser");
            }
          }
        }
      }
      globals_[g.name] =
          VarEntry{g.type, g.array_size.has_value(), g.is_const,
                   /*is_global=*/true, global_index};
    }
  }

  // ---- scopes -----------------------------------------------------------------
  VarEntry* lookup(const std::string& name) {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      auto f = it->find(name);
      if (f != it->end()) return &f->second;
    }
    auto g = globals_.find(name);
    return g == globals_.end() ? nullptr : &g->second;
  }

  /// Declares a local in the innermost scope, assigning it the next frame
  /// slot. Returns the slot, or -1 on redefinition.
  int32_t declare_local(const std::string& name, VarEntry entry,
                        support::SourceLoc loc) {
    if (scopes_.back().count(name)) {
      diags_.error("MC111", loc, "variable '" + name + "' redefined");
      return -1;
    }
    entry.is_global = false;
    entry.slot = next_frame_slot_++;
    int32_t slot = entry.slot;
    scopes_.back()[name] = std::move(entry);
    return slot;
  }

  // ---- functions / statements ---------------------------------------------------
  void check_function(FunctionDecl& fn) {
    current_fn_ = &fn;
    scopes_.clear();
    scopes_.emplace_back();
    next_frame_slot_ = 0;
    for (const auto& p : fn.params) {
      declare_local(p.name, VarEntry{p.type, false, false}, p.loc);
    }
    check_stmt(*fn.body);
    fn.frame_slots = static_cast<uint32_t>(next_frame_slot_);
    scopes_.clear();
    current_fn_ = nullptr;
  }

  void check_stmt(Stmt& s) {
    switch (s.kind) {
      case StmtKind::kEmpty:
        return;
      case StmtKind::kExpr:
        check_expr(*s.expr[0]);
        return;
      case StmtKind::kDecl: {
        validate_type(s.decl_type, s.loc);
        if (!s.expr.empty()) {
          Type t = check_expr(*s.expr[0]);
          require_assignable(s.decl_type, t, s.loc, "initialiser");
        }
        s.frame_slot = declare_local(
            s.decl_name, VarEntry{s.decl_type, s.array_size.has_value(), false},
            s.loc);
        return;
      }
      case StmtKind::kBlock: {
        scopes_.emplace_back();
        for (auto& child : s.body) check_stmt(*child);
        scopes_.pop_back();
        return;
      }
      case StmtKind::kIf: {
        require_scalar(check_expr(*s.expr[0]), s.expr[0]->loc);
        check_stmt(*s.body[0]);
        if (s.body.size() > 1) check_stmt(*s.body[1]);
        return;
      }
      case StmtKind::kWhile:
      case StmtKind::kDoWhile: {
        require_scalar(check_expr(*s.expr[0]), s.expr[0]->loc);
        check_stmt(*s.body[0]);
        return;
      }
      case StmtKind::kFor: {
        scopes_.emplace_back();
        if (s.body.size() > 1 && s.body[1]) check_stmt(*s.body[1]);
        if (!s.expr.empty())
          require_scalar(check_expr(*s.expr[0]), s.expr[0]->loc);
        if (s.expr.size() > 1) check_expr(*s.expr[1]);
        check_stmt(*s.body[0]);
        scopes_.pop_back();
        return;
      }
      case StmtKind::kReturn: {
        const Type& want = current_fn_->return_type;
        if (s.expr.empty()) {
          if (want.kind != TypeKind::kVoid) {
            diags_.error("MC109", s.loc,
                         "non-void function returns no value");
          }
        } else {
          Type t = check_expr(*s.expr[0]);
          if (want.kind == TypeKind::kVoid) {
            diags_.error("MC109", s.loc, "void function returns a value");
          } else {
            require_assignable(want, t, s.loc, "return value");
          }
        }
        return;
      }
      case StmtKind::kBreak:
      case StmtKind::kContinue:
        return;
      case StmtKind::kSwitch: {
        Type t = check_expr(*s.expr[0]);
        if (!t.is_integer()) {
          diags_.error("MC115", s.expr[0]->loc,
                       "switch operand must have integer type, not " +
                           t.to_string());
        }
        for (auto& c : s.cases) {
          if (c.value) {
            Type ct = check_expr(*c.value);
            if (!ct.is_integer()) {
              diags_.error("MC115", c.loc,
                           "case value must have integer type, not " +
                               ct.to_string());
            }
          }
          scopes_.emplace_back();
          for (auto& child : c.body) check_stmt(*child);
          scopes_.pop_back();
        }
        return;
      }
    }
  }

  // ---- expression checking ------------------------------------------------------
  void require_scalar(const Type& t, support::SourceLoc loc) {
    if (!t.is_integer()) {
      diags_.error("MC108", loc,
                   "condition must have scalar type, not " + t.to_string());
    }
  }

  void require_assignable(const Type& to, const Type& from,
                          support::SourceLoc loc, const char* what) {
    if (to.is_integer() && from.is_integer()) return;  // C converts freely
    if (to.same_as(from)) return;
    diags_.error("MC106", loc,
                 std::string("incompatible types in ") + what + ": cannot "
                     "convert " +
                     from.to_string() + " to " + to.to_string());
  }

  bool is_lvalue(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kIdent:
        return true;
      case ExprKind::kMember:
      case ExprKind::kIndex:
        return is_lvalue(*e.sub[0]) || e.sub[0]->kind == ExprKind::kIndex;
      default:
        return false;
    }
  }

  Type check_expr(Expr& e) {
    Type t = check_expr_inner(e);
    e.type = t;
    return t;
  }

  Type check_expr_inner(Expr& e) {
    switch (e.kind) {
      case ExprKind::kIntLit:
        return Type::int_type(32, true);
      case ExprKind::kStringLit:
        return Type::cstring();
      case ExprKind::kIdent: {
        VarEntry* v = lookup(e.text);
        if (!v) {
          diags_.error("MC100", e.loc,
                       "'" + e.text + "' undeclared (first use)");
          return Type::int_type();
        }
        bind_ident(e, *v);
        return v->type;
      }
      case ExprKind::kUnary: {
        Type t = check_expr(*e.sub[0]);
        if (!t.is_integer()) {
          diags_.error("MC107", e.loc,
                       std::string("invalid operand of type ") +
                           t.to_string() + " to unary operator");
        }
        return Type::int_type(32, true);
      }
      case ExprKind::kBinary: {
        Type a = check_expr(*e.sub[0]);
        Type b = check_expr(*e.sub[1]);
        // C allows == on matching struct? No: "invalid operands to binary
        // ==". Every binary operator requires integer operands here
        // (cstring comparison also rejected, matching gcc for struct/ptr
        // mixes the mutations can produce).
        if (!a.is_integer() || !b.is_integer()) {
          diags_.error("MC107", e.loc,
                       "invalid operands to binary operator (" +
                           a.to_string() + " and " + b.to_string() + ")");
        }
        return Type::int_type(32, true);
      }
      case ExprKind::kAssign: {
        Type to = check_expr(*e.sub[0]);
        Type from = check_expr(*e.sub[1]);
        if (!is_lvalue(*e.sub[0])) {
          diags_.error("MC114", e.loc, "assignment to non-lvalue");
        }
        if (e.sub[0]->kind == ExprKind::kIdent) {
          if (VarEntry* v = lookup(e.sub[0]->text); v && v->is_const) {
            diags_.error("MC114", e.loc,
                         "assignment of read-only variable '" +
                             e.sub[0]->text + "'");
          }
        }
        if (e.op != Tok::kAssign) {
          // Compound assignment demands integer operands.
          if (!to.is_integer() || !from.is_integer()) {
            diags_.error("MC107", e.loc,
                         "invalid operands to compound assignment (" +
                             to.to_string() + " and " + from.to_string() +
                             ")");
          }
        } else {
          require_assignable(to, from, e.loc, "assignment");
        }
        return to;
      }
      case ExprKind::kCond: {
        require_scalar(check_expr(*e.sub[0]), e.sub[0]->loc);
        Type a = check_expr(*e.sub[1]);
        Type b = check_expr(*e.sub[2]);
        if (a.is_integer() && b.is_integer()) return Type::int_type();
        if (a.same_as(b)) return a;
        diags_.error("MC106", e.loc,
                     "type mismatch in conditional expression (" +
                         a.to_string() + " vs " + b.to_string() + ")");
        return a;
      }
      case ExprKind::kMember: {
        Type base = check_expr(*e.sub[0]);
        if (!base.is_struct()) {
          diags_.error("MC104", e.loc,
                       "request for member '" + e.text +
                           "' in something not a structure (" +
                           base.to_string() + ")");
          return Type::int_type();
        }
        auto it = structs_.find(base.struct_name);
        if (it == structs_.end()) return Type::int_type();
        const auto& fields = it->second->fields;
        for (size_t i = 0; i < fields.size(); ++i) {
          if (fields[i].name == e.text) {
            e.member_index = static_cast<int32_t>(i);
            return fields[i].type;
          }
        }
        diags_.error("MC105", e.loc,
                     "'struct " + base.struct_name + "' has no member named '" +
                         e.text + "'");
        return Type::int_type();
      }
      case ExprKind::kIndex: {
        if (e.sub[0]->kind != ExprKind::kIdent) {
          diags_.error("MC110", e.loc, "subscripted value is not an array");
          check_expr(*e.sub[1]);
          return Type::int_type();
        }
        VarEntry* v = lookup(e.sub[0]->text);
        if (!v) {
          diags_.error("MC100", e.sub[0]->loc,
                       "'" + e.sub[0]->text + "' undeclared (first use)");
        } else if (!v->is_array) {
          diags_.error("MC110", e.loc,
                       "subscripted value '" + e.sub[0]->text +
                           "' is not an array");
        }
        if (v) bind_ident(*e.sub[0], *v);
        e.sub[0]->type = v ? v->type : Type::int_type();
        Type ix = check_expr(*e.sub[1]);
        if (!ix.is_integer()) {
          diags_.error("MC110", e.sub[1]->loc,
                       "array subscript is not an integer");
        }
        return v ? v->type : Type::int_type();
      }
      case ExprKind::kCast: {
        validate_type(e.cast_type, e.loc);
        Type from = check_expr(*e.sub[0]);
        // C rejects casts to/from struct types.
        if (e.cast_type.is_struct() || from.is_struct()) {
          if (!e.cast_type.same_as(from)) {
            diags_.error("MC106", e.loc,
                         "conversion to non-scalar type requested (" +
                             from.to_string() + " to " +
                             e.cast_type.to_string() + ")");
          }
        }
        return e.cast_type;
      }
      case ExprKind::kCall:
        return check_call(e);
    }
    return Type::int_type();
  }

  Type check_call(Expr& e) {
    if (e.text.empty()) {
      // Non-identifier callee (sub[0]); always a constraint violation.
      for (auto& a : e.sub) check_expr(*a);
      diags_.error("MC117", e.loc,
                   "called object is not a function or function pointer");
      return Type::int_type();
    }
    std::vector<Type> args;
    args.reserve(e.sub.size());
    for (auto& a : e.sub) args.push_back(check_expr(*a));

    if (auto b = find_builtin(e.text)) {
      e.builtin_index = static_cast<int32_t>(*b);
      return check_builtin_call(e, *b, args);
    }

    auto it = function_index_.find(e.text);
    if (it == function_index_.end()) {
      // Implicit declaration was a warning in C90 but calling an undefined
      // function fails at link time; either way the developer is told at
      // build time, so we classify it as a compile-time catch.
      diags_.error("MC101", e.loc,
                   "implicit declaration / undefined function '" + e.text +
                       "'");
      return Type::int_type();
    }
    e.callee_index = it->second;
    const FunctionDecl& fn = function_at(it->second);
    if (args.size() != fn.params.size()) {
      std::ostringstream os;
      os << "function '" << e.text << "' expects " << fn.params.size()
         << " argument(s), got " << args.size();
      diags_.error("MC102", e.loc, os.str());
      return fn.return_type;
    }
    for (size_t i = 0; i < args.size(); ++i) {
      if (fn.params[i].type.is_integer() && args[i].is_integer()) continue;
      if (fn.params[i].type.same_as(args[i])) continue;
      std::ostringstream os;
      os << "incompatible type for argument " << (i + 1) << " of '" << e.text
         << "': expected " << fn.params[i].type.to_string() << ", got "
         << args[i].to_string();
      diags_.error("MC103", e.loc, os.str());
    }
    return fn.return_type;
  }

  Type check_builtin_call(Expr& e, Builtin b, const std::vector<Type>& args) {
    auto arity = [&](size_t n) {
      if (args.size() == n) return true;
      std::ostringstream os;
      os << "builtin '" << e.text << "' expects " << n << " argument(s), got "
         << args.size();
      diags_.error("MC102", e.loc, os.str());
      return false;
    };
    auto integer_arg = [&](size_t i) {
      if (i < args.size() && !args[i].is_integer()) {
        std::ostringstream os;
        os << "argument " << (i + 1) << " of '" << e.text
           << "' must be an integer, got " << args[i].to_string();
        diags_.error("MC103", e.loc, os.str());
      }
    };
    auto cstring_arg = [&](size_t i) {
      if (i < args.size() && args[i].kind != TypeKind::kCString) {
        std::ostringstream os;
        os << "argument " << (i + 1) << " of '" << e.text
           << "' must be a string, got " << args[i].to_string();
        diags_.error("MC103", e.loc, os.str());
      }
    };

    switch (b) {
      case Builtin::kInb:
        if (arity(1)) integer_arg(0);
        return Type::int_type(8, false);
      case Builtin::kInw:
        if (arity(1)) integer_arg(0);
        return Type::int_type(16, false);
      case Builtin::kInl:
        if (arity(1)) integer_arg(0);
        return Type::int_type(32, false);
      case Builtin::kOutb:
      case Builtin::kOutw:
      case Builtin::kOutl:
        if (arity(2)) {
          integer_arg(0);
          integer_arg(1);
        }
        return Type::void_type();
      case Builtin::kPanic:
      case Builtin::kPrintk:
        if (arity(1)) cstring_arg(0);
        return Type::void_type();
      case Builtin::kStrcmp:
        if (arity(2)) {
          cstring_arg(0);
          cstring_arg(1);
        }
        return Type::int_type();
      case Builtin::kUdelay:
        if (arity(1)) integer_arg(0);
        return Type::void_type();
      case Builtin::kDilEq:
        // Models `x.filename/x.type/x.val` macro expansion: both operands
        // must be structs (any struct type — a cross-type comparison only
        // fails at run time via the type tag), or both plain integers (the
        // production-mode expansion `x == y`). A struct/integer mix expands
        // to a member access on a non-struct: compile-time error.
        if (arity(2)) {
          bool a_struct = args[0].is_struct();
          bool b_struct = args[1].is_struct();
          if (a_struct != b_struct) {
            diags_.error("MC104", e.loc,
                         "dil_eq: request for member 'val' in something not "
                         "a structure (" +
                             args[a_struct ? 1 : 0].to_string() + ")");
          } else if (!a_struct &&
                     (!args[0].is_integer() || !args[1].is_integer())) {
            diags_.error("MC103", e.loc, "dil_eq: invalid operand types");
          }
        }
        return Type::int_type();
      case Builtin::kDilVal:
        // Production mode: identity on integers. Debug mode: `.val` field.
        if (arity(1)) {
          if (!args[0].is_integer() && !args[0].is_struct()) {
            diags_.error("MC103", e.loc, "dil_val: invalid operand type");
          }
        }
        return Type::int_type();
      case Builtin::kRequestIrq:
        // The handler is named by string so the binding resolves at run
        // time, like the kernel's request_irq(); a bad line or unknown
        // handler panics the boot (both engines, byte-identical message).
        if (arity(2)) {
          integer_arg(0);
          cstring_arg(1);
        }
        return Type::void_type();
    }
    return Type::int_type();
  }

  static void bind_ident(Expr& e, const VarEntry& v) {
    if (v.is_global) {
      e.global_slot = v.slot;
    } else {
      e.frame_slot = v.slot;
    }
  }

  Unit& unit_;
  support::DiagnosticEngine& diags_;
  const PrefixSymbols* prefix_ = nullptr;
  bool needs_whole_unit_ = false;
  /// Index bases in tail mode: tail functions/globals continue the prefix's
  /// numbering, so annotations are valid in the spliced unit.
  int32_t function_base_ = 0;
  int32_t global_base_ = 0;
  std::map<std::string, const StructDecl*> structs_;
  /// Function name -> whole-unit function index (the interpreter's callee
  /// table); the decl itself is function_at(index).
  std::map<std::string, int32_t> function_index_;
  std::map<std::string, VarEntry> globals_;
  std::vector<std::map<std::string, VarEntry>> scopes_;
  const FunctionDecl* current_fn_ = nullptr;
  int32_t next_frame_slot_ = 0;
};

}  // namespace

bool typecheck(Unit& unit, support::DiagnosticEngine& diags) {
  return Checker(unit, diags).run();
}

PrefixSymbols snapshot_symbols(const Unit& unit) {
  PrefixSymbols out;
  out.unit = &unit;
  for (const auto& sd : unit.structs) {
    out.structs.emplace(sd.name, &sd);  // first definition wins
  }
  for (size_t i = 0; i < unit.functions.size(); ++i) {
    out.functions.emplace(unit.functions[i].name, static_cast<int32_t>(i));
  }
  for (size_t i = 0; i < unit.globals.size(); ++i) {
    const GlobalDecl& g = unit.globals[i];
    out.globals.emplace(
        g.name, GlobalSymbol{g.type, g.array_size.has_value(), g.is_const,
                             static_cast<int32_t>(i)});
  }
  return out;
}

bool typecheck_tail(Unit& tail, const PrefixSymbols& prefix,
                    support::DiagnosticEngine& diags,
                    bool* needs_whole_unit) {
  Checker checker(tail, prefix, diags);
  bool ok = checker.run();
  if (needs_whole_unit) *needs_whole_unit = checker.needs_whole_unit();
  return ok;
}

}  // namespace minic
