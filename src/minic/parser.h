// Recursive-descent parser for MiniC.
#pragma once

#include <optional>
#include <vector>

#include "minic/ast.h"
#include "minic/token.h"
#include "support/diagnostics.h"

namespace minic {

class Parser {
 public:
  Parser(std::vector<Token> tokens, support::DiagnosticEngine& diags)
      : toks_(std::move(tokens)), diags_(diags) {}

  /// Returns nullopt on the first parse error (mutants are syntactically
  /// valid by construction, so campaign mutants never fail here).
  [[nodiscard]] std::optional<Unit> parse();

 private:
  struct Bail {};

  const Token& peek(int ahead = 0) const;
  const Token& advance();
  bool check(Tok k) const { return peek().is(k); }
  bool accept(Tok k);
  void expect(Tok k, const char* ctx);
  [[noreturn]] void fail(const char* msg);

  [[nodiscard]] bool at_type() const;
  Type parse_type();

  void parse_struct(Unit& unit);
  void parse_global_or_function(Unit& unit);

  StmtPtr parse_statement();
  StmtPtr parse_block();
  StmtPtr parse_local_decl();

  ExprPtr parse_expr() { return parse_assignment(); }
  ExprPtr parse_assignment();
  ExprPtr parse_conditional();
  ExprPtr parse_binary(int min_prec);
  ExprPtr parse_unary();
  ExprPtr parse_postfix();
  ExprPtr parse_postfix_suffixes(ExprPtr e);
  ExprPtr parse_primary();

  std::vector<Token> toks_;
  support::DiagnosticEngine& diags_;
  size_t pos_ = 0;
};

}  // namespace minic
