// Tree-walking interpreter for MiniC with the fault model that stands in for
// "boot the mutated kernel and watch what happens" (paper §4.2).
//
// Outcome mapping to the paper's observed behaviours:
//   kDevilAssertion -> "Run-time check"   (Devil assertion, faulty line known)
//   kBusFault/kDivByZero/kBadIndex/kStackOverflow -> "Crash"
//   kStepLimit      -> "Infinite loop"
//   kPanic          -> "Halt" (kernel panic with a message)
//   no fault        -> "Boot" / "Dead code" / "Damaged boot", decided by the
//                      evaluation harness from coverage and device state.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "minic/ast.h"
#include "support/line_bitmap.h"

namespace minic {

enum class FaultKind {
  kNone,
  kPanic,           // explicit panic(...) — kernel halt with a message
  kDevilAssertion,  // panic(...) whose message is a Devil assertion
  kBusFault,        // I/O to an unmapped port or device-detected illegal use
  kStepLimit,       // interpreter budget exhausted — infinite loop
  kStackOverflow,
  kDivByZero,
  kBadIndex,
  kWatchdog,        // wall-clock cap exceeded — hang contained by the harness
  kInternal,        // interpreter invariant violated (a bug in this repo)
};

[[nodiscard]] const char* fault_kind_name(FaultKind k);

/// Thrown by the interpreter and by IoEnvironment implementations.
struct Fault {
  FaultKind kind;
  std::string message;
};

/// The hardware seen by `inb`/`outb`/... Implemented by hw::IoBus.
class IoEnvironment {
 public:
  virtual ~IoEnvironment() = default;
  /// width is 8, 16 or 32. May throw Fault{kBusFault} for unmapped ports.
  virtual uint32_t io_in(uint32_t port, int width) = 0;
  virtual void io_out(uint32_t port, uint32_t value, int width) = 0;

  /// Step probe: both engines bind their live budget counter here at run
  /// start, so devices (the flight recorder) can stamp each port access with
  /// the number of interpreter steps retired when it happened. The charge
  /// discipline is engine-invariant (the budget-sweep differential suites
  /// pin it), so the stamps are too.
  void bind_step_probe(const uint64_t* steps_left, uint64_t budget) {
    probe_steps_left_ = steps_left;
    probe_budget_ = budget;
  }
  [[nodiscard]] uint64_t steps_retired() const {
    return probe_steps_left_ != nullptr ? probe_budget_ - *probe_steps_left_
                                        : 0;
  }

  /// Interrupt/event hooks. The engines poll `irq_pending()` at charge-step
  /// boundaries (after every port access and udelay); when it names a line
  /// they bracket the handler dispatch with `irq_begin(true)` / `irq_end()`,
  /// or acknowledge-and-drop with `irq_begin(false)` when the driver never
  /// registered a handler for that line. The defaults model a bus with no
  /// event sources, so purely polled environments are unaffected.
  [[nodiscard]] virtual int irq_pending() { return -1; }
  virtual void irq_begin(bool handled) { (void)handled; }
  virtual void irq_end() {}

 private:
  const uint64_t* probe_steps_left_ = nullptr;
  uint64_t probe_budget_ = 0;
};

struct RunOutcome {
  FaultKind fault = FaultKind::kNone;
  std::string fault_message;
  int64_t return_value = 0;
  uint64_t steps_used = 0;
  /// 1-based source lines on which at least one statement (or case-label
  /// comparison) executed. Drives the "dead code" classification. The
  /// interpreter records into the bitmap (one word OR per statement); the
  /// set is materialised from it once per run for callers that want ordered
  /// iteration. Hot-path consumers (the campaign engine) query `executed`.
  support::LineBitmap executed;
  std::set<uint32_t> executed_lines;
  std::vector<std::string> log;  // printk output, in order
};

class Interp {
 public:
  /// `unit` must have passed `typecheck`. The interpreter keeps references;
  /// both `unit` and `io` must outlive it.
  Interp(const Unit& unit, IoEnvironment& io,
         uint64_t step_budget = 2'000'000);

  /// Layered form: runs `tail` (typechecked by `typecheck_tail`) on top of
  /// an already-typechecked `prefix` unit, resolving names and whole-unit
  /// function/global indices prefix-first — observationally identical to
  /// the single-unit form over the concatenated unit. Both units must
  /// outlive the interpreter.
  Interp(const Unit& prefix, const Unit& tail, IoEnvironment& io,
         uint64_t step_budget = 2'000'000);

  /// (Re)initialises globals, then calls `entry` (no arguments). Returns the
  /// outcome; never throws.
  [[nodiscard]] RunOutcome run(const std::string& entry);

  /// Wall-clock cap per run; a boot still executing when it expires faults
  /// with kWatchdog ("hang, contained"). 0 (the default) disables the
  /// watchdog. The cap is checked every 2^20 charges, so sub-millisecond
  /// caps still let a few hundred thousand steps retire first.
  void set_watchdog_ms(uint64_t ms) { watchdog_ms_ = ms; }

 private:
  struct Impl;
  const Unit* prefix_unit_ = nullptr;  // layered under unit_; may be null
  const Unit& unit_;
  IoEnvironment& io_;
  uint64_t step_budget_;
  uint64_t watchdog_ms_ = 0;
};

}  // namespace minic
