#include "minic/program.h"

#include <algorithm>

#include "minic/lexer.h"
#include "minic/parser.h"
#include "minic/typecheck.h"

namespace minic {

namespace {

/// Parse + typecheck a finished token stream into `prog`.
void finish_compile(Program& prog, std::vector<Token> tokens,
                    std::map<std::string, std::set<uint32_t>> macro_use_lines) {
  Parser parser(std::move(tokens), prog.diags);
  auto unit = parser.parse();
  if (!unit) return;
  unit->macro_use_lines = std::move(macro_use_lines);

  auto owned = std::make_unique<Unit>(std::move(*unit));
  if (!typecheck(*owned, prog.diags)) return;
  prog.unit = std::move(owned);
}

}  // namespace

Program compile(const std::string& name, const std::string& source) {
  Program prog;
  support::SourceBuffer buf(name, source);
  LexOutput lexed = lex_unit(buf, prog.diags);
  if (prog.diags.has_errors()) return prog;

  finish_compile(prog, std::move(lexed.tokens),
                 std::move(lexed.macro_use_lines));
  return prog;
}

PreparedPrefix prepare_prefix(const std::string& name,
                              const std::string& prefix_text) {
  PreparedPrefix prefix;
  prefix.name = name;
  prefix.lines = static_cast<uint32_t>(
      std::count(prefix_text.begin(), prefix_text.end(), '\n'));
  support::SourceBuffer buf(name, prefix_text);
  LexOutput lexed = lex_unit(buf, prefix.diags);
  if (prefix.diags.has_errors()) return prefix;
  // Drop the trailing kEof: the tail's tokens continue the stream.
  if (!lexed.tokens.empty() && lexed.tokens.back().is(Tok::kEof)) {
    lexed.tokens.pop_back();
  }
  prefix.tokens = std::move(lexed.tokens);
  prefix.macros = std::move(lexed.macros);
  prefix.macro_use_lines = std::move(lexed.macro_use_lines);
  return prefix;
}

Program compile_with_prefix(const PreparedPrefix& prefix,
                            const std::string& tail) {
  Program prog;
  support::SourceBuffer buf(prefix.name, tail);
  LexOptions options;
  options.seed_macros = &prefix.macros;
  options.line_offset = prefix.lines;
  LexOutput lexed = lex_unit(buf, prog.diags, options);
  if (prog.diags.has_errors()) return prog;

  std::vector<Token> tokens;
  tokens.reserve(prefix.tokens.size() + lexed.tokens.size());
  tokens.insert(tokens.end(), prefix.tokens.begin(), prefix.tokens.end());
  tokens.insert(tokens.end(), std::make_move_iterator(lexed.tokens.begin()),
                std::make_move_iterator(lexed.tokens.end()));

  auto macro_uses = prefix.macro_use_lines;
  for (auto& [name, lines] : lexed.macro_use_lines) {
    macro_uses[name].insert(lines.begin(), lines.end());
  }
  finish_compile(prog, std::move(tokens), std::move(macro_uses));
  return prog;
}

RunOutcome compile_and_run(const std::string& name, const std::string& source,
                           const std::string& entry, IoEnvironment& io,
                           uint64_t step_budget) {
  Program prog = compile(name, source);
  if (!prog.ok()) {
    RunOutcome out;
    out.fault = FaultKind::kInternal;
    out.fault_message = "compilation failed:\n" + prog.diags.render();
    return out;
  }
  Interp interp(*prog.unit, io, step_budget);
  return interp.run(entry);
}

}  // namespace minic
