#include "minic/program.h"

#include <algorithm>

#include "minic/bytecode/vm.h"
#include "minic/lexer.h"
#include "minic/parser.h"
#include "minic/typecheck.h"

namespace minic {

namespace {

/// Parse + typecheck a finished token stream into `prog`.
void finish_compile(Program& prog, std::vector<Token> tokens,
                    std::map<std::string, std::set<uint32_t>> macro_use_lines) {
  Parser parser(std::move(tokens), prog.diags);
  auto unit = parser.parse();
  if (!unit) return;
  unit->macro_use_lines = std::move(macro_use_lines);

  auto owned = std::make_unique<Unit>(std::move(*unit));
  if (!typecheck(*owned, prog.diags)) return;
  prog.unit = std::move(owned);
}

}  // namespace

Program compile(const std::string& name, const std::string& source) {
  Program prog;
  support::SourceBuffer buf(name, source);
  LexOutput lexed = lex_unit(buf, prog.diags);
  if (prog.diags.has_errors()) return prog;

  finish_compile(prog, std::move(lexed.tokens),
                 std::move(lexed.macro_use_lines));
  return prog;
}

PreparedPrefix prepare_prefix(const std::string& name,
                              const std::string& prefix_text) {
  PreparedPrefix prefix;
  prefix.name = name;
  prefix.lines = static_cast<uint32_t>(
      std::count(prefix_text.begin(), prefix_text.end(), '\n'));
  support::SourceBuffer buf(name, prefix_text);
  LexOutput lexed = lex_unit(buf, prefix.diags);
  if (prefix.diags.has_errors()) return prefix;
  // Drop the trailing kEof: the tail's tokens continue the stream.
  if (!lexed.tokens.empty() && lexed.tokens.back().is(Tok::kEof)) {
    lexed.tokens.pop_back();
  }
  prefix.tokens = std::move(lexed.tokens);
  prefix.macros = std::move(lexed.macros);
  prefix.macro_use_lines = std::move(lexed.macro_use_lines);
  return prefix;
}

Program compile_with_prefix(const PreparedPrefix& prefix,
                            const std::string& tail) {
  Program prog;
  support::SourceBuffer buf(prefix.name, tail);
  LexOptions options;
  options.seed_macros = &prefix.macros;
  options.line_offset = prefix.lines;
  LexOutput lexed = lex_unit(buf, prog.diags, options);
  if (prog.diags.has_errors()) return prog;

  std::vector<Token> tokens;
  tokens.reserve(prefix.tokens.size() + lexed.tokens.size());
  tokens.insert(tokens.end(), prefix.tokens.begin(), prefix.tokens.end());
  tokens.insert(tokens.end(), std::make_move_iterator(lexed.tokens.begin()),
                std::make_move_iterator(lexed.tokens.end()));

  auto macro_uses = prefix.macro_use_lines;
  for (auto& [name, lines] : lexed.macro_use_lines) {
    macro_uses[name].insert(lines.begin(), lines.end());
  }
  finish_compile(prog, std::move(tokens), std::move(macro_uses));
  return prog;
}

const char* exec_engine_name(ExecEngine e) {
  switch (e) {
    case ExecEngine::kBytecodeVm: return "bytecode-vm";
    case ExecEngine::kTreeWalker: return "tree-walker";
  }
  return "?";
}

RunOutcome run_unit(const Unit& unit, IoEnvironment& io,
                    const std::string& entry, uint64_t step_budget,
                    ExecEngine engine) {
  if (engine == ExecEngine::kTreeWalker) {
    Interp interp(unit, io, step_budget);
    return interp.run(entry);
  }
  try {
    bytecode::Module module = bytecode::compile_unit(unit);
    bytecode::Vm vm(module, io, step_budget);
    return vm.run(entry);
  } catch (const Fault& f) {
    // Lowering rejected the unit: the walker's equivalent is a runtime
    // kInternal fault, and the campaign engine treats both as repo bugs.
    RunOutcome out;
    out.fault = f.kind;
    out.fault_message = f.message;
    return out;
  }
}

RunOutcome compile_and_run(const std::string& name, const std::string& source,
                           const std::string& entry, IoEnvironment& io,
                           uint64_t step_budget, ExecEngine engine) {
  Program prog = compile(name, source);
  if (!prog.ok()) {
    RunOutcome out;
    out.fault = FaultKind::kInternal;
    out.fault_message = "compilation failed:\n" + prog.diags.render();
    return out;
  }
  return run_unit(*prog.unit, io, entry, step_budget, engine);
}

}  // namespace minic
