#include "minic/program.h"

#include <algorithm>
#include <stdexcept>

#include "minic/bytecode/vm.h"
#include "minic/lexer.h"
#include "minic/parser.h"
#include "minic/typecheck.h"
#include "support/metrics.h"

namespace minic {

namespace {

using support::Stage;
using support::StageTimer;

/// Parse + typecheck a finished token stream into `prog`.
void finish_compile(Program& prog, std::vector<Token> tokens,
                    std::map<std::string, std::set<uint32_t>> macro_use_lines) {
  std::unique_ptr<Unit> owned;
  {
    StageTimer timer(Stage::kParse);
    Parser parser(std::move(tokens), prog.diags);
    auto unit = parser.parse();
    if (!unit) return;
    unit->macro_use_lines = std::move(macro_use_lines);
    owned = std::make_unique<Unit>(std::move(*unit));
  }
  StageTimer timer(Stage::kTypecheck);
  if (!typecheck(*owned, prog.diags)) return;
  prog.unit = std::move(owned);
}

}  // namespace

Program compile(const std::string& name, const std::string& source) {
  Program prog;
  support::SourceBuffer buf(name, source);
  LexOutput lexed = [&] {
    StageTimer timer(Stage::kLex);
    return lex_unit(buf, prog.diags);
  }();
  if (prog.diags.has_errors()) return prog;

  finish_compile(prog, std::move(lexed.tokens),
                 std::move(lexed.macro_use_lines));
  return prog;
}

PreparedPrefix prepare_prefix(const std::string& name,
                              const std::string& prefix_text) {
  PreparedPrefix prefix;
  prefix.name = name;
  prefix.lines = static_cast<uint32_t>(
      std::count(prefix_text.begin(), prefix_text.end(), '\n'));
  support::SourceBuffer buf(name, prefix_text);
  LexOutput lexed = lex_unit(buf, prefix.diags);
  if (prefix.diags.has_errors()) return prefix;
  // Drop the trailing kEof: the tail's tokens continue the stream.
  if (!lexed.tokens.empty() && lexed.tokens.back().is(Tok::kEof)) {
    lexed.tokens.pop_back();
  }
  prefix.tokens = std::move(lexed.tokens);
  prefix.macros = std::move(lexed.macros);
  prefix.macro_use_lines = std::move(lexed.macro_use_lines);

  // Stage 1 of the compiled-prefix pipeline: parse, typecheck and lower the
  // prefix once. A prefix that does not stand alone as a clean unit (one
  // whose declarations only resolve once the tail exists) keeps the cache
  // empty and `compile_tail` callers must use the token-splice path.
  auto compiled = std::make_shared<CompiledPrefix>();
  {
    support::DiagnosticEngine pd;
    std::vector<Token> tokens = prefix.tokens;
    Token eof;
    eof.kind = Tok::kEof;
    eof.loc.line = prefix.lines + 1;
    tokens.push_back(eof);
    Parser parser(std::move(tokens), pd);
    auto unit = parser.parse();
    if (!unit || pd.has_errors()) return prefix;
    compiled->unit = std::move(*unit);
    if (!typecheck(compiled->unit, pd)) return prefix;
  }
  compiled->symbols = snapshot_symbols(compiled->unit);
  try {
    compiled->segment = bytecode::compile_prefix(compiled->unit);
  } catch (const Fault&) {
    return prefix;  // lowering rejected the prefix: token path only
  }
  prefix.compiled = std::move(compiled);
  return prefix;
}

namespace {

/// Whole-unit fallback for `compile_tail`: token-splice compile + full
/// lowering. Byte-identical to whole-unit compilation by construction; used
/// when tail/prefix symbol collisions make tail-only checking diverge.
SplicedProgram spliced_from_whole_unit(const PreparedPrefix& prefix,
                                       const std::string& tail) {
  SplicedProgram out;
  Program prog = compile_with_prefix(prefix, tail);
  out.diags = std::move(prog.diags);
  if (!prog.unit) return out;
  out.macro_use_lines = std::move(prog.unit->macro_use_lines);
  try {
    StageTimer timer(Stage::kLower);
    out.module = std::make_shared<bytecode::Module>(
        bytecode::compile_unit(*prog.unit));
  } catch (const Fault& f) {
    out.internal_error = f.message;
  }
  return out;
}

}  // namespace

SplicedProgram compile_tail(const PreparedPrefix& prefix,
                            const std::string& tail) {
  if (!prefix.compiled) {
    throw std::logic_error(
        "compile_tail: prefix has no stage-1 cache (prepare_prefix failed "
        "or the prefix is not self-contained)");
  }
  const CompiledPrefix& cp = *prefix.compiled;
  SplicedProgram out;
  support::SourceBuffer buf(prefix.name, tail);
  LexOptions options;
  options.seed_macros = &prefix.macros;
  options.line_offset = prefix.lines;
  LexOutput lexed = [&] {
    StageTimer timer(Stage::kLex);
    return lex_unit(buf, out.diags, options);
  }();
  if (out.diags.has_errors()) return out;

  out.macro_use_lines = prefix.macro_use_lines;
  for (auto& [name, lines] : lexed.macro_use_lines) {
    out.macro_use_lines[name].insert(lines.begin(), lines.end());
  }

  auto tail_unit = [&] {
    StageTimer timer(Stage::kParse);
    Parser parser(std::move(lexed.tokens), out.diags);
    return parser.parse();
  }();
  if (!tail_unit) return out;
  bool needs_whole_unit = false;
  bool checked = [&] {
    StageTimer timer(Stage::kTypecheck);
    return typecheck_tail(*tail_unit, cp.symbols, out.diags, &needs_whole_unit);
  }();
  if (needs_whole_unit) {
    // A tail declaration shadows a prefix symbol in a way whose diagnostics
    // (or acceptance) only whole-unit checking reproduces.
    SplicedProgram whole = spliced_from_whole_unit(prefix, tail);
    whole.whole_unit_fallback = true;
    return whole;
  }
  if (!checked) return out;

  try {
    StageTimer timer(Stage::kSplice);
    out.module = std::make_shared<bytecode::Module>(
        bytecode::compile_tail_unit(cp.segment, cp.unit, *tail_unit));
  } catch (const Fault& f) {
    out.internal_error = f.message;
  }
  return out;
}

RecordedTail compile_tail_recording(const PreparedPrefix& prefix,
                                    const std::string& tail,
                                    const std::vector<SiteSpan>& site_spans) {
  if (!prefix.compiled) {
    throw std::logic_error(
        "compile_tail_recording: prefix has no stage-1 cache (prepare_prefix "
        "failed or the prefix is not self-contained)");
  }
  const CompiledPrefix& cp = *prefix.compiled;
  RecordedTail out;
  SplicedProgram& sp = out.spliced;
  support::SourceBuffer buf(prefix.name, tail);
  LexOptions options;
  options.seed_macros = &prefix.macros;
  options.line_offset = prefix.lines;
  options.site_spans = &site_spans;
  LexOutput lexed = [&] {
    StageTimer timer(Stage::kLex);
    return lex_unit(buf, sp.diags, options);
  }();
  if (sp.diags.has_errors()) return out;

  sp.macro_use_lines = prefix.macro_use_lines;
  for (auto& [name, lines] : lexed.macro_use_lines) {
    sp.macro_use_lines[name].insert(lines.begin(), lines.end());
  }
  out.tail_macro_use_lines = lexed.macro_use_lines;
  out.macros = prefix.macros;
  for (auto& [name, body] : lexed.macros) out.macros[name] = body;
  out.tokens = lexed.tokens;  // the fast dedup-key path reuses these

  auto tail_unit = [&] {
    StageTimer timer(Stage::kParse);
    Parser parser(std::move(lexed.tokens), sp.diags);
    return parser.parse();
  }();
  if (!tail_unit) return out;
  bool needs_whole_unit = false;
  bool checked = [&] {
    StageTimer timer(Stage::kTypecheck);
    return typecheck_tail(*tail_unit, cp.symbols, sp.diags, &needs_whole_unit);
  }();
  if (needs_whole_unit) {
    out.spliced = spliced_from_whole_unit(prefix, tail);
    out.spliced.whole_unit_fallback = true;
    return out;
  }
  if (!checked) return out;

  try {
    StageTimer timer(Stage::kSplice);
    sp.module = std::make_shared<bytecode::Module>(bytecode::compile_tail_unit(
        cp.segment, cp.unit, *tail_unit, &out.patch));
  } catch (const Fault& f) {
    sp.internal_error = f.message;
    return out;
  }
  out.tail_unit = std::make_unique<Unit>(std::move(*tail_unit));
  return out;
}

CheckedTail check_tail(const PreparedPrefix& prefix, const std::string& tail) {
  if (!prefix.compiled) {
    throw std::logic_error(
        "check_tail: prefix has no stage-1 cache (prepare_prefix failed or "
        "the prefix is not self-contained)");
  }
  const CompiledPrefix& cp = *prefix.compiled;
  CheckedTail out;
  support::SourceBuffer buf(prefix.name, tail);
  LexOptions options;
  options.seed_macros = &prefix.macros;
  options.line_offset = prefix.lines;
  LexOutput lexed = [&] {
    StageTimer timer(Stage::kLex);
    return lex_unit(buf, out.diags, options);
  }();
  if (out.diags.has_errors()) return out;

  out.macro_use_lines = prefix.macro_use_lines;
  for (auto& [name, lines] : lexed.macro_use_lines) {
    out.macro_use_lines[name].insert(lines.begin(), lines.end());
  }

  auto tail_unit = [&] {
    StageTimer timer(Stage::kParse);
    Parser parser(std::move(lexed.tokens), out.diags);
    return parser.parse();
  }();
  if (!tail_unit) return out;
  bool needs_whole_unit = false;
  bool checked = [&] {
    StageTimer timer(Stage::kTypecheck);
    return typecheck_tail(*tail_unit, cp.symbols, out.diags, &needs_whole_unit);
  }();
  if (needs_whole_unit) {
    out.whole_unit_fallback = true;
    return out;
  }
  if (!checked) return out;
  out.unit = std::make_unique<Unit>(std::move(*tail_unit));
  return out;
}

RunOutcome run_tail_unit(const PreparedPrefix& prefix, const Unit& tail_unit,
                         IoEnvironment& io, const std::string& entry,
                         uint64_t step_budget, uint64_t watchdog_ms) {
  if (!prefix.compiled) {
    throw std::logic_error("run_tail_unit: prefix has no stage-1 cache");
  }
  StageTimer timer(Stage::kBoot);
  Interp interp(prefix.compiled->unit, tail_unit, io, step_budget);
  interp.set_watchdog_ms(watchdog_ms);
  return interp.run(entry);
}

RunOutcome run_module(const bytecode::Module& module, IoEnvironment& io,
                      const std::string& entry, uint64_t step_budget,
                      bytecode::OpcodeProfile* profile, uint64_t watchdog_ms) {
  StageTimer timer(Stage::kBoot);
  bytecode::Vm vm(module, io, step_budget);
  if (profile != nullptr) vm.set_opcode_profile(profile);
  vm.set_watchdog_ms(watchdog_ms);
  return vm.run(entry);
}

Program compile_with_prefix(const PreparedPrefix& prefix,
                            const std::string& tail) {
  Program prog;
  support::SourceBuffer buf(prefix.name, tail);
  LexOptions options;
  options.seed_macros = &prefix.macros;
  options.line_offset = prefix.lines;
  LexOutput lexed = [&] {
    StageTimer timer(Stage::kLex);
    return lex_unit(buf, prog.diags, options);
  }();
  if (prog.diags.has_errors()) return prog;

  std::vector<Token> tokens;
  tokens.reserve(prefix.tokens.size() + lexed.tokens.size());
  tokens.insert(tokens.end(), prefix.tokens.begin(), prefix.tokens.end());
  tokens.insert(tokens.end(), std::make_move_iterator(lexed.tokens.begin()),
                std::make_move_iterator(lexed.tokens.end()));

  auto macro_uses = prefix.macro_use_lines;
  for (auto& [name, lines] : lexed.macro_use_lines) {
    macro_uses[name].insert(lines.begin(), lines.end());
  }
  finish_compile(prog, std::move(tokens), std::move(macro_uses));
  return prog;
}

const char* exec_engine_name(ExecEngine e) {
  switch (e) {
    case ExecEngine::kBytecodeVm: return "bytecode-vm";
    case ExecEngine::kTreeWalker: return "tree-walker";
  }
  return "?";
}

RunOutcome run_unit(const Unit& unit, IoEnvironment& io,
                    const std::string& entry, uint64_t step_budget,
                    ExecEngine engine, bytecode::OpcodeProfile* profile,
                    uint64_t watchdog_ms) {
  if (engine == ExecEngine::kTreeWalker) {
    StageTimer timer(Stage::kBoot);
    Interp interp(unit, io, step_budget);
    interp.set_watchdog_ms(watchdog_ms);
    return interp.run(entry);
  }
  try {
    bytecode::Module module = [&] {
      StageTimer timer(Stage::kLower);
      return bytecode::compile_unit(unit);
    }();
    StageTimer timer(Stage::kBoot);
    bytecode::Vm vm(module, io, step_budget);
    if (profile != nullptr) vm.set_opcode_profile(profile);
    vm.set_watchdog_ms(watchdog_ms);
    return vm.run(entry);
  } catch (const Fault& f) {
    // Lowering rejected the unit: the walker's equivalent is a runtime
    // kInternal fault, and the campaign engine treats both as repo bugs.
    RunOutcome out;
    out.fault = f.kind;
    out.fault_message = f.message;
    return out;
  }
}

RunOutcome compile_and_run(const std::string& name, const std::string& source,
                           const std::string& entry, IoEnvironment& io,
                           uint64_t step_budget, ExecEngine engine) {
  Program prog = compile(name, source);
  if (!prog.ok()) {
    RunOutcome out;
    out.fault = FaultKind::kInternal;
    out.fault_message = "compilation failed:\n" + prog.diags.render();
    return out;
  }
  return run_unit(*prog.unit, io, entry, step_budget, engine);
}

}  // namespace minic
