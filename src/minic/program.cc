#include "minic/program.h"

#include "minic/lexer.h"
#include "minic/parser.h"
#include "minic/typecheck.h"

namespace minic {

Program compile(const std::string& name, const std::string& source) {
  Program prog;
  support::SourceBuffer buf(name, source);
  LexOutput lexed = lex_unit(buf, prog.diags);
  if (prog.diags.has_errors()) return prog;

  Parser parser(std::move(lexed.tokens), prog.diags);
  auto unit = parser.parse();
  if (!unit) return prog;
  unit->macro_use_lines = std::move(lexed.macro_use_lines);

  auto owned = std::make_unique<Unit>(std::move(*unit));
  if (!typecheck(*owned, prog.diags)) return prog;
  prog.unit = std::move(owned);
  return prog;
}

RunOutcome compile_and_run(const std::string& name, const std::string& source,
                           const std::string& entry, IoEnvironment& io,
                           uint64_t step_budget) {
  Program prog = compile(name, source);
  if (!prog.ok()) {
    RunOutcome out;
    out.fault = FaultKind::kInternal;
    out.fault_message = "compilation failed:\n" + prog.diags.render();
    return out;
  }
  Interp interp(*prog.unit, io, step_budget);
  return interp.run(entry);
}

}  // namespace minic
