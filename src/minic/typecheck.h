// C-permissive type checker for MiniC.
//
// Faithfulness to C is the design goal, because "does the mutant compile?"
// must have the same answer gcc would give (paper §3.3):
//  - every integer type converts implicitly to every other integer type;
//  - macros were already expanded by the lexer, so a register-name macro and
//    a command-byte macro are indistinguishable integers here;
//  - struct types are nominal and never convert — the single hook that the
//    Devil debug stubs exploit to surface typos at compile time.
#pragma once

#include "minic/ast.h"
#include "support/diagnostics.h"

namespace minic {

/// Checks `unit` in place (annotates Expr::type). Returns true when the unit
/// is well-typed. All problems are reported through `diags` with MC1xx codes.
[[nodiscard]] bool typecheck(Unit& unit, support::DiagnosticEngine& diags);

// ---------------------------------------------------------------------------
// Incremental tail checking (the campaign's compiled-prefix cache).
//
// A campaign compiles `stubs + driver` once per mutant while the stubs never
// change. `snapshot_symbols` exports the symbol tables of the typechecked
// stub prefix once; `typecheck_tail` then checks only the (mutated) driver
// tail against those tables, assigning function indices and global slots
// that continue the prefix's numbering — so tail annotations (callee_index,
// global_slot) are directly valid in the spliced whole-unit namespace.
// ---------------------------------------------------------------------------

/// One prefix global, as the tail checker needs to see it.
struct GlobalSymbol {
  Type type;
  bool is_array = false;
  bool is_const = false;
  int32_t slot = -1;  // index into the prefix unit's globals
};

/// Read-only symbol snapshot of a self-contained, error-free prefix unit.
/// Pointers reference the prefix Unit, which must outlive the snapshot.
struct PrefixSymbols {
  const Unit* unit = nullptr;
  std::map<std::string, const StructDecl*> structs;
  std::map<std::string, int32_t> functions;  // name -> prefix function index
  std::map<std::string, GlobalSymbol> globals;
};

/// Builds the seed tables from an already-typechecked (clean) prefix unit.
[[nodiscard]] PrefixSymbols snapshot_symbols(const Unit& unit);

/// Checks `tail` as the continuation of `prefix`. Diagnostics are
/// byte-identical to whole-unit checking of `prefix + tail` whenever the
/// prefix itself is clean, EXCEPT when a tail function shadows a prefix
/// global: whole-unit checking reports that at the *prefix* declaration (and
/// cascades into prefix bodies), which a tail-only pass cannot reproduce —
/// `*needs_whole_unit` is set and the caller must recompile the whole unit.
[[nodiscard]] bool typecheck_tail(Unit& tail, const PrefixSymbols& prefix,
                                  support::DiagnosticEngine& diags,
                                  bool* needs_whole_unit);

}  // namespace minic
