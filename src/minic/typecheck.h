// C-permissive type checker for MiniC.
//
// Faithfulness to C is the design goal, because "does the mutant compile?"
// must have the same answer gcc would give (paper §3.3):
//  - every integer type converts implicitly to every other integer type;
//  - macros were already expanded by the lexer, so a register-name macro and
//    a command-byte macro are indistinguishable integers here;
//  - struct types are nominal and never convert — the single hook that the
//    Devil debug stubs exploit to surface typos at compile time.
#pragma once

#include "minic/ast.h"
#include "support/diagnostics.h"

namespace minic {

/// Checks `unit` in place (annotates Expr::type). Returns true when the unit
/// is well-typed. All problems are reported through `diags` with MC1xx codes.
[[nodiscard]] bool typecheck(Unit& unit, support::DiagnosticEngine& diags);

}  // namespace minic
