#include "minic/lexer.h"

#include <algorithm>
#include <cctype>
#include <unordered_map>

namespace minic {

const char* tok_name(Tok t) {
  switch (t) {
    case Tok::kEof: return "<eof>";
    case Tok::kIdent: return "identifier";
    case Tok::kIntLit: return "integer literal";
    case Tok::kStringLit: return "string literal";
    case Tok::kKwVoid: return "'void'";
    case Tok::kKwInt: return "'int'";
    case Tok::kKwU8: return "'u8'";
    case Tok::kKwU16: return "'u16'";
    case Tok::kKwU32: return "'u32'";
    case Tok::kKwS8: return "'s8'";
    case Tok::kKwS16: return "'s16'";
    case Tok::kKwS32: return "'s32'";
    case Tok::kKwCString: return "'cstring'";
    case Tok::kKwStruct: return "'struct'";
    case Tok::kKwConst: return "'const'";
    case Tok::kKwStatic: return "'static'";
    case Tok::kKwInline: return "'inline'";
    case Tok::kKwIf: return "'if'";
    case Tok::kKwElse: return "'else'";
    case Tok::kKwWhile: return "'while'";
    case Tok::kKwFor: return "'for'";
    case Tok::kKwDo: return "'do'";
    case Tok::kKwReturn: return "'return'";
    case Tok::kKwBreak: return "'break'";
    case Tok::kKwContinue: return "'continue'";
    case Tok::kKwSwitch: return "'switch'";
    case Tok::kKwCase: return "'case'";
    case Tok::kKwDefault: return "'default'";
    case Tok::kLParen: return "'('";
    case Tok::kRParen: return "')'";
    case Tok::kLBrace: return "'{'";
    case Tok::kRBrace: return "'}'";
    case Tok::kLBracket: return "'['";
    case Tok::kRBracket: return "']'";
    case Tok::kSemi: return "';'";
    case Tok::kComma: return "','";
    case Tok::kDot: return "'.'";
    case Tok::kColon: return "':'";
    case Tok::kQuestion: return "'?'";
    case Tok::kAssign: return "'='";
    case Tok::kPlusAssign: return "'+='";
    case Tok::kMinusAssign: return "'-='";
    case Tok::kAndAssign: return "'&='";
    case Tok::kOrAssign: return "'|='";
    case Tok::kXorAssign: return "'^='";
    case Tok::kShlAssign: return "'<<='";
    case Tok::kShrAssign: return "'>>='";
    case Tok::kPlus: return "'+'";
    case Tok::kMinus: return "'-'";
    case Tok::kStar: return "'*'";
    case Tok::kSlash: return "'/'";
    case Tok::kPercent: return "'%'";
    case Tok::kAmp: return "'&'";
    case Tok::kPipe: return "'|'";
    case Tok::kCaret: return "'^'";
    case Tok::kTilde: return "'~'";
    case Tok::kShl: return "'<<'";
    case Tok::kShr: return "'>>'";
    case Tok::kAmpAmp: return "'&&'";
    case Tok::kPipePipe: return "'||'";
    case Tok::kBang: return "'!'";
    case Tok::kEq: return "'=='";
    case Tok::kNe: return "'!='";
    case Tok::kLt: return "'<'";
    case Tok::kGt: return "'>'";
    case Tok::kLe: return "'<='";
    case Tok::kGe: return "'>='";
    case Tok::kPlusPlus: return "'++'";
    case Tok::kMinusMinus: return "'--'";
  }
  return "?";
}

namespace {

const std::unordered_map<std::string, Tok>& keywords() {
  static const std::unordered_map<std::string, Tok> kw = {
      {"void", Tok::kKwVoid},       {"int", Tok::kKwInt},
      {"u8", Tok::kKwU8},           {"u16", Tok::kKwU16},
      {"u32", Tok::kKwU32},         {"s8", Tok::kKwS8},
      {"s16", Tok::kKwS16},         {"s32", Tok::kKwS32},
      {"cstring", Tok::kKwCString}, {"struct", Tok::kKwStruct},
      {"const", Tok::kKwConst},     {"static", Tok::kKwStatic},
      {"inline", Tok::kKwInline},   {"if", Tok::kKwIf},
      {"else", Tok::kKwElse},       {"while", Tok::kKwWhile},
      {"for", Tok::kKwFor},         {"do", Tok::kKwDo},
      {"return", Tok::kKwReturn},   {"break", Tok::kKwBreak},
      {"continue", Tok::kKwContinue}, {"switch", Tok::kKwSwitch},
      {"case", Tok::kKwCase},       {"default", Tok::kKwDefault},
  };
  return kw;
}

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Raw scanner: produces tokens without macro expansion. Directive handling
/// and expansion are layered on top.
class Scanner {
 public:
  Scanner(const support::SourceBuffer& buf, support::DiagnosticEngine& diags)
      : buf_(buf), diags_(diags) {}

  char peek(int ahead = 0) const {
    size_t i = loc_.offset + static_cast<size_t>(ahead);
    return i < buf_.text().size() ? buf_.text()[i] : '\0';
  }
  char advance() {
    char c = peek();
    if (c == '\0') return c;
    ++loc_.offset;
    if (c == '\n') {
      ++loc_.line;
      loc_.column = 1;
    } else {
      ++loc_.column;
    }
    return c;
  }
  bool match(char expected) {
    if (peek() != expected) return false;
    advance();
    return true;
  }

  /// Skips spaces and comments but NOT newlines (directives are line-based).
  void skip_spaces_and_comments() {
    for (;;) {
      char c = peek();
      if (c == ' ' || c == '\t' || c == '\r') {
        advance();
      } else if (c == '/' && peek(1) == '/') {
        while (peek() != '\n' && peek() != '\0') advance();
      } else if (c == '/' && peek(1) == '*') {
        advance();
        advance();
        while (!(peek() == '*' && peek(1) == '/') && peek() != '\0') advance();
        if (peek() != '\0') {
          advance();
          advance();
        }
      } else {
        return;
      }
    }
  }

  /// True if positioned at end of line / file.
  bool at_eol() {
    skip_spaces_and_comments();
    return peek() == '\n' || peek() == '\0';
  }

  void skip_all_whitespace() {
    for (;;) {
      skip_spaces_and_comments();
      if (peek() == '\n') {
        advance();
      } else {
        return;
      }
    }
  }

  Token next_raw() {
    support::SourceLoc begin = loc_;
    char c = peek();
    Token t;
    t.loc = begin;

    if (c == '\0') {
      t.kind = Tok::kEof;
      return t;
    }

    if (is_ident_start(c)) {
      std::string text;
      while (is_ident_char(peek())) text += advance();
      auto it = keywords().find(text);
      t.kind = it != keywords().end() ? it->second : Tok::kIdent;
      t.text = std::move(text);
      return t;
    }

    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::string text;
      if (c == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
        text += advance();
        text += advance();
        while (std::isxdigit(static_cast<unsigned char>(peek())))
          text += advance();
        if (text.size() == 2) {
          diags_.error("MC010", begin, "incomplete hexadecimal literal");
          text += "0";
        }
        t.int_base = 16;
        t.int_value = std::stoull(text.substr(2), nullptr, 16);
      } else if (c == '0' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
        while (peek() >= '0' && peek() <= '7') text += advance();
        t.int_base = 8;
        t.int_value = std::stoull(text, nullptr, 8);
      } else {
        while (std::isdigit(static_cast<unsigned char>(peek())))
          text += advance();
        t.int_base = 10;
        t.int_value = std::stoull(text, nullptr, 10);
      }
      // Integer suffixes (u, U, l, L) are accepted and ignored, as in the
      // kernel sources the paper mutates.
      while (peek() == 'u' || peek() == 'U' || peek() == 'l' || peek() == 'L')
        text += advance();
      t.kind = Tok::kIntLit;
      t.text = std::move(text);
      return t;
    }

    if (c == '"') {
      advance();
      std::string text;
      while (peek() != '"' && peek() != '\n' && peek() != '\0') {
        char ch = advance();
        if (ch == '\\') {
          char esc = advance();
          switch (esc) {
            case 'n': text += '\n'; break;
            case 't': text += '\t'; break;
            case '\\': text += '\\'; break;
            case '"': text += '"'; break;
            default: text += esc; break;
          }
        } else {
          text += ch;
        }
      }
      if (!match('"')) {
        diags_.error("MC011", begin, "unterminated string literal");
      }
      t.kind = Tok::kStringLit;
      t.text = std::move(text);
      return t;
    }

    advance();
    auto two = [&](char second, Tok yes, Tok no) {
      t.kind = match(second) ? yes : no;
    };
    switch (c) {
      case '(': t.kind = Tok::kLParen; break;
      case ')': t.kind = Tok::kRParen; break;
      case '{': t.kind = Tok::kLBrace; break;
      case '}': t.kind = Tok::kRBrace; break;
      case '[': t.kind = Tok::kLBracket; break;
      case ']': t.kind = Tok::kRBracket; break;
      case ';': t.kind = Tok::kSemi; break;
      case ',': t.kind = Tok::kComma; break;
      case '.': t.kind = Tok::kDot; break;
      case ':': t.kind = Tok::kColon; break;
      case '?': t.kind = Tok::kQuestion; break;
      case '~': t.kind = Tok::kTilde; break;
      case '+':
        if (match('+')) t.kind = Tok::kPlusPlus;
        else two('=', Tok::kPlusAssign, Tok::kPlus);
        break;
      case '-':
        if (match('-')) t.kind = Tok::kMinusMinus;
        else two('=', Tok::kMinusAssign, Tok::kMinus);
        break;
      case '*': t.kind = Tok::kStar; break;
      case '/': t.kind = Tok::kSlash; break;
      case '%': t.kind = Tok::kPercent; break;
      case '^': two('=', Tok::kXorAssign, Tok::kCaret); break;
      case '!': two('=', Tok::kNe, Tok::kBang); break;
      case '=': two('=', Tok::kEq, Tok::kAssign); break;
      case '&':
        if (match('&')) t.kind = Tok::kAmpAmp;
        else two('=', Tok::kAndAssign, Tok::kAmp);
        break;
      case '|':
        if (match('|')) t.kind = Tok::kPipePipe;
        else two('=', Tok::kOrAssign, Tok::kPipe);
        break;
      case '<':
        if (match('<')) two('=', Tok::kShlAssign, Tok::kShl);
        else two('=', Tok::kLe, Tok::kLt);
        break;
      case '>':
        if (match('>')) two('=', Tok::kShrAssign, Tok::kShr);
        else two('=', Tok::kGe, Tok::kGt);
        break;
      default:
        diags_.error("MC012", begin,
                     std::string("unexpected character '") + c + "'");
        t.kind = Tok::kEof;
        break;
    }
    t.text = buf_.slice({begin, loc_});
    return t;
  }

  support::SourceLoc loc_;
  const support::SourceBuffer& buf_;
  support::DiagnosticEngine& diags_;
};

}  // namespace

LexOutput lex_unit(const support::SourceBuffer& buf,
                   support::DiagnosticEngine& diags,
                   const LexOptions& options) {
  LexOutput out;
  Scanner sc(buf, diags);
  sc.loc_.line += options.line_offset;
  MacroTable& macros = out.macros;

  // Definitions from the preceding buffer(s), consulted after local ones.
  auto find_macro = [&](const std::string& name) -> const std::vector<Token>* {
    if (auto it = macros.find(name); it != macros.end()) return &it->second;
    if (options.seed_macros) {
      if (auto it = options.seed_macros->find(name);
          it != options.seed_macros->end()) {
        return &it->second;
      }
    }
    return nullptr;
  };

  // File tag used by __FILE__ (the generated header name for Devil stubs).
  Token file_tok;
  file_tok.kind = Tok::kStringLit;
  file_tok.text = buf.name();

  // Tags a freshly scanned token with its mutation-site id when its byte
  // span matches a span exactly. `end` is the scanner offset just past the
  // token (next_raw leaves it there).
  const std::vector<SiteSpan>* spans = options.site_spans;
  auto tag_site = [&](Token& t, size_t end) {
    if (!spans || spans->empty() || end <= t.loc.offset) return;
    uint32_t off = static_cast<uint32_t>(t.loc.offset);
    uint32_t len = static_cast<uint32_t>(end - t.loc.offset);
    auto it = std::lower_bound(
        spans->begin(), spans->end(), off,
        [](const SiteSpan& s, uint32_t o) { return s.offset < o; });
    if (it != spans->end() && it->offset == off && it->length == len) {
      t.site = it->id;
    }
  };

  // Expands `tok` (an identifier) into `out.tokens`, recursively.
  auto expand = [&](const Token& tok, auto&& self, int depth) -> void {
    if (tok.kind == Tok::kIdent) {
      if (tok.text == "__FILE__") {
        Token t = file_tok;
        t.loc = tok.loc;
        t.from_expansion = true;
        out.tokens.push_back(std::move(t));
        return;
      }
      if (const std::vector<Token>* body = find_macro(tok.text)) {
        if (depth > 16) {
          diags.error("MC013", tok.loc,
                      "macro expansion too deep (recursive #define?)");
          return;
        }
        out.macro_use_lines[tok.text].insert(tok.loc.line);
        // A single-int-literal body inherits the *use* token's site tag: a
        // rename of the macro-use identifier lands exactly where the value
        // lowered. Longer bodies keep their own (define-body) tags, whose
        // sites the patcher refuses — use-site provenance would be ambiguous.
        const bool single_int =
            body->size() == 1 && (*body)[0].kind == Tok::kIntLit;
        for (const Token& body_tok : *body) {
          Token t = body_tok;
          t.loc = tok.loc;  // use-site location, as a C compiler reports
          t.from_expansion = true;
          if (single_int) t.site = tok.site;
          self(t, self, depth + 1);
        }
        return;
      }
    }
    out.tokens.push_back(tok);
  };

  for (;;) {
    sc.skip_all_whitespace();
    if (sc.peek() == '#') {
      support::SourceLoc dloc = sc.loc_;
      sc.advance();
      Token directive = sc.next_raw();
      if (directive.kind != Tok::kIdent || directive.text != "define") {
        diags.error("MC014", dloc, "unsupported preprocessor directive");
        // Skip to end of line.
        while (!sc.at_eol()) sc.next_raw();
        continue;
      }
      sc.skip_spaces_and_comments();
      Token name = sc.next_raw();
      if (name.kind != Tok::kIdent) {
        diags.error("MC015", name.loc, "expected macro name after #define");
        while (!sc.at_eol()) sc.next_raw();
        continue;
      }
      std::vector<Token> body;
      while (!sc.at_eol()) {
        sc.skip_spaces_and_comments();
        if (sc.peek() == '\n' || sc.peek() == '\0') break;
        Token body_tok = sc.next_raw();
        tag_site(body_tok, sc.loc_.offset);
        body.push_back(std::move(body_tok));
      }
      if (find_macro(name.text)) {
        diags.error("MC016", name.loc,
                    "macro '" + name.text + "' redefined");
      }
      macros[name.text] = std::move(body);
      continue;
    }
    Token t = sc.next_raw();
    if (t.kind == Tok::kEof) {
      out.tokens.push_back(std::move(t));
      break;
    }
    tag_site(t, sc.loc_.offset);
    expand(t, expand, 0);
  }
  return out;
}

}  // namespace minic
