#include "hw/ide_disk.h"

#include <cstring>

namespace hw {

IdeDisk::IdeDisk(uint32_t sectors) : total_sectors_(sectors) {
  build_image();
  build_identify();
  pristine_ = image_;
}

void IdeDisk::build_image() {
  image_.assign(static_cast<size_t>(total_sectors_) * kSectorWords, 0);

  // --- MBR (sector 0) ---
  // One active Linux partition starting at LBA partition_start().
  auto put_byte = [&](uint32_t sector, uint32_t byte_off, uint8_t v) {
    uint16_t& w = image_[sector * kSectorWords + byte_off / 2];
    if (byte_off % 2 == 0) {
      w = static_cast<uint16_t>((w & 0xff00) | v);
    } else {
      w = static_cast<uint16_t>((w & 0x00ff) | (v << 8));
    }
  };
  const uint32_t entry = 0x1be;
  put_byte(0, entry + 0, 0x80);   // bootable
  put_byte(0, entry + 4, 0x83);   // Linux
  uint32_t start = partition_start();
  uint32_t size = total_sectors_ - start;
  for (int i = 0; i < 4; ++i) {
    put_byte(0, entry + 8 + i, static_cast<uint8_t>(start >> (8 * i)));
    put_byte(0, entry + 12 + i, static_cast<uint8_t>(size >> (8 * i)));
  }
  put_byte(0, 0x1fe, 0x55);
  put_byte(0, 0x1ff, 0xaa);

  // --- mock superblock at the partition start ---
  uint32_t sb = partition_start();
  image_[sb * kSectorWords + 0] = fs_magic();
  image_[sb * kSectorWords + 1] = 0x0001;  // fs revision
  image_[sb * kSectorWords + 2] = static_cast<uint16_t>(size & 0xffff);
  image_[sb * kSectorWords + 3] = static_cast<uint16_t>(size >> 16);

  // Recognisable payload elsewhere (so wrong-sector reads differ).
  for (uint32_t s = sb + 1; s < total_sectors_; ++s) {
    for (uint32_t w = 0; w < 4; ++w) {
      image_[s * kSectorWords + w] = static_cast<uint16_t>(s * 7 + w);
    }
  }
}

void IdeDisk::build_identify() {
  identify_.fill(0);
  identify_[0] = 0x0040;  // fixed disk
  identify_[1] = 16;      // cylinders
  identify_[3] = 4;       // heads
  identify_[6] = 16;      // sectors per track
  const char model[] = "DEVIL REPRO IDE DISK                    ";
  for (int i = 0; i < 20; ++i) {
    identify_[27 + i] = static_cast<uint16_t>(
        (static_cast<uint8_t>(model[2 * i]) << 8) |
        static_cast<uint8_t>(model[2 * i + 1]));
  }
  identify_[49] = 0x0200;  // LBA supported
  identify_[60] = static_cast<uint16_t>(total_sectors_ & 0xffff);
  identify_[61] = static_cast<uint16_t>(total_sectors_ >> 16);
}

void IdeDisk::reset() {
  // The pristine copy is only needed when a boot actually wrote the disk;
  // clean boots (the overwhelming majority of campaign mutants) reset with
  // a plain register wipe.
  if (disk_written_) image_ = pristine_;
  error_ = 0;
  features_ = 0;
  nsector_ = 1;
  lba_low_ = lba_mid_ = lba_high_ = 0;
  select_ = 0xa0;
  status_ = kReady | kSeek;
  phase_ = Phase::kIdle;
  busy_reads_ = 0;
  drq_hold_ = 0;
  buffer_.clear();
  buffer_pos_ = 0;
  cur_lba_ = 0;
  sectors_left_ = 0;
  disk_written_ = false;
  partition_destroyed_ = false;
  protocol_violations_ = 0;
  sectors_read_ = 0;
}

IdeDiskPool::IdeDiskPool()
    : pool_([] { return std::make_shared<IdeDisk>(); }) {}

std::shared_ptr<IdeDisk> IdeDiskPool::acquire() {
  return std::static_pointer_cast<IdeDisk>(pool_.acquire());
}

void IdeDiskPool::release(std::shared_ptr<IdeDisk> disk) {
  pool_.release(std::move(disk));
}

std::string IdeDisk::damage_note() const {
  if (partition_destroyed_) return "partition table overwritten";
  if (disk_written_) return "disk image modified during boot";
  return "excessive protocol violations";
}

uint32_t IdeDisk::lba() const {
  return static_cast<uint32_t>(lba_low_) |
         (static_cast<uint32_t>(lba_mid_) << 8) |
         (static_cast<uint32_t>(lba_high_) << 16) |
         (static_cast<uint32_t>(select_ & 0x0f) << 24);
}

uint32_t IdeDisk::read(uint32_t offset, int width) {
  // The absent slave drive pulls everything low.
  if (!master_selected() && offset != 6) return 0;

  switch (offset) {
    case 0: {  // DATA
      if (phase_ != Phase::kPioRead || buffer_pos_ >= buffer_.size()) {
        ++protocol_violations_;
        return width >= 16 ? 0xffffu : 0xffu;
      }
      uint16_t w = buffer_[buffer_pos_++];
      if (buffer_pos_ == buffer_.size()) {
        phase_ = Phase::kIdle;
        status_ = kReady | kSeek;
      }
      if (width < 16) {
        // 8-bit read of the 16-bit data port: a classic driver bug; hand
        // back the low byte and flag the protocol violation.
        ++protocol_violations_;
        return w & 0xffu;
      }
      return w;
    }
    case 1:
      return error_;
    case 2:
      return nsector_;
    case 3:
      return lba_low_;
    case 4:
      return lba_mid_;
    case 5:
      return lba_high_;
    case 6:
      return select_ | 0xa0;
    case 7: {  // STATUS
      if (busy_reads_ > 0) {
        --busy_reads_;
        return kBusy;
      }
      if (drq_hold_ > 0) {
        // Data-transfer setup time: BSY has cleared but DRQ is not yet
        // raised, as on real drives; the driver's DRQ poll loop iterates.
        --drq_hold_;
        return static_cast<uint32_t>(status_ & ~kDrq);
      }
      return status_;
    }
    default:
      ++protocol_violations_;
      return 0xff;
  }
}

void IdeDisk::write(uint32_t offset, uint32_t value, int width) {
  uint8_t v = static_cast<uint8_t>(value);
  switch (offset) {
    case 0: {  // DATA
      if (phase_ != Phase::kPioWrite) {
        ++protocol_violations_;
        return;
      }
      if (width < 16) ++protocol_violations_;
      if (buffer_pos_ < buffer_.size()) {
        buffer_[buffer_pos_++] = static_cast<uint16_t>(value);
      }
      if (buffer_pos_ == buffer_.size()) finish_write_sector();
      return;
    }
    case 1:
      features_ = v;
      return;
    case 2:
      nsector_ = v;
      return;
    case 3:
      lba_low_ = v;
      return;
    case 4:
      lba_mid_ = v;
      return;
    case 5:
      lba_high_ = v;
      return;
    case 6:
      select_ = v;
      return;
    case 7:
      if (!master_selected()) return;  // no slave to take commands
      start_command(v);
      // INTRQ asserts once per accepted command (simplified ATA: one
      // completion interrupt, including error completions). No-op until the
      // bus wires a line, so polled boots are untouched.
      raise_irq();
      return;
    default:
      ++protocol_violations_;
      return;
  }
}

void IdeDisk::start_command(uint8_t cmd) {
  error_ = 0;
  busy_reads_ = 2;  // a couple of BSY polls before completion
  drq_hold_ = 2;    // then a couple of polls before DRQ comes up

  // RECALIBRATE is a 16-command band (0x10..0x1f).
  if ((cmd & 0xf0) == 0x10) {
    status_ = kReady | kSeek;
    return;
  }

  switch (cmd) {
    case 0xec: {  // IDENTIFY DEVICE
      buffer_.assign(identify_.begin(), identify_.end());
      buffer_pos_ = 0;
      phase_ = Phase::kPioRead;
      status_ = kReady | kSeek | kDrq;
      return;
    }
    case 0x20:
    case 0x21: {  // READ SECTORS (with/without retry)
      uint32_t count = nsector_ == 0 ? 256 : nsector_;
      uint32_t start = lba();
      if (start + count > total_sectors_) {
        status_ = kReady | kErr;
        error_ = kIdnf;
        phase_ = Phase::kIdle;
        return;
      }
      buffer_.assign(image_.begin() + start * kSectorWords,
                     image_.begin() + (start + count) * kSectorWords);
      buffer_pos_ = 0;
      sectors_read_ += count;
      phase_ = Phase::kPioRead;
      status_ = kReady | kSeek | kDrq;
      return;
    }
    case 0x30:
    case 0x31: {  // WRITE SECTORS
      uint32_t count = nsector_ == 0 ? 256 : nsector_;
      uint32_t start = lba();
      if (start + count > total_sectors_) {
        status_ = kReady | kErr;
        error_ = kIdnf;
        phase_ = Phase::kIdle;
        return;
      }
      cur_lba_ = start;
      sectors_left_ = count;
      buffer_.assign(kSectorWords, 0);
      buffer_pos_ = 0;
      phase_ = Phase::kPioWrite;
      status_ = kReady | kSeek | kDrq;
      return;
    }
    case 0x91:  // INITIALIZE DEVICE PARAMETERS
      status_ = kReady | kSeek;
      return;
    default:
      // Unknown command: abort.
      status_ = kReady | kErr;
      error_ = kAbrt;
      phase_ = Phase::kIdle;
      return;
  }
}

void IdeDisk::finish_write_sector() {
  std::memcpy(&image_[cur_lba_ * kSectorWords], buffer_.data(),
              kSectorWords * sizeof(uint16_t));
  disk_written_ = true;
  if (cur_lba_ == 0) partition_destroyed_ = true;
  ++cur_lba_;
  --sectors_left_;
  if (sectors_left_ == 0) {
    phase_ = Phase::kIdle;
    status_ = kReady | kSeek;
  } else {
    buffer_.assign(kSectorWords, 0);
    buffer_pos_ = 0;
    status_ = kReady | kSeek | kDrq;
  }
}

}  // namespace hw
