#include "hw/misc_devices.h"

namespace hw {

// ---- Ne2000 ---------------------------------------------------------------

void Ne2000::reset() {
  cmd_ = 0x21;
  isr_ = 0;
  for (auto& p : pages_) p.fill(0);
}

uint32_t Ne2000::read(uint32_t offset, int width) {
  (void)width;
  if (offset == kCmd) return cmd_;
  if (offset == kReset) {
    // Reading the reset port resets the NIC and latches ISR.RST.
    cmd_ = 0x21;
    isr_ = 0x80;
    return 0;
  }
  int page = (cmd_ >> 6) & 1;
  if (offset >= 1 && offset <= 0x0f) {
    if (page == 0 && offset == kIsr) return isr_;
    return pages_[static_cast<size_t>(page)][offset];
  }
  return 0xff;
}

void Ne2000::write(uint32_t offset, uint32_t value, int width) {
  (void)width;
  uint8_t v = static_cast<uint8_t>(value);
  if (offset == kCmd) {
    cmd_ = v;
    if (v & 0x02) isr_ &= static_cast<uint8_t>(~0x80);  // start clears RST
    return;
  }
  int page = (cmd_ >> 6) & 1;
  if (offset >= 1 && offset <= 0x0f) {
    if (page == 0 && offset == kIsr) {
      isr_ &= static_cast<uint8_t>(~v);  // write-1-to-clear
      return;
    }
    pages_[static_cast<size_t>(page)][offset] = v;
  }
}

// ---- PciBusMaster -----------------------------------------------------------

void PciBusMaster::reset() {
  command_.fill(0);
  status_.fill(0);
  prd_.fill(0);
}

uint32_t PciBusMaster::read(uint32_t offset, int width) {
  int ch = offset >= 8 ? 1 : 0;
  uint32_t rel = offset & 7;
  switch (rel) {
    case 0:
      return command_[ch];
    case 2:
      return status_[ch];
    case 4:
      if (width >= 32) return prd_[ch];
      return prd_[ch] & 0xff;
    default:
      return 0;
  }
}

void PciBusMaster::write(uint32_t offset, uint32_t value, int width) {
  int ch = offset >= 8 ? 1 : 0;
  uint32_t rel = offset & 7;
  switch (rel) {
    case 0:
      command_[ch] = static_cast<uint8_t>(value & 0x09);  // start + direction
      if (value & 0x01) {
        status_[ch] |= 0x01;  // active
      } else {
        status_[ch] &= static_cast<uint8_t>(~0x01);
      }
      return;
    case 2:
      // Error/IRQ bits are write-1-to-clear; the active bit is read-only.
      status_[ch] &= static_cast<uint8_t>(~(value & 0x06));
      return;
    case 4:
      if (width >= 32) {
        prd_[ch] = value & ~3u;  // PRD table is dword-aligned
      }
      return;
    default:
      return;
  }
}

// ---- Permedia2 ----------------------------------------------------------------

void Permedia2::reset() {
  regs_.fill(0);
  fifo_space_ = 32;
}

uint32_t Permedia2::read(uint32_t offset, int width) {
  (void)width;
  uint32_t reg = offset;  // the bus maps one port per 32-bit register
  switch (reg) {
    case 0:  // reset status: always done
      return 0;
    case 1:  // FIFO space
      return static_cast<uint32_t>(fifo_space_);
    default:
      return reg < regs_.size() ? regs_[reg] : 0xffffffffu;
  }
}

void Permedia2::write(uint32_t offset, uint32_t value, int width) {
  (void)width;
  uint32_t reg = offset;  // one port per 32-bit register
  if (reg == 0) {  // soft reset
    reset();
    return;
  }
  if (reg < regs_.size()) {
    regs_[reg] = value;
    if (fifo_space_ > 0) --fifo_space_;
    if (fifo_space_ == 0) fifo_space_ = 32;  // drained instantly
  }
}

}  // namespace hw
