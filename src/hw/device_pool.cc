#include "hw/device_pool.h"

#include <cassert>
#include <stdexcept>
#include <utility>

#include "support/metrics.h"

namespace hw {

DevicePool::DevicePool(Factory factory) : factory_(std::move(factory)) {}

void DevicePool::set_factory(Factory factory) {
  std::lock_guard<std::mutex> lock(mu_);
  factory_ = std::move(factory);
  // Devices built by a previous factory must not leak into the new type.
  free_.clear();
}

std::shared_ptr<Device> DevicePool::acquire() {
  std::shared_ptr<Device> dev;
  Factory factory;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!free_.empty()) {
      dev = std::move(free_.back());
      free_.pop_back();
    } else {
      factory = factory_;
    }
  }
  if (dev) {
    // reset() runs outside the lock: the device is exclusively ours (the
    // release-side use_count guard keeps shared devices out of the pool),
    // and the lock hand-off orders the previous boot's writes before it.
    dev->reset();
    support::Metrics::add_pool_recycled(1);
    return dev;
  }
  if (!factory) {
    throw std::logic_error("DevicePool: no device factory configured");
  }
  support::Metrics::add_pool_fresh(1);
  // The factory also runs unlocked; it must be thread-safe.
  return factory();
}

void DevicePool::release(std::shared_ptr<Device> dev) {
  if (!dev) return;
  // A device someone else still references (e.g. an IoBus mapping that was
  // not dropped first) must not re-enter the pool: a later acquire() would
  // hand the same device to a concurrent boot. Fail loud in debug builds
  // and simply let the device die (never reuse it) otherwise.
  assert(dev.use_count() == 1 && "release() while the device is still mapped");
  if (dev.use_count() != 1) return;
  // Unwire the interrupt output: the bus (and any shim chain) this device
  // raised into is being torn down, and a pooled device must never raise
  // into a dead bus when its next boot's raise points fire before map().
  dev->attach_irq(nullptr, -1);
  std::lock_guard<std::mutex> lock(mu_);
  free_.push_back(std::move(dev));
}

size_t DevicePool::idle() const {
  std::lock_guard<std::mutex> lock(mu_);
  return free_.size();
}

}  // namespace hw
