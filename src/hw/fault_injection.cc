#include "hw/fault_injection.h"

#include <sstream>
#include <utility>

namespace hw {

namespace {

/// All-ones for the access width — what an unterminated ISA bus reads as
/// (io_bus.cc models unmapped ports the same way).
uint32_t width_ones(int width) {
  return width >= 32 ? 0xffffffffu : (1u << width) - 1u;
}

}  // namespace

const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kStuckZero: return "stuck0";
    case FaultKind::kStuckOne: return "stuck1";
    case FaultKind::kFlipOnce: return "flip";
    case FaultKind::kDropWrite: return "drop-write";
    case FaultKind::kFloatingBus: return "floating";
    case FaultKind::kNeverReady: return "never-ready";
  }
  return "?";
}

std::string FaultPlan::describe() const {
  std::ostringstream os;
  os << fault_kind_name(kind);
  if (kind == FaultKind::kStuckZero || kind == FaultKind::kStuckOne ||
      kind == FaultKind::kFlipOnce) {
    os << " mask 0x" << std::hex << mask << std::dec;
  }
  if (kind == FaultKind::kNeverReady) {
    os << " value 0x" << std::hex << value << std::dec;
  }
  os << " at port 0x" << std::hex << port << std::dec << " after " << after;
  return os.str();
}

FaultInjector::FaultInjector(std::shared_ptr<Device> inner, uint32_t port_base,
                             FaultPlan plan)
    : inner_(std::move(inner)), port_base_(port_base), plan_(plan) {}

uint32_t FaultInjector::read(uint32_t offset, int width) {
  if (!plan_.is_read_fault() || port_base_ + offset != plan_.port) {
    return inner_->read(offset, width);
  }
  const uint64_t seq = matched_++;  // 0-based index of this matching read
  if (seq < plan_.after) return inner_->read(offset, width);
  switch (plan_.kind) {
    case FaultKind::kStuckZero:
      ++fired_;
      return inner_->read(offset, width) & ~plan_.mask;
    case FaultKind::kStuckOne:
      ++fired_;
      return (inner_->read(offset, width) | plan_.mask) & width_ones(width);
    case FaultKind::kFlipOnce:
      if (seq > plan_.after) return inner_->read(offset, width);
      ++fired_;
      return (inner_->read(offset, width) ^ plan_.mask) & width_ones(width);
    case FaultKind::kFloatingBus:
      // The card is gone: the device must not see the read (no side
      // effects, e.g. no index-selected data rotation, no BSY countdown).
      ++fired_;
      return width_ones(width);
    case FaultKind::kNeverReady:
      ++fired_;
      return plan_.value & width_ones(width);
    case FaultKind::kDropWrite:
      break;  // unreachable: is_read_fault() excluded it
  }
  return inner_->read(offset, width);
}

void FaultInjector::write(uint32_t offset, uint32_t value, int width) {
  if (plan_.kind == FaultKind::kDropWrite &&
      port_base_ + offset == plan_.port) {
    const uint64_t seq = matched_++;
    if (seq == plan_.after) {
      ++fired_;  // this one write is lost on the bus
      return;
    }
  }
  inner_->write(offset, value, width);
}

void FaultInjector::reset() {
  inner_->reset();
  matched_ = 0;
  fired_ = 0;
}

}  // namespace hw
