#include "hw/fault_injection.h"

#include <sstream>
#include <utility>

namespace hw {

namespace {

/// All-ones for the access width — what an unterminated ISA bus reads as
/// (io_bus.cc models unmapped ports the same way).
uint32_t width_ones(int width) {
  return width >= 32 ? 0xffffffffu : (1u << width) - 1u;
}

}  // namespace

const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kStuckZero: return "stuck0";
    case FaultKind::kStuckOne: return "stuck1";
    case FaultKind::kFlipOnce: return "flip";
    case FaultKind::kDropWrite: return "drop-write";
    case FaultKind::kFloatingBus: return "floating";
    case FaultKind::kNeverReady: return "never-ready";
    case FaultKind::kLostIrq: return "lost-irq";
    case FaultKind::kSpuriousIrq: return "spurious-irq";
    case FaultKind::kIrqStorm: return "irq-storm";
    case FaultKind::kDelayIrq: return "delay-irq";
  }
  return "?";
}

std::string FaultPlan::describe() const {
  std::ostringstream os;
  os << fault_kind_name(kind);
  if (is_event_fault()) {
    // `port` is the IRQ line here; `after` counts raises (spurious: device
    // accesses) — e.g. "irq-storm x8 on line 6 after 1".
    if (kind == FaultKind::kIrqStorm) os << " x" << value;
    if (kind == FaultKind::kDelayIrq) os << " +" << value << " steps";
    os << " on line " << port << " after " << after;
    return os.str();
  }
  if (kind == FaultKind::kStuckZero || kind == FaultKind::kStuckOne ||
      kind == FaultKind::kFlipOnce) {
    os << " mask 0x" << std::hex << mask << std::dec;
  }
  if (kind == FaultKind::kNeverReady) {
    os << " value 0x" << std::hex << value << std::dec;
  }
  os << " at port 0x" << std::hex << port << std::dec << " after " << after;
  return os.str();
}

FaultInjector::FaultInjector(std::shared_ptr<Device> inner, uint32_t port_base,
                             FaultPlan plan)
    : inner_(std::move(inner)), port_base_(port_base), plan_(plan) {}

void FaultInjector::maybe_inject_spurious() {
  if (plan_.kind != FaultKind::kSpuriousIrq) return;
  const uint64_t seq = access_seq_++;  // 0-based index of this access
  if (seq != plan_.after) return;
  if (IrqSink* out = irq_sink()) {
    // The spurious edge arrives while the CPU is mid-I/O: deliverable at
    // the very next charge-step boundary, in-service bit never latched.
    out->raise_irq(static_cast<int>(plan_.port), /*delay_steps=*/0,
                   /*genuine=*/false);
    ++fired_;
  }
}

uint32_t FaultInjector::read(uint32_t offset, int width) {
  maybe_inject_spurious();
  if (!plan_.is_read_fault() || port_base_ + offset != plan_.port) {
    return inner_->read(offset, width);
  }
  const uint64_t seq = matched_++;  // 0-based index of this matching read
  if (seq < plan_.after) return inner_->read(offset, width);
  switch (plan_.kind) {
    case FaultKind::kStuckZero:
      ++fired_;
      return inner_->read(offset, width) & ~plan_.mask;
    case FaultKind::kStuckOne:
      ++fired_;
      return (inner_->read(offset, width) | plan_.mask) & width_ones(width);
    case FaultKind::kFlipOnce:
      if (seq > plan_.after) return inner_->read(offset, width);
      ++fired_;
      return (inner_->read(offset, width) ^ plan_.mask) & width_ones(width);
    case FaultKind::kFloatingBus:
      // The card is gone: the device must not see the read (no side
      // effects, e.g. no index-selected data rotation, no BSY countdown).
      ++fired_;
      return width_ones(width);
    case FaultKind::kNeverReady:
      ++fired_;
      return plan_.value & width_ones(width);
    case FaultKind::kDropWrite:
    case FaultKind::kLostIrq:
    case FaultKind::kSpuriousIrq:
    case FaultKind::kIrqStorm:
    case FaultKind::kDelayIrq:
      break;  // unreachable: is_read_fault() excluded them
  }
  return inner_->read(offset, width);
}

void FaultInjector::write(uint32_t offset, uint32_t value, int width) {
  maybe_inject_spurious();
  if (plan_.kind == FaultKind::kDropWrite &&
      port_base_ + offset == plan_.port) {
    const uint64_t seq = matched_++;
    if (seq == plan_.after) {
      ++fired_;  // this one write is lost on the bus
      return;
    }
  }
  inner_->write(offset, value, width);
}

void FaultInjector::reset() {
  inner_->reset();
  matched_ = 0;
  fired_ = 0;
  raise_seq_ = 0;
  access_seq_ = 0;
}

void FaultInjector::attach_irq(IrqSink* sink, int line) {
  Device::attach_irq(sink, line);
  // Interpose on the raise chain: the wrapped device now raises into this
  // shim, which forwards (or tampers) toward the real sink. Detach (sink ==
  // nullptr, pool recycling) unwires the whole chain.
  inner_->attach_irq(sink != nullptr ? static_cast<IrqSink*>(this) : nullptr,
                     line);
}

void FaultInjector::raise_irq(int line, uint64_t delay_steps, bool genuine) {
  IrqSink* out = irq_sink();
  if (out == nullptr) return;
  if (!genuine || !plan_.is_event_fault() ||
      static_cast<uint32_t>(line) != plan_.port) {
    out->raise_irq(line, delay_steps, genuine);
    return;
  }
  switch (plan_.kind) {
    case FaultKind::kLostIrq: {
      const uint64_t seq = raise_seq_++;  // 0-based index of this raise
      if (seq == plan_.after) {
        ++fired_;  // the edge is lost on the wire
        return;
      }
      break;
    }
    case FaultKind::kIrqStorm: {
      const uint64_t seq = raise_seq_++;
      if (seq == plan_.after) {
        ++fired_;
        const uint32_t repeats = plan_.value != 0 ? plan_.value : 1;
        for (uint32_t i = 0; i < repeats; ++i) {
          out->raise_irq(line, delay_steps, true);
        }
        return;
      }
      break;
    }
    case FaultKind::kDelayIrq: {
      const uint64_t seq = raise_seq_++;
      if (seq == plan_.after) {
        ++fired_;
        out->raise_irq(line, delay_steps + plan_.value, true);
        return;
      }
      break;
    }
    default:
      break;  // kSpuriousIrq injects from the access path, raises forward
  }
  out->raise_irq(line, delay_steps, genuine);
}

}  // namespace hw
