#include "hw/io_bus.h"

#include <sstream>
#include <stdexcept>

namespace hw {

void IoBus::map(uint32_t base, uint32_t length, std::shared_ptr<Device> dev) {
  for (const auto& m : mappings_) {
    if (base < m.base + m.length && m.base < base + length) {
      std::ostringstream os;
      os << "I/O range overlap: " << dev->name() << " at 0x" << std::hex
         << base << " collides with " << m.dev->name();
      throw std::invalid_argument(os.str());
    }
  }
  mappings_.push_back(Mapping{base, length, std::move(dev)});
}

IoBus::Mapping* IoBus::find(uint32_t port) {
  for (auto& m : mappings_) {
    if (port >= m.base && port < m.base + m.length) return &m;
  }
  return nullptr;
}

void IoBus::record(bool is_write, uint32_t port, uint32_t value, int width) {
  if (!trace_enabled_) return;
  if (trace_.size() >= trace_cap_) trace_.erase(trace_.begin());
  trace_.push_back(IoAccess{is_write, port, value, width});
}

uint32_t IoBus::io_in(uint32_t port, int width) {
  port &= 0xffff;  // x86 I/O space is 16-bit
  uint32_t v;
  if (Mapping* m = find(port)) {
    v = m->dev->read(port - m->base, width);
  } else {
    ++unmapped_;
    // Open bus floats high.
    v = width >= 32 ? 0xffffffffu : (width >= 16 ? 0xffffu : 0xffu);
  }
  record(false, port, v, width);
  return v;
}

void IoBus::io_out(uint32_t port, uint32_t value, int width) {
  port &= 0xffff;
  record(true, port, value, width);
  if (Mapping* m = find(port)) {
    m->dev->write(port - m->base, value, width);
  } else {
    ++unmapped_;  // writes to nowhere are silently dropped, as on a PC
  }
}

void IoBus::reset() {
  for (auto& m : mappings_) m.dev->reset();
  trace_.clear();
  unmapped_ = 0;
}

bool IoBus::any_damage() const {
  for (const auto& m : mappings_) {
    if (m.dev->damaged()) return true;
  }
  return false;
}

std::string IoBus::damage_report() const {
  std::string out;
  for (const auto& m : mappings_) {
    if (m.dev->damaged()) {
      if (!out.empty()) out += "; ";
      out += m.dev->name() + ": " + m.dev->damage_note();
    }
  }
  return out;
}

}  // namespace hw
