#include "hw/io_bus.h"

#include <sstream>
#include <stdexcept>

namespace hw {

void IoBus::map(uint32_t base, uint32_t length, std::shared_ptr<Device> dev,
                int irq_line) {
  for (const auto& m : mappings_) {
    if (base < m.base + m.length && m.base < base + length) {
      std::ostringstream os;
      os << "I/O range overlap: " << dev->name() << " at 0x" << std::hex
         << base << " collides with " << m.dev->name();
      throw std::invalid_argument(os.str());
    }
  }
  if (irq_line >= 0) {
    if (irq_line >= IrqController::kLines) {
      std::ostringstream os;
      os << "IRQ line " << irq_line << " out of range for " << dev->name();
      throw std::invalid_argument(os.str());
    }
    dev->attach_irq(this, irq_line);
  }
  mappings_.push_back(Mapping{base, length, std::move(dev)});
}

void IoBus::raise_irq(int line, uint64_t delay_steps, bool genuine) {
  if (line < 0 || line >= IrqController::kLines) return;
  ctrl_.raise(line, steps_retired() + delay_steps, genuine);
  if (irq_observer_ != nullptr) {
    irq_observer_->irq_event(IrqEventKind::kRaised, line);
  }
}

int IoBus::irq_pending() { return ctrl_.pending(steps_retired()); }

void IoBus::irq_begin(bool handled) {
  const int line = ctrl_.pending(steps_retired());
  ctrl_.begin(handled);
  if (irq_observer_ != nullptr && line >= 0) {
    irq_observer_->irq_event(
        handled ? IrqEventKind::kDelivered : IrqEventKind::kDropped, line);
  }
}

void IoBus::irq_end() { ctrl_.end(); }

IoBus::Mapping* IoBus::find(uint32_t port) {
  for (auto& m : mappings_) {
    if (port >= m.base && port < m.base + m.length) return &m;
  }
  return nullptr;
}

void IoBus::record(bool is_write, uint32_t port, uint32_t value, int width) {
  if (!trace_enabled_) return;
  if (trace_.size() >= trace_cap_) trace_.erase(trace_.begin());
  trace_.push_back(IoAccess{is_write, port, value, width});
}

uint32_t IoBus::io_in(uint32_t port, int width) {
  port &= 0xffff;  // x86 I/O space is 16-bit
  uint32_t v;
  if (Mapping* m = find(port)) {
    v = m->dev->read(port - m->base, width);
  } else {
    ++unmapped_;
    // Open bus floats high.
    v = width >= 32 ? 0xffffffffu : (width >= 16 ? 0xffffu : 0xffu);
  }
  record(false, port, v, width);
  return v;
}

void IoBus::io_out(uint32_t port, uint32_t value, int width) {
  port &= 0xffff;
  record(true, port, value, width);
  if (Mapping* m = find(port)) {
    m->dev->write(port - m->base, value, width);
  } else {
    ++unmapped_;  // writes to nowhere are silently dropped, as on a PC
  }
}

void IoBus::reset() {
  for (auto& m : mappings_) m.dev->reset();
  trace_.clear();
  unmapped_ = 0;
  // Pending events from the previous run must not leak into the next boot
  // (the recycle bit-identity regression pins this).
  ctrl_.clear();
}

bool IoBus::any_damage() const {
  for (const auto& m : mappings_) {
    if (m.dev->damaged()) return true;
  }
  return false;
}

std::string IoBus::damage_report() const {
  std::string out;
  for (const auto& m : mappings_) {
    if (m.dev->damaged()) {
      if (!out.empty()) out += "; ";
      out += m.dev->name() + ": " + m.dev->damage_note();
    }
  }
  return out;
}

}  // namespace hw
