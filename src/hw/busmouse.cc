#include "hw/busmouse.h"

namespace hw {

void Busmouse::reset() {
  // Same dirty-tracking fast path as IdeDisk::reset(): a device the
  // previous boot never touched is already in power-on state, so the
  // common clean-recycle through a DevicePool costs one branch. Any read
  // rotates garbage_, so reads dirty the device too.
  if (!touched_) return;
  dx_ = poweron_dx_;
  dy_ = poweron_dy_;
  buttons_ = poweron_buttons_;
  index_ = 0;
  irq_disabled_ = true;
  config_ = 0;
  signature_ = 0xa5;
  garbage_ = 0x50;
  motion_pending_ = poweron_pending_;
  protocol_violations_ = 0;
  touched_ = false;
}

void Busmouse::preload_motion(int8_t dx, int8_t dy, uint8_t buttons) {
  poweron_dx_ = dx_ = dx;
  poweron_dy_ = dy_ = dy;
  poweron_buttons_ = buttons_ = buttons;
  poweron_pending_ = motion_pending_ = true;
  // No raise (interrupts are disabled at power-on; the enable transition
  // fires the pended report) and no dirty bit: the device still *is* its
  // power-on state, just a richer one.
}

void Busmouse::set_motion(int8_t dx, int8_t dy, uint8_t buttons) {
  touched_ = true;
  dx_ = dx;
  dy_ = dy;
  buttons_ = buttons;
  motion_pending_ = true;
  if (!irq_disabled_) raise_irq();
}

uint32_t Busmouse::read(uint32_t offset, int width) {
  (void)width;
  touched_ = true;
  switch (offset) {
    case 0: {  // DATA
      uint8_t ux = static_cast<uint8_t>(dx_);
      uint8_t uy = static_cast<uint8_t>(dy_);
      // Rotate the garbage so sloppy drivers cannot rely on stale highs.
      garbage_ = static_cast<uint8_t>((garbage_ << 1) | (garbage_ >> 7));
      uint8_t junk_hi = garbage_ & 0xf0;
      switch (index_ & 3) {
        case 0: return junk_hi | (ux & 0x0f);
        case 1: return junk_hi | ((ux >> 4) & 0x0f);
        case 2: return junk_hi | (uy & 0x0f);
        case 3: {
          // Buttons in bits 7..5 (active low), dy high nibble in bits 3..0,
          // bit 4 floats. Reading the final nibble consumes the pending
          // motion report (the interrupt condition).
          motion_pending_ = false;
          uint8_t b = static_cast<uint8_t>(~buttons_) & 0x07;
          return static_cast<uint8_t>((b << 5) | (garbage_ & 0x10) |
                                      ((uy >> 4) & 0x0f));
        }
      }
      return 0;
    }
    case 1:
      return signature_;
    case 2:
    case 3:
      // Write-only registers: reads float high.
      ++protocol_violations_;
      return 0xff;
    default:
      ++protocol_violations_;
      return 0xff;
  }
}

void Busmouse::write(uint32_t offset, uint32_t value, int width) {
  (void)width;
  touched_ = true;
  uint8_t v = static_cast<uint8_t>(value);
  switch (offset) {
    case 0:
      ++protocol_violations_;  // DATA is read-only
      return;
    case 1:
      signature_ = v;
      return;
    case 2:
      // Two write-only registers share this port with disjoint masks
      // (Fig. 3): bit 7 set selects the index register (bits 6..5), bit 7
      // clear selects the interrupt register (bit 4, 1 = disabled).
      if (v & 0x80) {
        index_ = (v >> 5) & 3;
      } else {
        const bool was_disabled = irq_disabled_;
        irq_disabled_ = (v & 0x10) != 0;
        // Enabling interrupts with a report already pended fires the level-
        // triggered line immediately — how the IRQ boot's pre-loaded motion
        // reaches the driver's handler.
        if (was_disabled && !irq_disabled_ && motion_pending_) raise_irq();
      }
      return;
    case 3:
      config_ = v;
      return;
    default:
      ++protocol_violations_;
      return;
  }
}

}  // namespace hw
