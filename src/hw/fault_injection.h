// Deterministic hardware fault injection on the simulated I/O port bus.
//
// The mutation campaigns hold the hardware fixed and perturb the driver;
// this layer runs the dual experiment: the driver stays clean and the
// *device* misbehaves. A `FaultPlan` describes one scenario — which port is
// faulty, what kind of fault, and on which matching access it arms — and a
// `FaultInjector` wraps any `hw::Device` behind the same `hw::IoBus`
// interface, so both execution engines (bytecode VM and tree walker)
// observe identical faulted traffic with zero engine-specific code.
//
// Everything is counter-triggered and state-free beyond the counters, so a
// scenario is exactly reproducible: the k-th matching access faults, every
// run, on every engine, at any thread count.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "hw/io_bus.h"

namespace hw {

/// The modelled hardware misbehaviours. Read faults tamper with (or bypass)
/// device reads; `kDropWrite` is the only write-side fault; the event kinds
/// perturb the interrupt chain instead of port traffic.
enum class FaultKind {
  kStuckZero,    // masked bits read as 0 from the trigger onward
  kStuckOne,     // masked bits read as 1 from the trigger onward
  kFlipOnce,     // masked bits invert on exactly the trigger-th read
  kDropWrite,    // exactly the trigger-th write to the port is lost
  kFloatingBus,  // reads float high (all ones) from the trigger onward;
                 // the device is no longer consulted (unplugged card)
  kNeverReady,   // reads return a frozen constant from the trigger onward;
                 // the device is no longer consulted (wedged status)
  kLostIrq,      // the trigger-th genuine raise on the line is swallowed
  kSpuriousIrq,  // the trigger-th device access injects a spurious raise
                 // (delivered, but the in-service bit never latches)
  kIrqStorm,     // the trigger-th genuine raise repeats `value` times
  kDelayIrq,     // the trigger-th genuine raise is postponed `value` steps
};

/// Short stable name used in artifacts and reports ("stuck0", "flip", ...).
[[nodiscard]] const char* fault_kind_name(FaultKind k);

/// One fault scenario. `after` counts matching-direction accesses to `port`
/// that pass through unfaulted before the fault arms: `after == 0` faults
/// the first matching access, `after == 2` the third. For the persistent
/// kinds (stuck bits, floating bus, never-ready) every later matching
/// access stays faulted; `kFlipOnce` and `kDropWrite` hit exactly one.
///
/// Event kinds reinterpret the fields: `port` names the IRQ line, `after`
/// counts genuine raises on that line (kSpuriousIrq: device accesses of
/// either direction to any register), and `value` carries the storm repeat
/// count / delivery delay in steps.
struct FaultPlan {
  uint32_t port = 0;
  FaultKind kind = FaultKind::kStuckZero;
  uint32_t after = 0;
  /// Bit mask for the stuck/flip kinds; ignored by the others.
  uint32_t mask = 0;
  /// Frozen read value for kNeverReady; storm repeats for kIrqStorm; delay
  /// steps for kDelayIrq; ignored by the others.
  uint32_t value = 0;

  /// True for the kinds that perturb the interrupt chain, not port traffic.
  [[nodiscard]] bool is_event_fault() const {
    return kind == FaultKind::kLostIrq || kind == FaultKind::kSpuriousIrq ||
           kind == FaultKind::kIrqStorm || kind == FaultKind::kDelayIrq;
  }

  /// True for every kind that tampers with reads.
  [[nodiscard]] bool is_read_fault() const {
    return kind != FaultKind::kDropWrite && !is_event_fault();
  }

  /// Human-readable one-liner ("stuck1 mask 0x80 at port 0x1f7 after 2").
  [[nodiscard]] std::string describe() const;
};

/// Injection shim: a `Device` that forwards to the wrapped device except
/// where the plan says otherwise. Map the injector on the bus in place of
/// the device it wraps (same base, same span); register offsets pass
/// through unchanged, so the wrapped model never knows it is shimmed.
///
/// `name`/`damaged`/`damage_note` forward to the wrapped device, so damage
/// reports look identical with and without the shim. `reset()` forwards and
/// re-arms the counters, which keeps a shimmed device recyclable through
/// `hw::DevicePool` exactly like a bare one.
///
/// The injector also splices itself into the interrupt raise chain: when the
/// bus wires a line (attach_irq), the injector becomes the wrapped device's
/// sink — lost/storm/delay faults tamper with genuine raises in flight, and
/// spurious faults inject a non-genuine raise on the trigger-th device
/// access. Everything downstream (bus queue, observer, engines) sees only
/// post-fault reality.
class FaultInjector final : public Device, public IrqSink {
 public:
  /// `port_base` is the bus base the injector will be mapped at; it turns
  /// the relative offsets of read/write back into absolute ports so plans
  /// can name ports the way the CLI and reports do.
  FaultInjector(std::shared_ptr<Device> inner, uint32_t port_base,
                FaultPlan plan);

  [[nodiscard]] std::string name() const override { return inner_->name(); }
  uint32_t read(uint32_t offset, int width) override;
  void write(uint32_t offset, uint32_t value, int width) override;
  void reset() override;
  [[nodiscard]] bool damaged() const override { return inner_->damaged(); }
  [[nodiscard]] std::string damage_note() const override {
    return inner_->damage_note();
  }

  /// Splices into the raise chain: remembers `sink` as the forward target
  /// and re-points the wrapped device at this shim.
  void attach_irq(IrqSink* sink, int line) override;
  /// IrqSink: applies the event-fault logic to genuine raises on the target
  /// line; everything else forwards unchanged.
  void raise_irq(int line, uint64_t delay_steps, bool genuine) override;

  /// Matching-direction accesses to the target port seen so far.
  [[nodiscard]] uint64_t matched() const { return matched_; }
  /// Accesses actually faulted. 0 means the scenario never triggered (the
  /// boot finished before the trigger offset was reached).
  [[nodiscard]] uint64_t fired() const { return fired_; }
  [[nodiscard]] const std::shared_ptr<Device>& inner() const { return inner_; }

 private:
  void maybe_inject_spurious();

  std::shared_ptr<Device> inner_;
  uint32_t port_base_;
  FaultPlan plan_;
  uint64_t matched_ = 0;
  uint64_t fired_ = 0;
  uint64_t raise_seq_ = 0;   // genuine raises seen on the target line
  uint64_t access_seq_ = 0;  // device accesses seen (spurious trigger)
};

}  // namespace hw
