// Reset-based pool of behavioural device models for the mutation campaigns.
//
// A campaign boots thousands of short-lived mutants against the same device
// type; constructing a fresh model per boot (for the IDE disk: ~1MB image +
// pristine copy plus an MBR rebuild) dominates the cost of the boot itself.
// The pool hands out `reset()` devices instead — every device model keeps
// `reset` cheap via dirty tracking (`IdeDisk` restores its image only after
// a write, `Busmouse` wipes registers only after it was touched), so the
// common clean-boot recycle costs a register wipe.
//
// Thread-safety contract (enforced by tests/test_device_pool.cc):
//  - acquire/release may be called concurrently from campaign workers; the
//    mutex around the free list gives the release-side writes happens-before
//    the next acquirer's reset;
//  - the factory is invoked outside the lock and must itself be thread-safe
//    (a plain `std::make_shared<Model>()` is);
//  - a device is handed to exactly one holder at a time: release() refuses
//    (asserts in debug builds, drops the device otherwise) when the caller
//    still shares ownership, e.g. an IoBus mapping that was not unmapped.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "hw/io_bus.h"

namespace hw {

class DevicePool {
 public:
  /// Constructs one power-on-state device. Called without the pool lock
  /// held, possibly from several workers at once.
  using Factory = std::function<std::shared_ptr<Device>()>;

  DevicePool() = default;
  explicit DevicePool(Factory factory);

  /// Replaces the factory; must happen before the first acquire (campaign
  /// setup), never concurrently with acquire/release.
  void set_factory(Factory factory);

  /// Returns a power-on-state device (recycled via reset() when available).
  /// Throws std::logic_error when no factory is configured.
  [[nodiscard]] std::shared_ptr<Device> acquire();

  /// Returns a device to the pool. The caller must have dropped every other
  /// reference (the IoBus mapping) first; a still-shared device never
  /// re-enters the pool.
  void release(std::shared_ptr<Device> dev);

  [[nodiscard]] size_t idle() const;

 private:
  Factory factory_;
  mutable std::mutex mu_;
  std::vector<std::shared_ptr<Device>> free_;
};

}  // namespace hw
