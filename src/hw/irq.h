// Deterministic interrupt/event model for the simulated I/O bus.
//
// The paper's fault campaigns (and the ROADMAP's event-scenario item) need
// hardware that can *initiate* activity: spurious and lost interrupts are
// invisible to a purely polled bus. This header supplies the pieces:
//
//  - `IrqSink`: where a device delivers a raised line. The bus implements
//    it; shims (hw::FaultInjector) interpose on it the same way they
//    interpose on port reads, so event faults compose with port faults.
//  - `IrqObserver`: taps raised/delivered/dropped transitions — the
//    flight recorder implements it to interleave IRQ events with port
//    accesses in its ring.
//  - `IrqController`: the bus-side pending queue. Plain data (no
//    self-pointers), so `hw::IoBus` stays movable. Events carry the step
//    count at which they become deliverable; both execution engines drain
//    the queue at the same charge-step boundaries, which is what makes
//    interrupt timing byte-identical between the tree walker and the
//    bytecode VM.
// `IrqStatusPort` (io_bus.h) exposes the controller's in-service bitmap as
// a one-byte device — the 8259 idiom drivers use to tell a genuine
// interrupt from a spurious one: a spurious delivery never sets its
// in-service bit.
//
// This header is deliberately free of io_bus.h (the bus includes us).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hw {

/// Where a device (or an interposing shim) delivers a raised IRQ line.
/// `delay_steps` postpones deliverability by that many interpreter steps
/// (0 = deliverable at the next charge-step boundary); `genuine` is false
/// for injected spurious interrupts, which are delivered but never set
/// their in-service bit.
class IrqSink {
 public:
  virtual ~IrqSink() = default;
  virtual void raise_irq(int line, uint64_t delay_steps, bool genuine) = 0;
};

/// Lifecycle of one queued event, as seen by an observer. `kRaised` fires
/// when the bus accepts a raise (post-shim: a raise a fault injector
/// swallowed is never observed, an injected spurious raise is), `kDelivered`
/// when an engine dispatches a handler for it, `kDropped` when it is
/// discarded because no handler is registered for the line.
enum class IrqEventKind : uint8_t { kRaised, kDelivered, kDropped };

class IrqObserver {
 public:
  virtual ~IrqObserver() = default;
  virtual void irq_event(IrqEventKind kind, int line) = 0;
};

/// Pending-event queue + in-service state. Deliberately plain data: the
/// owning IoBus is move-assigned for teardown between campaign boots, and
/// nothing here may point back into the bus.
class IrqController {
 public:
  static constexpr int kLines = 8;

  /// Queues a raise. `due_step` is the steps_retired() value from which the
  /// event is deliverable.
  void raise(int line, uint64_t due_step, bool genuine);

  /// First queued event (FIFO among due ones) with due_step <= `now_step`,
  /// or -1. Memoizes the queue position for the begin() that follows.
  [[nodiscard]] int pending(uint64_t now_step);

  /// Pops the event pending() memoized. `handled` records whether an engine
  /// dispatched a handler (genuine deliveries set the in-service bit) or
  /// dropped it for lack of one.
  void begin(bool handled);

  /// Ends the in-service window begin() opened (handler returned).
  void end();

  /// In-service bitmap (bit per line). Spurious deliveries never set bits.
  [[nodiscard]] uint32_t in_service() const { return isr_; }

  [[nodiscard]] bool has_queued() const { return !queue_.empty(); }
  [[nodiscard]] uint64_t raised() const { return raised_; }
  [[nodiscard]] uint64_t delivered() const { return delivered_; }
  [[nodiscard]] uint64_t dropped() const { return dropped_; }

  /// Back to power-on: no queued events, no in-service lines, counters 0.
  void clear();

 private:
  struct Pending {
    uint64_t seq = 0;
    int line = 0;
    uint64_t due = 0;
    bool genuine = true;
  };

  std::vector<Pending> queue_;  // FIFO by seq
  uint64_t next_seq_ = 0;
  size_t pending_ix_ = static_cast<size_t>(-1);
  uint32_t isr_ = 0;
  int in_service_line_ = -1;
  bool in_service_genuine_ = false;
  uint64_t raised_ = 0;
  uint64_t delivered_ = 0;
  uint64_t dropped_ = 0;
};

/// Bus port the campaign harness maps the status window (`IrqStatusPort`,
/// io_bus.h) at when a device binding carries an IRQ line.
inline constexpr uint32_t kIrqStatusPortBase = 0x20;

}  // namespace hw
