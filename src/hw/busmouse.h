// Behavioural model of the Logitech busmouse, the running example of the
// paper (Fig. 2/3). Four 8-bit registers at offsets 0..3:
//   0 DATA       read-only; contents selected by the index register
//   1 SIGNATURE  read/write scratch byte, power-on value 0xa5
//   2 CONTROL    write-only; two registers with disjoint masks share it
//                (Fig. 3): bit7 = 1 -> index write (bits 6..5), bit7 = 0 ->
//                interrupt write (bit 4, 1 = disabled)
//   3 CONFIG     write-only configuration byte
//
// Index selects which nibble appears in DATA's low 4 bits:
//   0 -> dx low, 1 -> dx high, 2 -> dy low, 3 -> dy high + buttons in bits
//   7..5 (active low, as on the real device). Irrelevant DATA bits float to
//   garbage on purpose so un-masked reads are visibly wrong.
#pragma once

#include <cstdint>
#include <string>

#include "hw/io_bus.h"

namespace hw {

class Busmouse final : public Device {
 public:
  [[nodiscard]] std::string name() const override { return "busmouse"; }

  uint32_t read(uint32_t offset, int width) override;
  void write(uint32_t offset, uint32_t value, int width) override;
  void reset() override;

  /// Test/bench hook: loads a pending motion report. Raises the wired IRQ
  /// line unless interrupts are disabled (power-on default); a report pended
  /// while disabled raises on the disabled->enabled CONTROL transition, and
  /// reading the final DATA nibble (index 3) consumes it.
  void set_motion(int8_t dx, int8_t dy, uint8_t buttons);

  /// Makes a pending motion report part of the device's *power-on* state:
  /// the event-driven campaign binding preloads one so every boot has an
  /// interrupt to deliver. Unlike set_motion this neither raises nor dirties
  /// the device — the preloaded state is exactly what reset() restores, so
  /// pool recycles of a preloaded mouse stay bit-identical to fresh ones.
  void preload_motion(int8_t dx, int8_t dy, uint8_t buttons);

  [[nodiscard]] uint8_t index() const { return index_; }
  [[nodiscard]] bool irq_disabled() const { return irq_disabled_; }
  [[nodiscard]] uint8_t config() const { return config_; }
  [[nodiscard]] uint8_t signature() const { return signature_; }
  [[nodiscard]] uint64_t protocol_violations() const {
    return protocol_violations_;
  }
  /// True once any access (or set_motion) may have moved the device off its
  /// power-on state — the dirty bit behind reset()'s fast path.
  [[nodiscard]] bool touched() const { return touched_; }

 private:
  int8_t dx_ = 0;
  int8_t dy_ = 0;
  uint8_t buttons_ = 0;  // bit0 left, bit1 middle, bit2 right (pressed = 1)
  uint8_t index_ = 0;
  bool irq_disabled_ = true;
  uint8_t config_ = 0;
  uint8_t signature_ = 0xa5;
  uint8_t garbage_ = 0x50;  // rotated into irrelevant bits
  bool motion_pending_ = false;
  uint64_t protocol_violations_ = 0;
  bool touched_ = false;
  // Power-on motion state reset() restores (preload_motion overrides the
  // all-zero default).
  int8_t poweron_dx_ = 0;
  int8_t poweron_dy_ = 0;
  uint8_t poweron_buttons_ = 0;
  bool poweron_pending_ = false;
};

}  // namespace hw
