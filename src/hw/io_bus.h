// Simulated x86 I/O port bus.
//
// Substitution note (see DESIGN.md §2): the paper boots mutated drivers on
// real hardware. We model the ISA-bus contract the mutants actually interact
// with: I/O to an unmapped port does NOT fault — reads float high (all ones)
// and writes are ignored, exactly as on a PC. This is what makes "poll a
// wrong port" manifest as an infinite loop (status bits stuck at 1) rather
// than a crash, reproducing the paper's outcome distribution.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "hw/irq.h"
#include "minic/interp.h"

namespace hw {

/// One I/O access, for tests and debugging.
struct IoAccess {
  bool is_write = false;
  uint32_t port = 0;
  uint32_t value = 0;
  int width = 8;
};

/// Base class for register-level behavioural device models.
class Device {
 public:
  virtual ~Device() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Reads `width` bits from register at byte offset `offset` within the
  /// device's claimed range.
  virtual uint32_t read(uint32_t offset, int width) = 0;
  virtual void write(uint32_t offset, uint32_t value, int width) = 0;

  /// Returns the device to power-on state (called between mutant runs).
  virtual void reset() = 0;

  /// True when the run left persistent damage (e.g. clobbered partition
  /// table) — the paper's "damaged boot" evidence.
  [[nodiscard]] virtual bool damaged() const { return false; }
  [[nodiscard]] virtual std::string damage_note() const { return {}; }

  /// Wires the device's interrupt output to `sink` on `line` (the bus calls
  /// this from map() when the mapping carries a line; shims override it to
  /// splice themselves into the raise chain). `sink == nullptr` detaches —
  /// device pools detach before recycling so a pooled device can never raise
  /// into a dead bus. Devices that never interrupt simply stay detached and
  /// their raise_irq() calls no-op, which is why polled campaigns are
  /// byte-identical with this model compiled in.
  virtual void attach_irq(IrqSink* sink, int line) {
    irq_sink_ = sink;
    irq_line_ = sink != nullptr ? line : -1;
  }

 protected:
  /// Raise points inside device models call this (busmouse on motion, IDE on
  /// command completion). No-op until attach_irq() wires a sink.
  void raise_irq() {
    if (irq_sink_ != nullptr && irq_line_ >= 0) {
      irq_sink_->raise_irq(irq_line_, /*delay_steps=*/0, /*genuine=*/true);
    }
  }

  [[nodiscard]] IrqSink* irq_sink() const { return irq_sink_; }
  [[nodiscard]] int irq_line() const { return irq_line_; }

 private:
  IrqSink* irq_sink_ = nullptr;
  int irq_line_ = -1;
};

/// Routes port I/O to mapped devices. Implements minic::IoEnvironment so the
/// interpreter's inb/outb builtins land here, and IrqSink so mapped devices
/// (through any interposed shims) can queue interrupt events for the engines
/// to dispatch at charge-step boundaries.
class IoBus final : public minic::IoEnvironment, public IrqSink {
 public:
  /// Maps [base, base+length) to `dev`. Ranges must not overlap. When
  /// `irq_line >= 0` the device's interrupt output is wired to this bus on
  /// that line (attach_irq through the device, so shims splice in).
  void map(uint32_t base, uint32_t length, std::shared_ptr<Device> dev,
           int irq_line = -1);

  uint32_t io_in(uint32_t port, int width) override;
  void io_out(uint32_t port, uint32_t value, int width) override;

  /// IrqSink: queues the event, deliverable `delay_steps` interpreter steps
  /// from now. Events raised outside a run (e.g. pre-boot pended motion) are
  /// due at step 0.
  void raise_irq(int line, uint64_t delay_steps, bool genuine) override;

  /// IoEnvironment event hooks — drain the controller queue.
  [[nodiscard]] int irq_pending() override;
  void irq_begin(bool handled) override;
  void irq_end() override;

  [[nodiscard]] const IrqController& irq_controller() const { return ctrl_; }

  /// Observer for raised/delivered/dropped transitions (the flight recorder).
  /// Observes post-shim reality: raises a fault injector swallows are never
  /// seen, spurious raises it injects are.
  void set_irq_observer(IrqObserver* obs) { irq_observer_ = obs; }

  /// Resets every mapped device, clears the trace and all pending IRQ state.
  void reset();

  [[nodiscard]] bool any_damage() const;
  [[nodiscard]] std::string damage_report() const;

  /// Bounded access trace (oldest entries dropped past the cap).
  void enable_trace(size_t cap = 4096) {
    trace_enabled_ = true;
    trace_cap_ = cap;
  }
  [[nodiscard]] const std::vector<IoAccess>& trace() const { return trace_; }

  [[nodiscard]] uint64_t unmapped_accesses() const { return unmapped_; }

 private:
  struct Mapping {
    uint32_t base;
    uint32_t length;
    std::shared_ptr<Device> dev;
  };

  Mapping* find(uint32_t port);
  void record(bool is_write, uint32_t port, uint32_t value, int width);

  std::vector<Mapping> mappings_;
  std::vector<IoAccess> trace_;
  bool trace_enabled_ = false;
  size_t trace_cap_ = 4096;
  uint64_t unmapped_ = 0;
  IrqController ctrl_;
  IrqObserver* irq_observer_ = nullptr;
};

/// One-byte read-only window onto a controller's in-service bitmap,
/// conventionally mapped at kIrqStatusPortBase (0x20 — the 8259 command port
/// a real driver would poll for the in-service register). Reading it is how
/// a CDevil handler detects a spurious interrupt: the line's bit is clear.
/// Writes are ignored.
///
/// Points into the owning bus's controller, so it must be mapped on that bus
/// and torn down with it (the campaign kernels map it per boot and replace
/// the whole bus afterwards).
class IrqStatusPort final : public Device {
 public:
  explicit IrqStatusPort(const IrqController* ctrl) : ctrl_(ctrl) {}

  [[nodiscard]] std::string name() const override { return "irq-status"; }
  uint32_t read(uint32_t offset, int width) override {
    (void)offset;
    (void)width;
    return ctrl_->in_service() & 0xffu;
  }
  void write(uint32_t offset, uint32_t value, int width) override {
    (void)offset;
    (void)value;
    (void)width;
  }
  void reset() override {}

 private:
  const IrqController* ctrl_;
};

}  // namespace hw
