// Simulated x86 I/O port bus.
//
// Substitution note (see DESIGN.md §2): the paper boots mutated drivers on
// real hardware. We model the ISA-bus contract the mutants actually interact
// with: I/O to an unmapped port does NOT fault — reads float high (all ones)
// and writes are ignored, exactly as on a PC. This is what makes "poll a
// wrong port" manifest as an infinite loop (status bits stuck at 1) rather
// than a crash, reproducing the paper's outcome distribution.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "minic/interp.h"

namespace hw {

/// One I/O access, for tests and debugging.
struct IoAccess {
  bool is_write = false;
  uint32_t port = 0;
  uint32_t value = 0;
  int width = 8;
};

/// Base class for register-level behavioural device models.
class Device {
 public:
  virtual ~Device() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Reads `width` bits from register at byte offset `offset` within the
  /// device's claimed range.
  virtual uint32_t read(uint32_t offset, int width) = 0;
  virtual void write(uint32_t offset, uint32_t value, int width) = 0;

  /// Returns the device to power-on state (called between mutant runs).
  virtual void reset() = 0;

  /// True when the run left persistent damage (e.g. clobbered partition
  /// table) — the paper's "damaged boot" evidence.
  [[nodiscard]] virtual bool damaged() const { return false; }
  [[nodiscard]] virtual std::string damage_note() const { return {}; }
};

/// Routes port I/O to mapped devices. Implements minic::IoEnvironment so the
/// interpreter's inb/outb builtins land here.
class IoBus final : public minic::IoEnvironment {
 public:
  /// Maps [base, base+length) to `dev`. Ranges must not overlap.
  void map(uint32_t base, uint32_t length, std::shared_ptr<Device> dev);

  uint32_t io_in(uint32_t port, int width) override;
  void io_out(uint32_t port, uint32_t value, int width) override;

  /// Resets every mapped device and clears the trace.
  void reset();

  [[nodiscard]] bool any_damage() const;
  [[nodiscard]] std::string damage_report() const;

  /// Bounded access trace (oldest entries dropped past the cap).
  void enable_trace(size_t cap = 4096) {
    trace_enabled_ = true;
    trace_cap_ = cap;
  }
  [[nodiscard]] const std::vector<IoAccess>& trace() const { return trace_; }

  [[nodiscard]] uint64_t unmapped_accesses() const { return unmapped_; }

 private:
  struct Mapping {
    uint32_t base;
    uint32_t length;
    std::shared_ptr<Device> dev;
  };

  Mapping* find(uint32_t port);
  void record(bool is_write, uint32_t port, uint32_t value, int width);

  std::vector<Mapping> mappings_;
  std::vector<IoAccess> trace_;
  bool trace_enabled_ = false;
  size_t trace_cap_ = 4096;
  uint64_t unmapped_ = 0;
};

}  // namespace hw
