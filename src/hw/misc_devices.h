// Shallow register-surface models for the remaining Table 2 devices.
//
// The paper's driver campaign is IDE-only; these models exist so the other
// specifications can be exercised end-to-end (stub generation + smoke I/O in
// tests and examples), not to emulate the full controllers.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "hw/io_bus.h"

namespace hw {

/// NE2000 Ethernet controller: command register, paged register file, and
/// the reset port. Enough behaviour for probe-style driver code: reading the
/// reset port resets the chip and raises ISR.RST; a started chip clears it.
class Ne2000 final : public Device {
 public:
  static constexpr uint32_t kCmd = 0x00;
  static constexpr uint32_t kIsr = 0x07;   // page 0
  static constexpr uint32_t kReset = 0x1f;

  [[nodiscard]] std::string name() const override { return "ne2000"; }
  uint32_t read(uint32_t offset, int width) override;
  void write(uint32_t offset, uint32_t value, int width) override;
  void reset() override;

  [[nodiscard]] bool started() const { return (cmd_ & 0x02) != 0; }

 private:
  uint8_t cmd_ = 0x21;  // stopped, page 0
  uint8_t isr_ = 0;
  std::array<std::array<uint8_t, 16>, 2> pages_{};
};

/// Intel 82371FB (PIIX) PCI IDE bus-master function: per-channel command,
/// status and PRD-pointer registers.
class PciBusMaster final : public Device {
 public:
  [[nodiscard]] std::string name() const override { return "piix-bm"; }
  uint32_t read(uint32_t offset, int width) override;
  void write(uint32_t offset, uint32_t value, int width) override;
  void reset() override;

  [[nodiscard]] bool active(int channel) const {
    return (status_[channel] & 0x01) != 0;
  }
  [[nodiscard]] uint32_t prd(int channel) const { return prd_[channel]; }

 private:
  std::array<uint8_t, 2> command_{};
  std::array<uint8_t, 2> status_{};
  std::array<uint32_t, 2> prd_{};
};

/// Permedia 2 graphics controller, reduced to the handful of control
/// registers its specification covers (reset, FIFO space, sync).
class Permedia2 final : public Device {
 public:
  [[nodiscard]] std::string name() const override { return "permedia2"; }
  uint32_t read(uint32_t offset, int width) override;
  void write(uint32_t offset, uint32_t value, int width) override;
  void reset() override;

 private:
  std::array<uint32_t, 16> regs_{};
  int fifo_space_ = 32;
};

}  // namespace hw
