// Bus-event flight recorder: a ring-buffer `hw::Device` shim.
//
// Wraps any device (including a `FaultInjector` — map the recorder
// outermost so it sees exactly the driver-visible traffic) and records the
// last N bus events. Port accesses carry absolute port, direction, the
// value the driver wrote or actually read (post-fault), and the access
// width; IRQ events (raised / delivered / dropped, fed by the bus through
// the `IrqObserver` tap) carry the line, interleaved in the same ring in
// bus order. Every event is stamped with the number of interpreter steps
// retired when it happened. The step stamp comes from the `IoEnvironment`
// step probe, which both engines bind to their live budget counter — and
// because the charge discipline is engine-invariant, the rendered trace is
// byte-identical between the bytecode VM and the tree walker (a
// differential oracle in its own right; tests/test_flight_recorder.cc
// enforces it).
//
// On a non-clean boot the campaign engines render the tail as a post-mortem
// and attach it to the mutant/fault record: the Devil thesis in miniature —
// the misbehaviour becomes legible at the faulting access.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "hw/io_bus.h"

namespace hw {

/// What one ring entry describes.
enum class RecordKind : uint8_t {
  kPortAccess,
  kIrqRaised,
  kIrqDelivered,
  kIrqDropped,
};

/// One recorded bus event (port access or IRQ transition).
struct RecordedAccess {
  uint64_t seq = 0;    // 0-based index in the full event stream
  uint64_t step = 0;   // interpreter steps retired when the event happened
  uint32_t port = 0;   // absolute port (base + offset); port accesses only
  uint32_t value = 0;  // value written, or value the driver actually read
  int width = 8;
  bool is_write = false;
  RecordKind kind = RecordKind::kPortAccess;
  int line = -1;  // IRQ line for the IRQ kinds
};

class FlightRecorder final : public Device, public IrqObserver {
 public:
  static constexpr size_t kDefaultCapacity = 16;

  /// `port_base` is the bus base the recorder will be mapped at (it turns
  /// relative offsets back into absolute ports); `env` is the bus whose
  /// step probe stamps each access — pass the `IoBus` the recorder is
  /// mapped on. Both must outlive the recorder.
  FlightRecorder(std::shared_ptr<Device> inner, uint32_t port_base,
                 const minic::IoEnvironment* env,
                 size_t capacity = kDefaultCapacity);

  [[nodiscard]] std::string name() const override { return inner_->name(); }
  uint32_t read(uint32_t offset, int width) override;
  void write(uint32_t offset, uint32_t value, int width) override;
  void reset() override;  // forwards and clears the ring
  [[nodiscard]] bool damaged() const override { return inner_->damaged(); }
  [[nodiscard]] std::string damage_note() const override {
    return inner_->damage_note();
  }

  /// Transparent in the raise chain: forwards the wiring to the wrapped
  /// device untouched (a FaultInjector inside still splices itself in). The
  /// recorder sees IRQ traffic through the bus observer tap instead, which
  /// is what makes its view post-fault reality — swallowed raises are
  /// invisible, injected spurious raises are recorded.
  void attach_irq(IrqSink* sink, int line) override {
    Device::attach_irq(sink, line);
    inner_->attach_irq(sink, line);
  }

  /// IrqObserver: wire with `bus.set_irq_observer(&recorder)`.
  void irq_event(IrqEventKind kind, int line) override;

  /// Total bus events seen since the last reset (>= tail().size()).
  [[nodiscard]] uint64_t total_accesses() const { return total_; }
  /// The retained tail, oldest first.
  [[nodiscard]] std::vector<RecordedAccess> tail() const;
  /// Deterministic post-mortem rendering of the tail, one line per event.
  [[nodiscard]] std::string render_tail() const;

  [[nodiscard]] const std::shared_ptr<Device>& inner() const { return inner_; }

 private:
  void record(bool is_write, uint32_t offset, uint32_t value, int width);

  std::shared_ptr<Device> inner_;
  uint32_t port_base_;
  const minic::IoEnvironment* env_;
  std::vector<RecordedAccess> ring_;
  size_t capacity_;
  uint64_t total_ = 0;
};

}  // namespace hw
