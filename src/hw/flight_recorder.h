// Port-I/O flight recorder: a ring-buffer `hw::Device` shim.
//
// Wraps any device (including a `FaultInjector` — map the recorder
// outermost so it sees exactly the driver-visible traffic) and records the
// last N port accesses: absolute port, direction, the value the driver
// wrote or actually read (post-fault), the access width, and the number of
// interpreter steps retired when the access happened. The step stamp comes
// from the `IoEnvironment` step probe, which both engines bind to their
// live budget counter — and because the charge discipline is
// engine-invariant, the rendered trace is byte-identical between the
// bytecode VM and the tree walker (a differential oracle in its own right;
// tests/test_flight_recorder.cc enforces it).
//
// On a non-clean boot the campaign engines render the tail as a post-mortem
// and attach it to the mutant/fault record: the Devil thesis in miniature —
// the misbehaviour becomes legible at the faulting access.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "hw/io_bus.h"

namespace hw {

/// One recorded port access.
struct RecordedAccess {
  uint64_t seq = 0;    // 0-based index in the full access stream
  uint64_t step = 0;   // interpreter steps retired when the access happened
  uint32_t port = 0;   // absolute port (base + offset)
  uint32_t value = 0;  // value written, or value the driver actually read
  int width = 8;
  bool is_write = false;
};

class FlightRecorder final : public Device {
 public:
  static constexpr size_t kDefaultCapacity = 16;

  /// `port_base` is the bus base the recorder will be mapped at (it turns
  /// relative offsets back into absolute ports); `env` is the bus whose
  /// step probe stamps each access — pass the `IoBus` the recorder is
  /// mapped on. Both must outlive the recorder.
  FlightRecorder(std::shared_ptr<Device> inner, uint32_t port_base,
                 const minic::IoEnvironment* env,
                 size_t capacity = kDefaultCapacity);

  [[nodiscard]] std::string name() const override { return inner_->name(); }
  uint32_t read(uint32_t offset, int width) override;
  void write(uint32_t offset, uint32_t value, int width) override;
  void reset() override;  // forwards and clears the ring
  [[nodiscard]] bool damaged() const override { return inner_->damaged(); }
  [[nodiscard]] std::string damage_note() const override {
    return inner_->damage_note();
  }

  /// Total accesses seen since the last reset (>= tail().size()).
  [[nodiscard]] uint64_t total_accesses() const { return total_; }
  /// The retained tail, oldest first.
  [[nodiscard]] std::vector<RecordedAccess> tail() const;
  /// Deterministic post-mortem rendering of the tail, one line per access.
  [[nodiscard]] std::string render_tail() const;

  [[nodiscard]] const std::shared_ptr<Device>& inner() const { return inner_; }

 private:
  void record(bool is_write, uint32_t offset, uint32_t value, int width);

  std::shared_ptr<Device> inner_;
  uint32_t port_base_;
  const minic::IoEnvironment* env_;
  std::vector<RecordedAccess> ring_;
  size_t capacity_;
  uint64_t total_ = 0;
};

}  // namespace hw
