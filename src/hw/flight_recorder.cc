#include "hw/flight_recorder.h"

#include <cstdio>

namespace hw {

FlightRecorder::FlightRecorder(std::shared_ptr<Device> inner,
                               uint32_t port_base,
                               const minic::IoEnvironment* env,
                               size_t capacity)
    : inner_(std::move(inner)),
      port_base_(port_base),
      env_(env),
      capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(capacity_);
}

uint32_t FlightRecorder::read(uint32_t offset, int width) {
  uint32_t value = inner_->read(offset, width);
  record(/*is_write=*/false, offset, value, width);
  return value;
}

void FlightRecorder::write(uint32_t offset, uint32_t value, int width) {
  record(/*is_write=*/true, offset, value, width);
  inner_->write(offset, value, width);
}

void FlightRecorder::reset() {
  inner_->reset();
  ring_.clear();
  total_ = 0;
}

void FlightRecorder::record(bool is_write, uint32_t offset, uint32_t value,
                            int width) {
  RecordedAccess acc;
  acc.seq = total_++;
  acc.step = env_ != nullptr ? env_->steps_retired() : 0;
  acc.port = port_base_ + offset;
  acc.value = value;
  acc.width = width;
  acc.is_write = is_write;
  if (ring_.size() < capacity_) {
    ring_.push_back(acc);
  } else {
    ring_[static_cast<size_t>(acc.seq % capacity_)] = acc;
  }
}

void FlightRecorder::irq_event(IrqEventKind kind, int line) {
  RecordedAccess acc;
  acc.seq = total_++;
  acc.step = env_ != nullptr ? env_->steps_retired() : 0;
  switch (kind) {
    case IrqEventKind::kRaised: acc.kind = RecordKind::kIrqRaised; break;
    case IrqEventKind::kDelivered: acc.kind = RecordKind::kIrqDelivered; break;
    case IrqEventKind::kDropped: acc.kind = RecordKind::kIrqDropped; break;
  }
  acc.line = line;
  if (ring_.size() < capacity_) {
    ring_.push_back(acc);
  } else {
    ring_[static_cast<size_t>(acc.seq % capacity_)] = acc;
  }
}

std::vector<RecordedAccess> FlightRecorder::tail() const {
  std::vector<RecordedAccess> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_ || total_ <= capacity_) {
    out = ring_;
  } else {
    size_t start = static_cast<size_t>(total_ % capacity_);
    for (size_t i = 0; i < capacity_; ++i) {
      out.push_back(ring_[(start + i) % capacity_]);
    }
  }
  return out;
}

std::string FlightRecorder::render_tail() const {
  std::vector<RecordedAccess> accesses = tail();
  char line[128];
  std::snprintf(line, sizeof(line),
                "last %zu of %llu bus events:", accesses.size(),
                static_cast<unsigned long long>(total_));
  std::string out = line;
  for (const RecordedAccess& acc : accesses) {
    if (acc.kind == RecordKind::kPortAccess) {
      std::snprintf(line, sizeof(line),
                    "\n  [event %llu, step %llu] %s 0x%x %s 0x%x (%d-bit)",
                    static_cast<unsigned long long>(acc.seq),
                    static_cast<unsigned long long>(acc.step),
                    acc.is_write ? "out" : "in ", acc.port,
                    acc.is_write ? "<-" : "->", acc.value, acc.width);
    } else {
      const char* what = acc.kind == RecordKind::kIrqRaised ? "raised"
                         : acc.kind == RecordKind::kIrqDelivered
                             ? "delivered"
                             : "dropped";
      std::snprintf(line, sizeof(line),
                    "\n  [event %llu, step %llu] irq %d %s",
                    static_cast<unsigned long long>(acc.seq),
                    static_cast<unsigned long long>(acc.step), acc.line, what);
    }
    out += line;
  }
  return out;
}

}  // namespace hw
