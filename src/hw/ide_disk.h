// Behavioural model of an IDE (ATA) disk controller with one master drive,
// the device under test of the paper's driver campaign (§4.2).
//
// Register block (byte offsets from the claimed base, classic primary
// channel layout):
//   0 DATA (16-bit)   1 ERROR/FEATURES   2 NSECTOR   3 LBA-low
//   4 LBA-mid         5 LBA-high         6 SELECT    7 STATUS/COMMAND
//
// Modelled behaviour, chosen to make mutant outcomes realistic:
//  - a command holds BSY for a couple of status reads before completing;
//  - IDENTIFY (0xEC) and READ SECTORS (0x20/0x21) run a 256-words-per-sector
//    PIO data phase via DRQ;
//  - WRITE SECTORS (0x30/0x31) commits driver data to the disk image: any
//    boot-time write is damage, and overwriting sector 0 destroys the
//    partition table (the paper's "required re-formatting the disk" case);
//  - unknown commands set ERR/ABRT; selecting the absent slave makes the
//    status register read 0 (so mis-selected probes fail visibly);
//  - reads of the data port outside a data phase return garbage.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "hw/device_pool.h"
#include "hw/io_bus.h"

namespace hw {

class IdeDisk final : public Device {
 public:
  // Status bits.
  static constexpr uint8_t kErr = 0x01;
  static constexpr uint8_t kIdx = 0x02;
  static constexpr uint8_t kCorr = 0x04;
  static constexpr uint8_t kDrq = 0x08;
  static constexpr uint8_t kSeek = 0x10;
  static constexpr uint8_t kWerr = 0x20;
  static constexpr uint8_t kReady = 0x40;
  static constexpr uint8_t kBusy = 0x80;

  // Error-register bits.
  static constexpr uint8_t kAbrt = 0x04;
  static constexpr uint8_t kIdnf = 0x10;

  static constexpr uint32_t kSectorWords = 256;

  /// Builds a disk with `sectors` sectors containing an MBR (partition table
  /// + 0xAA55 signature) and a mock filesystem superblock.
  explicit IdeDisk(uint32_t sectors = 1024);

  [[nodiscard]] std::string name() const override { return "ide0"; }
  uint32_t read(uint32_t offset, int width) override;
  void write(uint32_t offset, uint32_t value, int width) override;
  void reset() override;

  [[nodiscard]] bool damaged() const override {
    return disk_written_ || protocol_violations_ > 8;
  }
  [[nodiscard]] std::string damage_note() const override;

  // --- inspection for the harness and tests ---
  [[nodiscard]] bool disk_written() const { return disk_written_; }
  [[nodiscard]] bool partition_table_destroyed() const {
    return partition_destroyed_;
  }
  [[nodiscard]] uint64_t protocol_violations() const {
    return protocol_violations_;
  }
  [[nodiscard]] uint32_t sectors_read() const { return sectors_read_; }
  [[nodiscard]] uint16_t disk_word(uint32_t sector, uint32_t word) const {
    return image_[sector * kSectorWords + word];
  }

  /// Expected partition start LBA baked into the MBR (harness oracle).
  [[nodiscard]] static constexpr uint32_t partition_start() { return 63; }
  /// Filesystem magic baked into the superblock (harness oracle).
  [[nodiscard]] static constexpr uint16_t fs_magic() { return 0xef53; }

 private:
  enum class Phase { kIdle, kPioRead, kPioWrite };

  void start_command(uint8_t cmd);
  void finish_write_sector();
  [[nodiscard]] uint32_t lba() const;
  [[nodiscard]] bool master_selected() const { return (select_ & 0x10) == 0; }
  void build_image();
  void build_identify();

  uint32_t total_sectors_;
  std::vector<uint16_t> image_;
  std::vector<uint16_t> pristine_;
  std::array<uint16_t, kSectorWords> identify_{};

  // Task-file registers.
  uint8_t error_ = 0;
  uint8_t features_ = 0;
  uint8_t nsector_ = 1;
  uint8_t lba_low_ = 0;
  uint8_t lba_mid_ = 0;
  uint8_t lba_high_ = 0;
  uint8_t select_ = 0xa0;
  uint8_t status_ = kReady | kSeek;

  Phase phase_ = Phase::kIdle;
  int busy_reads_ = 0;            // status reads still reporting BSY
  int drq_hold_ = 0;              // post-BSY status reads without DRQ yet
  std::vector<uint16_t> buffer_;  // current PIO buffer
  size_t buffer_pos_ = 0;
  uint32_t cur_lba_ = 0;
  uint32_t sectors_left_ = 0;

  bool disk_written_ = false;
  bool partition_destroyed_ = false;
  uint64_t protocol_violations_ = 0;
  uint32_t sectors_read_ = 0;
};

/// Typed convenience wrapper over the generic `hw::DevicePool` for tests
/// and tools that want `IdeDisk` handles back. A per-mutant IdeDisk
/// construction allocates ~1MB (image + pristine copy) and rebuilds the
/// MBR; the pool hands out reset() disks instead — `reset` only restores
/// the image when the previous boot actually wrote to it, so the common
/// clean-boot recycle is a register wipe.
///
/// Thread-safe: acquire/release may be called concurrently from campaign
/// workers (see DevicePool's contract).
class IdeDiskPool {
 public:
  IdeDiskPool();

  /// Returns a power-on-state disk (recycled when available).
  [[nodiscard]] std::shared_ptr<IdeDisk> acquire();
  /// Returns a disk to the pool. The caller must have dropped every other
  /// reference (the IoBus mapping) first.
  void release(std::shared_ptr<IdeDisk> disk);

  [[nodiscard]] size_t idle() const { return pool_.idle(); }

 private:
  DevicePool pool_;
};

}  // namespace hw
