#include "hw/irq.h"

#include <cassert>

namespace hw {

void IrqController::raise(int line, uint64_t due_step, bool genuine) {
  assert(line >= 0 && line < kLines);
  queue_.push_back(Pending{next_seq_++, line, due_step, genuine});
  ++raised_;
}

int IrqController::pending(uint64_t now_step) {
  for (size_t i = 0; i < queue_.size(); ++i) {
    if (queue_[i].due <= now_step) {
      pending_ix_ = i;
      return queue_[i].line;
    }
  }
  pending_ix_ = static_cast<size_t>(-1);
  return -1;
}

void IrqController::begin(bool handled) {
  assert(pending_ix_ < queue_.size());
  const Pending ev = queue_[pending_ix_];
  queue_.erase(queue_.begin() + static_cast<ptrdiff_t>(pending_ix_));
  pending_ix_ = static_cast<size_t>(-1);
  if (!handled) {
    ++dropped_;
    return;
  }
  ++delivered_;
  in_service_line_ = ev.line;
  in_service_genuine_ = ev.genuine;
  // The 8259 idiom: a spurious interrupt is delivered like any other, but
  // its in-service bit never latches — that is what a handler's status-port
  // guard can observe.
  if (ev.genuine) isr_ |= 1u << ev.line;
}

void IrqController::end() {
  if (in_service_line_ >= 0 && in_service_genuine_) {
    isr_ &= ~(1u << in_service_line_);
  }
  in_service_line_ = -1;
  in_service_genuine_ = false;
}

void IrqController::clear() {
  queue_.clear();
  next_seq_ = 0;
  pending_ix_ = static_cast<size_t>(-1);
  isr_ = 0;
  in_service_line_ = -1;
  in_service_genuine_ = false;
  raised_ = 0;
  delivered_ = 0;
  dropped_ = 0;
}

}  // namespace hw
