// Minimal deterministic fork-join helper for the mutation campaigns.
//
// The campaigns are embarrassingly parallel (one boot per mutant) but must
// stay bit-for-bit reproducible at any thread count, so the pattern is:
// workers pull indices from a shared atomic cursor and write results only
// into per-index slots; every order-sensitive reduction happens on the
// caller's thread after the join.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace support {

/// Number of worker threads actually used for `jobs` items when the caller
/// asked for `requested` (0 = std::thread::hardware_concurrency, itself
/// falling back to 1 when unknown). Never more threads than jobs, never 0.
[[nodiscard]] unsigned resolve_threads(unsigned requested, size_t jobs);

/// Runs fn(i) for every i in [0, jobs), distributed over
/// `resolve_threads(threads, jobs)` workers (the calling thread is one of
/// them; `threads` <= 1 degenerates to a plain loop, no thread is spawned).
///
/// Deterministic as long as fn writes only per-index state. If any fn(i)
/// throws, all indices still run, and the exception of the *smallest*
/// failing index is rethrown after the join — the same exception a serial
/// loop that kept going would surface first.
void parallel_for(size_t jobs, unsigned threads,
                  const std::function<void(size_t)>& fn);

/// Same contract, but additionally reports how many indices each worker
/// executed: `*worker_shares` is resized to the resolved thread count and
/// slot t holds worker t's index count (slot 0 is the calling thread).
/// Telemetry only — the shares depend on scheduling and are never part of
/// deterministic output.
void parallel_for(size_t jobs, unsigned threads,
                  const std::function<void(size_t)>& fn,
                  std::vector<uint64_t>* worker_shares);

}  // namespace support
