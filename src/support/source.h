// Source buffers and locations shared by the Devil and MiniC front ends.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace support {

/// A location within a named source buffer. Lines and columns are 1-based;
/// `offset` is the 0-based byte offset into the buffer (used by the mutation
/// engine to splice mutants).
struct SourceLoc {
  uint32_t offset = 0;
  uint32_t line = 1;
  uint32_t column = 1;

  bool operator==(const SourceLoc&) const = default;
};

/// Half-open byte range [begin, end) within a single buffer.
struct SourceRange {
  SourceLoc begin;
  SourceLoc end;

  [[nodiscard]] uint32_t size() const { return end.offset - begin.offset; }
};

/// An immutable named source text. Owns its contents; hands out views.
class SourceBuffer {
 public:
  SourceBuffer(std::string name, std::string text)
      : name_(std::move(name)), text_(std::move(text)) {}

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::string_view text() const { return text_; }
  [[nodiscard]] std::string_view slice(SourceRange r) const {
    return std::string_view(text_).substr(r.begin.offset, r.size());
  }

  /// Extracts the full source line containing `loc` (for diagnostics).
  [[nodiscard]] std::string_view line_containing(SourceLoc loc) const;

  /// Number of newline-terminated (or trailing) lines.
  [[nodiscard]] int line_count() const;

 private:
  std::string name_;
  std::string text_;
};

}  // namespace support
