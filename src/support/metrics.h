// Campaign telemetry: wall-clock stage timers, log2-bucket latency
// histograms, and a throttled progress heartbeat.
//
// Everything in this header is *non-deterministic* process telemetry
// (timings, pool churn, per-worker shares). Deterministic campaign counters
// (steps retired, opcode profiles, dedup/prefix-cache hits) never pass
// through here — they live in the campaign results themselves so that the
// deterministic section of a metrics artifact stays byte-identical across
// thread counts and shard merges.
//
// The collector is disabled by default; every instrumentation point costs a
// single relaxed atomic load until `Metrics::set_enabled(true)` (the CLI's
// `--metrics` flag) turns recording on.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace support {

/// Monotonic wall-clock in nanoseconds (steady_clock).
[[nodiscard]] uint64_t monotonic_ns();

/// Fixed-log2-bucket histogram. A value `v` lands in bucket `bit_width(v)`:
/// bucket 0 holds v == 0 and bucket b > 0 covers [2^(b-1), 2^b). Merging is
/// a bucket-wise sum, so it is commutative and associative — shard-merge
/// order cannot change the aggregate.
class Histogram {
 public:
  static constexpr size_t kBuckets = 65;

  void add(uint64_t value);
  void merge(const Histogram& other);

  [[nodiscard]] uint64_t count() const { return count_; }
  [[nodiscard]] uint64_t total() const { return total_; }
  [[nodiscard]] const std::array<uint64_t, kBuckets>& buckets() const {
    return buckets_;
  }

  void set_bucket(size_t b, uint64_t n);  // artifact parsing only
  void set_total(uint64_t t) { total_ = t; }  // artifact parsing only

  friend bool operator==(const Histogram& a, const Histogram& b) {
    return a.count_ == b.count_ && a.total_ == b.total_ &&
           a.buckets_ == b.buckets_;
  }

 private:
  std::array<uint64_t, kBuckets> buckets_{};
  uint64_t count_ = 0;
  uint64_t total_ = 0;
};

/// Pipeline stages timed by `StageTimer`. Lex/parse/typecheck/lower cover
/// the MiniC front end, splice the prefix-cache tail lowering, boot one
/// engine run, classify the campaign verdict pass.
enum class Stage : uint8_t {
  kLex = 0,
  kParse,
  kTypecheck,
  kLower,
  kSplice,
  kBoot,
  kClassify,
  kPatch,  // bytecode-patch mutant boots: clone + operand rewrite
};
inline constexpr size_t kStageCount = 8;

[[nodiscard]] const char* stage_name(Stage stage);

/// Snapshot of the process-wide collector (one histogram of nanosecond
/// durations per stage, plus device-pool churn and per-worker shares).
struct MetricsSnapshot {
  std::array<Histogram, kStageCount> stages;
  uint64_t pool_fresh = 0;
  uint64_t pool_recycled = 0;
  /// Boots the wall-clock watchdog killed (minic::FaultKind::kWatchdog).
  /// Non-deterministic by nature — a trip depends on host speed — which is
  /// why it lives here and never in the deterministic campaign counters.
  uint64_t watchdog_trips = 0;
  Histogram worker_records;  // one sample per worker per parallel phase
  /// Campaign-service counters (src/serve): jobs accepted onto the queue,
  /// jobs that actually fanned out to shard workers, jobs answered from the
  /// fingerprint cache (zero mutant boots), shard worker processes spawned
  /// (retries included) and slices re-dispatched after a worker died or
  /// wedged. All zero outside a `--serve` daemon.
  uint64_t service_jobs_queued = 0;
  uint64_t service_jobs_dispatched = 0;
  uint64_t service_cache_hits = 0;
  uint64_t service_workers_spawned = 0;
  uint64_t service_worker_retries = 0;
};

/// Process-wide wall-clock collector. All methods are thread-safe; when
/// disabled every record call is one relaxed atomic load and nothing else.
class Metrics {
 public:
  static void set_enabled(bool on);
  [[nodiscard]] static bool enabled() {
    return enabled_.load(std::memory_order_relaxed);
  }

  static void record_stage(Stage stage, uint64_t ns);
  static void add_pool_fresh(uint64_t n);
  static void add_pool_recycled(uint64_t n);
  static void add_watchdog_trip();
  /// Records how many parallel-phase indices each worker executed.
  static void add_worker_records(const std::vector<uint64_t>& shares);
  /// Campaign-service counters (see MetricsSnapshot).
  static void add_service_job_queued();
  static void add_service_job_dispatched();
  static void add_service_cache_hit();
  static void add_service_workers_spawned(uint64_t n);
  static void add_service_worker_retries(uint64_t n);

  [[nodiscard]] static MetricsSnapshot snapshot();
  static void reset();

 private:
  static std::atomic<bool> enabled_;
};

/// RAII stage timer: no-op (no clock read) while the collector is disabled.
class StageTimer {
 public:
  explicit StageTimer(Stage stage)
      : stage_(stage),
        armed_(Metrics::enabled()),
        start_ns_(armed_ ? monotonic_ns() : 0) {}
  ~StageTimer() {
    if (armed_) Metrics::record_stage(stage_, monotonic_ns() - start_ns_);
  }
  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

 private:
  Stage stage_;
  bool armed_;
  uint64_t start_ns_;
};

/// Throttled stderr heartbeat for long campaigns: at most one line per
/// half-second, reporting completed/total, records/s and an ETA. Disabled
/// by default (the CLI's `--progress` flag enables it); ticks are one
/// relaxed atomic add when disabled.
class ProgressMeter {
 public:
  static void set_enabled(bool on);
  [[nodiscard]] static bool enabled() {
    return enabled_.load(std::memory_order_relaxed);
  }

  ProgressMeter(std::string label, uint64_t total);
  ~ProgressMeter();  // prints the final count when enabled
  ProgressMeter(const ProgressMeter&) = delete;
  ProgressMeter& operator=(const ProgressMeter&) = delete;

  void tick(uint64_t n = 1);

 private:
  void print_line(uint64_t done, uint64_t now_ns) const;

  std::string label_;
  uint64_t total_;
  uint64_t start_ns_;
  std::atomic<uint64_t> done_{0};
  std::atomic<uint64_t> last_print_ns_;

  static std::atomic<bool> enabled_;
};

}  // namespace support
