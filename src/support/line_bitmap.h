// Dense bitmap over 1-based source line numbers.
//
// The interpreter marks an executed line once per statement; a std::set
// insert on that path dominated campaign boot time. The bitmap makes the
// mark a word OR and the query a word test, and converts to an ordered set
// only at API boundaries that still want one.
#pragma once

#include <cstdint>
#include <set>
#include <vector>

namespace support {

class LineBitmap {
 public:
  void set(uint32_t line) {
    size_t word = line >> 6;
    if (word >= words_.size()) words_.resize(word + 1, 0);
    words_[word] |= uint64_t{1} << (line & 63);
  }

  [[nodiscard]] bool test(uint32_t line) const {
    size_t word = line >> 6;
    return word < words_.size() &&
           ((words_[word] >> (line & 63)) & 1) != 0;
  }

  [[nodiscard]] bool empty() const {
    for (uint64_t w : words_) {
      if (w != 0) return false;
    }
    return true;
  }

  /// Number of set lines.
  [[nodiscard]] size_t count() const {
    size_t n = 0;
    for (uint64_t w : words_) n += static_cast<size_t>(__builtin_popcountll(w));
    return n;
  }

  /// Ordered materialisation for callers that want set semantics.
  [[nodiscard]] std::set<uint32_t> to_set() const {
    std::set<uint32_t> out;
    for (size_t word = 0; word < words_.size(); ++word) {
      uint64_t bits = words_[word];
      while (bits) {
        int bit = __builtin_ctzll(bits);
        out.insert(static_cast<uint32_t>((word << 6) + bit));
        bits &= bits - 1;
      }
    }
    return out;
  }

 private:
  std::vector<uint64_t> words_;
};

}  // namespace support
