#include "support/subprocess.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "support/metrics.h"

namespace support {

std::string WaitResult::describe() const {
  if (timed_out) return "timed out";
  if (exited) return "exit code " + std::to_string(exit_code);
  return "signal " + std::to_string(term_signal);
}

pid_t spawn_process(const std::vector<std::string>& argv,
                    const std::string& log_path) {
  if (argv.empty()) throw std::runtime_error("spawn_process: empty argv");
  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (const std::string& a : argv) cargv.push_back(const_cast<char*>(a.c_str()));
  cargv.push_back(nullptr);

  // Open the log in the parent so a bad path is a clean throw, not a child
  // that dies before exec with nothing to show.
  const char* log = log_path.empty() ? "/dev/null" : log_path.c_str();
  int log_fd = ::open(log, O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (log_fd < 0) {
    throw std::runtime_error(std::string("spawn_process: cannot open log '") +
                             log + "': " + std::strerror(errno));
  }
  int null_fd = ::open("/dev/null", O_RDONLY);
  if (null_fd < 0) {
    ::close(log_fd);
    throw std::runtime_error(std::string("spawn_process: cannot open "
                                         "/dev/null: ") + std::strerror(errno));
  }

  pid_t pid = ::fork();
  if (pid < 0) {
    int err = errno;
    ::close(log_fd);
    ::close(null_fd);
    throw std::runtime_error(std::string("spawn_process: fork failed: ") +
                             std::strerror(err));
  }
  if (pid == 0) {
    // Child: async-signal-safe calls only (the parent may be multithreaded).
    ::dup2(null_fd, STDIN_FILENO);
    ::dup2(log_fd, STDOUT_FILENO);
    ::dup2(log_fd, STDERR_FILENO);
    ::close(log_fd);
    ::close(null_fd);
    ::execv(cargv[0], cargv.data());
    _exit(127);  // exec failed; 127 mirrors the shell's convention
  }
  ::close(log_fd);
  ::close(null_fd);
  return pid;
}

WaitResult wait_process(pid_t pid, uint64_t timeout_ms) {
  const uint64_t deadline_ns =
      timeout_ms == 0 ? 0 : monotonic_ns() + timeout_ms * 1'000'000ULL;
  uint64_t sleep_us = 500;  // backs off to 20ms
  for (;;) {
    int status = 0;
    pid_t got = ::waitpid(pid, &status, timeout_ms == 0 ? 0 : WNOHANG);
    if (got < 0 && errno == EINTR) continue;
    if (got == pid) {
      WaitResult r;
      if (WIFEXITED(status)) {
        r.exited = true;
        r.exit_code = WEXITSTATUS(status);
      } else {
        r.term_signal = WIFSIGNALED(status) ? WTERMSIG(status) : 0;
      }
      return r;
    }
    if (got < 0) {
      // Already reaped (or never ours): report it as a plain failure so the
      // dispatcher's retry path handles it like any dead worker.
      WaitResult r;
      r.term_signal = -1;
      return r;
    }
    if (deadline_ns != 0 && monotonic_ns() >= deadline_ns) {
      WaitResult r;
      r.timed_out = true;
      return r;
    }
    ::usleep(static_cast<useconds_t>(sleep_us));
    if (sleep_us < 20'000) sleep_us *= 2;
  }
}

void kill_process(pid_t pid) {
  ::kill(pid, SIGKILL);
  for (;;) {
    int status = 0;
    pid_t got = ::waitpid(pid, &status, 0);
    if (got == pid || (got < 0 && errno != EINTR)) return;
  }
}

std::string self_executable_path() {
  char buf[4096];
  ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return "";
  buf[n] = '\0';
  return buf;
}

}  // namespace support
