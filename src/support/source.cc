#include "support/source.h"

#include <algorithm>

namespace support {

std::string_view SourceBuffer::line_containing(SourceLoc loc) const {
  std::string_view t = text_;
  if (loc.offset > t.size()) return {};
  size_t begin = t.rfind('\n', loc.offset == 0 ? 0 : loc.offset - 1);
  begin = (begin == std::string_view::npos) ? 0 : begin + 1;
  size_t end = t.find('\n', loc.offset);
  if (end == std::string_view::npos) end = t.size();
  if (begin > end) begin = end;
  return t.substr(begin, end - begin);
}

int SourceBuffer::line_count() const {
  int n = static_cast<int>(std::count(text_.begin(), text_.end(), '\n'));
  if (!text_.empty() && text_.back() != '\n') ++n;
  return n;
}

}  // namespace support
