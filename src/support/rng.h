// Deterministic RNG used for the seeded 25% mutant sampling (paper §4.2).
// SplitMix64: tiny, fast, and reproducible across platforms, which std::
// distributions are not.
#pragma once

#include <cstdint>
#include <vector>

namespace support {

class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound). bound must be > 0.
  uint64_t next_below(uint64_t bound) {
    // Rejection-free modulo is fine here: bounds are tiny vs 2^64 so the
    // bias is < 2^-50 and determinism matters more than perfection.
    return next() % bound;
  }

  /// Bernoulli draw with probability num/den.
  bool chance(uint64_t num, uint64_t den) { return next_below(den) < num; }

 private:
  uint64_t state_;
};

/// Deterministically selects ~`percent`% of indices [0, n).
inline std::vector<size_t> sample_indices(size_t n, unsigned percent,
                                          uint64_t seed) {
  SplitMix64 rng(seed);
  std::vector<size_t> keep;
  for (size_t i = 0; i < n; ++i) {
    if (rng.chance(percent, 100)) keep.push_back(i);
  }
  return keep;
}

}  // namespace support
