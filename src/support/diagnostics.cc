#include "support/diagnostics.h"

#include <sstream>

namespace support {

namespace {
const char* severity_name(Severity s) {
  switch (s) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "?";
}
}  // namespace

std::string Diagnostic::to_string() const {
  std::ostringstream os;
  os << loc.line << ':' << loc.column << ": " << severity_name(severity) << ' '
     << code << ": " << message;
  return os.str();
}

void DiagnosticEngine::report(Severity sev, std::string code, SourceLoc loc,
                              std::string msg) {
  if (sev == Severity::kError) ++error_count_;
  diags_.push_back(Diagnostic{sev, std::move(code), loc, std::move(msg)});
}

bool DiagnosticEngine::has_code(std::string_view code) const {
  for (const auto& d : diags_) {
    if (d.code == code) return true;
  }
  return false;
}

std::string DiagnosticEngine::render() const {
  std::ostringstream os;
  for (const auto& d : diags_) os << d.to_string() << '\n';
  return os.str();
}

}  // namespace support
