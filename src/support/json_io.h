// Minimal JSON value tree, writer and strict reader for the campaign shard
// artifacts (eval/shard.h). Deliberately small:
//
//  - values are null, bool, 64-bit signed integers, doubles, strings,
//    arrays and objects; object members keep insertion order so serialized
//    artifacts are byte-stable across runs;
//  - the writer emits compact JSON (no insignificant whitespace) with
//    standard escaping, so equal value trees serialize to equal bytes;
//  - the reader is strict RFC-8259-shaped: one value per document, no
//    trailing garbage, no comments, no trailing commas. Errors throw
//    support::JsonError carrying "line L, column C" so a truncated or
//    corrupt artifact is rejected with a diagnostic a human can act on.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace support {

class JsonError : public std::runtime_error {
 public:
  explicit JsonError(const std::string& what) : std::runtime_error(what) {}
};

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };
  using Array = std::vector<JsonValue>;
  using Object = std::vector<std::pair<std::string, JsonValue>>;

  JsonValue() : kind_(Kind::kNull) {}
  JsonValue(bool b) : kind_(Kind::kBool), bool_(b) {}
  JsonValue(int64_t v) : kind_(Kind::kInt), int_(v) {}
  JsonValue(int v) : kind_(Kind::kInt), int_(v) {}
  JsonValue(uint64_t v);  // throws JsonError when v does not fit int64
  JsonValue(double v) : kind_(Kind::kDouble), double_(v) {}
  JsonValue(std::string s) : kind_(Kind::kString), str_(std::move(s)) {}
  JsonValue(const char* s) : kind_(Kind::kString), str_(s) {}

  [[nodiscard]] static JsonValue array() {
    JsonValue v;
    v.kind_ = Kind::kArray;
    return v;
  }
  [[nodiscard]] static JsonValue object() {
    JsonValue v;
    v.kind_ = Kind::kObject;
    return v;
  }

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }

  /// Typed accessors throw JsonError naming the expected and actual kind.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] int64_t as_int() const;
  [[nodiscard]] double as_double() const;  // accepts kInt too
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& items() const;
  [[nodiscard]] const Object& members() const;

  /// Appends to an array value (must be kArray).
  void push_back(JsonValue v);
  /// Appends a member to an object value (must be kObject). Keys are not
  /// checked for uniqueness; `find` returns the first match.
  void set(std::string key, JsonValue v);
  /// First member with `key`, or nullptr. Object values only.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;

 private:
  Kind kind_;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0;
  std::string str_;
  Array array_;
  Object object_;
};

[[nodiscard]] const char* json_kind_name(JsonValue::Kind k);

/// Compact serialization; equal trees yield equal bytes.
[[nodiscard]] std::string to_json(const JsonValue& v);

/// Parses exactly one JSON document. Throws JsonError with line/column on
/// malformed, truncated or trailing-garbage input.
[[nodiscard]] JsonValue parse_json(std::string_view text);

}  // namespace support
