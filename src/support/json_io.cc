#include "support/json_io.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace support {

const char* json_kind_name(JsonValue::Kind k) {
  switch (k) {
    case JsonValue::Kind::kNull: return "null";
    case JsonValue::Kind::kBool: return "bool";
    case JsonValue::Kind::kInt: return "integer";
    case JsonValue::Kind::kDouble: return "number";
    case JsonValue::Kind::kString: return "string";
    case JsonValue::Kind::kArray: return "array";
    case JsonValue::Kind::kObject: return "object";
  }
  return "?";
}

namespace {
[[noreturn]] void kind_error(const char* want, JsonValue::Kind got) {
  throw JsonError(std::string("JSON value is ") + json_kind_name(got) +
                  ", expected " + want);
}
}  // namespace

JsonValue::JsonValue(uint64_t v) : kind_(Kind::kInt) {
  if (v > static_cast<uint64_t>(std::numeric_limits<int64_t>::max())) {
    throw JsonError("JSON integer out of int64 range");
  }
  int_ = static_cast<int64_t>(v);
}

bool JsonValue::as_bool() const {
  if (kind_ != Kind::kBool) kind_error("bool", kind_);
  return bool_;
}

int64_t JsonValue::as_int() const {
  if (kind_ != Kind::kInt) kind_error("integer", kind_);
  return int_;
}

double JsonValue::as_double() const {
  if (kind_ == Kind::kInt) return static_cast<double>(int_);
  if (kind_ != Kind::kDouble) kind_error("number", kind_);
  return double_;
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::kString) kind_error("string", kind_);
  return str_;
}

const JsonValue::Array& JsonValue::items() const {
  if (kind_ != Kind::kArray) kind_error("array", kind_);
  return array_;
}

const JsonValue::Object& JsonValue::members() const {
  if (kind_ != Kind::kObject) kind_error("object", kind_);
  return object_;
}

void JsonValue::push_back(JsonValue v) {
  if (kind_ != Kind::kArray) kind_error("array", kind_);
  array_.push_back(std::move(v));
}

void JsonValue::set(std::string key, JsonValue v) {
  if (kind_ != Kind::kObject) kind_error("object", kind_);
  object_.emplace_back(std::move(key), std::move(v));
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind_ != Kind::kObject) kind_error("object", kind_);
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

// --- writer ------------------------------------------------------------------

namespace {

void write_escaped(const std::string& s, std::string& out) {
  out.push_back('"');
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  out.push_back('"');
}

void write_value(const JsonValue& v, std::string& out) {
  switch (v.kind()) {
    case JsonValue::Kind::kNull:
      out += "null";
      return;
    case JsonValue::Kind::kBool:
      out += v.as_bool() ? "true" : "false";
      return;
    case JsonValue::Kind::kInt:
      out += std::to_string(v.as_int());
      return;
    case JsonValue::Kind::kDouble: {
      double d = v.as_double();
      if (!std::isfinite(d)) throw JsonError("JSON cannot encode non-finite number");
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.17g", d);
      out += buf;
      return;
    }
    case JsonValue::Kind::kString:
      write_escaped(v.as_string(), out);
      return;
    case JsonValue::Kind::kArray: {
      out.push_back('[');
      bool first = true;
      for (const JsonValue& item : v.items()) {
        if (!first) out.push_back(',');
        first = false;
        write_value(item, out);
      }
      out.push_back(']');
      return;
    }
    case JsonValue::Kind::kObject: {
      out.push_back('{');
      bool first = true;
      for (const auto& [key, value] : v.members()) {
        if (!first) out.push_back(',');
        first = false;
        write_escaped(key, out);
        out.push_back(':');
        write_value(value, out);
      }
      out.push_back('}');
      return;
    }
  }
}

}  // namespace

std::string to_json(const JsonValue& v) {
  std::string out;
  write_value(v, out);
  return out;
}

// --- reader ------------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& message) {
    // Line/column of the current position, so a truncated artifact names
    // the exact byte where the document stopped making sense.
    size_t line = 1, col = 1;
    for (size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    throw JsonError("JSON parse error at line " + std::to_string(line) +
                    ", column " + std::to_string(col) + ": " + message);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c, const char* what) {
    if (pos_ >= text_.size() || text_[pos_] != c) {
      fail(std::string("expected ") + what);
    }
    ++pos_;
  }

  bool consume_word(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  JsonValue parse_value() {
    // Bounded nesting: a corrupt (or hostile) document of thousands of
    // opening brackets must fail with a diagnostic, not blow the stack.
    if (depth_ >= kMaxDepth) fail("nesting too deep");
    ++depth_;
    JsonValue v = parse_value_inner();
    --depth_;
    return v;
  }

  JsonValue parse_value_inner() {
    skip_ws();
    char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue(parse_string());
      case 't':
        if (consume_word("true")) return JsonValue(true);
        fail("invalid literal");
      case 'f':
        if (consume_word("false")) return JsonValue(false);
        fail("invalid literal");
      case 'n':
        if (consume_word("null")) return JsonValue();
        fail("invalid literal");
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
        fail("unexpected character");
    }
  }

  JsonValue parse_object() {
    expect('{', "'{'");
    JsonValue obj = JsonValue::object();
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_ws();
      if (peek() != '"') fail("expected object key string");
      std::string key = parse_string();
      skip_ws();
      expect(':', "':' after object key");
      obj.set(std::move(key), parse_value());
      skip_ws();
      char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return obj;
      }
      fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array() {
    expect('[', "'['");
    JsonValue arr = JsonValue::array();
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return arr;
      }
      fail("expected ',' or ']' in array");
    }
  }

  unsigned parse_hex4() {
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      if (pos_ >= text_.size()) fail("unexpected end of \\u escape");
      char c = text_[pos_++];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("invalid hex digit in \\u escape");
      }
    }
    return v;
  }

  std::string parse_string() {
    expect('"', "'\"'");
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        --pos_;
        fail("raw control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned cp = parse_hex4();
          if (cp >= 0xd800 && cp <= 0xdfff) {
            // Only BMP escapes; the writer never emits surrogates.
            fail("surrogate \\u escapes are not supported");
          }
          if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xc0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
          } else {
            out.push_back(static_cast<char>(0xe0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
          }
          break;
        }
        default:
          fail("invalid escape character");
      }
    }
  }

  JsonValue parse_number() {
    size_t start = pos_;
    if (peek() == '-') ++pos_;
    size_t digits = pos_;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    if (pos_ == digits) fail("invalid number");
    if (text_[digits] == '0' && pos_ > digits + 1) {
      fail("invalid number: leading zero");
    }
    bool is_double = false;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      is_double = true;
      ++pos_;
      size_t frac = pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
      if (pos_ == frac) fail("invalid number: missing fraction digits");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      is_double = true;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      size_t exp = pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
      if (pos_ == exp) fail("invalid number: missing exponent digits");
    }
    std::string token(text_.substr(start, pos_ - start));
    if (is_double) {
      return JsonValue(std::strtod(token.c_str(), nullptr));
    }
    errno = 0;
    char* end = nullptr;
    long long v = std::strtoll(token.c_str(), &end, 10);
    if (errno != 0 || end != token.c_str() + token.size()) {
      fail("integer out of range");
    }
    return JsonValue(static_cast<int64_t>(v));
  }

  static constexpr int kMaxDepth = 200;

  std::string_view text_;
  size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

JsonValue parse_json(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace support
