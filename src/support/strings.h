// Small string helpers shared across front ends.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace support {

[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix);
[[nodiscard]] std::string to_lower(std::string_view s);
[[nodiscard]] std::vector<std::string> split_lines(std::string_view s);

/// Counts non-blank, non-comment-only lines ("//" comments), the measure the
/// paper uses for specification sizes in Table 2.
[[nodiscard]] int count_code_lines(std::string_view s);

/// Replaces the byte range [offset, offset+len) of `text` with `replacement`.
[[nodiscard]] std::string splice(std::string_view text, size_t offset,
                                 size_t len, std::string_view replacement);

}  // namespace support
