// Small string helpers shared across front ends.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace support {

[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix);
[[nodiscard]] std::string to_lower(std::string_view s);
[[nodiscard]] std::vector<std::string> split_lines(std::string_view s);

/// Counts non-blank, non-comment-only lines ("//" comments), the measure the
/// paper uses for specification sizes in Table 2.
[[nodiscard]] int count_code_lines(std::string_view s);

/// Replaces the byte range [offset, offset+len) of `text` with `replacement`.
[[nodiscard]] std::string splice(std::string_view text, size_t offset,
                                 size_t len, std::string_view replacement);

/// Incremental 128-bit content hash: two independently-seeded FNV-1a 64-bit
/// lanes (the second lane finalised through a splitmix-style mixer). Used
/// for the campaign config fingerprint and the canonical mutant-key hashes
/// in shard artifacts — deterministic across platforms and processes, which
/// std::hash is not. Not cryptographic; inputs are not adversarial.
class Fnv128 {
 public:
  Fnv128& update(std::string_view bytes);
  /// Feeds a length-prefixed field so concatenated updates cannot collide
  /// by shifting bytes between adjacent fields.
  Fnv128& update_field(std::string_view bytes);
  Fnv128& update_u64(uint64_t v);

  /// (hi, lo) lane digests.
  [[nodiscard]] std::pair<uint64_t, uint64_t> digest() const;
  /// 32 lowercase hex chars (hi lane then lo lane).
  [[nodiscard]] std::string hex() const;

 private:
  uint64_t hi_ = 14695981039346656037ULL;           // FNV-1a offset basis
  uint64_t lo_ = 14695981039346656037ULL ^ 0x9e3779b97f4a7c15ULL;
};

/// One-shot convenience over Fnv128::update.
[[nodiscard]] std::pair<uint64_t, uint64_t> fnv128(std::string_view bytes);

/// 32 lowercase hex chars encoding (hi, lo) — the serialized form of
/// Fnv128 digests (shard artifact fingerprints and key hashes).
[[nodiscard]] std::string hex128(uint64_t hi, uint64_t lo);

}  // namespace support
