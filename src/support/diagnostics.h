// Diagnostic collection shared by the Devil compiler and the MiniC front end.
//
// Every semantic rule has a stable code (e.g. "DVL210") so tests can assert
// that a given mutant is rejected by the *intended* check rather than by an
// incidental one.
#pragma once

#include <string>
#include <vector>

#include "support/source.h"

namespace support {

enum class Severity { kNote, kWarning, kError };

struct Diagnostic {
  Severity severity = Severity::kError;
  std::string code;     // stable rule identifier, e.g. "DVL210", "MC042"
  SourceLoc loc;
  std::string message;

  [[nodiscard]] std::string to_string() const;
};

/// Accumulates diagnostics for one compilation. Not thread-safe; one engine
/// per compile.
class DiagnosticEngine {
 public:
  void report(Severity sev, std::string code, SourceLoc loc, std::string msg);
  void error(std::string code, SourceLoc loc, std::string msg) {
    report(Severity::kError, std::move(code), loc, std::move(msg));
  }
  void warning(std::string code, SourceLoc loc, std::string msg) {
    report(Severity::kWarning, std::move(code), loc, std::move(msg));
  }

  [[nodiscard]] bool has_errors() const { return error_count_ > 0; }
  [[nodiscard]] int error_count() const { return error_count_; }
  [[nodiscard]] const std::vector<Diagnostic>& all() const { return diags_; }

  /// True if any error carries the given rule code.
  [[nodiscard]] bool has_code(std::string_view code) const;

  /// One line per diagnostic, suitable for test output and CLI tools.
  [[nodiscard]] std::string render() const;

  void clear() {
    diags_.clear();
    error_count_ = 0;
  }

 private:
  std::vector<Diagnostic> diags_;
  int error_count_ = 0;
};

}  // namespace support
