#include "support/strings.h"

#include <cctype>

namespace support {

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(c));
  return out;
}

std::vector<std::string> split_lines(std::string_view s) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    size_t nl = s.find('\n', start);
    if (nl == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, nl - start));
    start = nl + 1;
  }
  return out;
}

int count_code_lines(std::string_view s) {
  int n = 0;
  for (const auto& line : split_lines(s)) {
    size_t i = 0;
    while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i])))
      ++i;
    if (i >= line.size()) continue;                       // blank
    if (line.compare(i, 2, "//") == 0) continue;          // comment-only
    ++n;
  }
  return n;
}

std::string splice(std::string_view text, size_t offset, size_t len,
                   std::string_view replacement) {
  std::string out;
  out.reserve(text.size() - len + replacement.size());
  out.append(text.substr(0, offset));
  out.append(replacement);
  out.append(text.substr(offset + len));
  return out;
}

namespace {
constexpr uint64_t kFnvPrime = 1099511628211ULL;

uint64_t mix64(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

Fnv128& Fnv128::update(std::string_view bytes) {
  for (unsigned char c : bytes) {
    hi_ = (hi_ ^ c) * kFnvPrime;
    lo_ = (lo_ ^ c) * kFnvPrime;
  }
  return *this;
}

Fnv128& Fnv128::update_field(std::string_view bytes) {
  update_u64(bytes.size());
  return update(bytes);
}

Fnv128& Fnv128::update_u64(uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    unsigned char c = static_cast<unsigned char>(v >> shift);
    hi_ = (hi_ ^ c) * kFnvPrime;
    lo_ = (lo_ ^ c) * kFnvPrime;
  }
  return *this;
}

std::pair<uint64_t, uint64_t> Fnv128::digest() const {
  return {hi_, mix64(lo_)};
}

std::string Fnv128::hex() const {
  auto [hi, lo] = digest();
  return hex128(hi, lo);
}

std::pair<uint64_t, uint64_t> fnv128(std::string_view bytes) {
  return Fnv128().update(bytes).digest();
}

std::string hex128(uint64_t hi, uint64_t lo) {
  static const char* kDigits = "0123456789abcdef";
  std::string out(32, '0');
  for (int i = 15; i >= 0; --i, hi >>= 4) out[i] = kDigits[hi & 0xf];
  for (int i = 31; i >= 16; --i, lo >>= 4) out[i] = kDigits[lo & 0xf];
  return out;
}

}  // namespace support
