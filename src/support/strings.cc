#include "support/strings.h"

#include <cctype>

namespace support {

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(c));
  return out;
}

std::vector<std::string> split_lines(std::string_view s) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    size_t nl = s.find('\n', start);
    if (nl == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, nl - start));
    start = nl + 1;
  }
  return out;
}

int count_code_lines(std::string_view s) {
  int n = 0;
  for (const auto& line : split_lines(s)) {
    size_t i = 0;
    while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i])))
      ++i;
    if (i >= line.size()) continue;                       // blank
    if (line.compare(i, 2, "//") == 0) continue;          // comment-only
    ++n;
  }
  return n;
}

std::string splice(std::string_view text, size_t offset, size_t len,
                   std::string_view replacement) {
  std::string out;
  out.reserve(text.size() - len + replacement.size());
  out.append(text.substr(0, offset));
  out.append(replacement);
  out.append(text.substr(offset + len));
  return out;
}

}  // namespace support
