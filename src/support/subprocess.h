// Minimal child-process helper for the campaign dispatcher: spawn a worker
// with its output captured to a log file, wait with a wall-clock deadline,
// and kill wedged workers. POSIX fork/execv only — no shell is involved, so
// argv strings are never re-tokenized.
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <string>
#include <vector>

namespace support {

/// How a waited-on child ended.
struct WaitResult {
  /// The deadline expired before the child exited; the child is still
  /// running and the caller owns killing it.
  bool timed_out = false;
  /// Child exited normally (exit_code valid) vs was terminated by a signal
  /// (term_signal valid).
  bool exited = false;
  int exit_code = -1;
  int term_signal = 0;

  [[nodiscard]] bool clean_exit() const { return exited && exit_code == 0; }
  /// One-line description for diagnostics ("exit code 2", "signal 9",
  /// "timed out").
  [[nodiscard]] std::string describe() const;
};

/// Forks and execs `argv` (argv[0] is the binary path; PATH is not
/// searched). stdin reads /dev/null; stdout and stderr are appended to
/// `log_path` (or discarded to /dev/null when empty). Throws
/// std::runtime_error naming the failing step; a failed exec in the child
/// surfaces as exit code 127 from wait_process.
[[nodiscard]] pid_t spawn_process(const std::vector<std::string>& argv,
                                  const std::string& log_path);

/// Reaps `pid`, polling up to `timeout_ms` of wall clock (0 = wait
/// forever). On timeout the child is NOT killed — the caller decides.
[[nodiscard]] WaitResult wait_process(pid_t pid, uint64_t timeout_ms);

/// SIGKILLs and reaps `pid`. Safe on an already-exited (but unreaped)
/// child.
void kill_process(pid_t pid);

/// The running executable's path (/proc/self/exe), or "" when the link
/// cannot be read — callers fall back to argv[0].
[[nodiscard]] std::string self_executable_path();

}  // namespace support
