#include "support/parallel.h"

#include <atomic>
#include <exception>
#include <limits>
#include <mutex>
#include <thread>
#include <vector>

namespace support {

unsigned resolve_threads(unsigned requested, size_t jobs) {
  if (requested == 0) {
    requested = std::thread::hardware_concurrency();
    if (requested == 0) requested = 1;
  }
  if (jobs < requested) requested = static_cast<unsigned>(jobs);
  return requested == 0 ? 1 : requested;
}

void parallel_for(size_t jobs, unsigned threads,
                  const std::function<void(size_t)>& fn) {
  parallel_for(jobs, threads, fn, nullptr);
}

void parallel_for(size_t jobs, unsigned threads,
                  const std::function<void(size_t)>& fn,
                  std::vector<uint64_t>* worker_shares) {
  threads = resolve_threads(threads, jobs);
  if (worker_shares != nullptr) worker_shares->assign(threads, 0);
  if (threads <= 1) {
    for (size_t i = 0; i < jobs; ++i) fn(i);
    if (worker_shares != nullptr && threads == 1) (*worker_shares)[0] = jobs;
    return;
  }

  std::atomic<size_t> cursor{0};
  std::mutex error_mutex;
  size_t first_error_index = std::numeric_limits<size_t>::max();
  std::exception_ptr first_error;

  auto worker = [&](unsigned slot) {
    for (;;) {
      size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= jobs) return;
      if (worker_shares != nullptr) ++(*worker_shares)[slot];
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (i < first_error_index) {
          first_error_index = i;
          first_error = std::current_exception();
        }
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads - 1);
  for (unsigned t = 1; t < threads; ++t) pool.emplace_back(worker, t);
  worker(0);  // the calling thread participates
  for (auto& th : pool) th.join();

  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace support
