#include "support/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace support {

std::vector<size_t> TextTable::measure() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  return widths;
}

std::string TextTable::render() const { return render({}); }

std::string TextTable::render(const std::vector<size_t>& min_widths) const {
  std::vector<size_t> widths = measure();
  for (size_t c = 0; c < widths.size() && c < min_widths.size(); ++c) {
    widths[c] = std::max(widths[c], min_widths[c]);
  }

  auto hline = [&] {
    std::string s = "+";
    for (size_t w : widths) s += std::string(w + 2, '-') + "+";
    return s + "\n";
  };
  auto line = [&](const std::vector<std::string>& cells) {
    std::string s = "|";
    for (size_t c = 0; c < widths.size(); ++c) {
      std::string cell = c < cells.size() ? cells[c] : "";
      s += " " + cell + std::string(widths[c] - cell.size(), ' ') + " |";
    }
    return s + "\n";
  };

  std::ostringstream os;
  os << hline() << line(header_) << hline();
  for (size_t r = 0; r < rows_.size(); ++r) {
    if (std::find(separators_.begin(), separators_.end(), r) !=
        separators_.end()) {
      os << hline();
    }
    os << line(rows_[r]);
  }
  os << hline();
  return os.str();
}

std::string percent(size_t num, size_t den) {
  if (den == 0) return "n/a";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f %%",
                100.0 * static_cast<double>(num) / static_cast<double>(den));
  return buf;
}

}  // namespace support
