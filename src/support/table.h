// Plain-text table renderer used by the bench binaries to print the paper's
// tables in a comparable layout.
#pragma once

#include <string>
#include <vector>

namespace support {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header)
      : header_(std::move(header)) {}

  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }
  void add_separator() { separators_.push_back(rows_.size()); }

  [[nodiscard]] std::string render() const;

  /// Natural column widths (per column: the widest of header and cells).
  /// Feed the element-wise max of several tables' measures back into
  /// render(min_widths) to align a group of tables.
  [[nodiscard]] std::vector<size_t> measure() const;

  /// Renders with every column at least `min_widths[c]` wide (element-wise
  /// max with the natural widths). Missing entries default to 0, so
  /// render({}) == render().
  [[nodiscard]] std::string render(
      const std::vector<size_t>& min_widths) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<size_t> separators_;
};

/// Formats `num/den` as a percentage with one decimal, e.g. "26.7 %".
std::string percent(size_t num, size_t den);

}  // namespace support
