#include "support/metrics.h"

#include <bit>
#include <chrono>
#include <cstdio>
#include <mutex>

namespace support {

uint64_t monotonic_ns() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void Histogram::add(uint64_t value) {
  ++buckets_[static_cast<size_t>(std::bit_width(value))];
  ++count_;
  total_ += value;
}

void Histogram::merge(const Histogram& other) {
  for (size_t b = 0; b < kBuckets; ++b) buckets_[b] += other.buckets_[b];
  count_ += other.count_;
  total_ += other.total_;
}

void Histogram::set_bucket(size_t b, uint64_t n) {
  count_ += n - buckets_[b];
  buckets_[b] = n;
}

const char* stage_name(Stage stage) {
  switch (stage) {
    case Stage::kLex: return "lex";
    case Stage::kParse: return "parse";
    case Stage::kTypecheck: return "typecheck";
    case Stage::kLower: return "lower";
    case Stage::kSplice: return "splice";
    case Stage::kBoot: return "boot";
    case Stage::kClassify: return "classify";
    case Stage::kPatch: return "patch";
  }
  return "?";
}

namespace {

// One mutex guards the whole collector: instrumentation points fire at most
// a few times per millisecond-scale mutant cycle, so contention is noise —
// and only when metrics are enabled at all.
std::mutex g_metrics_mu;
MetricsSnapshot g_metrics;

}  // namespace

std::atomic<bool> Metrics::enabled_{false};

void Metrics::set_enabled(bool on) {
  enabled_.store(on, std::memory_order_relaxed);
}

void Metrics::record_stage(Stage stage, uint64_t ns) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(g_metrics_mu);
  g_metrics.stages[static_cast<size_t>(stage)].add(ns);
}

void Metrics::add_pool_fresh(uint64_t n) {
  if (!enabled() || n == 0) return;
  std::lock_guard<std::mutex> lock(g_metrics_mu);
  g_metrics.pool_fresh += n;
}

void Metrics::add_pool_recycled(uint64_t n) {
  if (!enabled() || n == 0) return;
  std::lock_guard<std::mutex> lock(g_metrics_mu);
  g_metrics.pool_recycled += n;
}

void Metrics::add_watchdog_trip() {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(g_metrics_mu);
  ++g_metrics.watchdog_trips;
}

void Metrics::add_worker_records(const std::vector<uint64_t>& shares) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(g_metrics_mu);
  for (uint64_t s : shares) g_metrics.worker_records.add(s);
}

void Metrics::add_service_job_queued() {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(g_metrics_mu);
  ++g_metrics.service_jobs_queued;
}

void Metrics::add_service_job_dispatched() {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(g_metrics_mu);
  ++g_metrics.service_jobs_dispatched;
}

void Metrics::add_service_cache_hit() {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(g_metrics_mu);
  ++g_metrics.service_cache_hits;
}

void Metrics::add_service_workers_spawned(uint64_t n) {
  if (!enabled() || n == 0) return;
  std::lock_guard<std::mutex> lock(g_metrics_mu);
  g_metrics.service_workers_spawned += n;
}

void Metrics::add_service_worker_retries(uint64_t n) {
  if (!enabled() || n == 0) return;
  std::lock_guard<std::mutex> lock(g_metrics_mu);
  g_metrics.service_worker_retries += n;
}

MetricsSnapshot Metrics::snapshot() {
  std::lock_guard<std::mutex> lock(g_metrics_mu);
  return g_metrics;
}

void Metrics::reset() {
  std::lock_guard<std::mutex> lock(g_metrics_mu);
  g_metrics = MetricsSnapshot{};
}

std::atomic<bool> ProgressMeter::enabled_{false};

void ProgressMeter::set_enabled(bool on) {
  enabled_.store(on, std::memory_order_relaxed);
}

ProgressMeter::ProgressMeter(std::string label, uint64_t total)
    : label_(std::move(label)),
      total_(total),
      start_ns_(monotonic_ns()),
      last_print_ns_(start_ns_) {}

ProgressMeter::~ProgressMeter() {
  if (!enabled() || total_ == 0) return;
  print_line(done_.load(std::memory_order_relaxed), monotonic_ns());
}

void ProgressMeter::tick(uint64_t n) {
  uint64_t done = done_.fetch_add(n, std::memory_order_relaxed) + n;
  if (!enabled()) return;
  constexpr uint64_t kThrottleNs = 500'000'000;  // >= 500 ms between lines
  uint64_t now = monotonic_ns();
  uint64_t last = last_print_ns_.load(std::memory_order_relaxed);
  if (now - last < kThrottleNs) return;
  if (!last_print_ns_.compare_exchange_strong(last, now,
                                              std::memory_order_relaxed)) {
    return;  // another worker just printed
  }
  print_line(done, now);
}

void ProgressMeter::print_line(uint64_t done, uint64_t now_ns) const {
  double elapsed_s =
      static_cast<double>(now_ns - start_ns_) / 1e9;
  double rate = elapsed_s > 0.0 ? static_cast<double>(done) / elapsed_s : 0.0;
  double eta_s = (rate > 0.0 && done < total_)
                     ? static_cast<double>(total_ - done) / rate
                     : 0.0;
  std::fprintf(stderr, "%s: %llu/%llu records (%.0f records/s, ETA %.0fs)\n",
               label_.c_str(), static_cast<unsigned long long>(done),
               static_cast<unsigned long long>(total_), rate, eta_s);
}

}  // namespace support
