// Fault-scenario campaigns: the dual of the Tables 3/4 mutation study. The
// driver stays clean and the *device* misbehaves — a deterministic matrix
// of hardware fault scenarios (hw/fault_injection.h) is booted against each
// device's C and CDevil drivers, and the outcomes are bucketed the way the
// paper buckets mutant boots: caught by a Devil check, caught by the
// driver's own panic path, crash, hang, or a silent boot with corrupted
// device state.
//
// The kernel reuses the whole mutation-campaign machinery: the same
// `DeviceBinding`/`DevicePool` plumbing, the same deterministic
// `parallel_for` map-reduce (per-index record writes, tally reduced after
// the join), and the same slice arithmetic — so fault campaigns are
// byte-identical across thread counts, execution engines and process-level
// shards (eval/shard.h) exactly like mutation campaigns.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "eval/driver_campaign.h"
#include "hw/fault_injection.h"

namespace eval {

/// Outcome buckets for one clean-driver boot under an injected hardware
/// fault, in the paper's style (detected / visible failure / silent).
enum class FaultOutcome {
  kDevilCheck,   // a generated Devil assertion caught the bad hardware
  kDriverPanic,  // the driver's own sanity check panicked
  kCrash,        // kernel crash (bus fault, bad index, ...)
  kHang,         // boot never completes (step budget exhausted)
  kCorruptBoot,  // boot "succeeds" but the system is visibly wrong:
                 // device damage or a wrong boot fingerprint
  kCleanBoot,    // boot completes correctly (fault untriggered or absorbed)
};

[[nodiscard]] const char* fault_outcome_name(FaultOutcome o);
/// Short stable name used in shard artifacts ("devil-check", "hang", ...).
[[nodiscard]] const char* fault_outcome_short(FaultOutcome o);

/// Aggregated campaign tally: scenarios per outcome plus the distinct
/// faulted ports contributing to each outcome (the per-port analogue of the
/// mutation tables' "mutation sites" column).
struct FaultTally {
  std::map<FaultOutcome, size_t> scenarios;
  std::map<FaultOutcome, std::set<uint32_t>> ports;
  size_t total = 0;

  void add(FaultOutcome o, uint32_t port) {
    ++scenarios[o];
    ports[o].insert(port);
    ++total;
  }
  [[nodiscard]] size_t scenarios_of(FaultOutcome o) const {
    auto it = scenarios.find(o);
    return it == scenarios.end() ? 0 : it->second;
  }
  [[nodiscard]] size_t ports_of(FaultOutcome o) const {
    auto it = ports.find(o);
    return it == ports.end() ? 0 : it->second.size();
  }
  /// Detected before the system limps on: a Devil check or the driver's
  /// own panic path named the problem.
  [[nodiscard]] size_t detected() const {
    return scenarios_of(FaultOutcome::kDevilCheck) +
           scenarios_of(FaultOutcome::kDriverPanic);
  }
};

/// One scenario's outcome. `scenario_index` points into the full generated
/// matrix (fault_scenario_matrix), `triggered` says whether the fault ever
/// fired during the boot — an untriggered scenario always boots clean.
struct FaultRecord {
  size_t scenario_index = 0;
  hw::FaultPlan plan;
  FaultOutcome outcome = FaultOutcome::kCleanBoot;
  std::string detail;  // fault message / damage note, when any
  bool triggered = false;
  /// Interpreter steps the boot retired.
  uint64_t steps = 0;
  /// Flight-recorder post-mortem (non-clean outcomes, recorder enabled via
  /// DriverCampaignConfig::flight_recorder on the base config). The recorder
  /// wraps *outside* the fault injector, so the trace shows the faulted
  /// values the driver actually saw.
  std::string trace;
};

struct FaultCampaignConfig {
  /// Driver, stubs, device binding, entry, engine, threads, step budget and
  /// seed come from the embedded mutation-campaign config; its
  /// mutation-only knobs (sample_percent, dedup, prefix_cache) are ignored
  /// here but still pinned by the shard fingerprint.
  DriverCampaignConfig base;
  /// Trigger offsets: every (port, kind, mask) cell of the matrix is
  /// instantiated once per offset, arming the fault on the (offset+1)-th
  /// matching access. The defaults probe the first accesses plus a later
  /// one so polling loops and re-reads get distinct scenarios.
  std::vector<uint32_t> triggers = {0, 1, 2, 7};
  /// Percentage of the scenario matrix booted, sampled deterministically
  /// from a seed folded over the device shape only (never the driver
  /// text), so a device's C and CDevil campaigns boot the same scenarios.
  unsigned sample_percent = 100;
};

struct FaultCampaignResult {
  std::string device;
  std::string entry;
  size_t total_scenarios = 0;      // full matrix, before sampling
  size_t sampled_scenarios = 0;    // records in this result
  size_t triggered_scenarios = 0;  // records whose fault actually fired
  int64_t clean_fingerprint = 0;
  /// Deterministic baseline telemetry, as in DriverCampaignResult: the
  /// healthy-hardware boot's step count and VM opcode profile.
  uint64_t baseline_steps = 0;
  minic::bytecode::OpcodeProfile baseline_opcodes;
  FaultTally tally;
  std::vector<FaultRecord> records;  // in sampled-scenario order
};

/// The deterministic scenario matrix for one device window: for every port
/// in [port_base, port_base + port_span), every fault kind — the three
/// bit-level kinds (stuck-at-0, stuck-at-1, flip-once) over each of the 8
/// low bit masks, then drop-write, floating-bus and never-ready(0) — each
/// instantiated per trigger offset. Event-driven bindings (irq_line >= 0)
/// append event rows after the port rows: lost / spurious / storm(8) /
/// delay(1000 steps) per trigger offset, with `plan.port` naming the IRQ
/// line. Enumeration order is fixed and part of the artifact contract
/// (scenario_index identifies a scenario).
[[nodiscard]] std::vector<hw::FaultPlan> fault_scenario_matrix(
    const DeviceBinding& device, const std::vector<uint32_t>& triggers);

/// The scenario-sampling seed: folded over the device shape (name, port
/// window), the trigger list and the base seed — deliberately NOT the
/// driver or stub text, so the C and CDevil campaigns of one device sample
/// identical scenario subsets and stay comparable.
[[nodiscard]] uint64_t fault_scenario_seed(const FaultCampaignConfig& config);

/// Runs the full fault campaign. Preconditions mirror run_driver_campaign
/// (std::logic_error naming the device otherwise): populated binding, and a
/// clean driver that compiles, boots fault-free without device damage, and
/// returns a positive fingerprint.
[[nodiscard]] FaultCampaignResult run_fault_campaign(
    const FaultCampaignConfig& config);

/// Sliced variant for process-level sharding: identical preparation, but
/// only the sampled scenarios in `slice` are booted. The sideband
/// (optional) reports the global sample size and slice bounds; its
/// dedup/cache vectors stay empty (fault scenarios are never deduped). The
/// {0, 1} slice is exactly run_fault_campaign.
[[nodiscard]] FaultCampaignResult run_fault_campaign_slice(
    const FaultCampaignConfig& config, SampleSlice slice,
    CampaignSideband* sideband = nullptr);

}  // namespace eval
