// Process-level campaign sharding: run one `shard i/N` slice of a driver
// campaign and serialize the result as a mergeable artifact.
//
// A shard artifact is the recovery-friendly unit of work for scaling the
// campaigns past one process (or one host): it carries everything a merge
// needs to reassemble the exact single-process result — the per-mutant
// records with their canonical dedup-key hashes, the slice bounds, the
// shard-local tallies/counters, and a config fingerprint that pins the
// campaign configuration the shard actually ran. eval/merge.h recombines
// artifacts and rejects any set whose fingerprints, shard counts or slice
// bounds do not tile one campaign.
//
// Shard indices are 1-based in specs and artifacts ("shard 1/3".."3/3"),
// matching the CLI `--shard i/N`; the in-process SampleSlice stays 0-based.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "eval/driver_campaign.h"
#include "eval/fault_campaign.h"
#include "eval/metrics.h"

namespace eval {

/// 1-based shard coordinates: this process runs slice `index` of `count`.
struct ShardSpec {
  unsigned index = 1;
  unsigned count = 1;

  [[nodiscard]] std::string to_string() const {
    return std::to_string(index) + "/" + std::to_string(count);
  }
};

/// Parses "i/N" (1 <= i <= N, decimal, no extra characters). Throws
/// std::invalid_argument with a diagnostic naming the bad spec otherwise —
/// "0/3" and "4/3" are rejected, not clamped.
[[nodiscard]] ShardSpec parse_shard_spec(const std::string& text);

/// One sampled mutant's outcome inside a shard artifact: the MutantRecord
/// plus the sideband the merge needs (whether this record compiled through
/// the prefix cache, and the 128-bit canonical dedup-key hash used to
/// re-dedup across shards; the hash is (0,0) when the campaign ran with
/// dedup off).
struct ShardRecord {
  MutantRecord rec;
  bool cache_hit = false;
  uint64_t key_hi = 0;
  uint64_t key_lo = 0;
};

/// One campaign's shard slice, as serialized. `label` distinguishes the
/// paper's two campaigns per device ("C", "CDevil"); `fingerprint` is a
/// 128-bit hex digest of every config field that can change records or
/// counters (driver and stub text, device binding, entry, sample seed and
/// percent, step budget, engine, dedup and prefix-cache flags — but not
/// the thread count, which never changes results). Tallies and counters
/// are shard-local; the merge recomputes the global ones.
struct ShardArtifact {
  std::string device;
  std::string label;
  std::string entry;
  std::string engine;  // minic::exec_engine_name of the engine that ran
  std::string fingerprint;
  bool dedup = true;

  size_t sample_size = 0;   // full campaign sample, before slicing
  size_t slice_begin = 0;   // this shard's range, in sample positions
  size_t slice_end = 0;
  size_t total_sites = 0;
  size_t total_mutants = 0;
  int64_t clean_fingerprint = 0;

  size_t deduped_mutants = 0;    // shard-local (dedup never crosses shards)
  size_t prefix_cache_hits = 0;  // shard-local
  /// Bytecode-patch telemetry: sums of the records' `patched` and
  /// `patch_fallback` bits. Deliberately absent from the fingerprint —
  /// patching can never change records or tallies, only these counters.
  size_t patch_hits = 0;         // shard-local
  size_t patch_fallbacks = 0;    // shard-local
  Tally tally;                   // shard-local, over `records`

  /// Deterministic baseline telemetry (DriverCampaignResult): every shard
  /// recomputes identical values; the merge validates agreement.
  uint64_t baseline_steps = 0;
  minic::bytecode::OpcodeProfile baseline_opcodes;

  std::vector<ShardRecord> records;
};

/// One fault-injection campaign's shard slice (eval/fault_campaign.h), as
/// serialized. Mirrors ShardArtifact: `fingerprint` pins the fault-campaign
/// configuration (fault_campaign_fingerprint), tallies and the triggered
/// count are shard-local, and the merge recomputes the global ones. Fault
/// scenarios are never deduped, so there is no sideband beyond the records.
struct FaultShardArtifact {
  std::string device;
  std::string label;
  std::string entry;
  std::string engine;  // minic::exec_engine_name of the engine that ran
  std::string fingerprint;

  size_t total_scenarios = 0;  // full matrix, before sampling
  size_t sample_size = 0;      // sampled scenarios, before slicing
  size_t slice_begin = 0;      // this shard's range, in sample positions
  size_t slice_end = 0;
  int64_t clean_fingerprint = 0;

  size_t triggered = 0;  // shard-local: records whose fault fired
  FaultTally tally;      // shard-local, over `records`

  /// Deterministic baseline telemetry, as on ShardArtifact.
  uint64_t baseline_steps = 0;
  minic::bytecode::OpcodeProfile baseline_opcodes;

  std::vector<FaultRecord> records;
};

/// A serialized shard file: the shard coordinates plus one artifact per
/// campaign the process ran (the CLI writes C and CDevil per device).
/// `fault_campaigns` is populated by `--faults` runs; mutation-campaign
/// bundles leave it empty and their serialized form is unchanged.
struct ShardBundle {
  ShardSpec shard;
  std::vector<ShardArtifact> campaigns;
  std::vector<FaultShardArtifact> fault_campaigns;
  /// Optional process telemetry for this shard (the CLI embeds it when run
  /// with `--metrics`). Timings only — never part of merge validation; the
  /// merge aggregates whatever bundles carry it (eval/merge.h).
  bool has_metrics = false;
  ProcessMetrics metrics;
};

/// Fingerprint of everything in `config` that determines campaign results
/// and counters (see ShardArtifact::fingerprint). 32 hex chars.
[[nodiscard]] std::string campaign_fingerprint(
    const DriverCampaignConfig& config);

/// Runs slice `spec` of the campaign and packages the artifact. The
/// underlying kernel is run_driver_campaign_slice, so an artifact's records
/// are byte-identical to the matching subrange of the unsharded campaign,
/// at any thread count.
[[nodiscard]] ShardArtifact run_campaign_shard(
    const DriverCampaignConfig& config, const std::string& label,
    ShardSpec spec);

/// Fingerprint of everything in a fault-campaign config that determines
/// records and counters: the embedded campaign fingerprint (driver, stubs,
/// device, entry, seed, step budget, engine, ...) plus the fault knobs
/// (trigger list, scenario sample percent). 32 hex chars.
[[nodiscard]] std::string fault_campaign_fingerprint(
    const FaultCampaignConfig& config);

/// Runs slice `spec` of the fault campaign and packages the artifact
/// (kernel: run_fault_campaign_slice — same byte-identity guarantees as
/// run_campaign_shard).
[[nodiscard]] FaultShardArtifact run_fault_campaign_shard(
    const FaultCampaignConfig& config, const std::string& label,
    ShardSpec spec);

/// JSON round trip. serialize is byte-stable (equal bundles yield equal
/// bytes); parse validates the format tag, version and every field's
/// presence and type, recomputes the per-artifact tally/counters from the
/// records, and throws std::runtime_error with a clear diagnostic on
/// truncated, corrupt or internally inconsistent input.
[[nodiscard]] std::string serialize_shard_bundle(const ShardBundle& bundle);
[[nodiscard]] ShardBundle parse_shard_bundle(const std::string& text);

/// Thrown when a shard artifact cannot be written (unwritable directory,
/// full disk, rename failure). The CLI maps it to exit code 2; the message
/// names the path and the failing step. The target file is never left
/// partially written: writes go to `<path>.tmp` and the temporary is
/// removed on failure.
class ArtifactWriteError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Shard-local metrics rows (eval/metrics.h): the deterministic counters of
/// one artifact's slice. Only comparable against the same slice — the
/// merged artifact's rows are the globally comparable ones.
[[nodiscard]] CampaignMetricsRow shard_metrics_row(const ShardArtifact& a);
[[nodiscard]] CampaignMetricsRow shard_fault_metrics_row(
    const FaultShardArtifact& a);

/// Atomically writes `text` (plus a trailing newline) to `path` via the
/// `<path>.tmp` + rename protocol described on ArtifactWriteError. Shared by
/// every artifact writer (shard bundles, metrics artifacts) so they all have
/// the same crash/full-disk story and diagnostics.
void write_artifact_atomically(const std::string& path,
                               const std::string& text);

/// File convenience wrappers. save is atomic: the bundle is written to
/// `<path>.tmp` and renamed over `path` only after a successful flush, so a
/// crash or full disk never leaves a partial or lost artifact; write
/// failures throw ArtifactWriteError. load/parse errors throw
/// std::runtime_error prefixed with the path.
void save_shard_bundle(const std::string& path, const ShardBundle& bundle);
[[nodiscard]] ShardBundle load_shard_bundle(const std::string& path);

}  // namespace eval
