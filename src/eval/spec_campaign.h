// Table 2 campaign: inject Devil-spec mutants, count how many the Devil
// compiler rejects.
#pragma once

#include <string>
#include <vector>

#include "corpus/specs.h"

namespace eval {

struct SpecCampaignRow {
  std::string name;
  int code_lines = 0;        // non-blank, non-comment lines (Table 2 col 1)
  size_t sites = 0;          // mutation sites (col 2)
  size_t mutants = 0;        // injected mutants (col 3)
  size_t detected = 0;       // rejected by the Devil compiler
  /// Mutants that skipped their own `check_spec` run because their mutated
  /// spec lexes to an already-seen canonical token stream; their detection
  /// flag comes from the representative. Tallies are unchanged (ctest).
  size_t deduped = 0;
  std::vector<std::string> undetected_samples;  // a few survivors, for study
};

struct SpecCampaignConfig {
  size_t max_survivor_samples = 8;
  /// Worker threads checking mutants; 0 = hardware_concurrency. Rows are
  /// identical at any thread count (detection flags are written per-index
  /// and reduced in mutant order after the join).
  unsigned threads = 1;
  /// Canonical token-class dedup, as in `DriverCampaignConfig::dedup`:
  /// stream-identical mutants run the Devil compiler once.
  bool dedup = true;
};

/// Runs the full (unsampled) mutation campaign over one specification.
/// Precondition: the unmutated spec must pass the Devil compiler; throws
/// std::logic_error otherwise (that is a corpus bug, not a result).
[[nodiscard]] SpecCampaignRow run_spec_campaign(
    const corpus::SpecEntry& spec, const SpecCampaignConfig& config);

/// Convenience overload keeping the original signature.
[[nodiscard]] SpecCampaignRow run_spec_campaign(const corpus::SpecEntry& spec,
                                                size_t max_survivor_samples = 8);

/// All five Table 2 rows.
[[nodiscard]] std::vector<SpecCampaignRow> run_all_spec_campaigns(
    unsigned threads = 1);

}  // namespace eval
