// Standard device bindings for the driver campaigns. This is the only file
// under src/eval/ that names concrete device models or their port windows;
// the campaign kernel itself (driver_campaign.{h,cc}) is device-agnostic.
#pragma once

#include <string>
#include <vector>

#include "eval/driver_campaign.h"

namespace eval {

/// PIIX4 IDE disk at 0x1f0..0x1f7, entry `ide_boot` (the paper's §4.2
/// device under test).
[[nodiscard]] DeviceBinding ide_binding();

/// Logitech busmouse at 0x23c..0x23f, entry `mouse_boot` (the paper's
/// running example, Fig. 1-3).
[[nodiscard]] DeviceBinding busmouse_binding();

/// Event-driven variants of the two standard devices. Same port windows and
/// device models, but the binding carries an IRQ line (IDE on 6, busmouse on
/// 5 — the classic PC assignments), the campaign kernels map the IRQ status
/// window alongside, and the boot entries (`ide_irq_boot` / `mouse_irq_boot`)
/// belong to interrupt-driven driver corpora. The busmouse factory preloads
/// one motion report as power-on state so every boot has an event to deliver.
[[nodiscard]] DeviceBinding ide_irq_binding();
[[nodiscard]] DeviceBinding busmouse_irq_binding();

/// All bindings with full campaign corpora, in stable report order.
[[nodiscard]] const std::vector<DeviceBinding>& standard_bindings();

/// Looks up a standard binding by device name ("ide", "busmouse").
/// Throws std::logic_error listing the known names otherwise.
[[nodiscard]] DeviceBinding binding_for(const std::string& device);

}  // namespace eval
