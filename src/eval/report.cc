#include "eval/report.h"

#include <set>
#include <sstream>

#include "support/table.h"

namespace eval {

std::string render_table2(const std::vector<SpecCampaignRow>& rows) {
  support::TextTable t({"Specification", "Number of lines",
                        "Number of mutation sites", "Number of injected mutants",
                        "% of detected mutants"});
  for (const auto& r : rows) {
    t.add_row({r.name, std::to_string(r.code_lines), std::to_string(r.sites),
               std::to_string(r.mutants),
               support::percent(r.detected, r.mutants)});
  }
  return t.render();
}

namespace {
void add_outcome_row(support::TextTable& t, const DriverCampaignResult& r,
                     Outcome o) {
  t.add_row({outcome_name(o), std::to_string(r.tally.sites_of(o)),
             std::to_string(r.tally.mutants_of(o)),
             support::percent(r.tally.mutants_of(o), r.sampled_mutants)});
}
}  // namespace

std::string render_driver_table(const std::string& title,
                                const DriverCampaignResult& r) {
  std::ostringstream os;
  os << title << "\n";
  support::TextTable t({"", "Number of mutation sites", "Number of mutants",
                        "Concerned mutants / total nb. of mutants"});
  add_outcome_row(t, r, Outcome::kCompileTime);
  if (r.tally.mutants_of(Outcome::kRunTime) > 0) {
    add_outcome_row(t, r, Outcome::kRunTime);
  }
  add_outcome_row(t, r, Outcome::kCrash);
  add_outcome_row(t, r, Outcome::kInfiniteLoop);
  add_outcome_row(t, r, Outcome::kHalt);
  add_outcome_row(t, r, Outcome::kDamagedBoot);
  add_outcome_row(t, r, Outcome::kBoot);
  if (r.tally.mutants_of(Outcome::kDeadCode) > 0) {
    add_outcome_row(t, r, Outcome::kDeadCode);
  }
  t.add_separator();
  t.add_row({"Total", std::to_string(r.total_sites),
             std::to_string(r.sampled_mutants), "N/A"});
  os << t.render();
  os << "(" << r.total_mutants << " mutants generated, " << r.sampled_mutants
     << " sampled for testing";
  if (!r.device.empty()) os << ", device " << r.device;
  if (!r.entry.empty()) os << ", entry " << r.entry;
  os << ")\n";
  return os.str();
}

std::string render_comparison(const DriverCampaignResult& c_result,
                              const DriverCampaignResult& d_result) {
  auto pct = [](size_t n, size_t d) {
    return d == 0 ? 0.0 : 100.0 * static_cast<double>(n) /
                              static_cast<double>(d);
  };
  double c_detected = pct(c_result.tally.detected(), c_result.sampled_mutants);
  double d_detected = pct(d_result.tally.detected(), d_result.sampled_mutants);
  double c_boot = pct(c_result.tally.mutants_of(Outcome::kBoot),
                      c_result.sampled_mutants);
  double d_boot = pct(d_result.tally.mutants_of(Outcome::kBoot),
                      d_result.sampled_mutants);

  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(1);
  if (!c_result.device.empty() || !d_result.device.empty()) {
    os << "Device under test: " << c_result.device;
    if (d_result.device != c_result.device) {
      os << " (C) vs " << d_result.device << " (CDevil)";
    }
    os << "\n";
  }
  os << "Detected at compile time or run time:\n";
  os << "  original C driver : " << c_detected << " %\n";
  os << "  Devil (CDevil)    : " << d_detected << " %";
  if (c_detected > 0) {
    os << "   (" << (d_detected / c_detected) << "x more errors detected)";
  }
  os << "\n";
  os << "Undetected 'Boot' mutants (the worst case for the developer):\n";
  os << "  original C driver : " << c_boot << " %\n";
  os << "  Devil (CDevil)    : " << d_boot << " %";
  if (d_boot > 0) {
    os << "   (" << (c_boot / d_boot) << "x fewer undetected errors)";
  }
  os << "\n";
  return os.str();
}

std::string render_campaign_tables(const DriverCampaignResult& c_result,
                                   const DriverCampaignResult& d_result) {
  // Each table is tagged with its own result's device, so a mismatched
  // pair (wiring mistake, or a deliberate cross-device comparison) is
  // visible instead of silently labelled after the first result.
  auto tag = [](const DriverCampaignResult& r) {
    return r.device.empty() ? std::string() : " (" + r.device + ")";
  };
  std::ostringstream os;
  os << render_driver_table("Table 3: original C driver" + tag(c_result),
                            c_result)
     << "\n"
     << render_driver_table("Table 4: CDevil driver" + tag(d_result),
                            d_result)
     << "\n" << render_comparison(c_result, d_result);
  return os.str();
}

namespace {
void add_fault_row(support::TextTable& t, const FaultCampaignResult& r,
                   FaultOutcome o) {
  t.add_row({fault_outcome_name(o), std::to_string(r.tally.ports_of(o)),
             std::to_string(r.tally.scenarios_of(o)),
             support::percent(r.tally.scenarios_of(o), r.sampled_scenarios)});
}
}  // namespace

std::string render_fault_table(const std::string& title,
                               const FaultCampaignResult& r) {
  std::ostringstream os;
  os << title << "\n";
  support::TextTable t({"", "Number of ports", "Number of scenarios",
                        "Concerned scenarios / total nb. of scenarios"});
  if (r.tally.scenarios_of(FaultOutcome::kDevilCheck) > 0) {
    add_fault_row(t, r, FaultOutcome::kDevilCheck);
  }
  add_fault_row(t, r, FaultOutcome::kDriverPanic);
  add_fault_row(t, r, FaultOutcome::kCrash);
  add_fault_row(t, r, FaultOutcome::kHang);
  add_fault_row(t, r, FaultOutcome::kCorruptBoot);
  add_fault_row(t, r, FaultOutcome::kCleanBoot);
  t.add_separator();
  std::set<uint32_t> all_ports;
  for (const auto& [outcome, ports] : r.tally.ports) {
    all_ports.insert(ports.begin(), ports.end());
  }
  t.add_row({"Total", std::to_string(all_ports.size()),
             std::to_string(r.sampled_scenarios), "N/A"});
  os << t.render();
  os << "(" << r.total_scenarios << " scenarios generated, "
     << r.sampled_scenarios << " sampled for testing, "
     << r.triggered_scenarios << " triggered the fault";
  if (!r.device.empty()) os << ", device " << r.device;
  if (!r.entry.empty()) os << ", entry " << r.entry;
  os << ")\n";
  return os.str();
}

std::string render_fault_comparison(const FaultCampaignResult& c_result,
                                    const FaultCampaignResult& d_result) {
  auto pct = [](size_t n, size_t d) {
    return d == 0 ? 0.0 : 100.0 * static_cast<double>(n) /
                              static_cast<double>(d);
  };
  double c_detected = pct(c_result.tally.detected(),
                          c_result.sampled_scenarios);
  double d_detected = pct(d_result.tally.detected(),
                          d_result.sampled_scenarios);
  double c_silent = pct(c_result.tally.scenarios_of(FaultOutcome::kCorruptBoot),
                        c_result.sampled_scenarios);
  double d_silent = pct(d_result.tally.scenarios_of(FaultOutcome::kCorruptBoot),
                        d_result.sampled_scenarios);

  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(1);
  if (!c_result.device.empty() || !d_result.device.empty()) {
    os << "Device under test: " << c_result.device;
    if (d_result.device != c_result.device) {
      os << " (C) vs " << d_result.device << " (CDevil)";
    }
    os << "\n";
  }
  os << "Injected hardware faults detected (Devil check or driver panic):\n";
  os << "  original C driver : " << c_detected << " %\n";
  os << "  Devil (CDevil)    : " << d_detected << " %";
  if (c_detected > 0) {
    os << "   (" << (d_detected / c_detected) << "x more faults detected)";
  }
  os << "\n";
  os << "Silent corrupt boots (the worst case for the developer):\n";
  os << "  original C driver : " << c_silent << " %\n";
  os << "  Devil (CDevil)    : " << d_silent << " %";
  if (d_silent > 0) {
    os << "   (" << (c_silent / d_silent) << "x fewer silent corruptions)";
  }
  os << "\n";
  return os.str();
}

std::string render_fault_tables(const FaultCampaignResult& c_result,
                                const FaultCampaignResult& d_result) {
  auto tag = [](const FaultCampaignResult& r) {
    return r.device.empty() ? std::string() : " (" + r.device + ")";
  };
  std::ostringstream os;
  os << render_fault_table(
            "Table F3: original C driver under injected hardware faults" +
                tag(c_result),
            c_result)
     << "\n"
     << render_fault_table(
            "Table F4: CDevil driver under injected hardware faults" +
                tag(d_result),
            d_result)
     << "\n" << render_fault_comparison(c_result, d_result);
  return os.str();
}

}  // namespace eval
