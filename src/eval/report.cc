#include "eval/report.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "support/table.h"

namespace eval {

std::string render_table2(const std::vector<SpecCampaignRow>& rows) {
  support::TextTable t({"Specification", "Number of lines",
                        "Number of mutation sites", "Number of injected mutants",
                        "% of detected mutants"});
  for (const auto& r : rows) {
    t.add_row({r.name, std::to_string(r.code_lines), std::to_string(r.sites),
               std::to_string(r.mutants),
               support::percent(r.detected, r.mutants)});
  }
  return t.render();
}

namespace {
void add_outcome_row(support::TextTable& t, const DriverCampaignResult& r,
                     Outcome o) {
  t.add_row({outcome_name(o), std::to_string(r.tally.sites_of(o)),
             std::to_string(r.tally.mutants_of(o)),
             support::percent(r.tally.mutants_of(o), r.sampled_mutants)});
}

support::TextTable build_driver_table(const DriverCampaignResult& r) {
  support::TextTable t({"", "Number of mutation sites", "Number of mutants",
                        "Concerned mutants / total nb. of mutants"});
  add_outcome_row(t, r, Outcome::kCompileTime);
  if (r.tally.mutants_of(Outcome::kRunTime) > 0) {
    add_outcome_row(t, r, Outcome::kRunTime);
  }
  add_outcome_row(t, r, Outcome::kCrash);
  add_outcome_row(t, r, Outcome::kInfiniteLoop);
  add_outcome_row(t, r, Outcome::kHalt);
  add_outcome_row(t, r, Outcome::kDamagedBoot);
  add_outcome_row(t, r, Outcome::kBoot);
  if (r.tally.mutants_of(Outcome::kDeadCode) > 0) {
    add_outcome_row(t, r, Outcome::kDeadCode);
  }
  t.add_separator();
  t.add_row({"Total", std::to_string(r.total_sites),
             std::to_string(r.sampled_mutants), "N/A"});
  return t;
}

std::string render_driver_table_at(const std::string& title,
                                   const DriverCampaignResult& r,
                                   const support::TextTable& t,
                                   const std::vector<size_t>& widths) {
  std::ostringstream os;
  os << title << "\n";
  os << t.render(widths);
  os << "(" << r.total_mutants << " mutants generated, " << r.sampled_mutants
     << " sampled for testing";
  if (!r.device.empty()) os << ", device " << r.device;
  if (!r.entry.empty()) os << ", entry " << r.entry;
  os << ")\n";
  return os.str();
}

/// Element-wise max of two tables' natural widths: the shared column grid
/// for a C/CDevil table pair, so the two tables of one device section line
/// up even when only one of them carries the long outcome labels.
std::vector<size_t> shared_widths(const support::TextTable& a,
                                  const support::TextTable& b) {
  std::vector<size_t> wa = a.measure();
  std::vector<size_t> wb = b.measure();
  if (wb.size() > wa.size()) wa.resize(wb.size(), 0);
  for (size_t c = 0; c < wb.size(); ++c) wa[c] = std::max(wa[c], wb[c]);
  return wa;
}

/// Appends an indented flight-recorder tail (hw::FlightRecorder::
/// render_tail) under a one-line record header.
void append_trace(std::ostringstream& os, const std::string& trace) {
  size_t pos = 0;
  while (pos < trace.size()) {
    size_t nl = trace.find('\n', pos);
    if (nl == std::string::npos) nl = trace.size();
    os << "    " << trace.substr(pos, nl - pos) << "\n";
    pos = nl + 1;
  }
}
}  // namespace

std::string render_driver_table(const std::string& title,
                                const DriverCampaignResult& r) {
  return render_driver_table_at(title, r, build_driver_table(r), {});
}

std::string render_comparison(const DriverCampaignResult& c_result,
                              const DriverCampaignResult& d_result) {
  auto pct = [](size_t n, size_t d) {
    return d == 0 ? 0.0 : 100.0 * static_cast<double>(n) /
                              static_cast<double>(d);
  };
  double c_detected = pct(c_result.tally.detected(), c_result.sampled_mutants);
  double d_detected = pct(d_result.tally.detected(), d_result.sampled_mutants);
  double c_boot = pct(c_result.tally.mutants_of(Outcome::kBoot),
                      c_result.sampled_mutants);
  double d_boot = pct(d_result.tally.mutants_of(Outcome::kBoot),
                      d_result.sampled_mutants);

  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(1);
  if (!c_result.device.empty() || !d_result.device.empty()) {
    os << "Device under test: " << c_result.device;
    if (d_result.device != c_result.device) {
      os << " (C) vs " << d_result.device << " (CDevil)";
    }
    os << "\n";
  }
  os << "Detected at compile time or run time:\n";
  os << "  original C driver : " << c_detected << " %\n";
  os << "  Devil (CDevil)    : " << d_detected << " %";
  if (c_detected > 0) {
    os << "   (" << (d_detected / c_detected) << "x more errors detected)";
  }
  os << "\n";
  os << "Undetected 'Boot' mutants (the worst case for the developer):\n";
  os << "  original C driver : " << c_boot << " %\n";
  os << "  Devil (CDevil)    : " << d_boot << " %";
  if (d_boot > 0) {
    os << "   (" << (c_boot / d_boot) << "x fewer undetected errors)";
  }
  os << "\n";
  return os.str();
}

std::string render_campaign_tables(const DriverCampaignResult& c_result,
                                   const DriverCampaignResult& d_result) {
  // Each table is tagged with its own result's device, so a mismatched
  // pair (wiring mistake, or a deliberate cross-device comparison) is
  // visible instead of silently labelled after the first result.
  auto tag = [](const DriverCampaignResult& r) {
    return r.device.empty() ? std::string() : " (" + r.device + ")";
  };
  // The pair shares one column grid: a row label or count that only one of
  // the two campaigns produces (a run-time check line, a long driver label)
  // widens both tables, keeping the device section aligned.
  support::TextTable c_table = build_driver_table(c_result);
  support::TextTable d_table = build_driver_table(d_result);
  std::vector<size_t> widths = shared_widths(c_table, d_table);
  std::ostringstream os;
  os << render_driver_table_at("Table 3: original C driver" + tag(c_result),
                               c_result, c_table, widths)
     << "\n"
     << render_driver_table_at("Table 4: CDevil driver" + tag(d_result),
                               d_result, d_table, widths)
     << "\n" << render_comparison(c_result, d_result);
  return os.str();
}

namespace {
void add_fault_row(support::TextTable& t, const FaultCampaignResult& r,
                   FaultOutcome o) {
  t.add_row({fault_outcome_name(o), std::to_string(r.tally.ports_of(o)),
             std::to_string(r.tally.scenarios_of(o)),
             support::percent(r.tally.scenarios_of(o), r.sampled_scenarios)});
}

support::TextTable build_fault_table(const FaultCampaignResult& r) {
  support::TextTable t({"", "Number of ports", "Number of scenarios",
                        "Concerned scenarios / total nb. of scenarios"});
  if (r.tally.scenarios_of(FaultOutcome::kDevilCheck) > 0) {
    add_fault_row(t, r, FaultOutcome::kDevilCheck);
  }
  add_fault_row(t, r, FaultOutcome::kDriverPanic);
  add_fault_row(t, r, FaultOutcome::kCrash);
  add_fault_row(t, r, FaultOutcome::kHang);
  add_fault_row(t, r, FaultOutcome::kCorruptBoot);
  add_fault_row(t, r, FaultOutcome::kCleanBoot);
  t.add_separator();
  std::set<uint32_t> all_ports;
  for (const auto& [outcome, ports] : r.tally.ports) {
    all_ports.insert(ports.begin(), ports.end());
  }
  t.add_row({"Total", std::to_string(all_ports.size()),
             std::to_string(r.sampled_scenarios), "N/A"});
  return t;
}

std::string render_fault_table_at(const std::string& title,
                                  const FaultCampaignResult& r,
                                  const support::TextTable& t,
                                  const std::vector<size_t>& widths) {
  std::ostringstream os;
  os << title << "\n";
  os << t.render(widths);
  os << "(" << r.total_scenarios << " scenarios generated, "
     << r.sampled_scenarios << " sampled for testing, "
     << r.triggered_scenarios << " triggered the fault";
  if (!r.device.empty()) os << ", device " << r.device;
  if (!r.entry.empty()) os << ", entry " << r.entry;
  os << ")\n";
  return os.str();
}
}  // namespace

std::string render_fault_table(const std::string& title,
                               const FaultCampaignResult& r) {
  return render_fault_table_at(title, r, build_fault_table(r), {});
}

std::string render_fault_comparison(const FaultCampaignResult& c_result,
                                    const FaultCampaignResult& d_result) {
  auto pct = [](size_t n, size_t d) {
    return d == 0 ? 0.0 : 100.0 * static_cast<double>(n) /
                              static_cast<double>(d);
  };
  double c_detected = pct(c_result.tally.detected(),
                          c_result.sampled_scenarios);
  double d_detected = pct(d_result.tally.detected(),
                          d_result.sampled_scenarios);
  double c_silent = pct(c_result.tally.scenarios_of(FaultOutcome::kCorruptBoot),
                        c_result.sampled_scenarios);
  double d_silent = pct(d_result.tally.scenarios_of(FaultOutcome::kCorruptBoot),
                        d_result.sampled_scenarios);

  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(1);
  if (!c_result.device.empty() || !d_result.device.empty()) {
    os << "Device under test: " << c_result.device;
    if (d_result.device != c_result.device) {
      os << " (C) vs " << d_result.device << " (CDevil)";
    }
    os << "\n";
  }
  os << "Injected hardware faults detected (Devil check or driver panic):\n";
  os << "  original C driver : " << c_detected << " %\n";
  os << "  Devil (CDevil)    : " << d_detected << " %";
  if (c_detected > 0) {
    os << "   (" << (d_detected / c_detected) << "x more faults detected)";
  }
  os << "\n";
  os << "Silent corrupt boots (the worst case for the developer):\n";
  os << "  original C driver : " << c_silent << " %\n";
  os << "  Devil (CDevil)    : " << d_silent << " %";
  if (d_silent > 0) {
    os << "   (" << (c_silent / d_silent) << "x fewer silent corruptions)";
  }
  os << "\n";
  return os.str();
}

std::string render_postmortems(const std::string& title,
                               const DriverCampaignResult& r, size_t cap) {
  size_t traced = 0;
  for (const auto& rec : r.records) {
    if (!rec.trace.empty()) ++traced;
  }
  if (traced == 0 || cap == 0) return {};
  std::ostringstream os;
  os << "Flight-recorder post-mortems: " << title << " (first "
     << std::min(cap, traced) << " of " << traced << " traced records)\n";
  size_t shown = 0;
  for (const auto& rec : r.records) {
    if (rec.trace.empty()) continue;
    if (shown == cap) break;
    ++shown;
    os << "  mutant " << rec.mutant_index << ", site " << rec.site << ": "
       << outcome_name(rec.outcome);
    if (!rec.detail.empty()) os << " (" << rec.detail << ")";
    os << "\n";
    append_trace(os, rec.trace);
  }
  return os.str();
}

std::string render_fault_postmortems(const std::string& title,
                                     const FaultCampaignResult& r,
                                     size_t cap) {
  size_t traced = 0;
  for (const auto& rec : r.records) {
    if (!rec.trace.empty()) ++traced;
  }
  if (traced == 0 || cap == 0) return {};
  std::ostringstream os;
  os << "Flight-recorder post-mortems: " << title << " (first "
     << std::min(cap, traced) << " of " << traced << " traced records)\n";
  size_t shown = 0;
  for (const auto& rec : r.records) {
    if (rec.trace.empty()) continue;
    if (shown == cap) break;
    ++shown;
    os << "  scenario " << rec.scenario_index << " (" << rec.plan.describe()
       << "): " << fault_outcome_name(rec.outcome);
    if (!rec.detail.empty()) os << " (" << rec.detail << ")";
    os << "\n";
    append_trace(os, rec.trace);
  }
  return os.str();
}

std::string render_fault_tables(const FaultCampaignResult& c_result,
                                const FaultCampaignResult& d_result) {
  auto tag = [](const FaultCampaignResult& r) {
    return r.device.empty() ? std::string() : " (" + r.device + ")";
  };
  // Shared column grid across the pair, as in render_campaign_tables.
  support::TextTable c_table = build_fault_table(c_result);
  support::TextTable d_table = build_fault_table(d_result);
  std::vector<size_t> widths = shared_widths(c_table, d_table);
  std::ostringstream os;
  os << render_fault_table_at(
            "Table F3: original C driver under injected hardware faults" +
                tag(c_result),
            c_result, c_table, widths)
     << "\n"
     << render_fault_table_at(
            "Table F4: CDevil driver under injected hardware faults" +
                tag(d_result),
            d_result, d_table, widths)
     << "\n" << render_fault_comparison(c_result, d_result);
  return os.str();
}

std::string render_device_section(const std::string& device,
                                  const DriverCampaignResult& c_result,
                                  const DriverCampaignResult& d_result) {
  std::ostringstream os;
  os << "=== " << device << " ===\n\n"
     << render_campaign_tables(c_result, d_result) << "\n"
     << "Engine counters [" << device << "]: C dedup "
     << c_result.deduped_mutants << "/" << c_result.sampled_mutants
     << ", prefix-cache " << c_result.prefix_cache_hits << "; CDevil dedup "
     << d_result.deduped_mutants << "/" << d_result.sampled_mutants
     << ", prefix-cache " << d_result.prefix_cache_hits << "\n";
  // Empty unless the campaign ran with the flight recorder (traces ride in
  // the records, so merged and dispatched reports print identical
  // post-mortems).
  std::string pm = render_postmortems("C", c_result, 3) +
                   render_postmortems("CDevil", d_result, 3);
  if (!pm.empty()) os << "\n" << pm;
  return os.str();
}

std::string render_fault_section(const std::string& device,
                                 const FaultCampaignResult& c_result,
                                 const FaultCampaignResult& d_result) {
  std::ostringstream os;
  os << "=== " << device << " (fault injection) ===\n\n"
     << render_fault_tables(c_result, d_result) << "\n"
     << "Scenario counters [" << device << "]: C triggered "
     << c_result.triggered_scenarios << "/" << c_result.sampled_scenarios
     << "; CDevil triggered " << d_result.triggered_scenarios << "/"
     << d_result.sampled_scenarios << "\n";
  std::string pm = render_fault_postmortems("C", c_result, 3) +
                   render_fault_postmortems("CDevil", d_result, 3);
  if (!pm.empty()) os << "\n" << pm;
  return os.str();
}

}  // namespace eval
