// The unified campaign request: one serializable value type covering the
// driver-mutation (Tables 3/4), fault-injection and spec-mutation (Table 2)
// campaigns. The CLI flag parser, the campaign service wire format and the
// library entry points all build on this one struct, so a campaign
// configuration has exactly one source of truth:
//
//  - `validate_campaign_spec` turns a bad spec into actionable diagnostics
//    before anything boots;
//  - `campaign_spec_to_json` / `campaign_spec_from_json` are a strict,
//    byte-stable round trip on support/json_io (the wire codec);
//  - the `driver_configs_for` / `fault_configs_for` / `spec_campaign_config_
//    for` derivations produce the per-device DriverCampaignConfig /
//    FaultCampaignConfig / SpecCampaignConfig views the kernels consume —
//    identical to what the CLI historically built by hand, so the PR 5
//    config fingerprints are unchanged;
//  - `campaign_spec_fingerprint` folds those per-device fingerprints into
//    one digest pinning everything that can change results. Thread count,
//    worker count, the bytecode-patch flag and the watchdog cap are
//    deliberately excluded (they cannot change records or tallies), which
//    is exactly what makes the digest a safe result-cache key;
//  - the flag table (`find_campaign_flag` + `apply_campaign_flag` +
//    `campaign_spec_to_args`) is shared between the CLI parser and the
//    dispatcher's worker argv builder, so flag -> spec field is one table
//    and a spec survives the spec -> argv -> spec round trip bit-exactly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "corpus/drivers.h"
#include "eval/driver_campaign.h"
#include "eval/fault_campaign.h"
#include "eval/spec_campaign.h"
#include "support/json_io.h"

namespace eval {

/// Which evaluation the spec requests: driver mutation (Tables 3/4), fault
/// injection (the --faults matrix), or Devil-spec mutation (Table 2).
enum class CampaignKind { kDriver, kFault, kSpec };

/// Stable names used in JSON and diagnostics: "driver", "fault", "spec".
[[nodiscard]] const char* campaign_kind_name(CampaignKind k);

struct CampaignSpec {
  CampaignKind kind = CampaignKind::kDriver;
  /// Corpus device filter ("all" or a device name from the kind's corpus).
  /// Spec campaigns are not device-scoped and require "all".
  std::string device = "all";
  minic::ExecEngine engine = minic::ExecEngine::kBytecodeVm;
  uint64_t seed = 20010325;
  /// Percentage of generated mutants booted; 0 keeps each corpus entry's
  /// own default (the paper's 25% for IDE, full enumeration for busmouse).
  unsigned sample_percent = 0;
  uint64_t step_budget = 3'000'000;
  bool dedup = true;
  bool prefix_cache = true;
  bool bytecode_patch = true;
  bool flight_recorder = false;
  uint64_t watchdog_ms = 10'000;
  /// Worker threads per campaign (0 = all cores). Never fingerprinted:
  /// results are thread-count invariant.
  unsigned threads = 1;
  /// Fault campaigns only: trigger offsets and scenario sample percentage
  /// (FaultCampaignConfig::triggers / sample_percent).
  std::vector<uint32_t> fault_triggers = {0, 1, 2, 7};
  unsigned fault_sample_percent = 100;
  /// Spec campaigns only: survivors listed per Table 2 row.
  unsigned survivor_samples = 8;

  friend bool operator==(const CampaignSpec&, const CampaignSpec&) = default;
};

/// Diagnostics for an unusable spec, one human-readable line each; empty
/// means the spec is runnable. Checks the device filter against the kind's
/// corpus, percentage ranges, the trigger list and the step budget.
[[nodiscard]] std::vector<std::string> validate_campaign_spec(
    const CampaignSpec& spec);

/// Strict, byte-stable JSON round trip (the service wire schema). from_json
/// rejects missing, mistyped, out-of-range and unknown fields with
/// std::runtime_error prefixed by `ctx`; to_json(from_json(x)) reproduces
/// x's exact bytes.
[[nodiscard]] support::JsonValue campaign_spec_to_json(
    const CampaignSpec& spec);
[[nodiscard]] CampaignSpec campaign_spec_from_json(const support::JsonValue& v,
                                                   const std::string& ctx);

/// The corpus entries the spec selects, in report order: the polled
/// mutation corpus for driver campaigns, polled + interrupt-driven for
/// fault campaigns, filtered by `spec.device`. Spec-mutation campaigns
/// iterate corpus::all_specs() instead and get an empty list here.
[[nodiscard]] std::vector<corpus::CampaignDrivers> campaign_spec_corpus(
    const CampaignSpec& spec);

/// The C and CDevil campaign configs for one corpus device, derived from
/// the spec — the exact configs the CLI historically built, so the config
/// fingerprint (eval/shard.h) is unchanged. Throws std::runtime_error
/// carrying the Devil diagnostics when the corpus spec fails to compile.
struct DeviceCampaignConfigs {
  DriverCampaignConfig c;
  DriverCampaignConfig cdevil;
};
[[nodiscard]] DeviceCampaignConfigs driver_configs_for(
    const CampaignSpec& spec, const corpus::CampaignDrivers& drivers);

/// The fault-campaign sibling: the derived driver configs wrapped with the
/// spec's fault knobs.
struct DeviceFaultConfigs {
  FaultCampaignConfig c;
  FaultCampaignConfig cdevil;
};
[[nodiscard]] DeviceFaultConfigs fault_configs_for(
    const CampaignSpec& spec, const corpus::CampaignDrivers& drivers);

/// Table 2 campaign config derived from the spec (threads, dedup,
/// survivor_samples).
[[nodiscard]] SpecCampaignConfig spec_campaign_config_for(
    const CampaignSpec& spec);

/// Digest of everything in the spec that can change campaign results: the
/// kind, then every selected campaign's PR 5 config fingerprint (driver and
/// fault kinds) or the spec corpus text plus the dedup/survivor knobs (spec
/// kind). Specs that differ only in threads, watchdog_ms or bytecode_patch
/// fingerprint identically — the cache-replay guarantee. Compiles corpus
/// Devil specs to derive configs; throws std::runtime_error when one fails.
[[nodiscard]] std::string campaign_spec_fingerprint(const CampaignSpec& spec);

/// One row of the shared flag table. `value_name` is nullptr for boolean
/// flags; `implies_campaign` marks flags whose presence switches the CLI
/// from the single-typo scenario into campaign mode (engine/telemetry
/// modifier flags do not).
struct CampaignFlag {
  const char* flag;
  const char* value_name;
  bool implies_campaign;
  const char* help;
};

/// The full table, in help order.
[[nodiscard]] const std::vector<CampaignFlag>& campaign_spec_flags();

/// Table lookup; nullptr when `flag` is not a campaign-spec flag.
[[nodiscard]] const CampaignFlag* find_campaign_flag(const std::string& flag);

/// Applies one table flag to the spec. `value` is the flag's argument
/// (ignored for boolean flags). Returns "" on success, else the diagnostic
/// for the CLI's usage error path.
[[nodiscard]] std::string apply_campaign_flag(CampaignSpec& spec,
                                              const CampaignFlag& flag,
                                              const std::string& value);

/// The inverse of the parser: flags that rebuild `spec` exactly through
/// apply_campaign_flag (the dispatcher's worker argv). Every value-carrying
/// field is emitted explicitly, so workers cannot drift from the requested
/// spec even if defaults change.
[[nodiscard]] std::vector<std::string> campaign_spec_to_args(
    const CampaignSpec& spec);

}  // namespace eval
