#include "eval/shard.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "support/json_io.h"
#include "support/strings.h"

namespace eval {

namespace {

constexpr const char* kFormatTag = "devil-repro-shard";
// Version 2: records carry interpreter step counts (and flight-recorder
// traces when present), artifacts carry the baseline boot's steps and VM
// opcode profile, and bundles may embed process metrics.
// Version 3: records carry `patched`/`patch_fallback` bits and campaign
// artifacts the matching `patch_hits`/`patch_fallbacks` counters.
constexpr int64_t kFormatVersion = 3;

/// All outcomes, in enum order, for tally serialization and the reverse
/// outcome_short lookup.
constexpr Outcome kAllOutcomes[] = {
    Outcome::kCompileTime, Outcome::kRunTime,      Outcome::kDeadCode,
    Outcome::kBoot,        Outcome::kCrash,        Outcome::kInfiniteLoop,
    Outcome::kHalt,        Outcome::kDamagedBoot,
};

Outcome outcome_from_short(const std::string& name, const std::string& ctx) {
  for (Outcome o : kAllOutcomes) {
    if (name == outcome_short(o)) return o;
  }
  throw std::runtime_error(ctx + ": unknown outcome '" + name + "'");
}

constexpr FaultOutcome kAllFaultOutcomes[] = {
    FaultOutcome::kDevilCheck, FaultOutcome::kDriverPanic,
    FaultOutcome::kCrash,      FaultOutcome::kHang,
    FaultOutcome::kCorruptBoot, FaultOutcome::kCleanBoot,
};

FaultOutcome fault_outcome_from_short(const std::string& name,
                                      const std::string& ctx) {
  for (FaultOutcome o : kAllFaultOutcomes) {
    if (name == fault_outcome_short(o)) return o;
  }
  throw std::runtime_error(ctx + ": unknown fault outcome '" + name + "'");
}

constexpr hw::FaultKind kAllFaultKinds[] = {
    hw::FaultKind::kStuckZero,   hw::FaultKind::kStuckOne,
    hw::FaultKind::kFlipOnce,    hw::FaultKind::kDropWrite,
    hw::FaultKind::kFloatingBus, hw::FaultKind::kNeverReady,
    hw::FaultKind::kLostIrq,     hw::FaultKind::kSpuriousIrq,
    hw::FaultKind::kIrqStorm,    hw::FaultKind::kDelayIrq,
};

hw::FaultKind fault_kind_from_short(const std::string& name,
                                    const std::string& ctx) {
  for (hw::FaultKind k : kAllFaultKinds) {
    if (name == hw::fault_kind_name(k)) return k;
  }
  throw std::runtime_error(ctx + ": unknown fault kind '" + name + "'");
}

bool all_digits(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
  }
  return true;
}

/// Inverse of support::hex128, with artifact-shaped diagnostics.
std::pair<uint64_t, uint64_t> parse_hex128(const std::string& s,
                                           const std::string& ctx) {
  if (s.size() != 32) {
    throw std::runtime_error(ctx + ": expected 32 hex chars, got '" + s + "'");
  }
  uint64_t lanes[2] = {0, 0};
  for (size_t i = 0; i < 32; ++i) {
    char c = s[i];
    uint64_t nibble;
    if (c >= '0' && c <= '9') {
      nibble = static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      nibble = static_cast<uint64_t>(c - 'a' + 10);
    } else {
      throw std::runtime_error(ctx + ": invalid hex char in '" + s + "'");
    }
    lanes[i / 16] = (lanes[i / 16] << 4) | nibble;
  }
  return {lanes[0], lanes[1]};
}

// --- typed field access with artifact-shaped diagnostics ---------------------

const support::JsonValue& require(const support::JsonValue& obj,
                                  const char* key, const std::string& ctx) {
  const support::JsonValue* v = obj.find(key);
  if (!v) {
    throw std::runtime_error(ctx + ": missing field '" + key + "'");
  }
  return *v;
}

size_t require_size(const support::JsonValue& obj, const char* key,
                    const std::string& ctx) {
  int64_t v = require(obj, key, ctx).as_int();
  if (v < 0) {
    throw std::runtime_error(ctx + ": field '" + key + "' is negative");
  }
  return static_cast<size_t>(v);
}

const std::string& require_string(const support::JsonValue& obj,
                                  const char* key, const std::string& ctx) {
  return require(obj, key, ctx).as_string();
}

/// Reads an optional boolean that the writer omits when false.
bool optional_flag(const support::JsonValue& obj, const char* key) {
  const support::JsonValue* v = obj.find(key);
  return v != nullptr && v->as_bool();
}

/// Reads an optional non-negative integer that the writer omits when zero.
size_t optional_size(const support::JsonValue& obj, const char* key,
                     const std::string& ctx) {
  return obj.find(key) ? require_size(obj, key, ctx) : 0;
}

/// Opcode profiles serialize as zero-suppressed [opcode index, count] pairs
/// in ascending index order — the shard format is internal, so indices are
/// exact and compact (the metrics artifact uses names instead).
support::JsonValue opcode_profile_to_json(
    const minic::bytecode::OpcodeProfile& profile) {
  support::JsonValue pairs = support::JsonValue::array();
  for (size_t i = 0; i < minic::bytecode::kOpCount; ++i) {
    if (profile.counts[i] == 0) continue;
    support::JsonValue pair = support::JsonValue::array();
    pair.push_back(static_cast<int64_t>(i));
    pair.push_back(profile.counts[i]);
    pairs.push_back(std::move(pair));
  }
  return pairs;
}

minic::bytecode::OpcodeProfile opcode_profile_from_json(
    const support::JsonValue& v, const std::string& ctx) {
  minic::bytecode::OpcodeProfile profile;
  int64_t prev = -1;
  for (const support::JsonValue& pair : v.items()) {
    if (pair.items().size() != 2) {
      throw std::runtime_error(ctx + ": opcode entry is not an "
                               "[index, count] pair");
    }
    int64_t ix = pair.items()[0].as_int();
    int64_t count = pair.items()[1].as_int();
    if (ix <= prev || ix >= static_cast<int64_t>(minic::bytecode::kOpCount)) {
      throw std::runtime_error(ctx + ": opcode index " + std::to_string(ix) +
                               " out of range or out of order");
    }
    if (count <= 0) {
      throw std::runtime_error(ctx + ": opcode count must be positive (zero "
                               "rows are suppressed)");
    }
    profile.counts[static_cast<size_t>(ix)] = static_cast<uint64_t>(count);
    prev = ix;
  }
  return profile;
}

}  // namespace

ShardSpec parse_shard_spec(const std::string& text) {
  const std::string what = "bad shard spec '" + text + "'";
  size_t slash = text.find('/');
  if (slash == std::string::npos) {
    throw std::invalid_argument(what + ": expected i/N, e.g. 1/3");
  }
  std::string index_s = text.substr(0, slash);
  std::string count_s = text.substr(slash + 1);
  if (!all_digits(index_s) || !all_digits(count_s) || index_s.size() > 9 ||
      count_s.size() > 9) {
    throw std::invalid_argument(what + ": expected i/N with decimal i and N");
  }
  ShardSpec spec;
  spec.index = static_cast<unsigned>(std::stoul(index_s));
  spec.count = static_cast<unsigned>(std::stoul(count_s));
  if (spec.count == 0) {
    throw std::invalid_argument(what + ": shard count must be >= 1");
  }
  if (spec.index == 0 || spec.index > spec.count) {
    throw std::invalid_argument(what + ": shard index is 1-based and must be "
                                "between 1 and " + std::to_string(spec.count));
  }
  return spec;
}

std::string campaign_fingerprint(const DriverCampaignConfig& config) {
  const std::string entry =
      config.entry.empty() ? config.device.entry : config.entry;
  support::Fnv128 h;
  // Version tag first: a future format change re-keys every fingerprint.
  h.update_field("devil-repro-campaign-v1");
  h.update_field(config.stubs);
  h.update_field(config.driver);
  h.update_field(config.unit_name);
  h.update_field(entry);
  h.update_field(config.device.device);
  h.update_u64(config.device.port_base);
  h.update_u64(config.device.port_span);
  // Folded only for event-driven bindings so every polled-device
  // fingerprint published before the interrupt model existed is unchanged.
  if (config.device.irq_line >= 0) {
    h.update_u64(static_cast<uint64_t>(config.device.irq_line));
  }
  h.update_u64(config.is_cdevil ? 1 : 0);
  h.update_u64(config.sample_percent);
  h.update_u64(config.seed);
  h.update_u64(config.step_budget);
  h.update_field(minic::exec_engine_name(config.engine));
  h.update_u64(config.dedup ? 1 : 0);
  h.update_u64(config.prefix_cache ? 1 : 0);
  // The recorder changes record contents (traces), so shards must agree.
  h.update_u64(config.flight_recorder ? 1 : 0);
  // Deliberately not hashed: config.threads — results are thread-count
  // invariant (ctest-enforced), so shards may run at different widths.
  // Likewise config.bytecode_patch: patched and recompiled boots are
  // byte-identical (ctest-enforced), so the flag only moves telemetry bits.
  return h.hex();
}

ShardArtifact run_campaign_shard(const DriverCampaignConfig& config,
                                 const std::string& label, ShardSpec spec) {
  if (spec.count == 0 || spec.index == 0 || spec.index > spec.count) {
    throw std::invalid_argument("bad shard spec " + spec.to_string() +
                                ": shard index is 1-based and must be between "
                                "1 and the shard count");
  }
  CampaignSideband side;
  DriverCampaignResult res = run_driver_campaign_slice(
      config, SampleSlice{spec.index - 1, spec.count}, &side);

  ShardArtifact a;
  a.device = res.device;
  a.label = label;
  a.entry = res.entry;
  a.engine = minic::exec_engine_name(config.engine);
  a.fingerprint = campaign_fingerprint(config);
  a.dedup = config.dedup;
  a.sample_size = side.sample_size;
  a.slice_begin = side.slice_begin;
  a.slice_end = side.slice_end;
  a.total_sites = res.total_sites;
  a.total_mutants = res.total_mutants;
  a.clean_fingerprint = res.clean_fingerprint;
  a.deduped_mutants = res.deduped_mutants;
  a.prefix_cache_hits = res.prefix_cache_hits;
  a.patch_hits = res.patch_hits;
  a.patch_fallbacks = res.patch_fallbacks;
  a.tally = res.tally;
  a.baseline_steps = res.baseline_steps;
  a.baseline_opcodes = res.baseline_opcodes;
  a.records.resize(res.records.size());
  for (size_t i = 0; i < res.records.size(); ++i) {
    ShardRecord& r = a.records[i];
    r.rec = res.records[i];
    r.cache_hit = side.prefix_cache_hit[i] != 0;
    if (config.dedup) {
      r.key_hi = side.canonical_hash[i].first;
      r.key_lo = side.canonical_hash[i].second;
    }
  }
  return a;
}

std::string fault_campaign_fingerprint(const FaultCampaignConfig& config) {
  support::Fnv128 h;
  // Version tag first, then the full mutation-campaign fingerprint: it
  // already pins the driver, stubs, device binding, entry, seed, step
  // budget and engine; the fault knobs follow.
  h.update_field("devil-repro-fault-campaign-v1");
  h.update_field(campaign_fingerprint(config.base));
  h.update_u64(config.sample_percent);
  h.update_u64(config.triggers.size());
  for (uint32_t t : config.triggers) h.update_u64(t);
  return h.hex();
}

FaultShardArtifact run_fault_campaign_shard(const FaultCampaignConfig& config,
                                            const std::string& label,
                                            ShardSpec spec) {
  if (spec.count == 0 || spec.index == 0 || spec.index > spec.count) {
    throw std::invalid_argument("bad shard spec " + spec.to_string() +
                                ": shard index is 1-based and must be between "
                                "1 and the shard count");
  }
  CampaignSideband side;
  FaultCampaignResult res = run_fault_campaign_slice(
      config, SampleSlice{spec.index - 1, spec.count}, &side);

  FaultShardArtifact a;
  a.device = res.device;
  a.label = label;
  a.entry = res.entry;
  a.engine = minic::exec_engine_name(config.base.engine);
  a.fingerprint = fault_campaign_fingerprint(config);
  a.total_scenarios = res.total_scenarios;
  a.sample_size = side.sample_size;
  a.slice_begin = side.slice_begin;
  a.slice_end = side.slice_end;
  a.clean_fingerprint = res.clean_fingerprint;
  a.triggered = res.triggered_scenarios;
  a.tally = res.tally;
  a.baseline_steps = res.baseline_steps;
  a.baseline_opcodes = res.baseline_opcodes;
  a.records = std::move(res.records);
  return a;
}

// --- serialization -----------------------------------------------------------

std::string serialize_shard_bundle(const ShardBundle& bundle) {
  using support::JsonValue;
  JsonValue root = JsonValue::object();
  root.set("format", kFormatTag);
  root.set("version", kFormatVersion);
  JsonValue shard = JsonValue::object();
  shard.set("index", static_cast<int64_t>(bundle.shard.index));
  shard.set("count", static_cast<int64_t>(bundle.shard.count));
  root.set("shard", std::move(shard));

  JsonValue campaigns = JsonValue::array();
  for (const ShardArtifact& a : bundle.campaigns) {
    JsonValue c = JsonValue::object();
    c.set("device", a.device);
    c.set("label", a.label);
    c.set("entry", a.entry);
    c.set("engine", a.engine);
    c.set("fingerprint", a.fingerprint);
    c.set("dedup", a.dedup);
    c.set("sample_size", a.sample_size);
    c.set("slice_begin", a.slice_begin);
    c.set("slice_end", a.slice_end);
    c.set("total_sites", a.total_sites);
    c.set("total_mutants", a.total_mutants);
    c.set("clean_fingerprint", a.clean_fingerprint);
    c.set("deduped_mutants", a.deduped_mutants);
    c.set("prefix_cache_hits", a.prefix_cache_hits);
    c.set("patch_hits", a.patch_hits);
    c.set("patch_fallbacks", a.patch_fallbacks);
    c.set("baseline_steps", a.baseline_steps);
    c.set("baseline_opcodes", opcode_profile_to_json(a.baseline_opcodes));

    // Shard-local tally, keyed by the short outcome names in enum order
    // (std::map iteration), zero rows omitted — byte-stable.
    JsonValue tally = JsonValue::object();
    for (const auto& [outcome, count] : a.tally.mutants) {
      if (count > 0) tally.set(outcome_short(outcome), count);
    }
    c.set("tally", std::move(tally));

    JsonValue records = JsonValue::array();
    for (const ShardRecord& r : a.records) {
      JsonValue rec = JsonValue::object();
      rec.set("mutant", r.rec.mutant_index);
      rec.set("site", r.rec.site);
      rec.set("outcome", outcome_short(r.rec.outcome));
      rec.set("steps", r.rec.steps);
      if (!r.rec.detail.empty()) rec.set("detail", r.rec.detail);
      if (r.rec.deduped) rec.set("deduped", true);
      if (r.cache_hit) rec.set("cache_hit", true);
      if (r.rec.patched) rec.set("patched", true);
      if (r.rec.patch_fallback) rec.set("patch_fallback", true);
      if (a.dedup) rec.set("key", support::hex128(r.key_hi, r.key_lo));
      if (!r.rec.trace.empty()) rec.set("trace", r.rec.trace);
      records.push_back(std::move(rec));
    }
    c.set("records", std::move(records));
    campaigns.push_back(std::move(c));
  }
  root.set("campaigns", std::move(campaigns));

  // Fault campaigns ride in their own section, present only when a
  // `--faults` run produced any — plain mutation bundles keep their exact
  // pre-fault serialized form.
  if (!bundle.fault_campaigns.empty()) {
    JsonValue fault_campaigns = JsonValue::array();
    for (const FaultShardArtifact& a : bundle.fault_campaigns) {
      JsonValue c = JsonValue::object();
      c.set("device", a.device);
      c.set("label", a.label);
      c.set("entry", a.entry);
      c.set("engine", a.engine);
      c.set("fingerprint", a.fingerprint);
      c.set("total_scenarios", a.total_scenarios);
      c.set("sample_size", a.sample_size);
      c.set("slice_begin", a.slice_begin);
      c.set("slice_end", a.slice_end);
      c.set("clean_fingerprint", a.clean_fingerprint);
      c.set("triggered", a.triggered);
      c.set("baseline_steps", a.baseline_steps);
      c.set("baseline_opcodes", opcode_profile_to_json(a.baseline_opcodes));

      JsonValue tally = JsonValue::object();
      for (const auto& [outcome, count] : a.tally.scenarios) {
        if (count > 0) tally.set(fault_outcome_short(outcome), count);
      }
      c.set("tally", std::move(tally));

      JsonValue records = JsonValue::array();
      for (const FaultRecord& r : a.records) {
        JsonValue rec = JsonValue::object();
        rec.set("scenario", r.scenario_index);
        rec.set("port", static_cast<int64_t>(r.plan.port));
        rec.set("kind", hw::fault_kind_name(r.plan.kind));
        rec.set("after", static_cast<int64_t>(r.plan.after));
        if (r.plan.mask != 0) rec.set("mask", static_cast<int64_t>(r.plan.mask));
        if (r.plan.value != 0) {
          rec.set("value", static_cast<int64_t>(r.plan.value));
        }
        rec.set("outcome", fault_outcome_short(r.outcome));
        rec.set("steps", r.steps);
        if (!r.detail.empty()) rec.set("detail", r.detail);
        if (r.triggered) rec.set("triggered", true);
        if (!r.trace.empty()) rec.set("trace", r.trace);
        records.push_back(std::move(rec));
      }
      c.set("records", std::move(records));
      fault_campaigns.push_back(std::move(c));
    }
    root.set("fault_campaigns", std::move(fault_campaigns));
  }
  // Optional embedded process telemetry (timings only — the merge
  // aggregates it but never validates against it).
  if (bundle.has_metrics) {
    root.set("metrics", process_metrics_to_json(bundle.metrics));
  }
  return to_json(root);
}

namespace {

ShardArtifact parse_artifact(const support::JsonValue& c, size_t position) {
  std::string ctx = "campaign #" + std::to_string(position);
  ShardArtifact a;
  a.device = require_string(c, "device", ctx);
  a.label = require_string(c, "label", ctx);
  ctx = "campaign " + a.device + "/" + a.label;
  a.entry = require_string(c, "entry", ctx);
  a.engine = require_string(c, "engine", ctx);
  a.fingerprint = require_string(c, "fingerprint", ctx);
  a.dedup = require(c, "dedup", ctx).as_bool();
  a.sample_size = require_size(c, "sample_size", ctx);
  a.slice_begin = require_size(c, "slice_begin", ctx);
  a.slice_end = require_size(c, "slice_end", ctx);
  a.total_sites = require_size(c, "total_sites", ctx);
  a.total_mutants = require_size(c, "total_mutants", ctx);
  a.clean_fingerprint = require(c, "clean_fingerprint", ctx).as_int();
  a.deduped_mutants = require_size(c, "deduped_mutants", ctx);
  a.prefix_cache_hits = require_size(c, "prefix_cache_hits", ctx);
  a.patch_hits = require_size(c, "patch_hits", ctx);
  a.patch_fallbacks = require_size(c, "patch_fallbacks", ctx);
  a.baseline_steps = static_cast<uint64_t>(
      require_size(c, "baseline_steps", ctx));
  a.baseline_opcodes = opcode_profile_from_json(
      require(c, "baseline_opcodes", ctx), ctx + " baseline_opcodes");

  if (a.slice_begin > a.slice_end || a.slice_end > a.sample_size) {
    throw std::runtime_error(ctx + ": slice [" +
                             std::to_string(a.slice_begin) + ", " +
                             std::to_string(a.slice_end) +
                             ") does not fit the sample of " +
                             std::to_string(a.sample_size));
  }

  const auto& records = require(c, "records", ctx).items();
  if (records.size() != a.slice_end - a.slice_begin) {
    throw std::runtime_error(
        ctx + ": " + std::to_string(records.size()) +
        " records do not fill the slice of " +
        std::to_string(a.slice_end - a.slice_begin) +
        " (truncated artifact?)");
  }
  a.records.reserve(records.size());
  size_t deduped = 0, cache_hits = 0, patch_hits = 0, patch_fallbacks = 0;
  for (size_t i = 0; i < records.size(); ++i) {
    const std::string rctx = ctx + " record #" + std::to_string(i);
    const support::JsonValue& rj = records[i];
    ShardRecord r;
    r.rec.mutant_index = require_size(rj, "mutant", rctx);
    r.rec.site = require_size(rj, "site", rctx);
    r.rec.outcome =
        outcome_from_short(require_string(rj, "outcome", rctx), rctx);
    r.rec.steps = static_cast<uint64_t>(require_size(rj, "steps", rctx));
    if (const support::JsonValue* detail = rj.find("detail")) {
      r.rec.detail = detail->as_string();
    }
    r.rec.deduped = optional_flag(rj, "deduped");
    r.cache_hit = optional_flag(rj, "cache_hit");
    r.rec.patched = optional_flag(rj, "patched");
    r.rec.patch_fallback = optional_flag(rj, "patch_fallback");
    if (const support::JsonValue* trace = rj.find("trace")) {
      r.rec.trace = trace->as_string();
    }
    if (a.dedup) {
      std::tie(r.key_hi, r.key_lo) =
          parse_hex128(require_string(rj, "key", rctx), rctx + " field 'key'");
    } else if (rj.find("key") != nullptr) {
      throw std::runtime_error(rctx + ": has a dedup key but the campaign "
                               "ran with dedup off");
    }
    deduped += r.rec.deduped ? 1 : 0;
    cache_hits += r.cache_hit ? 1 : 0;
    patch_hits += r.rec.patched ? 1 : 0;
    patch_fallbacks += r.rec.patch_fallback ? 1 : 0;
    a.records.push_back(std::move(r));
  }

  // The tally and counters must be re-derivable from the records — a
  // mismatch means the artifact was edited or corrupted after the run.
  if (deduped != a.deduped_mutants) {
    throw std::runtime_error(ctx + ": deduped_mutants says " +
                             std::to_string(a.deduped_mutants) +
                             " but the records carry " +
                             std::to_string(deduped) + " (corrupt artifact?)");
  }
  if (cache_hits != a.prefix_cache_hits) {
    throw std::runtime_error(ctx + ": prefix_cache_hits says " +
                             std::to_string(a.prefix_cache_hits) +
                             " but the records carry " +
                             std::to_string(cache_hits) +
                             " (corrupt artifact?)");
  }
  if (patch_hits != a.patch_hits) {
    throw std::runtime_error(ctx + ": patch_hits says " +
                             std::to_string(a.patch_hits) +
                             " but the records carry " +
                             std::to_string(patch_hits) +
                             " (corrupt artifact?)");
  }
  if (patch_fallbacks != a.patch_fallbacks) {
    throw std::runtime_error(ctx + ": patch_fallbacks says " +
                             std::to_string(a.patch_fallbacks) +
                             " but the records carry " +
                             std::to_string(patch_fallbacks) +
                             " (corrupt artifact?)");
  }
  for (const ShardRecord& r : a.records) {
    a.tally.add(r.rec.outcome, r.rec.site);
  }
  const auto& stored = require(c, "tally", ctx);
  for (Outcome o : kAllOutcomes) {
    const support::JsonValue* v = stored.find(outcome_short(o));
    size_t stored_count = v ? require_size(stored, outcome_short(o), ctx) : 0;
    if (stored_count != a.tally.mutants_of(o)) {
      throw std::runtime_error(
          ctx + ": tally['" + std::string(outcome_short(o)) + "'] says " +
          std::to_string(stored_count) + " but the records tally " +
          std::to_string(a.tally.mutants_of(o)) + " (corrupt artifact?)");
    }
  }
  return a;
}

FaultShardArtifact parse_fault_artifact(const support::JsonValue& c,
                                        size_t position) {
  std::string ctx = "fault campaign #" + std::to_string(position);
  FaultShardArtifact a;
  a.device = require_string(c, "device", ctx);
  a.label = require_string(c, "label", ctx);
  ctx = "fault campaign " + a.device + "/" + a.label;
  a.entry = require_string(c, "entry", ctx);
  a.engine = require_string(c, "engine", ctx);
  a.fingerprint = require_string(c, "fingerprint", ctx);
  a.total_scenarios = require_size(c, "total_scenarios", ctx);
  a.sample_size = require_size(c, "sample_size", ctx);
  a.slice_begin = require_size(c, "slice_begin", ctx);
  a.slice_end = require_size(c, "slice_end", ctx);
  a.clean_fingerprint = require(c, "clean_fingerprint", ctx).as_int();
  a.triggered = require_size(c, "triggered", ctx);
  a.baseline_steps = static_cast<uint64_t>(
      require_size(c, "baseline_steps", ctx));
  a.baseline_opcodes = opcode_profile_from_json(
      require(c, "baseline_opcodes", ctx), ctx + " baseline_opcodes");

  if (a.sample_size > a.total_scenarios) {
    throw std::runtime_error(ctx + ": sample of " +
                             std::to_string(a.sample_size) +
                             " exceeds the generated matrix of " +
                             std::to_string(a.total_scenarios));
  }
  if (a.slice_begin > a.slice_end || a.slice_end > a.sample_size) {
    throw std::runtime_error(ctx + ": slice [" +
                             std::to_string(a.slice_begin) + ", " +
                             std::to_string(a.slice_end) +
                             ") does not fit the sample of " +
                             std::to_string(a.sample_size));
  }

  const auto& records = require(c, "records", ctx).items();
  if (records.size() != a.slice_end - a.slice_begin) {
    throw std::runtime_error(
        ctx + ": " + std::to_string(records.size()) +
        " records do not fill the slice of " +
        std::to_string(a.slice_end - a.slice_begin) +
        " (truncated artifact?)");
  }
  a.records.reserve(records.size());
  size_t triggered = 0;
  for (size_t i = 0; i < records.size(); ++i) {
    const std::string rctx = ctx + " record #" + std::to_string(i);
    const support::JsonValue& rj = records[i];
    FaultRecord r;
    r.scenario_index = require_size(rj, "scenario", rctx);
    r.plan.port = static_cast<uint32_t>(require_size(rj, "port", rctx));
    r.plan.kind =
        fault_kind_from_short(require_string(rj, "kind", rctx), rctx);
    r.plan.after = static_cast<uint32_t>(require_size(rj, "after", rctx));
    r.plan.mask = static_cast<uint32_t>(optional_size(rj, "mask", rctx));
    r.plan.value = static_cast<uint32_t>(optional_size(rj, "value", rctx));
    r.outcome =
        fault_outcome_from_short(require_string(rj, "outcome", rctx), rctx);
    r.steps = static_cast<uint64_t>(require_size(rj, "steps", rctx));
    if (const support::JsonValue* detail = rj.find("detail")) {
      r.detail = detail->as_string();
    }
    r.triggered = optional_flag(rj, "triggered");
    if (const support::JsonValue* trace = rj.find("trace")) {
      r.trace = trace->as_string();
    }
    if (!r.triggered && r.outcome != FaultOutcome::kCleanBoot) {
      throw std::runtime_error(rctx + ": untriggered scenario with outcome '" +
                               fault_outcome_short(r.outcome) +
                               "' (corrupt artifact?)");
    }
    triggered += r.triggered ? 1 : 0;
    a.records.push_back(std::move(r));
  }

  if (triggered != a.triggered) {
    throw std::runtime_error(ctx + ": triggered says " +
                             std::to_string(a.triggered) +
                             " but the records carry " +
                             std::to_string(triggered) +
                             " (corrupt artifact?)");
  }
  for (const FaultRecord& r : a.records) {
    a.tally.add(r.outcome, r.plan.port);
  }
  const auto& stored = require(c, "tally", ctx);
  for (FaultOutcome o : kAllFaultOutcomes) {
    const support::JsonValue* v = stored.find(fault_outcome_short(o));
    size_t stored_count =
        v ? require_size(stored, fault_outcome_short(o), ctx) : 0;
    if (stored_count != a.tally.scenarios_of(o)) {
      throw std::runtime_error(
          ctx + ": tally['" + std::string(fault_outcome_short(o)) +
          "'] says " + std::to_string(stored_count) +
          " but the records tally " + std::to_string(a.tally.scenarios_of(o)) +
          " (corrupt artifact?)");
    }
  }
  return a;
}

}  // namespace

ShardBundle parse_shard_bundle(const std::string& text) {
  support::JsonValue root = [&] {
    try {
      return support::parse_json(text);
    } catch (const support::JsonError& e) {
      throw std::runtime_error(std::string("not a shard artifact: ") +
                               e.what());
    }
  }();
  try {
    const std::string ctx = "shard artifact";
    const std::string& format = require_string(root, "format", ctx);
    if (format != kFormatTag) {
      throw std::runtime_error("not a shard artifact: format tag is '" +
                               format + "', expected '" + kFormatTag + "'");
    }
    int64_t version = require(root, "version", ctx).as_int();
    if (version != kFormatVersion) {
      throw std::runtime_error("unsupported shard artifact version " +
                               std::to_string(version) + " (this build reads "
                               "version " + std::to_string(kFormatVersion) +
                               ")");
    }
    ShardBundle bundle;
    const support::JsonValue& shard = require(root, "shard", ctx);
    bundle.shard.index =
        static_cast<unsigned>(require_size(shard, "index", "shard"));
    bundle.shard.count =
        static_cast<unsigned>(require_size(shard, "count", "shard"));
    if (bundle.shard.count == 0 || bundle.shard.index == 0 ||
        bundle.shard.index > bundle.shard.count) {
      throw std::runtime_error("shard artifact has invalid shard coordinates " +
                               bundle.shard.to_string());
    }
    const auto& campaigns = require(root, "campaigns", ctx).items();
    bundle.campaigns.reserve(campaigns.size());
    for (size_t i = 0; i < campaigns.size(); ++i) {
      bundle.campaigns.push_back(parse_artifact(campaigns[i], i));
    }
    if (const support::JsonValue* fc = root.find("fault_campaigns")) {
      const auto& fault_campaigns = fc->items();
      bundle.fault_campaigns.reserve(fault_campaigns.size());
      for (size_t i = 0; i < fault_campaigns.size(); ++i) {
        bundle.fault_campaigns.push_back(
            parse_fault_artifact(fault_campaigns[i], i));
      }
    }
    if (const support::JsonValue* metrics = root.find("metrics")) {
      bundle.has_metrics = true;
      bundle.metrics = process_metrics_from_json(*metrics, "shard metrics");
    }
    return bundle;
  } catch (const support::JsonError& e) {
    // Type errors from as_int()/as_string() on present-but-wrong fields.
    throw std::runtime_error(std::string("corrupt shard artifact: ") +
                             e.what());
  }
}

CampaignMetricsRow shard_metrics_row(const ShardArtifact& a) {
  // Reassemble a slice-shaped campaign result and reuse the canonical row
  // builder, so shard-local rows and full-run rows can never drift.
  DriverCampaignResult res;
  res.device = a.device;
  res.entry = a.entry;
  res.deduped_mutants = a.deduped_mutants;
  res.prefix_cache_hits = a.prefix_cache_hits;
  res.patch_hits = a.patch_hits;
  res.patch_fallbacks = a.patch_fallbacks;
  res.tally = a.tally;
  res.baseline_steps = a.baseline_steps;
  res.baseline_opcodes = a.baseline_opcodes;
  res.records.reserve(a.records.size());
  for (const ShardRecord& r : a.records) res.records.push_back(r.rec);
  return campaign_metrics_row(res, a.label, a.engine);
}

CampaignMetricsRow shard_fault_metrics_row(const FaultShardArtifact& a) {
  FaultCampaignResult res;
  res.device = a.device;
  res.entry = a.entry;
  res.triggered_scenarios = a.triggered;
  res.tally = a.tally;
  res.baseline_steps = a.baseline_steps;
  res.baseline_opcodes = a.baseline_opcodes;
  res.records = a.records;
  return fault_metrics_row(res, a.label, a.engine);
}

void write_artifact_atomically(const std::string& path,
                               const std::string& text) {
  // Atomic write: the bytes go to `<path>.tmp`, renamed over `path` only
  // after a successful flush+close. A crash, full disk or unwritable
  // directory never leaves a partial artifact at `path` (and never clobbers
  // a good one already there); failures remove the temporary and throw.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw ArtifactWriteError(tmp + ": cannot open for writing (does the "
                               "directory exist and allow writes?)");
    }
    out.write(text.data(), static_cast<std::streamsize>(text.size()));
    out.put('\n');
    out.flush();
    if (!out) {
      out.close();
      std::remove(tmp.c_str());
      throw ArtifactWriteError(tmp + ": write failed (disk full?)");
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const std::string why = std::strerror(errno);
    std::remove(tmp.c_str());
    throw ArtifactWriteError(path + ": cannot rename temporary artifact into "
                             "place: " + why);
  }
}

void save_shard_bundle(const std::string& path, const ShardBundle& bundle) {
  write_artifact_atomically(path, serialize_shard_bundle(bundle));
}

ShardBundle load_shard_bundle(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error(path + ": cannot open");
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) {
    throw std::runtime_error(path + ": read failed");
  }
  try {
    return parse_shard_bundle(buf.str());
  } catch (const std::runtime_error& e) {
    throw std::runtime_error(path + ": " + e.what());
  }
}

}  // namespace eval
