#include "eval/fault_campaign.h"

#include <memory>
#include <stdexcept>
#include <utility>

#include "hw/flight_recorder.h"
#include "hw/io_bus.h"
#include "minic/program.h"
#include "support/metrics.h"
#include "support/parallel.h"
#include "support/rng.h"
#include "support/strings.h"

namespace eval {

const char* fault_outcome_name(FaultOutcome o) {
  switch (o) {
    case FaultOutcome::kDevilCheck: return "Devil check";
    case FaultOutcome::kDriverPanic: return "Driver panic";
    case FaultOutcome::kCrash: return "Crash";
    case FaultOutcome::kHang: return "Hang";
    case FaultOutcome::kCorruptBoot: return "Corrupt boot";
    case FaultOutcome::kCleanBoot: return "Clean boot";
  }
  return "?";
}

const char* fault_outcome_short(FaultOutcome o) {
  switch (o) {
    case FaultOutcome::kDevilCheck: return "devil-check";
    case FaultOutcome::kDriverPanic: return "panic";
    case FaultOutcome::kCrash: return "crash";
    case FaultOutcome::kHang: return "hang";
    case FaultOutcome::kCorruptBoot: return "corrupt";
    case FaultOutcome::kCleanBoot: return "clean";
  }
  return "?";
}

namespace {

FaultOutcome classify_run_fault(minic::FaultKind kind) {
  switch (kind) {
    case minic::FaultKind::kDevilAssertion:
      return FaultOutcome::kDevilCheck;
    case minic::FaultKind::kPanic:
      return FaultOutcome::kDriverPanic;
    case minic::FaultKind::kStepLimit:
      return FaultOutcome::kHang;
    case minic::FaultKind::kWatchdog:
      // Wall-clock containment: the boot wedged for real time, not steps.
      support::Metrics::add_watchdog_trip();
      return FaultOutcome::kHang;
    case minic::FaultKind::kBusFault:
    case minic::FaultKind::kDivByZero:
    case minic::FaultKind::kBadIndex:
    case minic::FaultKind::kStackOverflow:
      return FaultOutcome::kCrash;
    case minic::FaultKind::kNone:
    case minic::FaultKind::kInternal:
      break;
  }
  throw std::logic_error("unclassifiable fault kind");
}

}  // namespace

std::vector<hw::FaultPlan> fault_scenario_matrix(
    const DeviceBinding& device, const std::vector<uint32_t>& triggers) {
  std::vector<hw::FaultPlan> plans;
  plans.reserve((static_cast<size_t>(device.port_span) * (3 * 8 + 3) +
                 (device.irq_line >= 0 ? 4 : 0)) *
                triggers.size());
  for (uint32_t offset = 0; offset < device.port_span; ++offset) {
    const uint32_t port = device.port_base + offset;
    // Bit-level kinds: every single-bit mask of the 8-bit register file.
    for (hw::FaultKind kind : {hw::FaultKind::kStuckZero,
                               hw::FaultKind::kStuckOne,
                               hw::FaultKind::kFlipOnce}) {
      for (uint32_t bit = 0; bit < 8; ++bit) {
        for (uint32_t after : triggers) {
          hw::FaultPlan plan;
          plan.port = port;
          plan.kind = kind;
          plan.after = after;
          plan.mask = 1u << bit;
          plans.push_back(plan);
        }
      }
    }
    // Whole-port kinds.
    for (hw::FaultKind kind : {hw::FaultKind::kDropWrite,
                               hw::FaultKind::kFloatingBus,
                               hw::FaultKind::kNeverReady}) {
      for (uint32_t after : triggers) {
        hw::FaultPlan plan;
        plan.port = port;
        plan.kind = kind;
        plan.after = after;
        plans.push_back(plan);  // kNeverReady freezes reads at value 0
      }
    }
  }
  // Event rows, appended after the port rows so existing scenario indices
  // (part of the artifact contract) are untouched for polled bindings. For
  // the event kinds `plan.port` names the IRQ line; `after` counts genuine
  // raises on it (spurious: device accesses); `value` carries the storm
  // repeat count / delivery delay.
  if (device.irq_line >= 0) {
    for (hw::FaultKind kind : {hw::FaultKind::kLostIrq,
                               hw::FaultKind::kSpuriousIrq,
                               hw::FaultKind::kIrqStorm,
                               hw::FaultKind::kDelayIrq}) {
      for (uint32_t after : triggers) {
        hw::FaultPlan plan;
        plan.port = static_cast<uint32_t>(device.irq_line);
        plan.kind = kind;
        plan.after = after;
        if (kind == hw::FaultKind::kIrqStorm) plan.value = 8;
        if (kind == hw::FaultKind::kDelayIrq) plan.value = 1000;
        plans.push_back(plan);
      }
    }
  }
  return plans;
}

uint64_t fault_scenario_seed(const FaultCampaignConfig& config) {
  // Device shape only — never the driver or stub text — so the C and CDevil
  // campaigns of one device sample identical scenario subsets.
  support::Fnv128 h;
  h.update_field("devil-repro-fault-seed-v1");
  h.update_field(config.base.device.device);
  h.update_u64(config.base.device.port_base);
  h.update_u64(config.base.device.port_span);
  // Folded only for event-driven bindings so polled-device seeds (and the
  // scenario subsets of already-published artifacts) stay byte-identical.
  if (config.base.device.irq_line >= 0) {
    h.update_u64(static_cast<uint64_t>(config.base.device.irq_line));
  }
  h.update_u64(config.triggers.size());
  for (uint32_t t : config.triggers) h.update_u64(t);
  h.update_u64(config.sample_percent);
  h.update_u64(config.base.seed);
  auto [hi, lo] = h.digest();
  return hi ^ lo;
}

FaultCampaignResult run_fault_campaign(const FaultCampaignConfig& config) {
  return run_fault_campaign_slice(config, SampleSlice{});
}

FaultCampaignResult run_fault_campaign_slice(const FaultCampaignConfig& config,
                                             SampleSlice slice,
                                             CampaignSideband* sideband) {
  const DriverCampaignConfig& base = config.base;
  const std::string who = "fault campaign [" +
                          (base.device.device.empty() ? std::string("?")
                                                      : base.device.device) +
                          "]: ";
  if (slice.count == 0 || slice.index >= slice.count) {
    throw std::logic_error(who + "invalid sample slice " +
                           std::to_string(slice.index) + "/" +
                           std::to_string(slice.count) +
                           " (need 0 <= index < count)");
  }
  if (!base.device.ok()) {
    throw std::logic_error(who +
                           "no device binding configured (set "
                           "DriverCampaignConfig::device; the standard "
                           "bindings live in eval/device_bindings.h)");
  }
  if (config.triggers.empty()) {
    throw std::logic_error(who + "empty trigger list (the scenario matrix "
                           "needs at least one trigger offset)");
  }
  const std::string entry = base.entry.empty() ? base.device.entry : base.entry;
  if (entry.empty()) {
    throw std::logic_error(who + "no boot entry configured (neither the "
                           "config nor the device binding names one)");
  }
  hw::DevicePool device_pool;
  device_pool.set_factory(base.device.make_device);
  const std::string at_entry = " (entry " + entry + ")";

  // The driver is never mutated here: one compile, shared read-only by every
  // scenario worker (run_unit builds per-call engine state over the const
  // unit, so concurrent boots are safe).
  const std::string prefix_text =
      base.stubs.empty() ? std::string() : base.stubs + "\n";
  minic::PreparedPrefix prefix = minic::prepare_prefix(base.unit_name,
                                                       prefix_text);
  if (!prefix.ok()) {
    throw std::logic_error(who + "driver stubs do not lex:\n" +
                           prefix.diags.render());
  }
  minic::Program clean = minic::compile_with_prefix(prefix, base.driver);
  if (!clean.ok()) {
    throw std::logic_error(who + "driver does not compile:\n" +
                           clean.diags.render());
  }

  FaultCampaignResult result;
  result.device = base.device.device;
  result.entry = entry;

  // --- fault-free baseline --------------------------------------------------------
  {
    hw::IoBus bus;
    auto dev = device_pool.acquire();
    map_bound_device(bus, base.device, dev);
    const bool vm_engine = base.engine == minic::ExecEngine::kBytecodeVm;
    auto run = minic::run_unit(*clean.unit, bus, entry, base.step_budget,
                               base.engine,
                               vm_engine ? &result.baseline_opcodes : nullptr,
                               base.watchdog_ms);
    result.baseline_steps = run.steps_used;
    if (run.fault != minic::FaultKind::kNone) {
      throw std::logic_error(who + "driver faults on healthy hardware" +
                             at_entry + ": " + run.fault_message);
    }
    if (run.return_value <= 0) {
      throw std::logic_error(who + "driver returned a non-positive boot "
                             "fingerprint on healthy hardware" + at_entry);
    }
    if (dev->damaged()) {
      throw std::logic_error(who + "driver damaged the healthy device: " +
                             dev->damage_note());
    }
    result.clean_fingerprint = run.return_value;
    bus = hw::IoBus();
    device_pool.release(std::move(dev));
  }

  // --- scenario matrix + deterministic sample -------------------------------------
  const std::vector<hw::FaultPlan> matrix =
      fault_scenario_matrix(base.device, config.triggers);
  result.total_scenarios = matrix.size();
  auto sample = support::sample_indices(matrix.size(), config.sample_percent,
                                        fault_scenario_seed(config));
  const auto [slice_lo, slice_hi] = sample_slice_bounds(sample.size(), slice);
  std::vector<size_t> selected(sample.begin() + slice_lo,
                               sample.begin() + slice_hi);
  result.sampled_scenarios = selected.size();
  if (sideband) {
    sideband->sample_size = sample.size();
    sideband->slice_begin = slice_lo;
    sideband->slice_end = slice_hi;
    sideband->prefix_cache_hit.clear();
    sideband->canonical_hash.clear();  // scenarios are never deduped
  }

  // --- per-scenario boot (parallel map) -------------------------------------------
  // Workers write only their own records[i]; the order-sensitive tally (and
  // the triggered count) is reduced after the join, so the result is
  // identical at any thread count.
  result.records.resize(selected.size());
  support::ProgressMeter progress(who + "booting", selected.size());
  std::vector<uint64_t> worker_shares;
  support::parallel_for(
      selected.size(), base.threads,
      [&](size_t i) {
        const size_t scenario_ix = selected[i];
        const hw::FaultPlan& plan = matrix[scenario_ix];

        FaultRecord rec;
        rec.scenario_index = scenario_ix;
        rec.plan = plan;

        hw::IoBus bus;
        auto dev = device_pool.acquire();
        auto shim = std::make_shared<hw::FaultInjector>(
            dev, base.device.port_base, plan);
        std::shared_ptr<hw::FlightRecorder> recorder;
        if (base.flight_recorder) {
          // Recorder outermost: the trace shows the post-fault values the
          // driver actually read, not the healthy device's — and, through
          // the bus observer tap, the post-injector IRQ traffic.
          recorder = std::make_shared<hw::FlightRecorder>(
              shim, base.device.port_base, &bus);
          bus.set_irq_observer(recorder.get());
          map_bound_device(bus, base.device, recorder);
        } else {
          map_bound_device(bus, base.device, shim);
        }
        auto run = minic::run_unit(*clean.unit, bus, entry, base.step_budget,
                                   base.engine, nullptr, base.watchdog_ms);
        if (run.fault == minic::FaultKind::kInternal) {
          throw std::logic_error(who + "interpreter bug under fault [" +
                                 plan.describe() + "]: " + run.fault_message);
        }
        support::StageTimer classify_timer(support::Stage::kClassify);
        rec.triggered = shim->fired() > 0;
        rec.steps = run.steps_used;
        if (run.fault != minic::FaultKind::kNone) {
          rec.outcome = classify_run_fault(run.fault);
          rec.detail = run.fault_message;
        } else if (dev->damaged() ||
                   run.return_value != result.clean_fingerprint) {
          rec.outcome = FaultOutcome::kCorruptBoot;
          rec.detail = dev->damaged() ? dev->damage_note()
                                      : "wrong boot fingerprint";
        } else {
          rec.outcome = FaultOutcome::kCleanBoot;
        }
        if (recorder && rec.outcome != FaultOutcome::kCleanBoot) {
          rec.trace = recorder->render_tail();
        }
        if (!rec.triggered && rec.outcome != FaultOutcome::kCleanBoot) {
          // An unfired fault cannot have changed the traffic; any non-clean
          // outcome here means the shim miscounted or the boot is flaky.
          throw std::logic_error(who + "scenario [" + plan.describe() +
                                 "] never triggered yet boot was not clean (" +
                                 fault_outcome_short(rec.outcome) + ")");
        }
        // Drop the bus mapping and the shims before recycling the device
        // (the pool requires the caller to hold the only reference).
        bus = hw::IoBus();
        recorder.reset();
        shim.reset();
        device_pool.release(std::move(dev));
        result.records[i] = std::move(rec);
        progress.tick();
      },
      support::Metrics::enabled() ? &worker_shares : nullptr);
  support::Metrics::add_worker_records(worker_shares);

  for (const FaultRecord& rec : result.records) {
    result.tally.add(rec.outcome, rec.plan.port);
    if (rec.triggered) ++result.triggered_scenarios;
  }
  return result;
}

}  // namespace eval
