// Outcome taxonomy of the paper's boot experiments (§4.2, cases 1-7).
#pragma once

#include <map>
#include <set>
#include <string>

namespace eval {

enum class Outcome {
  kCompileTime,   // rejected by the (MiniC/Devil) compiler
  kRunTime,       // caught by a Devil assertion ("case 1")
  kDeadCode,      // mutation on a non-executed path ("case 2")
  kBoot,          // boots, no damage observed — the worst case ("case 3")
  kCrash,         // kernel crashes, nothing printed ("case 4")
  kInfiniteLoop,  // never completes the boot ("case 5")
  kHalt,          // kernel halts with a panic message ("case 6")
  kDamagedBoot,   // boot completes but visible damage ("case 7")
};

[[nodiscard]] const char* outcome_name(Outcome o);

/// Aggregated campaign tally: mutants per outcome plus the distinct
/// mutation sites contributing to each outcome (Tables 3/4 report both).
struct Tally {
  std::map<Outcome, size_t> mutants;
  std::map<Outcome, std::set<size_t>> sites;
  size_t total_mutants = 0;

  void add(Outcome o, size_t site) {
    ++mutants[o];
    sites[o].insert(site);
    ++total_mutants;
  }
  [[nodiscard]] size_t mutants_of(Outcome o) const {
    auto it = mutants.find(o);
    return it == mutants.end() ? 0 : it->second;
  }
  [[nodiscard]] size_t sites_of(Outcome o) const {
    auto it = sites.find(o);
    return it == sites.end() ? 0 : it->second.size();
  }
  /// Detected at compile time or by a Devil assertion.
  [[nodiscard]] size_t detected() const {
    return mutants_of(Outcome::kCompileTime) + mutants_of(Outcome::kRunTime);
  }
};

}  // namespace eval
