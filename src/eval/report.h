// Renders campaign results in the layout of the paper's tables.
#pragma once

#include <string>
#include <vector>

#include "eval/driver_campaign.h"
#include "eval/fault_campaign.h"
#include "eval/spec_campaign.h"

namespace eval {

/// Table 2: "Mutation coverage of the Devil compiler".
[[nodiscard]] std::string render_table2(
    const std::vector<SpecCampaignRow>& rows);

/// Tables 3/4: "Mutations on C / CDevil code". Rows follow the paper: a
/// compile-time line, then the boot behaviours, then totals. The footer
/// names the device binding the campaign ran against when the result
/// carries one.
[[nodiscard]] std::string render_driver_table(
    const std::string& title, const DriverCampaignResult& result);

/// Headline comparison of the two campaigns (the paper's §4.2 narrative:
/// detected fraction, worst-case "Boot" fraction, ratios). Labels the
/// device when the results carry one.
[[nodiscard]] std::string render_comparison(
    const DriverCampaignResult& c_result,
    const DriverCampaignResult& cdevil_result);

/// One device's full evaluation: Table 3 (original C driver), Table 4
/// (CDevil driver) and the comparison, titled per device so multi-device
/// reports read unambiguously.
[[nodiscard]] std::string render_campaign_tables(
    const DriverCampaignResult& c_result,
    const DriverCampaignResult& cdevil_result);

/// Flight-recorder post-mortems for a mutation campaign: one block per
/// traced record (MutantRecord::trace — non-clean boots of a campaign run
/// with DriverCampaignConfig::flight_recorder), capped at the first `cap`
/// records so multi-thousand-mutant fleets stay readable. Returns "" when
/// no record carries a trace, so callers can print unconditionally.
[[nodiscard]] std::string render_postmortems(const std::string& title,
                                             const DriverCampaignResult& r,
                                             size_t cap);

/// Tables-3/4-shaped table for one fault-injection campaign: a detection
/// line (Devil checks only shown when any fired, mirroring the run-time
/// check row), the failure behaviours, then totals. The footer names the
/// scenario counts and the device binding.
[[nodiscard]] std::string render_fault_table(const std::string& title,
                                             const FaultCampaignResult& result);

/// Headline comparison of the two fault campaigns: detected fraction
/// (Devil check or driver panic) and the silent corrupt-boot fraction (the
/// worst case for the developer — the system limps on with bad hardware).
[[nodiscard]] std::string render_fault_comparison(
    const FaultCampaignResult& c_result,
    const FaultCampaignResult& cdevil_result);

/// Flight-recorder post-mortems for a fault campaign (FaultRecord::trace),
/// mirroring render_postmortems: first `cap` traced records, "" when none.
[[nodiscard]] std::string render_fault_postmortems(
    const std::string& title, const FaultCampaignResult& r, size_t cap);

/// One device's full fault-injection evaluation: Table F3 (original C
/// driver), Table F4 (CDevil driver) and the comparison.
[[nodiscard]] std::string render_fault_tables(
    const FaultCampaignResult& c_result,
    const FaultCampaignResult& cdevil_result);

/// One device's complete report section: the "=== device ===" banner, the
/// paired campaign tables, the engine-counter line and (when any record
/// carries a trace) the flight-recorder post-mortems. The single-process
/// CLI run, `--merge` and the campaign-service dispatcher all print report
/// bodies through this one function, so their outputs are byte-comparable
/// by construction.
[[nodiscard]] std::string render_device_section(
    const std::string& device, const DriverCampaignResult& c_result,
    const DriverCampaignResult& cdevil_result);

/// The fault-campaign sibling of render_device_section: banner, paired
/// fault tables, the scenario-counter line, post-mortems.
[[nodiscard]] std::string render_fault_section(
    const std::string& device, const FaultCampaignResult& c_result,
    const FaultCampaignResult& cdevil_result);

}  // namespace eval
