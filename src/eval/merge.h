// Recombines campaign shard artifacts (eval/shard.h) into results that are
// byte-identical to the single-process run — records, tallies, counters and
// therefore eval/report.h's rendered tables.
//
// Merge semantics: canonical-key dedup is shard-local while the shards run
// (a shard cannot see another shard's mutants), so a mutant that the
// unsharded campaign would classify as a duplicate may have been genuinely
// compiled and booted by its shard. That is safe — the dedup invariant
// (ctest-enforced since the dedup PR) guarantees a key-equal mutant's run
// produces the same outcome and detail as duplicate classification — but
// the `deduped` flags and the dedup/prefix-cache counters must be
// reconstructed globally. The merge therefore re-dedups across shards: it
// walks the concatenated records in sample order, marks every record whose
// canonical key hash appeared earlier as `deduped`, and counts prefix-cache
// hits only for globally-first records (the only compiles the unsharded
// campaign performs).
#pragma once

#include <string>
#include <vector>

#include "eval/driver_campaign.h"
#include "eval/shard.h"

namespace eval {

/// One campaign reassembled from all its shards.
struct MergedCampaign {
  std::string device;
  std::string label;   // "C" / "CDevil" (ShardArtifact::label)
  std::string engine;  // shard-validated minic::exec_engine_name
  DriverCampaignResult result;
};

/// Merges one campaign's shard artifacts, given in any order. Throws
/// std::runtime_error naming the offence when the artifacts do not tile
/// exactly one campaign: mismatched config fingerprints, duplicate or
/// missing shard indices, disagreeing shard counts, slice bounds that do
/// not match the canonical i/N partition, or metadata that disagrees
/// between shards. `shards[i].first` is the 1-based shard index the
/// artifact came from (its bundle's ShardSpec).
[[nodiscard]] DriverCampaignResult merge_shard_artifacts(
    const std::vector<std::pair<unsigned, const ShardArtifact*>>& shards);

/// Merges whole bundles (one per shard process): validates the shard
/// coordinates (same count everywhere, indices exactly 1..N), requires
/// every bundle to carry the same campaign list (device/label, in order),
/// and merges each campaign across the bundles. Campaigns come back in the
/// bundles' common list order.
[[nodiscard]] std::vector<MergedCampaign> merge_shard_bundles(
    const std::vector<ShardBundle>& bundles);

/// One fault campaign reassembled from all its shards.
struct MergedFaultCampaign {
  std::string device;
  std::string label;   // "C" / "CDevil" (FaultShardArtifact::label)
  std::string engine;  // shard-validated minic::exec_engine_name
  FaultCampaignResult result;
};

/// Merges one fault campaign's shard artifacts, given in any order. Same
/// validation as merge_shard_artifacts (fingerprints, index coverage,
/// canonical slice tiling, metadata agreement); fault scenarios are never
/// deduped, so the merge is a straight concatenation in shard order with
/// the tally and triggered count recomputed.
[[nodiscard]] FaultCampaignResult merge_fault_artifacts(
    const std::vector<std::pair<unsigned, const FaultShardArtifact*>>& shards);

/// Merges the fault campaigns of whole bundles, mirroring
/// merge_shard_bundles: same shard-coordinate validation, every bundle must
/// carry the same fault-campaign list (device/label, in order). Bundles
/// without fault campaigns merge to an empty list.
[[nodiscard]] std::vector<MergedFaultCampaign> merge_fault_bundles(
    const std::vector<ShardBundle>& bundles);

/// Aggregates the embedded process metrics of every bundle that carries any
/// (eval/metrics.h merge_process_metrics: counter sums, bucket-wise
/// histogram merges — order-independent). Returns false, leaving `out`
/// untouched, when no bundle embeds metrics.
bool merge_bundle_metrics(const std::vector<ShardBundle>& bundles,
                          ProcessMetrics* out);

/// Renders merged campaigns as the single-process report body: adjacent
/// C/CDevil campaigns of one device print as the paper's paired section
/// (eval/report.h render_device_section / render_fault_section); anything
/// else (a hand-built bundle) falls back to one table per campaign. This is
/// the byte string `--merge` prints and the campaign service streams back —
/// identical to the single-process run's output minus its two header lines.
[[nodiscard]] std::string render_merged_report(
    const std::vector<MergedCampaign>& merged,
    const std::vector<MergedFaultCampaign>& fault_merged);

}  // namespace eval
