#include "eval/spec_campaign.h"

#include <stdexcept>
#include <unordered_map>

#include "devil/compiler.h"
#include "devil/lexer.h"
#include "mutation/devil_mutator.h"
#include "support/parallel.h"
#include "support/strings.h"

namespace eval {

namespace {

mutation::DevilNames names_from(const devil::DeviceInfo& info) {
  mutation::DevilNames names;
  for (const auto& p : info.decl->params) names.ports.push_back(p.name);
  for (const auto& r : info.decl->registers) names.registers.push_back(r.name);
  for (const auto& v : info.decl->variables) names.variables.push_back(v.name);
  return names;
}

/// Canonical token-class key of a mutated specification: the lexed token
/// stream (kind, line, spelling / integer value). Two mutants with equal
/// keys are char-class-identical to the Devil front end, so `check_spec`
/// accepts or rejects them identically. Unlexable mutants fall back to a
/// raw-text key: only byte-identical splices dedup.
std::string canonical_spec_key(const std::string& file,
                               const std::string& text) {
  support::DiagnosticEngine diags;
  support::SourceBuffer buf(file, text);
  devil::Lexer lexer(buf, diags);
  std::vector<devil::Token> tokens = lexer.lex_all();
  if (diags.has_errors()) return "!" + text;
  std::string key;
  key.reserve(tokens.size() * 8);
  for (const devil::Token& t : tokens) {
    key.push_back(static_cast<char>(t.kind));
    uint32_t line = t.range.begin.line;
    key.append(reinterpret_cast<const char*>(&line), sizeof(line));
    if (t.kind == devil::TokKind::kInt) {
      uint64_t v = t.int_value;
      key.append(reinterpret_cast<const char*>(&v), sizeof(v));
    } else if (!t.text.empty()) {
      key.append(t.text);
      key.push_back('\0');
    }
  }
  return key;
}

}  // namespace

SpecCampaignRow run_spec_campaign(const corpus::SpecEntry& spec,
                                  const SpecCampaignConfig& config) {
  auto baseline = devil::check_spec(spec.file, spec.text);
  if (!baseline.ok()) {
    throw std::logic_error("unmutated spec '" + spec.name +
                           "' fails the Devil compiler:\n" +
                           baseline.diags.render());
  }

  SpecCampaignRow row;
  row.name = spec.name;
  row.code_lines = support::count_code_lines(spec.text);

  mutation::DevilNames names = names_from(*baseline.info);
  auto sites = mutation::scan_devil_sites(spec.text, names);
  auto mutants = mutation::generate_devil_mutants(sites, names);
  row.sites = sites.size();
  row.mutants = mutants.size();

  // Canonical dedup, mirroring the driver campaign's: keys are computed in
  // parallel (per-index writes only); the first-seen mapping is built
  // sequentially afterwards, so it is deterministic at any thread count.
  std::vector<std::string> mutated(mutants.size());
  std::vector<size_t> dup_of(mutants.size(), static_cast<size_t>(-1));
  support::parallel_for(mutants.size(), config.threads, [&](size_t i) {
    mutated[i] = mutation::apply_mutant(spec.text, sites, mutants[i]);
  });
  if (config.dedup && !mutants.empty()) {
    std::vector<std::string> keys(mutants.size());
    support::parallel_for(mutants.size(), config.threads, [&](size_t i) {
      keys[i] = canonical_spec_key(spec.file, mutated[i]);
    });
    std::unordered_map<std::string, size_t> first_seen;
    first_seen.reserve(mutants.size());
    for (size_t i = 0; i < mutants.size(); ++i) {
      auto [it, inserted] = first_seen.emplace(std::move(keys[i]), i);
      if (!inserted) {
        dup_of[i] = it->second;
        ++row.deduped;
      }
    }
  }

  // Parallel map over the unique mutants: one flag per mutant, written only
  // by its own worker. The order-sensitive reduction (detected count,
  // first-N survivors) runs after the join, so any thread count yields the
  // identical row. Duplicates take the representative's flag — detection is
  // site-independent, unlike the driver campaign's dead-code split.
  std::vector<size_t> unique_ix;
  unique_ix.reserve(mutants.size());
  for (size_t i = 0; i < mutants.size(); ++i) {
    if (dup_of[i] == static_cast<size_t>(-1)) unique_ix.push_back(i);
  }
  std::vector<uint8_t> detected(mutants.size(), 0);
  support::parallel_for(unique_ix.size(), config.threads, [&](size_t u) {
    size_t i = unique_ix[u];
    auto result = devil::check_spec(spec.file, mutated[i]);
    detected[i] = result.ok() ? 0 : 1;
  });
  for (size_t i = 0; i < mutants.size(); ++i) {
    if (dup_of[i] != static_cast<size_t>(-1)) detected[i] = detected[dup_of[i]];
  }
  for (size_t i = 0; i < mutants.size(); ++i) {
    if (detected[i]) {
      ++row.detected;
    } else if (row.undetected_samples.size() < config.max_survivor_samples) {
      const auto& s = sites[mutants[i].site];
      row.undetected_samples.push_back(
          "line " + std::to_string(s.line) + ": '" + s.original + "' -> '" +
          mutants[i].replacement + "'");
    }
  }
  return row;
}

SpecCampaignRow run_spec_campaign(const corpus::SpecEntry& spec,
                                  size_t max_survivor_samples) {
  SpecCampaignConfig config;
  config.max_survivor_samples = max_survivor_samples;
  return run_spec_campaign(spec, config);
}

std::vector<SpecCampaignRow> run_all_spec_campaigns(unsigned threads) {
  SpecCampaignConfig config;
  config.threads = threads;
  std::vector<SpecCampaignRow> rows;
  for (const auto& spec : corpus::all_specs()) {
    rows.push_back(run_spec_campaign(spec, config));
  }
  return rows;
}

}  // namespace eval
