#include "eval/spec_campaign.h"

#include <stdexcept>

#include "devil/compiler.h"
#include "mutation/devil_mutator.h"
#include "support/parallel.h"
#include "support/strings.h"

namespace eval {

namespace {

mutation::DevilNames names_from(const devil::DeviceInfo& info) {
  mutation::DevilNames names;
  for (const auto& p : info.decl->params) names.ports.push_back(p.name);
  for (const auto& r : info.decl->registers) names.registers.push_back(r.name);
  for (const auto& v : info.decl->variables) names.variables.push_back(v.name);
  return names;
}

}  // namespace

SpecCampaignRow run_spec_campaign(const corpus::SpecEntry& spec,
                                  const SpecCampaignConfig& config) {
  auto baseline = devil::check_spec(spec.file, spec.text);
  if (!baseline.ok()) {
    throw std::logic_error("unmutated spec '" + spec.name +
                           "' fails the Devil compiler:\n" +
                           baseline.diags.render());
  }

  SpecCampaignRow row;
  row.name = spec.name;
  row.code_lines = support::count_code_lines(spec.text);

  mutation::DevilNames names = names_from(*baseline.info);
  auto sites = mutation::scan_devil_sites(spec.text, names);
  auto mutants = mutation::generate_devil_mutants(sites, names);
  row.sites = sites.size();
  row.mutants = mutants.size();

  // Parallel map: one flag per mutant, written only by its own worker.
  // The order-sensitive reduction (detected count, first-N survivors) runs
  // after the join, so any thread count yields the identical row.
  std::vector<uint8_t> detected(mutants.size(), 0);
  support::parallel_for(mutants.size(), config.threads, [&](size_t i) {
    std::string mutated = mutation::apply_mutant(spec.text, sites, mutants[i]);
    auto result = devil::check_spec(spec.file, mutated);
    detected[i] = result.ok() ? 0 : 1;
  });
  for (size_t i = 0; i < mutants.size(); ++i) {
    if (detected[i]) {
      ++row.detected;
    } else if (row.undetected_samples.size() < config.max_survivor_samples) {
      const auto& s = sites[mutants[i].site];
      row.undetected_samples.push_back(
          "line " + std::to_string(s.line) + ": '" + s.original + "' -> '" +
          mutants[i].replacement + "'");
    }
  }
  return row;
}

SpecCampaignRow run_spec_campaign(const corpus::SpecEntry& spec,
                                  size_t max_survivor_samples) {
  SpecCampaignConfig config;
  config.max_survivor_samples = max_survivor_samples;
  return run_spec_campaign(spec, config);
}

std::vector<SpecCampaignRow> run_all_spec_campaigns(unsigned threads) {
  SpecCampaignConfig config;
  config.threads = threads;
  std::vector<SpecCampaignRow> rows;
  for (const auto& spec : corpus::all_specs()) {
    rows.push_back(run_spec_campaign(spec, config));
  }
  return rows;
}

}  // namespace eval
