#include "eval/device_bindings.h"

#include <memory>
#include <stdexcept>

#include "hw/busmouse.h"
#include "hw/ide_disk.h"

namespace eval {

DeviceBinding ide_binding() {
  DeviceBinding b;
  b.device = "ide";
  b.port_base = 0x1f0;
  b.port_span = 8;
  b.entry = "ide_boot";
  b.make_device = [] { return std::make_shared<hw::IdeDisk>(); };
  return b;
}

DeviceBinding busmouse_binding() {
  DeviceBinding b;
  b.device = "busmouse";
  b.port_base = 0x23c;
  b.port_span = 4;
  b.entry = "mouse_boot";
  b.make_device = [] { return std::make_shared<hw::Busmouse>(); };
  return b;
}

DeviceBinding ide_irq_binding() {
  DeviceBinding b = ide_binding();
  b.device = "ide-irq";
  b.entry = "ide_irq_boot";
  b.irq_line = 6;
  return b;
}

DeviceBinding busmouse_irq_binding() {
  DeviceBinding b = busmouse_binding();
  b.device = "busmouse-irq";
  b.entry = "mouse_irq_boot";
  b.irq_line = 5;
  b.make_device = [] {
    auto m = std::make_shared<hw::Busmouse>();
    // Power-on pending motion (dx 9, dy -3, left button): the interrupt the
    // driver's enable transition delivers. preload_motion keeps the device
    // un-dirtied, so pool recycles stay bit-identical to fresh instances.
    m->preload_motion(9, -3, 0x01);
    return m;
  };
  return b;
}

const std::vector<DeviceBinding>& standard_bindings() {
  static const std::vector<DeviceBinding> bindings = {
      ide_binding(), busmouse_binding(), ide_irq_binding(),
      busmouse_irq_binding()};
  return bindings;
}

DeviceBinding binding_for(const std::string& device) {
  for (const DeviceBinding& b : standard_bindings()) {
    if (b.device == device) return b;
  }
  std::string known;
  for (const DeviceBinding& b : standard_bindings()) {
    known += known.empty() ? b.device : ", " + b.device;
  }
  throw std::logic_error("no device binding named '" + device +
                         "' (known: " + known + ")");
}

}  // namespace eval
