#include "eval/device_bindings.h"

#include <memory>
#include <stdexcept>

#include "hw/busmouse.h"
#include "hw/ide_disk.h"

namespace eval {

DeviceBinding ide_binding() {
  DeviceBinding b;
  b.device = "ide";
  b.port_base = 0x1f0;
  b.port_span = 8;
  b.entry = "ide_boot";
  b.make_device = [] { return std::make_shared<hw::IdeDisk>(); };
  return b;
}

DeviceBinding busmouse_binding() {
  DeviceBinding b;
  b.device = "busmouse";
  b.port_base = 0x23c;
  b.port_span = 4;
  b.entry = "mouse_boot";
  b.make_device = [] { return std::make_shared<hw::Busmouse>(); };
  return b;
}

const std::vector<DeviceBinding>& standard_bindings() {
  static const std::vector<DeviceBinding> bindings = {ide_binding(),
                                                      busmouse_binding()};
  return bindings;
}

DeviceBinding binding_for(const std::string& device) {
  for (const DeviceBinding& b : standard_bindings()) {
    if (b.device == device) return b;
  }
  std::string known;
  for (const DeviceBinding& b : standard_bindings()) {
    known += known.empty() ? b.device : ", " + b.device;
  }
  throw std::logic_error("no device binding named '" + device +
                         "' (known: " + known + ")");
}

DriverCampaignResult run_ide_campaign(const DriverCampaignConfig& config) {
  if (config.device.ok()) return run_driver_campaign(config);
  DriverCampaignConfig bound = config;
  bound.device = ide_binding();
  return run_driver_campaign(bound);
}

}  // namespace eval
