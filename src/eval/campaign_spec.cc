#include "eval/campaign_spec.h"

#include <algorithm>
#include <stdexcept>

#include "corpus/specs.h"
#include "devil/compiler.h"
#include "eval/device_bindings.h"
#include "eval/shard.h"
#include "support/strings.h"

namespace eval {

namespace {

/// Strict decimal parse for flag values: digits only, bounded length, so a
/// leading '-' or a stray suffix is a usage error and never wraps or
/// truncates. Returns false on anything else.
bool parse_count(const std::string& text, size_t max_digits, uint64_t* out) {
  if (text.empty() || text.size() > max_digits) return false;
  if (text.find_first_not_of("0123456789") != std::string::npos) return false;
  uint64_t v = 0;
  for (char c : text) v = v * 10 + static_cast<uint64_t>(c - '0');
  *out = v;
  return true;
}

bool parse_trigger_list(const std::string& text, std::vector<uint32_t>* out) {
  out->clear();
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    uint64_t v = 0;
    if (!parse_count(text.substr(pos, comma - pos), 6, &v)) return false;
    out->push_back(static_cast<uint32_t>(v));
    pos = comma + 1;
    if (comma == text.size()) break;
  }
  return !out->empty();
}

minic::ExecEngine engine_from_name(const std::string& name,
                                   const std::string& ctx) {
  if (name == minic::exec_engine_name(minic::ExecEngine::kBytecodeVm)) {
    return minic::ExecEngine::kBytecodeVm;
  }
  if (name == minic::exec_engine_name(minic::ExecEngine::kTreeWalker)) {
    return minic::ExecEngine::kTreeWalker;
  }
  throw std::runtime_error(ctx + ": unknown engine '" + name +
                           "' (known: bytecode-vm, tree-walker)");
}

CampaignKind kind_from_name(const std::string& name, const std::string& ctx) {
  if (name == "driver") return CampaignKind::kDriver;
  if (name == "fault") return CampaignKind::kFault;
  if (name == "spec") return CampaignKind::kSpec;
  throw std::runtime_error(ctx + ": unknown campaign kind '" + name +
                           "' (known: driver, fault, spec)");
}

/// Fills the fields DriverCampaignConfig shares across the C and CDevil
/// variants of one corpus entry.
void fill_common(const CampaignSpec& spec,
                 const corpus::CampaignDrivers& drivers,
                 DriverCampaignConfig* cfg) {
  cfg->device = binding_for(drivers.device);
  cfg->sample_percent = spec.sample_percent == 0 ? drivers.sample_percent
                                                 : spec.sample_percent;
  cfg->seed = spec.seed;
  cfg->step_budget = spec.step_budget;
  cfg->watchdog_ms = spec.watchdog_ms;
  cfg->threads = spec.threads;
  cfg->engine = spec.engine;
  cfg->dedup = spec.dedup;
  cfg->prefix_cache = spec.prefix_cache;
  cfg->bytecode_patch = spec.bytecode_patch;
  cfg->flight_recorder = spec.flight_recorder;
}

}  // namespace

const char* campaign_kind_name(CampaignKind k) {
  switch (k) {
    case CampaignKind::kDriver: return "driver";
    case CampaignKind::kFault: return "fault";
    case CampaignKind::kSpec: return "spec";
  }
  return "?";
}

std::vector<corpus::CampaignDrivers> campaign_spec_corpus(
    const CampaignSpec& spec) {
  std::vector<corpus::CampaignDrivers> all;
  if (spec.kind == CampaignKind::kSpec) return all;
  all = corpus::campaign_drivers();
  if (spec.kind == CampaignKind::kFault) {
    const auto& irq = corpus::irq_campaign_drivers();
    all.insert(all.end(), irq.begin(), irq.end());
  }
  if (spec.device == "all") return all;
  std::vector<corpus::CampaignDrivers> selected;
  for (const auto& drivers : all) {
    if (spec.device == drivers.device) selected.push_back(drivers);
  }
  return selected;
}

std::vector<std::string> validate_campaign_spec(const CampaignSpec& spec) {
  std::vector<std::string> diags;
  if (spec.kind == CampaignKind::kSpec) {
    if (spec.device != "all") {
      diags.push_back("spec campaigns are not device-scoped: --device must "
                      "stay 'all', got '" + spec.device + "'");
    }
  } else if (spec.device != "all" && campaign_spec_corpus(spec).empty()) {
    std::string known = "all";
    for (const auto& drivers : campaign_spec_corpus(CampaignSpec{
             spec.kind, "all"})) {
      known += std::string(", ") + drivers.device;
    }
    diags.push_back("unknown device '" + spec.device + "' for " +
                    campaign_kind_name(spec.kind) + " campaigns (known: " +
                    known + ")");
  }
  if (spec.sample_percent > 100) {
    diags.push_back("sample_percent must be 0-100 (0 = per-corpus default), "
                    "got " + std::to_string(spec.sample_percent));
  }
  if (spec.step_budget == 0) {
    diags.push_back("step_budget must be >= 1");
  }
  if (spec.fault_sample_percent == 0 || spec.fault_sample_percent > 100) {
    diags.push_back("fault_sample_percent must be 1-100, got " +
                    std::to_string(spec.fault_sample_percent));
  }
  if (spec.fault_triggers.empty()) {
    diags.push_back("fault_triggers must name at least one trigger offset");
  }
  return diags;
}

support::JsonValue campaign_spec_to_json(const CampaignSpec& spec) {
  support::JsonValue v = support::JsonValue::object();
  v.set("format", "devil-repro-campaign-spec");
  v.set("version", 1);
  v.set("kind", campaign_kind_name(spec.kind));
  v.set("device", spec.device);
  v.set("engine", minic::exec_engine_name(spec.engine));
  v.set("seed", spec.seed);
  v.set("sample_percent", static_cast<uint64_t>(spec.sample_percent));
  v.set("step_budget", spec.step_budget);
  v.set("dedup", spec.dedup);
  v.set("prefix_cache", spec.prefix_cache);
  v.set("bytecode_patch", spec.bytecode_patch);
  v.set("flight_recorder", spec.flight_recorder);
  v.set("watchdog_ms", spec.watchdog_ms);
  v.set("threads", static_cast<uint64_t>(spec.threads));
  support::JsonValue triggers = support::JsonValue::array();
  for (uint32_t t : spec.fault_triggers) {
    triggers.push_back(static_cast<uint64_t>(t));
  }
  v.set("fault_triggers", std::move(triggers));
  v.set("fault_sample_percent",
        static_cast<uint64_t>(spec.fault_sample_percent));
  v.set("survivor_samples", static_cast<uint64_t>(spec.survivor_samples));
  return v;
}

CampaignSpec campaign_spec_from_json(const support::JsonValue& v,
                                     const std::string& ctx) {
  if (v.kind() != support::JsonValue::Kind::kObject) {
    throw std::runtime_error(ctx + ": campaign spec must be an object, got " +
                             support::json_kind_name(v.kind()));
  }
  auto require = [&](const char* key) -> const support::JsonValue& {
    const support::JsonValue* f = v.find(key);
    if (!f) {
      throw std::runtime_error(ctx + ": missing field '" + key + "'");
    }
    return *f;
  };
  auto require_u64 = [&](const char* key, uint64_t max) {
    int64_t raw = require(key).as_int();
    if (raw < 0 || static_cast<uint64_t>(raw) > max) {
      throw std::runtime_error(ctx + ": field '" + key +
                               "' out of range (0-" + std::to_string(max) +
                               "), got " + std::to_string(raw));
    }
    return static_cast<uint64_t>(raw);
  };

  if (require("format").as_string() != "devil-repro-campaign-spec") {
    throw std::runtime_error(ctx + ": not a campaign spec (format tag '" +
                             require("format").as_string() + "')");
  }
  if (require("version").as_int() != 1) {
    throw std::runtime_error(ctx + ": unsupported campaign-spec version " +
                             std::to_string(require("version").as_int()));
  }

  static const char* const kKnown[] = {
      "format", "version", "kind", "device", "engine", "seed",
      "sample_percent", "step_budget", "dedup", "prefix_cache",
      "bytecode_patch", "flight_recorder", "watchdog_ms", "threads",
      "fault_triggers", "fault_sample_percent", "survivor_samples"};
  for (const auto& [key, value] : v.members()) {
    (void)value;
    bool known = false;
    for (const char* k : kKnown) known |= key == k;
    if (!known) {
      throw std::runtime_error(ctx + ": unknown field '" + key + "'");
    }
  }

  CampaignSpec spec;
  spec.kind = kind_from_name(require("kind").as_string(), ctx);
  spec.device = require("device").as_string();
  spec.engine = engine_from_name(require("engine").as_string(), ctx);
  spec.seed = require_u64("seed", UINT64_MAX / 2);
  spec.sample_percent = static_cast<unsigned>(require_u64("sample_percent",
                                                          100));
  spec.step_budget = require_u64("step_budget", UINT64_MAX / 2);
  spec.dedup = require("dedup").as_bool();
  spec.prefix_cache = require("prefix_cache").as_bool();
  spec.bytecode_patch = require("bytecode_patch").as_bool();
  spec.flight_recorder = require("flight_recorder").as_bool();
  spec.watchdog_ms = require_u64("watchdog_ms", 99'999'999);
  spec.threads = static_cast<unsigned>(require_u64("threads", 9999));
  spec.fault_triggers.clear();
  for (const support::JsonValue& t : require("fault_triggers").items()) {
    int64_t raw = t.as_int();
    if (raw < 0 || raw > 999'999) {
      throw std::runtime_error(ctx + ": fault_triggers entry out of range "
                               "(0-999999), got " + std::to_string(raw));
    }
    spec.fault_triggers.push_back(static_cast<uint32_t>(raw));
  }
  spec.fault_sample_percent =
      static_cast<unsigned>(require_u64("fault_sample_percent", 100));
  spec.survivor_samples =
      static_cast<unsigned>(require_u64("survivor_samples", 9999));

  std::vector<std::string> diags = validate_campaign_spec(spec);
  if (!diags.empty()) {
    throw std::runtime_error(ctx + ": " + diags.front());
  }
  return spec;
}

DeviceCampaignConfigs driver_configs_for(
    const CampaignSpec& spec, const corpus::CampaignDrivers& drivers) {
  DeviceCampaignConfigs out;
  out.c = DriverCampaignConfig{};
  out.c.driver = drivers.c_driver();
  fill_common(spec, drivers, &out.c);

  auto compiled = devil::compile_spec(drivers.spec_file, drivers.spec(),
                                      devil::CodegenMode::kDebug);
  if (!compiled.ok()) {
    throw std::runtime_error("corpus spec '" + std::string(drivers.spec_file) +
                             "' failed to compile:\n" +
                             compiled.diags.render());
  }
  out.cdevil = DriverCampaignConfig{};
  out.cdevil.stubs = compiled.stubs;
  out.cdevil.driver = drivers.cdevil_driver();
  out.cdevil.is_cdevil = true;
  fill_common(spec, drivers, &out.cdevil);
  return out;
}

DeviceFaultConfigs fault_configs_for(const CampaignSpec& spec,
                                     const corpus::CampaignDrivers& drivers) {
  DeviceCampaignConfigs base = driver_configs_for(spec, drivers);
  DeviceFaultConfigs out;
  out.c.base = std::move(base.c);
  out.c.triggers = spec.fault_triggers;
  out.c.sample_percent = spec.fault_sample_percent;
  out.cdevil.base = std::move(base.cdevil);
  out.cdevil.triggers = spec.fault_triggers;
  out.cdevil.sample_percent = spec.fault_sample_percent;
  return out;
}

SpecCampaignConfig spec_campaign_config_for(const CampaignSpec& spec) {
  SpecCampaignConfig cfg;
  cfg.max_survivor_samples = spec.survivor_samples;
  cfg.threads = spec.threads;
  cfg.dedup = spec.dedup;
  return cfg;
}

std::string campaign_spec_fingerprint(const CampaignSpec& spec) {
  support::Fnv128 h;
  h.update_field("devil-repro-campaign-spec-v1");
  h.update_field(campaign_kind_name(spec.kind));
  switch (spec.kind) {
    case CampaignKind::kDriver:
      for (const auto& drivers : campaign_spec_corpus(spec)) {
        DeviceCampaignConfigs cfgs = driver_configs_for(spec, drivers);
        h.update_field(campaign_fingerprint(cfgs.c));
        h.update_field(campaign_fingerprint(cfgs.cdevil));
      }
      break;
    case CampaignKind::kFault:
      for (const auto& drivers : campaign_spec_corpus(spec)) {
        DeviceFaultConfigs cfgs = fault_configs_for(spec, drivers);
        h.update_field(fault_campaign_fingerprint(cfgs.c));
        h.update_field(fault_campaign_fingerprint(cfgs.cdevil));
      }
      break;
    case CampaignKind::kSpec:
      // Table 2 has no per-device config; the digest pins the corpus text
      // and the two knobs that move rows (dedup cannot change tallies but
      // does change the deduped column).
      h.update_u64(spec.dedup ? 1 : 0);
      h.update_u64(spec.survivor_samples);
      for (const auto& entry : corpus::all_specs()) {
        h.update_field(entry.name);
        h.update_field(entry.text);
      }
      break;
  }
  return h.hex();
}

const std::vector<CampaignFlag>& campaign_spec_flags() {
  static const std::vector<CampaignFlag> flags = {
      {"--faults", nullptr, true,
       "run the fault-injection campaigns instead"},
      {"--spec-campaign", nullptr, true,
       "run the Table 2 Devil-spec mutation campaigns"},
      {"--device", "NAME", true, "campaign device (default: all)"},
      {"--threads", "N", true, "worker threads (0 = all cores)"},
      {"--walker", nullptr, false, "use the tree-walker oracle engine"},
      {"--seed", "N", true, "campaign sampling seed"},
      {"--sample-percent", "N", true,
       "percent of mutants booted (0 = per-corpus default)"},
      {"--step-budget", "N", true, "interpreter steps per boot"},
      {"--no-dedup", nullptr, true, "disable canonical token-class dedup"},
      {"--no-prefix-cache", nullptr, true,
       "disable the compiled-prefix cache"},
      {"--no-bytecode-patch", nullptr, false,
       "recompile every mutant instead of patching bytecode"},
      {"--flight-recorder", nullptr, false,
       "attach port-access post-mortems to non-clean records"},
      {"--watchdog-ms", "N", false,
       "wall-clock cap per boot in milliseconds (0 = off)"},
      {"--fault-triggers", "A,B,..", true,
       "fault-campaign trigger offsets (default 0,1,2,7)"},
      {"--fault-sample-percent", "N", true,
       "percent of the fault-scenario matrix booted"},
      {"--survivor-samples", "N", true,
       "survivors listed per Table 2 row (spec campaigns)"},
  };
  return flags;
}

const CampaignFlag* find_campaign_flag(const std::string& flag) {
  for (const CampaignFlag& f : campaign_spec_flags()) {
    if (flag == f.flag) return &f;
  }
  return nullptr;
}

std::string apply_campaign_flag(CampaignSpec& spec, const CampaignFlag& flag,
                                const std::string& value) {
  const std::string name = flag.flag;
  auto kind_conflict = [&](CampaignKind requested) -> std::string {
    if (spec.kind == CampaignKind::kDriver || spec.kind == requested) {
      spec.kind = requested;
      return "";
    }
    return std::string("--faults and --spec-campaign pick different "
                       "campaigns; use one of them");
  };
  uint64_t n = 0;
  if (name == "--faults") return kind_conflict(CampaignKind::kFault);
  if (name == "--spec-campaign") return kind_conflict(CampaignKind::kSpec);
  if (name == "--device") {
    spec.device = value;
    return "";
  }
  if (name == "--walker") {
    spec.engine = minic::ExecEngine::kTreeWalker;
    return "";
  }
  if (name == "--threads") {
    // Digits only: strtoul would silently wrap a leading '-' and clamp
    // out-of-range values, defeating the strict parser. A worker count
    // never needs more than 4 digits.
    if (!parse_count(value, 4, &n)) {
      return "--threads: '" + value +
             "' is not a thread count (0-9999; 0 = all cores)";
    }
    spec.threads = static_cast<unsigned>(n);
    return "";
  }
  if (name == "--seed") {
    if (!parse_count(value, 18, &n)) {
      return "--seed: '" + value + "' is not a seed (up to 18 digits)";
    }
    spec.seed = n;
    return "";
  }
  if (name == "--sample-percent") {
    if (!parse_count(value, 3, &n) || n > 100) {
      return "--sample-percent: '" + value +
             "' is not a percentage (0-100; 0 = per-corpus default)";
    }
    spec.sample_percent = static_cast<unsigned>(n);
    return "";
  }
  if (name == "--step-budget") {
    if (!parse_count(value, 12, &n) || n == 0) {
      return "--step-budget: '" + value +
             "' is not a step budget (1-999999999999)";
    }
    spec.step_budget = n;
    return "";
  }
  if (name == "--no-dedup") {
    spec.dedup = false;
    return "";
  }
  if (name == "--no-prefix-cache") {
    spec.prefix_cache = false;
    return "";
  }
  if (name == "--no-bytecode-patch") {
    spec.bytecode_patch = false;
    return "";
  }
  if (name == "--flight-recorder") {
    spec.flight_recorder = true;
    return "";
  }
  if (name == "--watchdog-ms") {
    if (!parse_count(value, 8, &n)) {
      return "--watchdog-ms: '" + value +
             "' is not a millisecond count (0-99999999; 0 disables the "
             "watchdog)";
    }
    spec.watchdog_ms = n;
    return "";
  }
  if (name == "--fault-triggers") {
    if (!parse_trigger_list(value, &spec.fault_triggers)) {
      return "--fault-triggers: '" + value +
             "' is not a comma-separated offset list (e.g. 0,1,2,7)";
    }
    return "";
  }
  if (name == "--fault-sample-percent") {
    if (!parse_count(value, 3, &n) || n == 0 || n > 100) {
      return "--fault-sample-percent: '" + value +
             "' is not a percentage (1-100)";
    }
    spec.fault_sample_percent = static_cast<unsigned>(n);
    return "";
  }
  if (name == "--survivor-samples") {
    if (!parse_count(value, 4, &n)) {
      return "--survivor-samples: '" + value + "' is not a count (0-9999)";
    }
    spec.survivor_samples = static_cast<unsigned>(n);
    return "";
  }
  return "unhandled campaign flag '" + name + "'";
}

std::vector<std::string> campaign_spec_to_args(const CampaignSpec& spec) {
  std::vector<std::string> args;
  switch (spec.kind) {
    case CampaignKind::kDriver: break;
    case CampaignKind::kFault: args.push_back("--faults"); break;
    case CampaignKind::kSpec: args.push_back("--spec-campaign"); break;
  }
  args.insert(args.end(), {"--device", spec.device});
  if (spec.engine == minic::ExecEngine::kTreeWalker) {
    args.push_back("--walker");
  }
  args.insert(args.end(), {"--threads", std::to_string(spec.threads)});
  args.insert(args.end(), {"--seed", std::to_string(spec.seed)});
  args.insert(args.end(),
              {"--sample-percent", std::to_string(spec.sample_percent)});
  args.insert(args.end(), {"--step-budget",
                           std::to_string(spec.step_budget)});
  if (!spec.dedup) args.push_back("--no-dedup");
  if (!spec.prefix_cache) args.push_back("--no-prefix-cache");
  if (!spec.bytecode_patch) args.push_back("--no-bytecode-patch");
  if (spec.flight_recorder) args.push_back("--flight-recorder");
  args.insert(args.end(), {"--watchdog-ms",
                           std::to_string(spec.watchdog_ms)});
  std::string triggers;
  for (uint32_t t : spec.fault_triggers) {
    triggers += (triggers.empty() ? "" : ",") + std::to_string(t);
  }
  args.insert(args.end(), {"--fault-triggers", triggers});
  args.insert(args.end(), {"--fault-sample-percent",
                           std::to_string(spec.fault_sample_percent)});
  args.insert(args.end(), {"--survivor-samples",
                           std::to_string(spec.survivor_samples)});
  return args;
}

}  // namespace eval
