#include "eval/driver_campaign.h"

#include <memory>
#include <stdexcept>
#include <unordered_map>

#include "hw/flight_recorder.h"
#include "hw/io_bus.h"
#include "minic/lexer.h"
#include "minic/program.h"
#include "mutation/c_mutator.h"
#include "support/line_bitmap.h"
#include "support/metrics.h"
#include "support/parallel.h"
#include "support/rng.h"
#include "support/strings.h"

namespace eval {

const char* outcome_name(Outcome o) {
  switch (o) {
    case Outcome::kCompileTime: return "Compile-time check";
    case Outcome::kRunTime: return "Run-time check";
    case Outcome::kDeadCode: return "Dead code";
    case Outcome::kBoot: return "Boot";
    case Outcome::kCrash: return "Crash";
    case Outcome::kInfiniteLoop: return "Infinite loop";
    case Outcome::kHalt: return "Halt";
    case Outcome::kDamagedBoot: return "Damaged boot";
  }
  return "?";
}

void map_bound_device(hw::IoBus& bus, const DeviceBinding& binding,
                      std::shared_ptr<hw::Device> dev) {
  bus.map(binding.port_base, binding.port_span, std::move(dev),
          binding.irq_line);
  if (binding.irq_line >= 0) {
    bus.map(hw::kIrqStatusPortBase, 1,
            std::make_shared<hw::IrqStatusPort>(&bus.irq_controller()));
  }
}

const char* outcome_short(Outcome o) {
  switch (o) {
    case Outcome::kCompileTime: return "compile";
    case Outcome::kRunTime: return "runtime";
    case Outcome::kDeadCode: return "dead";
    case Outcome::kBoot: return "boot";
    case Outcome::kCrash: return "crash";
    case Outcome::kInfiniteLoop: return "loop";
    case Outcome::kHalt: return "halt";
    case Outcome::kDamagedBoot: return "damaged";
  }
  return "?";
}

namespace {

Outcome classify_fault(minic::FaultKind kind) {
  switch (kind) {
    case minic::FaultKind::kDevilAssertion:
      return Outcome::kRunTime;
    case minic::FaultKind::kPanic:
      return Outcome::kHalt;
    case minic::FaultKind::kStepLimit:
      return Outcome::kInfiniteLoop;
    case minic::FaultKind::kWatchdog:
      // Wall-clock containment of a wedged boot: same bucket as the step
      // budget, but counted separately (the trip is host-speed dependent).
      support::Metrics::add_watchdog_trip();
      return Outcome::kInfiniteLoop;
    case minic::FaultKind::kBusFault:
    case minic::FaultKind::kDivByZero:
    case minic::FaultKind::kBadIndex:
    case minic::FaultKind::kStackOverflow:
      return Outcome::kCrash;
    case minic::FaultKind::kNone:
    case minic::FaultKind::kInternal:
      break;
  }
  throw std::logic_error("unclassifiable fault kind");
}

/// Everything invariant across mutants, computed once per campaign and
/// shared read-only by all workers (the device pool is internally locked).
struct PreparedCampaign {
  const DriverCampaignConfig* config = nullptr;
  std::string entry;             // resolved: config override or binding default
  minic::PreparedPrefix prefix;  // stubs lexed once
  std::vector<mutation::Site> sites;
  std::vector<mutation::Mutant> mutants;
  int64_t clean_fingerprint = 0;
  mutable hw::DevicePool device_pool;
};

/// The site-independent residue of one compile+boot, kept only for mutants
/// that canonical duplicates will be classified from.
struct BootSnapshot {
  bool clean = false;       // booted without fault, disk intact, right view
  Outcome outcome = Outcome::kCompileTime;  // valid when !clean
  std::string detail;
  uint64_t steps = 0;
  std::string trace;        // flight-recorder post-mortem (non-clean only)
  support::LineBitmap executed;
  std::map<std::string, std::set<uint32_t>> macro_use_lines;
};

/// Dead-code vs boot classification for a cleanly booting mutant: executed
/// iff the mutated token's line ran (for a site inside a #define body, iff
/// any use of that macro sits on an executed line).
Outcome classify_clean(const PreparedCampaign& prep, const mutation::Site& site,
                       const support::LineBitmap& executed,
                       const std::map<std::string, std::set<uint32_t>>&
                           macro_use_lines) {
  bool ran;
  if (!site.define_name.empty()) {
    ran = false;
    auto uses = macro_use_lines.find(site.define_name);
    if (uses != macro_use_lines.end()) {
      for (uint32_t use_line : uses->second) {
        if (executed.test(use_line)) {
          ran = true;
          break;
        }
      }
    }
  } else {
    ran = executed.test(site.line + prep.prefix.lines);
  }
  return ran ? Outcome::kBoot : Outcome::kDeadCode;
}

/// True when this campaign compiles mutants through the compiled-prefix
/// cache (tail-only front end + segment splice) instead of whole units.
bool uses_prefix_cache(const PreparedCampaign& prep) {
  return prep.config->prefix_cache &&
         prep.config->engine == minic::ExecEngine::kBytecodeVm &&
         prep.prefix.compiled != nullptr;
}

/// The pure per-mutant kernel: splice, compile (tail-only against the
/// cached compiled prefix on the VM engine, whole-unit token splice
/// otherwise), boot, classify. Touches nothing but its own locals and the
/// read-only `prep` (plus the locked disk pool), so any number of these can
/// run concurrently. When `snap` is non-null the site-independent boot
/// residue is captured for duplicate classification.
MutantRecord run_one_mutant(const PreparedCampaign& prep, size_t mutant_ix,
                            BootSnapshot* snap, std::string pre_spliced = {},
                            uint8_t* cache_hit = nullptr) {
  const DriverCampaignConfig& config = *prep.config;
  const mutation::Mutant& m = prep.mutants[mutant_ix];
  const mutation::Site& site = prep.sites[m.site];
  // The dedup key phase already spliced this mutant; reuse its string.
  std::string mutated_driver =
      pre_spliced.empty()
          ? mutation::apply_mutant(config.driver, prep.sites, m)
          : std::move(pre_spliced);

  MutantRecord rec;
  rec.mutant_index = mutant_ix;
  rec.site = m.site;

  const bool cached = uses_prefix_cache(prep);
  minic::Program prog;
  minic::SplicedProgram spliced;
  std::map<std::string, std::set<uint32_t>>* macro_uses = nullptr;
  if (cached) {
    spliced = minic::compile_tail(prep.prefix, mutated_driver);
    if (!spliced.internal_error.empty()) {
      throw std::logic_error("interpreter bug on mutant: " +
                             spliced.internal_error);
    }
    // A *measured* hit: only the tail-compile path counts, not the rare
    // symbol-collision fallback to whole-unit compilation.
    if (cache_hit && !spliced.whole_unit_fallback) *cache_hit = 1;
    macro_uses = &spliced.macro_use_lines;
  } else {
    prog = minic::compile_with_prefix(prep.prefix, mutated_driver);
    if (prog.ok()) macro_uses = &prog.unit->macro_use_lines;
  }
  const support::DiagnosticEngine& diags = cached ? spliced.diags : prog.diags;
  if (cached ? !spliced.ok() : !prog.ok()) {
    rec.outcome = Outcome::kCompileTime;
    if (!diags.all().empty()) {
      rec.detail = diags.all().front().to_string();
    }
    if (snap) {
      snap->outcome = rec.outcome;
      snap->detail = rec.detail;
    }
    return rec;
  }

  hw::IoBus bus;
  auto dev = prep.device_pool.acquire();
  std::shared_ptr<hw::FlightRecorder> recorder;
  if (config.flight_recorder) {
    // Outermost shim: the recorder sees exactly the driver-visible traffic,
    // step-stamped through the bus's probe.
    recorder = std::make_shared<hw::FlightRecorder>(
        dev, config.device.port_base, &bus);
    bus.set_irq_observer(recorder.get());
    map_bound_device(bus, config.device, recorder);
  } else {
    map_bound_device(bus, config.device, dev);
  }
  auto run = cached
                 ? minic::run_module(*spliced.module, bus, prep.entry,
                                     config.step_budget, nullptr,
                                     config.watchdog_ms)
                 : minic::run_unit(*prog.unit, bus, prep.entry,
                                   config.step_budget, config.engine, nullptr,
                                   config.watchdog_ms);

  if (run.fault == minic::FaultKind::kInternal) {
    throw std::logic_error("interpreter bug on mutant: " + run.fault_message);
  }
  support::StageTimer classify_timer(support::Stage::kClassify);
  rec.steps = run.steps_used;
  bool clean = false;
  if (run.fault != minic::FaultKind::kNone) {
    rec.outcome = classify_fault(run.fault);
    rec.detail = run.fault_message;
  } else if (dev->damaged() ||
             run.return_value != prep.clean_fingerprint) {
    // Boot completed but the system is visibly wrong: persistent device
    // damage or a different world view (wrong fingerprint computed from
    // what the driver read).
    rec.outcome = Outcome::kDamagedBoot;
    rec.detail = dev->damaged() ? dev->damage_note()
                                : "wrong boot fingerprint";
  } else {
    clean = true;
    rec.outcome = classify_clean(prep, site, run.executed, *macro_uses);
  }
  if (recorder && !clean) rec.trace = recorder->render_tail();
  if (snap) {
    snap->clean = clean;
    snap->outcome = rec.outcome;
    snap->detail = rec.detail;
    snap->steps = rec.steps;
    snap->trace = rec.trace;
    if (clean) {
      snap->executed = std::move(run.executed);
      snap->macro_use_lines = std::move(*macro_uses);
    }
  }
  // Drop the bus mapping (and the recorder's inner reference) before
  // recycling the device.
  bus = hw::IoBus();
  recorder.reset();
  prep.device_pool.release(std::move(dev));
  return rec;
}

/// Classifies a canonical duplicate from its representative's boot residue
/// against the duplicate's *own* site (stream-identical mutants at
/// different sites can legitimately differ between Boot and Dead code).
MutantRecord classify_duplicate(const PreparedCampaign& prep, size_t mutant_ix,
                                const BootSnapshot& snap) {
  const mutation::Mutant& m = prep.mutants[mutant_ix];
  MutantRecord rec;
  rec.mutant_index = mutant_ix;
  rec.site = m.site;
  rec.deduped = true;
  // Key-equal mutants boot identically, so the representative's step count
  // and post-mortem are this mutant's too.
  rec.steps = snap.steps;
  rec.trace = snap.trace;
  if (snap.clean) {
    rec.outcome = classify_clean(prep, prep.sites[m.site], snap.executed,
                                 snap.macro_use_lines);
  } else {
    rec.outcome = snap.outcome;
    rec.detail = snap.detail;
  }
  return rec;
}

/// Canonical token-class key of a spliced mutant: the lexed (macro-expanded)
/// token stream — kind, line, integer value, spelling for identifiers and
/// strings — plus the macro-use lines the dead-code classification reads.
/// Two mutants with equal keys compile identically and boot identically
/// (spellings that differ only in column positions cannot affect runtime
/// behaviour; runtime messages carry lines, never columns).
std::string canonical_key(const PreparedCampaign& prep,
                          const std::string& mutated_driver) {
  support::DiagnosticEngine diags;
  support::SourceBuffer buf(prep.prefix.name, mutated_driver);
  minic::LexOptions options;
  options.seed_macros = &prep.prefix.macros;
  options.line_offset = prep.prefix.lines;
  minic::LexOutput lexed = minic::lex_unit(buf, diags, options);
  if (diags.has_errors()) {
    // Unlexable mutants keep a raw-text key: their diagnostics may cite
    // spelling-specific columns, so only byte-identical splices dedup.
    return "!" + mutated_driver;
  }
  std::string key;
  key.reserve(lexed.tokens.size() * 8);
  auto put_u32 = [&key](uint32_t v) {
    key.append(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  for (const minic::Token& t : lexed.tokens) {
    key.push_back(static_cast<char>(t.kind));
    put_u32(t.loc.line);
    if (t.kind == minic::Tok::kIntLit) {
      uint64_t v = t.int_value;
      key.append(reinterpret_cast<const char*>(&v), sizeof(v));
    } else if (t.kind == minic::Tok::kIdent ||
               t.kind == minic::Tok::kStringLit) {
      key.append(t.text);
      key.push_back('\0');
    }
  }
  key.push_back('|');
  for (const auto& [name, lines] : lexed.macro_use_lines) {
    key.append(name);
    key.push_back('\0');
    for (uint32_t line : lines) put_u32(line);
    key.push_back('\0');
  }
  return key;
}

}  // namespace

DriverCampaignResult run_driver_campaign(const DriverCampaignConfig& config) {
  return run_driver_campaign_slice(config, SampleSlice{});
}

DriverCampaignResult run_driver_campaign_slice(
    const DriverCampaignConfig& config, SampleSlice slice,
    CampaignSideband* sideband) {
  // Diagnostics name the configured device and entry so a failing campaign
  // of one device is never mistaken for another's.
  const std::string who = "driver campaign [" +
                          (config.device.device.empty() ? std::string("?")
                                                        : config.device.device) +
                          "]: ";
  if (slice.count == 0 || slice.index >= slice.count) {
    throw std::logic_error(who + "invalid sample slice " +
                           std::to_string(slice.index) + "/" +
                           std::to_string(slice.count) +
                           " (need 0 <= index < count)");
  }
  if (!config.device.ok()) {
    throw std::logic_error(who +
                           "no device binding configured (set "
                           "DriverCampaignConfig::device; the standard "
                           "bindings live in eval/device_bindings.h)");
  }
  PreparedCampaign prep;
  prep.config = &config;
  prep.entry = config.entry.empty() ? config.device.entry : config.entry;
  if (prep.entry.empty()) {
    throw std::logic_error(who + "no boot entry configured (neither the "
                           "config nor the device binding names one)");
  }
  prep.device_pool.set_factory(config.device.make_device);
  const std::string at_entry = " (entry " + prep.entry + ")";

  // Lex the invariant stub prefix once; every mutant re-lexes only the
  // driver tail. Mutants never touch the stubs (sites are scanned in the
  // driver alone), so the cached tokens are valid for all of them.
  const std::string prefix_text =
      config.stubs.empty() ? std::string() : config.stubs + "\n";
  prep.prefix = minic::prepare_prefix(config.unit_name, prefix_text);
  if (!prep.prefix.ok()) {
    throw std::logic_error(who + "driver stubs do not lex:\n" +
                           prep.prefix.diags.render());
  }

  // --- baseline run -----------------------------------------------------------
  minic::Program clean = minic::compile_with_prefix(prep.prefix,
                                                    config.driver);
  if (!clean.ok()) {
    throw std::logic_error(who + "unmutated driver does not compile:\n" +
                           clean.diags.render());
  }
  DriverCampaignResult result;
  result.device = config.device.device;
  result.entry = prep.entry;
  {
    hw::IoBus bus;
    auto dev = prep.device_pool.acquire();
    map_bound_device(bus, config.device, dev);
    // The baseline boot doubles as the campaign's deterministic profile
    // run: steps retired and (on the VM) the per-opcode dispatch counts.
    // Every shard recomputes these; merge validation rejects disagreement.
    const bool vm_engine = config.engine == minic::ExecEngine::kBytecodeVm;
    auto run = minic::run_unit(*clean.unit, bus, prep.entry,
                               config.step_budget, config.engine,
                               vm_engine ? &result.baseline_opcodes : nullptr,
                               config.watchdog_ms);
    result.baseline_steps = run.steps_used;
    if (run.fault != minic::FaultKind::kNone) {
      throw std::logic_error(who + "unmutated driver faults at boot" +
                             at_entry + ": " + run.fault_message);
    }
    if (run.return_value <= 0) {
      throw std::logic_error(who + "unmutated driver returned a non-positive "
                             "boot fingerprint" + at_entry);
    }
    if (dev->damaged()) {
      throw std::logic_error(who + "unmutated driver damaged the device: " +
                             dev->damage_note());
    }
    result.clean_fingerprint = run.return_value;
    bus = hw::IoBus();
    prep.device_pool.release(std::move(dev));
  }
  prep.clean_fingerprint = result.clean_fingerprint;

  // --- mutant generation ---------------------------------------------------------
  mutation::CScanOptions scan;
  scan.classes = config.is_cdevil
                     ? mutation::classes_for_cdevil_driver(config.stubs,
                                                           config.driver)
                     : mutation::classes_for_c_driver(config.driver);
  prep.sites = mutation::scan_c_sites(config.driver, scan);
  prep.mutants = mutation::generate_c_mutants(prep.sites, scan.classes);
  result.total_sites = prep.sites.size();
  result.total_mutants = prep.mutants.size();

  // The full deterministic sample is derived in every slice; the slice then
  // covers a contiguous subrange of it, so N slices together boot exactly
  // the mutants the unsharded campaign would.
  auto sample = support::sample_indices(prep.mutants.size(),
                                        config.sample_percent, config.seed);
  const auto [slice_lo, slice_hi] = sample_slice_bounds(sample.size(), slice);
  std::vector<size_t> selected(sample.begin() + slice_lo,
                               sample.begin() + slice_hi);
  result.sampled_mutants = selected.size();
  if (sideband) {
    sideband->sample_size = sample.size();
    sideband->slice_begin = slice_lo;
    sideband->slice_end = slice_hi;
    // prefix_cache_hit is assigned wholesale after the boot phase.
    sideband->canonical_hash.clear();
    if (config.dedup) sideband->canonical_hash.resize(selected.size());
  }

  // --- canonical dedup (phases 1-2) ----------------------------------------------
  // Keys are computed in parallel (per-index writes only); the first-seen
  // mapping is built sequentially afterwards, so it is deterministic at any
  // thread count.
  std::vector<size_t> dup_of(selected.size(), static_cast<size_t>(-1));
  std::vector<uint8_t> wants_snapshot(selected.size(), 0);
  std::vector<std::string> spliced(config.dedup ? selected.size() : 0);
  if (config.dedup && !selected.empty()) {
    std::vector<std::string> keys(selected.size());
    support::parallel_for(selected.size(), config.threads, [&](size_t i) {
      spliced[i] = mutation::apply_mutant(config.driver, prep.sites,
                                          prep.mutants[selected[i]]);
      keys[i] = canonical_key(prep, spliced[i]);
      if (sideband) sideband->canonical_hash[i] = support::fnv128(keys[i]);
    });
    std::unordered_map<std::string, size_t> first_seen;
    first_seen.reserve(selected.size());
    for (size_t i = 0; i < selected.size(); ++i) {
      auto [it, inserted] = first_seen.emplace(std::move(keys[i]), i);
      if (!inserted) {
        dup_of[i] = it->second;
        wants_snapshot[it->second] = 1;
        ++result.deduped_mutants;
      }
    }
  }

  // --- per-mutant compile + boot (phase 3, parallel map) --------------------------
  // Workers write only their own records[i] / snapshot slots; the
  // order-sensitive tally reduction happens after the join, so the result
  // is identical at any thread count.
  result.records.resize(selected.size());
  std::vector<BootSnapshot> snapshots(config.dedup ? selected.size() : 0);
  std::vector<size_t> unique_ix;
  unique_ix.reserve(selected.size());
  for (size_t i = 0; i < selected.size(); ++i) {
    if (dup_of[i] == static_cast<size_t>(-1)) unique_ix.push_back(i);
  }
  std::vector<uint8_t> cache_hits(selected.size(), 0);
  support::ProgressMeter progress(who + "booting", unique_ix.size());
  std::vector<uint64_t> worker_shares;
  support::parallel_for(
      unique_ix.size(), config.threads,
      [&](size_t u) {
        size_t i = unique_ix[u];
        BootSnapshot* snap = wants_snapshot[i] ? &snapshots[i] : nullptr;
        result.records[i] = run_one_mutant(
            prep, selected[i], snap,
            config.dedup ? std::move(spliced[i]) : std::string(),
            &cache_hits[i]);
        progress.tick();
      },
      support::Metrics::enabled() ? &worker_shares : nullptr);
  support::Metrics::add_worker_records(worker_shares);
  for (uint8_t hit : cache_hits) result.prefix_cache_hits += hit;
  if (sideband) sideband->prefix_cache_hit = cache_hits;

  // --- duplicate classification (phase 4, sequential) -----------------------------
  for (size_t i = 0; i < selected.size(); ++i) {
    if (dup_of[i] != static_cast<size_t>(-1)) {
      result.records[i] =
          classify_duplicate(prep, selected[i], snapshots[dup_of[i]]);
    }
  }

  for (const MutantRecord& rec : result.records) {
    result.tally.add(rec.outcome, rec.site);
  }
  return result;
}

}  // namespace eval
